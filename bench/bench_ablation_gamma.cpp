// Ablation — the γ latency/accuracy trade-off (paper §IV-B: "we can obtain
// different bit encoding solutions based on trade-off parameter γ").
//
// Sweeps γ at the middle noise operating point and reports the selected
// schedule, its average pulse count, and the resulting noisy accuracy.
// Expected shape: avg pulses decreases monotonically (in trend) with γ,
// trading accuracy for latency; γ→0 saturates at the longest schedules.
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "gbo/gbo.hpp"
#include "gbo/pla_schedule.hpp"

#include <cstdio>
#include <cstdlib>

using namespace gbo;

int main() {
  core::Experiment exp = core::make_experiment();
  const auto sigmas = core::calibrated_sigmas(exp);
  const double sigma = sigmas.size() > 1 ? sigmas[1] : sigmas.front();
  std::printf("clean accuracy: %.2f%% | ablation at sigma=%.2f\n\n",
              100.0 * exp.clean_acc, sigma);

  std::size_t gbo_epochs = 3;
  if (const char* v = std::getenv("GBO_GBO_EPOCHS"); v && *v)
    gbo_epochs = static_cast<std::size_t>(std::atol(v));

  Rng rng(505);
  xbar::LayerNoiseController ctrl(exp.model.encoded, 0.0,
                                  exp.model.base_pulses(), rng);

  Table table({"gamma", "selected schedule", "Avg.# pulses", "Acc. (%)"});
  for (double gamma : {0.0, 1e-3, 5e-3, 2e-2, 1e-1}) {
    opt::GboConfig gcfg;
    gcfg.sigma = sigma;
    gcfg.gamma = gamma;
    gcfg.epochs = gbo_epochs;
    gcfg.lr = 5e-3f;  // scaled for the reduced dataset (see bench_table1)
    opt::GboTrainer trainer(*exp.model.net, exp.model.encoded, gcfg);
    trainer.train(exp.train);
    const auto pulses = trainer.selected_pulses();

    ctrl.attach();
    ctrl.set_enabled_all(true);
    ctrl.set_sigma(sigma);
    ctrl.set_pulses(pulses);
    const float acc = core::evaluate_noisy(*exp.model.net, ctrl, exp.test, 3);
    ctrl.detach();

    const opt::PulseSchedule sched{pulses};
    table.add_row({Table::fmt(gamma, 4), sched.to_string(),
                   Table::fmt(sched.average(), 2), Table::fmt(100.0 * acc, 2)});
    log_info("gamma=", gamma, " done");
  }

  std::printf("== Ablation: latency regularizer gamma ==\n");
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv("ablation_gamma.csv");
  std::printf("Rows written to ablation_gamma.csv\n");
  return 0;
}
