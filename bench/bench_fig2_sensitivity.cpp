// Fig. 2 — layer-wise noise sensitivity of VGG9.
//
// For each crossbar-mapped layer (the "target layer"), Gaussian noise
// N(0, σ²) is injected at that layer ONLY, and test accuracy is measured.
// The paper's finding: degradation differs strongly across layers (early
// wide layers and the FC layer react differently), which motivates
// heterogeneous per-layer bit encoding.
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

#include <cstdio>

using namespace gbo;

int main() {
  core::Experiment exp = core::make_experiment();
  const auto sigmas = core::calibrated_sigmas(exp);
  std::printf("clean accuracy: %.2f%%\n\n", 100.0 * exp.clean_acc);

  Rng rng(202);
  xbar::LayerNoiseController ctrl(exp.model.encoded, 0.0,
                                  exp.model.base_pulses(), rng);
  ctrl.attach();
  ctrl.set_uniform_pulses(exp.model.base_pulses());

  std::vector<std::string> header{"target layer"};
  for (double s : sigmas) header.push_back("acc% @ sigma=" + Table::fmt(s, 2));
  Table table(header);

  for (std::size_t l = 0; l < ctrl.num_layers(); ++l) {
    std::vector<std::string> row{exp.model.encoded_names[l]};
    for (double sigma : sigmas) {
      ctrl.set_sigma(sigma);
      ctrl.isolate_layer(l);
      const float acc = core::evaluate_noisy(*exp.model.net, ctrl, exp.test, 3);
      row.push_back(Table::fmt(100.0 * acc, 2));
    }
    table.add_row(std::move(row));
    log_info("layer ", exp.model.encoded_names[l], " done");
  }
  ctrl.detach();

  std::printf("== Fig. 2: accuracy with noise injected at one layer only ==\n");
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv("fig2_sensitivity.csv");
  std::printf("Shape check vs paper: sensitivity varies by layer (several\n"
              "points of accuracy spread), motivating per-layer encoding.\n"
              "Series written to fig2_sensitivity.csv\n");
  return 0;
}
