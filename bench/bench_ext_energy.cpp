// Extension bench: energy / latency cost of pulse schedules.
//
// The paper prices schedules in average pulses (Eq. 6); this bench reprices
// the same schedules with the tile mapper + energy model, exposing what
// "Avg.#pulses" hides: pulses on a *wide* layer cost far more energy than
// pulses on a narrow one, so two schedules with identical average latency
// can differ substantially in energy. Rows mirror Table I's methods at the
// middle noise operating point:
//   Baseline, PLA-10..16 (uniform), GBO at two γ (heterogeneous)
// with columns: accuracy, avg pulses, total cycles, energy (normalized),
// ADC share, and energy relative to baseline.
//
// A second table breaks the GBO schedule's energy down per layer, and a
// third reports the chip mapping (tiles, utilization, area proxy).
#include "common/logging.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "crossbar/energy_model.hpp"
#include "gbo/gbo.hpp"
#include "gbo/pla_schedule.hpp"

#include <cstdio>
#include <cstdlib>

using namespace gbo;

namespace {

/// Per-inference MVM counts for the encoded layers (conv: one MVM per
/// output position; linear: one).
std::vector<std::size_t> spatial_mvms(const models::Vgg9& model) {
  std::vector<std::size_t> out;
  out.reserve(model.encoded.size());
  for (auto* layer : model.encoded) {
    if (const auto* conv = dynamic_cast<const quant::QuantConv2d*>(layer)) {
      out.push_back(conv->geom().out_h() * conv->geom().out_w());
    } else {
      out.push_back(1);
    }
  }
  return out;
}

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name); v && *v) return std::atof(v);
  return fallback;
}

}  // namespace

int main() {
  core::Experiment exp = core::make_experiment();
  const auto sigmas = core::calibrated_sigmas(exp);
  const double sigma = sigmas.size() > 1 ? sigmas[1] : sigmas.front();

  const xbar::TileShape tile{128, 128};
  const xbar::NetworkMapping mapping = xbar::map_network(
      exp.model.encoded, exp.model.encoded_names, spatial_mvms(exp.model),
      tile);
  const xbar::EnergyConfig ecfg;
  const std::size_t n_layers = exp.model.encoded.size();

  Rng rng(707);
  xbar::LayerNoiseController ctrl(exp.model.encoded, sigma,
                                  exp.model.base_pulses(), rng);

  const double base_energy =
      xbar::cost_uniform(mapping, 8, ecfg).energy.total();

  Table table({"Method", "Avg.# pulses", "Acc. (%)", "Cycles", "Energy",
               "ADC share", "E/E_base"});
  Json doc = Json::object();
  doc.set("experiment", "ext_energy").set("sigma", sigma);
  Json rows = Json::array();

  auto add_row = [&](const std::string& method,
                     const std::vector<std::size_t>& pulses) {
    ctrl.attach();
    ctrl.set_enabled_all(true);
    ctrl.set_sigma(sigma);
    ctrl.set_pulses(pulses);
    const float acc = core::evaluate_noisy(*exp.model.net, ctrl, exp.test, 3);
    ctrl.detach();
    const xbar::ScheduleCost cost = xbar::cost_schedule(mapping, pulses, ecfg);
    table.add_row({method, Table::fmt(cost.avg_pulses, 2),
                   Table::fmt(100.0 * acc, 2), Table::fmt(cost.cycles, 0),
                   Table::fmt(cost.energy.total(), 0),
                   Table::fmt(cost.adc_share(), 3),
                   Table::fmt(cost.energy.total() / base_energy, 3)});
    Json r = Json::object();
    r.set("method", method)
        .set("pulses", Json::array_of(pulses))
        .set("avg_pulses", cost.avg_pulses)
        .set("accuracy_pct", 100.0 * acc)
        .set("cycles", cost.cycles)
        .set("energy", cost.energy.total())
        .set("adc_share", cost.adc_share())
        .set("energy_vs_baseline", cost.energy.total() / base_energy);
    rows.push_back(std::move(r));
    return cost;
  };

  add_row("Baseline", std::vector<std::size_t>(n_layers, 8));
  for (std::size_t n : {10u, 12u, 14u, 16u})
    add_row("PLA" + std::to_string(n), std::vector<std::size_t>(n_layers, n));

  // GBO heterogeneous schedules at two latency budgets.
  std::vector<std::size_t> gbo_schedule;
  for (const auto& [label, gamma] :
       {std::pair<const char*, double>{"GBO (~PLA10)",
                                       env_double("GBO_GAMMA_SHORT", 2e-3)},
        std::pair<const char*, double>{"GBO (~PLA14)",
                                       env_double("GBO_GAMMA_LONG", 5e-4)}}) {
    opt::GboConfig gcfg;
    gcfg.sigma = sigma;
    gcfg.gamma = gamma;
    gcfg.epochs = 4;
    gcfg.lr = static_cast<float>(env_double("GBO_GBO_LR", 5e-3));
    opt::GboTrainer trainer(*exp.model.net, exp.model.encoded, gcfg);
    trainer.train(exp.train);
    gbo_schedule = trainer.selected_pulses();
    add_row(label, gbo_schedule);
    log_info(label, " schedule: ", opt::PulseSchedule{gbo_schedule}.to_string());
  }

  std::printf("== Extension: energy/latency pricing of Table I schedules ==\n");
  std::printf("(energy in normalized units; see crossbar/energy_model.hpp)\n");
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv("ext_energy.csv");

  // Per-layer breakdown of the last GBO schedule.
  Table layer_table({"Layer", "fan-in", "fan-out", "MVMs", "pulses", "Energy",
                     "ADC share"});
  const xbar::ScheduleCost gbo_cost =
      xbar::cost_schedule(mapping, gbo_schedule, ecfg);
  for (std::size_t i = 0; i < gbo_cost.layers.size(); ++i) {
    const auto& lc = gbo_cost.layers[i];
    const auto& lm = mapping.layers[i];
    layer_table.add_row(
        {lc.name, Table::fmt_int(static_cast<long long>(lm.fan_in)),
         Table::fmt_int(static_cast<long long>(lm.fan_out)),
         Table::fmt_int(static_cast<long long>(lc.mvms)),
         Table::fmt_int(static_cast<long long>(lc.pulses)),
         Table::fmt(lc.energy.total(), 0),
         Table::fmt(lc.energy.adc / lc.energy.total(), 3)});
  }
  std::printf("== Per-layer energy of the GBO(~PLA14) schedule ==\n%s\n",
              layer_table.to_text().c_str());

  // Chip mapping summary.
  Table map_table({"Layer", "tiles", "utilization"});
  for (const auto& l : mapping.layers)
    map_table.add_row({l.name, Table::fmt_int(static_cast<long long>(l.tiles)),
                       Table::fmt(l.utilization, 3)});
  map_table.add_row({"TOTAL",
                     Table::fmt_int(static_cast<long long>(mapping.total_tiles())),
                     Table::fmt(mapping.overall_utilization(), 3)});
  std::printf("== Tile mapping (%zux%zu tiles), area proxy %.0f ==\n%s\n",
              tile.rows, tile.cols, mapping.area_proxy(),
              map_table.to_text().c_str());

  doc.set("rows", std::move(rows));
  doc.write_file("ext_energy.json");
  std::printf("Rows written to ext_energy.csv and ext_energy.json\n");
  return 0;
}
