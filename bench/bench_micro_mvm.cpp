// Micro-benchmarks of the simulation kernels: GEMM, im2col lowering,
// pulse-level vs analytic crossbar MVM, and encoders.
//
// Two modes:
//   * default / --smoke: a self-timed harness that measures the kernel-layer
//     hot paths (naive vs blocked vs threaded GEMM, analytic MVM, fused vs
//     per-pulse reference pulse-level MVM) plus the trial-parallel noisy
//     evaluator (eval_trials section: throughput + a hard gate that the
//     pool-dispatched trials stay bitwise equal to the sequential oracle),
//     and writes GFLOP/s + per-path timings to BENCH_mvm.json (override
//     with --json <path>). --smoke shrinks sizes/repetitions so CI can gate
//     on it in seconds.
//   * --gbench [...]: the google-benchmark suite below, with remaining
//     arguments forwarded (e.g. --gbench --benchmark_filter=Gemm).
//
// Thread count is controlled by the GBO_NUM_THREADS environment variable
// (default: all hardware threads); the harness reports both single-thread
// and thread-pool numbers so the JSON tracks blocking and scaling
// separately. Kernel results are bitwise identical at any thread count.
#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "core/pipeline.hpp"
#include "crossbar/mvm_engine.hpp"
#include "encoding/bit_slicing.hpp"
#include "encoding/thermometer.hpp"
#include "models/mlp.hpp"
#include "nn/conv2d.hpp"
#include "nn/eval_context.hpp"
#include "quant/quant_layers.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_binary.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

namespace {

using namespace gbo;

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  ops::fill_uniform(t, rng, -1.0f, 1.0f);
  return t;
}

Tensor random_binary(std::size_t out, std::size_t in, std::uint64_t seed) {
  Rng rng(seed);
  Tensor w({out, in});
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  return w;
}

// ---- google-benchmark suite (--gbench) -----------------------------------

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_Im2col(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  ConvGeom g{.in_c = 16, .in_h = s, .in_w = s, .k = 3, .stride = 1, .pad = 1};
  const Tensor x = random_tensor({8, 16, s, s}, 3);
  for (auto _ : state) {
    Tensor cols = im2col(x, g);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col)->Arg(16)->Arg(32);

void BM_ThermometerEncode(benchmark::State& state) {
  const Tensor x = random_tensor({4096}, 4);
  for (auto _ : state) {
    auto train = enc::thermometer_encode(x, 8);
    benchmark::DoNotOptimize(train.pulses.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_ThermometerEncode);

void BM_BitSlicingEncode(benchmark::State& state) {
  const Tensor x = random_tensor({4096}, 5);
  for (auto _ : state) {
    auto train = enc::bit_slicing_encode(x, 3);
    benchmark::DoNotOptimize(train.pulses.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_BitSlicingEncode);

void BM_MvmPulseLevel(benchmark::State& state) {
  const auto pulses = static_cast<std::size_t>(state.range(0));
  const Tensor w = random_binary(64, 256, 6);
  xbar::MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, pulses};
  cfg.sigma = 1.0;
  xbar::MvmEngine engine(w, cfg, Rng(7));
  const Tensor x = random_tensor({16, 256}, 8);
  for (auto _ : state) {
    Tensor y = engine.run_pulse_level(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MvmPulseLevel)->Arg(4)->Arg(8)->Arg(16);

void BM_MvmAnalytic(benchmark::State& state) {
  const Tensor w = random_binary(64, 256, 9);
  xbar::MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, 8};
  cfg.sigma = 1.0;
  xbar::MvmEngine engine(w, cfg, Rng(10));
  const Tensor x = random_tensor({16, 256}, 11);
  for (auto _ : state) {
    Tensor y = engine.run_analytic(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MvmAnalytic);

void BM_MvmWithDeviceModel(benchmark::State& state) {
  const Tensor w = random_binary(64, 256, 12);
  xbar::MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, 8};
  cfg.sigma = 1.0;
  cfg.device.program_variation = 0.1;
  cfg.device.adc_bits = 8;
  cfg.device.read_noise_sigma = 0.05;
  xbar::MvmEngine engine(w, cfg, Rng(13));
  const Tensor x = random_tensor({16, 256}, 14);
  for (auto _ : state) {
    Tensor y = engine.run_pulse_level(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MvmWithDeviceModel);

// ---- self-timed JSON harness ---------------------------------------------

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` wall time of fn(), in seconds.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    fn();
    const double t1 = now_seconds();
    if (t1 - t0 < best) best = t1 - t0;
  }
  return best;
}

double gflops(std::size_t flops, double seconds) {
  return seconds > 0.0 ? static_cast<double>(flops) / seconds / 1e9 : 0.0;
}

struct HarnessConfig {
  bool smoke = false;
  std::string json_path = "BENCH_mvm.json";
  std::size_t gemm_n = 512;        // acceptance size: 512×512 GEMM paths
  std::size_t mvm_out = 512, mvm_in = 512, mvm_batch = 16;
  // gemm_binary section: full acceptance shape even under --smoke (the
  // XNOR/popcount path is sub-ms there, and the small-k smoke shape would
  // not exercise the ZMM-resident hot tiers).
  std::size_t bin_out = 512, bin_in = 512, bin_batch = 16;
  std::size_t pulse_out = 64, pulse_in = 256, pulse_batch = 16, pulses = 8;
  std::size_t eval_samples = 2048, eval_trials = 16;  // noisy-eval throughput
  // conv_direct section: a VGG9-style 3×3 stride-1 layer.
  std::size_t conv_in_c = 32, conv_hw = 32, conv_out_c = 64, conv_batch = 8;
  int reps = 5;
};

/// Packed-panel vs unpacked blocked GEMM at the acceptance size, with the
/// bitwise-equality gate (the two paths must agree exactly — any mismatch
/// fails the harness) checked at 1 thread and at the pool width.
Json bench_gemm_packed(const HarnessConfig& hc, std::size_t pool_threads,
                       bool* gate_ok) {
  const std::size_t n = hc.gemm_n;
  const std::size_t flops = 2 * n * n * n;
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  Tensor c_packed({n, n}), c_unpacked({n, n});
  ThreadPool& pool = ThreadPool::instance();

  bool match = true;
  auto check = [&](const char* when) {
    gemm::gemm_nn_unpacked(n, n, n, a.data(), n, b.data(), n,
                           c_unpacked.data(), n, false);
    gemm::gemm_nn_packed(n, n, n, a.data(), n, b.data(), n, c_packed.data(),
                         n, false);
    if (std::memcmp(c_packed.data(), c_unpacked.data(),
                    n * n * sizeof(float)) != 0) {
      std::fprintf(stderr,
                   "gemm_packed GATE FAILURE: packed path diverged from the "
                   "unpacked path bitwise (%s)\n", when);
      match = false;
      *gate_ok = false;
    }
  };

  pool.set_num_threads(1);
  check("1 thread");
  const double t_unpacked_1t = time_best(hc.reps, [&] {
    gemm::gemm_nn_unpacked(n, n, n, a.data(), n, b.data(), n,
                           c_unpacked.data(), n, false);
  });
  const double t_packed_1t = time_best(hc.reps, [&] {
    gemm::gemm_nn_packed(n, n, n, a.data(), n, b.data(), n, c_packed.data(),
                         n, false);
  });
  pool.set_num_threads(pool_threads);
  check("pool threads");
  const double t_unpacked_mt = time_best(hc.reps, [&] {
    gemm::gemm_nn_unpacked(n, n, n, a.data(), n, b.data(), n,
                           c_unpacked.data(), n, false);
  });
  const double t_packed_mt = time_best(hc.reps, [&] {
    gemm::gemm_nn_packed(n, n, n, a.data(), n, b.data(), n, c_packed.data(),
                         n, false);
  });

  Json out = Json::object();
  out.set("size", n);
  out.set("bitwise_match", match);
  out.set("unpacked_1t_ms", t_unpacked_1t * 1e3);
  out.set("packed_1t_ms", t_packed_1t * 1e3);
  out.set("unpacked_mt_ms", t_unpacked_mt * 1e3);
  out.set("packed_mt_ms", t_packed_mt * 1e3);
  out.set("gflops_unpacked_1t", gflops(flops, t_unpacked_1t));
  out.set("gflops_packed_1t", gflops(flops, t_packed_1t));
  out.set("gflops_unpacked_mt", gflops(flops, t_unpacked_mt));
  out.set("gflops_packed_mt", gflops(flops, t_packed_mt));
  out.set("speedup_packed_1t", t_unpacked_1t / t_packed_1t);
  out.set("speedup_packed_mt", t_unpacked_mt / t_packed_mt);
  return out;
}

/// Cross-request prepacked weight panels (DESIGN.md §6): cold pack (panels
/// rebuilt every call) vs cached pack (prepack once, kernel only) vs the
/// unpacked blocked path, at the acceptance size, with two hard gates:
/// the prepacked result must equal the fresh-pack gemm_nt result bitwise
/// (cached panels are the same bytes a fresh pack produces), and a
/// PackedWeightCache must repack exactly once per weight version.
Json bench_gemm_prepacked(const HarnessConfig& hc, std::size_t pool_threads,
                          bool* gate_ok) {
  const std::size_t n = hc.gemm_n;
  const std::size_t flops = 2 * n * n * n;
  const Tensor a = random_tensor({n, n}, 1);
  Tensor w = random_tensor({n, n}, 4);  // A·Bᵀ weight, transposed storage
  Tensor c_fresh({n, n}), c_pre({n, n});
  ThreadPool& pool = ThreadPool::instance();

  bool match = true;
  auto check = [&](const char* when) {
    gemm::gemm_nt(n, n, n, a.data(), n, std::as_const(w).data(), n,
                  c_fresh.data(), n);
    const gemm::PackedB pb =
        gemm::prepack_b_t(n, n, std::as_const(w).data(), n);
    gemm::gemm_prepacked(n, n, n, a.data(), n, pb.panels.data(),
                         c_pre.data(), n);
    if (std::memcmp(c_pre.data(), c_fresh.data(), n * n * sizeof(float)) !=
        0) {
      std::fprintf(stderr,
                   "gemm_prepacked GATE FAILURE: prepacked panels diverged "
                   "from the fresh-pack path bitwise (%s)\n", when);
      match = false;
      *gate_ok = false;
    }
  };

  // Cache semantics gate: one pack per weight version, stable panels on
  // hits, repack after the version counter moves.
  {
    gemm::PackedWeightCache cache;
    const float* p0 = cache.get(std::as_const(w).data(), n, n, n,
                                /*transposed=*/true, w.version());
    const float* p1 = cache.get(std::as_const(w).data(), n, n, n, true,
                                w.version());
    bool cache_ok = p0 == p1 && cache.packs() == 1;
    w.data()[0] += 1.0f;  // mutation bumps the version
    (void)cache.get(std::as_const(w).data(), n, n, n, true, w.version());
    cache_ok = cache_ok && cache.packs() == 2;
    // k == 0 guard: an empty prepack handle is valid and contributes zero.
    const gemm::PackedB empty = gemm::prepack_b(0, n, nullptr, 0);
    cache_ok = cache_ok && empty.empty();
    if (!cache_ok) {
      std::fprintf(stderr,
                   "gemm_prepacked GATE FAILURE: PackedWeightCache did not "
                   "repack exactly once per weight version\n");
      match = false;
      *gate_ok = false;
    }
  }

  pool.set_num_threads(1);
  check("1 thread");
  const double t_fresh_1t = time_best(hc.reps, [&] {
    gemm::gemm_nt(n, n, n, a.data(), n, std::as_const(w).data(), n,
                  c_fresh.data(), n);
  });
  const double t_cold_1t = time_best(hc.reps, [&] {
    const gemm::PackedB pb =
        gemm::prepack_b_t(n, n, std::as_const(w).data(), n);
    gemm::gemm_prepacked(n, n, n, a.data(), n, pb.panels.data(),
                         c_pre.data(), n);
  });
  const gemm::PackedB cached =
      gemm::prepack_b_t(n, n, std::as_const(w).data(), n);
  const double t_cached_1t = time_best(hc.reps, [&] {
    gemm::gemm_prepacked(n, n, n, a.data(), n, cached.panels.data(),
                         c_pre.data(), n);
  });
  pool.set_num_threads(pool_threads);
  check("pool threads");
  const double t_cached_mt = time_best(hc.reps, [&] {
    gemm::gemm_prepacked(n, n, n, a.data(), n, cached.panels.data(),
                         c_pre.data(), n);
  });

  Json out = Json::object();
  out.set("size", n);
  out.set("bitwise_match", match);
  out.set("fresh_pack_1t_ms", t_fresh_1t * 1e3);
  out.set("cold_pack_1t_ms", t_cold_1t * 1e3);
  out.set("cached_pack_1t_ms", t_cached_1t * 1e3);
  out.set("cached_pack_mt_ms", t_cached_mt * 1e3);
  out.set("gflops_cached_1t", gflops(flops, t_cached_1t));
  out.set("gflops_cached_mt", gflops(flops, t_cached_mt));
  out.set("pack_overhead_ms", (t_cold_1t - t_cached_1t) * 1e3);
  out.set("speedup_cached_vs_cold_1t", t_cold_1t / t_cached_1t);
  return out;
}

/// Direct 3×3 stride-1 convolution vs the im2col route on a VGG9-style
/// layer, with the bitwise gate (infer dispatches the direct kernel;
/// forward runs im2col + GEMM; the NCHW outputs must agree exactly).
Json bench_conv_direct(const HarnessConfig& hc, std::size_t pool_threads,
                       bool* gate_ok) {
  using namespace gbo::nn;
  ConvGeom g{.in_c = hc.conv_in_c, .in_h = hc.conv_hw, .in_w = hc.conv_hw,
             .k = 3, .stride = 1, .pad = 1};
  Rng rng(77);
  Conv2d conv(hc.conv_out_c, g, /*bias=*/true, rng);
  const Tensor x =
      random_tensor({hc.conv_batch, g.in_c, g.in_h, g.in_w}, 78);
  const std::size_t m = hc.conv_batch * g.out_h() * g.out_w();
  const std::size_t flops = 2 * m * hc.conv_out_c * g.patch_len();
  ThreadPool& pool = ThreadPool::instance();
  EvalContext ctx;

  if (!conv.direct_conv_eligible(m)) {
    std::fprintf(stderr,
                 "conv_direct GATE FAILURE: bench shape does not dispatch "
                 "the direct kernel\n");
    *gate_ok = false;
  }

  bool match = true;
  auto check = [&](const char* when) {
    Tensor y_direct = conv.infer(x, ctx);
    Tensor y_im2col = conv.forward(x);
    if (y_direct.shape() != y_im2col.shape() ||
        std::memcmp(y_direct.data(), y_im2col.data(),
                    y_direct.numel() * sizeof(float)) != 0) {
      std::fprintf(stderr,
                   "conv_direct GATE FAILURE: direct kernel diverged from "
                   "the im2col route bitwise (%s)\n", when);
      match = false;
      *gate_ok = false;
    }
  };

  pool.set_num_threads(1);
  check("1 thread");
  const double t_im2col_1t =
      time_best(hc.reps, [&] { (void)conv.forward(x); });
  const double t_direct_1t =
      time_best(hc.reps, [&] { (void)conv.infer(x, ctx); });
  pool.set_num_threads(pool_threads);
  check("pool threads");
  const double t_im2col_mt =
      time_best(hc.reps, [&] { (void)conv.forward(x); });
  const double t_direct_mt =
      time_best(hc.reps, [&] { (void)conv.infer(x, ctx); });

  Json out = Json::object();
  out.set("batch", hc.conv_batch);
  out.set("in_c", g.in_c);
  out.set("image", hc.conv_hw);
  out.set("out_c", hc.conv_out_c);
  out.set("bitwise_match", match);
  out.set("im2col_1t_ms", t_im2col_1t * 1e3);
  out.set("direct_1t_ms", t_direct_1t * 1e3);
  out.set("im2col_mt_ms", t_im2col_mt * 1e3);
  out.set("direct_mt_ms", t_direct_mt * 1e3);
  out.set("gflops_im2col_1t", gflops(flops, t_im2col_1t));
  out.set("gflops_direct_1t", gflops(flops, t_direct_1t));
  out.set("gflops_im2col_mt", gflops(flops, t_im2col_mt));
  out.set("gflops_direct_mt", gflops(flops, t_direct_mt));
  out.set("speedup_direct_1t", t_im2col_1t / t_direct_1t);
  out.set("speedup_direct_mt", t_im2col_mt / t_direct_mt);
  return out;
}

Json bench_gemm_paths(const HarnessConfig& hc, std::size_t pool_threads) {
  const std::size_t n = hc.gemm_n;
  const std::size_t flops = 2 * n * n * n;
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  Tensor c({n, n});
  ThreadPool& pool = ThreadPool::instance();

  Json out = Json::object();
  out.set("size", n);
  out.set("flops", flops);

  // C = A·B: seed naive ikj vs blocked, 1 thread vs pool.
  const double t_naive = time_best(hc.reps, [&] {
    c.fill(0.0f);
    gemm::naive_gemm_nn_acc(n, n, n, a.data(), b.data(), c.data());
  });
  pool.set_num_threads(1);
  const double t_blocked_1t = time_best(hc.reps, [&] {
    gemm::gemm_nn(n, n, n, a.data(), n, b.data(), n, c.data(), n, false);
  });
  pool.set_num_threads(pool_threads);
  const double t_blocked_mt = time_best(hc.reps, [&] {
    gemm::gemm_nn(n, n, n, a.data(), n, b.data(), n, c.data(), n, false);
  });
  Json nn = Json::object();
  nn.set("naive_ms", t_naive * 1e3);
  nn.set("blocked_1t_ms", t_blocked_1t * 1e3);
  nn.set("blocked_mt_ms", t_blocked_mt * 1e3);
  nn.set("gflops_naive", gflops(flops, t_naive));
  nn.set("gflops_blocked_1t", gflops(flops, t_blocked_1t));
  nn.set("gflops_blocked_mt", gflops(flops, t_blocked_mt));
  nn.set("speedup_blocked_1t", t_naive / t_blocked_1t);
  nn.set("speedup_blocked_mt", t_naive / t_blocked_mt);
  out.set("nn", nn);

  // C = A·Bᵀ — the analytic-MVM inner kernel (weights stored [out, in]).
  const Tensor bt = random_tensor({n, n}, 3);
  const double t_nt_naive = time_best(hc.reps, [&] {
    gemm::naive_gemm_nt(n, n, n, a.data(), bt.data(), c.data());
  });
  pool.set_num_threads(1);
  const double t_nt_1t = time_best(hc.reps, [&] {
    gemm::gemm_nt(n, n, n, a.data(), n, bt.data(), n, c.data(), n);
  });
  pool.set_num_threads(pool_threads);
  const double t_nt_mt = time_best(hc.reps, [&] {
    gemm::gemm_nt(n, n, n, a.data(), n, bt.data(), n, c.data(), n);
  });
  Json nt = Json::object();
  nt.set("naive_ms", t_nt_naive * 1e3);
  nt.set("blocked_1t_ms", t_nt_1t * 1e3);
  nt.set("blocked_mt_ms", t_nt_mt * 1e3);
  nt.set("gflops_naive", gflops(flops, t_nt_naive));
  nt.set("gflops_blocked_1t", gflops(flops, t_nt_1t));
  nt.set("gflops_blocked_mt", gflops(flops, t_nt_mt));
  nt.set("speedup_blocked_1t", t_nt_naive / t_nt_1t);
  nt.set("speedup_blocked_mt", t_nt_naive / t_nt_mt);
  out.set("nt", nt);
  return out;
}

Json bench_analytic_mvm(const HarnessConfig& hc) {
  const Tensor w = random_binary(hc.mvm_out, hc.mvm_in, 9);
  xbar::MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, 8};
  cfg.sigma = 1.0;
  xbar::MvmEngine engine(w, cfg, Rng(10));
  const Tensor x = random_tensor({hc.mvm_batch, hc.mvm_in}, 11);
  const std::size_t flops = 2 * hc.mvm_batch * hc.mvm_out * hc.mvm_in;
  const double t = time_best(hc.reps, [&] {
    Tensor y = engine.run_analytic(x);
    benchmark::DoNotOptimize(y.data());
  });
  Json out = Json::object();
  out.set("batch", hc.mvm_batch);
  out.set("out", hc.mvm_out);
  out.set("in", hc.mvm_in);
  out.set("time_ms", t * 1e3);
  out.set("gflops", gflops(flops, t));
  return out;
}

Json bench_pulse_mvm(const HarnessConfig& hc, bool device_model,
                     bool* gate_ok) {
  const Tensor w = random_binary(hc.pulse_out, hc.pulse_in, 6);
  xbar::MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, hc.pulses};
  cfg.sigma = 1.0;
  if (device_model) {
    cfg.device.program_variation = 0.1;
    cfg.device.adc_bits = 8;
    cfg.device.read_noise_sigma = 0.05;
  }
  const Tensor x = random_tensor({hc.pulse_batch, hc.pulse_in}, 8);
  const std::size_t flops =
      2 * hc.pulse_batch * hc.pulse_out * hc.pulse_in * hc.pulses;

  // Same construction seed for both engines: the fused batch-major sweep
  // must replay the per-pulse reference path's noise stream exactly, so a
  // fresh same-seeded run of each must agree bitwise (hard gate).
  bool match = true;
  {
    xbar::MvmEngine fused_chk(w, cfg, Rng(7));
    xbar::MvmEngine ref_chk(w, cfg, Rng(7));
    const Tensor y_fused = fused_chk.run_pulse_level(x);
    const Tensor y_ref = ref_chk.run_pulse_level_reference(x);
    if (y_fused.shape() != y_ref.shape() ||
        std::memcmp(y_fused.data(), y_ref.data(),
                    y_fused.numel() * sizeof(float)) != 0) {
      std::fprintf(stderr,
                   "pulse_mvm GATE FAILURE: fused sweep diverged from the "
                   "per-pulse reference bitwise (device_model=%d)\n",
                   device_model ? 1 : 0);
      match = false;
      *gate_ok = false;
    }
  }

  xbar::MvmEngine fused(w, cfg, Rng(7));
  const double t_fused = time_best(hc.reps, [&] {
    Tensor y = fused.run_pulse_level(x);
    benchmark::DoNotOptimize(y.data());
  });
  xbar::MvmEngine reference(w, cfg, Rng(7));
  const double t_ref = time_best(hc.reps, [&] {
    Tensor y = reference.run_pulse_level_reference(x);
    benchmark::DoNotOptimize(y.data());
  });

  Json out = Json::object();
  out.set("bitwise_match", match);
  out.set("batch", hc.pulse_batch);
  out.set("out", hc.pulse_out);
  out.set("in", hc.pulse_in);
  out.set("pulses", hc.pulses);
  out.set("device_model", device_model);
  out.set("fused_ms", t_fused * 1e3);
  out.set("reference_ms", t_ref * 1e3);
  out.set("gflops_fused", gflops(flops, t_fused));
  out.set("gflops_reference", gflops(flops, t_ref));
  out.set("speedup_fused", t_ref / t_fused);
  return out;
}

/// Bit-packed XNOR/popcount MVM vs the cached float-panel route over the
/// same ±1 weight and on-grid activations (DESIGN.md §8), with three hard
/// gates: the binary result must equal the float oracle bitwise, the
/// dispatched micro-kernel must equal the scalar reference bitwise, and a
/// BinaryPanelCache must pack exactly once per weight version (the serving
/// steady state re-packs nothing).
Json bench_gemm_binary(const HarnessConfig& hc, std::size_t pool_threads,
                       bool* gate_ok) {
  const std::size_t m = hc.bin_batch, n = hc.bin_out, k = hc.bin_in;
  const std::size_t flops = 2 * m * n * k;
  const Tensor w = random_binary(n, k, 21);
  // Snap random activations onto the 9-level QuantTanh grid.
  Tensor a = random_tensor({m, k}, 22);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    const int lvl = static_cast<int>((a[i] + 1.0f) * 4.0f + 0.5f);
    a[i] = static_cast<float>(lvl < 0 ? 0 : (lvl > 8 ? 8 : lvl)) * 0.25f - 1.0f;
  }
  Tensor c_float({m, n}), c_bin({m, n});
  ThreadPool& pool = ThreadPool::instance();

  const gemm::PackedB fpanels =
      gemm::prepack_b_t(n, k, std::as_const(w).data(), k);
  const gemm::PackedBinaryB bwords =
      gemm::prepack_binary_b_t(n, k, std::as_const(w).data(), k);
  std::vector<std::uint64_t> pa(gemm::packed_binary_a_words(m, k));

  bool match = true;
  auto check = [&](const char* when) {
    gemm::gemm_prepacked(m, n, k, a.data(), k, fpanels.panels.data(),
                         c_float.data(), n);
    if (!gemm::pack_binary_a(m, k, a.data(), k, pa.data())) {
      std::fprintf(stderr,
                   "gemm_binary GATE FAILURE: on-grid activations rejected by "
                   "pack_binary_a (%s)\n", when);
      match = false;
      *gate_ok = false;
      return;
    }
    gemm::gemm_binary(m, n, k, pa.data(), bwords, c_bin.data(), n);
    if (std::memcmp(c_bin.data(), c_float.data(), m * n * sizeof(float)) !=
        0) {
      std::fprintf(stderr,
                   "gemm_binary GATE FAILURE: XNOR/popcount path diverged "
                   "from the float oracle bitwise (%s)\n", when);
      match = false;
      *gate_ok = false;
    }
    Tensor c_scalar({m, n});
    gemm::gemm_binary_with(gemm::binary_kernel_scalar(), m, n, k, pa.data(),
                           bwords, c_scalar.data(), n);
    if (std::memcmp(c_bin.data(), c_scalar.data(), m * n * sizeof(float)) !=
        0) {
      std::fprintf(stderr,
                   "gemm_binary GATE FAILURE: dispatched kernel '%s' diverged "
                   "from the scalar reference bitwise (%s)\n",
                   gemm::binary_kernel_name(), when);
      match = false;
      *gate_ok = false;
    }
  };

  // Cache semantics gate: one binary pack per weight version, zero on hits.
  bool repack_once = true;
  {
    Tensor latent = random_tensor({n, k}, 23);
    quant::BinaryPanelCache cache;
    const float* bw;
    const float* panels;
    const gemm::PackedBinaryB* pb;
    float scale;
    const std::uint64_t packs0 = gemm::binary_pack_count();
    cache.get(latent, true, n, k, false, &bw, &panels, &pb, &scale);
    cache.get(latent, true, n, k, false, &bw, &panels, &pb, &scale);
    repack_once = cache.rebuilds() == 1 &&
                  gemm::binary_pack_count() == packs0 + 1;
    latent.data()[0] += 1.0f;  // mutation bumps the version
    cache.get(latent, true, n, k, false, &bw, &panels, &pb, &scale);
    repack_once = repack_once && cache.rebuilds() == 2 &&
                  gemm::binary_pack_count() == packs0 + 2;
    if (!repack_once) {
      std::fprintf(stderr,
                   "gemm_binary GATE FAILURE: BinaryPanelCache did not pack "
                   "exactly once per weight version\n");
      *gate_ok = false;
    }
  }

  pool.set_num_threads(1);
  check("1 thread");
  const double t_float_1t = time_best(hc.reps, [&] {
    gemm::gemm_prepacked(m, n, k, a.data(), k, fpanels.panels.data(),
                         c_float.data(), n);
  });
  // Cold: weight words re-packed every call (what a cache miss costs).
  const double t_cold_1t = time_best(hc.reps, [&] {
    const gemm::PackedBinaryB fresh =
        gemm::prepack_binary_b_t(n, k, std::as_const(w).data(), k);
    (void)gemm::pack_binary_a(m, k, a.data(), k, pa.data());
    gemm::gemm_binary(m, n, k, pa.data(), fresh, c_bin.data(), n);
  });
  // Cached: the serving steady state — per-request A encode + kernel only.
  const double t_cached_1t = time_best(hc.reps, [&] {
    (void)gemm::pack_binary_a(m, k, a.data(), k, pa.data());
    gemm::gemm_binary(m, n, k, pa.data(), bwords, c_bin.data(), n);
  });
  const double t_kernel_1t = time_best(hc.reps, [&] {
    gemm::gemm_binary(m, n, k, pa.data(), bwords, c_bin.data(), n);
  });
  pool.set_num_threads(pool_threads);
  check("pool threads");
  const double t_float_mt = time_best(hc.reps, [&] {
    gemm::gemm_prepacked(m, n, k, a.data(), k, fpanels.panels.data(),
                         c_float.data(), n);
  });
  const double t_cached_mt = time_best(hc.reps, [&] {
    (void)gemm::pack_binary_a(m, k, a.data(), k, pa.data());
    gemm::gemm_binary(m, n, k, pa.data(), bwords, c_bin.data(), n);
  });

  Json out = Json::object();
  out.set("batch", m);
  out.set("out", n);
  out.set("in", k);
  out.set("kernel", gemm::binary_kernel_name());
  out.set("cpu_features", gemm::cpu_features());
  out.set("bitwise_match", match);
  out.set("repack_once", repack_once);
  out.set("float_packed_1t_ms", t_float_1t * 1e3);
  out.set("binary_cold_1t_ms", t_cold_1t * 1e3);
  out.set("binary_cached_1t_ms", t_cached_1t * 1e3);
  out.set("binary_kernel_only_1t_ms", t_kernel_1t * 1e3);
  out.set("float_packed_mt_ms", t_float_mt * 1e3);
  out.set("binary_cached_mt_ms", t_cached_mt * 1e3);
  out.set("gflops_float_1t", gflops(flops, t_float_1t));
  out.set("gflops_binary_cached_1t", gflops(flops, t_cached_1t));
  out.set("speedup_binary_vs_float_1t", t_float_1t / t_cached_1t);
  out.set("speedup_binary_vs_float_mt", t_float_mt / t_cached_mt);
  out.set("speedup_cached_vs_cold_1t", t_cold_1t / t_cached_1t);
  return out;
}

/// Trial-parallel noisy evaluation: sequential oracle vs the pool-dispatched
/// evaluator, with a correctness gate (the two must be bitwise equal — any
/// mismatch fails the harness). Records trial throughput so CI tracks the
/// trial-level scaling alongside the kernel numbers.
Json bench_eval_trials(const HarnessConfig& hc, std::size_t pool_threads,
                       bool* gate_ok) {
  using namespace gbo;
  models::MlpConfig mcfg;
  mcfg.in_features = 64;
  mcfg.hidden = {128, 128, 128};
  mcfg.num_classes = 10;
  models::Mlp model = models::build_mlp(mcfg);
  model.net->set_training(false);

  data::Dataset test;
  test.images = random_tensor({hc.eval_samples, mcfg.in_features}, 51);
  test.labels.resize(hc.eval_samples);
  Rng lrng(52);
  for (auto& l : test.labels)
    l = static_cast<std::size_t>(lrng.uniform_int(0, 9));

  const std::size_t trials = hc.eval_trials;
  ThreadPool& pool = ThreadPool::instance();

  // Fresh controller per run so every measurement replays trial ids [0, n).
  auto run = [&](bool sequential) {
    Rng rng(53);
    xbar::LayerNoiseController ctrl(model.encoded, 1.0, model.base_pulses(),
                                    rng);
    ctrl.attach();
    ctrl.set_enabled_all(true);
    const float acc =
        sequential
            ? core::evaluate_noisy_sequential(*model.net, ctrl, test, trials)
            : core::evaluate_noisy(*model.net, ctrl, test, trials);
    ctrl.detach();
    return acc;
  };

  pool.set_num_threads(1);
  const float acc_seq = run(true);
  const double t_seq = time_best(hc.reps, [&] { (void)run(true); });
  const float acc_par_1t = run(false);
  const double t_par_1t = time_best(hc.reps, [&] { (void)run(false); });
  pool.set_num_threads(pool_threads);
  const float acc_par_mt = run(false);
  const double t_par_mt = time_best(hc.reps, [&] { (void)run(false); });

  const bool match = acc_seq == acc_par_1t && acc_seq == acc_par_mt;
  if (!match) {
    std::fprintf(stderr,
                 "eval_trials GATE FAILURE: parallel evaluator diverged from "
                 "the sequential oracle (seq=%.9g par_1t=%.9g par_mt=%.9g)\n",
                 static_cast<double>(acc_seq), static_cast<double>(acc_par_1t),
                 static_cast<double>(acc_par_mt));
    *gate_ok = false;
  }

  Json out = Json::object();
  out.set("samples", hc.eval_samples);
  out.set("trials", trials);
  out.set("accuracy", acc_seq);
  out.set("bitwise_match", match);
  out.set("sequential_ms", t_seq * 1e3);
  out.set("parallel_1t_ms", t_par_1t * 1e3);
  out.set("parallel_mt_ms", t_par_mt * 1e3);
  out.set("trials_per_sec_sequential",
          t_seq > 0.0 ? static_cast<double>(trials) / t_seq : 0.0);
  out.set("trials_per_sec_mt",
          t_par_mt > 0.0 ? static_cast<double>(trials) / t_par_mt : 0.0);
  out.set("speedup_mt_vs_sequential", t_seq / t_par_mt);
  return out;
}

int run_harness(const HarnessConfig& hc) {
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t pool_threads = pool.num_threads();

  Json doc = Json::object();
  doc.set("bench", "micro_mvm");
  doc.set("smoke", hc.smoke);
  doc.set("num_threads", pool_threads);

  bool gate_ok = true;

  std::printf("[gemm] n=%zu (naive vs blocked, 1 vs %zu threads)...\n",
              hc.gemm_n, pool_threads);
  doc.set("gemm", bench_gemm_paths(hc, pool_threads));
  pool.set_num_threads(pool_threads);

  std::printf("[gemm packed] n=%zu (packed vs unpacked panels, bitwise "
              "gate)...\n", hc.gemm_n);
  doc.set("gemm_packed", bench_gemm_packed(hc, pool_threads, &gate_ok));
  pool.set_num_threads(pool_threads);

  std::printf("[gemm prepacked] n=%zu (cold vs cached weight panels, "
              "bitwise gate)...\n", hc.gemm_n);
  doc.set("gemm_prepacked", bench_gemm_prepacked(hc, pool_threads, &gate_ok));
  pool.set_num_threads(pool_threads);

  std::printf("[conv direct] %zux%zux%zux%zu -> %zu channels (direct 3x3 vs "
              "im2col, bitwise gate)...\n",
              hc.conv_batch, hc.conv_in_c, hc.conv_hw, hc.conv_hw,
              hc.conv_out_c);
  doc.set("conv_direct", bench_conv_direct(hc, pool_threads, &gate_ok));
  pool.set_num_threads(pool_threads);

  std::printf("[gemm binary] %zux%zu batch=%zu kernel=%s (xnor/popcount vs "
              "float panels, bitwise gate)...\n",
              hc.bin_out, hc.bin_in, hc.bin_batch,
              gemm::binary_kernel_name());
  doc.set("gemm_binary", bench_gemm_binary(hc, pool_threads, &gate_ok));
  pool.set_num_threads(pool_threads);

  std::printf("[analytic mvm] %zux%zu batch=%zu...\n", hc.mvm_out, hc.mvm_in,
              hc.mvm_batch);
  doc.set("analytic_mvm", bench_analytic_mvm(hc));

  std::printf("[pulse mvm] %zux%zu batch=%zu pulses=%zu (fused vs reference, "
              "bitwise gate)...\n",
              hc.pulse_out, hc.pulse_in, hc.pulse_batch, hc.pulses);
  doc.set("pulse_mvm", bench_pulse_mvm(hc, /*device_model=*/false, &gate_ok));
  doc.set("pulse_mvm_device_model",
          bench_pulse_mvm(hc, /*device_model=*/true, &gate_ok));

  std::printf("[eval trials] %zu samples x %zu trials (sequential oracle vs "
              "trial-parallel, %zu threads)...\n",
              hc.eval_samples, hc.eval_trials, pool_threads);
  doc.set("eval_trials", bench_eval_trials(hc, pool_threads, &gate_ok));
  pool.set_num_threads(pool_threads);
  if (!gate_ok) {
    std::fprintf(stderr, "bench_micro_mvm: bitwise gate failed; aborting\n");
    return 1;
  }

  if (!doc.write_file(hc.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", hc.json_path.c_str());
    return 1;
  }
  std::printf("%s\n", doc.dump(2).c_str());
  std::printf("wrote %s\n", hc.json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool gbench = false;
  HarnessConfig hc;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gbench") {
      gbench = true;
      // Forward the remaining args to google-benchmark.
      argv[i] = argv[0];
      argc -= i;
      argv += i;
      break;
    }
    if (arg == "--cpu-info") {
      // CI step: document the ISA the runner actually exercises.
      std::printf("binary_kernel: %s\ncpu_features: %s\n",
                  gbo::gemm::binary_kernel_name(),
                  gbo::gemm::cpu_features().c_str());
      return 0;
    }
    if (arg == "--smoke") {
      hc.smoke = true;
      hc.gemm_n = 128;
      hc.mvm_out = hc.mvm_in = 128;
      hc.pulse_out = 32;
      hc.pulse_in = 64;
      hc.pulse_batch = 8;
      hc.eval_samples = 512;
      hc.eval_trials = 8;
      hc.conv_in_c = 16;
      hc.conv_hw = 16;
      hc.conv_out_c = 32;
      hc.conv_batch = 4;
      hc.reps = 2;
    } else if (arg == "--json" && i + 1 < argc) {
      hc.json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json <path>] [--cpu-info] | "
                   "--gbench [...]\n",
                   argv[0]);
      return 2;
    }
  }
  if (gbench) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return run_harness(hc);
}
