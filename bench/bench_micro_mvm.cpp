// Micro-benchmarks (google-benchmark) of the simulation kernels: GEMM,
// im2col lowering, pulse-level vs analytic crossbar MVM, and encoders.
// These quantify the cost of the two simulation fidelities — the analytic
// mode's speedup over pulse-level execution is what makes the Table I/II
// training loops tractable on one core.
#include "crossbar/mvm_engine.hpp"
#include "encoding/bit_slicing.hpp"
#include "encoding/thermometer.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace gbo;

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  ops::fill_uniform(t, rng, -1.0f, 1.0f);
  return t;
}

Tensor random_binary(std::size_t out, std::size_t in, std::uint64_t seed) {
  Rng rng(seed);
  Tensor w({out, in});
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  return w;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Im2col(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  ConvGeom g{.in_c = 16, .in_h = s, .in_w = s, .k = 3, .stride = 1, .pad = 1};
  const Tensor x = random_tensor({8, 16, s, s}, 3);
  for (auto _ : state) {
    Tensor cols = im2col(x, g);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col)->Arg(16)->Arg(32);

void BM_ThermometerEncode(benchmark::State& state) {
  const Tensor x = random_tensor({4096}, 4);
  for (auto _ : state) {
    auto train = enc::thermometer_encode(x, 8);
    benchmark::DoNotOptimize(train.pulses.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_ThermometerEncode);

void BM_BitSlicingEncode(benchmark::State& state) {
  const Tensor x = random_tensor({4096}, 5);
  for (auto _ : state) {
    auto train = enc::bit_slicing_encode(x, 3);
    benchmark::DoNotOptimize(train.pulses.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_BitSlicingEncode);

void BM_MvmPulseLevel(benchmark::State& state) {
  const auto pulses = static_cast<std::size_t>(state.range(0));
  const Tensor w = random_binary(64, 256, 6);
  xbar::MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, pulses};
  cfg.sigma = 1.0;
  xbar::MvmEngine engine(w, cfg, Rng(7));
  const Tensor x = random_tensor({16, 256}, 8);
  for (auto _ : state) {
    Tensor y = engine.run_pulse_level(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MvmPulseLevel)->Arg(4)->Arg(8)->Arg(16);

void BM_MvmAnalytic(benchmark::State& state) {
  const Tensor w = random_binary(64, 256, 9);
  xbar::MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, 8};
  cfg.sigma = 1.0;
  xbar::MvmEngine engine(w, cfg, Rng(10));
  const Tensor x = random_tensor({16, 256}, 11);
  for (auto _ : state) {
    Tensor y = engine.run_analytic(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MvmAnalytic);

void BM_MvmWithDeviceModel(benchmark::State& state) {
  const Tensor w = random_binary(64, 256, 12);
  xbar::MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, 8};
  cfg.sigma = 1.0;
  cfg.device.program_variation = 0.1;
  cfg.device.adc_bits = 8;
  cfg.device.read_noise_sigma = 0.05;
  xbar::MvmEngine engine(w, cfg, Rng(13));
  const Tensor x = random_tensor({16, 256}, 14);
  for (auto _ : state) {
    Tensor y = engine.run_pulse_level(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MvmWithDeviceModel);

}  // namespace

BENCHMARK_MAIN();
