// Table I — Results on (Synth)CIFAR10 with VGG9: Baseline vs uniform PLA-n
// vs GBO heterogeneous schedules, at three noise operating points.
//
// The paper's σ ∈ {10, 15, 20} rows are anchored by their baseline
// accuracies (≈84% / 62% / 31%); we calibrate σ on our fan-in to the same
// baseline ladder (see DESIGN.md §2) and then reproduce every row:
//   Baseline  : uniform 8 pulses
//   PLA-n     : uniform n ∈ {10, 12, 14, 16} pulses
//   GBO       : argmax-λ schedule from gradient-based optimization, run at
//               two γ values to land near the PLA-10 and PLA-14 latency
//               budgets (paper reports GBO(~PLA10) and GBO(~PLA14)).
//
// Set GBO_NUM_THREADS to control the kernel thread pool (default: all
// hardware threads); accuracies are bitwise identical at any thread count.
//
// Shape to check against the paper: PLA recovers accuracy monotonically
// with n at every σ; GBO matches or beats the uniform schedule of similar
// average latency, with the margin growing as noise gets severe.
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "gbo/gbo.hpp"
#include "gbo/pla_schedule.hpp"

#include <cstdio>
#include <cstdlib>

using namespace gbo;

namespace {

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name); v && *v) return std::atof(v);
  return fallback;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name); v && *v) {
    const long p = std::atol(v);
    if (p > 0) return static_cast<std::size_t>(p);
  }
  return fallback;
}

}  // namespace

int main() {
  core::Experiment exp = core::make_experiment();
  const auto sigmas = core::calibrated_sigmas(exp);
  std::printf("clean accuracy (no crossbar noise): %.2f%%  [paper: 90.80%%]\n\n",
              100.0 * exp.clean_acc);

  // γ values aiming at the ~PLA10 and ~PLA14 latency budgets (calibrated on
  // the standard configuration at the middle σ operating point).
  const double gamma_short = env_double("GBO_GAMMA_SHORT", 2e-3);
  const double gamma_long = env_double("GBO_GAMMA_LONG", 5e-4);
  const std::size_t gbo_epochs = env_size("GBO_GBO_EPOCHS", 4);

  Rng rng(303);
  xbar::LayerNoiseController ctrl(exp.model.encoded, 0.0,
                                  exp.model.base_pulses(), rng);
  const std::size_t n_layers = exp.model.encoded.size();

  Table table({"Method", "Noise sigma", "# pulses in each layer", "Avg.# pulses",
               "Acc. (%)"});

  auto eval_schedule = [&](const std::string& method, double sigma,
                           const std::vector<std::size_t>& pulses) {
    ctrl.attach();
    ctrl.set_enabled_all(true);
    ctrl.set_sigma(sigma);
    ctrl.set_pulses(pulses);
    const float acc = core::evaluate_noisy(*exp.model.net, ctrl, exp.test, 3);
    ctrl.detach();
    const opt::PulseSchedule sched{pulses};
    table.add_row({method, Table::fmt(sigma, 2), sched.to_string(),
                   Table::fmt(sched.average(), 2), Table::fmt(100.0 * acc, 2)});
  };

  const double sigma_mid = sigmas.size() > 1 ? sigmas[1] : sigmas.front();
  for (double sigma : sigmas) {
    eval_schedule("Baseline", sigma, std::vector<std::size_t>(n_layers, 8));
    for (std::size_t n : {10u, 12u, 14u, 16u})
      eval_schedule("PLA" + std::to_string(n), sigma,
                    std::vector<std::size_t>(n_layers, n));

    for (const auto& [label, gamma] :
         {std::pair<const char*, double>{"GBO (~PLA10)", gamma_short},
          std::pair<const char*, double>{"GBO (~PLA14)", gamma_long}}) {
      opt::GboConfig gcfg;
      gcfg.sigma = sigma;
      // The CE pressure against short codes grows ~σ²; scaling γ the same
      // way keeps each run at its target latency budget across operating
      // points (the paper likewise tunes γ per reported GBO row).
      gcfg.gamma = gamma * (sigma * sigma) / (sigma_mid * sigma_mid);
      gcfg.epochs = gbo_epochs;
      // λ learning rate scaled up from the paper's 1e-4: our reduced
      // dataset yields ~20x fewer optimizer steps per epoch than CIFAR-10.
      gcfg.lr = static_cast<float>(env_double("GBO_GBO_LR", 5e-3));
      opt::GboTrainer trainer(*exp.model.net, exp.model.encoded, gcfg);
      trainer.train(exp.train);
      eval_schedule(label, sigma, trainer.selected_pulses());
      log_info(label, " at sigma=", sigma, " done");
    }
  }

  std::printf("== Table I: baseline / PLA / GBO on SynthCIFAR-VGG9 ==\n");
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv("table1.csv");
  std::printf("Rows written to table1.csv\n");
  return 0;
}
