// Table II — synergy of GBO with Noise-Injection Adaptation (NIA, He et
// al. DAC'19), at the three calibrated noise operating points:
//
//   Baseline    : pre-trained weights, 8 pulses
//   NIA         : noise-aware fine-tuned weights, 8 pulses
//   GBO         : pre-trained weights, GBO schedule
//   NIA + GBO   : fine-tuned weights, GBO schedule (re-optimized on them)
//   NIA + PLA   : fine-tuned weights, uniform 10 pulses
//
// Shape to check against the paper: NIA > GBO (weight adaptation can model
// the noise distribution directly); NIA+GBO beats both individually at
// every σ; the margin of NIA+GBO over NIA grows with σ.
#include "common/logging.hpp"
#include "common/serialize.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "gbo/gbo.hpp"
#include "gbo/pla_schedule.hpp"
#include "nia/nia.hpp"

#include <cstdio>
#include <cstdlib>

using namespace gbo;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name); v && *v) {
    const long p = std::atol(v);
    if (p > 0) return static_cast<std::size_t>(p);
  }
  return fallback;
}

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name); v && *v) return std::atof(v);
  return fallback;
}

}  // namespace

int main() {
  core::Experiment exp = core::make_experiment();
  const auto sigmas = core::calibrated_sigmas(exp);
  std::printf("clean accuracy: %.2f%%\n\n", 100.0 * exp.clean_acc);

  const std::size_t n_layers = exp.model.encoded.size();
  const double gamma = env_double("GBO_GAMMA_SHORT", 2e-3);  // ~PLA10 budget
  const std::size_t gbo_epochs = env_size("GBO_GBO_EPOCHS", 4);
  const std::size_t nia_epochs = env_size("GBO_NIA_EPOCHS", 3);

  // Keep the pristine pre-trained weights so every σ row starts clean.
  const StateDict pretrained = exp.model.net->state_dict();

  Rng rng(404);
  xbar::LayerNoiseController ctrl(exp.model.encoded, 0.0,
                                  exp.model.base_pulses(), rng);

  Table table({"Method", "Noise sigma", "Acc. (%)", "Avg.# pulses"});
  auto eval_row = [&](const std::string& method, double sigma,
                      const std::vector<std::size_t>& pulses) {
    ctrl.attach();
    ctrl.set_enabled_all(true);
    ctrl.set_sigma(sigma);
    ctrl.set_pulses(pulses);
    const float acc = core::evaluate_noisy(*exp.model.net, ctrl, exp.test, 3);
    ctrl.detach();
    table.add_row({method, Table::fmt(sigma, 2), Table::fmt(100.0 * acc, 2),
                   Table::fmt(opt::PulseSchedule{pulses}.average(), 2)});
  };

  const double sigma_mid = sigmas.size() > 1 ? sigmas[1] : sigmas.front();
  auto run_gbo = [&](double sigma) {
    opt::GboConfig gcfg;
    gcfg.sigma = sigma;
    // γ scaled with the σ² growth of the CE noise pressure (see
    // bench_table1.cpp) so the latency budget stays at ~PLA10.
    gcfg.gamma = gamma * (sigma * sigma) / (sigma_mid * sigma_mid);
    gcfg.epochs = gbo_epochs;
    gcfg.lr = static_cast<float>(env_double("GBO_GBO_LR", 5e-3));
    opt::GboTrainer trainer(*exp.model.net, exp.model.encoded, gcfg);
    trainer.train(exp.train);
    return trainer.selected_pulses();
  };

  const std::vector<std::size_t> base_pulses(n_layers, 8);
  const std::vector<std::size_t> pla10(n_layers, 10);

  for (double sigma : sigmas) {
    // --- pre-trained weights -------------------------------------------------
    exp.model.net->load_state_dict(pretrained);
    eval_row("Baseline", sigma, base_pulses);
    const auto gbo_sched = run_gbo(sigma);
    eval_row("GBO", sigma, gbo_sched);

    // --- NIA fine-tuned weights ----------------------------------------------
    exp.model.net->load_state_dict(pretrained);
    nia::NiaConfig ncfg;
    ncfg.sigma = sigma;
    ncfg.epochs = nia_epochs;
    // Validating overload: per-epoch noisy validation, trials dispatched on
    // the shared pool, so the log shows whether NIA is still improving.
    // Scored on the training set — the test set stays held out for the
    // table rows below.
    nia::nia_finetune(*exp.model.net, exp.model.encoded, exp.model.binary,
                      exp.train, exp.train, ncfg);
    eval_row("NIA", sigma, base_pulses);
    eval_row("NIA + PLA", sigma, pla10);
    const auto nia_gbo_sched = run_gbo(sigma);  // re-optimize λ on NIA weights
    eval_row("NIA + GBO", sigma, nia_gbo_sched);
    log_info("sigma=", sigma, " block done");
  }
  exp.model.net->load_state_dict(pretrained);

  std::printf("== Table II: synergy with noise-aware training ==\n");
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv("table2_nia.csv");
  std::printf("Rows written to table2_nia.csv\n");
  return 0;
}
