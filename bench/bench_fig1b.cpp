// Fig. 1b — noise variance vs number of information bits, bit slicing vs
// thermometer coding, normalized to the 1-bit baseline (== 1.0).
//
// Paper reference points (read from the figure): thermometer decays as
// 1/(2^b - 1); bit slicing plateaus near 1/3. This bench regenerates the
// two series analytically (Eq. 2 / Eq. 3) and cross-checks each point with
// a Monte-Carlo pulse-level simulation on a real crossbar model.
#include "common/table.hpp"
#include "crossbar/mvm_engine.hpp"
#include "encoding/noise_analysis.hpp"
#include "tensor/ops.hpp"

#include <cstdio>

using namespace gbo;

namespace {

/// Empirical accumulated-noise variance of one pulse-level MVM output.
double monte_carlo_variance(enc::Scheme scheme, std::size_t pulses) {
  Rng wr(100 + pulses);
  Tensor w({2, 12});
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = wr.bernoulli(0.5) ? 1.0f : -1.0f;
  Tensor x({1, 12});
  ops::fill_uniform(x, wr, -1.0f, 1.0f);

  xbar::MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{scheme, pulses};
  cfg.sigma = 1.0;
  xbar::MvmEngine engine(w, cfg, Rng(7));
  const Tensor ideal = engine.run_ideal(x);

  const int trials = 3000;
  double acc = 0.0;
  for (int t = 0; t < trials; ++t) {
    Tensor y = engine.run_pulse_level(x);
    const double d = y.at(0, 0) - ideal.at(0, 0);
    acc += d * d;
  }
  return acc / trials;
}

}  // namespace

int main() {
  std::printf("== Fig. 1b: normalized noise variance vs number of bits ==\n");
  std::printf("(sigma-normalized; 1-bit encoding defines variance 1.0)\n\n");

  Table table({"bits", "BS pulses", "TC pulses", "BS var (Eq.2)",
               "TC var (Eq.3)", "BS var (sim)", "TC var (sim)"});
  for (const auto& pt : enc::fig1b_series(6)) {
    const double bs_sim = monte_carlo_variance(enc::Scheme::kBitSlicing, pt.bs_pulses);
    const double tc_sim =
        monte_carlo_variance(enc::Scheme::kThermometer, pt.tc_pulses);
    table.add_row({std::to_string(pt.bits), std::to_string(pt.bs_pulses),
                   std::to_string(pt.tc_pulses), Table::fmt(pt.bs_variance, 4),
                   Table::fmt(pt.tc_variance, 4), Table::fmt(bs_sim, 4),
                   Table::fmt(tc_sim, 4)});
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv("fig1b.csv");
  std::printf("Shape check vs paper: thermometer strictly below bit slicing\n"
              "for b >= 2 and decaying ~2x per extra bit; bit slicing\n"
              "saturating toward 1/3. Series written to fig1b.csv\n");
  return 0;
}
