// Online-serving benchmark: drives the serve/ runtime (seeded traffic ->
// request queue -> dynamic micro-batcher -> worker pool) against both
// execution backends and writes BENCH_serve.json.
//
// Per scenario it reports request latency (p50/p95/p99/mean), throughput,
// queue depth, the micro-batch size histogram, arena accounting, and the
// frozen-weight cache counters — and enforces four hard gates:
//   * determinism: replaying the identical (seed, trace) pair must produce
//     bitwise-identical per-request payloads at 1 worker and at --workers
//     workers (and at max_batch vs unit batches) on both the analytic and
//     the pulse-level backend;
//   * zero-alloc steady state: after the warm-up run, a full serving run
//     must not grow any worker arena (steady_allocs == 0);
//   * zero-pack steady state (DESIGN.md §6): a steady-state run must
//     perform no weight packs and no binarizations — the per-layer caches
//     stamped with the weight version counters amortize both to the warmup;
//   * noisy fusion: stochastic scenarios must execute fused
//     (fusion == "fused_per_sample") with mean exec batch > 1, instead of
//     degenerating to unit batches.
// Any gate failure exits nonzero, so CI can sit on `bench_serve --smoke`.
//
// Timing caveat: latency numbers are only meaningful when the thread pool
// can run the trace producer and at least one worker concurrently
// (GBO_NUM_THREADS >= 2). At 1 thread the runtime degenerates to
// replay-then-drain — payloads identical, latencies inflated by design.
#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "crossbar/crossbar_layers.hpp"
#include "crossbar/hw_deploy.hpp"
#include "crossbar/mapper.hpp"
#include "crossbar/mvm_engine.hpp"
#include "models/mlp.hpp"
#include "models/vgg9.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "quant/binary_weight.hpp"
#include "serve/policy.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_binary.hpp"
#include "tensor/ops.hpp"

#include <cstdio>
#include <string>

namespace {

using namespace gbo;

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  ops::fill_uniform(t, rng, -1.0f, 1.0f);
  return t;
}

data::Dataset random_dataset(std::size_t n, std::size_t features,
                             std::uint64_t seed) {
  data::Dataset ds;
  ds.images = random_tensor({n, features}, seed);
  ds.labels.assign(n, 0);
  return ds;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  for (std::size_t i = 0; i < a.numel(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

struct GateState {
  bool ok = true;
  void fail(const char* scenario, const char* what) {
    std::fprintf(stderr, "serve GATE FAILURE [%s]: %s\n", scenario, what);
    ok = false;
  }
};

/// Folds the 1-worker and measured N-worker trace snapshots into the
/// scenario's "trace" JSON section and enforces the DESIGN.md §9 gates:
/// no ring overflow, no steady-state ring allocations, and a causal
/// fingerprint that is bitwise identical across worker counts AND equal to
/// the planner-derived oracle. Timing fields stay out of the fingerprint,
/// so every gated quantity is machine-independent. With tracing compiled
/// out (GBO_TRACE=0) or env-disabled the section records enabled=false and
/// no gate fires.
Json trace_section(const char* name, const obs::TraceSnapshot& snap1,
                   const obs::TraceSnapshot& snapN,
                   std::uint64_t expected_fp, std::size_t expected_events,
                   std::uint64_t steady_ring_allocs,
                   const std::string& trace_out, GateState* gates) {
  Json tr = obs::trace_summary(snapN);
  const bool enabled = obs::runtime_enabled();
  tr.set("enabled", enabled);
  if (!enabled) return tr;

  const std::uint64_t fp1 = obs::causal_fingerprint(snap1.events);
  const std::uint64_t fpN = obs::causal_fingerprint(snapN.events);
  tr.set("causal_fingerprint_1w", serve::hex64(fp1));
  tr.set("expected_causal_fingerprint", serve::hex64(expected_fp));
  tr.set("expected_causal_events", expected_events);
  tr.set("steady_ring_allocs", steady_ring_allocs);

  const bool match_workers = fp1 == fpN;
  if (!match_workers)
    gates->fail(name, "causal fingerprint differs between 1 and N workers");
  const bool match_oracle = fpN == expected_fp;
  if (!match_oracle)
    gates->fail(name, "causal fingerprint diverged from the plan oracle");
  const bool no_drops = snap1.dropped == 0 && snapN.dropped == 0;
  if (!no_drops) gates->fail(name, "trace ring overflowed (events dropped)");
  const bool no_ring_allocs = steady_ring_allocs == 0;
  if (!no_ring_allocs)
    gates->fail(name, "tracing allocated ring memory during the measured run");
  tr.set("causal_match_1_vs_n", match_workers);
  tr.set("causal_matches_oracle", match_oracle);
  tr.set("no_drops", no_drops);
  tr.set("zero_steady_ring_allocs", no_ring_allocs);

  if (!trace_out.empty()) {
    const std::string path = trace_out + name + ".json";
    if (obs::write_chrome_trace(snapN, path,
                                std::string("bench_serve ") + name))
      std::printf("  [%s] wrote %s\n", name, path.c_str());
    else
      std::fprintf(stderr, "  [%s] failed to write %s\n", name, path.c_str());
  }
  return tr;
}

/// Runs one backend through the full ladder: 1 worker, N workers (the
/// measured configuration, warmed then replayed for steady-state stats,
/// with the frozen-weight cache counters diffed around the steady run),
/// and a unit-batch server to pin the batching-boundary invariance.
/// `stochastic` scenarios additionally gate that execution fused on
/// per-sample streams instead of degenerating to unit batches.
Json run_scenario(const char* name, const serve::Backend& backend,
                  const data::Dataset& ds,
                  const std::vector<serve::Arrival>& trace,
                  std::size_t workers, const serve::BatchPolicy& policy,
                  std::uint64_t seed, bool stochastic,
                  const std::string& trace_out, GateState* gates) {
  serve::ServeConfig cfg;
  cfg.batch = policy;
  cfg.seed = seed;

  cfg.num_workers = 1;
  serve::InferenceServer one(
      serve::ServerSpec{}.primary(backend).dataset(ds).config(cfg));
  obs::begin_session();
  const serve::ServeReport rep1 = one.run(trace);
  const obs::TraceSnapshot snap1 = obs::end_session();

  cfg.num_workers = workers;
  serve::InferenceServer many(
      serve::ServerSpec{}.primary(backend).dataset(ds).config(cfg));
  many.warmup();
  (void)many.run(trace);  // warm run: sizes arenas/pools along real paths
  const std::uint64_t packs0 = gemm::b_pack_count();
  const std::uint64_t bins0 = quant::binarize_count();
  const std::uint64_t bpacks0 = gemm::binary_pack_count();
  const std::uint64_t bmvms0 = gemm::binary_mvm_count();
  // The warm run also minted every worker's trace ring; the measured run
  // must not allocate any (the zero_steady_ring_allocs gate).
  obs::begin_session();
  const std::uint64_t rings0 = obs::ring_allocs();
  const serve::ServeReport rep = many.run(trace);
  const obs::TraceSnapshot snapN = obs::end_session();
  const std::uint64_t steady_rings = obs::ring_allocs() - rings0;
  const std::uint64_t steady_packs = gemm::b_pack_count() - packs0;
  const std::uint64_t steady_bins = quant::binarize_count() - bins0;
  const std::uint64_t steady_bpacks = gemm::binary_pack_count() - bpacks0;
  const std::uint64_t binary_mvms = gemm::binary_mvm_count() - bmvms0;

  const bool match = bitwise_equal(rep1.outputs, rep.outputs);
  if (!match) gates->fail(name, "outputs differ between 1 and N workers");
  const bool steady = rep.arena.steady_allocs == 0;
  if (!steady) gates->fail(name, "arena grew during the steady-state run");
  // Zero-pack steady state (DESIGN.md §6): with the version-stamped panel
  // and binarize caches warm, a steady-state run must touch neither.
  const bool zero_packs = steady_packs == 0 && steady_bins == 0;
  if (!zero_packs)
    gates->fail(name, "steady-state run packed or binarized weights");
  // Same amortization contract for the binary sign words (DESIGN.md §8):
  // A-side encodes are per-request by design, but the cached weight words
  // must never be rebuilt in steady state.
  const bool zero_bpacks = steady_bpacks == 0;
  if (!zero_bpacks)
    gates->fail(name, "steady-state run re-packed binary sign words");
  // Stochastic configs must fuse their micro-batches on per-sample streams
  // (a regression to unit batches would forfeit the whole batching win).
  // Queue batch sizes are timing-dependent, so the gate compares execution
  // to the queue instead of to the wall clock: whatever batches the
  // micro-batcher formed must have executed as single fused calls
  // (mean_exec_batch keeps up with mean_batch), under the frozen
  // fused_per_sample mode. A runner so fast that every queue batch is a
  // unit batch cannot fail this spuriously.
  bool noisy_fused = true;
  if (stochastic) {
    noisy_fused = rep.fusion == "fused_per_sample" &&
                  rep.mean_exec_batch + 1e-9 >= rep.mean_batch;
    if (!noisy_fused)
      gates->fail(name, "stochastic scenario did not fuse micro-batches");
  }

  // Batching-boundary invariance is part of the contract for BOTH modes
  // (fused batches by kernel row-independence, per-sample streams by
  // construction) — replay with unit batches and demand identical payloads.
  bool batch_invariant = true;
  if (policy.max_batch > 1) {
    serve::ServeConfig unit = cfg;
    unit.batch.max_batch = 1;
    serve::InferenceServer us(
        serve::ServerSpec{}.primary(backend).dataset(ds).config(unit));
    batch_invariant = bitwise_equal(us.run(trace).outputs, rep.outputs);
    if (!batch_invariant)
      gates->fail(name, "outputs depend on the batching boundary");
  }

  std::printf(
      "  [%s] %zu req, %zu workers: p50=%.0fus p95=%.0fus p99=%.0fus "
      "tput=%.0f rps exec_batch=%.2f (%s) steady_allocs=%zu "
      "steady_packs=%zu %s\n",
      name, rep.completed, workers, rep.latency.p50_us, rep.latency.p95_us,
      rep.latency.p99_us, rep.throughput_rps, rep.mean_exec_batch,
      rep.fusion.c_str(), rep.arena.steady_allocs,
      static_cast<std::size_t>(steady_packs),
      match && steady && zero_packs && zero_bpacks && noisy_fused
          ? "OK" : "GATE-FAIL");

  Json j = rep.to_json();
  j.set("backend", backend.name());
  j.set("bitwise_1_vs_n_workers", match);
  j.set("batching_invariant", batch_invariant);
  j.set("arena_steady_state", steady);
  j.set("steady_weight_packs", steady_packs);
  j.set("steady_binarizes", steady_bins);
  j.set("steady_binary_packs", steady_bpacks);
  j.set("zero_steady_binary_packs", zero_bpacks);
  j.set("binary_mvms", binary_mvms);
  j.set("packs_per_request",
        rep.completed ? static_cast<double>(steady_packs) /
                            static_cast<double>(rep.completed)
                      : 0.0);
  j.set("zero_steady_packs", zero_packs);
  if (stochastic) j.set("noisy_fused", noisy_fused);
  // Legacy (non-SLO) runs admit and deliver every request exactly once, so
  // the oracle is a pure function of the trace length.
  j.set("trace",
        trace_section(name, snap1, snapN,
                      serve::expected_causal_fingerprint(trace.size()),
                      serve::expected_causal_event_count(trace.size()),
                      steady_rings, trace_out, gates));
  return j;
}

/// SLO control-plane scenario (DESIGN.md §7): a flash-crowd overload with
/// deterministic fault injection, served with the pulse backend as primary
/// and the analytic model as the fidelity-ladder fallback. Runs at 1 worker
/// and at `workers` workers and enforces the §7 hard gates:
///   * slo_payload_match      delivered payloads bitwise identical 1 vs N
///   * shed_set_deterministic runtime shed-set fingerprint == planner's, at
///                            both worker counts (cross-thread-pool equality
///                            is checked by tools/check_bench_gates.py over
///                            the 1t/4t JSON artifacts)
///   * zero_late_success      no served request past its deadline
///   * p99_bounded            served virtual p99 <= the deadline
///   * no_lost_requests       every planned-served request was delivered
///   * ladder_recovered       back to full fidelity after the burst
///   * overload_exercised     the burst actually shed + degraded work
///   * faults_retried         transients retried, the outage fell back and
///                            tripped the breaker
/// All gated quantities live on the virtual clock or are bitwise payload
/// comparisons — machine-independent by construction.
Json run_slo_scenario(const serve::Backend& primary,
                      const serve::Backend& degraded,
                      const data::Dataset& ds,
                      const std::vector<serve::Arrival>& trace,
                      std::size_t workers, const serve::ServeConfig& base,
                      const std::string& trace_out, GateState* gates) {
  const char* name = "slo_flash";
  const serve::Plan plan = serve::plan(trace, base.slo, base.batch);

  serve::ServeConfig cfg = base;
  cfg.num_workers = 1;
  serve::InferenceServer one(serve::ServerSpec{}
                                 .primary(primary)
                                 .degraded(degraded)
                                 .dataset(ds)
                                 .config(cfg));
  obs::begin_session();
  const serve::ServeReport rep1 = one.run(trace);
  const obs::TraceSnapshot snap1 = obs::end_session();
  cfg.num_workers = workers;
  serve::InferenceServer many(serve::ServerSpec{}
                                  .primary(primary)
                                  .degraded(degraded)
                                  .dataset(ds)
                                  .config(cfg));
  (void)many.run(trace);  // warm run: mints arenas + every worker trace ring
  obs::begin_session();
  const std::uint64_t rings0 = obs::ring_allocs();
  const serve::ServeReport rep = many.run(trace);
  const obs::TraceSnapshot snapN = obs::end_session();
  const std::uint64_t steady_rings = obs::ring_allocs() - rings0;

  const serve::PlanCounters& c = plan.counters;
  const bool payload_match = bitwise_equal(rep1.outputs, rep.outputs);
  if (!payload_match)
    gates->fail(name, "payloads differ between 1 and N workers");
  const bool shed_match = rep1.slo.exec_shed_set_hash == plan.shed_set_hash &&
                          rep.slo.exec_shed_set_hash == plan.shed_set_hash;
  if (!shed_match)
    gates->fail(name, "runtime shed set diverged from the plan");
  const bool zero_late = rep.slo.late_virtual == 0;
  if (!zero_late) gates->fail(name, "a served request missed its deadline");
  const bool p99_bounded =
      rep.slo.virtual_latency.p99_us > 0.0 &&
      rep.slo.virtual_latency.p99_us <=
          static_cast<double>(base.slo.deadline_us);
  if (!p99_bounded)
    gates->fail(name, "served virtual p99 exceeds the deadline");
  const bool no_lost = rep1.completed == c.served && rep.completed == c.served;
  if (!no_lost) gates->fail(name, "a planned-served request was not delivered");
  const bool recovered = rep.slo.final_ladder_level == 0;
  if (!recovered) gates->fail(name, "ladder did not recover after the burst");
  const bool overloaded = rep.slo.exec_shed > 0 &&
                          rep.slo.degraded_ladder > 0 &&
                          rep.slo.max_ladder_level >= 2;
  if (!overloaded)
    gates->fail(name, "flash crowd did not exercise the overload path");
  const bool faulted = rep.slo.exec_retried > 0 && rep.slo.exec_fallbacks > 0 &&
                       rep.slo.breaker_opens >= 1 &&
                       rep.slo.exec_retried == c.retried_requests &&
                       rep.slo.exec_faults == c.faults_injected;
  if (!faulted)
    gates->fail(name, "fault injection / retry accounting diverged");

  std::printf(
      "  [%s] %zu req: served=%zu shed=%zu (expired=%zu overload=%zu "
      "rejected=%zu evicted=%zu) degraded=%zu retried=%zu fallback=%zu "
      "breaker_opens=%zu vp99=%.0fus late=%zu ladder_max=%d->%d %s\n",
      name, rep.requests, rep.slo.served, rep.slo.exec_shed,
      rep.slo.shed_expired, rep.slo.shed_overload, rep.slo.rejected_capacity,
      rep.slo.evicted, rep.slo.exec_degraded, rep.slo.exec_retried,
      rep.slo.exec_fallbacks, rep.slo.breaker_opens,
      rep.slo.virtual_latency.p99_us, rep.slo.late_virtual,
      rep.slo.max_ladder_level, rep.slo.final_ladder_level,
      payload_match && shed_match && zero_late && p99_bounded && no_lost &&
              recovered && overloaded && faulted
          ? "OK"
          : "GATE-FAIL");

  Json j = rep.to_json();
  j.set("backend", primary.name() + "+" + degraded.name());
  j.set("slo_payload_match", payload_match);
  j.set("shed_set_deterministic", shed_match);
  j.set("zero_late_success", zero_late);
  j.set("p99_bounded", p99_bounded);
  j.set("no_lost_requests", no_lost);
  j.set("ladder_recovered", recovered);
  j.set("overload_exercised", overloaded);
  j.set("faults_retried", faulted);
  // SLO oracle: the full causal stream (admission verdicts, sheds, retries,
  // deliveries with virtual completion times, ladder/breaker transitions)
  // reconstructed from the Plan alone.
  j.set("trace", trace_section(name, snap1, snapN,
                               serve::expected_causal_fingerprint(plan),
                               serve::expected_causal_event_count(plan),
                               steady_rings, trace_out, gates));
  return j;
}

/// Column-sharded crossbar gate (DESIGN.md §10): the mapper-defined shard
/// sweep of one programmed array must be bitwise identical to the unsharded
/// sweep — at the engine level (noisy pulse path, where the global-
/// coordinate noise indexing carries the proof) and at the deployed-network
/// level (HwDeployConfig::shard_cols threaded through every engine).
Json run_sharded_section(GateState* gates) {
  const char* name = "sharded_mvm";

  // Engine level: a +/-0.5 binary weight, noisy pulse config, identical
  // seeds; only shard_cols differs between the two engines.
  Tensor w = random_tensor({40, 24}, 61);
  for (std::size_t i = 0; i < w.numel(); ++i)
    w.data()[i] = w.data()[i] >= 0.0f ? 0.5f : -0.5f;
  xbar::MvmConfig mcfg;
  mcfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, 8};
  mcfg.sigma = 0.5;
  mcfg.device.read_noise_sigma = 0.05;
  mcfg.device.adc_bits = 8;
  mcfg.device.program_variation = 0.05;
  xbar::MvmEngine plain(w, mcfg, Rng(77));
  xbar::MvmConfig shard_cfg = mcfg;
  shard_cfg.shard_cols = 16;
  xbar::MvmEngine sharded(w, shard_cfg, Rng(77));
  const Tensor x = random_tensor({6, 24}, 63);
  Rng r1(5), r2(5);
  const bool engine_match =
      bitwise_equal(plain.run_pulse_level(x, r1),
                    sharded.run_pulse_level(x, r2));
  if (!engine_match)
    gates->fail(name, "sharded engine sweep is not bitwise unsharded");
  xbar::TileShape tile;
  tile.cols = shard_cfg.shard_cols;
  const std::size_t num_shards = xbar::column_shards(w.dim(0), tile).size();

  // Deployed-network level: two HardwareNetworks programmed from the same
  // seed, one sharded, one not; same EvalContext seed per forward.
  models::MlpConfig ncfg;
  ncfg.in_features = 24;
  ncfg.hidden = {32, 32};
  ncfg.num_classes = 10;
  ncfg.seed = 21;
  models::Mlp net_a = models::build_mlp(ncfg);
  net_a.net->set_training(false);
  models::Mlp net_b = models::build_mlp(ncfg);
  net_b.net->set_training(false);
  xbar::HwDeployConfig hcfg;
  hcfg.sigma = 0.5;
  hcfg.device.read_noise_sigma = 0.05;
  hcfg.device.adc_bits = 8;
  hcfg.device.program_variation = 0.05;
  xbar::HardwareNetwork hw_plain(*net_a.net, net_a.encoded, hcfg);
  xbar::HwDeployConfig scfg = hcfg;
  scfg.shard_cols = 16;
  xbar::HardwareNetwork hw_sharded(*net_b.net, net_b.encoded, scfg);
  const Tensor batch = random_tensor({8, ncfg.in_features}, 65);
  nn::EvalContext ctx_a(Rng(9)), ctx_b(Rng(9));
  const bool network_match = bitwise_equal(hw_plain.forward(batch, ctx_a),
                                           hw_sharded.forward(batch, ctx_b));
  if (!network_match)
    gates->fail(name, "sharded deployed network is not bitwise unsharded");

  std::printf("  [%s] shards=%zu engine_bitwise=%s network_bitwise=%s %s\n",
              name, num_shards, engine_match ? "yes" : "no",
              network_match ? "yes" : "no",
              engine_match && network_match ? "OK" : "GATE-FAIL");

  Json j = Json::object();
  j.set("shard_cols", shard_cfg.shard_cols);
  j.set("num_shards", num_shards);
  j.set("engine_bitwise_sharded_vs_unsharded", engine_match);
  j.set("network_bitwise_sharded_vs_unsharded", network_match);
  return j;
}

/// Multi-replica router scenario (DESIGN.md §10): N replicas of a sharded
/// pulse backend behind the deterministic router, flash-crowd overload, one
/// replica down for the whole run. Gates, at 1 worker/replica and at
/// --workers workers/replica:
///   * router_payload_match   payloads bitwise identical 1 vs N workers
///   * routing_deterministic  runtime routing hash == route_plan()'s, both
///                            runs (1t/4t cross-artifact equality is checked
///                            by tools/check_bench_gates.py)
///   * replica_sheds_match    every replica's executed shed set == its §7
///                            sub-plan's fingerprint
///   * fleet_shed_match       fleet shed-set union == the plan's
///   * no_lost_requests       delivered == planned served, both runs
///   * replica_zero_allocs    no replica arena grew during the measured run
///   * outage_rerouted        the downed replica got zero traffic and the
///                            active set shrank below the deployment
///   * autoscale_bounded      active count within [min_replicas, alive]
///   * overload_exercised     the flash actually shed work fleet-wide
Json run_router_scenario(const serve::Backend& primary,
                         const serve::Backend& degraded,
                         const data::Dataset& ds,
                         const std::vector<serve::Arrival>& trace,
                         std::size_t workers, const serve::ServeConfig& base,
                         const serve::RouterPolicy& router,
                         std::size_t replicas, const std::string& trace_out,
                         GateState* gates) {
  const char* name = "router_flash";
  const serve::RouterPlan plan =
      serve::route_plan(trace, base.slo, base.batch, router, replicas);

  serve::ServeConfig cfg = base;
  cfg.num_workers = 1;
  serve::ReplicaGroup one(serve::ServerSpec{}
                              .primary(primary)
                              .degraded(degraded)
                              .dataset(ds)
                              .config(cfg)
                              .replicas(replicas)
                              .router(router));
  obs::begin_session();
  const serve::RouterReport rep1 = one.run(trace);
  const obs::TraceSnapshot snap1 = obs::end_session();

  cfg.num_workers = workers;
  serve::ReplicaGroup many(serve::ServerSpec{}
                               .primary(primary)
                               .degraded(degraded)
                               .dataset(ds)
                               .config(cfg)
                               .replicas(replicas)
                               .router(router));
  (void)many.run(trace);  // warm run: mints every replica's arenas + rings
  obs::begin_session();
  const std::uint64_t rings0 = obs::ring_allocs();
  const serve::RouterReport rep = many.run(trace);
  const obs::TraceSnapshot snapN = obs::end_session();
  const std::uint64_t steady_rings = obs::ring_allocs() - rings0;

  const bool payload_match =
      bitwise_equal(rep1.serve.outputs, rep.serve.outputs);
  if (!payload_match)
    gates->fail(name, "payloads differ between 1 and N workers per replica");
  const bool routing_match = rep1.routing_hash == plan.routing_hash &&
                             rep.routing_hash == plan.routing_hash;
  if (!routing_match)
    gates->fail(name, "runtime routing hash diverged from the plan");
  bool replica_sheds = true, replica_steady = true;
  for (std::size_t r = 0; r < replicas; ++r) {
    replica_sheds = replica_sheds &&
                    rep1.replicas[r].exec_shed_set_hash ==
                        rep1.replicas[r].plan_shed_set_hash &&
                    rep.replicas[r].exec_shed_set_hash ==
                        rep.replicas[r].plan_shed_set_hash;
    replica_steady = replica_steady && rep.replicas[r].steady_allocs == 0;
  }
  if (!replica_sheds)
    gates->fail(name, "a replica's shed set diverged from its sub-plan");
  if (!replica_steady)
    gates->fail(name, "a replica arena grew during the measured run");
  const bool fleet_shed =
      rep1.serve.slo.exec_shed_set_hash == plan.shed_set_hash &&
      rep.serve.slo.exec_shed_set_hash == plan.shed_set_hash;
  if (!fleet_shed)
    gates->fail(name, "fleet shed-set union diverged from the plan");
  const bool no_lost = rep1.serve.completed == plan.counters.served &&
                       rep.serve.completed == plan.counters.served;
  if (!no_lost) gates->fail(name, "a planned-served request was not delivered");
  std::size_t n_alive = 0, down_assigned = 0, downed = 0;
  for (std::size_t r = 0; r < replicas; ++r) {
    if (plan.alive[r]) {
      ++n_alive;
    } else {
      ++downed;
      down_assigned += rep.replicas[r].assigned;
    }
  }
  const bool rerouted = downed > 0 && down_assigned == 0 &&
                        plan.active_replicas < plan.total_replicas;
  if (!rerouted)
    gates->fail(name, "the outage did not reroute around the downed replica");
  const bool autoscaled = plan.active_replicas >= router.min_replicas &&
                          plan.active_replicas <= n_alive;
  if (!autoscaled)
    gates->fail(name, "autoscaler activated an out-of-bounds replica count");
  const bool overloaded = rep.serve.slo.exec_shed > 0;
  if (!overloaded)
    gates->fail(name, "flash crowd did not shed any work fleet-wide");

  std::printf(
      "  [%s] %zu req, %zu replicas (%zu alive, %zu active), %zu "
      "workers/replica: served=%zu shed=%zu routing=%s vp99=%.0fus %s\n",
      name, rep.serve.requests, plan.total_replicas, n_alive,
      plan.active_replicas, workers, rep.serve.slo.served,
      rep.serve.slo.exec_shed, serve::hex64(rep.routing_hash).c_str(),
      rep.serve.slo.virtual_latency.p99_us,
      payload_match && routing_match && replica_sheds && replica_steady &&
              fleet_shed && no_lost && rerouted && autoscaled && overloaded
          ? "OK"
          : "GATE-FAIL");

  Json j = rep.to_json();
  j.set("backend", primary.name() + "+" + degraded.name());
  j.set("plan_routing_hash", serve::hex64(plan.routing_hash));
  j.set("plan_shed_set_hash", serve::hex64(plan.shed_set_hash));
  j.set("router_payload_match", payload_match);
  j.set("routing_deterministic", routing_match);
  j.set("replica_sheds_match", replica_sheds);
  j.set("replica_zero_allocs", replica_steady);
  j.set("fleet_shed_match", fleet_shed);
  j.set("no_lost_requests", no_lost);
  j.set("outage_rerouted", rerouted);
  j.set("autoscale_bounded", autoscaled);
  j.set("overload_exercised", overloaded);
  // Fleet causal oracle: kRoute per request + per-replica ledgers with
  // replica-major renumbered transitions, reconstructed from the plan.
  j.set("trace", trace_section(name, snap1, snapN,
                               serve::expected_causal_fingerprint(plan),
                               serve::expected_causal_event_count(plan),
                               steady_rings, trace_out, gates));
  return j;
}

/// One leg of the hot-swap scenario (DESIGN.md §11): a canary rollout under
/// the flash crowd, run at 1 worker and `workers` workers per replica with
/// the full trace ladder, then compared row-for-row against the two pinned
/// single-version reference runs. Gates:
///   * swap_payload_match     payloads, versions, and the provenance hash
///                            bitwise identical 1 vs N workers per replica
///   * zero_dropped_by_swap   exec shed-set fingerprint == the version-blind
///                            plan's (== the no-swap fleet's shed set)
///   * provenance_exact       every delivered row bitwise equals the pinned
///                            run of exactly the version the plan pinned it
///                            to — no mixed-version payloads
///   * verdict_exercised      promote leg: all replicas cut over, candidate
///                            payloads delivered; rollback leg: the breaker
///                            opened, the canary cut back, post-verdict
///                            admissions pinned to the incumbent
///   * swap_zero_allocs/packs prepack-before-cutover: the measured swap run
///                            grows no arena and packs/binarizes nothing
/// plus the §9 trace gates (fingerprint 1w == Nw == plan oracle, including
/// the kSwap/kCanary events).
Json run_swap_leg(const char* name, const char* backend_label,
                  serve::ServerSpec spec,
                  const std::vector<serve::Arrival>& trace,
                  std::size_t workers, serve::ServeConfig cfg,
                  const serve::ServeReport& pin_from,
                  const serve::ServeReport& pin_to, bool expect_rollback,
                  const std::string& trace_out, GateState* gates) {
  cfg.num_workers = 1;
  serve::ReplicaGroup one(spec.config(cfg));
  const serve::RouterPlan plan = one.plan_trace(trace);
  obs::begin_session();
  const serve::RouterReport rep1 = one.run(trace);
  const obs::TraceSnapshot snap1 = obs::end_session();

  cfg.num_workers = workers;
  serve::ReplicaGroup many(spec.config(cfg));
  (void)many.run(trace);  // warm run: arenas + rings + every pinned backend
  const std::uint64_t packs0 = gemm::b_pack_count();
  const std::uint64_t bins0 = quant::binarize_count();
  const std::uint64_t bpacks0 = gemm::binary_pack_count();
  obs::begin_session();
  const std::uint64_t rings0 = obs::ring_allocs();
  const serve::RouterReport rep = many.run(trace);
  const obs::TraceSnapshot snapN = obs::end_session();
  const std::uint64_t steady_rings = obs::ring_allocs() - rings0;
  const std::uint64_t steady_packs = gemm::b_pack_count() - packs0;
  const std::uint64_t steady_bins = quant::binarize_count() - bins0;
  const std::uint64_t steady_bpacks = gemm::binary_pack_count() - bpacks0;

  const serve::SwapSummary& sw = rep.serve.swap;
  const bool payload_match =
      bitwise_equal(rep1.serve.outputs, rep.serve.outputs) &&
      rep1.serve.versions == rep.serve.versions &&
      rep1.serve.swap.version_hash == sw.version_hash;
  if (!payload_match)
    gates->fail(name, "payloads or provenance differ between 1 and N workers");

  // The overlay is version-blind: the swap must not change who was shed.
  const bool zero_dropped =
      rep.serve.slo.exec_shed_set_hash == plan.shed_set_hash &&
      rep.serve.slo.exec_shed_set_hash == pin_from.slo.exec_shed_set_hash;
  if (!zero_dropped)
    gates->fail(name, "the swap changed the shed set (dropped live traffic)");

  // Zero mixed-version payloads: row-for-row attribution to the pinned runs.
  bool provenance_exact = rep.serve.versions == plan.swap.version_of;
  std::size_t to_rows = 0;
  const std::size_t out_dim = rep.serve.outputs.shape()[1];
  for (std::size_t i = 0; i < trace.size() && provenance_exact; ++i) {
    const bool is_to = plan.swap.version_of[i] == plan.swap.to_version;
    const Tensor& want = is_to ? pin_to.outputs : pin_from.outputs;
    for (std::size_t j = 0; j < out_dim; ++j)
      provenance_exact =
          provenance_exact && rep.serve.outputs.at(i, j) == want.at(i, j);
    if (is_to && plan.decisions[i].served() &&
        (plan.decisions[i].mode == serve::ServeMode::kPrimary ||
         plan.decisions[i].mode == serve::ServeMode::kCanary))
      ++to_rows;
  }
  if (!provenance_exact)
    gates->fail(name, "a payload row does not match its pinned version");

  bool verdict_ok;
  if (expect_rollback) {
    // The breaker must have opened, cut the canary back, and pinned every
    // post-verdict admission to the incumbent.
    verdict_ok = sw.rolled_back && sw.breaker_opens >= 1 && sw.cutovers == 2;
    for (std::size_t i = 0; i < trace.size(); ++i)
      if (trace[i].t_us >= sw.verdict_us)
        verdict_ok = verdict_ok &&
                     plan.swap.version_of[i] == plan.swap.from_version;
    if (!verdict_ok)
      gates->fail(name, "faulty candidate did not roll back cleanly");
  } else {
    // Promotion must have cut every active replica over and actually moved
    // payloads onto the candidate.
    verdict_ok = !sw.rolled_back && sw.cutovers == plan.active.size() &&
                 sw.canary_faults == 0 && to_rows > 0;
    if (!verdict_ok)
      gates->fail(name, "clean candidate did not promote fleet-wide");
  }

  bool replica_steady = true;
  for (const auto& r : rep.replicas)
    replica_steady = replica_steady && r.steady_allocs == 0;
  if (!replica_steady)
    gates->fail(name, "a replica arena grew during the swap run");
  const bool zero_packs =
      steady_packs == 0 && steady_bins == 0 && steady_bpacks == 0;
  if (!zero_packs)
    gates->fail(name, "swap run packed or binarized weights in steady state");

  std::printf(
      "  [%s] %zu req, %zu workers/replica: %s at %lluus, canary %zu/%zu "
      "faults, %zu cutovers, versions=%s %s\n",
      name, rep.serve.requests, workers,
      sw.rolled_back ? "ROLLBACK" : "promote",
      static_cast<unsigned long long>(sw.verdict_us), sw.canary_faults,
      sw.canary_served, sw.cutovers, serve::hex64(sw.version_hash).c_str(),
      payload_match && zero_dropped && provenance_exact && verdict_ok &&
              replica_steady && zero_packs
          ? "OK"
          : "GATE-FAIL");
  const auto vrows = serve::version_report_rows(rep.serve);
  for (const auto& row : vrows)
    std::printf("    v%s: served=%s %s\n", row[0].c_str(), row[1].c_str(),
                row[2].c_str());

  Json j = rep.to_json();
  j.set("backend", std::string(backend_label));
  j.set("plan_shed_set_hash", serve::hex64(plan.shed_set_hash));
  j.set("plan_version_hash", serve::hex64(plan.swap.version_hash));
  j.set("swap_payload_match", payload_match);
  j.set("zero_dropped_by_swap", zero_dropped);
  j.set("provenance_exact", provenance_exact);
  j.set("verdict_exercised", verdict_ok);
  j.set("swap_zero_allocs", replica_steady);
  j.set("swap_zero_packs", zero_packs);
  j.set("steady_weight_packs", steady_packs);
  j.set("steady_binarizes", steady_bins);
  j.set("trace", trace_section(name, snap1, snapN,
                               serve::expected_causal_fingerprint(plan),
                               serve::expected_causal_event_count(plan),
                               steady_rings, trace_out, gates));
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gbo;
  CliParser cli("bench_serve",
                "Online micro-batching serving benchmark (BENCH_serve.json).");
  cli.add_flag("smoke", "Shrink the traces so CI finishes in seconds");
  cli.add_option("json", "Output JSON path", "BENCH_serve.json");
  cli.add_option("slo-json", "SLO-scenario output JSON path",
                 "BENCH_serve_slo.json");
  cli.add_option("router-json", "Router-scenario output JSON path",
                 "BENCH_serve_router.json");
  cli.add_option("swap-json", "Hot-swap-scenario output JSON path",
                 "BENCH_serve_swap.json");
  cli.add_option("requests", "Analytic-scenario trace length", "auto");
  cli.add_option("rate", "Mean arrival rate, requests/s", "auto");
  cli.add_option("workers", "Serving worker count", "4");
  cli.add_option("trace-out",
                 "Chrome trace-event JSON path prefix; writes "
                 "<prefix><scenario>.json per scenario (empty disables)",
                 "");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  set_log_level(LogLevel::kWarn);

  const bool smoke = cli.get_bool("smoke");
  const std::string json_path = cli.get_string("json", "BENCH_serve.json");
  const std::string slo_json_path =
      cli.get_string("slo-json", "BENCH_serve_slo.json");
  const std::string router_json_path =
      cli.get_string("router-json", "BENCH_serve_router.json");
  const std::string swap_json_path =
      cli.get_string("swap-json", "BENCH_serve_swap.json");
  const auto workers =
      static_cast<std::size_t>(cli.get_int("workers", 4));
  const auto requests = static_cast<std::size_t>(
      cli.get_int("requests", smoke ? 240 : 2000));
  const double rate = cli.get_double("rate", smoke ? 6000.0 : 10000.0);
  const std::string trace_out = cli.get_string("trace-out", "");

  ThreadPool& pool = ThreadPool::instance();
  std::printf("bench_serve: %zu requests @ %.0f rps, %zu workers, "
              "%zu pool threads\n",
              requests, rate, workers, pool.num_threads());

  Json doc = Json::object();
  doc.set("bench", "serve");
  doc.set("smoke", smoke);
  doc.set("num_threads", pool.num_threads());
  doc.set("workers", workers);
  doc.set("binary_kernel", gemm::binary_kernel_name());
  doc.set("cpu_features", gemm::cpu_features());
  doc.set("trace_enabled", obs::runtime_enabled());
  GateState gates;

  // -- analytic backends over a binary-weight MLP ---------------------------
  models::MlpConfig mcfg;
  mcfg.in_features = smoke ? 32 : 64;
  mcfg.hidden = smoke ? std::vector<std::size_t>{64, 64}
                      : std::vector<std::size_t>{128, 128, 128};
  mcfg.num_classes = 10;
  models::Mlp model = models::build_mlp(mcfg);
  model.net->set_training(false);
  data::Dataset ds = random_dataset(256, mcfg.in_features, 41);

  serve::TrafficConfig tcfg;
  tcfg.num_requests = requests;
  tcfg.rate_rps = rate;
  tcfg.burst_factor = 3.0;
  tcfg.burst_duty = 0.3;
  tcfg.burst_period_s = 0.01;
  tcfg.seed = 5;
  const auto trace = serve::make_trace(tcfg, ds.size());
  Json tj = Json::object();
  tj.set("requests", requests);
  tj.set("rate_rps", rate);
  tj.set("burst_factor", tcfg.burst_factor);
  tj.set("burst_duty", tcfg.burst_duty);
  doc.set("traffic", tj);

  serve::BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_wait_us = 200;

  {
    serve::AnalyticBackend clean(*model.net, /*stochastic=*/false);
    doc.set("analytic_clean",
            run_scenario("analytic_clean", clean, ds, trace, workers, policy,
                         /*seed=*/17, /*stochastic=*/false, trace_out,
                         &gates));
  }
  {
    Rng crng(53);
    xbar::LayerNoiseController ctrl(model.encoded, /*sigma=*/1.0,
                                    model.base_pulses(), crng);
    ctrl.attach();
    ctrl.set_enabled_all(true);
    // Run at a non-base pulse count so every request crosses the PLA
    // re-quantization (now snapped in place): the steady-state arena gate
    // covers the full GBO-optimized serving path, not just the base
    // encoding.
    ctrl.set_specs(std::vector<enc::EncodingSpec>(
        model.encoded.size(),
        enc::EncodingSpec{enc::Scheme::kThermometer,
                          model.base_pulses() - 2}));
    serve::AnalyticBackend noisy(*model.net, /*stochastic=*/true);
    doc.set("analytic_noisy",
            run_scenario("analytic_noisy", noisy, ds, trace, workers, policy,
                         /*seed=*/17, /*stochastic=*/true, trace_out,
                         &gates));
    ctrl.detach();
  }

  // -- conv serving over a reduced VGG9: the scenario whose per-request
  // weight packing the panel caches amortize to zero (an MLP's weights are
  // below the panel floor; conv layers always stream packed panels) -------
  {
    models::Vgg9Config vcfg;
    vcfg.in_channels = 3;
    vcfg.image_size = 8;
    vcfg.width = 8;
    vcfg.seed = 11;
    models::Vgg9 vgg = models::build_vgg9(vcfg);
    vgg.net->set_training(false);
    data::Dataset vds;
    vds.images = random_tensor(
        {64, vcfg.in_channels, vcfg.image_size, vcfg.image_size}, 47);
    vds.labels.assign(64, 0);

    serve::TrafficConfig vtraffic = tcfg;
    vtraffic.num_requests = smoke ? 96 : 400;
    vtraffic.rate_rps = smoke ? 2000.0 : 4000.0;
    vtraffic.seed = 9;
    const auto vtrace = serve::make_trace(vtraffic, vds.size());

    {
      serve::AnalyticBackend clean(*vgg.net, /*stochastic=*/false);
      doc.set("conv_clean",
              run_scenario("conv_clean", clean, vds, vtrace, workers, policy,
                           /*seed=*/19, /*stochastic=*/false, trace_out,
                           &gates));
    }
    {
      Rng crng(59);
      xbar::LayerNoiseController ctrl(vgg.encoded, /*sigma=*/1.0,
                                      vgg.base_pulses(), crng);
      ctrl.attach();
      ctrl.set_enabled_all(true);
      serve::AnalyticBackend noisy(*vgg.net, /*stochastic=*/true);
      doc.set("conv_noisy",
              run_scenario("conv_noisy", noisy, vds, vtrace, workers, policy,
                           /*seed=*/19, /*stochastic=*/true, trace_out,
                           &gates));
      ctrl.detach();
    }
  }

  // -- pulse-level backend over deployed crossbar hardware ------------------
  {
    models::MlpConfig pcfg;
    pcfg.in_features = 24;
    // Two hidden layers so fc2 is crossbar-encoded: the pulse scenario then
    // actually streams per-sample read/output noise through an engine.
    pcfg.hidden = {32, 32};
    pcfg.num_classes = 10;
    pcfg.seed = 21;
    models::Mlp pulse_model = models::build_mlp(pcfg);
    pulse_model.net->set_training(false);
    data::Dataset pds = random_dataset(128, pcfg.in_features, 43);

    xbar::HwDeployConfig hw_cfg;
    hw_cfg.sigma = 0.5;
    hw_cfg.device.read_noise_sigma = 0.05;
    hw_cfg.device.adc_bits = 8;
    hw_cfg.device.program_variation = 0.05;
    xbar::HardwareNetwork hw(*pulse_model.net, pulse_model.encoded, hw_cfg);

    serve::TrafficConfig ptraffic = tcfg;
    ptraffic.num_requests = smoke ? 96 : 400;
    ptraffic.rate_rps = smoke ? 2000.0 : 4000.0;
    ptraffic.seed = 7;
    const auto ptrace = serve::make_trace(ptraffic, pds.size());

    serve::PulseBackend pulse(hw);
    doc.set("pulse", run_scenario("pulse", pulse, pds, ptrace, workers,
                                  policy, /*seed=*/29, /*stochastic=*/true,
                                  trace_out, &gates));
  }

  // -- SLO control plane under a flash crowd with injected faults ----------
  // (DESIGN.md §7): pulse backend as primary, the analytic model over the
  // same network as the fidelity-ladder fallback. The scenario is fixed by
  // --smoke alone (independent of --requests/--rate) so the 1t and 4t CI
  // artifacts describe the identical (seed, trace, policy) tuple and
  // check_bench_gates.py can demand equal shed-set fingerprints across
  // them.
  Json slo_doc = Json::object();
  slo_doc.set("bench", "serve_slo");
  slo_doc.set("smoke", smoke);
  slo_doc.set("num_threads", pool.num_threads());
  slo_doc.set("workers", workers);
  slo_doc.set("binary_kernel", gemm::binary_kernel_name());
  slo_doc.set("cpu_features", gemm::cpu_features());
  slo_doc.set("trace_enabled", obs::runtime_enabled());
  {
    models::MlpConfig scfg;
    scfg.in_features = 24;
    scfg.hidden = {32, 32};  // fc2 crossbar-encoded: real pulse execution
    scfg.num_classes = 10;
    scfg.seed = 21;
    models::Mlp slo_model = models::build_mlp(scfg);
    slo_model.net->set_training(false);
    data::Dataset sds = random_dataset(128, scfg.in_features, 43);

    xbar::HwDeployConfig hw_cfg;
    hw_cfg.sigma = 0.5;
    hw_cfg.device.read_noise_sigma = 0.05;
    hw_cfg.device.adc_bits = 8;
    hw_cfg.device.program_variation = 0.05;
    xbar::HardwareNetwork hw(*slo_model.net, slo_model.encoded, hw_cfg);
    serve::PulseBackend primary(hw);
    serve::AnalyticBackend fallback(*slo_model.net, /*stochastic=*/false);

    serve::TrafficConfig straffic;
    straffic.num_requests = smoke ? 320 : 1200;
    straffic.rate_rps = 900.0;
    straffic.shape = serve::TraceShape::kFlashCrowd;
    straffic.flash_factor = 14.0;
    straffic.flash_start_s = smoke ? 0.05 : 0.2;
    straffic.flash_ramp_s = 0.005;
    straffic.flash_hold_s = smoke ? 0.02 : 0.05;
    straffic.high_fraction = 0.2;
    straffic.low_fraction = 0.3;
    straffic.seed = 101;
    const auto strace = serve::make_trace(straffic, sds.size());
    Json stj = Json::object();
    stj.set("requests", straffic.num_requests);
    stj.set("rate_rps", straffic.rate_rps);
    stj.set("flash_factor", straffic.flash_factor);
    stj.set("shape", "flash_crowd");
    slo_doc.set("traffic", stj);

    serve::ServeConfig scfg2;
    scfg2.batch = policy;
    scfg2.seed = 29;
    scfg2.slo.enabled = true;
    scfg2.slo.deadline_us = 15000;
    // Headroom covers the worst batch cost (50 + 8 * (800 + 100) = 7250),
    // so pop-time shedding guarantees zero late completions.
    scfg2.slo.completion_headroom_us = 9000;
    scfg2.slo.queue.capacity = 64;
    scfg2.slo.queue.on_full = serve::QueuePolicy::OnFull::kDropOldest;
    scfg2.slo.cost.batch_fixed_us = 50;
    scfg2.slo.cost.primary_us = 800;
    scfg2.slo.cost.degraded_us = 100;
    scfg2.slo.cost.retry_penalty_us = 100;
    scfg2.slo.ladder.degrade_depth = 8;
    scfg2.slo.ladder.shed_depth = 30;
    scfg2.slo.ladder.recover_depth = 2;
    scfg2.slo.ladder.shed_floor = serve::Priority::kNormal;
    scfg2.slo.retry.max_attempts = 2;
    scfg2.slo.retry.backoff_us = 50;
    scfg2.slo.breaker.failure_threshold = 3;
    scfg2.slo.breaker.cooldown_us = 30000;
    scfg2.slo.fault.enabled = true;
    scfg2.slo.fault.seed = 555;
    scfg2.slo.fault.transient_rate = 0.08;
    scfg2.slo.fault.outage_start_id = 30;  // pre-flash: hits the level-0 path
    scfg2.slo.fault.outage_len = 12;

    slo_doc.set("slo_flash",
                run_slo_scenario(primary, fallback, sds, strace, workers,
                                 scfg2, trace_out, &gates));
  }

  // -- sharded multi-replica serving behind the deterministic router -------
  // (DESIGN.md §10): the slo_flash model deployed as N sharded-crossbar
  // replicas, flash crowd + one replica in outage. Like the SLO scenario the
  // shape is fixed by --smoke alone, so the 1t and 4t artifacts describe
  // the identical (seed, trace, policy, replicas) tuple and
  // check_bench_gates.py can demand equal routing and shed fingerprints
  // across them.
  Json router_doc = Json::object();
  router_doc.set("bench", "serve_router");
  router_doc.set("smoke", smoke);
  router_doc.set("num_threads", pool.num_threads());
  router_doc.set("workers", workers);
  router_doc.set("binary_kernel", gemm::binary_kernel_name());
  router_doc.set("cpu_features", gemm::cpu_features());
  router_doc.set("trace_enabled", obs::runtime_enabled());
  router_doc.set("sharded_mvm", run_sharded_section(&gates));
  {
    models::MlpConfig rcfg;
    rcfg.in_features = 24;
    rcfg.hidden = {32, 32};
    rcfg.num_classes = 10;
    rcfg.seed = 21;
    models::Mlp router_model = models::build_mlp(rcfg);
    router_model.net->set_training(false);
    data::Dataset rds = random_dataset(128, rcfg.in_features, 43);

    // Every replica serves through the column-sharded pulse path: the
    // engines execute mapper-defined shards, the payload gates pin the
    // result to the unsharded bits (run_sharded_section above).
    xbar::HwDeployConfig hw_cfg;
    hw_cfg.sigma = 0.5;
    hw_cfg.device.read_noise_sigma = 0.05;
    hw_cfg.device.adc_bits = 8;
    hw_cfg.device.program_variation = 0.05;
    hw_cfg.shard_cols = 16;
    xbar::HardwareNetwork hw(*router_model.net, router_model.encoded, hw_cfg);
    serve::PulseBackend primary(hw);
    serve::AnalyticBackend fallback(*router_model.net, /*stochastic=*/false);

    serve::TrafficConfig rtraffic;
    rtraffic.num_requests = smoke ? 320 : 1200;
    rtraffic.rate_rps = 1600.0;
    rtraffic.shape = serve::TraceShape::kFlashCrowd;
    rtraffic.flash_factor = 14.0;
    rtraffic.flash_start_s = smoke ? 0.05 : 0.2;
    rtraffic.flash_ramp_s = 0.005;
    rtraffic.flash_hold_s = smoke ? 0.02 : 0.05;
    rtraffic.high_fraction = 0.2;
    rtraffic.low_fraction = 0.3;
    rtraffic.seed = 101;
    const auto rtrace = serve::make_trace(rtraffic, rds.size());
    Json rtj = Json::object();
    rtj.set("requests", rtraffic.num_requests);
    rtj.set("rate_rps", rtraffic.rate_rps);
    rtj.set("flash_factor", rtraffic.flash_factor);
    rtj.set("shape", "flash_crowd");
    router_doc.set("traffic", rtj);

    serve::ServeConfig rcfg2;
    rcfg2.batch = policy;
    rcfg2.seed = 29;
    rcfg2.slo.enabled = true;
    rcfg2.slo.deadline_us = 15000;
    rcfg2.slo.completion_headroom_us = 9000;
    rcfg2.slo.queue.capacity = 64;
    rcfg2.slo.queue.on_full = serve::QueuePolicy::OnFull::kDropOldest;
    rcfg2.slo.cost.batch_fixed_us = 50;
    rcfg2.slo.cost.primary_us = 800;
    rcfg2.slo.cost.degraded_us = 100;
    rcfg2.slo.ladder.degrade_depth = 8;
    rcfg2.slo.ladder.shed_depth = 30;
    rcfg2.slo.ladder.recover_depth = 2;
    rcfg2.slo.ladder.shed_floor = serve::Priority::kNormal;

    serve::RouterPolicy router;
    router.strategy = serve::RouterPolicy::Strategy::kHash;
    router.seed = 71;
    router.min_replicas = 1;
    router.scale_depth = 24;  // autoscale off the planned queue depth
    // Replica 1 is down for the whole run (fault id == replica index).
    router.fault.enabled = true;
    router.fault.outage_start_id = 1;
    router.fault.outage_len = 1;

    router_doc.set("replicas", std::size_t{3});
    router_doc.set("strategy", "hash");
    router_doc.set("router_flash",
                   run_router_scenario(primary, fallback, rds, rtrace,
                                       workers, rcfg2, router, /*replicas=*/3,
                                       trace_out, &gates));
  }
  // -- zero-downtime weight hot-swap under the flash crowd -----------------
  // (DESIGN.md §11): an incumbent/candidate pair of equal topology but
  // different weights behind a 3-replica fleet; the canary controller swaps
  // replica 0 mid-trace, judges the candidate through the breaker, then
  // promotes fleet-wide (clean leg) or rolls back (seeded always-faulty
  // leg). Shape fixed by --smoke alone so the 1t and 4t artifacts describe
  // the identical tuple and check_bench_gates.py can demand equal
  // provenance/shed/causal fingerprints across them.
  Json swap_doc = Json::object();
  swap_doc.set("bench", "serve_swap");
  swap_doc.set("smoke", smoke);
  swap_doc.set("num_threads", pool.num_threads());
  swap_doc.set("workers", workers);
  swap_doc.set("binary_kernel", gemm::binary_kernel_name());
  swap_doc.set("cpu_features", gemm::cpu_features());
  swap_doc.set("trace_enabled", obs::runtime_enabled());
  {
    models::MlpConfig wcfg;
    wcfg.in_features = 24;
    wcfg.hidden = {32, 32};
    wcfg.num_classes = 10;
    wcfg.seed = 21;
    models::Mlp incumbent_model = models::build_mlp(wcfg);
    incumbent_model.net->set_training(false);
    wcfg.seed = 77;  // same topology, different weights: rows prove versions
    models::Mlp candidate_model = models::build_mlp(wcfg);
    candidate_model.net->set_training(false);
    models::MlpConfig dcfg = wcfg;
    dcfg.hidden = {16};
    dcfg.seed = 22;
    models::Mlp degraded_model = models::build_mlp(dcfg);
    degraded_model.net->set_training(false);
    data::Dataset wds = random_dataset(128, wcfg.in_features, 43);

    serve::AnalyticBackend incumbent(*incumbent_model.net,
                                     /*stochastic=*/false);
    serve::AnalyticBackend candidate(*candidate_model.net,
                                     /*stochastic=*/false);
    serve::AnalyticBackend degraded(*degraded_model.net, /*stochastic=*/false);
    serve::ModelRegistry registry;
    const std::uint32_t v1 = registry.register_model(incumbent, "incumbent");
    const std::uint32_t v2 = registry.register_model(candidate, "candidate");

    serve::TrafficConfig wtraffic;
    wtraffic.num_requests = smoke ? 320 : 1200;
    wtraffic.rate_rps = 1600.0;
    wtraffic.shape = serve::TraceShape::kFlashCrowd;
    wtraffic.flash_factor = 14.0;
    wtraffic.flash_start_s = smoke ? 0.05 : 0.2;
    wtraffic.flash_ramp_s = 0.005;
    wtraffic.flash_hold_s = smoke ? 0.02 : 0.05;
    wtraffic.high_fraction = 0.2;
    wtraffic.low_fraction = 0.3;
    wtraffic.seed = 101;
    const auto wtrace = serve::make_trace(wtraffic, wds.size());
    Json wtj = Json::object();
    wtj.set("requests", wtraffic.num_requests);
    wtj.set("rate_rps", wtraffic.rate_rps);
    wtj.set("flash_factor", wtraffic.flash_factor);
    wtj.set("shape", "flash_crowd");
    swap_doc.set("traffic", wtj);

    serve::ServeConfig wcfg2;
    wcfg2.batch = policy;
    wcfg2.seed = 29;
    wcfg2.slo.enabled = true;
    wcfg2.slo.deadline_us = 15000;
    wcfg2.slo.completion_headroom_us = 9000;
    wcfg2.slo.queue.capacity = 64;
    wcfg2.slo.queue.on_full = serve::QueuePolicy::OnFull::kDropOldest;
    wcfg2.slo.cost.batch_fixed_us = 50;
    wcfg2.slo.cost.primary_us = 800;
    wcfg2.slo.cost.degraded_us = 100;
    wcfg2.slo.ladder.degrade_depth = 8;
    wcfg2.slo.ladder.shed_depth = 30;
    wcfg2.slo.ladder.recover_depth = 2;
    wcfg2.slo.ladder.shed_floor = serve::Priority::kNormal;

    serve::RouterPolicy wrouter;
    wrouter.strategy = serve::RouterPolicy::Strategy::kRoundRobin;
    wrouter.seed = 71;

    serve::SwapPolicy swap;
    swap.enabled = true;
    swap.from_version = v1;
    swap.to_version = v2;
    swap.start_us = 30000;  // mid-trace, before the flash crowd hits
    swap.canary_replica = 0;
    swap.canary_requests = 8;
    swap.breaker.failure_threshold = 3;
    swap.breaker.cooldown_us = 5000;
    swap_doc.set("replicas", std::size_t{3});
    swap_doc.set("swap_policy", [&] {
      Json sj = Json::object();
      sj.set("from_version", v1);
      sj.set("to_version", v2);
      sj.set("start_us", swap.start_us);
      sj.set("canary_replica",
             static_cast<std::size_t>(swap.canary_replica));
      sj.set("canary_requests", swap.canary_requests);
      sj.set("breaker_failure_threshold", swap.breaker.failure_threshold);
      return sj;
    }());

    const auto fleet_spec = [&](const serve::SwapPolicy* sp) {
      serve::ServerSpec s = serve::ServerSpec{}
                                .primary(incumbent)
                                .degraded(degraded)
                                .dataset(wds)
                                .config(wcfg2)
                                .replicas(3)
                                .router(wrouter)
                                .registry(registry);
      if (sp != nullptr) s.swap(*sp);
      return s;
    };

    // Pinned single-version reference runs (no swap): the whole trace on
    // the incumbent, and on the candidate. The overlay is version-blind,
    // so all plans share outcomes and the row comparison is exact.
    serve::ServeConfig pcfg = wcfg2;
    pcfg.num_workers = workers;
    serve::ReplicaGroup pin_from(fleet_spec(nullptr).config(pcfg));
    const serve::RouterReport rv1 = pin_from.run(wtrace);
    serve::ReplicaGroup pin_to(serve::ServerSpec{}
                                   .primary(candidate)
                                   .degraded(degraded)
                                   .dataset(wds)
                                   .config(pcfg)
                                   .replicas(3)
                                   .router(wrouter));
    const serve::RouterReport rv2 = pin_to.run(wtrace);

    const std::string backend_label =
        incumbent.name() + "->" + candidate.name();
    swap_doc.set("swap_flash",
                 run_swap_leg("swap_flash", backend_label.c_str(),
                              fleet_spec(&swap), wtrace, workers, wcfg2,
                              rv1.serve, rv2.serve,
                              /*expect_rollback=*/false, trace_out, &gates));

    serve::SwapPolicy faulty = swap;
    faulty.candidate_fault.enabled = true;
    faulty.candidate_fault.transient_rate = 1.0;  // candidate always fails
    swap_doc.set("swap_rollback",
                 run_swap_leg("swap_rollback", backend_label.c_str(),
                              fleet_spec(&faulty), wtrace, workers, wcfg2,
                              rv1.serve, rv2.serve,
                              /*expect_rollback=*/true, trace_out, &gates));
  }
  swap_doc.set("gates_ok", gates.ok);
  if (!swap_doc.write_file(swap_json_path)) {
    std::fprintf(stderr, "failed to write %s\n", swap_json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", swap_json_path.c_str());

  slo_doc.set("gates_ok", gates.ok);
  if (!slo_doc.write_file(slo_json_path)) {
    std::fprintf(stderr, "failed to write %s\n", slo_json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", slo_json_path.c_str());

  router_doc.set("gates_ok", gates.ok);
  if (!router_doc.write_file(router_json_path)) {
    std::fprintf(stderr, "failed to write %s\n", router_json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", router_json_path.c_str());

  doc.set("gates_ok", gates.ok);
  if (!doc.write_file(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  if (!gates.ok) {
    std::fprintf(stderr, "bench_serve: gate failure\n");
    return 1;
  }
  return 0;
}
