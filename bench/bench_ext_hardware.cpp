// Extension bench (beyond the paper's Eq. 1 model): deploy the trained
// network on the pulse-level crossbar simulator and measure accuracy under
// device non-idealities the Gaussian abstraction does not capture.
//
// Rows:
//   analytic σ-model   — the paper's evaluation path (reference)
//   hw ideal           — pulse-level, ideal devices, same σ (must match)
//   hw +variation      — lognormal programming variation sweep
//   hw +stuck cells    — stuck-at-off fault-rate sweep
//   hw +ADC            — ADC resolution sweep
// at baseline (8) vs extended (16) pulse schedules, to test whether the
// paper's pulse-scaling remedy also helps against *non-Gaussian* noise.
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "crossbar/hw_deploy.hpp"

#include <cstdio>
#include <cstdlib>

using namespace gbo;

int main() {
  // The pulse-level path costs ~p crossbar reads per MVM; evaluate on a
  // subset so the bench stays in seconds.
  core::Experiment exp = core::make_experiment();
  const auto sigmas = core::calibrated_sigmas(exp);
  const double sigma = sigmas.front();  // mild operating point

  std::size_t subset = 200;
  if (const char* v = std::getenv("GBO_HW_SUBSET"); v && *v)
    subset = static_cast<std::size_t>(std::atol(v));
  data::Dataset small;
  small.images = Tensor(exp.test.images.shape());
  const std::size_t len = exp.test.sample_numel();
  subset = std::min(subset, exp.test.size());
  std::vector<std::size_t> shape = exp.test.images.shape();
  shape[0] = subset;
  small.images = Tensor(shape);
  std::copy(exp.test.images.data(), exp.test.images.data() + subset * len,
            small.images.data());
  small.labels.assign(exp.test.labels.begin(),
                      exp.test.labels.begin() + static_cast<long>(subset));

  std::printf("clean accuracy: %.2f%% | sigma=%.2f | subset=%zu images\n\n",
              100.0 * exp.clean_acc, sigma, subset);

  Table table({"Configuration", "pulses", "Acc. (%)"});

  auto hw_row = [&](const std::string& name, const xbar::HwDeployConfig& cfg) {
    xbar::HardwareNetwork hw(*exp.model.net, exp.model.encoded, cfg);
    const float acc = hw.evaluate(small);
    table.add_row({name, std::to_string(cfg.pulses.empty() ? 8 : cfg.pulses[0]),
                   Table::fmt(100.0 * acc, 2)});
    log_info(name, " done");
  };

  // Reference: the analytic evaluation path on the same subset.
  {
    Rng rng(606);
    xbar::LayerNoiseController ctrl(exp.model.encoded, sigma,
                                    exp.model.base_pulses(), rng);
    ctrl.attach();
    ctrl.set_uniform_pulses(8);
    const float acc = core::evaluate_noisy(*exp.model.net, ctrl, small, 3);
    ctrl.detach();
    table.add_row({"analytic sigma-model (reference)", "8",
                   Table::fmt(100.0 * acc, 2)});
  }

  for (std::size_t pulses : {8u, 16u}) {
    xbar::HwDeployConfig base;
    base.sigma = sigma;
    base.pulses.assign(exp.model.encoded.size(), pulses);

    hw_row("hw ideal devices", base);

    for (double var : {0.1, 0.3}) {
      xbar::HwDeployConfig cfg = base;
      cfg.device.program_variation = var;
      hw_row("hw +variation " + Table::fmt(var, 1), cfg);
    }
    for (double rate : {0.01, 0.05}) {
      xbar::HwDeployConfig cfg = base;
      cfg.device.stuck_off_rate = rate;
      hw_row("hw +stuck-off " + Table::fmt(rate, 2), cfg);
    }
    for (int bits : {6, 4}) {
      xbar::HwDeployConfig cfg = base;
      cfg.device.adc_bits = bits;
      hw_row("hw +ADC " + std::to_string(bits) + "b", cfg);
    }
  }

  std::printf("== Extension: pulse-level hardware deployment ==\n");
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv("ext_hardware.csv");
  std::printf("Rows written to ext_hardware.csv\n");
  return 0;
}
