// Extension bench: linear IR-drop proxy vs nodal network solver.
//
// The device model ships two wire-parasitic models: a linear per-column
// attenuation proxy (ir_drop_alpha) and the exact Gauss–Seidel solution of
// the resistive network (wire_resistance, crossbar/ir_solver). The proxy is
// what most fast simulators use; the solver is the ground truth. This bench
// quantifies what the proxy misses on a real trained network: the nodal
// drop depends on the *data* (how many cells conduct at once) and on the
// *position interaction* of row and column wires, so the proxy's error
// grows with array size and wire resistance.
//
// Protocol: binary MLP classifier deployed pulse-level; sweep wire
// resistance; report accuracy under (a) no IR model, (b) linear proxy with
// matched worst-case attenuation, (c) nodal solver; plus the solver's
// per-array equivalent-weight error vs the ideal ±1 pattern.
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "crossbar/hw_deploy.hpp"
#include "crossbar/ir_solver.hpp"
#include "data/dataloader.hpp"
#include "models/mlp.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"

#include <cstdio>

using namespace gbo;

int main() {
  set_log_level(LogLevel::kWarn);

  // A binary MLP large enough for wire effects to matter (64-wide arrays).
  models::MlpConfig mcfg;
  mcfg.in_features = 64;
  mcfg.hidden = {64, 64};
  mcfg.num_classes = 8;
  models::Mlp model = build_mlp(mcfg);

  Rng rng(17);
  const std::size_t n = 512;
  data::Dataset ds;
  ds.images = Tensor({n, 64});
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = i % 8;
    ds.labels[i] = k;
    for (std::size_t j = 0; j < 64; ++j)
      ds.images[i * 64 + j] = static_cast<float>(
          0.3 * rng.normal() + (j / 8 == k ? 0.8 : -0.8));
  }

  nn::SGD opt(model.net->params(), 0.05f, 0.9f, 0.0f);
  data::DataLoader loader(ds, 32, true, Rng(18));
  model.net->set_training(true);
  for (std::size_t e = 0; e < 20; ++e) {
    loader.reset();
    data::Batch batch;
    while (loader.next(batch)) {
      opt.zero_grad();
      Tensor logits = model.net->forward(batch.images);
      Tensor grad;
      nn::CrossEntropy::forward_backward(logits, batch.labels, grad);
      model.net->backward(grad);
      opt.step();
    }
  }
  model.net->set_training(false);
  std::printf("clean accuracy: %.2f%%\n\n",
              100.0 * core::evaluate(*model.net, ds));

  // Equivalent-weight error preview on one 64x64 array.
  {
    Table dev({"r_wire", "mean |w_eff|", "min |w_eff|", "solver iters"});
    Tensor w({64, 64});
    Rng wrng(19);
    for (std::size_t i = 0; i < w.numel(); ++i)
      w[i] = wrng.bernoulli(0.5) ? 1.0f : -1.0f;
    for (double r : {1e-4, 5e-4, 1e-3, 2e-3}) {
      xbar::DeviceConfig cfg;
      cfg.wire_resistance = r;
      xbar::CrossbarArray arr(w, cfg, 0, Rng(20));
      double sum = 0.0, mn = 1e300;
      std::size_t iters = 0;
      for (std::size_t i = 0; i < arr.effective_weight().numel(); ++i) {
        const double a = std::fabs(arr.effective_weight()[i]);
        sum += a;
        mn = std::min(mn, a);
      }
      {
        xbar::IrSolverConfig scfg;
        scfg.r_wire = r;
        Tensor g({64, 64}, 1.0f);
        xbar::IrDropSolver probe(g, scfg);
        probe.solve(std::vector<double>(64, 1.0));
        iters = probe.last_iters();
      }
      dev.add_row({Table::fmt(r, 4),
                   Table::fmt(sum / static_cast<double>(w.numel()), 4),
                   Table::fmt(mn, 4),
                   Table::fmt_int(static_cast<long long>(iters))});
    }
    std::printf("== Equivalent weight vs wire resistance (64x64 array) ==\n%s\n",
                dev.to_text().c_str());
  }

  // Fixed per-pulse output noise: IR drop shrinks the signal while this
  // noise floor stays put, so attenuation costs SNR (and accuracy) — the
  // regime where the proxy-vs-solver gap actually matters.
  const double sigma = 2.0;
  Table table({"r_wire", "no IR model", "linear proxy", "nodal solver"});
  for (double r : {1e-4, 5e-4, 1e-3, 2e-3}) {
    std::vector<std::string> row = {Table::fmt(r, 4)};

    xbar::HwDeployConfig none;
    none.sigma = sigma;
    none.pulses.assign(model.encoded.size(), model.base_pulses());
    none.seed = 23;
    row.push_back(
        Table::fmt(100.0 * xbar::HardwareNetwork(*model.net, model.encoded,
                                                 none).evaluate(ds), 2));

    // Proxy matched to the solver's worst case: a row of `cols` on-cells
    // loses ~cols·r at the far end, the standard first-order estimate.
    xbar::HwDeployConfig proxy = none;
    proxy.device.ir_drop_alpha = std::min(0.9, 64.0 * r);
    row.push_back(
        Table::fmt(100.0 * xbar::HardwareNetwork(*model.net, model.encoded,
                                                 proxy).evaluate(ds), 2));

    xbar::HwDeployConfig nodal = none;
    nodal.device.wire_resistance = r;
    row.push_back(
        Table::fmt(100.0 * xbar::HardwareNetwork(*model.net, model.encoded,
                                                 nodal).evaluate(ds), 2));

    table.add_row(std::move(row));
    log_info("r_wire=", r, " done");
  }

  std::printf("== Extension: IR-drop model fidelity (binary MLP) ==\n%s\n",
              table.to_text().c_str());
  table.write_csv("ext_irdrop.csv");
  std::printf("Rows written to ext_irdrop.csv\n");
  return 0;
}
