// Ablation: gradient-based GBO vs Gumbel-softmax vs black-box search.
//
// The paper's pitch for *gradient-based* optimization (contribution (2)) is
// that it finds heterogeneous schedules automatically. This ablation asks
// how much the gradients are actually worth by giving gradient-free
// searchers (random / evolutionary / greedy coordinate descent) an
// evaluation budget comparable to one GBO run, on the same frozen network
// at the middle noise operating point, and adding the Gumbel-softmax
// sampling variant of GBO as the differentiable-NAS-style alternative.
//
// Columns: method, selected schedule, avg pulses, noisy accuracy (re-scored
// with more trials on the full test set), objective J = acc% − w·avg_pulses.
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "gbo/gbo.hpp"
#include "gbo/gumbel.hpp"
#include "gbo/pla_schedule.hpp"
#include "gbo/search_baselines.hpp"

#include <cstdio>
#include <cstdlib>

using namespace gbo;

namespace {

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name); v && *v) return std::atof(v);
  return fallback;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name); v && *v) {
    const long p = std::atol(v);
    if (p > 0) return static_cast<std::size_t>(p);
  }
  return fallback;
}

}  // namespace

int main() {
  core::Experiment exp = core::make_experiment();
  const auto sigmas = core::calibrated_sigmas(exp);
  const double sigma = sigmas.size() > 1 ? sigmas[1] : sigmas.front();
  const std::size_t n_layers = exp.model.encoded.size();

  // All methods trade accuracy against latency at the same rate. 0.5%/pulse
  // lands gradient and black-box methods in the PLA-10..14 latency band on
  // the standard configuration.
  const double latency_weight = env_double("GBO_LATENCY_WEIGHT", 0.5);
  const std::size_t budget = env_size("GBO_SEARCH_BUDGET", 40);

  Rng rng(808);
  xbar::LayerNoiseController ctrl(exp.model.encoded, sigma,
                                  exp.model.base_pulses(), rng);

  Table table({"Method", "# pulses in each layer", "Avg.# pulses", "Acc. (%)",
               "J = acc - w*pulses", "Evals"});

  // Final scoring pass, shared by all methods: full test set, 3 trials.
  auto score = [&](const std::string& method,
                   const std::vector<std::size_t>& pulses,
                   std::size_t evals) {
    ctrl.attach();
    ctrl.set_enabled_all(true);
    ctrl.set_sigma(sigma);
    ctrl.set_pulses(pulses);
    const float acc = core::evaluate_noisy(*exp.model.net, ctrl, exp.test, 3);
    ctrl.detach();
    const opt::PulseSchedule sched{pulses};
    const double j = 100.0 * acc - latency_weight * sched.average();
    table.add_row({method, sched.to_string(), Table::fmt(sched.average(), 2),
                   Table::fmt(100.0 * acc, 2), Table::fmt(j, 2),
                   Table::fmt_int(static_cast<long long>(evals))});
    log_info(method, " done: avg_pulses=", sched.average());
  };

  score("Baseline (8 pulses)", std::vector<std::size_t>(n_layers, 8), 0);

  // --- gradient-based methods ----------------------------------------------
  const std::size_t gbo_epochs = env_size("GBO_GBO_EPOCHS", 4);
  const float gbo_lr = static_cast<float>(env_double("GBO_GBO_LR", 5e-3));
  // γ in Eq. 6 units: the latency term there is γ·Σ_l (pulses), while J uses
  // %-accuracy per *average* pulse; dividing by layers keeps pressure equal.
  const double gamma = latency_weight * 1e-3;

  {
    opt::GboConfig cfg;
    cfg.sigma = sigma;
    cfg.gamma = gamma;
    cfg.epochs = gbo_epochs;
    cfg.lr = gbo_lr;
    opt::GboTrainer trainer(*exp.model.net, exp.model.encoded, cfg);
    trainer.train(exp.train);
    score("GBO (softmax mixture)", trainer.selected_pulses(), 0);
  }
  {
    opt::GumbelConfig cfg;
    cfg.base.sigma = sigma;
    cfg.base.gamma = gamma;
    cfg.base.epochs = gbo_epochs;
    cfg.base.lr = gbo_lr;
    cfg.hard = true;
    opt::GumbelGboTrainer trainer(*exp.model.net, exp.model.encoded, cfg);
    trainer.train(exp.train);
    score("Gumbel-ST (sampled)", trainer.selected_pulses(), 0);
  }

  // --- black-box methods, equal evaluation budget --------------------------
  // Search evaluates on a test subset (cheap oracle), final scoring above is
  // identical for every method.
  data::Dataset search_set;
  {
    const std::size_t subset = std::min<std::size_t>(400, exp.test.size());
    std::vector<std::size_t> shape = exp.test.images.shape();
    shape[0] = subset;
    search_set.images = Tensor(shape);
    const std::size_t len = exp.test.sample_numel();
    std::copy(exp.test.images.data(),
              exp.test.images.data() + subset * len, search_set.images.data());
    search_set.labels.assign(exp.test.labels.begin(),
                             exp.test.labels.begin() +
                                 static_cast<long>(subset));
  }

  opt::SearchConfig scfg;
  scfg.candidates = {4, 6, 8, 10, 12, 14, 16};
  scfg.budget = budget;

  using SearchFn =
      opt::SearchResult (*)(opt::ScheduleEvaluator&, const opt::SearchConfig&);
  const std::pair<const char*, SearchFn> searchers[] = {
      {"Random search", &opt::random_search},
      {"Evolutionary (mu+lambda)", &opt::evolutionary_search},
      {"Greedy coordinate descent", &opt::greedy_coordinate_descent},
  };
  for (const auto& [name, fn] : searchers) {
    ctrl.attach();
    ctrl.set_enabled_all(true);
    ctrl.set_sigma(sigma);
    opt::ScheduleEvaluator eval(*exp.model.net, ctrl, search_set,
                                latency_weight, /*trials=*/1);
    const opt::SearchResult r = fn(eval, scfg);
    ctrl.detach();
    score(name, r.best, r.evaluations);
  }

  std::printf("== Ablation: optimizer comparison at sigma=%.2f ==\n", sigma);
  std::printf("(J trades accuracy vs latency at %.2f%%/pulse for all methods)\n",
              latency_weight);
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv("ablation_optimizer.csv");
  std::printf("Rows written to ablation_optimizer.csv\n");
  return 0;
}
