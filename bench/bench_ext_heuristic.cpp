// Extension bench: GBO vs the sensitivity-guided heuristic schedule and
// vs network-level encoding schemes.
//
// (a) Heuristic comparison — the paper argues GBO generalizes over manual
//     per-layer selection; here the "manual engineer" baseline is
//     automated: allocate pulses proportional to Fig. 2 sensitivity under
//     the same average-latency budget as the GBO solution, then compare.
// (b) Scheme comparison — run the whole network with bit-sliced inputs at
//     the same pulse count as the thermometer baseline (Fig. 1b's claim at
//     network level: bit slicing's weighted pulses amplify noise).
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "gbo/gbo.hpp"
#include "gbo/heuristic.hpp"
#include "gbo/pla_schedule.hpp"

#include <cstdio>

using namespace gbo;

int main() {
  core::Experiment exp = core::make_experiment();
  const auto sigmas = core::calibrated_sigmas(exp);
  const double sigma = sigmas.size() > 1 ? sigmas[1] : sigmas.front();
  std::printf("clean accuracy: %.2f%% | sigma=%.2f\n\n", 100.0 * exp.clean_acc,
              sigma);

  const std::size_t n_layers = exp.model.encoded.size();
  Rng rng(707);
  xbar::LayerNoiseController ctrl(exp.model.encoded, sigma,
                                  exp.model.base_pulses(), rng);

  Table table({"Method", "schedule", "Avg.# pulses", "Acc. (%)"});
  auto eval_row = [&](const std::string& name,
                      const std::vector<std::size_t>& pulses,
                      enc::Scheme scheme = enc::Scheme::kThermometer) {
    ctrl.attach();
    ctrl.set_enabled_all(true);
    ctrl.set_sigma(sigma);
    ctrl.set_pulses(pulses);
    ctrl.set_scheme(scheme);
    const float acc = core::evaluate_noisy(*exp.model.net, ctrl, exp.test, 3);
    ctrl.detach();
    const opt::PulseSchedule sched{pulses};
    table.add_row({name, sched.to_string(), Table::fmt(sched.average(), 2),
                   Table::fmt(100.0 * acc, 2)});
    log_info(name, " done");
  };

  // (b) network-level scheme comparison at the base pulse count.
  eval_row("thermometer p=8 (baseline)", std::vector<std::size_t>(n_layers, 8));
  eval_row("bit slicing p=8 (same latency)",
           std::vector<std::size_t>(n_layers, 8), enc::Scheme::kBitSlicing);

  // (a) GBO vs the automated manual engineer.
  opt::GboConfig gcfg;
  gcfg.sigma = sigma;
  gcfg.gamma = 2e-3;
  gcfg.epochs = 4;
  gcfg.lr = 5e-3f;
  opt::GboTrainer trainer(*exp.model.net, exp.model.encoded, gcfg);
  trainer.train(exp.train);
  const auto gbo_sched = trainer.selected_pulses();
  const double budget = opt::PulseSchedule{gbo_sched}.average();
  eval_row("GBO", gbo_sched);

  const auto sens = opt::layer_sensitivity(*exp.model.net, ctrl, exp.test, sigma);
  const auto heur =
      opt::sensitivity_guided_schedule(sens, gcfg.pulse_lengths(), budget);
  eval_row("heuristic (sensitivity-guided, same budget)", heur);

  std::printf("== Extension: GBO vs heuristic & scheme comparison ==\n");
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv("ext_heuristic.csv");
  std::printf("Rows written to ext_heuristic.csv\n");
  return 0;
}
