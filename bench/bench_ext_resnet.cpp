// Extension bench: GBO on a second architecture (binary ResNet-8).
//
// The paper claims GBO is "a more general solution to various network
// configurations" (contribution (2)) but evaluates only VGG9. This bench
// repeats the Table I protocol on a residual network, whose skip paths
// change the per-layer noise-sensitivity profile (the identity path
// bypasses the noisy MVM). Rows: Baseline / PLA-n / GBO at two noise
// operating points, plus a layer-sensitivity summary showing the profile
// GBO exploits — including whether the 1×1 projection convs (tiny fan-in,
// shortcut-critical) want longer or shorter codes than the 3×3 mains.
//
// This workload leans hardest on the blocked GEMM + threaded im2col layer;
// set GBO_NUM_THREADS to control the thread pool (results are bitwise
// identical at any thread count).
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "gbo/gbo.hpp"
#include "gbo/pla_schedule.hpp"
#include "models/resnet.hpp"

#include <cstdio>
#include <cstdlib>

using namespace gbo;

namespace {

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name); v && *v) return std::atof(v);
  return fallback;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name); v && *v) {
    const long p = std::atol(v);
    if (p > 0) return static_cast<std::size_t>(p);
  }
  return fallback;
}

}  // namespace

int main() {
  // Same data/scale knobs as the VGG9 benches; the model differs.
  core::StandardConfig std_cfg = core::standard_config();
  models::ResNetConfig mcfg;
  mcfg.image_size = std_cfg.model.image_size;
  mcfg.width = std_cfg.model.width;
  mcfg.act_levels = std_cfg.model.act_levels;
  models::ResNet model = models::build_resnet(mcfg);

  data::Dataset train =
      data::make_synth_cifar(std_cfg.data, std_cfg.num_train, /*stream=*/0);
  data::Dataset test =
      data::make_synth_cifar(std_cfg.data, std_cfg.num_test, /*stream=*/1);

  core::PretrainConfig pcfg = std_cfg.pretrain;
  const float clean = core::load_or_pretrain(model, train, test, pcfg,
                                             std_cfg.data_fingerprint());
  std::printf("ResNet-8 clean accuracy: %.2f%% (%zu encoded layers)\n\n",
              100.0 * clean, model.encoded.size());

  Rng rng(909);
  xbar::LayerNoiseController ctrl(model.encoded, 0.0, model.base_pulses(),
                                  rng);

  // Calibrate σ to the mild/mid baseline operating points on this fan-in.
  const auto sigmas = core::calibrate_sigmas(
      *model.net, ctrl, test, {std_cfg.baseline_targets[0],
                               std_cfg.baseline_targets[1]});
  ctrl.detach();

  // Layer sensitivity profile (Fig. 2 protocol on the residual topology).
  {
    Table sens({"target layer", "Acc. (%)"});
    const double sigma = sigmas.back() * 1.5;
    ctrl.attach();
    ctrl.set_sigma(sigma);
    ctrl.set_uniform_pulses(model.base_pulses());
    for (std::size_t l = 0; l < model.encoded.size(); ++l) {
      ctrl.isolate_layer(l);
      const float acc = core::evaluate_noisy(*model.net, ctrl, test, 2);
      sens.add_row({model.encoded_names[l], Table::fmt(100.0 * acc, 2)});
    }
    ctrl.detach();
    std::printf(
        "== Layer-wise sensitivity on ResNet-8 (noise at one layer) ==\n%s\n",
        sens.to_text().c_str());
    sens.write_csv("ext_resnet_sensitivity.csv");
  }

  Table table({"Method", "Noise sigma", "# pulses in each layer",
               "Avg.# pulses", "Acc. (%)"});
  const std::size_t n_layers = model.encoded.size();

  auto eval_schedule = [&](const std::string& method, double sigma,
                           const std::vector<std::size_t>& pulses) {
    ctrl.attach();
    ctrl.set_enabled_all(true);
    ctrl.set_sigma(sigma);
    ctrl.set_pulses(pulses);
    const float acc = core::evaluate_noisy(*model.net, ctrl, test, 3);
    ctrl.detach();
    const opt::PulseSchedule sched{pulses};
    table.add_row({method, Table::fmt(sigma, 2), sched.to_string(),
                   Table::fmt(sched.average(), 2),
                   Table::fmt(100.0 * acc, 2)});
  };

  const std::size_t gbo_epochs = env_size("GBO_GBO_EPOCHS", 4);
  for (double sigma : sigmas) {
    eval_schedule("Baseline", sigma, std::vector<std::size_t>(n_layers, 8));
    for (std::size_t n : {10u, 14u, 16u})
      eval_schedule("PLA" + std::to_string(n), sigma,
                    std::vector<std::size_t>(n_layers, n));

    opt::GboConfig gcfg;
    gcfg.sigma = sigma;
    gcfg.gamma = env_double("GBO_GAMMA_SHORT", 2e-3);
    gcfg.epochs = gbo_epochs;
    gcfg.lr = static_cast<float>(env_double("GBO_GBO_LR", 5e-3));
    opt::GboTrainer trainer(*model.net, model.encoded, gcfg);
    trainer.train(train);
    eval_schedule("GBO", sigma, trainer.selected_pulses());
    log_info("GBO at sigma=", sigma, " done");
  }

  std::printf("== Extension: Table I protocol on binary ResNet-8 ==\n%s\n",
              table.to_text().c_str());
  table.write_csv("ext_resnet.csv");
  std::printf("Rows written to ext_resnet.csv and ext_resnet_sensitivity.csv\n");
  return 0;
}
