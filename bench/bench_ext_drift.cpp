// Extension bench: accuracy vs read-out age under conductance drift.
//
// Retention drift is a *non-Gaussian, non-zero-mean* error family the
// paper's Eq. 1 model cannot express: every cell's conductance decays as
// (t/t0)^(-ν) with device-to-device spread in ν. This bench deploys the
// trained network on the pulse-level simulator, ages the arrays across six
// decades of time, and asks the paper's central question against this new
// noise source: do longer thermometer codes still help?
//
// Expected shape: mean decay is a pure gain the BN-free crossbar decode
// tolerates, so early decades are flat; accuracy falls once the ν-spread
// error dominates; the 16-pulse schedule degrades later/less than 8-pulse
// because per-pulse read noise and ADC error shrink with pulse count while
// the drift error itself is schedule-independent — isolating exactly how
// much of the damage pulses can and cannot repair.
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "crossbar/drift.hpp"
#include "crossbar/hw_deploy.hpp"

#include <cstdio>
#include <cstdlib>

using namespace gbo;

int main() {
  core::Experiment exp = core::make_experiment();
  const auto sigmas = core::calibrated_sigmas(exp);
  const double sigma = sigmas.front();  // mild Eq. 1 noise on top of drift

  std::size_t subset = 150;
  if (const char* v = std::getenv("GBO_HW_SUBSET"); v && *v)
    subset = static_cast<std::size_t>(std::atol(v));
  subset = std::min(subset, exp.test.size());
  data::Dataset small;
  {
    std::vector<std::size_t> shape = exp.test.images.shape();
    shape[0] = subset;
    small.images = Tensor(shape);
    const std::size_t len = exp.test.sample_numel();
    std::copy(exp.test.images.data(), exp.test.images.data() + subset * len,
              small.images.data());
    small.labels.assign(exp.test.labels.begin(),
                        exp.test.labels.begin() + static_cast<long>(subset));
  }

  const double nu_mean = 0.03, nu_sigma = 0.015;

  // Device-level preview: what the drift law does to one layer's weights.
  {
    Table dev({"age (s)", "mean decay", "min", "max", "RMS rel. error"});
    xbar::DriftConfig dcfg;
    dcfg.nu_mean = nu_mean;
    dcfg.nu_sigma = nu_sigma;
    xbar::DriftModel model(4096, dcfg, Rng(42));
    Tensor w({4096}, 1.0f);
    for (double t : {1.0, 1e2, 1e4, 1e6, 1e8}) {
      const auto s = xbar::drift_stats(model, w, t);
      dev.add_row({Table::fmt(t, 0), Table::fmt(s.mean_factor, 4),
                   Table::fmt(s.min_factor, 4), Table::fmt(s.max_factor, 4),
                   Table::fmt(s.rms_rel_error, 4)});
    }
    std::printf("== Drift law preview (nu=%.3f±%.3f, 4096 cells) ==\n%s\n",
                nu_mean, nu_sigma, dev.to_text().c_str());
  }

  std::printf("clean accuracy: %.2f%% | sigma=%.2f | subset=%zu images\n\n",
              100.0 * exp.clean_acc, sigma, subset);

  Table table({"age (s)", "Acc. (%) @ 8 pulses", "Acc. (%) @ 16 pulses"});
  for (double age : {0.0, 1e2, 1e4, 1e6, 1e8}) {
    std::vector<std::string> row = {Table::fmt(age, 0)};
    for (std::size_t pulses : {8u, 16u}) {
      xbar::HwDeployConfig cfg;
      cfg.sigma = sigma;
      cfg.pulses.assign(exp.model.encoded.size(), pulses);
      cfg.device.adc_bits = 6;  // realistic periphery so drift interacts
      cfg.device.drift_nu = nu_mean;
      cfg.device.drift_nu_sigma = nu_sigma;
      cfg.device.drift_time = age;
      cfg.seed = 51;  // same seed across ages: same per-cell exponents
      xbar::HardwareNetwork hw(*exp.model.net, exp.model.encoded, cfg);
      row.push_back(Table::fmt(100.0 * hw.evaluate(small), 2));
    }
    table.add_row(std::move(row));
    log_info("age ", age, " done");
  }

  std::printf("== Extension: accuracy vs array age under drift ==\n%s\n",
              table.to_text().c_str());
  table.write_csv("ext_drift.csv");
  std::printf("Rows written to ext_drift.csv\n");
  return 0;
}
