// Extension bench: joint (scheme × pulse-length) search.
//
// Fig. 1b says thermometer beats bit slicing *per bit carried*; the paper
// therefore fixes thermometer and searches lengths only. But bit slicing
// carries the same levels in far fewer pulses, so under a latency budget
// the right comparison is noise-at-equal-latency — and that choice can
// legitimately differ per layer. This bench runs MixedGBO over
//   {TC-4..TC-16} ∪ {BS-3, BS-4}
// at the middle noise operating point across a γ sweep, reporting which
// scheme each layer picks, plus network-level all-TC and all-BS references
// at matched level counts.
//
// Expected shape: γ→0 recovers thermometer-everywhere (pure noise
// pressure, Fig. 1b); large γ drives layers toward BS-3 (3 pulses); in
// between, noise-tolerant layers (the late ones in Fig. 2) flip to bit
// slicing first.
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "gbo/scheme_search.hpp"

#include <cstdio>
#include <cstdlib>

using namespace gbo;

namespace {

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name); v && *v) return std::atof(v);
  return fallback;
}

}  // namespace

int main() {
  core::Experiment exp = core::make_experiment();
  const auto sigmas = core::calibrated_sigmas(exp);
  const double sigma = sigmas.size() > 1 ? sigmas[1] : sigmas.front();
  const std::size_t n_layers = exp.model.encoded.size();

  Rng rng(1010);
  xbar::LayerNoiseController ctrl(exp.model.encoded, sigma,
                                  exp.model.base_pulses(), rng);

  Table table({"Method", "Per-layer encoding", "Avg.# pulses", "Acc. (%)"});

  // Evaluates a per-layer (scheme, pulses) selection through the analytic
  // noise hooks (each hook prices its spec's variance factor); the noise
  // trials run concurrently on the shared pool (opt::evaluate_selection).
  auto eval_selection = [&](const std::string& method,
                            const std::vector<opt::SchemeCandidate>& sel) {
    ctrl.attach();
    ctrl.set_enabled_all(true);
    ctrl.set_sigma(sigma);
    double pulse_sum = 0.0;
    std::string desc = "[";
    for (std::size_t l = 0; l < sel.size(); ++l) {
      pulse_sum += static_cast<double>(sel[l].pulses());
      if (l) desc += ", ";
      desc += sel[l].name();
    }
    desc += "]";
    const float acc =
        opt::evaluate_selection(*exp.model.net, ctrl, sel, exp.test, 3);
    ctrl.detach();
    table.add_row({method, desc,
                   Table::fmt(pulse_sum / static_cast<double>(sel.size()), 2),
                   Table::fmt(100.0 * acc, 2)});
  };

  // Network-level references: uniform TC-8 (baseline), TC-16, BS-3 (same
  // 8-ish levels as TC-8), BS-4 (16 levels).
  auto uniform = [&](enc::Scheme scheme, std::size_t pulses) {
    opt::SchemeCandidate c;
    c.spec.scheme = scheme;
    c.spec.num_pulses = pulses;
    return std::vector<opt::SchemeCandidate>(n_layers, c);
  };
  eval_selection("All TC-8 (baseline)", uniform(enc::Scheme::kThermometer, 8));
  eval_selection("All TC-16", uniform(enc::Scheme::kThermometer, 16));
  eval_selection("All BS-3", uniform(enc::Scheme::kBitSlicing, 3));
  eval_selection("All BS-4", uniform(enc::Scheme::kBitSlicing, 4));

  // MixedGBO across the γ sweep.
  for (double gamma : {0.0, env_double("GBO_GAMMA_SHORT", 2e-3), 2e-2}) {
    opt::MixedGboConfig cfg;
    cfg.candidates = opt::default_mixed_candidates(exp.model.base_pulses());
    cfg.sigma = sigma;
    cfg.gamma = gamma;
    cfg.epochs = 4;
    cfg.lr = static_cast<float>(env_double("GBO_GBO_LR", 5e-3));
    opt::MixedGboTrainer trainer(*exp.model.net, exp.model.encoded, cfg);
    trainer.train(exp.train);
    eval_selection("MixedGBO gamma=" + Table::fmt(gamma, 4),
                   trainer.selected());
    log_info("MixedGBO gamma=", gamma,
             " selection: ", trainer.selection_string());
  }

  std::printf("== Extension: joint scheme x pulse-length search ==\n%s\n",
              table.to_text().c_str());
  table.write_csv("ext_scheme.csv");
  std::printf("Rows written to ext_scheme.csv\n");
  return 0;
}
