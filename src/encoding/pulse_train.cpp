#include "encoding/pulse_train.hpp"

#include <stdexcept>

namespace gbo::enc {

std::string scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kThermometer: return "thermometer";
    case Scheme::kBitSlicing: return "bit_slicing";
  }
  return "unknown";
}

std::size_t EncodingSpec::levels() const {
  if (num_pulses == 0) throw std::invalid_argument("EncodingSpec: 0 pulses");
  if (scheme == Scheme::kThermometer) return num_pulses + 1;
  if (num_pulses >= 63) throw std::invalid_argument("EncodingSpec: too many bit-slicing pulses");
  return static_cast<std::size_t>(1) << num_pulses;
}

std::vector<double> EncodingSpec::pulse_weights() const {
  std::vector<double> w(num_pulses);
  for (std::size_t i = 0; i < num_pulses; ++i)
    w[i] = scheme == Scheme::kThermometer ? 1.0
                                          : static_cast<double>(1ull << i);
  return w;
}

double EncodingSpec::noise_variance_factor() const {
  const auto w = pulse_weights();
  double sum = 0.0, sum_sq = 0.0;
  for (double wi : w) {
    sum += wi;
    sum_sq += wi * wi;
  }
  return sum_sq / (sum * sum);
}

Tensor PulseTrain::decode() const {
  if (pulses.empty()) throw std::invalid_argument("PulseTrain: empty");
  const auto w = spec.pulse_weights();
  if (w.size() != pulses.size())
    throw std::invalid_argument("PulseTrain: pulse count mismatch with spec");
  double wsum = 0.0;
  for (double wi : w) wsum += wi;

  Tensor out(pulses[0].shape());
  for (std::size_t i = 0; i < pulses.size(); ++i) {
    Tensor::check_same_shape(pulses[i], out, "PulseTrain::decode");
    const float* p = pulses[i].data();
    float* o = out.data();
    const float wi = static_cast<float>(w[i] / wsum);
    for (std::size_t j = 0; j < out.numel(); ++j) o[j] += wi * p[j];
  }
  return out;
}

}  // namespace gbo::enc
