#include "encoding/pla.hpp"

#include <cmath>

namespace gbo::enc {

PulseTrain pla_encode(const Tensor& activations, std::size_t target_pulses) {
  // Thermometer encoding already snaps to the nearest representable level,
  // which is exactly the PLA approximation.
  return thermometer_encode(activations, target_pulses);
}

Tensor pla_approximate(const Tensor& activations, std::size_t target_pulses) {
  Tensor out(activations.shape());
  const float* a = activations.data();
  float* o = out.data();
  for (std::size_t i = 0; i < activations.numel(); ++i)
    o[i] = thermometer_snap(a[i], target_pulses);
  return out;
}

void pla_approximate_inplace(Tensor& activations, std::size_t target_pulses) {
  float* a = activations.data();
  for (std::size_t i = 0; i < activations.numel(); ++i)
    a[i] = thermometer_snap(a[i], target_pulses);
}

PlaErrorStats pla_error(const Tensor& activations, std::size_t target_pulses) {
  PlaErrorStats st;
  const float* a = activations.data();
  double sum_abs = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < activations.numel(); ++i) {
    const double e = std::fabs(thermometer_snap(a[i], target_pulses) - a[i]);
    sum_abs += e;
    sum_sq += e * e;
    st.max_abs_error = std::max(st.max_abs_error, e);
  }
  const double n = static_cast<double>(activations.numel());
  if (n > 0) {
    st.mean_abs_error = sum_abs / n;
    st.rms_error = std::sqrt(sum_sq / n);
  }
  return st;
}

std::size_t scaled_pulse_count(double scale, std::size_t base_pulses) {
  const long n = std::lround(scale * static_cast<double>(base_pulses));
  return n < 1 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace gbo::enc
