// Temporal binary pulse trains for crossbar input encoding.
//
// Both encodings studied by the paper are represented uniformly: an encoded
// activation is a sequence of bipolar pulses x_i ∈ {-1, +1} with per-pulse
// contribution weights w_i, and decodes as Σ w_i x_i / Σ w_i.
//   * Thermometer coding:  w_i = 1      (p pulses ↔ p+1 levels)
//   * Bit slicing:         w_i = 2^i    (p pulses ↔ 2^p levels)
// Bipolar bit slicing decodes exactly: with level index L and bits β_i,
// Σ 2^i (2β_i - 1) / Σ 2^i = 2L/(2^p - 1) - 1, the symmetric quantized value.
//
// Per-pulse crossbar noise N(0, σ²) accumulates as
//   Var = σ² · Σ w_i² / (Σ w_i)²,
// which specializes to Eq. 2 (bit slicing) and Eq. 3 (thermometer, 1/p).
#pragma once

#include "tensor/tensor.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace gbo::enc {

enum class Scheme : std::uint8_t { kThermometer = 0, kBitSlicing = 1 };

std::string scheme_name(Scheme s);

/// Describes how one layer's activations are streamed into the crossbar.
struct EncodingSpec {
  Scheme scheme = Scheme::kThermometer;
  std::size_t num_pulses = 8;  // p

  /// Number of representable activation levels.
  ///   thermometer: p + 1 ; bit slicing: 2^p.
  std::size_t levels() const;

  /// Per-pulse contribution weights w_i.
  std::vector<double> pulse_weights() const;

  /// Σ w_i² / (Σ w_i)² — the accumulated output-noise variance as a multiple
  /// of the single-pulse variance σ² (Eq. 2 / Eq. 3).
  double noise_variance_factor() const;

  bool operator==(const EncodingSpec&) const = default;
};

/// A batch of activations encoded as `num_pulses` bipolar pulse tensors.
/// pulses[i] has the same shape as the source tensor, entries in {-1, +1}.
struct PulseTrain {
  EncodingSpec spec;
  std::vector<Tensor> pulses;

  /// Reconstructs the (quantized) activation tensor: Σ w_i x_i / Σ w_i.
  Tensor decode() const;
};

}  // namespace gbo::enc
