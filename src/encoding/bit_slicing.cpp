#include "encoding/bit_slicing.hpp"

#include <cmath>
#include <stdexcept>

namespace gbo::enc {

std::size_t bit_slicing_level(float value, std::size_t num_pulses) {
  if (num_pulses == 0 || num_pulses >= 31)
    throw std::invalid_argument("bit_slicing_level: bad pulse count");
  value = value > 1.0f ? 1.0f : (value < -1.0f ? -1.0f : value);
  const float max_level = static_cast<float>((1u << num_pulses) - 1);
  const long idx = std::lround((value + 1.0f) * 0.5f * max_level);
  return static_cast<std::size_t>(idx < 0 ? 0 : idx);
}

float bit_slicing_snap(float value, std::size_t num_pulses) {
  const float max_level = static_cast<float>((1u << num_pulses) - 1);
  return 2.0f * static_cast<float>(bit_slicing_level(value, num_pulses)) / max_level - 1.0f;
}

PulseTrain bit_slicing_encode(const Tensor& activations, std::size_t num_pulses) {
  PulseTrain train;
  train.spec = EncodingSpec{Scheme::kBitSlicing, num_pulses};
  train.pulses.assign(num_pulses, Tensor(activations.shape()));
  bit_slicing_encode_into(activations, num_pulses, train.pulses);
  return train;
}

void bit_slicing_encode_into(const Tensor& activations, std::size_t num_pulses,
                             std::vector<Tensor>& pulses) {
  const float* a = activations.data();
  for (std::size_t j = 0; j < activations.numel(); ++j) {
    const std::size_t level = bit_slicing_level(a[j], num_pulses);
    for (std::size_t i = 0; i < num_pulses; ++i) {
      const bool bit = (level >> i) & 1u;
      pulses[i][j] = bit ? 1.0f : -1.0f;
    }
  }
}

}  // namespace gbo::enc
