// Pulse Length Approximation (PLA, paper §III-B).
//
// GBO's ensemble strategy only supports integer multiples of the base pulse
// count (8, 16, 24, ...). PLA enables any pulse count n by re-encoding the
// base thermometer level at n pulses: the value is approximated by the
// nearest level representable with n pulses, which in hardware amounts to
// adding/removing pulses toward -1 or +1 (the values deep-layer activations
// concentrate on after BN + Tanh). The residual |snap(v, n) - v| is the PLA
// approximation error that Table I shows to be negligible.
#pragma once

#include "encoding/thermometer.hpp"

namespace gbo::enc {

/// Re-encodes a base-quantized activation tensor at `target_pulses`
/// thermometer pulses. Returned train decodes to the PLA-approximated
/// values.
PulseTrain pla_encode(const Tensor& activations, std::size_t target_pulses);

/// The PLA-approximated activation tensor (what pla_encode decodes to):
/// every value snapped to the nearest of the target_pulses+1 levels.
Tensor pla_approximate(const Tensor& activations, std::size_t target_pulses);

/// In-place variant: the snap is elementwise, so the serving hot path
/// re-quantizes without the temporary copy (bitwise identical results).
void pla_approximate_inplace(Tensor& activations, std::size_t target_pulses);

/// Statistics of the PLA approximation error for a given tensor.
struct PlaErrorStats {
  double mean_abs_error = 0.0;
  double max_abs_error = 0.0;
  double rms_error = 0.0;
};
PlaErrorStats pla_error(const Tensor& activations, std::size_t target_pulses);

/// Maps a pulse scaling factor n ∈ Ω (e.g. 0.75) and base pulse count p to
/// the realized pulse length round(n * p); PLA makes non-integer products
/// realizable. Result is never 0 (clamped to 1).
std::size_t scaled_pulse_count(double scale, std::size_t base_pulses);

}  // namespace gbo::enc
