#include "encoding/thermometer.hpp"

#include <cmath>

namespace gbo::enc {

std::size_t thermometer_level(float value, std::size_t num_pulses) {
  value = value > 1.0f ? 1.0f : (value < -1.0f ? -1.0f : value);
  const float p = static_cast<float>(num_pulses);
  const long idx = std::lround((value + 1.0f) * 0.5f * p);
  return static_cast<std::size_t>(idx < 0 ? 0 : idx);
}

float thermometer_snap(float value, std::size_t num_pulses) {
  const float p = static_cast<float>(num_pulses);
  return (2.0f * static_cast<float>(thermometer_level(value, num_pulses)) - p) / p;
}

PulseTrain thermometer_encode(const Tensor& activations, std::size_t num_pulses) {
  PulseTrain train;
  train.spec = EncodingSpec{Scheme::kThermometer, num_pulses};
  train.pulses.assign(num_pulses, Tensor(activations.shape()));
  thermometer_encode_into(activations, num_pulses, train.pulses);
  return train;
}

void thermometer_encode_into(const Tensor& activations, std::size_t num_pulses,
                             std::vector<Tensor>& pulses) {
  const float* a = activations.data();
  for (std::size_t j = 0; j < activations.numel(); ++j) {
    const std::size_t level = thermometer_level(a[j], num_pulses);
    // Pulses [0, level) fire +1; the rest fire -1.
    for (std::size_t i = 0; i < num_pulses; ++i)
      pulses[i][j] = i < level ? 1.0f : -1.0f;
  }
}

}  // namespace gbo::enc
