#include "encoding/noise_analysis.hpp"

#include <stdexcept>

namespace gbo::enc {

double bit_slicing_variance_factor(std::size_t num_pulses) {
  return EncodingSpec{Scheme::kBitSlicing, num_pulses}.noise_variance_factor();
}

double thermometer_variance_factor(std::size_t num_pulses) {
  return EncodingSpec{Scheme::kThermometer, num_pulses}.noise_variance_factor();
}

std::size_t bit_slicing_pulses_for_bits(std::size_t bits) {
  if (bits == 0) throw std::invalid_argument("pulses_for_bits: bits must be > 0");
  return bits;
}

std::size_t thermometer_pulses_for_bits(std::size_t bits) {
  if (bits == 0 || bits >= 31)
    throw std::invalid_argument("pulses_for_bits: bad bit count");
  return (static_cast<std::size_t>(1) << bits) - 1;
}

std::vector<Fig1bPoint> fig1b_series(std::size_t max_bits) {
  std::vector<Fig1bPoint> out;
  // Both encodings collapse to a single pulse at 1 bit, so the 1-bit
  // variance factor (== 1) is the normalization baseline the paper uses.
  for (std::size_t b = 1; b <= max_bits; ++b) {
    Fig1bPoint pt;
    pt.bits = b;
    pt.bs_pulses = bit_slicing_pulses_for_bits(b);
    pt.tc_pulses = thermometer_pulses_for_bits(b);
    pt.bs_variance = bit_slicing_variance_factor(pt.bs_pulses);
    pt.tc_variance = thermometer_variance_factor(pt.tc_pulses);
    out.push_back(pt);
  }
  return out;
}

}  // namespace gbo::enc
