// Bit slicing (Bojnordi & Ipek, HPCA'16): pulses carry the binary digits of
// the activation's level index; pulse i contributes with weight 2^i. p
// pulses represent 2^p levels; the bit-position weighting is what amplifies
// accumulated noise relative to thermometer coding (Eq. 2 vs Eq. 3).
#pragma once

#include "encoding/pulse_train.hpp"

namespace gbo::enc {

/// Level index in [0, 2^p - 1] for a value in [-1, 1].
std::size_t bit_slicing_level(float value, std::size_t num_pulses);

/// Encodes activations in [-1, 1] into bipolar bit-sliced pulses.
PulseTrain bit_slicing_encode(const Tensor& activations, std::size_t num_pulses);

/// Same encoding into caller-provided pulse tensors (see
/// thermometer_encode_into); bitwise identical to bit_slicing_encode.
void bit_slicing_encode_into(const Tensor& activations, std::size_t num_pulses,
                             std::vector<Tensor>& pulses);

/// Nearest representable value under p-pulse bit slicing.
float bit_slicing_snap(float value, std::size_t num_pulses);

}  // namespace gbo::enc
