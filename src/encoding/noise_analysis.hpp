// Closed-form noise analysis of binary bit encodings (paper §II-B, Fig. 1b).
//
// With independent per-pulse output noise N(0, σ²), the accumulated noise
// variance after decode is σ² · Σ w_i² / (Σ w_i)². This header provides the
// specialized formulas and the Fig. 1b series (variance vs number of bits,
// normalized to the 1-bit baseline).
#pragma once

#include "encoding/pulse_train.hpp"

#include <vector>

namespace gbo::enc {

/// Eq. 2 factor: Σ_{i<p} 4^i / (Σ_{i<p} 2^i)² for bit slicing with p pulses.
double bit_slicing_variance_factor(std::size_t num_pulses);

/// Eq. 3 factor: 1/p for thermometer coding with p pulses.
double thermometer_variance_factor(std::size_t num_pulses);

/// Pulses needed to carry b bits of information:
///   bit slicing: b ; thermometer: 2^b - 1.
std::size_t bit_slicing_pulses_for_bits(std::size_t bits);
std::size_t thermometer_pulses_for_bits(std::size_t bits);

/// One point of the Fig. 1b curves.
struct Fig1bPoint {
  std::size_t bits;
  std::size_t bs_pulses;
  std::size_t tc_pulses;
  double bs_variance;  // normalized so that bits == 1 -> 1.0
  double tc_variance;
};

/// The full Fig. 1b series for bits = 1..max_bits.
std::vector<Fig1bPoint> fig1b_series(std::size_t max_bits);

}  // namespace gbo::enc
