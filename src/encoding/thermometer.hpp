// Thermometer coding (Soliman et al., IEDM'20): the number of +1 pulses is
// proportional to the representation level. p pulses represent p+1 levels;
// level k decodes to (2k - p) / p.
#pragma once

#include "encoding/pulse_train.hpp"

namespace gbo::enc {

/// Level index (count of +1 pulses) for a value in [-1, 1] under p pulses.
std::size_t thermometer_level(float value, std::size_t num_pulses);

/// Encodes a tensor of activations in [-1, 1]. Values are snapped to the
/// nearest representable level first (identical to the 9-level activation
/// quantizer when num_pulses == 8).
PulseTrain thermometer_encode(const Tensor& activations, std::size_t num_pulses);

/// Same encoding into caller-provided pulse tensors: `pulses` must already
/// hold `num_pulses` tensors shaped like `activations` (recycled from a
/// ScratchArena on the serving hot path); every element is overwritten.
/// Bitwise identical to thermometer_encode.
void thermometer_encode_into(const Tensor& activations, std::size_t num_pulses,
                             std::vector<Tensor>& pulses);

/// The exact value a thermometer train of p pulses can represent closest to
/// `value` — used to quantify PLA approximation error.
float thermometer_snap(float value, std::size_t num_pulses);

}  // namespace gbo::enc
