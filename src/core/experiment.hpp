// Shared experiment setup for the benchmark harness and examples.
//
// Centralizes the "standard" configuration (model width, dataset size,
// pretraining budget) so every bench binary reproduces its table from the
// same pretrained network via the artifact cache. Scale knobs are read from
// the environment so CI can run quick while full runs stay the default:
//   GBO_WIDTH       base conv width        (default 16)
//   GBO_IMAGE       image size             (default 16)
//   GBO_TRAIN_SIZE  training samples       (default 3000)
//   GBO_TEST_SIZE   test samples           (default 1000)
//   GBO_EPOCHS      pretraining epochs     (default 15)
//   GBO_DATA_NOISE  SynthCIFAR pixel noise (default 0.85, which lands the
//                   default model at ~90% clean accuracy = the paper's
//                   90.8% CIFAR-10 operating point)
//   GBO_CIFAR10_DIR use real CIFAR-10 from this directory instead of
//                   SynthCIFAR (image size forced to 32)
#pragma once

#include "core/pipeline.hpp"
#include "data/synth_cifar.hpp"

namespace gbo::core {

struct StandardConfig {
  models::Vgg9Config model;
  data::SynthCifarConfig data;
  PretrainConfig pretrain;
  std::size_t num_train = 3000;
  std::size_t num_test = 1000;
  /// Baseline-accuracy operating points anchoring the paper's σ = 10/15/20
  /// rows (Table I baseline ladder ≈ 84% / 62% / 31%).
  std::vector<double> baseline_targets = {0.84, 0.62, 0.31};

  std::string data_fingerprint() const;
};

/// The standard configuration with environment overrides applied.
StandardConfig standard_config();

/// A fully prepared experiment: model built, data generated (or CIFAR-10
/// loaded), pretrained weights restored from cache or trained now.
struct Experiment {
  StandardConfig cfg;
  models::Vgg9 model;
  data::Dataset train;
  data::Dataset test;
  float clean_acc = 0.0f;
};

Experiment make_experiment();

/// Convenience: experiment + calibrated σ ladder (cached per fingerprint).
std::vector<double> calibrated_sigmas(Experiment& exp);

}  // namespace gbo::core
