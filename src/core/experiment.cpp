#include "core/experiment.hpp"

#include "common/artifact_cache.hpp"
#include "common/logging.hpp"
#include "data/cifar10.hpp"

#include <cstdlib>
#include <sstream>

namespace gbo::core {
namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name); v && *v) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

float env_float(const char* name, float fallback) {
  if (const char* v = std::getenv(name); v && *v) {
    const float parsed = static_cast<float>(std::atof(v));
    if (parsed > 0.0f) return parsed;
  }
  return fallback;
}

}  // namespace

std::string StandardConfig::data_fingerprint() const {
  std::ostringstream oss;
  oss << data.fingerprint() << ":tr" << num_train << ":te" << num_test;
  return oss.str();
}

StandardConfig standard_config() {
  StandardConfig cfg;
  cfg.model.width = env_size("GBO_WIDTH", 16);
  cfg.model.image_size = env_size("GBO_IMAGE", 16);
  cfg.data.image_size = cfg.model.image_size;
  // Difficulty knob: tuned so the reduced VGG9 lands near the paper's 90.8%
  // clean-accuracy operating point.
  cfg.data.pixel_noise_std = env_float("GBO_DATA_NOISE", 0.85f);
  cfg.num_train = env_size("GBO_TRAIN_SIZE", 3000);
  cfg.num_test = env_size("GBO_TEST_SIZE", 1000);
  cfg.pretrain.epochs = env_size("GBO_EPOCHS", 15);
  if (!data::cifar10_dir_from_env().empty()) {
    cfg.model.image_size = 32;
    cfg.data.image_size = 32;
  }
  return cfg;
}

Experiment make_experiment() {
  StandardConfig cfg = standard_config();
  Experiment exp{cfg, models::build_vgg9(cfg.model), {}, {}, 0.0f};

  const std::string cifar_dir = data::cifar10_dir_from_env();
  std::string data_fp = cfg.data_fingerprint();
  if (!cifar_dir.empty()) {
    auto train = data::load_cifar10(cifar_dir, /*train=*/true);
    auto test = data::load_cifar10(cifar_dir, /*train=*/false);
    if (train && test) {
      exp.train = std::move(*train);
      exp.test = std::move(*test);
      data_fp = "cifar10";
      log_info("using real CIFAR-10 from ", cifar_dir);
    } else {
      log_warn("GBO_CIFAR10_DIR set but files missing; using SynthCIFAR");
    }
  }
  if (exp.train.size() == 0) {
    exp.train = data::make_synth_cifar(cfg.data, cfg.num_train, /*stream=*/0);
    exp.test = data::make_synth_cifar(cfg.data, cfg.num_test, /*stream=*/1);
  }

  exp.clean_acc =
      load_or_pretrain(exp.model, exp.train, exp.test, cfg.pretrain, data_fp);
  return exp;
}

std::vector<double> calibrated_sigmas(Experiment& exp) {
  const std::string fp = exp.cfg.model.fingerprint() + "|" +
                         exp.cfg.data_fingerprint() + "|" +
                         exp.cfg.pretrain.fingerprint() + "|sigmas";
  const std::string path = artifact_path("sigma-calibration", fp);
  if (artifact_exists(path)) {
    bool ok = false;
    const StateDict state = load_state_dict(path, &ok);
    if (ok) {
      if (auto it = state.find("sigmas"); it != state.end()) {
        std::vector<double> sigmas(it->second.data.begin(),
                                   it->second.data.end());
        log_info("loaded calibrated sigmas from cache");
        return sigmas;
      }
    }
  }

  Rng rng(exp.cfg.model.seed ^ 0x5151);
  xbar::LayerNoiseController ctrl(exp.model.encoded, /*sigma=*/0.0,
                                  exp.model.base_pulses(), rng);
  auto sigmas = calibrate_sigmas(*exp.model.net, ctrl, exp.test,
                                 exp.cfg.baseline_targets);
  StateDict state;
  state["sigmas"] = NamedBlob{{sigmas.size()},
                              std::vector<float>(sigmas.begin(), sigmas.end())};
  save_state_dict(path, state);
  return sigmas;
}

}  // namespace gbo::core
