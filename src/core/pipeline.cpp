#include "core/pipeline.hpp"

#include "common/artifact_cache.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "quant/binary_weight.hpp"
#include "tensor/ops.hpp"

#include <sstream>

namespace gbo::core {

namespace {

/// Fixed-order mean so the parallel and sequential evaluators accumulate
/// identically (trial results land in per-trial slots first).
float mean_accuracy(const std::vector<float>& acc) {
  float sum = 0.0f;
  for (float a : acc) sum += a;
  return sum / static_cast<float>(acc.size());
}

bool degenerate_noisy_inputs(const data::Dataset& test, std::size_t trials,
                             const char* fn) {
  if (trials == 0) {
    log_warn(fn, ": trials == 0, returning 0");
    return true;
  }
  if (test.size() == 0) {
    log_warn(fn, ": empty test dataset, returning 0");
    return true;
  }
  return false;
}

}  // namespace

std::string PretrainConfig::fingerprint() const {
  std::ostringstream oss;
  oss << "pretrain:e" << epochs << ":lr" << lr << ":m" << momentum << ":wd"
      << weight_decay << ":b" << batch_size << ":aug" << augment_flip << ":seed"
      << seed;
  return oss.str();
}

PretrainStats pretrain(nn::Sequential& net,
                       const std::vector<quant::Hookable*>& binary_layers,
                       const data::Dataset& train, const data::Dataset& test,
                       const PretrainConfig& cfg) {
  Rng rng(cfg.seed);
  nn::SGD opt(net.params(), cfg.lr, cfg.momentum, cfg.weight_decay);
  nn::StepLR sched(opt, cfg.epochs, cfg.lr_milestones, cfg.lr_decay);
  data::DataLoader loader(train, cfg.batch_size, /*shuffle=*/true, rng.fork(1),
                          cfg.augment_flip);

  PretrainStats stats;
  net.set_training(true);
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    sched.on_epoch(epoch);
    float loss_acc = 0.0f;
    std::size_t batches = 0, correct = 0, seen = 0;
    loader.reset();
    data::Batch batch;
    while (loader.next(batch)) {
      opt.zero_grad();
      Tensor logits = net.forward(batch.images);
      Tensor grad;
      loss_acc += nn::CrossEntropy::forward_backward(logits, batch.labels, grad);
      net.backward(grad);
      opt.step();
      for (quant::Hookable* layer : binary_layers)
        quant::clamp_latent(layer->latent_weight().value);

      const auto preds = ops::argmax_rows(logits);
      for (std::size_t i = 0; i < preds.size(); ++i)
        if (preds[i] == batch.labels[i]) ++correct;
      seen += preds.size();
      ++batches;
    }
    stats.train_loss.push_back(loss_acc / static_cast<float>(batches));
    stats.train_acc.push_back(static_cast<float>(correct) /
                              static_cast<float>(seen));
    log_info("pretrain epoch ", epoch + 1, "/", cfg.epochs,
             " loss=", stats.train_loss.back(), " acc=", stats.train_acc.back());
  }
  stats.test_acc = evaluate(net, test);
  log_info("pretrain done: clean test acc=", stats.test_acc);
  return stats;
}

float evaluate_trial(const nn::Sequential& net, const data::Dataset& test,
                     std::size_t batch_size, nn::EvalContext& ctx) {
  Rng rng(0);  // unused (no shuffling)
  data::DataLoader loader(test, batch_size, /*shuffle=*/false, rng);
  std::size_t correct = 0, seen = 0;
  data::Batch batch;
  while (loader.next(batch)) {
    const Tensor logits = net.infer(batch.images, ctx);
    const auto preds = ops::argmax_rows(logits);
    for (std::size_t i = 0; i < preds.size(); ++i)
      if (preds[i] == batch.labels[i]) ++correct;
    seen += preds.size();
  }
  return seen == 0 ? 0.0f
                   : static_cast<float>(correct) / static_cast<float>(seen);
}

float evaluate(const nn::Sequential& net, const data::Dataset& test,
               std::size_t batch_size) {
  if (test.size() == 0) {
    log_warn("evaluate: empty test dataset, returning 0");
    return 0.0f;
  }
  // Clean evaluation is deterministic: a fixed-seed context so any enabled
  // noise hooks draw a reproducible stream.
  nn::EvalContext ctx(Rng(0));
  return evaluate_trial(net, test, batch_size, ctx);
}

float evaluate_noisy(const nn::Sequential& net,
                     xbar::LayerNoiseController& ctrl,
                     const data::Dataset& test, std::size_t trials,
                     std::size_t batch_size) {
  if (degenerate_noisy_inputs(test, trials, "evaluate_noisy")) return 0.0f;
  const std::uint64_t base = ctrl.allocate_trials(trials);
  std::vector<float> acc(trials, 0.0f);
  // One pool block per trial: each trial is self-contained (own context,
  // own loader), so dynamic block claiming cannot change any trial's bits.
  parallel_for(0, trials, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t t = lo; t < hi; ++t) {
      nn::EvalContext ctx(ctrl.trial_rng(base + t));
      acc[t] = evaluate_trial(net, test, batch_size, ctx);
    }
  });
  return mean_accuracy(acc);
}

float evaluate_noisy_sequential(const nn::Sequential& net,
                                xbar::LayerNoiseController& ctrl,
                                const data::Dataset& test, std::size_t trials,
                                std::size_t batch_size) {
  if (degenerate_noisy_inputs(test, trials, "evaluate_noisy_sequential"))
    return 0.0f;
  const std::uint64_t base = ctrl.allocate_trials(trials);
  std::vector<float> acc(trials, 0.0f);
  for (std::size_t t = 0; t < trials; ++t) {
    nn::EvalContext ctx(ctrl.trial_rng(base + t));
    acc[t] = evaluate_trial(net, test, batch_size, ctx);
  }
  return mean_accuracy(acc);
}

float load_or_pretrain(models::Vgg9& model, const data::Dataset& train,
                       const data::Dataset& test, const PretrainConfig& cfg,
                       const std::string& data_fingerprint) {
  const std::string fp =
      model.config.fingerprint() + "|" + data_fingerprint + "|" + cfg.fingerprint();
  const std::string path = artifact_path("vgg9-pretrained", fp);
  if (artifact_exists(path)) {
    bool ok = false;
    const StateDict state = load_state_dict(path, &ok);
    if (ok) {
      model.net->load_state_dict(state);
      const float acc = evaluate(*model.net, test);
      log_info("loaded pretrained checkpoint ", path, " (clean acc=", acc, ")");
      return acc;
    }
  }
  log_info("no cached checkpoint; pretraining (", fp, ")");
  const PretrainStats stats =
      pretrain(*model.net, model.binary, train, test, cfg);
  if (!save_state_dict(path, model.net->state_dict()))
    log_warn("could not save checkpoint to ", path);
  return stats.test_acc;
}

float load_or_pretrain(models::ResNet& model, const data::Dataset& train,
                       const data::Dataset& test, const PretrainConfig& cfg,
                       const std::string& data_fingerprint) {
  const std::string fp = model.config.fingerprint() + "|" + data_fingerprint +
                         "|" + cfg.fingerprint();
  const std::string path = artifact_path("resnet-pretrained", fp);
  if (artifact_exists(path)) {
    bool ok = false;
    const StateDict state = load_state_dict(path, &ok);
    if (ok) {
      model.net->load_state_dict(state);
      const float acc = evaluate(*model.net, test);
      log_info("loaded pretrained checkpoint ", path, " (clean acc=", acc, ")");
      return acc;
    }
  }
  log_info("no cached checkpoint; pretraining (", fp, ")");
  const PretrainStats stats =
      pretrain(*model.net, model.binary, train, test, cfg);
  if (!save_state_dict(path, model.net->state_dict()))
    log_warn("could not save checkpoint to ", path);
  return stats.test_acc;
}

std::vector<double> calibrate_sigmas(nn::Sequential& net,
                                     xbar::LayerNoiseController& ctrl,
                                     const data::Dataset& test,
                                     const std::vector<double>& target_acc,
                                     double sigma_hi, std::size_t iters,
                                     std::size_t trials) {
  if (degenerate_noisy_inputs(test, trials, "calibrate_sigmas"))
    return std::vector<double>(target_acc.size(), 0.0);
  ctrl.attach();
  ctrl.set_enabled_all(true);
  ctrl.set_uniform_pulses(ctrl.base_pulses());

  std::vector<double> sigmas;
  for (double target : target_acc) {
    double lo = 0.0, hi = sigma_hi;
    for (std::size_t i = 0; i < iters; ++i) {
      const double mid = 0.5 * (lo + hi);
      ctrl.set_sigma(mid);
      const float acc = evaluate_noisy(net, ctrl, test, trials);
      // Accuracy decreases monotonically (in expectation) with σ.
      if (acc > target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const double sigma = 0.5 * (lo + hi);
    sigmas.push_back(sigma);
    log_info("calibrated sigma=", sigma, " for target baseline acc=", target);
  }
  ctrl.detach();
  return sigmas;
}

}  // namespace gbo::core
