// End-to-end training/evaluation pipeline (paper §IV-A).
//
// Stages:
//  1. pretrain()         — quantization-aware training of the BWNN with
//                          cross-entropy (SGD + momentum, step LR schedule);
//  2. nia_finetune()     — optional noise-aware fine-tuning (src/nia);
//  3. GboTrainer         — λ-only bit-encoding optimization (src/gbo);
//  4. evaluate*()        — clean or noisy accuracy, with noisy evaluation
//                          averaged over several independent noise draws.
//
// load_or_pretrain() adds artifact caching so every benchmark binary shares
// one pretrained checkpoint per configuration.
//
// Threading (two levels, both on the shared pool of common/thread_pool.hpp,
// sized by GBO_NUM_THREADS):
//  * per-batch kernels — GEMM in linear/conv2d, the im2col lowering, and
//    the fused pulse-level MVM in attached crossbar layers;
//  * per-trial dispatch — evaluate_noisy (and everything built on it:
//    calibrate_sigmas, the GBO searches, the NIA validation loop) runs its
//    independent noise-draw trials concurrently, one stateless EvalContext
//    per trial over the shared frozen weights (nn::Module::infer). While
//    trials occupy the pool, the kernels inside them run inline — trial
//    parallelism is the outer, coarser and therefore winning level for the
//    trial-heavy benches.
// Trial t draws its noise from the controller's counter-based fork
// (seed, trial_id) — see LayerNoiseController::trial_rng and DESIGN.md §3 —
// so results are bitwise identical to the retained sequential oracle
// (evaluate_noisy_sequential) at any thread count, and pretrain/evaluate
// numbers do not depend on the machine's core count.
#pragma once

#include "crossbar/crossbar_layers.hpp"
#include "data/dataloader.hpp"
#include "models/resnet.hpp"
#include "models/vgg9.hpp"
#include "nn/sequential.hpp"

#include <string>
#include <vector>

namespace gbo::core {

struct PretrainConfig {
  std::size_t epochs = 15;
  float lr = 0.02f;
  float momentum = 0.9f;            // paper §IV-A
  float weight_decay = 5e-4f;       // paper §IV-A
  std::vector<double> lr_milestones = {0.5, 0.7, 0.9};  // paper §IV-A
  float lr_decay = 0.1f;
  std::size_t batch_size = 32;
  bool augment_flip = true;
  std::uint64_t seed = 99;

  std::string fingerprint() const;
};

struct PretrainStats {
  std::vector<float> train_loss;
  std::vector<float> train_acc;
  float test_acc = 0.0f;
};

/// Quantization-aware pre-training with cross-entropy.
PretrainStats pretrain(nn::Sequential& net,
                       const std::vector<quant::Hookable*>& binary_layers,
                       const data::Dataset& train, const data::Dataset& test,
                       const PretrainConfig& cfg);

/// Clean test accuracy via the stateless inference path (eval-mode
/// semantics regardless of the network's training flag; no module state
/// touched). An empty dataset returns 0.0 with a logged warning.
float evaluate(const nn::Sequential& net, const data::Dataset& test,
               std::size_t batch_size = 64);

/// One full pass over `test` in the caller's EvalContext: the unit of work
/// a noisy-evaluation trial dispatches onto the thread pool. Exposed for
/// benches/tests that drive their own contexts.
float evaluate_trial(const nn::Sequential& net, const data::Dataset& test,
                     std::size_t batch_size, nn::EvalContext& ctx);

/// Noisy test accuracy: mean over `trials` independent noise draws, the
/// trials dispatched concurrently onto the shared thread pool (one
/// EvalContext per trial, seeded ctrl.trial_rng(trial_id)). The controller
/// must already be attached and configured. Bitwise identical to
/// evaluate_noisy_sequential at any GBO_NUM_THREADS. Degenerate inputs
/// (trials == 0 or an empty dataset) return 0.0 with a logged warning.
float evaluate_noisy(const nn::Sequential& net,
                     xbar::LayerNoiseController& ctrl,
                     const data::Dataset& test, std::size_t trials = 3,
                     std::size_t batch_size = 64);

/// Retained sequential evaluator — the equivalence oracle: same
/// (seed, trial_id) contract and float accumulation order as
/// evaluate_noisy, trials run in order on the calling thread.
float evaluate_noisy_sequential(const nn::Sequential& net,
                                xbar::LayerNoiseController& ctrl,
                                const data::Dataset& test,
                                std::size_t trials = 3,
                                std::size_t batch_size = 64);

/// Loads the pretrained checkpoint for (model, data, pretrain) fingerprints
/// if cached, otherwise pretrains and saves it. Returns the clean test
/// accuracy (recomputed on load so staleness is visible).
float load_or_pretrain(models::Vgg9& model, const data::Dataset& train,
                       const data::Dataset& test, const PretrainConfig& cfg,
                       const std::string& data_fingerprint);

/// ResNet variant of the same cache-or-train entry point.
float load_or_pretrain(models::ResNet& model, const data::Dataset& train,
                       const data::Dataset& test, const PretrainConfig& cfg,
                       const std::string& data_fingerprint);

/// Finds per-pulse noise σ values such that the *baseline* configuration
/// (uniform base pulses) degrades to each target accuracy, via bisection on
/// [0, sigma_hi]. This anchors the paper's σ ∈ {10, 15, 20} operating
/// points on our fan-in (see DESIGN.md §2). Each bisection step's trials
/// run trial-parallel (evaluate_noisy). Degenerate inputs (trials == 0 or
/// an empty dataset) yield all-zero sigmas with a logged warning.
std::vector<double> calibrate_sigmas(nn::Sequential& net,
                                     xbar::LayerNoiseController& ctrl,
                                     const data::Dataset& test,
                                     const std::vector<double>& target_acc,
                                     double sigma_hi = 64.0,
                                     std::size_t iters = 7,
                                     std::size_t trials = 2);

}  // namespace gbo::core
