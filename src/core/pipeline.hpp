// End-to-end training/evaluation pipeline (paper §IV-A).
//
// Stages:
//  1. pretrain()         — quantization-aware training of the BWNN with
//                          cross-entropy (SGD + momentum, step LR schedule);
//  2. nia_finetune()     — optional noise-aware fine-tuning (src/nia);
//  3. GboTrainer         — λ-only bit-encoding optimization (src/gbo);
//  4. evaluate*()        — clean or noisy accuracy, with noisy evaluation
//                          averaged over several independent noise draws.
//
// load_or_pretrain() adds artifact caching so every benchmark binary shares
// one pretrained checkpoint per configuration.
//
// Threading: the per-batch hot paths (GEMM in linear/conv2d, the im2col
// lowering, and the fused pulse-level MVM in attached crossbar layers) run
// on the shared pool (common/thread_pool.hpp, GBO_NUM_THREADS). Results are
// bitwise reproducible at any thread count, so pretrain/evaluate numbers do
// not depend on the machine's core count.
#pragma once

#include "crossbar/crossbar_layers.hpp"
#include "data/dataloader.hpp"
#include "models/resnet.hpp"
#include "models/vgg9.hpp"
#include "nn/sequential.hpp"

#include <string>
#include <vector>

namespace gbo::core {

struct PretrainConfig {
  std::size_t epochs = 15;
  float lr = 0.02f;
  float momentum = 0.9f;            // paper §IV-A
  float weight_decay = 5e-4f;       // paper §IV-A
  std::vector<double> lr_milestones = {0.5, 0.7, 0.9};  // paper §IV-A
  float lr_decay = 0.1f;
  std::size_t batch_size = 32;
  bool augment_flip = true;
  std::uint64_t seed = 99;

  std::string fingerprint() const;
};

struct PretrainStats {
  std::vector<float> train_loss;
  std::vector<float> train_acc;
  float test_acc = 0.0f;
};

/// Quantization-aware pre-training with cross-entropy.
PretrainStats pretrain(nn::Sequential& net,
                       const std::vector<quant::Hookable*>& binary_layers,
                       const data::Dataset& train, const data::Dataset& test,
                       const PretrainConfig& cfg);

/// Clean test accuracy (eval mode, no hooks touched).
float evaluate(nn::Sequential& net, const data::Dataset& test,
               std::size_t batch_size = 64);

/// Noisy test accuracy: evaluates `trials` times with independent noise
/// draws through the attached controller and returns the mean accuracy.
/// The controller must already be attached and configured.
float evaluate_noisy(nn::Sequential& net, xbar::LayerNoiseController& ctrl,
                     const data::Dataset& test, std::size_t trials = 3,
                     std::size_t batch_size = 64);

/// Loads the pretrained checkpoint for (model, data, pretrain) fingerprints
/// if cached, otherwise pretrains and saves it. Returns the clean test
/// accuracy (recomputed on load so staleness is visible).
float load_or_pretrain(models::Vgg9& model, const data::Dataset& train,
                       const data::Dataset& test, const PretrainConfig& cfg,
                       const std::string& data_fingerprint);

/// ResNet variant of the same cache-or-train entry point.
float load_or_pretrain(models::ResNet& model, const data::Dataset& train,
                       const data::Dataset& test, const PretrainConfig& cfg,
                       const std::string& data_fingerprint);

/// Finds per-pulse noise σ values such that the *baseline* configuration
/// (uniform base pulses) degrades to each target accuracy, via bisection on
/// [0, sigma_hi]. This anchors the paper's σ ∈ {10, 15, 20} operating
/// points on our fan-in (see DESIGN.md §2).
std::vector<double> calibrate_sigmas(nn::Sequential& net,
                                     xbar::LayerNoiseController& ctrl,
                                     const data::Dataset& test,
                                     const std::vector<double>& target_acc,
                                     double sigma_hi = 64.0,
                                     std::size_t iters = 7,
                                     std::size_t trials = 2);

}  // namespace gbo::core
