#include "data/cifar10.hpp"

#include <cstdlib>
#include <fstream>
#include <vector>

namespace gbo::data {
namespace {

constexpr std::size_t kImageBytes = 3 * 32 * 32;
constexpr std::size_t kRecordBytes = 1 + kImageBytes;

bool append_batch(const std::string& path, std::vector<float>& pixels,
                  std::vector<std::size_t>& labels) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::vector<unsigned char> record(kRecordBytes);
  while (f.read(reinterpret_cast<char*>(record.data()), kRecordBytes)) {
    labels.push_back(record[0]);
    for (std::size_t i = 0; i < kImageBytes; ++i)
      pixels.push_back(static_cast<float>(record[1 + i]) / 127.5f - 1.0f);
  }
  return true;
}

}  // namespace

std::optional<Dataset> load_cifar10(const std::string& dir, bool train) {
  if (dir.empty()) return std::nullopt;
  std::vector<float> pixels;
  std::vector<std::size_t> labels;
  if (train) {
    for (int b = 1; b <= 5; ++b) {
      if (!append_batch(dir + "/data_batch_" + std::to_string(b) + ".bin",
                        pixels, labels))
        return std::nullopt;
    }
  } else {
    if (!append_batch(dir + "/test_batch.bin", pixels, labels))
      return std::nullopt;
  }
  Dataset ds;
  ds.images = Tensor({labels.size(), 3, 32, 32}, std::move(pixels));
  ds.labels = std::move(labels);
  return ds;
}

std::string cifar10_dir_from_env() {
  const char* env = std::getenv("GBO_CIFAR10_DIR");
  return env ? env : "";
}

}  // namespace gbo::data
