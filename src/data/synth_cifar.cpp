#include "data/synth_cifar.hpp"

#include <cmath>
#include <sstream>

namespace gbo::data {

Tensor Dataset::image(std::size_t i) const {
  const std::size_t len = sample_numel();
  std::vector<std::size_t> shape = images.shape();
  shape[0] = 1;
  Tensor out(shape);
  const float* src = images.data() + i * len;
  std::copy(src, src + len, out.data());
  return out;
}

std::string SynthCifarConfig::fingerprint() const {
  std::ostringstream oss;
  oss << "synthcifar:k" << num_classes << ":s" << image_size << ":c" << channels
      << ":n" << pixel_noise_std << ":seed" << seed;
  return oss.str();
}

namespace {

/// Fixed per-class generative parameters, derived from the dataset seed so
/// the class definitions are shared between train and test splits.
struct ClassDef {
  float freq;        // grating spatial frequency (cycles per image)
  float theta;       // grating orientation
  float blob_x, blob_y;  // blob center in [0.2, 0.8]
  float blob_sigma;
  float color[3];    // per-channel weighting of the grating
  float blob_color[3];
};

std::vector<ClassDef> make_class_defs(const SynthCifarConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<ClassDef> defs(cfg.num_classes);
  for (std::size_t k = 0; k < cfg.num_classes; ++k) {
    ClassDef& d = defs[k];
    d.freq = 1.5f + static_cast<float>(k % 5);
    d.theta = static_cast<float>(k) * static_cast<float>(M_PI) /
                  static_cast<float>(cfg.num_classes) +
              static_cast<float>(rng.uniform(-0.05, 0.05));
    d.blob_x = static_cast<float>(rng.uniform(0.25, 0.75));
    d.blob_y = static_cast<float>(rng.uniform(0.25, 0.75));
    d.blob_sigma = static_cast<float>(rng.uniform(0.10, 0.18));
    for (int ch = 0; ch < 3; ++ch) {
      d.color[ch] = static_cast<float>(rng.uniform(0.3, 1.0));
      d.blob_color[ch] = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  return defs;
}

}  // namespace

Dataset make_synth_cifar(const SynthCifarConfig& cfg, std::size_t count,
                         std::uint64_t stream) {
  const auto defs = make_class_defs(cfg);
  Rng base(cfg.seed);
  Rng rng = base.fork(100 + stream);

  const std::size_t s = cfg.image_size, c = cfg.channels;
  Dataset ds;
  ds.images = Tensor({count, c, s, s});
  ds.labels.resize(count);

  for (std::size_t n = 0; n < count; ++n) {
    const std::size_t k = n % cfg.num_classes;  // balanced classes
    ds.labels[n] = k;
    const ClassDef& d = defs[k];

    const float phase = static_cast<float>(rng.uniform(0.0, 2.0 * M_PI));
    const float amp = static_cast<float>(rng.uniform(0.7, 1.0));
    const float bx = d.blob_x + static_cast<float>(rng.uniform(-0.08, 0.08));
    const float by = d.blob_y + static_cast<float>(rng.uniform(-0.08, 0.08));
    const bool flip = rng.bernoulli(0.5);

    const float ct = std::cos(d.theta), st = std::sin(d.theta);
    float* img = ds.images.data() + n * c * s * s;
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float cw = ch < 3 ? d.color[ch] : 1.0f;
      const float bw = ch < 3 ? d.blob_color[ch] : 0.0f;
      for (std::size_t y = 0; y < s; ++y) {
        for (std::size_t x = 0; x < s; ++x) {
          const std::size_t xe = flip ? s - 1 - x : x;
          const float u = static_cast<float>(xe) / static_cast<float>(s);
          const float v = static_cast<float>(y) / static_cast<float>(s);
          const float grating =
              std::sin(2.0f * static_cast<float>(M_PI) * d.freq *
                           (u * ct + v * st) +
                       phase);
          const float dx = u - bx, dy = v - by;
          const float blob =
              std::exp(-(dx * dx + dy * dy) / (2.0f * d.blob_sigma * d.blob_sigma));
          float val = amp * (0.6f * cw * grating + 0.8f * bw * blob) +
                      cfg.pixel_noise_std * static_cast<float>(rng.normal());
          // Clamp to the normalized image range.
          val = val > 1.0f ? 1.0f : (val < -1.0f ? -1.0f : val);
          img[(ch * s + y) * s + x] = val;
        }
      }
    }
  }
  return ds;
}

}  // namespace gbo::data
