#include "data/dataloader.hpp"

#include <algorithm>
#include <numeric>

namespace gbo::data {

DataLoader::DataLoader(const Dataset& ds, std::size_t batch_size, bool shuffle,
                       Rng rng, bool augment_flip)
    : ds_(ds),
      batch_size_(batch_size),
      shuffle_(shuffle),
      augment_flip_(augment_flip),
      rng_(rng),
      order_(ds.size()) {
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  reset();
}

std::size_t DataLoader::num_batches() const {
  return (ds_.size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::reset() {
  cursor_ = 0;
  if (shuffle_) std::shuffle(order_.begin(), order_.end(), rng_);
}

bool DataLoader::next(Batch& out) {
  if (cursor_ >= order_.size()) return false;
  const std::size_t n = std::min(batch_size_, order_.size() - cursor_);
  const std::size_t img_len = ds_.sample_numel();
  const bool is_image = ds_.images.ndim() == 4;
  // Flip augmentation only makes sense for NCHW image data.
  const bool flip_ok = augment_flip_ && is_image;

  std::vector<std::size_t> shape = ds_.images.shape();
  shape[0] = n;
  out.images = Tensor(shape);
  out.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src_idx = order_[cursor_ + i];
    out.labels[i] = ds_.labels[src_idx];
    const float* src = ds_.images.data() + src_idx * img_len;
    float* dst = out.images.data() + i * img_len;
    if (flip_ok && rng_.bernoulli(0.5)) {
      const std::size_t c = ds_.channels(), h = ds_.height(), w = ds_.width();
      for (std::size_t ch = 0; ch < c; ++ch)
        for (std::size_t y = 0; y < h; ++y)
          for (std::size_t x = 0; x < w; ++x)
            dst[(ch * h + y) * w + x] = src[(ch * h + y) * w + (w - 1 - x)];
    } else {
      std::copy(src, src + img_len, dst);
    }
  }
  cursor_ += n;
  return true;
}

}  // namespace gbo::data
