// SynthCIFAR — procedural 10-class image dataset.
//
// Offline substitute for CIFAR-10 (see DESIGN.md §2): each class is defined
// by (a) an oriented sinusoidal grating with class-specific frequency and
// orientation, (b) a class-colored Gaussian blob at a class-specific
// location, and (c) a class color balance. Instances draw random grating
// phase, blob jitter, amplitude jitter, per-pixel Gaussian noise, and a
// random horizontal flip, so the task requires learning spatial structure
// rather than mean color alone. Difficulty is tuned (noise_std) so the
// reduced VGG9 reaches ≈90% clean accuracy — the paper's CIFAR-10 operating
// point — making the relative noise-degradation trends comparable.
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace gbo::data {

struct SynthCifarConfig {
  std::size_t num_classes = 10;
  std::size_t image_size = 16;
  std::size_t channels = 3;
  float pixel_noise_std = 0.35f;  // instance noise; raises task difficulty
  std::uint64_t seed = 1234;

  std::string fingerprint() const;
};

/// Generates `count` samples. `stream` separates independent splits
/// (0 = train, 1 = test) drawn from the same class definitions.
Dataset make_synth_cifar(const SynthCifarConfig& cfg, std::size_t count,
                         std::uint64_t stream);

}  // namespace gbo::data
