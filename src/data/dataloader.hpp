// Mini-batch iteration over a Dataset with optional shuffling and
// horizontal-flip augmentation.
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace gbo::data {

struct Batch {
  Tensor images;                    // [B, C, H, W]
  std::vector<std::size_t> labels;  // B entries
};

class DataLoader {
 public:
  DataLoader(const Dataset& ds, std::size_t batch_size, bool shuffle, Rng rng,
             bool augment_flip = false);

  /// Batches per epoch (last partial batch included).
  std::size_t num_batches() const;

  /// Reshuffles (when enabled) and resets the cursor. Call between epochs.
  void reset();

  /// Fetches the next batch; returns false at epoch end.
  bool next(Batch& out);

 private:
  const Dataset& ds_;
  std::size_t batch_size_;
  bool shuffle_;
  bool augment_flip_;
  Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace gbo::data
