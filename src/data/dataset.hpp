// In-memory labeled image dataset.
#pragma once

#include "tensor/tensor.hpp"

#include <vector>

namespace gbo::data {

struct Dataset {
  /// [N, C, H, W] for image data; any [N, ...] layout works with the
  /// DataLoader (e.g. [N, features] for MLP experiments).
  Tensor images;
  std::vector<std::size_t> labels;  // N entries

  std::size_t size() const { return labels.size(); }
  /// Elements per sample (product of the non-batch dims).
  std::size_t sample_numel() const {
    return size() == 0 ? 0 : images.numel() / size();
  }
  std::size_t channels() const { return images.dim(1); }
  std::size_t height() const { return images.dim(2); }
  std::size_t width() const { return images.dim(3); }

  /// Copies one sample into a [1, ...] tensor of the same layout.
  Tensor image(std::size_t i) const;
};

}  // namespace gbo::data
