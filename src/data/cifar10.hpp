// CIFAR-10 binary-format loader.
//
// Reads the standard python/binary distribution (data_batch_1..5.bin,
// test_batch.bin; 3073-byte records: 1 label byte + 3072 RGB bytes). When
// the files are present (directory from $GBO_CIFAR10_DIR or an explicit
// path) the experiment pipeline can run on the real dataset; offline
// environments fall back to SynthCIFAR (see DESIGN.md §2).
#pragma once

#include "data/dataset.hpp"

#include <optional>
#include <string>

namespace gbo::data {

/// Loads the train (5 batches) or test (1 batch) split from `dir`.
/// Pixels are normalized to [-1, 1]. Returns nullopt when files are absent.
std::optional<Dataset> load_cifar10(const std::string& dir, bool train);

/// Directory from $GBO_CIFAR10_DIR, or empty string when unset.
std::string cifar10_dir_from_env();

}  // namespace gbo::data
