#include "quant/binary_weight.hpp"

#include <atomic>
#include <cmath>

namespace gbo::quant {
namespace {

std::atomic<std::uint64_t> g_binarizes{0};

}  // namespace

std::uint64_t binarize_count() {
  return g_binarizes.load(std::memory_order_relaxed);
}

Tensor binarize(const Tensor& latent, bool scaled, float* scale_out) {
  Tensor out(latent.shape());
  binarize_into(latent, scaled, out.data(), scale_out);
  return out;
}

float binarize_scale(const Tensor& latent) {
  double acc = 0.0;
  const float* p = latent.data();
  for (std::size_t i = 0; i < latent.numel(); ++i) acc += std::fabs(p[i]);
  float scale = latent.numel() ? static_cast<float>(acc / latent.numel()) : 1.0f;
  return scale == 0.0f ? 1.0f : scale;
}

void binarize_into(const Tensor& latent, bool scaled, float* out,
                   float* scale_out) {
  g_binarizes.fetch_add(1, std::memory_order_relaxed);
  const float scale = scaled ? binarize_scale(latent) : 1.0f;
  if (scale_out) *scale_out = scale;

  const float* p = latent.data();
  for (std::size_t i = 0; i < latent.numel(); ++i)
    out[i] = p[i] >= 0.0f ? scale : -scale;
}

void ste_clip_grad(const Tensor& latent, Tensor& grad) {
  Tensor::check_same_shape(latent, grad, "ste_clip_grad");
  const float* w = latent.data();
  float* g = grad.data();
  for (std::size_t i = 0; i < grad.numel(); ++i)
    if (w[i] > 1.0f || w[i] < -1.0f) g[i] = 0.0f;
}

void clamp_latent(Tensor& latent) {
  float* w = latent.data();
  for (std::size_t i = 0; i < latent.numel(); ++i)
    w[i] = w[i] > 1.0f ? 1.0f : (w[i] < -1.0f ? -1.0f : w[i]);
}

}  // namespace gbo::quant
