// Binary weight quantization (BinaryConnect-style, Courbariaux et al. 2015).
//
// A binary memristive crossbar stores each weight as a single on/off
// conductance pair, so the deployed weight is sign(w) (optionally scaled by
// a per-layer constant folded into the ADC reference / BN that follows).
// Training keeps latent float weights; the forward pass uses the binarized
// weight, and the straight-through estimator (STE) passes gradients to the
// latent weights, zeroing them where |w| > 1 (the saturation region).
#pragma once

#include "tensor/tensor.hpp"

namespace gbo::quant {

/// Returns sign(w) * scale. `scale`, when enabled, is the mean absolute
/// latent weight of the layer (XNOR-Net-style), which preserves the layer's
/// output magnitude; this constant is digital and does not touch the
/// crossbar cells.
Tensor binarize(const Tensor& latent, bool scaled, float* scale_out = nullptr);

/// Same quantization into a caller-provided buffer of latent.numel() floats
/// (arena scratch in the stateless infer path); bitwise identical.
void binarize_into(const Tensor& latent, bool scaled, float* out,
                   float* scale_out = nullptr);

/// The digital scale binarize uses when `scaled`: mean |w| over the layer
/// (double accumulation; 1 for empty or all-zero weights). Exposed so the
/// quant layers can run the MVM over the unscaled ±1 matrix and apply the
/// scale as a separate epilogue — the factorization the XNOR/popcount
/// kernel path requires (DESIGN.md §8) — while computing the identical
/// scale value everywhere.
float binarize_scale(const Tensor& latent);

/// Process-wide count of binarizations (binarize / binarize_into). Relaxed
/// atomic; the serving bench diffs it across a steady-state run to prove
/// the quant layers' frozen-weight caches (quant_layers.hpp) have
/// amortized per-request re-binarization to zero.
std::uint64_t binarize_count();

/// STE backward: zeroes gradient entries where the latent weight saturates
/// (|w| > 1), in place.
void ste_clip_grad(const Tensor& latent, Tensor& grad);

/// Clamps latent weights to [-1, 1] after an optimizer step (keeps the
/// latent weights inside the STE pass-through region).
void clamp_latent(Tensor& latent);

}  // namespace gbo::quant
