#include "quant/quant_layers.hpp"

#include "quant/binary_weight.hpp"
#include "tensor/gemm.hpp"

#include <algorithm>
#include <stdexcept>

namespace gbo::quant {
namespace {

/// Hook dispatch shared by both quant layers: per-sample row streams when
/// the context carries them (fused stochastic serving, DESIGN.md §6), the
/// classic single-stream draw otherwise.
void apply_output_hook(const MvmNoiseHook& hook, Tensor& out,
                       gbo::nn::EvalContext& ctx) {
  if (ctx.per_sample())
    hook.infer_output_rows(out, ctx.row_rngs.data(), ctx.row_rngs.size());
  else
    hook.infer_output(out, ctx.rng);
}

}  // namespace

void MvmNoiseHook::infer_output(Tensor& /*out*/, Rng& /*rng*/) const {
  throw std::logic_error(
      "MvmNoiseHook: this hook does not support stateless inference");
}

void MvmNoiseHook::infer_output_rows(Tensor& /*out*/, Rng* /*rngs*/,
                                     std::size_t /*num_streams*/) const {
  throw std::logic_error(
      "MvmNoiseHook: this hook does not support per-sample row streams");
}

bool hooks_support_row_streams(const gbo::nn::Module& m) {
  if (const auto* h = dynamic_cast<const Hookable*>(&m))
    if (h->noise_hook() != nullptr && h->noise_hook()->stochastic() &&
        !h->noise_hook()->supports_row_streams())
      return false;
  for (const gbo::nn::Module* child : m.children())
    if (!hooks_support_row_streams(*child)) return false;
  return true;
}

void BinaryPanelCache::get(const Tensor& latent, bool scaled, std::size_t n,
                           std::size_t k, bool want_panels, const float** bw,
                           const float** panels) const {
  gate_.ensure(latent.version(), [&] {
    bw_.resize(latent.numel());
    binarize_into(latent, scaled, bw_.data());
    if (want_panels) {
      panels_.resize(gemm::packed_b_floats(n, k));
      gemm::pack_b_t(n, k, bw_.data(), k, panels_.data());
    }
    rebuilds_.fetch_add(1, std::memory_order_relaxed);
  });
  *bw = bw_.data();
  *panels = want_panels ? panels_.data() : nullptr;
}

QuantConv2d::QuantConv2d(std::size_t out_channels, gbo::ConvGeom geom, Rng& rng,
                         bool scaled)
    : Conv2d(out_channels, geom, /*bias=*/false, rng), scaled_(scaled) {}

const Tensor& QuantConv2d::effective_weight() {
  binary_weight_ = binarize(weight_.value, scaled_, &weight_scale_);
  return binary_weight_;
}

void QuantConv2d::on_weight_grad(Tensor& grad_w) {
  ste_clip_grad(weight_.value, grad_w);
}

Tensor QuantConv2d::forward(const Tensor& x) {
  Tensor out;
  if (hook_) {
    Tensor xin = x;
    hook_->on_input(xin);
    out = Conv2d::forward(xin);
    hook_->on_forward(out);
  } else {
    out = Conv2d::forward(x);
  }
  return out;
}

Tensor QuantConv2d::backward(const Tensor& grad_out) {
  if (hook_) hook_->on_backward(grad_out);
  return Conv2d::backward(grad_out);
}

Tensor QuantConv2d::infer(const Tensor& x, gbo::nn::EvalContext& ctx) const {
  // Frozen-weight cache (DESIGN.md §6): the binarized copy and its packed
  // panels are rebuilt only when the latent weight's version moves, so
  // steady-state serving neither re-binarizes nor re-packs. Binarization
  // and packing are deterministic, so a cache hit is bitwise identical to
  // the fresh path (and to forward()).
  const float* bw;
  const float* panels;
  cache_.get(weight_.value, scaled_, out_c_, geom_.patch_len(),
             /*want_panels=*/true, &bw, &panels);
  if (!hook_) return infer_with_weight(x, bw, /*with_bias=*/false, &ctx, panels);
  gbo::ArenaFrame frame(ctx.arena);
  Tensor xin = ctx.make(x.shape());
  std::copy(x.data(), x.data() + x.numel(), xin.data());
  hook_->infer_input(xin, ctx.rng);
  Tensor out = infer_with_weight(xin, bw, /*with_bias=*/false, &ctx, panels);
  ctx.recycle(std::move(xin));
  apply_output_hook(*hook_, out, ctx);
  return out;
}

QuantLinear::QuantLinear(std::size_t in_features, std::size_t out_features,
                         Rng& rng, bool scaled)
    : Linear(in_features, out_features, /*bias=*/false, rng), scaled_(scaled) {}

const Tensor& QuantLinear::effective_weight() {
  binary_weight_ = binarize(weight_.value, scaled_, &weight_scale_);
  return binary_weight_;
}

void QuantLinear::on_weight_grad(Tensor& grad_w) {
  ste_clip_grad(weight_.value, grad_w);
}

Tensor QuantLinear::forward(const Tensor& x) {
  Tensor out;
  if (hook_) {
    Tensor xin = x;
    hook_->on_input(xin);
    out = Linear::forward(xin);
    hook_->on_forward(out);
  } else {
    out = Linear::forward(x);
  }
  return out;
}

Tensor QuantLinear::backward(const Tensor& grad_out) {
  if (hook_) hook_->on_backward(grad_out);
  return Linear::backward(grad_out);
}

Tensor QuantLinear::infer(const Tensor& x, gbo::nn::EvalContext& ctx) const {
  // Same frozen-weight cache as QuantConv2d::infer; panels only for the
  // shapes the layer's dispatch rule would pack.
  const float* bw;
  const float* panels;
  cache_.get(weight_.value, scaled_, out_, in_,
             gemm::panels_for_weight(out_, in_), &bw, &panels);
  if (!hook_) return infer_with_weight(x, bw, /*with_bias=*/false, &ctx, panels);
  gbo::ArenaFrame frame(ctx.arena);
  Tensor xin = ctx.make(x.shape());
  std::copy(x.data(), x.data() + x.numel(), xin.data());
  hook_->infer_input(xin, ctx.rng);
  Tensor out = infer_with_weight(xin, bw, /*with_bias=*/false, &ctx, panels);
  ctx.recycle(std::move(xin));
  apply_output_hook(*hook_, out, ctx);
  return out;
}

}  // namespace gbo::quant
