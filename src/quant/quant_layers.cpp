#include "quant/quant_layers.hpp"

#include "quant/binary_weight.hpp"

#include <algorithm>
#include <stdexcept>

namespace gbo::quant {

void MvmNoiseHook::infer_output(Tensor& /*out*/, Rng& /*rng*/) const {
  throw std::logic_error(
      "MvmNoiseHook: this hook does not support stateless inference");
}

QuantConv2d::QuantConv2d(std::size_t out_channels, gbo::ConvGeom geom, Rng& rng,
                         bool scaled)
    : Conv2d(out_channels, geom, /*bias=*/false, rng), scaled_(scaled) {}

const Tensor& QuantConv2d::effective_weight() {
  binary_weight_ = binarize(weight_.value, scaled_, &weight_scale_);
  return binary_weight_;
}

void QuantConv2d::on_weight_grad(Tensor& grad_w) {
  ste_clip_grad(weight_.value, grad_w);
}

Tensor QuantConv2d::forward(const Tensor& x) {
  Tensor out;
  if (hook_) {
    Tensor xin = x;
    hook_->on_input(xin);
    out = Conv2d::forward(xin);
    hook_->on_forward(out);
  } else {
    out = Conv2d::forward(x);
  }
  return out;
}

Tensor QuantConv2d::backward(const Tensor& grad_out) {
  if (hook_) hook_->on_backward(grad_out);
  return Conv2d::backward(grad_out);
}

Tensor QuantConv2d::infer(const Tensor& x, gbo::nn::EvalContext& ctx) const {
  // Binarize into a local so shared layer state stays untouched; the copy
  // is the same work the training path spends re-binarizing each forward.
  // With an arena attached the copy is bump-allocated scratch instead.
  gbo::ArenaFrame frame(ctx.arena);
  Tensor bw_own;
  const float* bw;
  if (ctx.arena) {
    float* p = ctx.arena->alloc_floats(weight_.value.numel());
    binarize_into(weight_.value, scaled_, p);
    bw = p;
  } else {
    bw_own = binarize(weight_.value, scaled_);
    bw = bw_own.data();
  }
  if (!hook_) return infer_with_weight(x, bw, /*with_bias=*/false, &ctx);
  Tensor xin = ctx.make(x.shape());
  std::copy(x.data(), x.data() + x.numel(), xin.data());
  hook_->infer_input(xin, ctx.rng);
  Tensor out = infer_with_weight(xin, bw, /*with_bias=*/false, &ctx);
  ctx.recycle(std::move(xin));
  hook_->infer_output(out, ctx.rng);
  return out;
}

QuantLinear::QuantLinear(std::size_t in_features, std::size_t out_features,
                         Rng& rng, bool scaled)
    : Linear(in_features, out_features, /*bias=*/false, rng), scaled_(scaled) {}

const Tensor& QuantLinear::effective_weight() {
  binary_weight_ = binarize(weight_.value, scaled_, &weight_scale_);
  return binary_weight_;
}

void QuantLinear::on_weight_grad(Tensor& grad_w) {
  ste_clip_grad(weight_.value, grad_w);
}

Tensor QuantLinear::forward(const Tensor& x) {
  Tensor out;
  if (hook_) {
    Tensor xin = x;
    hook_->on_input(xin);
    out = Linear::forward(xin);
    hook_->on_forward(out);
  } else {
    out = Linear::forward(x);
  }
  return out;
}

Tensor QuantLinear::backward(const Tensor& grad_out) {
  if (hook_) hook_->on_backward(grad_out);
  return Linear::backward(grad_out);
}

Tensor QuantLinear::infer(const Tensor& x, gbo::nn::EvalContext& ctx) const {
  gbo::ArenaFrame frame(ctx.arena);
  Tensor bw_own;
  const float* bw;
  if (ctx.arena) {
    float* p = ctx.arena->alloc_floats(weight_.value.numel());
    binarize_into(weight_.value, scaled_, p);
    bw = p;
  } else {
    bw_own = binarize(weight_.value, scaled_);
    bw = bw_own.data();
  }
  if (!hook_) return infer_with_weight(x, bw, /*with_bias=*/false, &ctx);
  Tensor xin = ctx.make(x.shape());
  std::copy(x.data(), x.data() + x.numel(), xin.data());
  hook_->infer_input(xin, ctx.rng);
  Tensor out = infer_with_weight(xin, bw, /*with_bias=*/false, &ctx);
  ctx.recycle(std::move(xin));
  hook_->infer_output(out, ctx.rng);
  return out;
}

}  // namespace gbo::quant
