#include "quant/quant_layers.hpp"

#include "quant/binary_weight.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_binary.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace gbo::quant {
namespace {

/// Hook dispatch shared by both quant layers: per-sample row streams when
/// the context carries them (fused stochastic serving, DESIGN.md §6), the
/// classic single-stream draw otherwise.
void apply_output_hook(const MvmNoiseHook& hook, Tensor& out,
                       gbo::nn::EvalContext& ctx) {
  if (ctx.per_sample())
    hook.infer_output_rows(out, ctx.row_rngs.data(), ctx.row_rngs.size());
  else
    hook.infer_output(out, ctx.rng);
}

/// The digital-scale epilogue (DESIGN.md §8): one elementwise multiply after
/// the unscaled ±1 MVM. Shared verbatim by forward and infer — the multiply
/// is per-element, so the two paths (and the binary/float MVM routes
/// beneath them) stay bitwise equal.
void scale_output(Tensor& out, bool scaled, float scale) {
  if (!scaled) return;
  float* p = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i) p[i] *= scale;
}

}  // namespace

void MvmNoiseHook::infer_output(Tensor& /*out*/, Rng& /*rng*/) const {
  throw std::logic_error(
      "MvmNoiseHook: this hook does not support stateless inference");
}

void MvmNoiseHook::infer_output_rows(Tensor& /*out*/, Rng* /*rngs*/,
                                     std::size_t /*num_streams*/) const {
  throw std::logic_error(
      "MvmNoiseHook: this hook does not support per-sample row streams");
}

bool hooks_support_row_streams(const gbo::nn::Module& m) {
  if (const auto* h = dynamic_cast<const Hookable*>(&m))
    if (h->noise_hook() != nullptr && h->noise_hook()->stochastic() &&
        !h->noise_hook()->supports_row_streams())
      return false;
  for (const gbo::nn::Module* child : m.children())
    if (!hooks_support_row_streams(*child)) return false;
  return true;
}

void BinaryPanelCache::get(const Tensor& latent, bool scaled, std::size_t n,
                           std::size_t k, bool want_panels, const float** bw,
                           const float** panels,
                           const gbo::gemm::PackedBinaryB** bwords,
                           float* scale) const {
  gate_.ensure(latent.version(), [&] {
    bw_.resize(latent.numel());
    // Unscaled ±1 signs: the MVM runs over these (float panels and binary
    // words alike) and the digital scale is applied as an epilogue, so the
    // XNOR/popcount route stays bitwise equal to the float route.
    binarize_into(latent, /*scaled=*/false, bw_.data());
    scale_ = scaled ? binarize_scale(latent) : 1.0f;
    if (want_panels) {
      panels_.resize(gemm::packed_b_floats(n, k));
      gemm::pack_b_t(n, k, bw_.data(), k, panels_.data());
    }
    bwords_ = gemm::prepack_binary_b_t(n, k, bw_.data(), k);
    rebuilds_.fetch_add(1, std::memory_order_relaxed);
  });
  *bw = bw_.data();
  *panels = want_panels ? panels_.data() : nullptr;
  *bwords = &bwords_;
  *scale = scale_;
}

QuantConv2d::QuantConv2d(std::size_t out_channels, gbo::ConvGeom geom, Rng& rng,
                         bool scaled)
    : Conv2d(out_channels, geom, /*bias=*/false, rng), scaled_(scaled) {}

const Tensor& QuantConv2d::effective_weight() {
  weight_scale_ = scaled_ ? binarize_scale(weight_.value) : 1.0f;
  binary_weight_ = binarize(weight_.value, /*scaled=*/false);
  return binary_weight_;
}

void QuantConv2d::on_weight_grad(Tensor& grad_w) {
  ste_clip_grad(weight_.value, grad_w);
}

Tensor QuantConv2d::forward(const Tensor& x) {
  Tensor out;
  if (hook_) {
    Tensor xin = x;
    hook_->on_input(xin);
    out = Conv2d::forward(xin);
    scale_output(out, scaled_, weight_scale_);
    hook_->on_forward(out);
  } else {
    out = Conv2d::forward(x);
    scale_output(out, scaled_, weight_scale_);
  }
  return out;
}

Tensor QuantConv2d::backward(const Tensor& grad_out) {
  if (hook_) hook_->on_backward(grad_out);
  // Base backward computes dW from the raw grad (the STE convention: the
  // latent weight's gradient is taken w.r.t. the stored ±1 matrix, exactly
  // as when the scale was folded into the effective weight) and dX over the
  // ±1 signs; the epilogue's scale factor then lands on dX.
  Tensor dx = Conv2d::backward(grad_out);
  scale_output(dx, scaled_, weight_scale_);
  return dx;
}

Tensor QuantConv2d::infer_mvm(const Tensor& x, gbo::nn::EvalContext& ctx,
                              const float* bw, const float* panels,
                              const gbo::gemm::PackedBinaryB& bwords) const {
  // XNOR/popcount route (DESIGN.md §8): every im2col patch value is either
  // an input element or zero padding (on-grid), so a scan of the NCHW input
  // decides the route before any patch matrix is materialized. Off-grid
  // inputs (the raw-image stem, PLA-requantized activations) take the float
  // panel route — bitwise equal for on-grid data, so the dispatch can never
  // change an output bit.
  if (x.ndim() == 4 && !bwords.empty() &&
      gemm::binary_grid_check(x.data(), x.numel())) {
    const std::size_t batch = x.dim(0);
    const std::size_t oh = geom_.out_h(), ow = geom_.out_w();
    const std::size_t m = batch * oh * ow;
    const std::size_t k = geom_.patch_len();
    gbo::ArenaFrame frame(ctx.arena);
    Tensor cols_own, rows_own;
    std::vector<std::uint64_t> pa_own;
    float* cols;
    float* rows;
    std::uint64_t* pa;
    if (ctx.arena) {
      cols = ctx.arena->alloc_floats(m * k);
      rows = ctx.arena->alloc_floats(m * out_c_);
      pa = ctx.arena->alloc_words(gemm::packed_binary_a_words(m, k));
    } else {
      cols_own = Tensor({m, k});
      cols = cols_own.data();
      rows_own = Tensor({m, out_c_});
      rows = rows_own.data();
      pa_own.resize(gemm::packed_binary_a_words(m, k));
      pa = pa_own.data();
    }
    im2col_into(x, geom_, cols);
    // The grid check covered every patch source value, so the fused
    // validate+encode cannot fail here.
    if (gemm::pack_binary_a(m, k, cols, k, pa)) {
      gemm::gemm_binary(m, out_c_, k, pa, bwords, rows, out_c_);
      Tensor out = ctx.make({batch, out_c_, oh, ow});
      gbo::rows_to_nchw_into(rows, batch, out_c_, oh, ow, out.data());
      return out;
    }
  }
  return infer_with_weight(x, bw, /*with_bias=*/false, &ctx, panels);
}

Tensor QuantConv2d::infer(const Tensor& x, gbo::nn::EvalContext& ctx) const {
  // Frozen-weight cache (DESIGN.md §6): the binarized copy, its packed
  // float panels, and its packed binary sign words are rebuilt only when
  // the latent weight's version moves, so steady-state serving neither
  // re-binarizes nor re-packs. Binarization and packing are deterministic,
  // so a cache hit is bitwise identical to the fresh path (and to
  // forward()).
  const float* bw;
  const float* panels;
  const gemm::PackedBinaryB* bwords;
  float scale;
  cache_.get(weight_.value, scaled_, out_c_, geom_.patch_len(),
             /*want_panels=*/true, &bw, &panels, &bwords, &scale);
  if (!hook_) {
    Tensor out = infer_mvm(x, ctx, bw, panels, *bwords);
    scale_output(out, scaled_, scale);
    return out;
  }
  gbo::ArenaFrame frame(ctx.arena);
  Tensor xin = ctx.make(x.shape());
  std::copy(x.data(), x.data() + x.numel(), xin.data());
  hook_->infer_input(xin, ctx.rng);
  Tensor out = infer_mvm(xin, ctx, bw, panels, *bwords);
  ctx.recycle(std::move(xin));
  scale_output(out, scaled_, scale);
  apply_output_hook(*hook_, out, ctx);
  return out;
}

QuantLinear::QuantLinear(std::size_t in_features, std::size_t out_features,
                         Rng& rng, bool scaled)
    : Linear(in_features, out_features, /*bias=*/false, rng), scaled_(scaled) {}

const Tensor& QuantLinear::effective_weight() {
  weight_scale_ = scaled_ ? binarize_scale(weight_.value) : 1.0f;
  binary_weight_ = binarize(weight_.value, /*scaled=*/false);
  return binary_weight_;
}

void QuantLinear::on_weight_grad(Tensor& grad_w) {
  ste_clip_grad(weight_.value, grad_w);
}

Tensor QuantLinear::forward(const Tensor& x) {
  Tensor out;
  if (hook_) {
    Tensor xin = x;
    hook_->on_input(xin);
    out = Linear::forward(xin);
    scale_output(out, scaled_, weight_scale_);
    hook_->on_forward(out);
  } else {
    out = Linear::forward(x);
    scale_output(out, scaled_, weight_scale_);
  }
  return out;
}

Tensor QuantLinear::backward(const Tensor& grad_out) {
  if (hook_) hook_->on_backward(grad_out);
  // dW stays unscaled (STE over the stored signs, see QuantConv2d); the
  // epilogue's scale lands on dX.
  Tensor dx = Linear::backward(grad_out);
  scale_output(dx, scaled_, weight_scale_);
  return dx;
}

Tensor QuantLinear::infer_mvm(const Tensor& x, gbo::nn::EvalContext& ctx,
                              const float* bw, const float* panels,
                              const gbo::gemm::PackedBinaryB& bwords) const {
  // XNOR/popcount route (DESIGN.md §8): the activation matrix IS the A
  // operand, so the on-grid check is fused into the bit-plane encode; an
  // off-grid value aborts the encode and falls back to the float route.
  if (x.ndim() == 2 && x.dim(1) == in_ && !bwords.empty()) {
    const std::size_t batch = x.dim(0);
    gbo::ArenaFrame frame(ctx.arena);
    std::vector<std::uint64_t> pa_own;
    std::uint64_t* pa;
    const std::size_t words = gemm::packed_binary_a_words(batch, in_);
    if (ctx.arena) {
      pa = ctx.arena->alloc_words(words);
    } else {
      pa_own.resize(words);
      pa = pa_own.data();
    }
    if (gemm::pack_binary_a(batch, in_, x.data(), in_, pa)) {
      Tensor y = ctx.make({batch, out_});
      gemm::gemm_binary(batch, out_, in_, pa, bwords, y.data(), out_);
      return y;
    }
  }
  return infer_with_weight(x, bw, /*with_bias=*/false, &ctx, panels);
}

Tensor QuantLinear::infer(const Tensor& x, gbo::nn::EvalContext& ctx) const {
  // Same frozen-weight cache as QuantConv2d::infer; float panels only for
  // the shapes the layer's dispatch rule would pack.
  const float* bw;
  const float* panels;
  const gemm::PackedBinaryB* bwords;
  float scale;
  cache_.get(weight_.value, scaled_, out_, in_,
             gemm::panels_for_weight(out_, in_), &bw, &panels, &bwords,
             &scale);
  if (!hook_) {
    Tensor out = infer_mvm(x, ctx, bw, panels, *bwords);
    scale_output(out, scaled_, scale);
    return out;
  }
  gbo::ArenaFrame frame(ctx.arena);
  Tensor xin = ctx.make(x.shape());
  std::copy(x.data(), x.data() + x.numel(), xin.data());
  hook_->infer_input(xin, ctx.rng);
  Tensor out = infer_mvm(xin, ctx, bw, panels, *bwords);
  ctx.recycle(std::move(xin));
  scale_output(out, scaled_, scale);
  apply_output_hook(*hook_, out, ctx);
  return out;
}

}  // namespace gbo::quant
