#include "quant/quant_layers.hpp"

#include "quant/binary_weight.hpp"

namespace gbo::quant {

QuantConv2d::QuantConv2d(std::size_t out_channels, gbo::ConvGeom geom, Rng& rng,
                         bool scaled)
    : Conv2d(out_channels, geom, /*bias=*/false, rng), scaled_(scaled) {}

const Tensor& QuantConv2d::effective_weight() {
  binary_weight_ = binarize(weight_.value, scaled_, &weight_scale_);
  return binary_weight_;
}

void QuantConv2d::on_weight_grad(Tensor& grad_w) {
  ste_clip_grad(weight_.value, grad_w);
}

Tensor QuantConv2d::forward(const Tensor& x) {
  Tensor out;
  if (hook_) {
    Tensor xin = x;
    hook_->on_input(xin);
    out = Conv2d::forward(xin);
    hook_->on_forward(out);
  } else {
    out = Conv2d::forward(x);
  }
  return out;
}

Tensor QuantConv2d::backward(const Tensor& grad_out) {
  if (hook_) hook_->on_backward(grad_out);
  return Conv2d::backward(grad_out);
}

QuantLinear::QuantLinear(std::size_t in_features, std::size_t out_features,
                         Rng& rng, bool scaled)
    : Linear(in_features, out_features, /*bias=*/false, rng), scaled_(scaled) {}

const Tensor& QuantLinear::effective_weight() {
  binary_weight_ = binarize(weight_.value, scaled_, &weight_scale_);
  return binary_weight_;
}

void QuantLinear::on_weight_grad(Tensor& grad_w) {
  ste_clip_grad(weight_.value, grad_w);
}

Tensor QuantLinear::forward(const Tensor& x) {
  Tensor out;
  if (hook_) {
    Tensor xin = x;
    hook_->on_input(xin);
    out = Linear::forward(xin);
    hook_->on_forward(out);
  } else {
    out = Linear::forward(x);
  }
  return out;
}

Tensor QuantLinear::backward(const Tensor& grad_out) {
  if (hook_) hook_->on_backward(grad_out);
  return Linear::backward(grad_out);
}

}  // namespace gbo::quant
