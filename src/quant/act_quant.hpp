// Multi-level activation quantization for temporal binary bit encoding.
//
// The paper (§IV-A) quantizes Tanh activations to 9 levels so they map onto
// 8-pulse thermometer codes: level k of a (p+1)-level quantizer over [-1, 1]
// corresponds to k positive pulses out of p, giving value (2k - p) / p.
//
// QuantTanh is the fused module used by the BWNN: tanh followed by the
// uniform quantizer, with a straight-through estimator for the quantizer
// (gradient of tanh only).
#pragma once

#include "nn/module.hpp"

namespace gbo::quant {

/// Uniform symmetric quantizer over [-1, 1] with `levels` levels
/// (levels >= 2). Values outside [-1, 1] are clamped first.
float quantize_value(float x, std::size_t levels);

/// Elementwise quantization of a whole tensor.
Tensor quantize(const Tensor& x, std::size_t levels);

/// The discrete level index in [0, levels-1] for a value in [-1, 1].
std::size_t level_index(float x, std::size_t levels);

/// Tanh + uniform quantization with STE.
class QuantTanh : public gbo::nn::Module {
 public:
  explicit QuantTanh(std::size_t levels = 9) : levels_(levels) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, gbo::nn::EvalContext& ctx) const override;
  std::string kind() const override { return "QuantTanh"; }

  std::size_t levels() const { return levels_; }

 private:
  std::size_t levels_;
  Tensor cached_tanh_;
};

}  // namespace gbo::quant
