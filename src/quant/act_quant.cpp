#include "quant/act_quant.hpp"

#include <cmath>
#include <stdexcept>

namespace gbo::quant {

float quantize_value(float x, std::size_t levels) {
  if (levels < 2) throw std::invalid_argument("quantize: levels must be >= 2");
  x = x > 1.0f ? 1.0f : (x < -1.0f ? -1.0f : x);
  const float steps = static_cast<float>(levels - 1);
  const float idx = std::round((x + 1.0f) * 0.5f * steps);
  return idx / steps * 2.0f - 1.0f;
}

std::size_t level_index(float x, std::size_t levels) {
  if (levels < 2) throw std::invalid_argument("level_index: levels must be >= 2");
  x = x > 1.0f ? 1.0f : (x < -1.0f ? -1.0f : x);
  const float steps = static_cast<float>(levels - 1);
  return static_cast<std::size_t>(std::round((x + 1.0f) * 0.5f * steps));
}

Tensor quantize(const Tensor& x, std::size_t levels) {
  Tensor out(x.shape());
  const float* p = x.data();
  float* q = out.data();
  for (std::size_t i = 0; i < x.numel(); ++i) q[i] = quantize_value(p[i], levels);
  return out;
}

Tensor QuantTanh::forward(const Tensor& x) {
  Tensor out(x.shape());
  cached_tanh_ = Tensor(x.shape());
  const float* p = x.data();
  float* t = cached_tanh_.data();
  float* q = out.data();
  for (std::size_t i = 0; i < x.numel(); ++i) {
    t[i] = std::tanh(p[i]);
    q[i] = quantize_value(t[i], levels_);
  }
  return out;
}

Tensor QuantTanh::infer(const Tensor& x, gbo::nn::EvalContext& ctx) const {
  Tensor out = ctx.make(x.shape());
  const float* p = x.data();
  float* q = out.data();
  for (std::size_t i = 0; i < x.numel(); ++i)
    q[i] = quantize_value(std::tanh(p[i]), levels_);
  return out;
}

Tensor QuantTanh::backward(const Tensor& grad_out) {
  Tensor::check_same_shape(grad_out, cached_tanh_, "QuantTanh::backward");
  // STE through the quantizer; exact derivative of tanh.
  Tensor grad(grad_out.shape());
  const float* g = grad_out.data();
  const float* y = cached_tanh_.data();
  float* o = grad.data();
  for (std::size_t i = 0; i < grad.numel(); ++i)
    o[i] = g[i] * (1.0f - y[i] * y[i]);
  return grad;
}

}  // namespace gbo::quant
