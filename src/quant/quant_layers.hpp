// Binary-weight layers with a crossbar noise attachment point.
//
// QuantConv2d / QuantLinear behave exactly like Conv2d / Linear except that
// the forward pass uses the binarized weight (the ±1 sign matrix a binary
// crossbar would physically store), the per-layer digital scale is applied
// as a separate output epilogue, and the backward pass applies the STE.
// Factoring the scale out of the MVM is what lets the stateless infer path
// route on-grid activations through the bit-packed XNOR/popcount kernels
// (tensor/gemm_binary.hpp) while staying bitwise equal to forward()
// (DESIGN.md §8).
//
// Each layer exposes an MvmNoiseHook slot. The hook is invoked on the MVM
// output (Eq. 1: o = Wx + noise) and observes the output gradient in
// backward. Every execution mode of the paper is a different hook:
//   * pre-training           -> no hook (ideal digital MVM)
//   * noisy evaluation       -> GaussianNoiseHook (src/crossbar)
//   * NIA fine-tuning        -> GaussianNoiseHook while training weights
//   * GBO λ training         -> GboNoiseHook (src/gbo) — α-weighted mixture
#pragma once

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_binary.hpp"

#include <atomic>
#include <vector>

namespace gbo::quant {

/// Attachment point for crossbar-noise simulation on an MVM output.
class MvmNoiseHook {
 public:
  virtual ~MvmNoiseHook() = default;

  /// Mutates the layer input in place before the MVM. This models the
  /// encoder/DAC side: e.g. PLA re-quantization snaps activations to the
  /// levels representable by the active pulse count. Default: no-op.
  virtual void on_input(Tensor& /*x*/) {}

  /// Mutates the MVM output in place (adds noise). `out` is the layer
  /// output before any digital post-processing (bias add excluded — biases
  /// are digital registers, not crossbar columns, so they see no noise; the
  /// layers therefore run bias-free in crossbar configurations).
  virtual void on_forward(Tensor& out) = 0;

  /// Observes the gradient arriving at the MVM output. Additive noise means
  /// the data gradient is unchanged; hooks that own learnable parameters
  /// (GBO's λ) accumulate their gradients here.
  virtual void on_backward(const Tensor& /*grad_out*/) {}

  // -- stateless inference path ---------------------------------------------
  // Counterparts of on_input/on_forward used by Module::infer: identical
  // transforms, but const on the hook with every random draw taken from the
  // caller's per-trial EvalContext stream, so one hook instance can serve
  // any number of concurrent inference contexts. Training-only hooks (the
  // GBO λ mixture states) keep the defaults: input pass-through, and a
  // throwing infer_output — λ training has no stateless evaluation mode.

  virtual void infer_input(Tensor& /*x*/, Rng& /*rng*/) const {}
  virtual void infer_output(Tensor& out, Rng& rng) const;

  /// Per-sample-stream counterpart of infer_output (DESIGN.md §6): `out`
  /// holds one batch row per entry of rngs[0..num_streams); row r's draws
  /// must come from rngs[r] and be exactly the draws infer_output would
  /// take for a unit batch holding row r alone, so a fused micro-batch is
  /// bitwise row-equal to per-request execution. Default throws — a hook
  /// opts in via supports_row_streams().
  virtual void infer_output_rows(Tensor& out, Rng* rngs,
                                 std::size_t num_streams) const;

  /// True when (a) infer_input draws nothing from its Rng and (b)
  /// infer_output_rows is implemented. The serving runtime fuses stochastic
  /// micro-batches only when every attached hook agrees
  /// (serve/backend.hpp).
  virtual bool supports_row_streams() const { return false; }

  /// True when infer_input/infer_output may draw from the caller's Rng in
  /// the current configuration. Conservative default: any attached hook is
  /// assumed stochastic; hooks whose randomness can be switched off (the
  /// Gaussian hook with noise disabled or sigma == 0) override this. The
  /// serving runtime consults it before fusing micro-batches
  /// (serve/backend.hpp).
  virtual bool stochastic() const { return true; }
};

/// Cross-request cache of a quant layer's frozen binarized weight, its
/// packed float panels, and its packed binary sign words, all stamped with
/// the latent weight's version counter (DESIGN.md §6): steady-state serving
/// re-binarizes and re-packs nothing, float or binary. Concurrency comes
/// from gemm::VersionGate (thread-safe lazy fill; the latent weight must not
/// be mutated concurrently with readers).
class BinaryPanelCache {
 public:
  BinaryPanelCache() = default;
  // Copies start cold ON PURPOSE (empty bodies, nothing adopted): the gate's
  // stamp belongs to the source object's version timeline, and the cached
  // buffers were derived from the source layer's latent weight — adopting
  // either would let a copied layer silently serve another layer's panels
  // (float or binary) after its own weights diverge. A copy re-binarizes
  // and re-packs on first use instead (tests/test_gemm_binary.cpp pins
  // this).
  BinaryPanelCache(const BinaryPanelCache&) {}
  BinaryPanelCache& operator=(const BinaryPanelCache&) { return *this; }

  /// Unscaled (±1) binarized copy of `latent` in *bw, its digital scale in
  /// *scale (1 when !scaled), its packed binary sign words in *bwords, and —
  /// when `want_panels` — its packed float panels ([n, k] transposed-weight
  /// layout) in *panels; all rebuilt only when latent.version() moved.
  /// `want_panels` must be constant per cache (it is: the owning layer
  /// derives it from its fixed shape).
  void get(const Tensor& latent, bool scaled, std::size_t n, std::size_t k,
           bool want_panels, const float** bw, const float** panels,
           const gbo::gemm::PackedBinaryB** bwords, float* scale) const;

  /// Lifetime rebuild count (1 after warmup for a frozen weight).
  std::uint64_t rebuilds() const {
    return rebuilds_.load(std::memory_order_relaxed);
  }

 private:
  gbo::gemm::VersionGate gate_;
  mutable std::vector<float> bw_;
  mutable std::vector<float> panels_;
  mutable gbo::gemm::PackedBinaryB bwords_;
  mutable float scale_ = 1.0f;
  mutable std::atomic<std::uint64_t> rebuilds_{0};
};

/// Common interface of layers that accept a crossbar-noise hook. The VGG9
/// builder exposes its crossbar-mapped layers through this interface so the
/// evaluation/NIA/GBO controllers can attach per-layer hooks uniformly.
class Hookable {
 public:
  virtual ~Hookable() = default;
  virtual void set_noise_hook(MvmNoiseHook* hook) = 0;
  virtual MvmNoiseHook* noise_hook() const = 0;
  /// Rows × cols of the crossbar this layer maps to (out × fan-in).
  virtual std::size_t crossbar_rows() const = 0;
  virtual std::size_t crossbar_cols() const = 0;
  /// The latent (pre-binarization) weight parameter, for STE clamping.
  virtual gbo::nn::Param& latent_weight() = 0;
};

/// True when every live (stochastic) noise hook reachable from `m` — the
/// module itself and its children, recursively — supports per-sample row
/// streams. The single capability predicate the serving backends and
/// HardwareNetwork consult before fusing stochastic micro-batches
/// (DESIGN.md §6); crossbar engines are always capable, so only an
/// opted-out hook can veto fusion.
bool hooks_support_row_streams(const gbo::nn::Module& m);

class QuantConv2d : public gbo::nn::Conv2d, public Hookable {
 public:
  /// Crossbar layers are bias-free (see MvmNoiseHook); `scaled` selects the
  /// per-layer mean-|w| scaling of the binarized weight.
  QuantConv2d(std::size_t out_channels, gbo::ConvGeom geom, Rng& rng,
              bool scaled = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, gbo::nn::EvalContext& ctx) const override;
  std::string kind() const override { return "QuantConv2d"; }

  void set_noise_hook(MvmNoiseHook* hook) override { hook_ = hook; }
  MvmNoiseHook* noise_hook() const override { return hook_; }
  std::size_t crossbar_rows() const override { return out_channels(); }
  std::size_t crossbar_cols() const override { return geom().patch_len(); }
  gbo::nn::Param& latent_weight() override { return weight_; }

  /// The ±1 sign matrix from the most recent forward (what the crossbar
  /// cells physically store), and the digital scale applied as a separate
  /// output epilogue (folded into the ADC reference / following BN on real
  /// hardware). Since the XNOR/popcount PR the scale is NOT folded into
  /// binary_weight() — the MVM runs over ±1 so the bit-packed and float
  /// kernels agree bitwise (DESIGN.md §8).
  const Tensor& binary_weight() const { return binary_weight_; }
  float weight_scale() const { return weight_scale_; }

 protected:
  const Tensor& effective_weight() override;
  void on_weight_grad(Tensor& grad_w) override;

 private:
  /// Unscaled MVM for the stateless path: XNOR/popcount packed kernel when
  /// every patch value is on the 9-level grid (DESIGN.md §8), the cached
  /// float panels otherwise — bitwise-identical routes.
  Tensor infer_mvm(const Tensor& x, gbo::nn::EvalContext& ctx,
                   const float* bw, const float* panels,
                   const gbo::gemm::PackedBinaryB& bwords) const;

  bool scaled_;
  MvmNoiseHook* hook_ = nullptr;
  Tensor binary_weight_;
  float weight_scale_ = 1.0f;
  // Frozen binarized weight + packed float/binary panels for the stateless
  // infer path, keyed on weight_.value.version().
  BinaryPanelCache cache_;
};

class QuantLinear : public gbo::nn::Linear, public Hookable {
 public:
  QuantLinear(std::size_t in_features, std::size_t out_features, Rng& rng,
              bool scaled = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, gbo::nn::EvalContext& ctx) const override;
  std::string kind() const override { return "QuantLinear"; }

  void set_noise_hook(MvmNoiseHook* hook) override { hook_ = hook; }
  MvmNoiseHook* noise_hook() const override { return hook_; }
  std::size_t crossbar_rows() const override { return out_features(); }
  std::size_t crossbar_cols() const override { return in_features(); }
  gbo::nn::Param& latent_weight() override { return weight_; }

  /// See QuantConv2d::binary_weight — ±1 signs; the digital scale is a
  /// separate epilogue since the XNOR/popcount PR.
  const Tensor& binary_weight() const { return binary_weight_; }
  float weight_scale() const { return weight_scale_; }

 protected:
  const Tensor& effective_weight() override;
  void on_weight_grad(Tensor& grad_w) override;

 private:
  /// See QuantConv2d::infer_mvm.
  Tensor infer_mvm(const Tensor& x, gbo::nn::EvalContext& ctx,
                   const float* bw, const float* panels,
                   const gbo::gemm::PackedBinaryB& bwords) const;

  bool scaled_;
  MvmNoiseHook* hook_ = nullptr;
  Tensor binary_weight_;
  float weight_scale_ = 1.0f;
  // Frozen binarized weight + packed float/binary panels for the stateless
  // infer path, keyed on weight_.value.version().
  BinaryPanelCache cache_;
};

}  // namespace gbo::quant
