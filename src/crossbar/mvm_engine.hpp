// Two-mode crossbar MVM engine.
//
// Pulse-level mode is the ground-truth simulation: activations are encoded
// into bipolar pulse trains, one crossbar read is issued per pulse with
// fresh N(0, σ²) output noise, and the weighted pulse results are decoded.
// Analytic mode computes the identical expected result (MVM of the snapped
// activations, scaled by the digital weight scale) plus one Gaussian sample
// with the closed-form accumulated variance — the distribution the paper
// derives in Eq. 2–4. test_mvm_equivalence.cpp verifies the two modes agree
// in mean and variance for both encodings across pulse counts.
#pragma once

#include "crossbar/crossbar_array.hpp"
#include "crossbar/noise_model.hpp"
#include "encoding/bit_slicing.hpp"
#include "encoding/thermometer.hpp"
#include "tensor/arena.hpp"

namespace gbo::xbar {

struct MvmConfig {
  enc::EncodingSpec spec;         // encoding for streaming the activations
  double sigma = 0.0;             // per-pulse output noise std (Eq. 1)
  DeviceConfig device;            // device non-idealities (default ideal)
  std::size_t tile_cols = 128;    // crossbar tile width
  /// Output-axis (bit-line) shard width for the pulse path: layers wider
  /// than this run as a fixed ascending sequence of column shards (one per
  /// mapper column-tile, xbar::column_shards), each a range-restricted
  /// crossbar sweep writing its disjoint output slice. Bitwise identical to
  /// the unsharded sweep — every element's arithmetic and noise lookup is
  /// keyed by global coordinates. 0 disables sharding.
  std::size_t shard_cols = 0;
};

class MvmEngine {
 public:
  /// Programs a crossbar from the binary weight [out, in] (entries ±s).
  /// `rng` seeds both programming-time variation and read-time noise.
  MvmEngine(const Tensor& binary_weight, MvmConfig cfg, Rng rng);

  /// Ground truth: pulse-level execution. activations: [N, in] values in
  /// [-1, 1]; returns [N, out] decoded currents scaled back to the weight
  /// domain (times s). Internally fused batch-major (one weight-matrix
  /// sweep per batch row for the whole pulse train); bitwise identical to
  /// run_pulse_level_reference for the same seed, at any thread count.
  /// An empty pulse train yields an explicit zero [N, out] result.
  ///
  /// Each stochastic mode comes in two flavours: the classic one consuming
  /// the engine-owned stream (rng_), and a const overload drawing every
  /// stochastic term from a caller-supplied Rng — the stateless-inference
  /// variant, safe to call concurrently with distinct generators over one
  /// programmed array (the frozen device state is read-only). The const
  /// overload optionally routes its pre-drawn noise buffers and the output
  /// through a caller-owned scratch arena (serving workers; results are
  /// bitwise identical with and without one).
  Tensor run_pulse_level(const Tensor& activations);
  Tensor run_pulse_level(const Tensor& activations, Rng& rng,
                         ScratchArena* arena = nullptr) const;

  /// Per-sample stream variant (DESIGN.md §6): activations [N, in] with
  /// N = num_streams · g for some whole g (g > 1 when a conv layer feeds
  /// its per-sample patch rows through one call). Sample s's read and
  /// output noise is drawn from row_rngs[s] in exactly the order the
  /// single-stream overload draws it for a unit batch holding sample s
  /// alone, so fused stochastic micro-batches are bitwise row-equal to
  /// per-request execution at any batch composition. num_streams == 1 with
  /// rng == &row_rngs[0] degenerates to the overload above.
  Tensor run_pulse_level(const Tensor& activations, Rng* row_rngs,
                         std::size_t num_streams,
                         ScratchArena* arena = nullptr) const;

  /// Retained pre-fusion scalar path (one crossbar read per pulse). Kept as
  /// the equivalence oracle for tests and as a debugging fallback; consumes
  /// its rng in the same order as run_pulse_level.
  Tensor run_pulse_level_reference(const Tensor& activations);
  Tensor run_pulse_level_reference(const Tensor& activations, Rng& rng) const;

  /// Fast path: exact expected MVM + equivalent accumulated Gaussian noise.
  Tensor run_analytic(const Tensor& activations);
  Tensor run_analytic(const Tensor& activations, Rng& rng) const;

  /// Noise-free reference (snapped activations, ideal weights).
  Tensor run_ideal(const Tensor& activations) const;

  const MvmConfig& config() const { return cfg_; }
  const CrossbarArray& array() const { return array_; }

 private:
  /// Shared pulse-level body: draws per-stream noise (stream s covers
  /// batch/num_streams consecutive rows), then runs the fused batch-major
  /// sweep. Both public overloads funnel here; num_streams == 1 reproduces
  /// the historical single-stream draw order exactly.
  Tensor run_pulse_level_streams(const Tensor& activations, Rng* rngs,
                                 std::size_t num_streams,
                                 ScratchArena* arena) const;

  Tensor encode_and_snap(const Tensor& activations) const;
  /// Validates [N, in] shape and encodes per the configured scheme. With an
  /// arena, the pulse tensors are recycled through its pool (run_pulse_level
  /// puts them back after the fused sweep) — the encode buffers were the
  /// pulse path's last per-request tensor allocations (DESIGN.md §4).
  enc::PulseTrain encode_train(const Tensor& activations,
                               ScratchArena* arena = nullptr) const;
  /// Per-pulse decode weights w_i / Σ w_i as float.
  std::vector<float> normalized_pulse_weights() const;

  MvmConfig cfg_;
  Tensor binary_weight_;  // ±s as given
  float scale_ = 1.0f;
  CrossbarArray array_;
  Rng rng_;
  // Decode weights cached at construction (cfg_ is frozen after): the
  // pulse hot path must not re-derive them per request.
  std::vector<float> norm_weights_;
};

}  // namespace gbo::xbar
