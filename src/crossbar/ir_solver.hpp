// Nodal IR-drop solver for crossbar wire parasitics.
//
// The device model's `ir_drop_alpha` is a linear attenuation proxy; this
// module solves the actual resistive network. Each word line is driven
// from its left edge and each bit line is collected at its bottom edge by
// a virtual-ground TIA; between adjacent cells both wires contribute a
// segment resistance r_wire. With cell conductances g_ij the circuit is
// linear, so Kirchhoff current law at every cell's row node and column
// node gives a sparse SPD-like system we solve with Gauss–Seidel:
//
//   row node (i,j):  (v_r(i,j-1) − v_r(i,j))/r − (v_r(i,j) − v_r(i,j+1))/r
//                    − g_ij (v_r(i,j) − v_c(i,j)) = 0,   v_r(i,-1) = V_i
//   col node (i,j):  (v_c(i-1,j) − v_c(i,j))/r − (v_c(i,j) − v_c(i+1,j))/r
//                    + g_ij (v_r(i,j) − v_c(i,j)) = 0,   v_c(rows,j) = 0
//
// Output current of column j is the current into the TIA,
// v_c(rows-1, j) / r. Because the network is linear in the drive vector,
// the crossbar's behaviour under IR drop is exactly an *equivalent weight
// matrix*, recoverable by solving once per one-hot drive
// (ir_equivalent_weight) — this is what CrossbarArray uses at programming
// time when DeviceConfig::wire_resistance is set, replacing the proxy.
//
// Index convention matches the physical array: `rows` = driven word lines
// (the MVM's fan-in axis), `cols` = collecting bit lines (the output axis).
#pragma once

#include "tensor/tensor.hpp"

#include <cstddef>
#include <vector>

namespace gbo::xbar {

struct IrSolverConfig {
  /// Wire segment resistance in units of 1/g_on (so 1e-3 means one segment
  /// is a thousandth of the on-state cell resistance — a typical ratio for
  /// sub-micron metal over memristor stacks).
  double r_wire = 1e-3;
  std::size_t max_iters = 4000;
  /// Convergence: max change of any column TIA current per sweep, relative
  /// to the worst-case ideal column current.
  double tol = 1e-8;
  /// Successive over-relaxation factor. The wire-dominated network is
  /// Laplacian-like, where plain Gauss–Seidel (omega = 1) converges as
  /// 1 − O(1/N²) per sweep; for the longest wire chains shipped here
  /// (128-cell tiles) the near-optimal factor is ≈ 2/(1 + sin(π/N)) ≈ 1.9.
  /// Must stay in (0, 2) for convergence on this SPD system.
  double omega = 1.9;
};

/// Gauss–Seidel nodal solver for one crossbar tile.
class IrDropSolver {
 public:
  /// `conductance`: [rows, cols], entries >= 0 (a single polarity array;
  /// differential pairs use two solvers or two equivalent weights).
  IrDropSolver(const Tensor& conductance, IrSolverConfig cfg);

  /// Solves the network for one drive vector [rows]; returns the column
  /// TIA currents [cols]. Warm-starts from the previous solution.
  std::vector<double> solve(const std::vector<double>& v_in);

  /// Ideal (no wire resistance) currents for reference: G^T · v.
  std::vector<double> ideal(const std::vector<double>& v_in) const;

  /// Iterations consumed by the most recent solve.
  std::size_t last_iters() const { return last_iters_; }
  /// True if the most recent solve met `tol` within `max_iters`.
  bool converged() const { return converged_; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  IrSolverConfig cfg_;
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> g_;    // [rows * cols]
  std::vector<double> vr_;   // row-node voltages, warm start
  std::vector<double> vc_;   // col-node voltages, warm start
  std::size_t last_iters_ = 0;
  bool converged_ = true;
};

/// The equivalent weight matrix of a differential crossbar under IR drop:
/// entry [c, r] is the column-c TIA current differential when word line r
/// is driven with 1 V. Exact by superposition (the network is linear).
/// Layout matches CrossbarArray's eff_weight ([out, in] = [cols, rows]).
Tensor ir_equivalent_weight(const Tensor& g_plus, const Tensor& g_minus,
                            const IrSolverConfig& cfg);

}  // namespace gbo::xbar
