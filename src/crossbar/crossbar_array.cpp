#include "crossbar/crossbar_array.hpp"

#include "common/thread_pool.hpp"
#include "crossbar/ir_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gbo::xbar {

CrossbarArray::CrossbarArray(const Tensor& binary_weight, DeviceConfig cfg,
                             std::size_t tile_cols, Rng rng)
    : cfg_(cfg) {
  if (binary_weight.ndim() != 2)
    throw std::invalid_argument("CrossbarArray: weight must be 2D");
  out_ = binary_weight.dim(0);
  in_ = binary_weight.dim(1);
  tile_cols_ = tile_cols == 0 ? in_ : tile_cols;
  num_tiles_ = (in_ + tile_cols_ - 1) / tile_cols_;

  // Recover and validate the binary scale: all entries must be ±s.
  scale_ = std::fabs(binary_weight[0]);
  if (scale_ == 0.0f)
    throw std::invalid_argument("CrossbarArray: weight entries must be nonzero");
  for (std::size_t i = 0; i < binary_weight.numel(); ++i) {
    const float a = std::fabs(binary_weight[i]);
    if (std::fabs(a - scale_) > 1e-6f * scale_)
      throw std::invalid_argument("CrossbarArray: weight is not binary (±s)");
  }

  eff_weight_ = Tensor({out_, in_});

  if (cfg_.mapping == WeightMapping::kOffset) {
    if (cfg_.g_on <= cfg_.g_off)
      throw std::invalid_argument(
          "CrossbarArray: offset mapping requires g_on > g_off");
    if (cfg_.wire_resistance > 0.0)
      throw std::invalid_argument(
          "CrossbarArray: the nodal IR solver supports differential mapping "
          "only; use ir_drop_alpha with offset mapping");
    // One cell per weight plus one shared mid-conductance reference cell
    // per input line (the tile's reference column). Draw order: main array
    // row-major, then the reference cells — pinned so seeds reproduce.
    raw_g_ = Tensor({out_, in_});
    ref_g_ = Tensor({in_});
    for (std::size_t o = 0; o < out_; ++o) {
      for (std::size_t j = 0; j < in_; ++j) {
        const bool positive = binary_weight.at(o, j) >= 0.0f;
        raw_g_.at(o, j) = static_cast<float>(
            program_cell(cfg_, positive ? cfg_.g_on : cfg_.g_off, rng));
      }
    }
    const double g_mid = 0.5 * (cfg_.g_on + cfg_.g_off);
    for (std::size_t j = 0; j < in_; ++j)
      ref_g_[j] = static_cast<float>(program_cell(cfg_, g_mid, rng));

    // Fold wire parasitics into the programmed conductances. The offset
    // path uses the per-cell attenuation model for both knobs (the nodal
    // solver's superposition trick extracts a *differential* equivalent
    // weight; for a single-polarity array the first-order per-cell factor
    // is the appropriate granularity).
    for (std::size_t j = 0; j < in_; ++j) {
      const double ir = ir_drop_factor(cfg_, j % tile_cols_, tile_cols_);
      ref_g_[j] = static_cast<float>(ref_g_[j] * ir);
      for (std::size_t o = 0; o < out_; ++o)
        raw_g_.at(o, j) = static_cast<float>(raw_g_.at(o, j) * ir);
    }

    // Sign-domain equivalent weight: (G − G_ref) · 2/(g_on − g_off).
    const double k = 2.0 / (cfg_.g_on - cfg_.g_off);
    for (std::size_t o = 0; o < out_; ++o)
      for (std::size_t j = 0; j < in_; ++j)
        eff_weight_.at(o, j) = static_cast<float>(
            (static_cast<double>(raw_g_.at(o, j)) - ref_g_[j]) * k);
    return;
  }

  // Differential mapping: program both polarity arrays cell-by-cell
  // (device-to-device variation, faults, drift are frozen here, as on real
  // hardware).
  Tensor g_plus({out_, in_}), g_minus({out_, in_});
  for (std::size_t o = 0; o < out_; ++o) {
    for (std::size_t j = 0; j < in_; ++j) {
      const bool positive = binary_weight.at(o, j) >= 0.0f;
      g_plus.at(o, j) = static_cast<float>(
          program_cell(cfg_, positive ? cfg_.g_on : cfg_.g_off, rng));
      g_minus.at(o, j) = static_cast<float>(
          program_cell(cfg_, positive ? cfg_.g_off : cfg_.g_on, rng));
    }
  }

  if (cfg_.wire_resistance > 0.0) {
    // Exact wire-parasitic model: solve the resistive network per tile and
    // fold the result into the equivalent weight (see crossbar/ir_solver).
    IrSolverConfig ir_cfg;
    ir_cfg.r_wire = cfg_.wire_resistance;
    for (std::size_t t = 0; t < num_tiles_; ++t) {
      const std::size_t j0 = t * tile_cols_;
      const std::size_t j1 = std::min(j0 + tile_cols_, in_);
      const std::size_t width = j1 - j0;
      // Physical layout: driven word lines = the fan-in slice (rows of the
      // solver), collecting bit lines = the outputs (cols of the solver).
      Tensor gp({width, out_}), gm({width, out_});
      for (std::size_t j = j0; j < j1; ++j) {
        for (std::size_t o = 0; o < out_; ++o) {
          gp.at(j - j0, o) = g_plus.at(o, j);
          gm.at(j - j0, o) = g_minus.at(o, j);
        }
      }
      const Tensor eff_tile = ir_equivalent_weight(gp, gm, ir_cfg);  // [out, width]
      for (std::size_t o = 0; o < out_; ++o)
        for (std::size_t j = j0; j < j1; ++j)
          eff_weight_.at(o, j) = eff_tile.at(o, j - j0);
    }
  } else {
    for (std::size_t o = 0; o < out_; ++o) {
      for (std::size_t j = 0; j < in_; ++j) {
        const double ir = ir_drop_factor(cfg_, j % tile_cols_, tile_cols_);
        eff_weight_.at(o, j) = static_cast<float>(
            (static_cast<double>(g_plus.at(o, j)) - g_minus.at(o, j)) * ir);
      }
    }
  }
}

Tensor CrossbarArray::mvm_pulse(const Tensor& x, Rng& rng) const {
  if (x.ndim() != 2 || x.dim(1) != in_)
    throw std::invalid_argument("CrossbarArray::mvm_pulse: bad input " +
                                x.shape_str());
  const std::size_t batch = x.dim(0);
  Tensor out({batch, out_});

  if (cfg_.mapping == WeightMapping::kOffset) {
    // Offset read-out: per tile, one reference-column read shared by every
    // output line (its noise/ADC error is common-mode across the tile's
    // outputs), one read per output column, digital subtraction, then the
    // 2/(g_on − g_off) decode that doubles every periphery error relative
    // to the differential mapping's full-swing read.
    const double k = 2.0 / (cfg_.g_on - cfg_.g_off);
    const double auto_fs = static_cast<double>(tile_cols_) * cfg_.g_on;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* xv = x.data() + n * in_;
      float* ov = out.data() + n * out_;
      for (std::size_t o = 0; o < out_; ++o) ov[o] = 0.0f;
      for (std::size_t t = 0; t < num_tiles_; ++t) {
        const std::size_t j0 = t * tile_cols_;
        const std::size_t j1 = std::min(j0 + tile_cols_, in_);
        double ref_current = 0.0;
        for (std::size_t j = j0; j < j1; ++j)
          ref_current += static_cast<double>(ref_g_[j]) * xv[j];
        if (cfg_.read_noise_sigma > 0.0)
          ref_current += rng.normal(0.0, cfg_.read_noise_sigma);
        ref_current = adc_quantize(cfg_, ref_current, auto_fs);
        for (std::size_t o = 0; o < out_; ++o) {
          const float* grow = raw_g_.data() + o * in_;
          double current = 0.0;
          for (std::size_t j = j0; j < j1; ++j)
            current += static_cast<double>(grow[j]) * xv[j];
          if (cfg_.read_noise_sigma > 0.0)
            current += rng.normal(0.0, cfg_.read_noise_sigma);
          current = adc_quantize(cfg_, current, auto_fs);
          ov[o] += static_cast<float>((current - ref_current) * k);
        }
      }
    }
    return out;
  }

  // ADC full scale defaults to the tile's worst-case current (all cells on).
  const double auto_fs = static_cast<double>(tile_cols_) * (cfg_.g_on - cfg_.g_off);

  for (std::size_t n = 0; n < batch; ++n) {
    const float* xv = x.data() + n * in_;
    float* ov = out.data() + n * out_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float* wrow = eff_weight_.data() + o * in_;
      double total = 0.0;
      for (std::size_t t = 0; t < num_tiles_; ++t) {
        const std::size_t j0 = t * tile_cols_;
        const std::size_t j1 = std::min(j0 + tile_cols_, in_);
        double current = 0.0;
        for (std::size_t j = j0; j < j1; ++j)
          current += static_cast<double>(wrow[j]) * xv[j];
        if (cfg_.read_noise_sigma > 0.0)
          current += rng.normal(0.0, cfg_.read_noise_sigma);
        total += adc_quantize(cfg_, current, auto_fs);
      }
      ov[o] = static_cast<float>(total);
    }
  }
  return out;
}

std::size_t CrossbarArray::read_noise_draws(std::size_t batch) const {
  if (cfg_.read_noise_sigma <= 0.0) return 0;
  // Matches the consumption order in mvm_pulse: differential draws one
  // normal per (row, output, tile); offset draws one per (row, tile) for
  // the reference column plus one per (row, tile, output).
  return cfg_.mapping == WeightMapping::kOffset
             ? batch * num_tiles_ * (1 + out_)
             : batch * out_ * num_tiles_;
}

void CrossbarArray::fill_read_noise(std::size_t batch, Rng& rng,
                                    double* buf) const {
  const std::size_t draws = read_noise_draws(batch);
  for (std::size_t i = 0; i < draws; ++i)
    buf[i] = rng.normal(0.0, cfg_.read_noise_sigma);
}

void CrossbarArray::mvm_pulse_train(const std::vector<Tensor>& pulses,
                                    const double* read_noise,
                                    const PulseSink& sink) const {
  mvm_pulse_train(pulses, read_noise, sink, 0, out_);
}

void CrossbarArray::mvm_pulse_train(const std::vector<Tensor>& pulses,
                                    const double* read_noise,
                                    const PulseSink& sink, std::size_t o_begin,
                                    std::size_t o_end) const {
  if (o_begin >= o_end || o_end > out_)
    throw std::invalid_argument(
        "CrossbarArray::mvm_pulse_train: bad output range");
  const std::size_t span = o_end - o_begin;
  const std::size_t num_pulses = pulses.size();
  if (num_pulses == 0) return;
  const std::size_t batch = pulses[0].ndim() == 2 ? pulses[0].dim(0) : 0;
  for (const Tensor& x : pulses)
    if (x.ndim() != 2 || x.dim(1) != in_ || x.dim(0) != batch)
      throw std::invalid_argument("CrossbarArray::mvm_pulse_train: bad pulse " +
                                  x.shape_str());
  if (batch == 0) return;
  const bool noisy = cfg_.read_noise_sigma > 0.0;
  if (noisy && read_noise == nullptr)
    throw std::invalid_argument(
        "CrossbarArray::mvm_pulse_train: read noise enabled but no draws "
        "provided");

  std::vector<const float*> xs(num_pulses);
  for (std::size_t p = 0; p < num_pulses; ++p) xs[p] = pulses[p].data();
  const std::size_t stride = read_noise_draws(batch);  // draws per pulse

  if (cfg_.mapping == WeightMapping::kOffset) {
    // Batch-major fusion of the offset read-out: per row, walk the raw
    // conductance matrix once and read every pulse against the resident
    // tile. Arithmetic per (pulse, row, output, tile) is ordered exactly as
    // in mvm_pulse, so the values streamed to the sink match it bitwise.
    const double k = 2.0 / (cfg_.g_on - cfg_.g_off);
    const double auto_fs = static_cast<double>(tile_cols_) * cfg_.g_on;
    parallel_for(0, batch, 1, [&](std::size_t lo, std::size_t hi) {
      std::vector<double> ref_current(num_pulses);
      // Per-row float accumulators [span][num_pulses]: the reference path
      // accumulates each output in float across tiles, so the scratch must
      // too for bitwise agreement. A shard recomputes the tile's shared
      // reference read (same inputs, same noise slot) rather than sharing
      // it across shards — identical values either way.
      std::vector<float> row_acc(span * num_pulses);
      for (std::size_t n = lo; n < hi; ++n) {
        std::fill(row_acc.begin(), row_acc.end(), 0.0f);
        for (std::size_t t = 0; t < num_tiles_; ++t) {
          const std::size_t j0 = t * tile_cols_;
          const std::size_t j1 = std::min(j0 + tile_cols_, in_);
          const std::size_t noise_base =
              (n * num_tiles_ + t) * (1 + out_);  // [ref, out0, out1, ...]
          for (std::size_t p = 0; p < num_pulses; ++p) {
            const float* xv = xs[p] + n * in_;
            double rc = 0.0;
            for (std::size_t j = j0; j < j1; ++j)
              rc += static_cast<double>(ref_g_[j]) * xv[j];
            if (noisy) rc += read_noise[p * stride + noise_base];
            ref_current[p] = adc_quantize(cfg_, rc, auto_fs);
          }
          for (std::size_t o = o_begin; o < o_end; ++o) {
            const float* grow = raw_g_.data() + o * in_;
            for (std::size_t p = 0; p < num_pulses; ++p) {
              const float* xv = xs[p] + n * in_;
              double current = 0.0;
              for (std::size_t j = j0; j < j1; ++j)
                current += static_cast<double>(grow[j]) * xv[j];
              if (noisy)
                current += read_noise[p * stride + noise_base + 1 + o];
              current = adc_quantize(cfg_, current, auto_fs);
              row_acc[(o - o_begin) * num_pulses + p] +=
                  static_cast<float>((current - ref_current[p]) * k);
            }
          }
        }
        for (std::size_t o = o_begin; o < o_end; ++o)
          sink(n * out_ + o, row_acc.data() + (o - o_begin) * num_pulses);
      }
    });
    return;
  }

  // Differential mapping: every (row, output) pair is independent, so the
  // flattened index space threads freely; per pair, each weight-row tile is
  // loaded once (L1-resident) and dotted against every pulse before moving
  // on — one weight-matrix sweep per row instead of one per (row, pulse).
  const double auto_fs =
      static_cast<double>(tile_cols_) * (cfg_.g_on - cfg_.g_off);
  const std::size_t work = in_ * num_pulses;  // flops per (row, output) pair
  const std::size_t grain = std::max<std::size_t>(1, 16384 / std::max<std::size_t>(work, 1));
  parallel_for(0, batch * span, grain, [&](std::size_t lo, std::size_t hi) {
    std::vector<double> total(num_pulses);
    std::vector<float> element(num_pulses);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t n = i / span;
      const std::size_t o = o_begin + i % span;
      const std::size_t idx = n * out_ + o;
      const float* wrow = eff_weight_.data() + o * in_;
      std::fill(total.begin(), total.end(), 0.0);
      for (std::size_t t = 0; t < num_tiles_; ++t) {
        const std::size_t j0 = t * tile_cols_;
        const std::size_t j1 = std::min(j0 + tile_cols_, in_);
        for (std::size_t p = 0; p < num_pulses; ++p) {
          const float* xv = xs[p] + n * in_;
          double current = 0.0;
          for (std::size_t j = j0; j < j1; ++j)
            current += static_cast<double>(wrow[j]) * xv[j];
          if (noisy)
            current +=
                read_noise[p * stride + (n * out_ + o) * num_tiles_ + t];
          total[p] += adc_quantize(cfg_, current, auto_fs);
        }
      }
      for (std::size_t p = 0; p < num_pulses; ++p)
        element[p] = static_cast<float>(total[p]);
      sink(idx, element.data());
    }
  });
}

}  // namespace gbo::xbar
