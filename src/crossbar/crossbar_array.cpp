#include "crossbar/crossbar_array.hpp"

#include "crossbar/ir_solver.hpp"

#include <cmath>
#include <stdexcept>

namespace gbo::xbar {

CrossbarArray::CrossbarArray(const Tensor& binary_weight, DeviceConfig cfg,
                             std::size_t tile_cols, Rng rng)
    : cfg_(cfg) {
  if (binary_weight.ndim() != 2)
    throw std::invalid_argument("CrossbarArray: weight must be 2D");
  out_ = binary_weight.dim(0);
  in_ = binary_weight.dim(1);
  tile_cols_ = tile_cols == 0 ? in_ : tile_cols;
  num_tiles_ = (in_ + tile_cols_ - 1) / tile_cols_;

  // Recover and validate the binary scale: all entries must be ±s.
  scale_ = std::fabs(binary_weight[0]);
  if (scale_ == 0.0f)
    throw std::invalid_argument("CrossbarArray: weight entries must be nonzero");
  for (std::size_t i = 0; i < binary_weight.numel(); ++i) {
    const float a = std::fabs(binary_weight[i]);
    if (std::fabs(a - scale_) > 1e-6f * scale_)
      throw std::invalid_argument("CrossbarArray: weight is not binary (±s)");
  }

  eff_weight_ = Tensor({out_, in_});

  if (cfg_.mapping == WeightMapping::kOffset) {
    if (cfg_.g_on <= cfg_.g_off)
      throw std::invalid_argument(
          "CrossbarArray: offset mapping requires g_on > g_off");
    if (cfg_.wire_resistance > 0.0)
      throw std::invalid_argument(
          "CrossbarArray: the nodal IR solver supports differential mapping "
          "only; use ir_drop_alpha with offset mapping");
    // One cell per weight plus one shared mid-conductance reference cell
    // per input line (the tile's reference column). Draw order: main array
    // row-major, then the reference cells — pinned so seeds reproduce.
    raw_g_ = Tensor({out_, in_});
    ref_g_ = Tensor({in_});
    for (std::size_t o = 0; o < out_; ++o) {
      for (std::size_t j = 0; j < in_; ++j) {
        const bool positive = binary_weight.at(o, j) >= 0.0f;
        raw_g_.at(o, j) = static_cast<float>(
            program_cell(cfg_, positive ? cfg_.g_on : cfg_.g_off, rng));
      }
    }
    const double g_mid = 0.5 * (cfg_.g_on + cfg_.g_off);
    for (std::size_t j = 0; j < in_; ++j)
      ref_g_[j] = static_cast<float>(program_cell(cfg_, g_mid, rng));

    // Fold wire parasitics into the programmed conductances. The offset
    // path uses the per-cell attenuation model for both knobs (the nodal
    // solver's superposition trick extracts a *differential* equivalent
    // weight; for a single-polarity array the first-order per-cell factor
    // is the appropriate granularity).
    for (std::size_t j = 0; j < in_; ++j) {
      const double ir = ir_drop_factor(cfg_, j % tile_cols_, tile_cols_);
      ref_g_[j] = static_cast<float>(ref_g_[j] * ir);
      for (std::size_t o = 0; o < out_; ++o)
        raw_g_.at(o, j) = static_cast<float>(raw_g_.at(o, j) * ir);
    }

    // Sign-domain equivalent weight: (G − G_ref) · 2/(g_on − g_off).
    const double k = 2.0 / (cfg_.g_on - cfg_.g_off);
    for (std::size_t o = 0; o < out_; ++o)
      for (std::size_t j = 0; j < in_; ++j)
        eff_weight_.at(o, j) = static_cast<float>(
            (static_cast<double>(raw_g_.at(o, j)) - ref_g_[j]) * k);
    return;
  }

  // Differential mapping: program both polarity arrays cell-by-cell
  // (device-to-device variation, faults, drift are frozen here, as on real
  // hardware).
  Tensor g_plus({out_, in_}), g_minus({out_, in_});
  for (std::size_t o = 0; o < out_; ++o) {
    for (std::size_t j = 0; j < in_; ++j) {
      const bool positive = binary_weight.at(o, j) >= 0.0f;
      g_plus.at(o, j) = static_cast<float>(
          program_cell(cfg_, positive ? cfg_.g_on : cfg_.g_off, rng));
      g_minus.at(o, j) = static_cast<float>(
          program_cell(cfg_, positive ? cfg_.g_off : cfg_.g_on, rng));
    }
  }

  if (cfg_.wire_resistance > 0.0) {
    // Exact wire-parasitic model: solve the resistive network per tile and
    // fold the result into the equivalent weight (see crossbar/ir_solver).
    IrSolverConfig ir_cfg;
    ir_cfg.r_wire = cfg_.wire_resistance;
    for (std::size_t t = 0; t < num_tiles_; ++t) {
      const std::size_t j0 = t * tile_cols_;
      const std::size_t j1 = std::min(j0 + tile_cols_, in_);
      const std::size_t width = j1 - j0;
      // Physical layout: driven word lines = the fan-in slice (rows of the
      // solver), collecting bit lines = the outputs (cols of the solver).
      Tensor gp({width, out_}), gm({width, out_});
      for (std::size_t j = j0; j < j1; ++j) {
        for (std::size_t o = 0; o < out_; ++o) {
          gp.at(j - j0, o) = g_plus.at(o, j);
          gm.at(j - j0, o) = g_minus.at(o, j);
        }
      }
      const Tensor eff_tile = ir_equivalent_weight(gp, gm, ir_cfg);  // [out, width]
      for (std::size_t o = 0; o < out_; ++o)
        for (std::size_t j = j0; j < j1; ++j)
          eff_weight_.at(o, j) = eff_tile.at(o, j - j0);
    }
  } else {
    for (std::size_t o = 0; o < out_; ++o) {
      for (std::size_t j = 0; j < in_; ++j) {
        const double ir = ir_drop_factor(cfg_, j % tile_cols_, tile_cols_);
        eff_weight_.at(o, j) = static_cast<float>(
            (static_cast<double>(g_plus.at(o, j)) - g_minus.at(o, j)) * ir);
      }
    }
  }
}

Tensor CrossbarArray::mvm_pulse(const Tensor& x, Rng& rng) const {
  if (x.ndim() != 2 || x.dim(1) != in_)
    throw std::invalid_argument("CrossbarArray::mvm_pulse: bad input " +
                                x.shape_str());
  const std::size_t batch = x.dim(0);
  Tensor out({batch, out_});

  if (cfg_.mapping == WeightMapping::kOffset) {
    // Offset read-out: per tile, one reference-column read shared by every
    // output line (its noise/ADC error is common-mode across the tile's
    // outputs), one read per output column, digital subtraction, then the
    // 2/(g_on − g_off) decode that doubles every periphery error relative
    // to the differential mapping's full-swing read.
    const double k = 2.0 / (cfg_.g_on - cfg_.g_off);
    const double auto_fs = static_cast<double>(tile_cols_) * cfg_.g_on;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* xv = x.data() + n * in_;
      float* ov = out.data() + n * out_;
      for (std::size_t o = 0; o < out_; ++o) ov[o] = 0.0f;
      for (std::size_t t = 0; t < num_tiles_; ++t) {
        const std::size_t j0 = t * tile_cols_;
        const std::size_t j1 = std::min(j0 + tile_cols_, in_);
        double ref_current = 0.0;
        for (std::size_t j = j0; j < j1; ++j)
          ref_current += static_cast<double>(ref_g_[j]) * xv[j];
        if (cfg_.read_noise_sigma > 0.0)
          ref_current += rng.normal(0.0, cfg_.read_noise_sigma);
        ref_current = adc_quantize(cfg_, ref_current, auto_fs);
        for (std::size_t o = 0; o < out_; ++o) {
          const float* grow = raw_g_.data() + o * in_;
          double current = 0.0;
          for (std::size_t j = j0; j < j1; ++j)
            current += static_cast<double>(grow[j]) * xv[j];
          if (cfg_.read_noise_sigma > 0.0)
            current += rng.normal(0.0, cfg_.read_noise_sigma);
          current = adc_quantize(cfg_, current, auto_fs);
          ov[o] += static_cast<float>((current - ref_current) * k);
        }
      }
    }
    return out;
  }

  // ADC full scale defaults to the tile's worst-case current (all cells on).
  const double auto_fs = static_cast<double>(tile_cols_) * (cfg_.g_on - cfg_.g_off);

  for (std::size_t n = 0; n < batch; ++n) {
    const float* xv = x.data() + n * in_;
    float* ov = out.data() + n * out_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float* wrow = eff_weight_.data() + o * in_;
      double total = 0.0;
      for (std::size_t t = 0; t < num_tiles_; ++t) {
        const std::size_t j0 = t * tile_cols_;
        const std::size_t j1 = std::min(j0 + tile_cols_, in_);
        double current = 0.0;
        for (std::size_t j = j0; j < j1; ++j)
          current += static_cast<double>(wrow[j]) * xv[j];
        if (cfg_.read_noise_sigma > 0.0)
          current += rng.normal(0.0, cfg_.read_noise_sigma);
        total += adc_quantize(cfg_, current, auto_fs);
      }
      ov[o] = static_cast<float>(total);
    }
  }
  return out;
}

}  // namespace gbo::xbar
