#include "crossbar/hw_deploy.hpp"

#include "common/logging.hpp"
#include "quant/binary_weight.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"

#include <stdexcept>

namespace gbo::xbar {

HardwareNetwork::HardwareNetwork(nn::Sequential& net,
                                 const std::vector<quant::Hookable*>& encoded,
                                 HwDeployConfig cfg)
    : net_(net), cfg_(cfg) {
  std::vector<std::size_t> pulses = cfg_.pulses;
  if (pulses.empty()) pulses.assign(encoded.size(), 8);
  if (pulses.size() != encoded.size())
    throw std::invalid_argument("HardwareNetwork: pulses/layers mismatch");

  Rng rng(cfg_.seed);
  call_rng_ = rng.fork(999);
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    auto* conv = dynamic_cast<quant::QuantConv2d*>(encoded[i]);
    auto* lin = dynamic_cast<quant::QuantLinear*>(encoded[i]);
    const nn::Module* module = nullptr;
    Tensor binary;
    if (conv) {
      binary = quant::binarize(conv->weight().value, /*scaled=*/true);
      module = conv;
    } else if (lin) {
      binary = quant::binarize(lin->weight().value, /*scaled=*/true);
      module = lin;
    } else {
      throw std::invalid_argument(
          "HardwareNetwork: encoded layer is neither QuantConv2d nor QuantLinear");
    }
    MvmConfig mcfg;
    mcfg.spec = enc::EncodingSpec{cfg_.scheme, pulses[i]};
    mcfg.sigma = cfg_.sigma;
    mcfg.device = cfg_.device;
    mcfg.tile_cols = cfg_.tile_cols;
    mcfg.shard_cols = cfg_.shard_cols;
    engine_index_[module] = engines_.size();
    engines_.push_back(
        std::make_unique<MvmEngine>(binary, mcfg, rng.fork(1000 + i)));
    conv_of_engine_.push_back(conv);
  }
}

Tensor HardwareNetwork::forward(const Tensor& x) {
  // Legacy mutable entry point: a counter-based fork per call, so repeated
  // calls see fresh noise while the whole sequence replays from cfg.seed.
  nn::EvalContext ctx(call_rng_.fork(call_count_++));
  return forward(x, ctx);
}

Tensor HardwareNetwork::forward(const Tensor& x, nn::EvalContext& ctx) const {
  const nn::Sequential& net = net_;
  if (net.size() == 0) return x;
  Tensor cur;
  const Tensor* in = &x;  // the caller's input is read in place, never copied
  for (std::size_t i = 0; i < net.size(); ++i) {
    const nn::Module& module = net.at(i);
    auto it = engine_index_.find(&module);
    Tensor next;
    if (it == engine_index_.end()) {
      // Digital layer (BN, activation, pooling, full-precision ends):
      // stateless infer, eval-mode semantics regardless of training flag.
      next = module.infer(*in, ctx);
    } else {
      const MvmEngine& engine = *engines_[it->second];
      // Per-sample streams (DESIGN.md §6): with row streams in the context
      // each sample's pulse noise comes from its own request fork — for a
      // conv layer the engine groups the sample's oh·ow patch rows onto one
      // stream, exactly as a unit batch would consume them.
      auto run = [&](const Tensor& act) {
        if (ctx.per_sample())
          return engine.run_pulse_level(act, ctx.row_rngs.data(),
                                        ctx.row_rngs.size(), ctx.arena);
        return engine.run_pulse_level(act, ctx.rng, ctx.arena);
      };
      if (const quant::QuantConv2d* conv = conv_of_engine_[it->second]) {
        const std::size_t batch = in->dim(0);
        const ConvGeom& g = conv->geom();
        Tensor cols = ctx.make({batch * g.out_h() * g.out_w(), g.patch_len()});
        im2col_into(*in, g, cols.data());
        Tensor rows = run(cols);
        ctx.recycle(std::move(cols));
        next = ctx.make({batch, conv->out_channels(), g.out_h(), g.out_w()});
        rows_to_nchw_into(rows.data(), batch, conv->out_channels(), g.out_h(),
                          g.out_w(), next.data());
        ctx.recycle(std::move(rows));
      } else {
        next = run(*in);
      }
    }
    if (in != &x) ctx.recycle(std::move(cur));
    cur = std::move(next);
    in = &cur;
  }
  return cur;
}

float HardwareNetwork::evaluate(const data::Dataset& test,
                                std::size_t batch_size) {
  if (test.size() == 0) {
    log_warn("HardwareNetwork::evaluate: empty test dataset, returning 0");
    return 0.0f;
  }
  if (batch_size == 0) {
    log_warn("HardwareNetwork::evaluate: batch_size == 0, returning 0");
    return 0.0f;
  }
  std::size_t correct = 0, seen = 0;
  const std::size_t len = test.sample_numel();
  for (std::size_t start = 0; start < test.size(); start += batch_size) {
    const std::size_t n = std::min(batch_size, test.size() - start);
    std::vector<std::size_t> shape = test.images.shape();
    shape[0] = n;
    Tensor batch(shape);
    std::copy(test.images.data() + start * len,
              test.images.data() + (start + n) * len, batch.data());
    Tensor logits = forward(batch);
    const auto preds = ops::argmax_rows(logits);
    for (std::size_t i = 0; i < n; ++i)
      if (preds[i] == test.labels[start + i]) ++correct;
    seen += n;
  }
  return static_cast<float>(correct) / static_cast<float>(seen);
}

bool HardwareNetwork::per_sample_capable() const {
  return quant::hooks_support_row_streams(net_);
}

std::size_t HardwareNetwork::total_cells() const {
  std::size_t cells = 0;
  for (const auto& engine : engines_)
    cells += engine->array().rows() * engine->array().cols();
  return cells;
}

}  // namespace gbo::xbar
