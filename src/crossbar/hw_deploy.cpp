#include "crossbar/hw_deploy.hpp"

#include "quant/binary_weight.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"

#include <stdexcept>

namespace gbo::xbar {
namespace {

/// [N*oh*ow, out_c] GEMM rows -> NCHW (mirror of the Conv2d lowering).
Tensor rows_to_nchw(const Tensor& rows, std::size_t batch, std::size_t out_c,
                    std::size_t oh, std::size_t ow) {
  Tensor out({batch, out_c, oh, ow});
  const float* src = rows.data();
  float* dst = out.data();
  for (std::size_t n = 0; n < batch; ++n)
    for (std::size_t y = 0; y < oh; ++y)
      for (std::size_t x = 0; x < ow; ++x) {
        const float* row = src + ((n * oh + y) * ow + x) * out_c;
        for (std::size_t c = 0; c < out_c; ++c)
          dst[((n * out_c + c) * oh + y) * ow + x] = row[c];
      }
  return out;
}

}  // namespace

HardwareNetwork::HardwareNetwork(nn::Sequential& net,
                                 const std::vector<quant::Hookable*>& encoded,
                                 HwDeployConfig cfg)
    : net_(net), cfg_(cfg) {
  std::vector<std::size_t> pulses = cfg_.pulses;
  if (pulses.empty()) pulses.assign(encoded.size(), 8);
  if (pulses.size() != encoded.size())
    throw std::invalid_argument("HardwareNetwork: pulses/layers mismatch");

  Rng rng(cfg_.seed);
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    auto* conv = dynamic_cast<quant::QuantConv2d*>(encoded[i]);
    auto* lin = dynamic_cast<quant::QuantLinear*>(encoded[i]);
    const nn::Module* module = nullptr;
    Tensor binary;
    if (conv) {
      binary = quant::binarize(conv->weight().value, /*scaled=*/true);
      module = conv;
    } else if (lin) {
      binary = quant::binarize(lin->weight().value, /*scaled=*/true);
      module = lin;
    } else {
      throw std::invalid_argument(
          "HardwareNetwork: encoded layer is neither QuantConv2d nor QuantLinear");
    }
    MvmConfig mcfg;
    mcfg.spec = enc::EncodingSpec{cfg_.scheme, pulses[i]};
    mcfg.sigma = cfg_.sigma;
    mcfg.device = cfg_.device;
    mcfg.tile_cols = cfg_.tile_cols;
    engine_index_[module] = engines_.size();
    engines_.push_back(
        std::make_unique<MvmEngine>(binary, mcfg, rng.fork(1000 + i)));
    conv_of_engine_.push_back(conv);
  }
}

Tensor HardwareNetwork::forward(const Tensor& x) {
  const bool was_training = net_.training();
  net_.set_training(false);
  Tensor cur = x;
  for (std::size_t i = 0; i < net_.size(); ++i) {
    nn::Module& module = net_.at(i);
    auto it = engine_index_.find(&module);
    if (it == engine_index_.end()) {
      // Digital layer (BN, activation, pooling, full-precision ends).
      cur = module.forward(cur);
      continue;
    }
    MvmEngine& engine = *engines_[it->second];
    if (const quant::QuantConv2d* conv = conv_of_engine_[it->second]) {
      const std::size_t batch = cur.dim(0);
      const ConvGeom& g = conv->geom();
      Tensor cols = im2col(cur, g);
      Tensor rows = engine.run_pulse_level(cols);
      cur = rows_to_nchw(rows, batch, conv->out_channels(), g.out_h(), g.out_w());
    } else {
      cur = engine.run_pulse_level(cur);
    }
  }
  net_.set_training(was_training);
  return cur;
}

float HardwareNetwork::evaluate(const data::Dataset& test,
                                std::size_t batch_size) {
  std::size_t correct = 0, seen = 0;
  const std::size_t len = test.sample_numel();
  for (std::size_t start = 0; start < test.size(); start += batch_size) {
    const std::size_t n = std::min(batch_size, test.size() - start);
    std::vector<std::size_t> shape = test.images.shape();
    shape[0] = n;
    Tensor batch(shape);
    std::copy(test.images.data() + start * len,
              test.images.data() + (start + n) * len, batch.data());
    Tensor logits = forward(batch);
    const auto preds = ops::argmax_rows(logits);
    for (std::size_t i = 0; i < n; ++i)
      if (preds[i] == test.labels[start + i]) ++correct;
    seen += n;
  }
  return static_cast<float>(correct) / static_cast<float>(seen);
}

std::size_t HardwareNetwork::total_cells() const {
  std::size_t cells = 0;
  for (const auto& engine : engines_)
    cells += engine->array().rows() * engine->array().cols();
  return cells;
}

}  // namespace gbo::xbar
