#include "crossbar/drift.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gbo::xbar {

double drift_factor(double nu, double t, double t0) {
  if (nu <= 0.0 || t <= t0 || t0 <= 0.0) return 1.0;
  return std::pow(t / t0, -nu);
}

DriftModel::DriftModel(std::size_t numel, DriftConfig cfg, Rng rng)
    : cfg_(cfg) {
  if (cfg_.t0 <= 0.0) {
    throw std::invalid_argument("DriftModel: t0 must be positive");
  }
  nu_.resize(numel);
  for (auto& nu : nu_) {
    const double sampled =
        cfg_.nu_sigma > 0.0 ? rng.normal(cfg_.nu_mean, cfg_.nu_sigma)
                            : cfg_.nu_mean;
    nu = static_cast<float>(std::max(0.0, sampled));
  }
}

Tensor DriftModel::apply(const Tensor& weight, double t) const {
  if (weight.numel() != nu_.size()) {
    throw std::invalid_argument(
        "DriftModel::apply: weight size does not match the sampled devices");
  }
  Tensor out = weight;
  for (std::size_t i = 0; i < nu_.size(); ++i) {
    out[i] = static_cast<float>(
        static_cast<double>(out[i]) * drift_factor(nu_[i], t, cfg_.t0));
  }
  return out;
}

DriftStats drift_stats(const DriftModel& model, const Tensor& weight,
                       double t) {
  Tensor drifted = model.apply(weight, t);
  DriftStats s;
  if (weight.numel() == 0) return s;
  double sum_factor = 0.0, min_f = 1e300, max_f = -1e300, sum_sq = 0.0;
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < weight.numel(); ++i) {
    const double f = drift_factor(model.nu()[i], t, model.config().t0);
    sum_factor += f;
    min_f = std::min(min_f, f);
    max_f = std::max(max_f, f);
    const double w0 = weight[i];
    if (w0 != 0.0) {
      const double rel = (static_cast<double>(drifted[i]) - w0) / std::fabs(w0);
      sum_sq += rel * rel;
      ++nonzero;
    }
  }
  s.mean_factor = sum_factor / static_cast<double>(weight.numel());
  s.min_factor = min_f;
  s.max_factor = max_f;
  s.rms_rel_error = nonzero ? std::sqrt(sum_sq / static_cast<double>(nonzero))
                            : 0.0;
  return s;
}

}  // namespace gbo::xbar
