#include "crossbar/mapper.hpp"

#include <algorithm>
#include <stdexcept>

namespace gbo::xbar {

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

LayerMapping map_layer(const std::string& name, std::size_t fan_in,
                       std::size_t fan_out, std::size_t mvms, TileShape tile) {
  if (fan_in == 0 || fan_out == 0) {
    throw std::invalid_argument("map_layer(" + name +
                                "): zero-sized weight matrix");
  }
  if (tile.rows == 0 || tile.cols == 0) {
    throw std::invalid_argument("map_layer(" + name + "): zero-sized tile");
  }
  if (mvms == 0) {
    throw std::invalid_argument("map_layer(" + name + "): zero MVM count");
  }
  LayerMapping m;
  m.name = name;
  m.fan_in = fan_in;
  m.fan_out = fan_out;
  m.mvms = mvms;
  m.row_tiles = ceil_div(fan_in, tile.rows);
  m.col_tiles = ceil_div(fan_out, tile.cols);
  m.tiles = m.row_tiles * m.col_tiles;
  m.utilization = static_cast<double>(m.occupied_cells()) /
                  (static_cast<double>(m.tiles) * tile.cells());
  return m;
}

std::size_t NetworkMapping::total_tiles() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.tiles;
  return n;
}

std::size_t NetworkMapping::total_occupied_cells() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.occupied_cells();
  return n;
}

std::size_t NetworkMapping::total_allocated_cells() const {
  return total_tiles() * tile.cells();
}

double NetworkMapping::overall_utilization() const {
  const std::size_t alloc = total_allocated_cells();
  if (alloc == 0) return 0.0;
  return static_cast<double>(total_occupied_cells()) /
         static_cast<double>(alloc);
}

double NetworkMapping::area_proxy(double peripheral_cells_per_tile) const {
  return static_cast<double>(total_tiles()) *
         (static_cast<double>(tile.cells()) + peripheral_cells_per_tile);
}

std::vector<std::pair<std::size_t, std::size_t>> column_shards(
    std::size_t fan_out, TileShape tile) {
  if (fan_out == 0)
    throw std::invalid_argument("column_shards: fan_out must be nonzero");
  const std::size_t width =
      tile.cols == 0 ? fan_out : std::min(tile.cols, fan_out);
  std::vector<std::pair<std::size_t, std::size_t>> shards;
  shards.reserve((fan_out + width - 1) / width);
  for (std::size_t o0 = 0; o0 < fan_out; o0 += width)
    shards.emplace_back(o0, std::min(o0 + width, fan_out));
  return shards;
}

NetworkMapping map_network(const std::vector<quant::Hookable*>& layers,
                           const std::vector<std::string>& names,
                           const std::vector<std::size_t>& spatial_mvms,
                           TileShape tile) {
  if (layers.size() != names.size()) {
    throw std::invalid_argument("map_network: names/layers size mismatch");
  }
  if (!spatial_mvms.empty() && spatial_mvms.size() != layers.size()) {
    throw std::invalid_argument("map_network: spatial_mvms size mismatch");
  }
  NetworkMapping net;
  net.tile = tile;
  net.layers.reserve(layers.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const std::size_t mvms = spatial_mvms.empty() ? 1 : spatial_mvms[i];
    // Hookable reports crossbar_rows() = fan-out, crossbar_cols() = fan-in
    // (out × in weight matrix); the mapper's tile axes are physical
    // (fan-in on word lines), hence the swap here.
    net.layers.push_back(map_layer(names[i], layers[i]->crossbar_cols(),
                                   layers[i]->crossbar_rows(), mvms, tile));
  }
  return net;
}

}  // namespace gbo::xbar
