// Crossbar output-noise models (paper Eq. 1–4).
//
// The paper folds all crossbar non-idealities into additive Gaussian noise
// on the MVM output current, applied once per pulse. GaussianNoiseHook is
// the analytic-mode realization used for noisy evaluation and NIA training:
// it adds a single Gaussian sample with the encoding's accumulated variance
// σ² · Σw_i²/(Σw_i)² instead of looping over pulses — distributionally
// identical (both are zero-mean Gaussians of the same variance; verified by
// the pulse-vs-analytic property tests).
#pragma once

#include "common/rng.hpp"
#include "encoding/bit_slicing.hpp"
#include "encoding/pla.hpp"
#include "quant/quant_layers.hpp"

namespace gbo::xbar {

/// Analytic crossbar-noise hook for one layer.
///
/// Also applies the encoding-side activation re-quantization: with a PLA
/// pulse count n != base p, the layer input can only take n+1 thermometer
/// levels, so inputs are snapped before the MVM (the PLA approximation
/// error of §III-B).
class GaussianNoiseHook : public quant::MvmNoiseHook {
 public:
  GaussianNoiseHook(Rng rng, double sigma, enc::EncodingSpec spec,
                    std::size_t base_pulses = 8)
      : rng_(rng), sigma_(sigma), spec_(spec), base_pulses_(base_pulses) {}

  void set_sigma(double sigma) { sigma_ = sigma; }
  double sigma() const { return sigma_; }

  void set_spec(enc::EncodingSpec spec) { spec_ = spec; }
  const enc::EncodingSpec& spec() const { return spec_; }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Snaps inputs to the levels representable by the active encoding when it
  /// differs from the base (PLA re-encoding).
  void on_input(Tensor& x) override;

  /// Adds N(0, σ² · variance_factor) to every output element.
  void on_forward(Tensor& out) override;

  /// Stateless counterparts (Module::infer path): identical transforms, the
  /// noise drawn from the per-trial context stream instead of the member
  /// generator. Const, so one hook serves concurrent trial contexts.
  void infer_input(Tensor& x, Rng& rng) const override;
  void infer_output(Tensor& out, Rng& rng) const override;

  /// Per-sample streams (DESIGN.md §6): row r's noise comes from rngs[r] —
  /// for each row, the same draws infer_output takes for a unit batch.
  void infer_output_rows(Tensor& out, Rng* rngs,
                         std::size_t num_streams) const override;

  /// infer_input only snaps (no draws) and infer_output_rows is
  /// implemented, so stochastic micro-batches may fuse over this hook.
  bool supports_row_streams() const override { return true; }

  /// Draws from the context stream only when enabled with sigma > 0.
  bool stochastic() const override { return enabled_ && sigma_ > 0.0; }

 private:
  /// Shared bodies; both execution paths run exactly these float ops.
  void snap_input(Tensor& x) const;
  void add_output_noise(Tensor& out, Rng& rng) const;

  Rng rng_;
  double sigma_;
  enc::EncodingSpec spec_;
  std::size_t base_pulses_;
  bool enabled_ = true;
};

}  // namespace gbo::xbar
