// Energy / latency cost model for pulse schedules on the tiled crossbar.
//
// The paper's Eq. 6 regularizer measures cost in pulses; this module turns
// a pulse schedule into the physical quantities a chip architect reads:
// energy per inference (with a per-component breakdown) and latency. GBO's
// accuracy-vs-latency trade-off then becomes an accuracy-vs-energy frontier
// (bench_ext_energy), and different schedules with the same average pulse
// count can be ranked by where their pulses land (wide early layers vs
// narrow late layers) — something "Avg.#pulses" alone cannot distinguish.
//
// Cost structure per layer, per inference, with pulse count P:
//   driver  = mvms · P · fan_in · e_driver        (1-bit word-line DACs)
//   array   = mvms · P · occupied_cells · e_cell  (cell read current)
//   adc     = mvms · P · row_tiles · fan_out · e_adc   (one conversion per
//             column tile-segment per pulse; partial sums are digital)
//   s&h     = mvms · P · row_tiles · fan_out · e_sh
//   digital = mvms · P · fan_out · e_accum, ×(1 + shift_add_factor) for
//             bit slicing, whose per-pulse weighted accumulation needs a
//             shifter in front of the adder (thermometer just adds)
//   cycles  = mvms · P         (serial column reads; one read per pulse)
//
// Default coefficients are normalized energy units chosen from the relative
// magnitudes reported for ISAAC/PRIME-class designs (8-bit SAR ADC ≫ driver
// ≫ cell read): absolute joules are out of scope (see DESIGN.md §2), the
// model is for *comparing schedules on the same network*.
#pragma once

#include "crossbar/mapper.hpp"
#include "encoding/pulse_train.hpp"

#include <cstddef>
#include <vector>

namespace gbo::xbar {

struct EnergyConfig {
  double e_driver = 1.0;     // per word line per pulse
  double e_cell = 0.05;      // per occupied cell per pulse
  double e_adc = 16.0;       // per ADC conversion (dominant term)
  double e_sample_hold = 0.2;  // per column segment per pulse
  double e_accum = 0.1;      // per column digital accumulate per pulse
  double shift_add_factor = 1.0;  // extra digital cost multiplier, bit slicing
  double t_read_ns = 100.0;  // one pulse (read cycle) in nanoseconds
};

/// Energy per inference, split by component (normalized units).
struct EnergyBreakdown {
  double driver = 0.0;
  double array = 0.0;
  double adc = 0.0;
  double sample_hold = 0.0;
  double digital = 0.0;

  double total() const { return driver + array + adc + sample_hold + digital; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& o);
};

/// Cost of one layer under a specific pulse count.
struct LayerCost {
  std::string name;
  std::size_t pulses = 0;
  std::size_t mvms = 0;
  EnergyBreakdown energy;
  double cycles = 0.0;      // mvms * pulses
  double latency_ns = 0.0;  // cycles * t_read_ns (serial execution)
};

/// Cost of a full per-layer schedule.
struct ScheduleCost {
  std::vector<LayerCost> layers;
  EnergyBreakdown energy;   // network total
  double cycles = 0.0;      // serial sum over layers
  double latency_ns = 0.0;
  double avg_pulses = 0.0;  // Table I's "Avg.#pulses" for cross-reference

  /// Fraction of total energy spent in ADC conversions — the headline
  /// number for analog accelerators (typically > 0.5).
  double adc_share() const;
};

/// Costs one layer; `scheme` selects the digital-accumulation model.
LayerCost cost_layer(const LayerMapping& mapping, std::size_t pulses,
                     const EnergyConfig& cfg,
                     enc::Scheme scheme = enc::Scheme::kThermometer);

/// Costs a per-layer pulse schedule over a mapped network. `pulses` must
/// have one entry per mapped layer.
ScheduleCost cost_schedule(const NetworkMapping& net,
                           const std::vector<std::size_t>& pulses,
                           const EnergyConfig& cfg,
                           enc::Scheme scheme = enc::Scheme::kThermometer);

/// Convenience: uniform schedule.
ScheduleCost cost_uniform(const NetworkMapping& net, std::size_t pulses,
                          const EnergyConfig& cfg,
                          enc::Scheme scheme = enc::Scheme::kThermometer);

}  // namespace gbo::xbar
