// Device/circuit-level non-ideality model for the binary crossbar.
//
// The paper abstracts all of this into output Gaussian noise (Eq. 1); this
// module provides the richer physical model used by the extension studies
// and by the pulse-level engine when configured:
//   * programming variation: each cell's conductance deviates
//     log-normally from its nominal on/off level (device-to-device);
//   * stuck-at faults: a fraction of cells is frozen at on or off;
//   * read noise: per-read Gaussian current noise (cycle-to-cycle);
//   * ADC: uniform quantization of the column current to `adc_bits`
//     over a configurable full-scale range;
//   * IR drop proxy: linear attenuation of a cell's contribution with its
//     column index, modeling wire resistance accumulating along a row.
#pragma once

#include "common/rng.hpp"

#include <cstddef>

namespace gbo::xbar {

/// How a signed binary weight becomes conductances.
///   kDifferential — two cells per weight (G+, G−), analog subtraction at
///     the TIA (ISAAC-style). Full ±(g_on − g_off) signal swing.
///   kOffset — one cell per weight (+1 → g_on, −1 → g_off) plus one shared
///     mid-conductance reference column per tile whose current is
///     subtracted digitally (PRIME-style). Halves the cell count but also
///     halves the per-cell signal swing (the decode multiplies by
///     2/(g_on − g_off)), and the reference read's noise is shared — i.e.
///     correlated — across every output of the tile.
enum class WeightMapping : std::uint8_t { kDifferential = 0, kOffset = 1 };

struct DeviceConfig {
  WeightMapping mapping = WeightMapping::kDifferential;
  double g_on = 1.0;             // nominal on conductance (normalized units)
  double g_off = 0.0;            // nominal off conductance
  double program_variation = 0.0;  // lognormal sigma of programmed conductance
  double stuck_on_rate = 0.0;    // fraction of cells stuck at g_on
  double stuck_off_rate = 0.0;   // fraction of cells stuck at g_off
  double read_noise_sigma = 0.0; // per-read Gaussian current noise per column
  int adc_bits = 0;              // 0 = ideal (no ADC quantization)
  double adc_full_scale = 0.0;   // symmetric range [-fs, fs]; 0 = auto (rows)
  double ir_drop_alpha = 0.0;    // relative attenuation at the far column end

  // Nodal IR-drop model (crossbar/ir_solver.hpp): wire segment resistance
  // in units of 1/g_on. When > 0 the array's effective weight is computed
  // by the Gauss–Seidel network solver at programming time (expensive but
  // exact for the linear network) and the ir_drop_alpha proxy is ignored.
  double wire_resistance = 0.0;

  // Retention drift (see crossbar/drift.hpp): each cell's conductance
  // decays as (t/t0)^(-ν) with a per-cell ν ~ N(nu, nu_sigma) sampled at
  // programming time. drift_time is the read-out age in the same units as
  // drift_t0; 0 disables the decay (the ν draw still occurs whenever the ν
  // parameters are nonzero, so time sweeps that rebuild the array with the
  // same seed see identical per-cell exponents).
  double drift_nu = 0.0;         // mean drift exponent ν
  double drift_nu_sigma = 0.0;   // device-to-device std of ν
  double drift_t0 = 1.0;         // reference time
  double drift_time = 0.0;       // age at read-out; 0 = fresh array

  bool drift_enabled() const { return drift_nu > 0.0 || drift_nu_sigma > 0.0; }

  /// True when every non-ideality is off (pure Eq. 1 behaviour).
  bool ideal() const {
    return program_variation == 0.0 && stuck_on_rate == 0.0 &&
           stuck_off_rate == 0.0 && read_noise_sigma == 0.0 && adc_bits == 0 &&
           ir_drop_alpha == 0.0 && wire_resistance == 0.0 &&
           !(drift_enabled() && drift_time > 0.0);
  }
};

/// Samples the programmed conductance of one cell whose target is
/// `nominal` (g_on or g_off), applying programming variation and faults.
double program_cell(const DeviceConfig& cfg, double nominal, Rng& rng);

/// Applies ADC quantization to a column current.
double adc_quantize(const DeviceConfig& cfg, double current, double full_scale);

/// IR-drop attenuation factor for column j of `cols`.
double ir_drop_factor(const DeviceConfig& cfg, std::size_t j, std::size_t cols);

}  // namespace gbo::xbar
