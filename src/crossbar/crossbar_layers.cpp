#include "crossbar/crossbar_layers.hpp"

#include <stdexcept>

namespace gbo::xbar {

LayerNoiseController::LayerNoiseController(std::vector<quant::Hookable*> layers,
                                           double sigma, std::size_t base_pulses,
                                           Rng rng)
    : layers_(std::move(layers)), base_pulses_(base_pulses),
      trial_root_(rng.fork(500)) {
  hooks_.reserve(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    hooks_.push_back(std::make_unique<GaussianNoiseHook>(
        rng.fork(1000 + i), sigma,
        enc::EncodingSpec{enc::Scheme::kThermometer, base_pulses},
        base_pulses));
  }
}

void LayerNoiseController::attach() {
  for (std::size_t i = 0; i < layers_.size(); ++i)
    layers_[i]->set_noise_hook(hooks_[i].get());
}

void LayerNoiseController::detach() {
  for (auto* layer : layers_) layer->set_noise_hook(nullptr);
}

void LayerNoiseController::set_sigma(double sigma) {
  for (auto& h : hooks_) h->set_sigma(sigma);
}

void LayerNoiseController::set_enabled_all(bool enabled) {
  for (auto& h : hooks_) h->set_enabled(enabled);
}

void LayerNoiseController::isolate_layer(std::size_t idx) {
  if (idx >= hooks_.size())
    throw std::out_of_range("LayerNoiseController::isolate_layer");
  for (std::size_t i = 0; i < hooks_.size(); ++i)
    hooks_[i]->set_enabled(i == idx);
}

void LayerNoiseController::set_pulses(const std::vector<std::size_t>& pulses) {
  if (pulses.size() != hooks_.size())
    throw std::invalid_argument("LayerNoiseController::set_pulses: size mismatch");
  for (std::size_t i = 0; i < hooks_.size(); ++i)
    hooks_[i]->set_spec(enc::EncodingSpec{enc::Scheme::kThermometer, pulses[i]});
}

void LayerNoiseController::set_uniform_pulses(std::size_t pulses) {
  set_pulses(std::vector<std::size_t>(hooks_.size(), pulses));
}

void LayerNoiseController::set_specs(const std::vector<enc::EncodingSpec>& specs) {
  if (specs.size() != hooks_.size())
    throw std::invalid_argument("LayerNoiseController::set_specs: size mismatch");
  for (std::size_t i = 0; i < hooks_.size(); ++i) hooks_[i]->set_spec(specs[i]);
}

void LayerNoiseController::set_scheme(enc::Scheme scheme) {
  for (auto& h : hooks_) {
    enc::EncodingSpec spec = h->spec();
    spec.scheme = scheme;
    h->set_spec(spec);
  }
}

std::vector<std::size_t> LayerNoiseController::pulses() const {
  std::vector<std::size_t> out;
  out.reserve(hooks_.size());
  for (const auto& h : hooks_) out.push_back(h->spec().num_pulses);
  return out;
}

double LayerNoiseController::avg_pulses() const {
  if (hooks_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& h : hooks_) acc += static_cast<double>(h->spec().num_pulses);
  return acc / static_cast<double>(hooks_.size());
}

}  // namespace gbo::xbar
