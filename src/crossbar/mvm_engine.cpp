#include "crossbar/mvm_engine.hpp"

#include "crossbar/mapper.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace gbo::xbar {

MvmEngine::MvmEngine(const Tensor& binary_weight, MvmConfig cfg, Rng rng)
    : cfg_(cfg),
      binary_weight_(binary_weight),
      array_(binary_weight, cfg.device, cfg.tile_cols, rng.fork(1)),
      rng_(rng.fork(2)) {
  scale_ = array_.weight_scale();
  norm_weights_ = normalized_pulse_weights();
}

Tensor MvmEngine::encode_and_snap(const Tensor& activations) const {
  Tensor snapped(activations.shape());
  const float* a = activations.data();
  float* s = snapped.data();
  const std::size_t n = activations.numel();
  const std::size_t pulses = cfg_.spec.num_pulses;
  // Scheme branch hoisted out of the element loop so each arm is a tight,
  // inlinable kernel over the batch.
  if (cfg_.spec.scheme == enc::Scheme::kThermometer) {
    for (std::size_t i = 0; i < n; ++i) s[i] = enc::thermometer_snap(a[i], pulses);
  } else {
    for (std::size_t i = 0; i < n; ++i) s[i] = enc::bit_slicing_snap(a[i], pulses);
  }
  return snapped;
}

enc::PulseTrain MvmEngine::encode_train(const Tensor& activations,
                                        ScratchArena* arena) const {
  if (activations.ndim() != 2)
    throw std::invalid_argument("MvmEngine: expected [N, in] activations, got " +
                                activations.shape_str());
  const std::size_t num_pulses = cfg_.spec.num_pulses;
  GBO_TRACE_SPAN(obs::EventType::kPulseEncode, activations.dim(0),
                 static_cast<std::uint16_t>(num_pulses),
                 num_pulses * activations.numel());
  enc::PulseTrain train;
  train.spec = cfg_.spec;
  train.pulses.reserve(num_pulses);
  for (std::size_t i = 0; i < num_pulses; ++i)
    train.pulses.push_back(arena ? arena->take(activations.shape())
                                 : Tensor(activations.shape()));
  if (cfg_.spec.scheme == enc::Scheme::kThermometer)
    enc::thermometer_encode_into(activations, num_pulses, train.pulses);
  else
    enc::bit_slicing_encode_into(activations, num_pulses, train.pulses);
  return train;
}

std::vector<float> MvmEngine::normalized_pulse_weights() const {
  const auto weights = cfg_.spec.pulse_weights();
  double wsum = 0.0;
  for (double w : weights) wsum += w;
  std::vector<float> w(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i)
    w[i] = static_cast<float>(weights[i] / wsum);
  return w;
}

Tensor MvmEngine::run_pulse_level(const Tensor& activations) {
  return run_pulse_level(activations, rng_);
}

Tensor MvmEngine::run_pulse_level(const Tensor& activations, Rng& rng,
                                  ScratchArena* arena) const {
  return run_pulse_level_streams(activations, &rng, 1, arena);
}

Tensor MvmEngine::run_pulse_level(const Tensor& activations, Rng* row_rngs,
                                  std::size_t num_streams,
                                  ScratchArena* arena) const {
  if (activations.ndim() != 2)
    throw std::invalid_argument("MvmEngine: expected [N, in] activations, got " +
                                activations.shape_str());
  if (num_streams == 0 || activations.dim(0) % num_streams != 0)
    throw std::invalid_argument(
        "MvmEngine: batch must be a whole multiple of num_streams");
  return run_pulse_level_streams(activations, row_rngs, num_streams, arena);
}

Tensor MvmEngine::run_pulse_level_streams(const Tensor& activations,
                                          Rng* rngs, std::size_t num_streams,
                                          ScratchArena* arena) const {
  enc::PulseTrain train = encode_train(activations, arena);
  const std::size_t batch = activations.dim(0);
  const std::size_t out_n = array_.rows();
  // An empty pulse train (num_pulses == 0) contributes no current: the
  // decoded result is exactly zero, not a default-constructed tensor.
  if (train.pulses.empty()) {
    Tensor zero = arena ? arena->take({batch, out_n}) : Tensor({batch, out_n});
    if (arena) zero.fill(0.0f);
    return zero;
  }

  const std::size_t num_pulses = train.pulses.size();
  const std::size_t bn = batch * out_n;
  const bool has_sigma = cfg_.sigma > 0.0;

  // Pre-draw every stochastic term in exactly the order the per-pulse
  // reference path consumes its rng: for each pulse, first the crossbar's
  // read noise, then the Eq. 1 output noise (the latter cast to float at
  // draw time, matching the reference's cast at add time). This frees the
  // fused sweep below to visit pulses in weight-tile order while staying
  // bitwise identical to run_pulse_level_reference for the same seed.
  // With per-sample streams (num_streams > 1, DESIGN.md §6) the same order
  // is replayed per sample group from that sample's own generator — each
  // group's draws land in its contiguous slice of the pulse-major buffers,
  // so the sweep below is oblivious to how the noise was drawn.
  // The draw buffers are the pulse path's largest transients; with an arena
  // they are bump scratch instead of per-call vectors.
  const std::size_t stride = array_.read_noise_draws(batch);
  const std::size_t group = batch / num_streams;
  const std::size_t group_rn = array_.read_noise_draws(group);
  const std::size_t group_bn = group * out_n;
  ArenaFrame frame(arena);
  std::vector<double> read_noise_own;
  std::vector<float> out_noise_own;
  double* read_noise;
  float* out_noise;
  if (arena) {
    read_noise = arena->alloc_doubles(stride * num_pulses);
    out_noise = arena->alloc_floats(has_sigma ? num_pulses * bn : 0);
  } else {
    read_noise_own.resize(stride * num_pulses);
    out_noise_own.resize(has_sigma ? num_pulses * bn : 0);
    read_noise = read_noise_own.data();
    out_noise = out_noise_own.data();
  }
  for (std::size_t s = 0; s < num_streams; ++s) {
    Rng& rng = rngs[s];
    for (std::size_t i = 0; i < num_pulses; ++i) {
      if (stride > 0)
        array_.fill_read_noise(group, rng,
                               read_noise + i * stride + s * group_rn);
      if (has_sigma) {
        float* sn = out_noise + i * bn + s * group_bn;
        for (std::size_t j = 0; j < group_bn; ++j)
          sn[j] = static_cast<float>(rng.normal(0.0, cfg_.sigma));
      }
    }
  }

  const std::vector<float>& w = norm_weights_;

  // One fused batch-major sweep of the weight matrix for all pulses; the
  // sink decodes each element in place (peripheral scale, Eq. 1 noise,
  // weighted pulse sum — the same float operations, in the same order, as
  // the reference path's per-tensor loops), so no per-pulse output tensors
  // are ever materialized.
  Tensor out = arena ? arena->take({batch, out_n}) : Tensor({batch, out_n});
  float* po = out.data();
  const float* on = out_noise;
  const CrossbarArray::PulseSink decode =
      [&](std::size_t idx, const float* per_pulse) {
        float acc = 0.0f;
        for (std::size_t p = 0; p < num_pulses; ++p) {
          float y = per_pulse[p];
          y *= scale_;
          if (has_sigma) y += on[p * bn + idx];
          if (p == 0) {
            acc = y * w[0];
          } else {
            acc += w[p] * y;
          }
        }
        po[idx] = acc;
      };
  const double* rn = stride > 0 ? read_noise : nullptr;
  if (cfg_.shard_cols == 0 || cfg_.shard_cols >= out_n) {
    array_.mvm_pulse_train(train.pulses, rn, decode);
  } else {
    // Column-sharded execution (DESIGN.md §10): the mapper fixes the shard
    // geometry, each shard is a range-restricted sweep of the same
    // programmed array, and the reduce is the ascending concatenation of
    // disjoint output slices — bitwise equal to the single sweep above.
    TileShape tile;
    tile.cols = cfg_.shard_cols;
    for (const auto& shard : column_shards(out_n, tile))
      array_.mvm_pulse_train(train.pulses, rn, decode, shard.first,
                             shard.second);
  }
  // Return the encode buffers to the worker's pool: after a warm-up
  // request, the pulse path's tensors — encode buffers, noise pre-draws,
  // output — come entirely from the arena; the only remaining per-request
  // heap touch is the few-byte pulse-handle vector header (DESIGN.md §4).
  if (arena)
    for (Tensor& p : train.pulses) arena->put(std::move(p));
  return out;
}

Tensor MvmEngine::run_pulse_level_reference(const Tensor& activations) {
  return run_pulse_level_reference(activations, rng_);
}

Tensor MvmEngine::run_pulse_level_reference(const Tensor& activations,
                                            Rng& rng) const {
  enc::PulseTrain train = encode_train(activations);
  if (train.pulses.empty()) return Tensor({activations.dim(0), array_.rows()});

  const std::vector<float>& w = norm_weights_;

  Tensor out;
  for (std::size_t i = 0; i < train.pulses.size(); ++i) {
    // One crossbar read per pulse, in sign-current domain.
    Tensor y = array_.mvm_pulse(train.pulses[i], rng);
    // Peripheral scaling back to the weight domain, then the Eq. 1 noise.
    ops::scale_inplace(y, scale_);
    if (cfg_.sigma > 0.0) {
      float* p = y.data();
      for (std::size_t j = 0; j < y.numel(); ++j)
        p[j] += static_cast<float>(rng.normal(0.0, cfg_.sigma));
    }
    if (i == 0) {
      out = ops::scale(y, w[i]);
    } else {
      ops::axpy_inplace(out, w[i], y);
    }
  }
  return out;
}

Tensor MvmEngine::run_analytic(const Tensor& activations) {
  return run_analytic(activations, rng_);
}

Tensor MvmEngine::run_analytic(const Tensor& activations, Rng& rng) const {
  Tensor snapped = encode_and_snap(activations);
  // Expected MVM uses the *effective* (post-programming) weights so the
  // analytic mode reproduces frozen device variation too, then adds the
  // closed-form accumulated Gaussian noise (Eq. 2 / Eq. 3).
  Tensor out = ops::matmul_bt(snapped, array_.effective_weight());
  ops::scale_inplace(out, scale_);
  if (cfg_.sigma > 0.0) {
    const double std = cfg_.sigma * std::sqrt(cfg_.spec.noise_variance_factor());
    float* p = out.data();
    for (std::size_t i = 0; i < out.numel(); ++i)
      p[i] += static_cast<float>(rng.normal(0.0, std));
  }
  return out;
}

Tensor MvmEngine::run_ideal(const Tensor& activations) const {
  return ops::matmul_bt(encode_and_snap(activations), binary_weight_);
}

}  // namespace gbo::xbar
