#include "crossbar/mvm_engine.hpp"

#include "tensor/ops.hpp"

namespace gbo::xbar {

MvmEngine::MvmEngine(const Tensor& binary_weight, MvmConfig cfg, Rng rng)
    : cfg_(cfg),
      binary_weight_(binary_weight),
      array_(binary_weight, cfg.device, cfg.tile_cols, rng.fork(1)),
      rng_(rng.fork(2)) {
  scale_ = array_.weight_scale();
}

Tensor MvmEngine::encode_and_snap(const Tensor& activations) const {
  Tensor snapped(activations.shape());
  const float* a = activations.data();
  float* s = snapped.data();
  for (std::size_t i = 0; i < activations.numel(); ++i) {
    s[i] = cfg_.spec.scheme == enc::Scheme::kThermometer
               ? enc::thermometer_snap(a[i], cfg_.spec.num_pulses)
               : enc::bit_slicing_snap(a[i], cfg_.spec.num_pulses);
  }
  return snapped;
}

Tensor MvmEngine::run_pulse_level(const Tensor& activations) {
  enc::PulseTrain train =
      cfg_.spec.scheme == enc::Scheme::kThermometer
          ? enc::thermometer_encode(activations, cfg_.spec.num_pulses)
          : enc::bit_slicing_encode(activations, cfg_.spec.num_pulses);

  const auto weights = cfg_.spec.pulse_weights();
  double wsum = 0.0;
  for (double w : weights) wsum += w;

  Tensor out;
  for (std::size_t i = 0; i < train.pulses.size(); ++i) {
    // One crossbar read per pulse, in sign-current domain.
    Tensor y = array_.mvm_pulse(train.pulses[i], rng_);
    // Peripheral scaling back to the weight domain, then the Eq. 1 noise.
    ops::scale_inplace(y, scale_);
    if (cfg_.sigma > 0.0) {
      float* p = y.data();
      for (std::size_t j = 0; j < y.numel(); ++j)
        p[j] += static_cast<float>(rng_.normal(0.0, cfg_.sigma));
    }
    const float wi = static_cast<float>(weights[i] / wsum);
    if (i == 0) {
      out = ops::scale(y, wi);
    } else {
      ops::axpy_inplace(out, wi, y);
    }
  }
  return out;
}

Tensor MvmEngine::run_analytic(const Tensor& activations) {
  Tensor snapped = encode_and_snap(activations);
  // Expected MVM uses the *effective* (post-programming) weights so the
  // analytic mode reproduces frozen device variation too, then adds the
  // closed-form accumulated Gaussian noise (Eq. 2 / Eq. 3).
  Tensor out = ops::matmul_bt(snapped, array_.effective_weight());
  ops::scale_inplace(out, scale_);
  if (cfg_.sigma > 0.0) {
    const double std = cfg_.sigma * std::sqrt(cfg_.spec.noise_variance_factor());
    float* p = out.data();
    for (std::size_t i = 0; i < out.numel(); ++i)
      p[i] += static_cast<float>(rng_.normal(0.0, std));
  }
  return out;
}

Tensor MvmEngine::run_ideal(const Tensor& activations) const {
  return ops::matmul_bt(encode_and_snap(activations), binary_weight_);
}

}  // namespace gbo::xbar
