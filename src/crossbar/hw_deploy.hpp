// Hardware deployment: run a trained BWNN end to end on the simulated
// crossbar at pulse granularity.
//
// The training/evaluation pipeline uses the analytic noise hooks (fast,
// distribution-exact for the Eq. 1 model). This module is the "ship it to
// the hardware" path: every crossbar-mapped layer's binarized weight is
// programmed into a tiled CrossbarArray (device non-idealities sampled at
// programming time), and inference streams real thermometer/bit-sliced
// pulse trains through the arrays — one MVM per pulse, ADC and read noise
// included. Digital layers (BN, activations, pooling, the conv1/fc2
// full-precision ends) execute on the host network.
//
// Use cases: validating the analytic pipeline against the physical
// simulation, and extension studies under non-idealities the Eq. 1 model
// does not capture (stuck cells, ADC clipping, IR drop).
#pragma once

#include "crossbar/mvm_engine.hpp"
#include "data/dataset.hpp"
#include "nn/eval_context.hpp"
#include "nn/sequential.hpp"
#include "quant/quant_layers.hpp"

#include <map>
#include <memory>
#include <vector>

namespace gbo::xbar {

struct HwDeployConfig {
  DeviceConfig device;              // non-idealities (default: ideal devices)
  double sigma = 0.0;               // Eq. 1 per-pulse output noise
  enc::Scheme scheme = enc::Scheme::kThermometer;
  std::vector<std::size_t> pulses;  // per encoded layer; empty = uniform 8
  std::size_t tile_cols = 128;
  /// Output-axis shard width for every programmed engine (MvmConfig::
  /// shard_cols): wide layers execute as mapper-defined column shards with
  /// a deterministic ascending reduce, bitwise equal to the unsharded
  /// sweep. 0 disables sharding.
  std::size_t shard_cols = 0;
  std::uint64_t seed = 1;
};

/// A network deployed onto simulated crossbar hardware.
///
/// Holds one programmed MvmEngine per crossbar-mapped layer; `forward`
/// interleaves pulse-level crossbar reads with host execution of the
/// digital layers. The source network is used in eval mode and is not
/// modified.
///
/// After construction the programmed engines are frozen: the const
/// forward(x, ctx) overload reads only shared immutable state (weights,
/// programmed conductances) and draws every stochastic term (read noise,
/// Eq. 1 output noise) from the caller's EvalContext, so one deployed
/// network can serve any number of concurrent workers — this is the
/// backend the serving runtime (serve/backend.hpp) drives. The classic
/// mutable forward(x) is a thin wrapper that forks a per-call context off
/// a member stream (fresh noise each call, replayable from cfg.seed).
class HardwareNetwork {
 public:
  /// `encoded`: the crossbar-mapped layers of `net`, in forward order
  /// (the same list the model builders return).
  HardwareNetwork(nn::Sequential& net,
                  const std::vector<quant::Hookable*>& encoded,
                  HwDeployConfig cfg);

  /// Pulse-level inference. Input layout must match the host network's.
  Tensor forward(const Tensor& x);

  /// Const/shared-safe pulse-level inference: digital layers run the
  /// stateless infer path, crossbar layers the const engine overload; all
  /// randomness comes from ctx.rng (network order) and scratch recycles
  /// through ctx.arena when attached.
  Tensor forward(const Tensor& x, nn::EvalContext& ctx) const;

  /// Classification accuracy over a dataset. Degenerate inputs (empty
  /// dataset or batch_size == 0) return 0 with a logged warning.
  float evaluate(const data::Dataset& test, std::size_t batch_size = 64);

  /// True when no read-time stochastic term is configured (Eq. 1 sigma and
  /// device read noise both zero): forward results then depend only on the
  /// frozen programmed state, never on the context stream. The serving
  /// runtime uses this to fuse micro-batches into whole-tensor calls.
  bool deterministic() const {
    return cfg_.sigma <= 0.0 && cfg_.device.read_noise_sigma <= 0.0;
  }

  /// True when every stochastic site of the const forward supports
  /// per-sample row streams (DESIGN.md §6): the programmed engines always
  /// do, so this only rejects a digital layer carrying a live noise hook
  /// that cannot draw per row. The serving runtime then fuses stochastic
  /// micro-batches instead of falling back to unit batches.
  bool per_sample_capable() const;

  std::size_t num_crossbar_layers() const { return engines_.size(); }

  /// Total crossbar cells programmed (rows x cols summed over layers).
  std::size_t total_cells() const;

 private:
  nn::Sequential& net_;
  HwDeployConfig cfg_;
  // Keyed by the module identity within the Sequential.
  std::map<const nn::Module*, std::size_t> engine_index_;
  std::vector<std::unique_ptr<MvmEngine>> engines_;
  std::vector<const quant::QuantConv2d*> conv_of_engine_;  // null for linear
  Rng call_rng_;                 // root of the mutable API's per-call forks
  std::uint64_t call_count_ = 0;
};

}  // namespace gbo::xbar
