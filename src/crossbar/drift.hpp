// Conductance retention drift for NVM crossbar cells.
//
// Filamentary NVM conductances decay after programming following the
// empirical power law
//     g(t) = g0 · (t / t0)^(-ν),   t ≥ t0,
// with a per-device drift exponent ν (PCM: ν ≈ 0.03–0.1; ReRAM retention
// loss is often fit with the same form). Device-to-device ν variation makes
// drift *non-uniform*: the differential pair currents decay by different
// factors, so the realized weight both shrinks and acquires a multiplicative
// error that grows with log(t). This is a noise source the paper's Eq. 1
// Gaussian does not capture (it is neither zero-mean nor time-independent);
// the extension study bench_ext_drift shows longer thermometer codes also
// damp *this* error family.
//
// Two entry points:
//   * DriftModel — samples per-cell exponents once (frozen, like real
//     devices) and maps an effective-weight tensor to its value at time t;
//     used for analysis and the analytic evaluation path.
//   * DeviceConfig drift fields (device_model.hpp) — the pulse-level
//     hardware path applies the same law cell-by-cell at programming time.
#pragma once

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

#include <cstddef>
#include <vector>

namespace gbo::xbar {

struct DriftConfig {
  double nu_mean = 0.05;   // mean drift exponent ν
  double nu_sigma = 0.0;   // device-to-device std of ν (clamped at 0)
  double t0 = 1.0;         // reference time (seconds); no decay before t0

  bool enabled() const { return nu_mean > 0.0 || nu_sigma > 0.0; }
};

/// The power-law decay factor (t/t0)^(-ν); clamped to 1 for t <= t0 and to
/// ν >= 0 (conductances do not grow).
double drift_factor(double nu, double t, double t0);

/// Per-cell frozen drift exponents for one weight tensor.
class DriftModel {
 public:
  /// Samples one ν per cell. The same (numel, cfg, rng seed) triple always
  /// produces the same exponents, so time sweeps see consistent devices.
  DriftModel(std::size_t numel, DriftConfig cfg, Rng rng);

  /// The weight tensor as realized at time t: w_i · (t/t0)^(-ν_i).
  Tensor apply(const Tensor& weight, double t) const;

  const std::vector<float>& nu() const { return nu_; }
  const DriftConfig& config() const { return cfg_; }

 private:
  DriftConfig cfg_;
  std::vector<float> nu_;
};

/// Summary statistics of the drift-induced weight error at time t.
struct DriftStats {
  double mean_factor = 1.0;   // average multiplicative decay
  double min_factor = 1.0;
  double max_factor = 1.0;
  double rms_rel_error = 0.0;  // RMS of (w(t) - w0)/|w0| over nonzero cells
};

DriftStats drift_stats(const DriftModel& model, const Tensor& weight,
                       double t);

}  // namespace gbo::xbar
