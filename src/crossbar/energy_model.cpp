#include "crossbar/energy_model.hpp"

#include <stdexcept>

namespace gbo::xbar {

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& o) {
  driver += o.driver;
  array += o.array;
  adc += o.adc;
  sample_hold += o.sample_hold;
  digital += o.digital;
  return *this;
}

double ScheduleCost::adc_share() const {
  const double t = energy.total();
  return t > 0.0 ? energy.adc / t : 0.0;
}

LayerCost cost_layer(const LayerMapping& mapping, std::size_t pulses,
                     const EnergyConfig& cfg, enc::Scheme scheme) {
  if (pulses == 0) {
    throw std::invalid_argument("cost_layer(" + mapping.name +
                                "): zero pulse count");
  }
  LayerCost c;
  c.name = mapping.name;
  c.pulses = pulses;
  c.mvms = mapping.mvms;

  const double reads = static_cast<double>(mapping.mvms) *
                       static_cast<double>(pulses);
  const double fan_in = static_cast<double>(mapping.fan_in);
  const double fan_out = static_cast<double>(mapping.fan_out);
  const double segments = static_cast<double>(mapping.row_tiles) * fan_out;

  c.energy.driver = reads * fan_in * cfg.e_driver;
  c.energy.array =
      reads * static_cast<double>(mapping.occupied_cells()) * cfg.e_cell;
  c.energy.adc = reads * segments * cfg.e_adc;
  c.energy.sample_hold = reads * segments * cfg.e_sample_hold;
  const double digital_mult =
      scheme == enc::Scheme::kBitSlicing ? 1.0 + cfg.shift_add_factor : 1.0;
  c.energy.digital = reads * fan_out * cfg.e_accum * digital_mult;

  c.cycles = reads;
  c.latency_ns = reads * cfg.t_read_ns;
  return c;
}

ScheduleCost cost_schedule(const NetworkMapping& net,
                           const std::vector<std::size_t>& pulses,
                           const EnergyConfig& cfg, enc::Scheme scheme) {
  if (pulses.size() != net.layers.size()) {
    throw std::invalid_argument(
        "cost_schedule: pulse vector size does not match mapped layers");
  }
  ScheduleCost sc;
  sc.layers.reserve(net.layers.size());
  double pulse_sum = 0.0;
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    LayerCost lc = cost_layer(net.layers[i], pulses[i], cfg, scheme);
    sc.energy += lc.energy;
    sc.cycles += lc.cycles;
    sc.latency_ns += lc.latency_ns;
    pulse_sum += static_cast<double>(pulses[i]);
    sc.layers.push_back(std::move(lc));
  }
  sc.avg_pulses = net.layers.empty()
                      ? 0.0
                      : pulse_sum / static_cast<double>(net.layers.size());
  return sc;
}

ScheduleCost cost_uniform(const NetworkMapping& net, std::size_t pulses,
                          const EnergyConfig& cfg, enc::Scheme scheme) {
  return cost_schedule(net,
                       std::vector<std::size_t>(net.layers.size(), pulses),
                       cfg, scheme);
}

}  // namespace gbo::xbar
