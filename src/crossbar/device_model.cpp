#include "crossbar/device_model.hpp"

#include <algorithm>
#include <cmath>

namespace gbo::xbar {

double program_cell(const DeviceConfig& cfg, double nominal, Rng& rng) {
  // Sample the drift exponent first, unconditionally on drift_time, so a
  // time sweep that rebuilds the array with the same seed draws the same ν
  // for every cell (the stream stays aligned; see DeviceConfig).
  double nu = 0.0;
  if (cfg.drift_enabled()) {
    nu = std::max(0.0, cfg.drift_nu_sigma > 0.0
                           ? rng.normal(cfg.drift_nu, cfg.drift_nu_sigma)
                           : cfg.drift_nu);
  }

  // Faults override programming entirely (a stuck filament still drifts).
  const double u = rng.uniform();
  double g;
  if (u < cfg.stuck_on_rate) {
    g = cfg.g_on;
  } else if (u < cfg.stuck_on_rate + cfg.stuck_off_rate) {
    g = cfg.g_off;
  } else if (cfg.program_variation <= 0.0 || nominal == 0.0) {
    // Lognormal multiplicative variation around the nominal level; the off
    // state (0 conductance) stays 0 — there is nothing to multiply.
    g = nominal;
  } else {
    g = nominal * std::exp(rng.normal(0.0, cfg.program_variation));
  }

  if (nu > 0.0 && cfg.drift_time > cfg.drift_t0 && cfg.drift_t0 > 0.0) {
    g *= std::pow(cfg.drift_time / cfg.drift_t0, -nu);
  }
  return g;
}

double adc_quantize(const DeviceConfig& cfg, double current, double full_scale) {
  if (cfg.adc_bits <= 0) return current;
  const double fs = cfg.adc_full_scale > 0.0 ? cfg.adc_full_scale : full_scale;
  if (fs <= 0.0) return current;
  const double clamped = std::clamp(current, -fs, fs);
  const double levels = static_cast<double>((1ll << cfg.adc_bits) - 1);
  const double code = std::round((clamped + fs) / (2.0 * fs) * levels);
  return code / levels * 2.0 * fs - fs;
}

double ir_drop_factor(const DeviceConfig& cfg, std::size_t j, std::size_t cols) {
  if (cfg.ir_drop_alpha <= 0.0 || cols <= 1) return 1.0;
  const double frac = static_cast<double>(j) / static_cast<double>(cols - 1);
  return 1.0 - cfg.ir_drop_alpha * frac;
}

}  // namespace gbo::xbar
