// Tiled binary memristive crossbar array.
//
// A weight matrix W ∈ {-s, +s}^{out × in} is mapped onto differential
// conductance pairs: weight +s -> (G+ = g_on, G- = g_off), weight -s ->
// (G+ = g_off, G- = g_on). The column current for input voltage vector v is
// I_out = Σ_j (G+_{oj} - G-_{oj}) · v_j, so with ideal devices the array
// computes sign(W)·v exactly; the digital scale s and any decode
// normalization are applied by the peripheral (this class reports raw
// sign-domain currents).
//
// Arrays wider than `tile_cols` are split into column tiles whose partial
// currents are summed digitally after the per-tile ADC — the standard
// bit-partitioned mapping (ISAAC, PRIME).
#pragma once

#include "crossbar/device_model.hpp"
#include "tensor/tensor.hpp"

#include <functional>

namespace gbo::xbar {

class CrossbarArray {
 public:
  /// Programs the array from a binary weight matrix [out, in]; entries must
  /// be ±s for a single s (validated). Device non-idealities are sampled
  /// once at programming time (device-to-device variation is frozen, as on
  /// real hardware).
  CrossbarArray(const Tensor& binary_weight, DeviceConfig cfg,
                std::size_t tile_cols, Rng rng);

  std::size_t rows() const { return out_; }   // output lines
  std::size_t cols() const { return in_; }    // input lines
  std::size_t num_tiles() const { return num_tiles_; }

  /// Computes output currents for a batch of bipolar input vectors
  /// x: [N, in], entries in {-1, +1} (one pulse). Applies read noise and
  /// per-tile ADC per the device config; `rng` drives cycle-to-cycle noise.
  /// This is the scalar reference path; the fused mvm_pulse_train below is
  /// the fast path and must stay bitwise equivalent to it
  /// (tests/test_mvm_equivalence.cpp).
  Tensor mvm_pulse(const Tensor& x, Rng& rng) const;

  /// Number of read-noise RNG draws mvm_pulse consumes for one pulse of a
  /// batch of `batch` rows (0 when read noise is disabled).
  std::size_t read_noise_draws(std::size_t batch) const;

  /// Fills buf[0 .. read_noise_draws(batch)) with N(0, read_noise_sigma)
  /// draws in exactly the order mvm_pulse consumes them, so the fused path
  /// can replay one pulse's noise stream.
  void fill_read_noise(std::size_t batch, Rng& rng, double* buf) const;

  /// Per-element consumer for mvm_pulse_train: `idx` = n * rows() + o, and
  /// `per_pulse[p]` is exactly the value mvm_pulse(pulses[p], ...) would
  /// store at that element. May be invoked concurrently for distinct idx.
  using PulseSink =
      std::function<void(std::size_t idx, const float* per_pulse)>;

  /// Fused multi-pulse MVM: computes mvm_pulse for every pulse tensor in
  /// `pulses` (each [N, in]) in a single batch-major sweep of the weight
  /// matrix — each weight tile is loaded once and accumulated against all
  /// pulses while register/cache resident, instead of once per pulse — and
  /// streams each element's per-pulse results to `sink` instead of
  /// materializing pulses.size() output tensors. `read_noise` must be null
  /// when read noise is disabled, else hold pulses.size() *
  /// read_noise_draws(N) values laid out pulse-major, each pulse's slice
  /// filled by fill_read_noise. Values handed to the sink are bitwise
  /// identical to calling mvm_pulse per pulse with the same noise stream,
  /// at any thread count.
  void mvm_pulse_train(const std::vector<Tensor>& pulses,
                       const double* read_noise, const PulseSink& sink) const;

  /// Output-range (bit-line shard) variant: computes only output lines in
  /// [o_begin, o_end) and hands the sink the same global element indices.
  /// `read_noise` still spans the FULL (row, output, tile) index space —
  /// every element's computation and noise lookup is keyed by its global
  /// coordinates, which is what makes a sharded sweep (ascending disjoint
  /// ranges, see xbar::column_shards) bitwise identical to the unsharded
  /// call above. The full-range call delegates here.
  void mvm_pulse_train(const std::vector<Tensor>& pulses,
                       const double* read_noise, const PulseSink& sink,
                       std::size_t o_begin, std::size_t o_end) const;

  /// The effective (post-programming) weight the array realizes in the
  /// sign domain: (G+ − G−) for differential mapping, (G − G_ref) ·
  /// 2/(g_on − g_off) for offset mapping, with IR-drop folded in. Equals
  /// sign(W) for ideal devices under either mapping.
  const Tensor& effective_weight() const { return eff_weight_; }

  /// The digital scale s recovered from the programmed matrix.
  float weight_scale() const { return scale_; }

  WeightMapping mapping() const { return cfg_.mapping; }

 private:
  std::size_t out_ = 0, in_ = 0;
  std::size_t tile_cols_ = 0, num_tiles_ = 0;
  DeviceConfig cfg_;
  float scale_ = 1.0f;
  Tensor eff_weight_;  // [out, in] sign-domain equivalent weight
  // Offset mapping only: raw programmed conductances and the per-tile
  // shared reference cells (one mid-level cell per input line).
  Tensor raw_g_;       // [out, in]
  Tensor ref_g_;       // [in]
};

}  // namespace gbo::xbar
