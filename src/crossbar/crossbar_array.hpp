// Tiled binary memristive crossbar array.
//
// A weight matrix W ∈ {-s, +s}^{out × in} is mapped onto differential
// conductance pairs: weight +s -> (G+ = g_on, G- = g_off), weight -s ->
// (G+ = g_off, G- = g_on). The column current for input voltage vector v is
// I_out = Σ_j (G+_{oj} - G-_{oj}) · v_j, so with ideal devices the array
// computes sign(W)·v exactly; the digital scale s and any decode
// normalization are applied by the peripheral (this class reports raw
// sign-domain currents).
//
// Arrays wider than `tile_cols` are split into column tiles whose partial
// currents are summed digitally after the per-tile ADC — the standard
// bit-partitioned mapping (ISAAC, PRIME).
#pragma once

#include "crossbar/device_model.hpp"
#include "tensor/tensor.hpp"

namespace gbo::xbar {

class CrossbarArray {
 public:
  /// Programs the array from a binary weight matrix [out, in]; entries must
  /// be ±s for a single s (validated). Device non-idealities are sampled
  /// once at programming time (device-to-device variation is frozen, as on
  /// real hardware).
  CrossbarArray(const Tensor& binary_weight, DeviceConfig cfg,
                std::size_t tile_cols, Rng rng);

  std::size_t rows() const { return out_; }   // output lines
  std::size_t cols() const { return in_; }    // input lines
  std::size_t num_tiles() const { return num_tiles_; }

  /// Computes output currents for a batch of bipolar input vectors
  /// x: [N, in], entries in {-1, +1} (one pulse). Applies read noise and
  /// per-tile ADC per the device config; `rng` drives cycle-to-cycle noise.
  Tensor mvm_pulse(const Tensor& x, Rng& rng) const;

  /// The effective (post-programming) weight the array realizes in the
  /// sign domain: (G+ − G−) for differential mapping, (G − G_ref) ·
  /// 2/(g_on − g_off) for offset mapping, with IR-drop folded in. Equals
  /// sign(W) for ideal devices under either mapping.
  const Tensor& effective_weight() const { return eff_weight_; }

  /// The digital scale s recovered from the programmed matrix.
  float weight_scale() const { return scale_; }

  WeightMapping mapping() const { return cfg_.mapping; }

 private:
  std::size_t out_ = 0, in_ = 0;
  std::size_t tile_cols_ = 0, num_tiles_ = 0;
  DeviceConfig cfg_;
  float scale_ = 1.0f;
  Tensor eff_weight_;  // [out, in] sign-domain equivalent weight
  // Offset mapping only: raw programmed conductances and the per-tile
  // shared reference cells (one mid-level cell per input line).
  Tensor raw_g_;       // [out, in]
  Tensor ref_g_;       // [in]
};

}  // namespace gbo::xbar
