// Crossbar-side controllers and inference layers.
//
// LayerNoiseController owns one GaussianNoiseHook per crossbar-mapped layer
// of a network and drives every evaluation configuration of the paper:
//   * baseline           — uniform base pulses, noise on everywhere
//   * PLA-n              — uniform n pulses
//   * GBO solution       — heterogeneous per-layer pulse vector
//   * Fig. 2 sensitivity — noise enabled at exactly one layer
//
// CrossbarLinear is an inference-only module that executes a trained
// QuantLinear through the full pulse-level MvmEngine (device model
// included); it is the "run it on the actual simulated hardware" path used
// by examples and integration tests.
#pragma once

#include "crossbar/mvm_engine.hpp"
#include "nn/module.hpp"

#include <memory>
#include <vector>

namespace gbo::xbar {

class LayerNoiseController {
 public:
  /// `layers`: the network's crossbar-mapped layers, in forward order.
  /// Hooks are created detached; call attach() to install them.
  LayerNoiseController(std::vector<quant::Hookable*> layers, double sigma,
                       std::size_t base_pulses, Rng rng);

  /// Installs/removes the hooks on the layers.
  void attach();
  void detach();

  std::size_t num_layers() const { return layers_.size(); }
  std::size_t base_pulses() const { return base_pulses_; }

  /// Per-pulse noise std for all layers.
  void set_sigma(double sigma);

  /// Enables/disables noise injection on all layers.
  void set_enabled_all(bool enabled);

  /// Enables noise on exactly one layer (Fig. 2); all others are disabled.
  void isolate_layer(std::size_t idx);

  /// Sets each layer's thermometer pulse count (PLA / GBO solutions).
  void set_pulses(const std::vector<std::size_t>& pulses);
  void set_uniform_pulses(std::size_t pulses);

  /// Switches the encoding scheme on all layers (keeps pulse counts).
  /// Used by the network-level thermometer-vs-bit-slicing comparison.
  void set_scheme(enc::Scheme scheme);

  /// Current per-layer pulse counts.
  std::vector<std::size_t> pulses() const;

  /// Mean pulse count across layers ("Avg.#pulses" column of Table I).
  double avg_pulses() const;

  GaussianNoiseHook& hook(std::size_t i) { return *hooks_.at(i); }

 private:
  std::vector<quant::Hookable*> layers_;
  std::vector<std::unique_ptr<GaussianNoiseHook>> hooks_;
  std::size_t base_pulses_;
};

/// Inference-only linear layer executed on the simulated crossbar at pulse
/// granularity. Construct from the binary weight of a trained QuantLinear.
class CrossbarLinear : public nn::Module {
 public:
  CrossbarLinear(const Tensor& binary_weight, MvmConfig cfg, Rng rng)
      : engine_(binary_weight, cfg, rng) {}

  Tensor forward(const Tensor& x) override { return engine_.run_pulse_level(x); }
  Tensor backward(const Tensor&) override {
    throw std::logic_error("CrossbarLinear is inference-only");
  }
  std::string kind() const override { return "CrossbarLinear"; }

  MvmEngine& engine() { return engine_; }

 private:
  MvmEngine engine_;
};

}  // namespace gbo::xbar
