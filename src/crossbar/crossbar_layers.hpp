// Crossbar-side controllers and inference layers.
//
// LayerNoiseController owns one GaussianNoiseHook per crossbar-mapped layer
// of a network and drives every evaluation configuration of the paper:
//   * baseline           — uniform base pulses, noise on everywhere
//   * PLA-n              — uniform n pulses
//   * GBO solution       — heterogeneous per-layer pulse vector
//   * Fig. 2 sensitivity — noise enabled at exactly one layer
//
// CrossbarLinear is an inference-only module that executes a trained
// QuantLinear through the full pulse-level MvmEngine (device model
// included); it is the "run it on the actual simulated hardware" path used
// by examples and integration tests.
#pragma once

#include "crossbar/mvm_engine.hpp"
#include "nn/module.hpp"

#include <memory>
#include <vector>

namespace gbo::xbar {

class LayerNoiseController {
 public:
  /// `layers`: the network's crossbar-mapped layers, in forward order.
  /// Hooks are created detached; call attach() to install them.
  LayerNoiseController(std::vector<quant::Hookable*> layers, double sigma,
                       std::size_t base_pulses, Rng rng);

  /// Installs/removes the hooks on the layers.
  void attach();
  void detach();

  std::size_t num_layers() const { return layers_.size(); }
  std::size_t base_pulses() const { return base_pulses_; }

  /// Per-pulse noise std for all layers.
  void set_sigma(double sigma);

  /// Enables/disables noise injection on all layers.
  void set_enabled_all(bool enabled);

  /// Enables noise on exactly one layer (Fig. 2); all others are disabled.
  void isolate_layer(std::size_t idx);

  /// Sets each layer's thermometer pulse count (PLA / GBO solutions).
  void set_pulses(const std::vector<std::size_t>& pulses);
  void set_uniform_pulses(std::size_t pulses);

  /// Switches the encoding scheme on all layers (keeps pulse counts).
  /// Used by the network-level thermometer-vs-bit-slicing comparison.
  void set_scheme(enc::Scheme scheme);

  /// Sets a heterogeneous per-layer (scheme × pulse count) assignment —
  /// the mixed selections produced by gbo::opt scheme search.
  void set_specs(const std::vector<enc::EncodingSpec>& specs);

  /// Current per-layer pulse counts.
  std::vector<std::size_t> pulses() const;

  /// Mean pulse count across layers ("Avg.#pulses" column of Table I).
  double avg_pulses() const;

  GaussianNoiseHook& hook(std::size_t i) { return *hooks_.at(i); }

  // -- trial-parallel RNG contract (DESIGN.md §3) ---------------------------
  // Noisy evaluation draws trial t's entire noise stream from
  // trial_rng(trial_id), a counter-based fork of a controller-owned root
  // stream: the stream depends only on (construction seed, trial_id), never
  // on which thread runs the trial or in which order trials complete.
  // allocate_trials hands out consecutive trial-id windows so back-to-back
  // evaluations use fresh, still fully reproducible noise.

  /// The deterministic per-trial stream fork (seed, trial_id).
  Rng trial_rng(std::uint64_t trial_id) const {
    return trial_root_.fork(trial_id);
  }

  /// Reserves `n` consecutive trial ids; returns the first.
  std::uint64_t allocate_trials(std::size_t n) {
    const std::uint64_t base = next_trial_;
    next_trial_ += n;
    return base;
  }

 private:
  std::vector<quant::Hookable*> layers_;
  std::vector<std::unique_ptr<GaussianNoiseHook>> hooks_;
  std::size_t base_pulses_;
  Rng trial_root_;              // root of the (seed, trial_id) forks
  std::uint64_t next_trial_ = 0;
};

/// Inference-only linear layer executed on the simulated crossbar at pulse
/// granularity. Construct from the binary weight of a trained QuantLinear.
class CrossbarLinear : public nn::Module {
 public:
  CrossbarLinear(const Tensor& binary_weight, MvmConfig cfg, Rng rng)
      : engine_(binary_weight, cfg, rng) {}

  Tensor forward(const Tensor& x) override { return engine_.run_pulse_level(x); }
  Tensor backward(const Tensor&) override {
    throw std::logic_error("CrossbarLinear is inference-only");
  }
  /// Stateless pulse-level inference: read noise, ADC, and Eq. 1 output
  /// noise all drawn from the per-trial context stream over the frozen
  /// (read-only) programmed array; noise scratch and the output recycle
  /// through the context's arena when one is attached. With per-sample
  /// streams in the context (fused stochastic serving, DESIGN.md §6) each
  /// batch row draws from its own request stream instead.
  Tensor infer(const Tensor& x, nn::EvalContext& ctx) const override {
    if (ctx.per_sample())
      return engine_.run_pulse_level(x, ctx.row_rngs.data(),
                                     ctx.row_rngs.size(), ctx.arena);
    return engine_.run_pulse_level(x, ctx.rng, ctx.arena);
  }
  std::string kind() const override { return "CrossbarLinear"; }

  MvmEngine& engine() { return engine_; }
  const MvmEngine& engine() const { return engine_; }

 private:
  MvmEngine engine_;
};

}  // namespace gbo::xbar
