// Network-to-hardware tile mapper.
//
// A crossbar chip is organized as a grid of fixed-size tiles (e.g. 128×128
// differential cell pairs), each with its own input drivers (DACs) and a
// column-shared set of ADCs. Mapping a binary weight matrix W ∈ {±s}^{out×in}
// onto the chip splits it along both axes:
//   * input axis  (fan-in, crossbar *word lines*): ceil(in / tile_rows)
//     row-tiles whose partial currents are summed digitally;
//   * output axis (crossbar *bit lines*): ceil(out / tile_cols) column-tiles.
//
// The mapper computes, per layer and per network: the tile grid, cell
// utilization (occupied / allocated), the peripheral inventory (drivers,
// ADC conversions per inference), and a normalized area proxy. The energy
// model (crossbar/energy_model.hpp) consumes these reports to cost a pulse
// schedule; the tile counts also bound how much device-to-device variation
// a layer integrates per output (one partial sum per row-tile).
//
// Note the axis convention: this repo stores layer weights as [out, in] and
// streams activations along `in`; on hardware the activation axis is the
// word-line (row) axis, so `in` maps to tile *rows* here even though
// CrossbarArray's column-tiling splits the same axis under the name
// `tile_cols`. TileShape names the axes physically to keep this readable.
#pragma once

#include "quant/quant_layers.hpp"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace gbo::xbar {

/// Physical tile geometry: word lines (inputs) × bit lines (outputs).
struct TileShape {
  std::size_t rows = 128;  // word lines: fan-in axis
  std::size_t cols = 128;  // bit lines: output axis

  std::size_t cells() const { return rows * cols; }
};

/// Mapping of one layer onto the tile grid.
struct LayerMapping {
  std::string name;          // e.g. "conv3"
  std::size_t fan_in = 0;    // MVM inner dimension (activation axis)
  std::size_t fan_out = 0;   // MVM outer dimension
  std::size_t mvms = 0;      // MVM invocations per inference (conv: H*W posns)
  std::size_t row_tiles = 0; // tiles along the fan-in axis
  std::size_t col_tiles = 0; // tiles along the output axis
  std::size_t tiles = 0;     // row_tiles * col_tiles
  double utilization = 0.0;  // occupied cells / allocated cells, in (0, 1]

  std::size_t occupied_cells() const { return fan_in * fan_out; }
};

/// Mapping of a whole network.
struct NetworkMapping {
  TileShape tile;
  std::vector<LayerMapping> layers;

  std::size_t total_tiles() const;
  std::size_t total_occupied_cells() const;
  std::size_t total_allocated_cells() const;
  double overall_utilization() const;  // occupied / allocated across layers

  /// Normalized area proxy: allocated tiles × (tile cell count + peripheral
  /// overhead as an equivalent cell count). `peripheral_cells_per_tile`
  /// models drivers + ADC share + local buffers; the ISAAC floorplan puts
  /// peripherals at roughly 1–3× the array area, so the default is 2× cells.
  double area_proxy(double peripheral_cells_per_tile = 2.0 * 128 * 128) const;
};

/// Maps a single [out, in] weight matrix; `mvms` is the number of MVM
/// invocations one inference issues through this matrix (1 for a linear
/// layer, output H*W for a conv patch matrix). Throws std::invalid_argument
/// on zero-sized dimensions.
LayerMapping map_layer(const std::string& name, std::size_t fan_in,
                       std::size_t fan_out, std::size_t mvms, TileShape tile);

/// Output-axis (bit-line) shard ranges of a mapped layer: one contiguous
/// [begin, end) range per column-tile of `tile`, ascending, covering
/// [0, fan_out). The sharded MVM path (crossbar/mvm_engine.hpp) executes one
/// range per shard in exactly this order — the deterministic reduce is the
/// fixed ascending concatenation of disjoint output slices, so the sharded
/// result is bitwise identical to the unsharded sweep. tile.cols == 0 (or
/// >= fan_out) yields the single full-width shard. Throws
/// std::invalid_argument on fan_out == 0.
std::vector<std::pair<std::size_t, std::size_t>> column_shards(
    std::size_t fan_out, TileShape tile);

/// Maps every crossbar-encoded layer of a network. `names` must parallel
/// `layers` (the model builders provide both). `spatial_mvms[i]` is the
/// per-inference MVM count of layer i; pass empty to default to 1 each
/// (pure-linear network).
NetworkMapping map_network(const std::vector<quant::Hookable*>& layers,
                           const std::vector<std::string>& names,
                           const std::vector<std::size_t>& spatial_mvms,
                           TileShape tile);

}  // namespace gbo::xbar
