#include "crossbar/ir_solver.hpp"

#include <cmath>
#include <stdexcept>

namespace gbo::xbar {

IrDropSolver::IrDropSolver(const Tensor& conductance, IrSolverConfig cfg)
    : cfg_(cfg) {
  if (conductance.ndim() != 2)
    throw std::invalid_argument("IrDropSolver: conductance must be 2D");
  if (cfg_.r_wire <= 0.0)
    throw std::invalid_argument("IrDropSolver: r_wire must be positive");
  rows_ = conductance.dim(0);
  cols_ = conductance.dim(1);
  if (rows_ == 0 || cols_ == 0)
    throw std::invalid_argument("IrDropSolver: empty array");
  g_.resize(rows_ * cols_);
  for (std::size_t i = 0; i < g_.size(); ++i) {
    if (conductance[i] < 0.0f)
      throw std::invalid_argument("IrDropSolver: negative conductance");
    g_[i] = conductance[i];
  }
  vr_.assign(rows_ * cols_, 0.0);
  vc_.assign(rows_ * cols_, 0.0);
}

std::vector<double> IrDropSolver::ideal(
    const std::vector<double>& v_in) const {
  if (v_in.size() != rows_)
    throw std::invalid_argument("IrDropSolver::ideal: bad drive size");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      out[j] += g_[i * cols_ + j] * v_in[i];
  return out;
}

std::vector<double> IrDropSolver::solve(const std::vector<double>& v_in) {
  if (v_in.size() != rows_)
    throw std::invalid_argument("IrDropSolver::solve: bad drive size");
  const double gw = 1.0 / cfg_.r_wire;  // wire segment conductance
  const double omega = cfg_.omega;

  // Convergence is judged on the quantity the periphery reads — the column
  // TIA currents — relative to the worst-case ideal current. Node voltages
  // span wildly different scales (row nodes ~1 V, column nodes ~r_wire·I),
  // so any single voltage threshold either stalls on the rows or
  // under-resolves the columns, whose error the TIA amplifies by 1/r_wire.
  double vscale = 0.0;
  for (double v : v_in) vscale = std::max(vscale, std::fabs(v));
  if (vscale == 0.0) vscale = 1.0;
  double i_ref = 0.0;
  for (std::size_t j = 0; j < cols_; ++j) {
    double col_sum = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) col_sum += g_[i * cols_ + j];
    i_ref = std::max(i_ref, col_sum * vscale);
  }
  if (i_ref == 0.0) i_ref = 1.0;
  std::vector<double> prev_out(cols_, 0.0);

  // SOR sweeps over row nodes then column nodes. The relaxed update blends
  // the exact KCL solution for the node given its neighbors,
  //   v* = (Σ g_neighbor · v_neighbor) / (Σ g_neighbor),
  // as v ← v + ω (v* − v).
  converged_ = false;
  last_iters_ = 0;
  for (std::size_t it = 0; it < cfg_.max_iters; ++it) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) {
        const std::size_t k = i * cols_ + j;
        // Row node: left neighbor is the driver for j == 0.
        const double left = j == 0 ? v_in[i] : vr_[k - 1];
        double num = gw * left + g_[k] * vc_[k];
        double den = gw + g_[k];
        if (j + 1 < cols_) {
          num += gw * vr_[k + 1];
          den += gw;
        }
        const double nv = vr_[k] + omega * (num / den - vr_[k]);
        max_delta = std::max(max_delta, std::fabs(nv - vr_[k]));
        vr_[k] = nv;
      }
    }
    for (std::size_t j = 0; j < cols_; ++j) {
      for (std::size_t i = 0; i < rows_; ++i) {
        const std::size_t k = i * cols_ + j;
        // Column node: the downward segment always exists — to the next
        // node mid-array, to the 0 V TIA at the bottom edge (num adds 0).
        double num = g_[k] * vr_[k];
        double den = gw + g_[k];
        if (i > 0) {
          num += gw * vc_[k - cols_];
          den += gw;
        }
        if (i + 1 < rows_) {
          num += gw * vc_[k + cols_];
        }
        const double nv = vc_[k] + omega * (num / den - vc_[k]);
        max_delta = std::max(max_delta, std::fabs(nv - vc_[k]));
        vc_[k] = nv;
      }
    }
    ++last_iters_;
    (void)max_delta;  // retained for debugging; currents gate convergence
    double max_di = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) {
      const double out_j = vc_[(rows_ - 1) * cols_ + j] * gw;
      max_di = std::max(max_di, std::fabs(out_j - prev_out[j]));
      prev_out[j] = out_j;
    }
    if (max_di < cfg_.tol * i_ref && it > 0) {
      converged_ = true;
      break;
    }
  }

  // TIA current of column j: the bottom wire segment's current.
  std::vector<double> out(cols_);
  for (std::size_t j = 0; j < cols_; ++j)
    out[j] = vc_[(rows_ - 1) * cols_ + j] * gw;
  return out;
}

Tensor ir_equivalent_weight(const Tensor& g_plus, const Tensor& g_minus,
                            const IrSolverConfig& cfg) {
  Tensor::check_same_shape(g_plus, g_minus, "ir_equivalent_weight");
  IrDropSolver plus(g_plus, cfg);
  IrDropSolver minus(g_minus, cfg);
  const std::size_t rows = plus.rows(), cols = plus.cols();

  Tensor eff({cols, rows});  // [out, in] layout
  std::vector<double> drive(rows, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    drive[r] = 1.0;
    const auto ip = plus.solve(drive);
    const auto im = minus.solve(drive);
    for (std::size_t c = 0; c < cols; ++c)
      eff.at(c, r) = static_cast<float>(ip[c] - im[c]);
    drive[r] = 0.0;
  }
  return eff;
}

}  // namespace gbo::xbar
