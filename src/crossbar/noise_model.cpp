#include "crossbar/noise_model.hpp"

namespace gbo::xbar {

void GaussianNoiseHook::snap_input(Tensor& x) const {
  if (spec_.scheme == enc::Scheme::kThermometer) {
    // PLA re-encoding: activations were quantized for base_pulses_ levels;
    // a different pulse count can only realize its own level grid. Snapped
    // in place — the last per-request temporary on the serving hot path.
    if (spec_.num_pulses != base_pulses_)
      enc::pla_approximate_inplace(x, spec_.num_pulses);
  } else {
    // Bit slicing realizes a 2^p-level grid, which does not contain the
    // thermometer training grid exactly; snap to the nearest code.
    float* p = x.data();
    for (std::size_t i = 0; i < x.numel(); ++i)
      p[i] = enc::bit_slicing_snap(p[i], spec_.num_pulses);
  }
}

void GaussianNoiseHook::add_output_noise(Tensor& out, Rng& rng) const {
  if (sigma_ <= 0.0) return;
  const double std = sigma_ * std::sqrt(spec_.noise_variance_factor());
  float* p = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i)
    p[i] += static_cast<float>(rng.normal(0.0, std));
}

void GaussianNoiseHook::on_input(Tensor& x) {
  if (!enabled_) return;
  snap_input(x);
}

void GaussianNoiseHook::on_forward(Tensor& out) {
  if (!enabled_) return;
  add_output_noise(out, rng_);
}

void GaussianNoiseHook::infer_input(Tensor& x, Rng& /*rng*/) const {
  if (!enabled_) return;
  snap_input(x);
}

void GaussianNoiseHook::infer_output(Tensor& out, Rng& rng) const {
  if (!enabled_) return;
  add_output_noise(out, rng);
}

}  // namespace gbo::xbar
