#include "crossbar/noise_model.hpp"

namespace gbo::xbar {

void GaussianNoiseHook::snap_input(Tensor& x) const {
  if (spec_.scheme == enc::Scheme::kThermometer) {
    // PLA re-encoding: activations were quantized for base_pulses_ levels;
    // a different pulse count can only realize its own level grid. Snapped
    // in place — the last per-request temporary on the serving hot path.
    if (spec_.num_pulses != base_pulses_)
      enc::pla_approximate_inplace(x, spec_.num_pulses);
  } else {
    // Bit slicing realizes a 2^p-level grid, which does not contain the
    // thermometer training grid exactly; snap to the nearest code.
    float* p = x.data();
    for (std::size_t i = 0; i < x.numel(); ++i)
      p[i] = enc::bit_slicing_snap(p[i], spec_.num_pulses);
  }
}

void GaussianNoiseHook::add_output_noise(Tensor& out, Rng& rng) const {
  if (sigma_ <= 0.0) return;
  const double std = sigma_ * std::sqrt(spec_.noise_variance_factor());
  float* p = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i)
    p[i] += static_cast<float>(rng.normal(0.0, std));
}

void GaussianNoiseHook::on_input(Tensor& x) {
  if (!enabled_) return;
  snap_input(x);
}

void GaussianNoiseHook::on_forward(Tensor& out) {
  if (!enabled_) return;
  add_output_noise(out, rng_);
}

void GaussianNoiseHook::infer_input(Tensor& x, Rng& /*rng*/) const {
  if (!enabled_) return;
  snap_input(x);
}

void GaussianNoiseHook::infer_output(Tensor& out, Rng& rng) const {
  if (!enabled_) return;
  add_output_noise(out, rng);
}

void GaussianNoiseHook::infer_output_rows(Tensor& out, Rng* rngs,
                                          std::size_t num_streams) const {
  if (!enabled_ || sigma_ <= 0.0) return;  // no draws, matching unit batches
  if (num_streams == 0 || out.ndim() == 0 || out.dim(0) != num_streams)
    throw std::invalid_argument(
        "GaussianNoiseHook::infer_output_rows: stream/batch mismatch");
  const double std = sigma_ * std::sqrt(spec_.noise_variance_factor());
  const std::size_t row = out.numel() / num_streams;
  float* p = out.data();
  // Row r consumes exactly the `row` normals infer_output would draw for a
  // unit batch holding row r — same std, same element order.
  for (std::size_t r = 0; r < num_streams; ++r)
    for (std::size_t j = 0; j < row; ++j)
      p[r * row + j] += static_cast<float>(rngs[r].normal(0.0, std));
}

}  // namespace gbo::xbar
