#include "crossbar/noise_model.hpp"

namespace gbo::xbar {

void GaussianNoiseHook::on_input(Tensor& x) {
  if (!enabled_) return;
  if (spec_.scheme == enc::Scheme::kThermometer) {
    // PLA re-encoding: activations were quantized for base_pulses_ levels;
    // a different pulse count can only realize its own level grid.
    if (spec_.num_pulses != base_pulses_)
      x = enc::pla_approximate(x, spec_.num_pulses);
  } else {
    // Bit slicing realizes a 2^p-level grid, which does not contain the
    // thermometer training grid exactly; snap to the nearest code.
    float* p = x.data();
    for (std::size_t i = 0; i < x.numel(); ++i)
      p[i] = enc::bit_slicing_snap(p[i], spec_.num_pulses);
  }
}

void GaussianNoiseHook::on_forward(Tensor& out) {
  if (!enabled_ || sigma_ <= 0.0) return;
  const double std = sigma_ * std::sqrt(spec_.noise_variance_factor());
  float* p = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i)
    p[i] += static_cast<float>(rng_.normal(0.0, std));
}

}  // namespace gbo::xbar
