// Noise-Injection Adaptation (NIA) baseline — He et al., DAC 2019
// ("Noise injection adaption: end-to-end ReRAM crossbar non-ideal effect
// adaption for neural network mapping"), the noise-aware-training method
// the paper composes with GBO in Table II.
//
// NIA fine-tunes the pre-trained network weights while crossbar noise is
// injected at every crossbar-mapped layer during the forward pass, so the
// weights adapt to the noise distribution the hardware will produce. In
// this repro the injected noise is the same Eq. 1 Gaussian model used at
// evaluation (base thermometer encoding), making NIA/GBO/NIA+GBO directly
// comparable.
#pragma once

#include "crossbar/crossbar_layers.hpp"
#include "data/dataloader.hpp"
#include "nn/sequential.hpp"

#include <vector>

namespace gbo::nia {

struct NiaConfig {
  double sigma = 1.0;           // injected per-pulse noise std
  std::size_t base_pulses = 8;  // encoding during fine-tuning
  std::size_t epochs = 5;
  float lr = 1e-4f;             // gentle fine-tuning of the pre-trained weights
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  std::size_t batch_size = 32;
  std::uint64_t seed = 33;
  /// Noise-draw trials per validation point (validating overload only);
  /// trials are dispatched onto the shared thread pool.
  std::size_t val_trials = 2;
};

struct NiaEpochStats {
  float loss = 0.0f;
  float train_accuracy = 0.0f;
  /// Mean noisy accuracy on the validation set after the epoch (validating
  /// overload only; -1 when no validation set was supplied).
  float noisy_val_accuracy = -1.0f;
};

/// Fine-tunes `net` in place with per-layer noise injection. Hooks are
/// attached for the duration of training and removed afterwards.
/// `binary_layers`: every binary-weight layer of the network (encoded or
/// not); their latent weights are clamped to [-1, 1] after each step.
std::vector<NiaEpochStats> nia_finetune(
    nn::Sequential& net, const std::vector<quant::Hookable*>& encoded_layers,
    const std::vector<quant::Hookable*>& binary_layers,
    const data::Dataset& train, const NiaConfig& cfg);

/// Variant with a per-epoch noisy validation loop: after each epoch the
/// current weights are scored on `val` under the training noise
/// configuration (σ, base pulses), `cfg.val_trials` independent draws per
/// point, the trials running concurrently on the shared thread pool with
/// the (seed, trial_id) RNG contract of core::evaluate_noisy — so the
/// curve is bitwise reproducible at any GBO_NUM_THREADS.
std::vector<NiaEpochStats> nia_finetune(
    nn::Sequential& net, const std::vector<quant::Hookable*>& encoded_layers,
    const std::vector<quant::Hookable*>& binary_layers,
    const data::Dataset& train, const data::Dataset& val,
    const NiaConfig& cfg);

}  // namespace gbo::nia
