#include "nia/nia.hpp"

#include "common/logging.hpp"
#include "core/pipeline.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "quant/binary_weight.hpp"
#include "tensor/ops.hpp"

namespace gbo::nia {

namespace {

std::vector<NiaEpochStats> finetune_impl(
    nn::Sequential& net, const std::vector<quant::Hookable*>& encoded_layers,
    const std::vector<quant::Hookable*>& binary_layers,
    const data::Dataset& train, const data::Dataset* val,
    const NiaConfig& cfg) {
  Rng rng(cfg.seed);
  xbar::LayerNoiseController noise(encoded_layers, cfg.sigma, cfg.base_pulses,
                                   rng.fork(1));
  noise.attach();
  noise.set_enabled_all(true);

  nn::SGD opt(net.params(), cfg.lr, cfg.momentum, cfg.weight_decay);
  data::DataLoader loader(train, cfg.batch_size, /*shuffle=*/true, rng.fork(2));

  net.set_training(true);
  std::vector<NiaEpochStats> history;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    NiaEpochStats stats;
    std::size_t batches = 0, correct = 0, seen = 0;
    loader.reset();
    data::Batch batch;
    while (loader.next(batch)) {
      opt.zero_grad();
      Tensor logits = net.forward(batch.images);
      Tensor grad;
      stats.loss += nn::CrossEntropy::forward_backward(logits, batch.labels, grad);
      net.backward(grad);
      opt.step();
      // Keep latent binary-layer weights in the STE pass-through region.
      for (quant::Hookable* layer : binary_layers)
        quant::clamp_latent(layer->latent_weight().value);

      const auto preds = ops::argmax_rows(logits);
      for (std::size_t i = 0; i < preds.size(); ++i)
        if (preds[i] == batch.labels[i]) ++correct;
      seen += preds.size();
      ++batches;
    }
    stats.loss /= static_cast<float>(batches);
    stats.train_accuracy = static_cast<float>(correct) / static_cast<float>(seen);
    if (val) {
      // Trial-parallel noisy validation through the stateless infer path:
      // uses the attached training hooks read-only (config shared, noise
      // per-trial), so the training-mode forward tape is untouched.
      stats.noisy_val_accuracy =
          core::evaluate_noisy(net, noise, *val, cfg.val_trials, cfg.batch_size);
    }
    history.push_back(stats);
    if (val) {
      log_info("NIA epoch ", epoch + 1, "/", cfg.epochs, " loss=", stats.loss,
               " acc=", stats.train_accuracy,
               " noisy_val=", stats.noisy_val_accuracy);
    } else {
      log_info("NIA epoch ", epoch + 1, "/", cfg.epochs, " loss=", stats.loss,
               " acc=", stats.train_accuracy);
    }
  }
  net.set_training(false);
  noise.detach();
  return history;
}

}  // namespace

std::vector<NiaEpochStats> nia_finetune(
    nn::Sequential& net, const std::vector<quant::Hookable*>& encoded_layers,
    const std::vector<quant::Hookable*>& binary_layers,
    const data::Dataset& train, const NiaConfig& cfg) {
  return finetune_impl(net, encoded_layers, binary_layers, train, nullptr, cfg);
}

std::vector<NiaEpochStats> nia_finetune(
    nn::Sequential& net, const std::vector<quant::Hookable*>& encoded_layers,
    const std::vector<quant::Hookable*>& binary_layers,
    const data::Dataset& train, const data::Dataset& val,
    const NiaConfig& cfg) {
  return finetune_impl(net, encoded_layers, binary_layers, train, &val, cfg);
}

}  // namespace gbo::nia
