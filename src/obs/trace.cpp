#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/thread_pool.hpp"

namespace gbo::obs {

const char* event_name(EventType t) {
  switch (t) {
    case EventType::kAdmit: return "admit";
    case EventType::kShed: return "shed";
    case EventType::kRetry: return "retry";
    case EventType::kDeliver: return "deliver";
    case EventType::kLadder: return "ladder";
    case EventType::kBreaker: return "breaker";
    case EventType::kRoute: return "route";
    case EventType::kSwap: return "swap";
    case EventType::kCanary: return "canary";
    case EventType::kBatch: return "batch";
    case EventType::kBatchMember: return "batch_member";
    case EventType::kQueuePop: return "queue_pop";
    case EventType::kStall: return "stall";
    case EventType::kGemm: return "gemm";
    case EventType::kBinaryMvm: return "binary_mvm";
    case EventType::kPulseEncode: return "pulse_encode";
    case EventType::kArenaAlloc: return "arena_alloc";
    case EventType::kCount: break;
  }
  return "?";
}

namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void put_u64_le(unsigned char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<unsigned char>(v >> (8 * i));
}

}  // namespace

std::uint64_t fingerprint_tuples(std::vector<CausalTuple> tuples) {
  std::sort(tuples.begin(), tuples.end());
  std::uint64_t h = 1469598103934665603ull;
  for (const CausalTuple& t : tuples) {
    unsigned char bytes[19];
    put_u64_le(bytes, t.id);
    bytes[8] = t.type;
    bytes[9] = static_cast<unsigned char>(t.a);
    bytes[10] = static_cast<unsigned char>(t.a >> 8);
    put_u64_le(bytes + 11, t.arg);
    h = fnv1a(h, bytes, sizeof(bytes));
  }
  return h;
}

std::uint64_t causal_fingerprint(const std::vector<Event>& events) {
  std::vector<CausalTuple> tuples;
  tuples.reserve(events.size());
  for (const Event& e : events)
    if (is_causal(static_cast<EventType>(e.type)))
      tuples.push_back({e.id, e.type, e.a, e.arg});
  return fingerprint_tuples(std::move(tuples));
}

std::size_t causal_event_count(const std::vector<Event>& events) {
  std::size_t n = 0;
  for (const Event& e : events)
    if (is_causal(static_cast<EventType>(e.type))) ++n;
  return n;
}

#if GBO_TRACE

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("GBO_TRACE");
  return !(env && std::strcmp(env, "0") == 0);
}()};

std::atomic<std::uint64_t> g_ring_allocs{0};

std::size_t g_ring_capacity = [] {
  if (const char* env = std::getenv("GBO_TRACE_RING_CAP")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<std::size_t>(v);
  }
  return static_cast<std::size_t>(1) << 16;
}();

// The session clock epoch. Relaxed is fine: begin/end_session only run
// while traced threads are parked, and the pool's job hand-off provides
// the happens-before edge for emitting threads.
std::atomic<std::int64_t> g_epoch_ns{
    Clock::now().time_since_epoch().count()};

// Registry of every thread's ring. Rings are owned here (never freed until
// process exit) so end_session can read rings of parked — or even exited —
// threads. The mutex is taken at ring creation and session boundaries only,
// never on the emit path.
std::mutex g_registry_mu;
std::vector<std::unique_ptr<TraceRing>>& registry() {
  static std::vector<std::unique_ptr<TraceRing>> rings;
  return rings;
}

TraceRing* make_ring() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  registry().push_back(std::make_unique<TraceRing>(g_ring_capacity));
  g_ring_allocs.fetch_add(1, std::memory_order_relaxed);
  return registry().back().get();
}

TraceRing& local_ring() {
  thread_local TraceRing* ring = make_ring();
  return *ring;
}

}  // namespace

bool runtime_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_runtime_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_us() {
  const std::int64_t ns = Clock::now().time_since_epoch().count() -
                          g_epoch_ns.load(std::memory_order_relaxed);
  return ns <= 0 ? 0 : static_cast<std::uint64_t>(ns) / 1000;
}

void begin_session() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  for (auto& ring : registry()) ring->rewind();
  g_epoch_ns.store(Clock::now().time_since_epoch().count(),
                   std::memory_order_relaxed);
}

TraceSnapshot end_session() {
  TraceSnapshot snap;
  std::lock_guard<std::mutex> lock(g_registry_mu);
  std::size_t total = 0;
  for (const auto& ring : registry()) total += ring->size();
  snap.events.reserve(total);
  for (const auto& ring : registry()) {
    snap.events.insert(snap.events.end(), ring->data(),
                       ring->data() + ring->size());
    snap.dropped += ring->dropped();
  }
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const Event& x, const Event& y) {
                     return x.t_us < y.t_us;
                   });
  return snap;
}

std::uint64_t ring_allocs() {
  return g_ring_allocs.load(std::memory_order_relaxed);
}

void set_ring_capacity(std::size_t cap) {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  g_ring_capacity = cap < 1 ? 1 : cap;
}

void prime() {
  if (runtime_enabled()) local_ring();
}

void emit(EventType type, std::uint64_t id, std::uint16_t a,
          std::uint64_t arg) {
  if (!runtime_enabled()) return;
  Event e;
  e.id = id;
  e.arg = arg;
  e.t_us = now_us();
  e.dur_us = 0;
  e.a = a;
  e.type = static_cast<std::uint8_t>(type);
  e.tid = static_cast<std::uint8_t>(ThreadPool::current_worker_id());
  local_ring().emit(e);
}

Span::~Span() {
  if (start_ == 0 || !runtime_enabled()) return;
  const std::uint64_t t0 = start_ - 1;
  const std::uint64_t t1 = now_us();
  Event e;
  e.id = id_;
  e.arg = arg_;
  e.t_us = t0;
  e.dur_us = static_cast<std::uint32_t>(t1 > t0 ? t1 - t0 : 0);
  e.a = a_;
  e.type = static_cast<std::uint8_t>(type_);
  e.tid = static_cast<std::uint8_t>(ThreadPool::current_worker_id());
  local_ring().emit(e);
}

#endif  // GBO_TRACE

}  // namespace gbo::obs
