// Always-on request tracing and kernel profiling (DESIGN.md §9).
//
// The serving runtime makes dozens of invisible decisions per request —
// admission, eviction, deadline shed, ladder level, retry/breaker routing,
// fusion mode, binary-vs-float kernel dispatch — and the kernel layer adds
// its own (packed GEMM, XNOR/popcount MVM, pulse encode). This module gives
// every one of them a low-overhead event channel:
//
//   * per-thread, fixed-capacity event buffers (TraceRing): the owning
//     thread appends 32-byte typed events with two clock reads and no
//     locks; when a ring fills, new events are DROPPED and counted (never
//     blocking, never reallocating). After warmup a steady-state serving
//     run performs zero heap allocations attributable to tracing
//     (ring_allocs() makes that auditable, and bench_serve gates it);
//   * a session protocol: begin_session() rewinds every ring and restamps
//     the clock epoch, end_session() snapshots all events. Sessions may
//     only toggle while no traced thread is running (the pool is parked);
//   * the causal/timing split: every event is a causal tuple
//     (type, id, a, arg) — request id, verdict, attempt count, serve mode,
//     virtual time — plus a timing part (wall-clock ts/dur, thread track).
//     Only causal-class events (is_causal) enter the FNV-1a fingerprint,
//     and the fingerprint sorts tuples canonically first, so it is
//     independent of worker count, thread interleaving, batch composition,
//     and the machine's clock: the trace becomes a cross-machine CI
//     artifact exactly like the shed-set fingerprint (DESIGN.md §7).
//     Timing-class events (batch formation, kernel spans, queue depth)
//     carry real wall-clock and are never fingerprinted.
//
// Switches: compiling with -DGBO_TRACE=0 (CMake option GBO_TRACE=OFF)
// removes every hook — the GBO_TRACE_* macros expand to nothing and the
// serving/kernel layers carry zero tracing code. At runtime the GBO_TRACE
// environment variable (unset or "1" = on, "0" = off) is a kill switch for
// perf-sensitive runs; set_runtime_enabled() overrides it (tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#ifndef GBO_TRACE
#define GBO_TRACE 1
#endif

namespace gbo::obs {

/// Event vocabulary. Causal events (is_causal) describe control decisions
/// and are fingerprinted; the rest are timing/profiling events.
enum class EventType : std::uint8_t {
  // ---- causal: request lifecycle --------------------------------------
  kAdmit = 0,    // id=request, a=admission verdict (Decision::Outcome code:
                 //   0 admitted, 1 rejected, 2 evicted), arg=deadline_us
  kShed = 1,     // id=request, a=shed outcome code (3 expired, 4 overload)
  kRetry = 2,    // id=request, a=failed primary attempts observed
  kDeliver = 3,  // id=request, a=ServeMode code, arg=virtual completion us
  // ---- causal: control-plane transitions (virtual clock) --------------
  kLadder = 4,   // id=transition seq, a=new level, arg=virtual us
  kBreaker = 5,  // id=transition seq, a=1 (opened), arg=virtual us
  // ---- causal: replica routing (DESIGN.md §10) -------------------------
  kRoute = 6,    // id=request, a=replica index, arg=active replica count
  // ---- causal: model versioning / hot swap (DESIGN.md §11) -------------
  kSwap = 7,     // id=replica, a=model version cut over to, arg=virtual us
  kCanary = 8,   // id=canary replica, a=verdict (1 promote, 0 rollback),
                 // arg=virtual verdict us
  // ---- timing: serving pipeline ---------------------------------------
  kBatch = 9,        // span: id=batch seq, a=route (0 primary, 1 degraded),
                     // arg=rows executed
  kBatchMember = 10, // instant: id=request, arg=batch seq
  kQueuePop = 11,    // instant: id=batch seq, arg=queue depth after the pop
  kStall = 12,       // span: injected stall + retry backoff, arg=slept us
  // ---- timing: kernel profiling ---------------------------------------
  kGemm = 13,         // span: packed-panel GEMM, arg=2*m*n*k
  kBinaryMvm = 14,    // span: XNOR/popcount MVM, arg=2*m*n*k
  kPulseEncode = 15,  // span: pulse-train encode, arg=pulses encoded
  kArenaAlloc = 16,   // instant: arena system alloc, arg=bytes
  kCount
};

/// True for event types whose (type, id, a, arg) tuple enters the causal
/// fingerprint.
constexpr bool is_causal(EventType t) {
  return static_cast<std::uint8_t>(t) <=
         static_cast<std::uint8_t>(EventType::kCanary);
}

const char* event_name(EventType t);

/// One trace event: causal part (type, id, a, arg) + timing part
/// (t_us, dur_us, tid). 32 bytes so a 64Ki-event ring is 2 MiB.
struct Event {
  std::uint64_t id = 0;    // request id / batch seq / transition seq
  std::uint64_t arg = 0;   // causal argument (deadline, virtual time, rows)
  std::uint64_t t_us = 0;  // wall-clock start, relative to the session epoch
  std::uint32_t dur_us = 0;  // span duration; 0 = instant event
  std::uint16_t a = 0;       // small causal payload (verdict/mode/attempts)
  std::uint8_t type = 0;     // EventType
  std::uint8_t tid = 0;      // thread track (stamped at emit)
};

/// Fixed-capacity single-writer event buffer. The owning thread appends;
/// anyone may read AFTER a happens-before edge (e.g. the pool joining).
/// When full, new events are dropped and counted — emission never blocks
/// and never allocates.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : buf_(capacity) {}

  void emit(const Event& e) {
    if (head_ < buf_.size()) {
      buf_[head_] = e;
      ++head_;
    } else {
      ++dropped_;
    }
  }

  void rewind() {
    head_ = 0;
    dropped_ = 0;
  }

  std::size_t size() const { return head_; }
  std::uint64_t dropped() const { return dropped_; }
  const Event* data() const { return buf_.data(); }
  std::size_t capacity() const { return buf_.size(); }

 private:
  std::vector<Event> buf_;
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Everything one session observed, merged across rings.
struct TraceSnapshot {
  std::vector<Event> events;
  std::uint64_t dropped = 0;
};

#if GBO_TRACE

/// Runtime kill switch: GBO_TRACE env (unset/1 = on, 0 = off), overridable
/// from code. Emission is a single branch on this flag when off.
bool runtime_enabled();
void set_runtime_enabled(bool on);

/// Microseconds since the current session epoch (process start before the
/// first begin_session()).
std::uint64_t now_us();

/// Rewinds every registered ring and restamps the clock epoch. Must not
/// race active emission (call with the pool parked).
void begin_session();

/// Snapshots all rings (events sorted by start time). Rings keep
/// accumulating afterwards; the next begin_session() rewinds them.
TraceSnapshot end_session();

/// Process-wide count of ring-buffer creations. Steady-state serving must
/// not mint new rings: bench_serve gates the delta across a measured run.
std::uint64_t ring_allocs();

/// Ring capacity (events per thread) for rings created after the call;
/// default 1<<16, env GBO_TRACE_RING_CAP overrides. Test hook.
void set_ring_capacity(std::size_t cap);

/// Ensures the calling thread's ring exists without emitting anything.
/// Long-lived loops (serving worker blocks) call this on entry so the warm
/// run deterministically mints every ring the measured run will touch —
/// steady-state emission then never allocates.
void prime();

/// Emits an instant event on the calling thread's ring.
void emit(EventType type, std::uint64_t id, std::uint16_t a,
          std::uint64_t arg);

/// RAII span: records start on construction, emits on destruction with the
/// measured duration. No-op when tracing is off at runtime.
class Span {
 public:
  Span(EventType type, std::uint64_t id, std::uint16_t a, std::uint64_t arg)
      : type_(type), id_(id), a_(a), arg_(arg),
        start_(runtime_enabled() ? now_us() + 1 : 0) {}
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Updates the span's arg payload before it is emitted (e.g. rows
  /// executed, known only after the work ran).
  void set_arg(std::uint64_t arg) { arg_ = arg; }

 private:
  EventType type_;
  std::uint64_t id_;
  std::uint16_t a_;
  std::uint64_t arg_;
  std::uint64_t start_;  // now_us() + 1 at construction; 0 = disabled
};

#define GBO_TRACE_EVENT(type, id, a, arg) \
  ::gbo::obs::emit((type), (id), (a), (arg))
#define GBO_TRACE_CONCAT2(x, y) x##y
#define GBO_TRACE_CONCAT(x, y) GBO_TRACE_CONCAT2(x, y)
#define GBO_TRACE_SPAN(type, id, a, arg)                      \
  ::gbo::obs::Span GBO_TRACE_CONCAT(gbo_trace_span_, __LINE__)( \
      (type), (id), (a), (arg))

#else  // !GBO_TRACE — hooks compile away entirely.

inline bool runtime_enabled() { return false; }
inline void set_runtime_enabled(bool) {}
inline std::uint64_t now_us() { return 0; }
inline void begin_session() {}
inline TraceSnapshot end_session() { return {}; }
inline std::uint64_t ring_allocs() { return 0; }
inline void set_ring_capacity(std::size_t) {}
inline void prime() {}
inline void emit(EventType, std::uint64_t, std::uint16_t, std::uint64_t) {}

#define GBO_TRACE_EVENT(type, id, a, arg) ((void)0)
#define GBO_TRACE_SPAN(type, id, a, arg) ((void)0)

#endif  // GBO_TRACE

/// One causal tuple; the fingerprint is computed over a canonically sorted
/// set of these, so emission order (worker interleaving) cannot matter.
struct CausalTuple {
  std::uint64_t id = 0;
  std::uint8_t type = 0;
  std::uint16_t a = 0;
  std::uint64_t arg = 0;

  friend bool operator<(const CausalTuple& x, const CausalTuple& y) {
    if (x.id != y.id) return x.id < y.id;
    if (x.type != y.type) return x.type < y.type;
    if (x.a != y.a) return x.a < y.a;
    return x.arg < y.arg;
  }
};

/// FNV-1a 64 over the sorted tuples' bytes (id LE, type, a LE, arg LE).
/// Pure; shared by the trace collector and the planner-derived oracle.
std::uint64_t fingerprint_tuples(std::vector<CausalTuple> tuples);

/// Extracts the causal-class events of a snapshot and fingerprints them.
std::uint64_t causal_fingerprint(const std::vector<Event>& events);

/// Number of causal-class events in a snapshot.
std::size_t causal_event_count(const std::vector<Event>& events);

}  // namespace gbo::obs
