#include "obs/export.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <vector>

#include "serve/metrics.hpp"
#include "tensor/gemm_binary.hpp"

namespace gbo::obs {

namespace {

using serve::hex64;

bool is_span(EventType t) {
  switch (t) {
    case EventType::kBatch:
    case EventType::kStall:
    case EventType::kGemm:
    case EventType::kBinaryMvm:
    case EventType::kPulseEncode:
      return true;
    default:
      return false;
  }
}

bool is_kernel(EventType t) {
  return t == EventType::kGemm || t == EventType::kBinaryMvm ||
         t == EventType::kPulseEncode;
}

}  // namespace

Json chrome_trace(const TraceSnapshot& snap,
                  const std::string& process_name) {
  Json events = Json::array();

  Json pmeta = Json::object();
  pmeta.set("name", "process_name");
  pmeta.set("ph", "M");
  pmeta.set("pid", 0);
  Json pargs = Json::object();
  pargs.set("name", process_name);
  pmeta.set("args", pargs);
  events.push_back(pmeta);

  // One thread-name metadata record per track that actually has events.
  std::array<bool, 256> seen{};
  for (const Event& e : snap.events) {
    if (seen[e.tid]) continue;
    seen[e.tid] = true;
    Json tmeta = Json::object();
    tmeta.set("name", "thread_name");
    tmeta.set("ph", "M");
    tmeta.set("pid", 0);
    tmeta.set("tid", e.tid);
    Json targs = Json::object();
    targs.set("name", e.tid == 0 ? std::string("gbo-main")
                                 : "gbo-pool-" + std::to_string(e.tid));
    tmeta.set("args", targs);
    events.push_back(tmeta);
  }

  for (const Event& e : snap.events) {
    const auto type = static_cast<EventType>(e.type);
    Json ev = Json::object();
    ev.set("name", event_name(type));
    ev.set("cat", is_causal(type) ? "causal" : "timing");
    if (is_span(type)) {
      ev.set("ph", "X");
      ev.set("ts", e.t_us);
      ev.set("dur", e.dur_us);
    } else {
      ev.set("ph", "i");
      ev.set("ts", e.t_us);
      ev.set("s", "t");
    }
    ev.set("pid", 0);
    ev.set("tid", e.tid);
    Json args = Json::object();
    args.set("id", e.id);
    args.set("a", e.a);
    args.set("arg", e.arg);
    ev.set("args", args);
    events.push_back(ev);
  }

  Json doc = Json::object();
  doc.set("traceEvents", events);
  doc.set("displayTimeUnit", "ms");
  doc.set("dropped_events", snap.dropped);
  return doc;
}

bool write_chrome_trace(const TraceSnapshot& snap, const std::string& path,
                        const std::string& process_name) {
  return chrome_trace(snap, process_name).write_file(path);
}

Json trace_summary(const TraceSnapshot& snap) {
  Json j = Json::object();
  j.set("events", snap.events.size());
  j.set("dropped", snap.dropped);
  j.set("causal_events", causal_event_count(snap.events));
  j.set("causal_fingerprint", hex64(causal_fingerprint(snap.events)));

  // Per-stage counts (+ span-duration quantiles where the stage is a span).
  std::array<std::size_t, static_cast<std::size_t>(EventType::kCount)>
      counts{};
  std::array<std::vector<std::uint64_t>,
             static_cast<std::size_t>(EventType::kCount)>
      durs;
  for (const Event& e : snap.events) {
    counts[e.type] += 1;
    if (is_span(static_cast<EventType>(e.type)))
      durs[e.type].push_back(e.dur_us);
  }
  Json stages = Json::object();
  Json kernels = Json::object();
  for (std::size_t t = 0; t < counts.size(); ++t) {
    if (counts[t] == 0) continue;
    const auto type = static_cast<EventType>(t);
    Json s = Json::object();
    s.set("count", counts[t]);
    if (is_span(type)) {
      std::uint64_t total = 0;
      for (std::uint64_t d : durs[t]) total += d;
      s.set("total_us", total);
      const serve::LatencyStats st =
          serve::LatencyStats::compute(std::move(durs[t]));
      s.set("p50_us", st.p50_us);
      s.set("p95_us", st.p95_us);
      s.set("max_us", st.max_us);
    }
    if (is_kernel(type)) {
      // Binary MVM spans ran on the runtime-dispatched kernel; record which
      // one so the breakdown is self-describing like BENCH_mvm.json.
      if (type == EventType::kBinaryMvm)
        s.set("kernel", gemm::binary_kernel_name());
      kernels.set(event_name(type), s);
    }
    stages.set(event_name(type), s);
  }
  j.set("stages", stages);
  j.set("kernels", kernels);
  return j;
}

}  // namespace gbo::obs
