// Trace exporters (DESIGN.md §9).
//
// Two consumers, two shapes:
//   * chrome_trace() — the full event stream as a Chrome trace-event /
//     Perfetto JSON document (wall-clock timestamps, one thread track per
//     pool worker). Load in chrome://tracing or ui.perfetto.dev. This is
//     the "where did the p99 request spend its time?" view; bench_serve
//     and the serve demos write it behind --trace-out.
//   * trace_summary() — the aggregation pass: folds the same events into
//     per-stage span-duration stats and a kernel-time breakdown, plus the
//     causal fingerprint and drop counter, for embedding in the existing
//     BENCH_serve*.json (where tools/check_bench_gates.py gates it).
#pragma once

#include <string>

#include "common/json.hpp"
#include "obs/trace.hpp"

namespace gbo::obs {

/// Chrome trace-event JSON for the snapshot: ph:"X" spans, ph:"i"
/// instants, ph:"M" thread-name metadata. `process_name` labels the pid-0
/// track (e.g. the bench scenario name).
Json chrome_trace(const TraceSnapshot& snap, const std::string& process_name);

/// Writes chrome_trace() to `path` (pretty-printed); false on I/O failure.
bool write_chrome_trace(const TraceSnapshot& snap, const std::string& path,
                        const std::string& process_name);

/// Aggregated trace section for bench JSON: causal fingerprint (hex) and
/// causal event count, total events, ring drop counter, per-stage
/// span-duration stats ("stages"), and kernel-time breakdown ("kernels").
/// Callers append their own gate fields (fingerprint equality vs the
/// 1-worker run / planner oracle, steady-state ring-alloc delta).
Json trace_summary(const TraceSnapshot& snap);

}  // namespace gbo::obs
