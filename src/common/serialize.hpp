// Binary checkpoint format for model parameters and experiment artifacts.
//
// Format (little-endian):
//   magic "GBOCKPT1" (8 bytes)
//   u64 entry_count
//   per entry:
//     u32 name_len, name bytes
//     u32 ndim, u64 dims[ndim]
//     f32 data[prod(dims)]
//
// The format is self-describing enough for a state-dict round trip and is
// deliberately free of pointers/versioned structs so checkpoints stay
// forward compatible.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gbo {

/// One named tensor in a checkpoint.
struct NamedBlob {
  std::vector<std::size_t> shape;
  std::vector<float> data;
};

using StateDict = std::map<std::string, NamedBlob>;

/// Writes `state` to `path`. Returns false on I/O failure.
bool save_state_dict(const std::string& path, const StateDict& state);

/// Reads a checkpoint; throws std::runtime_error on malformed input,
/// returns empty optional-like flag via `ok`.
StateDict load_state_dict(const std::string& path, bool* ok = nullptr);

/// True if `path` exists and starts with the checkpoint magic.
bool is_checkpoint(const std::string& path);

}  // namespace gbo
