// Minimal JSON value + writer for machine-readable experiment outputs.
//
// Bench binaries print paper-style text tables and CSVs (common/table);
// this module adds a third, structured sink: every experiment can dump its
// full configuration + results as one JSON document so downstream tooling
// (plotting scripts, regression dashboards) does not have to re-parse CSV
// headers. Writing only — the library never consumes JSON, so no parser is
// shipped (smaller surface, nothing to fuzz).
//
// The value model is deliberately small: null, bool, number (double),
// string, array, object. Object keys keep insertion order so emitted
// documents are stable across runs (important for diffing artifacts).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace gbo {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Null value.
  Json() = default;

  // NOLINTBEGIN(google-explicit-constructor): implicit conversions are the
  // point of a JSON value type — they make literals like
  // `obj.set("sigma", 1.5)` work.
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(long v) : Json(static_cast<double>(v)) {}
  Json(long long v) : Json(static_cast<double>(v)) {}
  Json(unsigned v) : Json(static_cast<double>(v)) {}
  Json(unsigned long v) : Json(static_cast<double>(v)) {}
  Json(unsigned long long v) : Json(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  // NOLINTEND(google-explicit-constructor)

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  /// Array from any range of values convertible to Json.
  template <typename Range>
  static Json array_of(const Range& values) {
    Json j = array();
    for (const auto& v : values) j.push_back(Json(v));
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::logic_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array interface. push_back converts a null value into an array.
  Json& push_back(Json v);
  std::size_t size() const;
  const Json& at(std::size_t i) const;

  /// Object interface. set converts a null value into an object; setting an
  /// existing key overwrites in place (order preserved).
  Json& set(const std::string& key, Json v);
  bool contains(const std::string& key) const;
  const Json& at(const std::string& key) const;

  /// Serialization. `indent` <= 0 emits a compact single line; > 0 emits
  /// pretty-printed output with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Writes dump(indent) to `path`; returns false on I/O failure.
  bool write_file(const std::string& path, int indent = 2) const;

  /// JSON string escaping (shared with tests; handles control chars, quote,
  /// backslash; UTF-8 passes through).
  static std::string escape(const std::string& s);

  /// Number formatting: integral values print without a decimal point;
  /// non-finite values (which JSON cannot represent) print as null.
  static std::string format_number(double v);

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;  // insertion-ordered
};

}  // namespace gbo
