#include "common/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace gbo {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  specs_.push_back(Spec{name, help, "", /*is_flag=*/true});
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_desc) {
  specs_.push_back(Spec{name, help, default_desc, /*is_flag=*/false});
}

const CliParser::Spec* CliParser::find_spec(const std::string& name) const {
  for (const auto& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::optional<std::string> CliParser::raw_value(const std::string& name) const {
  for (const auto& [k, v] : values_) {
    if (k == name) return v;
  }
  return std::nullopt;
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  std::size_t width = 4;  // "help"
  for (const auto& s : specs_) width = std::max(width, s.name.size());
  for (const auto& s : specs_) {
    os << "  --" << s.name << std::string(width - s.name.size() + 2, ' ')
       << s.help;
    if (!s.default_desc.empty()) os << " (default: " << s.default_desc << ")";
    os << "\n";
  }
  os << "  --help" << std::string(width - 4 + 2, ' ')
     << "Print this message and exit\n";
  return os.str();
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string name = body;
    std::optional<std::string> inline_value;
    if (auto eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      inline_value = body.substr(eq + 1);
    }
    if (name == "help") {
      std::fputs(help_text().c_str(), stdout);
      exit_code_ = 0;
      return false;
    }
    const Spec* spec = find_spec(name);
    if (spec == nullptr) {
      std::fprintf(stderr, "%s: unknown flag --%s (see --help)\n",
                   program_.c_str(), name.c_str());
      exit_code_ = 2;
      return false;
    }
    std::string value;
    if (inline_value) {
      value = *inline_value;
    } else if (spec->is_flag) {
      value = "true";
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "%s: --%s requires a value\n", program_.c_str(),
                   name.c_str());
      exit_code_ = 2;
      return false;
    }
    values_.emplace_back(name, std::move(value));
  }
  return true;
}

bool CliParser::get_bool(const std::string& name) const {
  auto raw = raw_value(name);
  if (!raw) return false;
  return *raw != "false" && *raw != "0" && *raw != "no";
}

std::string CliParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  auto raw = raw_value(name);
  return raw ? *raw : fallback;
}

double CliParser::get_double(const std::string& name, double fallback) const {
  auto raw = raw_value(name);
  if (!raw) return fallback;
  char* end = nullptr;
  double v = std::strtod(raw->c_str(), &end);
  if (end == raw->c_str() || *end != '\0') {
    throw std::invalid_argument(program_ + ": --" + name +
                                " expects a number, got '" + *raw + "'");
  }
  return v;
}

std::int64_t CliParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  auto raw = raw_value(name);
  if (!raw) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0') {
    throw std::invalid_argument(program_ + ": --" + name +
                                " expects an integer, got '" + *raw + "'");
  }
  return v;
}

bool CliParser::has(const std::string& name) const {
  return raw_value(name).has_value();
}

void add_serve_trace_flags(CliParser& cli) {
  cli.add_option("trace-out", "Chrome trace JSON path prefix (empty disables)",
                 "");
}

}  // namespace gbo
