#include "common/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace gbo {
namespace {

constexpr char kMagic[8] = {'G', 'B', 'O', 'C', 'K', 'P', 'T', '1'};

template <typename T>
void write_pod(std::ofstream& f, T v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& f) {
  T v{};
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw std::runtime_error("checkpoint: truncated file");
  return v;
}

}  // namespace

bool save_state_dict(const std::string& path, const StateDict& state) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f.write(kMagic, sizeof(kMagic));
  write_pod<std::uint64_t>(f, state.size());
  for (const auto& [name, blob] : state) {
    write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(name.size()));
    f.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(blob.shape.size()));
    std::size_t numel = 1;
    for (auto d : blob.shape) {
      write_pod<std::uint64_t>(f, d);
      numel *= d;
    }
    if (numel != blob.data.size())
      throw std::runtime_error("checkpoint: shape/data mismatch for " + name);
    f.write(reinterpret_cast<const char*>(blob.data.data()),
            static_cast<std::streamsize>(blob.data.size() * sizeof(float)));
  }
  return static_cast<bool>(f);
}

StateDict load_state_dict(const std::string& path, bool* ok) {
  if (ok) *ok = false;
  StateDict state;
  std::ifstream f(path, std::ios::binary);
  if (!f) return state;
  char magic[8];
  f.read(magic, sizeof(magic));
  if (!f || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("checkpoint: bad magic in " + path);
  const auto count = read_pod<std::uint64_t>(f);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(f);
    std::string name(name_len, '\0');
    f.read(name.data(), name_len);
    if (!f) throw std::runtime_error("checkpoint: truncated name");
    const auto ndim = read_pod<std::uint32_t>(f);
    NamedBlob blob;
    std::size_t numel = 1;
    for (std::uint32_t d = 0; d < ndim; ++d) {
      const auto dim = read_pod<std::uint64_t>(f);
      blob.shape.push_back(static_cast<std::size_t>(dim));
      numel *= static_cast<std::size_t>(dim);
    }
    blob.data.resize(numel);
    f.read(reinterpret_cast<char*>(blob.data.data()),
           static_cast<std::streamsize>(numel * sizeof(float)));
    if (!f) throw std::runtime_error("checkpoint: truncated data for " + name);
    state.emplace(std::move(name), std::move(blob));
  }
  if (ok) *ok = true;
  return state;
}

bool is_checkpoint(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  char magic[8];
  f.read(magic, sizeof(magic));
  return f && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

}  // namespace gbo
