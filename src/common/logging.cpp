#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace gbo {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

double seconds_since_start() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%8.2fs %s] %s\n", seconds_since_start(),
               level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace gbo
