// Tiny command-line flag parser for the bench and example binaries.
//
// Every harness binary accepts the same kinds of knobs: `--quick` (shrink
// the workload for smoke runs), `--sigma=1.5`, `--epochs 10`, `--out
// table.csv`. This parser supports exactly that surface:
//   * long flags only (`--name`), with `--name=value` or `--name value`;
//   * typed lookups with defaults (flag absent -> default returned);
//   * boolean flags are presence-only (`--quick`), or explicit
//     `--quick=false` to override a script that appends flags;
//   * `--help` text generated from the registered flag descriptions;
//   * unknown flags are an error (a typo must not silently run the full
//     three-hour sweep with defaults).
//
// Usage:
//   CliParser cli("bench_table1", "Regenerates Table I.");
//   cli.add_flag("quick", "Reduced sample counts for smoke testing");
//   cli.add_option("sigma", "Override noise sigma", "calibrated");
//   if (!cli.parse(argc, argv)) return cli.exit_code();
//   bool quick = cli.get_bool("quick");
//   double sigma = cli.get_double("sigma", -1.0);
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gbo {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Registers a presence/boolean flag.
  void add_flag(const std::string& name, const std::string& help);

  /// Registers a value-carrying option. `default_desc` is only for --help
  /// display; typed defaults are supplied at get_* time.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_desc = "");

  /// Parses argv. Returns false if parsing failed or --help was requested;
  /// in both cases the appropriate text was printed and exit_code() tells
  /// the caller what to return from main (0 for --help, 2 for errors).
  bool parse(int argc, const char* const* argv);

  bool get_bool(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// True if the option appeared on the command line (vs falling back).
  bool has(const std::string& name) const;

  /// Positional arguments (everything that is not a --flag).
  const std::vector<std::string>& positional() const { return positional_; }

  int exit_code() const { return exit_code_; }

  /// The generated --help text (exposed for tests).
  std::string help_text() const;

 private:
  struct Spec {
    std::string name;
    std::string help;
    std::string default_desc;
    bool is_flag = false;
  };

  const Spec* find_spec(const std::string& name) const;
  std::optional<std::string> raw_value(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Spec> specs_;
  std::vector<std::pair<std::string, std::string>> values_;  // name -> raw
  std::vector<std::string> positional_;
  int exit_code_ = 0;
};

/// Registers the serving binaries' shared observability flags (currently
/// `--trace-out`, the Chrome trace JSON path prefix). The serve demos and
/// benches all export traces the same way; registering the flag here keeps
/// its name and help text in exactly one place.
void add_serve_trace_flags(CliParser& cli);

}  // namespace gbo
