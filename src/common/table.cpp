#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gbo {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto hline = [&] {
    std::string s = "+";
    for (auto w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      s += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = hline() + render_row(header_) + hline();
  for (const auto& row : rows_) out += render_row(row);
  out += hline();
  return out;
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    return out + "\"";
  };
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) oss << ',';
      oss << escape(row[c]);
    }
    oss << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

}  // namespace gbo
