#include "common/artifact_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

namespace gbo {

std::string artifact_dir() {
  std::string dir;
  if (const char* env = std::getenv("GBO_ARTIFACT_DIR"); env && *env) {
    dir = env;
  } else {
    dir = "artifacts";
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

std::string fingerprint_hash(const std::string& fingerprint) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : fingerprint) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::string artifact_path(const std::string& name, const std::string& fingerprint) {
  return artifact_dir() + "/" + name + "-" + fingerprint_hash(fingerprint) + ".ckpt";
}

bool artifact_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

}  // namespace gbo
