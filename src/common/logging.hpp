// Minimal leveled logger used by training loops and the benchmark harness.
//
// Intentionally tiny: a single global level, printf-style formatting via
// std::format-free concatenation, and timestamps relative to process start
// so bench output is easy to diff across runs.
#pragma once

#include <sstream>
#include <string>

namespace gbo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);

template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    detail::log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    detail::log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    detail::log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    detail::log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace gbo
