// Reproducible random number generation for the whole library.
//
// Every stochastic component (weight init, data generation, crossbar noise,
// dataloader shuffling) takes an explicit Rng so experiments are replayable
// bit-for-bit from a single seed. We use xoshiro256** (public domain,
// Blackman & Vigna) rather than std::mt19937 because it is faster, has a
// tiny state that is cheap to fork, and gives identical streams across
// standard library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>

namespace gbo {

/// Deterministic, fork-able pseudo random number generator (xoshiro256**).
///
/// Satisfies std::uniform_random_bit_generator so it can be handed to
/// standard algorithms (e.g. std::shuffle).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via splitmix64, which guarantees
  /// well-mixed state even for small consecutive seeds.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next 64 random bits.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive), lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Derives an independent child generator. Forking the same parent with
  /// the same `stream` id always yields the same child, which lets modules
  /// own private streams without coupling their consumption order.
  Rng fork(std::uint64_t stream) const;

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace gbo
