#include "common/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace gbo {

namespace {

// True while the current thread is executing blocks of a parallel_for;
// nested calls run inline to avoid deadlocking on the single shared job.
thread_local bool in_parallel_region = false;

// Stable id of this thread within the pool: 0 for the caller/main thread,
// 1..n-1 for spawned workers (assigned at spawn, reassigned on resize).
thread_local unsigned pool_worker_id = 0;

void name_current_thread(unsigned id) {
#if defined(__linux__)
  char name[16];  // pthread limit incl. NUL
  std::snprintf(name, sizeof(name), "gbo-pool-%u", id);
  pthread_setname_np(pthread_self(), name);
#else
  (void)id;
#endif
}

std::size_t default_num_threads() {
  if (const char* env = std::getenv("GBO_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void run_serial(std::size_t begin, std::size_t end, std::size_t grain,
                const std::function<void(std::size_t, std::size_t)>& fn) {
  for (std::size_t lo = begin; lo < end; lo += grain)
    fn(lo, lo + grain < end ? lo + grain : end);
}

// One parallel_for invocation. Immutable after construction except for the
// claim/progress atomics, so a worker that wakes late and grabs an already-
// finished job just sees an exhausted counter and goes back to sleep.
struct Job {
  Job(std::uint64_t id_, const std::function<void(std::size_t, std::size_t)>& fn_,
      std::size_t begin_, std::size_t end_, std::size_t grain_,
      std::size_t num_blocks_)
      : id(id_), fn(&fn_), begin(begin_), end(end_), grain(grain_),
        num_blocks(num_blocks_) {}

  const std::uint64_t id;
  // Borrowed from the caller; only dereferenced while a claimed block runs,
  // and parallel_for does not return (ending fn's lifetime) until every
  // block has finished.
  const std::function<void(std::size_t, std::size_t)>* fn;
  const std::size_t begin, end, grain, num_blocks;

  std::atomic<std::size_t> next_block{0};
  std::atomic<std::size_t> blocks_done{0};
  std::mutex err_mu;
  std::exception_ptr first_error;  // guarded by err_mu
};

// Claims and runs blocks until the job's counter is exhausted.
void run_blocks(Job& job) {
  in_parallel_region = true;
  std::size_t completed = 0;
  for (;;) {
    const std::size_t b = job.next_block.fetch_add(1, std::memory_order_relaxed);
    if (b >= job.num_blocks) break;
    const std::size_t lo = job.begin + b * job.grain;
    const std::size_t hi = lo + job.grain < job.end ? lo + job.grain : job.end;
    try {
      (*job.fn)(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.err_mu);
      if (!job.first_error) job.first_error = std::current_exception();
    }
    ++completed;
  }
  in_parallel_region = false;
  job.blocks_done.fetch_add(completed, std::memory_order_acq_rel);
}

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;   // workers wait here for a job
  std::condition_variable done_cv;   // the caller waits here for completion
  std::vector<std::thread> workers;
  std::shared_ptr<Job> current;      // guarded by mu
  std::uint64_t next_job_id = 1;
  bool shutting_down = false;

  // Serializes concurrent parallel_for callers (one job at a time).
  std::mutex job_mu;

  void worker_loop() {
    std::uint64_t seen_id = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] {
          return shutting_down || (current && current->id != seen_id);
        });
        if (shutting_down) return;
        job = current;
        seen_id = job->id;
      }
      run_blocks(*job);
      if (job->blocks_done.load(std::memory_order_acquire) == job->num_blocks) {
        std::lock_guard<std::mutex> lock(mu);
        done_cv.notify_all();
      }
    }
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lock(mu);
      shutting_down = true;
    }
    work_cv.notify_all();
    for (std::thread& t : workers) t.join();
    workers.clear();
    {
      std::lock_guard<std::mutex> lock(mu);
      shutting_down = false;
    }
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {
  set_num_threads(default_num_threads());
}

ThreadPool::~ThreadPool() {
  impl_->stop_workers();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::set_num_threads(std::size_t n) {
  if (n < 1) n = 1;
  std::lock_guard<std::mutex> job_lock(impl_->job_mu);  // no job in flight
  impl_->stop_workers();
  // The caller participates in every job, so a pool of n threads runs n-1
  // dedicated workers.
  num_threads_ = n;
  impl_->workers.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i)
    impl_->workers.emplace_back([this, i] {
      pool_worker_id = static_cast<unsigned>(i + 1);
      name_current_thread(pool_worker_id);
      impl_->worker_loop();
    });
}

unsigned ThreadPool::current_worker_id() { return pool_worker_id; }

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  const std::size_t num_blocks = (end - begin + grain - 1) / grain;
  if (num_threads_ == 1 || num_blocks == 1 || in_parallel_region) {
    run_serial(begin, end, grain, fn);
    return;
  }

  std::lock_guard<std::mutex> job_lock(impl_->job_mu);
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    job = std::make_shared<Job>(impl_->next_job_id++, fn, begin, end, grain,
                                num_blocks);
    impl_->current = job;
  }
  impl_->work_cv.notify_all();
  run_blocks(*job);  // the caller works too

  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->done_cv.wait(lock, [&] {
      return job->blocks_done.load(std::memory_order_acquire) ==
             job->num_blocks;
    });
    impl_->current.reset();
  }
  if (job->first_error) std::rethrow_exception(job->first_error);
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  ThreadPool::instance().parallel_for(begin, end, grain, fn);
}

}  // namespace gbo
