#include "common/rng.hpp"

namespace gbo {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for the span sizes used here (< 2^32).
  return lo + static_cast<std::int64_t>((*this)() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; reject u1 == 0 to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the parent's state with the stream id; do not advance the parent.
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 13) ^ (stream * 0xD2B74407B1CE6E93ull);
  return Rng(splitmix64(mix));
}

}  // namespace gbo
