#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace gbo {

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw std::logic_error("Json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) throw std::logic_error("Json: not a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw std::logic_error("Json: not a string");
  return str_;
}

Json& Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw std::logic_error("Json: not an array");
  arr_.push_back(std::move(v));
  return *this;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  throw std::logic_error("Json: size() on non-container");
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray) throw std::logic_error("Json: not an array");
  return arr_.at(i);
}

Json& Json::set(const std::string& key, Json v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw std::logic_error("Json: not an object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return *this;
}

bool Json::contains(const std::string& key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : obj_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) throw std::logic_error("Json: not an object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  throw std::out_of_range("Json: missing key '" + key + "'");
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string Json::format_number(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest representation that round-trips a double.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double parsed = std::strtod(buf, nullptr);
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == parsed) return shorter;
  }
  return buf;
}

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const std::string pad(pretty ? indent * (depth + 1) : 0, ' ');
  const std::string close_pad(pretty ? indent * depth : 0, ' ');
  const char* nl = pretty ? "\n" : "";
  const char* kv_sep = pretty ? ": " : ":";

  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += format_number(num_); break;
    case Type::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += pad;
        arr_[i].dump_impl(out, indent, depth + 1);
        if (i + 1 < arr_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        out += pad;
        out += '"';
        out += escape(obj_[i].first);
        out += '"';
        out += kv_sep;
        obj_[i].second.dump_impl(out, indent, depth + 1);
        if (i + 1 < obj_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

bool Json::write_file(const std::string& path, int indent) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << dump(indent) << '\n';
  return static_cast<bool>(f);
}

}  // namespace gbo
