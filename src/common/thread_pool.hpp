// Persistent worker pool with a deterministic parallel-for.
//
// Design constraints, in priority order:
//  1. Bitwise reproducibility at any thread count. parallel_for splits
//     [begin, end) into fixed-size blocks whose boundaries depend only on
//     `grain` — never on the number of workers — and every block is
//     processed exactly once by exactly one thread. Kernels that keep each
//     block's arithmetic self-contained (all of ours do) therefore produce
//     identical bits whether the pool has 1 or 64 threads.
//  2. No per-call thread spawn. Workers are started once and parked on a
//     condition variable; a parallel_for wakes them, the calling thread
//     works too, and everyone races down a shared atomic block counter.
//  3. Graceful degradation. Nested parallel_for calls (a threaded kernel
//     calling another threaded kernel) and single-thread pools run the
//     loop inline on the caller — no deadlock, no oversubscription.
//
// Thread count resolution: GBO_NUM_THREADS env var if set (>= 1),
// otherwise std::thread::hardware_concurrency(). Tests and benches can
// override at runtime with set_num_threads().
#pragma once

#include <cstddef>
#include <functional>

namespace gbo {

class ThreadPool {
 public:
  /// The process-wide pool. Lazily constructed on first use; workers are
  /// joined at process exit.
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// Resizes the worker set (joins the old workers first). Intended for
  /// tests and benches; callers must not race this with parallel_for.
  void set_num_threads(std::size_t n);

  /// Stable integer id of the calling thread within the pool: 0 for the
  /// main/calling thread (which participates in every job) and any thread
  /// the pool does not own, 1..n-1 for the spawned workers. Ids survive
  /// parking between jobs; set_num_threads reassigns them. Trace events
  /// and the Perfetto export use this as the thread track.
  static unsigned current_worker_id();

  /// Runs fn(lo, hi) over a deterministic partition of [begin, end) into
  /// blocks of `grain` (the final block may be short). Blocks are claimed
  /// dynamically by the workers and the calling thread; the call returns
  /// once every block has finished. The first exception thrown by any
  /// block is rethrown on the caller.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  ThreadPool();
  struct Impl;
  Impl* impl_;
  std::size_t num_threads_ = 1;
};

/// Convenience wrapper over ThreadPool::instance().parallel_for.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace gbo
