// Shared artifact cache for expensive intermediate results (pretrained
// checkpoints). Benchmark binaries for different tables reuse the same
// pretrained network; the cache keys artifacts by a config fingerprint so a
// changed experiment configuration never reuses a stale model.
#pragma once

#include <cstdint>
#include <string>

namespace gbo {

/// Returns the cache directory, creating it if needed. Resolution order:
///   1. $GBO_ARTIFACT_DIR if set
///   2. ./artifacts relative to the current working directory
std::string artifact_dir();

/// FNV-1a 64-bit hash of a string fingerprint, rendered as hex. Used to key
/// cache entries by experiment configuration.
std::string fingerprint_hash(const std::string& fingerprint);

/// Full path for a cache entry: <dir>/<name>-<hash>.ckpt
std::string artifact_path(const std::string& name, const std::string& fingerprint);

/// True if the file exists.
bool artifact_exists(const std::string& path);

}  // namespace gbo
