// Table writer used by the benchmark harness to print paper-style tables
// (aligned plain text to stdout) and to persist the same rows as CSV for
// post-processing. One Table instance corresponds to one paper table/figure
// series.
#pragma once

#include <string>
#include <vector>

namespace gbo {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the number of cells must equal the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats arithmetic values with fixed precision.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);

  /// Renders an aligned, boxed plain-text table.
  std::string to_text() const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string to_csv() const;

  /// Writes the CSV rendering to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gbo
