#include "gbo/scheme_search.hpp"

#include "common/logging.hpp"
#include "core/pipeline.hpp"
#include "nn/loss.hpp"
#include "tensor/ops.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace gbo::opt {

std::string SchemeCandidate::name() const {
  std::ostringstream os;
  os << (spec.scheme == enc::Scheme::kThermometer ? "TC" : "BS") << "-"
     << spec.num_pulses;
  return os.str();
}

std::vector<SchemeCandidate> default_mixed_candidates(std::size_t base_pulses) {
  std::vector<SchemeCandidate> out;
  // Thermometer at the paper's PLA pulse lengths {p/2 .. 2p}.
  for (double scale : {0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}) {
    SchemeCandidate c;
    c.spec.scheme = enc::Scheme::kThermometer;
    c.spec.num_pulses = enc::scaled_pulse_count(scale, base_pulses);
    out.push_back(c);
  }
  // Bit slicing carrying comparable information: 3 pulses ≈ 8 levels
  // (vs thermometer's 9 levels at 8 pulses), then 4 pulses = 16 levels.
  for (std::size_t p : {3, 4}) {
    SchemeCandidate c;
    c.spec.scheme = enc::Scheme::kBitSlicing;
    c.spec.num_pulses = p;
    out.push_back(c);
  }
  return out;
}

float evaluate_selection(const nn::Sequential& net,
                         xbar::LayerNoiseController& ctrl,
                         const std::vector<SchemeCandidate>& selection,
                         const data::Dataset& test, std::size_t trials,
                         std::size_t batch_size) {
  if (selection.size() != ctrl.num_layers())
    throw std::invalid_argument(
        "evaluate_selection: selection length does not match the network");
  std::vector<enc::EncodingSpec> specs;
  specs.reserve(selection.size());
  for (const SchemeCandidate& c : selection) specs.push_back(c.spec);
  ctrl.set_specs(specs);
  return core::evaluate_noisy(net, ctrl, test, trials, batch_size);
}

MixedLayerState::MixedLayerState(const MixedGboConfig& cfg, Rng rng)
    : cfg_(cfg), rng_(rng) {
  if (cfg_.candidates.empty())
    throw std::invalid_argument("MixedGbo: empty candidate set");
  lambda_ = nn::Param("lambda", Tensor({cfg_.candidates.size()}));
}

std::vector<double> MixedLayerState::alpha() const {
  const std::size_t m = cfg_.candidates.size();
  std::vector<double> a(m);
  double mx = lambda_.value[0];
  for (std::size_t k = 1; k < m; ++k)
    mx = std::max(mx, static_cast<double>(lambda_.value[k]));
  double denom = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    a[k] = std::exp(static_cast<double>(lambda_.value[k]) - mx);
    denom += a[k];
  }
  for (double& v : a) v /= denom;
  return a;
}

void MixedLayerState::on_forward(Tensor& out) {
  const std::size_t m = cfg_.candidates.size();
  cached_alpha_ = alpha();
  cached_noise_.assign(m, Tensor());
  for (std::size_t k = 0; k < m; ++k) {
    const double std =
        cfg_.sigma * std::sqrt(cfg_.candidates[k].variance_factor());
    Tensor eps(out.shape());
    ops::fill_normal(eps, rng_, 0.0f, static_cast<float>(std));
    ops::axpy_inplace(out, static_cast<float>(cached_alpha_[k]), eps);
    cached_noise_[k] = std::move(eps);
  }
}

void MixedLayerState::on_backward(const Tensor& grad_out) {
  const std::size_t m = cfg_.candidates.size();
  if (cached_noise_.size() != m)
    throw std::logic_error("MixedLayerState: backward without forward");
  std::vector<double> c(m, 0.0);
  for (std::size_t k = 0; k < m; ++k) {
    const float* g = grad_out.data();
    const float* e = cached_noise_[k].data();
    double acc = 0.0;
    for (std::size_t i = 0; i < grad_out.numel(); ++i)
      acc += static_cast<double>(g[i]) * e[i];
    c[k] = acc;
  }
  double mean_c = 0.0;
  for (std::size_t k = 0; k < m; ++k) mean_c += cached_alpha_[k] * c[k];
  for (std::size_t j = 0; j < m; ++j)
    lambda_.grad[j] +=
        static_cast<float>(cached_alpha_[j] * (c[j] - mean_c));
}

void MixedLayerState::accumulate_latency_grad() {
  const std::size_t m = cfg_.candidates.size();
  const auto a = alpha();
  double expected = 0.0;
  for (std::size_t k = 0; k < m; ++k)
    expected += a[k] * static_cast<double>(cfg_.candidates[k].pulses());
  for (std::size_t j = 0; j < m; ++j)
    lambda_.grad[j] += static_cast<float>(
        cfg_.gamma * a[j] *
        (static_cast<double>(cfg_.candidates[j].pulses()) - expected));
}

double MixedLayerState::expected_pulses() const {
  const auto a = alpha();
  double expected = 0.0;
  for (std::size_t k = 0; k < cfg_.candidates.size(); ++k)
    expected += a[k] * static_cast<double>(cfg_.candidates[k].pulses());
  return expected;
}

std::size_t MixedLayerState::selected_index() const {
  std::size_t best = 0;
  for (std::size_t k = 1; k < cfg_.candidates.size(); ++k)
    if (lambda_.value[k] > lambda_.value[best]) best = k;
  return best;
}

const SchemeCandidate& MixedLayerState::selected() const {
  return cfg_.candidates[selected_index()];
}

MixedGboTrainer::MixedGboTrainer(nn::Sequential& net,
                                 std::vector<quant::Hookable*> encoded_layers,
                                 MixedGboConfig cfg)
    : net_(net), layers_(std::move(encoded_layers)), cfg_(std::move(cfg)) {
  Rng rng(cfg_.seed);
  states_.reserve(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    states_.push_back(std::make_unique<MixedLayerState>(cfg_, rng.fork(i + 1)));
    layers_[i]->set_noise_hook(states_[i].get());
  }
  for (nn::Param* p : net_.params()) {
    saved_requires_grad_.push_back(p->requires_grad);
    p->requires_grad = false;
  }
  net_.set_training(false);
}

MixedGboTrainer::~MixedGboTrainer() {
  for (auto* layer : layers_) layer->set_noise_hook(nullptr);
  auto params = net_.params();
  for (std::size_t i = 0;
       i < params.size() && i < saved_requires_grad_.size(); ++i)
    params[i]->requires_grad = saved_requires_grad_[i];
}

std::vector<GboEpochStats> MixedGboTrainer::train(const data::Dataset& train) {
  std::vector<nn::Param*> lambdas;
  lambdas.reserve(states_.size());
  for (auto& st : states_) lambdas.push_back(&st->lambda());
  nn::Adam opt(lambdas, cfg_.lr);

  Rng loader_rng(cfg_.seed ^ 0xABCDEF);
  data::DataLoader loader(train, cfg_.batch_size, /*shuffle=*/true,
                          loader_rng);

  std::vector<GboEpochStats> history;
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    GboEpochStats stats;
    std::size_t batches = 0, correct = 0, seen = 0;
    loader.reset();
    data::Batch batch;
    while (loader.next(batch)) {
      opt.zero_grad();
      Tensor logits = net_.forward(batch.images);
      Tensor grad;
      const float ce =
          nn::CrossEntropy::forward_backward(logits, batch.labels, grad);
      net_.backward(grad);
      for (auto& st : states_) st->accumulate_latency_grad();
      opt.step();

      stats.loss_ce += ce;
      const auto preds = ops::argmax_rows(logits);
      for (std::size_t i = 0; i < preds.size(); ++i)
        if (preds[i] == batch.labels[i]) ++correct;
      seen += preds.size();
      ++batches;
    }
    stats.loss_ce /= static_cast<float>(batches);
    stats.train_accuracy =
        static_cast<float>(correct) / static_cast<float>(seen);
    double total_expected = 0.0, latency_loss = 0.0;
    for (auto& st : states_) {
      const double e = st->expected_pulses();
      total_expected += e;
      latency_loss += cfg_.gamma * e;
    }
    stats.loss_latency = static_cast<float>(latency_loss);
    stats.avg_expected_pulses =
        total_expected / static_cast<double>(states_.size());
    history.push_back(stats);
    log_info("MixedGBO epoch ", epoch + 1, "/", cfg_.epochs,
             " ce=", stats.loss_ce,
             " avg_pulses=", stats.avg_expected_pulses);
  }
  return history;
}

std::vector<SchemeCandidate> MixedGboTrainer::selected() const {
  std::vector<SchemeCandidate> out;
  out.reserve(states_.size());
  for (const auto& st : states_) out.push_back(st->selected());
  return out;
}

std::vector<std::size_t> MixedGboTrainer::selected_pulses() const {
  std::vector<std::size_t> out;
  out.reserve(states_.size());
  for (const auto& st : states_) out.push_back(st->selected().pulses());
  return out;
}

double MixedGboTrainer::avg_selected_pulses() const {
  double acc = 0.0;
  for (const auto& st : states_)
    acc += static_cast<double>(st->selected().pulses());
  return states_.empty() ? 0.0 : acc / static_cast<double>(states_.size());
}

std::string MixedGboTrainer::selection_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (i) os << ", ";
    os << states_[i]->selected().name();
  }
  os << "]";
  return os.str();
}

}  // namespace gbo::opt
