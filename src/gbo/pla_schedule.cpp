#include "gbo/pla_schedule.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace gbo::opt {

double PulseSchedule::average() const {
  if (per_layer.empty()) return 0.0;
  return static_cast<double>(total()) / static_cast<double>(per_layer.size());
}

std::size_t PulseSchedule::total() const {
  return std::accumulate(per_layer.begin(), per_layer.end(), std::size_t{0});
}

std::size_t PulseSchedule::max_pulses() const {
  return per_layer.empty()
             ? 0
             : *std::max_element(per_layer.begin(), per_layer.end());
}

std::string PulseSchedule::to_string() const {
  std::ostringstream oss;
  oss << "[";
  for (std::size_t i = 0; i < per_layer.size(); ++i) {
    if (i) oss << ", ";
    oss << per_layer[i];
  }
  oss << "]";
  return oss.str();
}

PulseSchedule uniform_schedule(std::size_t layers, std::size_t pulses) {
  return PulseSchedule{std::vector<std::size_t>(layers, pulses)};
}

}  // namespace gbo::opt
