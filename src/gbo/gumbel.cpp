#include "gbo/gumbel.hpp"

#include "common/logging.hpp"
#include "nn/loss.hpp"
#include "tensor/ops.hpp"

#include <cmath>
#include <stdexcept>

namespace gbo::opt {

namespace {

/// Gumbel(0, 1) sample: -log(-log U), U ~ Uniform(0, 1).
double sample_gumbel(Rng& rng) {
  // Guard the log against U == 0 (uniform() is in [0, 1)).
  double u = rng.uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(-std::log(u));
}

}  // namespace

GumbelLayerState::GumbelLayerState(const GumbelConfig& cfg, Rng rng)
    : cfg_(cfg), pulses_(cfg.base.pulse_lengths()), rng_(rng),
      tau_(cfg.tau_start) {
  if (pulses_.empty())
    throw std::invalid_argument("GumbelGbo: empty scale set");
  if (cfg_.tau_start <= 0.0 || cfg_.tau_end <= 0.0)
    throw std::invalid_argument("GumbelGbo: temperatures must be positive");
  lambda_ = nn::Param("lambda", Tensor({pulses_.size()}));
}

void GumbelLayerState::set_temperature(double tau) {
  if (tau <= 0.0)
    throw std::invalid_argument("GumbelGbo: temperature must be positive");
  tau_ = tau;
}

std::vector<double> GumbelLayerState::alpha() const {
  const std::size_t m = pulses_.size();
  std::vector<double> a(m);
  double mx = lambda_.value[0];
  for (std::size_t k = 1; k < m; ++k)
    mx = std::max(mx, static_cast<double>(lambda_.value[k]));
  double denom = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    a[k] = std::exp(static_cast<double>(lambda_.value[k]) - mx);
    denom += a[k];
  }
  for (double& v : a) v /= denom;
  return a;
}

void GumbelLayerState::on_forward(Tensor& out) {
  const std::size_t m = pulses_.size();
  // Relaxed one-hot sample y = softmax((λ + g)/τ).
  std::vector<double> logits(m);
  for (std::size_t k = 0; k < m; ++k)
    logits[k] =
        (static_cast<double>(lambda_.value[k]) + sample_gumbel(rng_)) / tau_;
  double mx = logits[0];
  for (std::size_t k = 1; k < m; ++k) mx = std::max(mx, logits[k]);
  cached_y_.assign(m, 0.0);
  double denom = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    cached_y_[k] = std::exp(logits[k] - mx);
    denom += cached_y_[k];
  }
  for (double& v : cached_y_) v /= denom;

  // Per-scheme noise samples (needed for the backward pass either way).
  cached_noise_.assign(m, Tensor());
  for (std::size_t k = 0; k < m; ++k) {
    const double std = cfg_.base.sigma /
                       std::sqrt(static_cast<double>(pulses_[k]));
    Tensor eps(out.shape());
    ops::fill_normal(eps, rng_, 0.0f, static_cast<float>(std));
    cached_noise_[k] = std::move(eps);
  }

  if (cfg_.hard) {
    // Straight-through: the forward pass adds exactly one scheme's noise
    // (what inference does); gradients pretend the soft mixture was used.
    std::size_t j = 0;
    for (std::size_t k = 1; k < m; ++k)
      if (cached_y_[k] > cached_y_[j]) j = k;
    ops::axpy_inplace(out, 1.0f, cached_noise_[j]);
  } else {
    for (std::size_t k = 0; k < m; ++k)
      ops::axpy_inplace(out, static_cast<float>(cached_y_[k]),
                        cached_noise_[k]);
  }
}

void GumbelLayerState::on_backward(const Tensor& grad_out) {
  const std::size_t m = pulses_.size();
  if (cached_noise_.size() != m || cached_y_.size() != m)
    throw std::logic_error("GumbelLayerState: backward without forward");

  // Through the relaxation, out = Σ y_k ε_k with y = softmax(z/τ),
  // z = λ + g. With c_k = <grad_out, ε_k>:
  //   ∂L/∂λ_j = (1/τ) · y_j (c_j - Σ_k y_k c_k).
  std::vector<double> c(m, 0.0);
  for (std::size_t k = 0; k < m; ++k) {
    const float* g = grad_out.data();
    const float* e = cached_noise_[k].data();
    double acc = 0.0;
    for (std::size_t i = 0; i < grad_out.numel(); ++i)
      acc += static_cast<double>(g[i]) * e[i];
    c[k] = acc;
  }
  double mean_c = 0.0;
  for (std::size_t k = 0; k < m; ++k) mean_c += cached_y_[k] * c[k];
  for (std::size_t j = 0; j < m; ++j)
    lambda_.grad[j] +=
        static_cast<float>(cached_y_[j] * (c[j] - mean_c) / tau_);
}

void GumbelLayerState::accumulate_latency_grad() {
  const std::size_t m = pulses_.size();
  if (cached_y_.size() != m) return;  // no forward yet this step
  double expected = 0.0;
  for (std::size_t k = 0; k < m; ++k)
    expected += cached_y_[k] * static_cast<double>(pulses_[k]);
  for (std::size_t j = 0; j < m; ++j)
    lambda_.grad[j] += static_cast<float>(
        cfg_.base.gamma * cached_y_[j] *
        (static_cast<double>(pulses_[j]) - expected) / tau_);
}

double GumbelLayerState::expected_pulses() const {
  const auto a = alpha();
  double expected = 0.0;
  for (std::size_t k = 0; k < pulses_.size(); ++k)
    expected += a[k] * static_cast<double>(pulses_[k]);
  return expected;
}

std::size_t GumbelLayerState::selected_scheme() const {
  std::size_t best = 0;
  for (std::size_t k = 1; k < pulses_.size(); ++k)
    if (lambda_.value[k] > lambda_.value[best]) best = k;
  return best;
}

std::size_t GumbelLayerState::selected_pulses() const {
  return pulses_[selected_scheme()];
}

GumbelGboTrainer::GumbelGboTrainer(nn::Sequential& net,
                                   std::vector<quant::Hookable*> encoded_layers,
                                   GumbelConfig cfg)
    : net_(net), layers_(std::move(encoded_layers)), cfg_(cfg) {
  Rng rng(cfg_.base.seed);
  states_.reserve(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    states_.push_back(
        std::make_unique<GumbelLayerState>(cfg_, rng.fork(i + 1)));
    layers_[i]->set_noise_hook(states_[i].get());
  }
  for (nn::Param* p : net_.params()) {
    saved_requires_grad_.push_back(p->requires_grad);
    p->requires_grad = false;
  }
  net_.set_training(false);
}

GumbelGboTrainer::~GumbelGboTrainer() {
  for (auto* layer : layers_) layer->set_noise_hook(nullptr);
  auto params = net_.params();
  for (std::size_t i = 0;
       i < params.size() && i < saved_requires_grad_.size(); ++i)
    params[i]->requires_grad = saved_requires_grad_[i];
}

double GumbelGboTrainer::temperature_at(std::size_t epoch) const {
  const std::size_t total = cfg_.base.epochs;
  if (total <= 1) return cfg_.tau_end;
  const double frac =
      static_cast<double>(epoch) / static_cast<double>(total - 1);
  return cfg_.tau_start *
         std::pow(cfg_.tau_end / cfg_.tau_start, frac);
}

std::vector<GboEpochStats> GumbelGboTrainer::train(const data::Dataset& train) {
  std::vector<nn::Param*> lambdas;
  lambdas.reserve(states_.size());
  for (auto& st : states_) lambdas.push_back(&st->lambda());
  nn::Adam opt(lambdas, cfg_.base.lr);

  Rng loader_rng(cfg_.base.seed ^ 0xABCDEF);
  data::DataLoader loader(train, cfg_.base.batch_size, /*shuffle=*/true,
                          loader_rng);

  std::vector<GboEpochStats> history;
  for (std::size_t epoch = 0; epoch < cfg_.base.epochs; ++epoch) {
    const double tau = temperature_at(epoch);
    for (auto& st : states_) st->set_temperature(tau);

    GboEpochStats stats;
    std::size_t batches = 0, correct = 0, seen = 0;
    loader.reset();
    data::Batch batch;
    while (loader.next(batch)) {
      opt.zero_grad();
      Tensor logits = net_.forward(batch.images);
      Tensor grad;
      const float ce =
          nn::CrossEntropy::forward_backward(logits, batch.labels, grad);
      net_.backward(grad);
      for (auto& st : states_) st->accumulate_latency_grad();
      opt.step();

      stats.loss_ce += ce;
      const auto preds = ops::argmax_rows(logits);
      for (std::size_t i = 0; i < preds.size(); ++i)
        if (preds[i] == batch.labels[i]) ++correct;
      seen += preds.size();
      ++batches;
    }
    stats.loss_ce /= static_cast<float>(batches);
    stats.train_accuracy =
        static_cast<float>(correct) / static_cast<float>(seen);
    double total_expected = 0.0, latency_loss = 0.0;
    for (auto& st : states_) {
      const double e = st->expected_pulses();
      total_expected += e;
      latency_loss += cfg_.base.gamma * e;
    }
    stats.loss_latency = static_cast<float>(latency_loss);
    stats.avg_expected_pulses =
        total_expected / static_cast<double>(states_.size());
    history.push_back(stats);
    log_info("GumbelGBO epoch ", epoch + 1, "/", cfg_.base.epochs,
             " tau=", tau, " ce=", stats.loss_ce,
             " avg_pulses=", stats.avg_expected_pulses);
  }
  return history;
}

std::vector<std::size_t> GumbelGboTrainer::selected_pulses() const {
  std::vector<std::size_t> out;
  out.reserve(states_.size());
  for (const auto& st : states_) out.push_back(st->selected_pulses());
  return out;
}

double GumbelGboTrainer::avg_selected_pulses() const {
  double acc = 0.0;
  for (const auto& st : states_)
    acc += static_cast<double>(st->selected_pulses());
  return states_.empty() ? 0.0 : acc / static_cast<double>(states_.size());
}

}  // namespace gbo::opt
