// Gumbel-softmax variant of GBO (optimizer ablation).
//
// The paper's GBO (Eq. 5) propagates the *expectation* over encoding
// schemes: every forward pass adds the full α-weighted mixture of the m
// per-scheme noise samples. The standard alternative from differentiable
// architecture search is to *sample* one scheme per forward pass with the
// Gumbel-softmax reparameterization:
//     y = softmax((λ + g) / τ),  g_k ~ Gumbel(0, 1),
// annealing the temperature τ so y moves from near-uniform mixing to
// near-one-hot selection. With `hard = true` (straight-through), the forward
// pass adds only the argmax scheme's noise — exactly what inference will do
// — while the backward pass differentiates through the soft y.
//
// The ablation question (bench_ablation_optimizer): does the extra variance
// of sampling buy a better schedule than the paper's smooth mixture, at
// equal epochs? This mirrors the softmax-vs-Gumbel choice every
// DARTS-family method has to make.
#pragma once

#include "gbo/gbo.hpp"

namespace gbo::opt {

struct GumbelConfig {
  GboConfig base;          // shared search space / loss parameters
  double tau_start = 5.0;  // initial temperature (smooth)
  double tau_end = 0.5;    // final temperature (nearly one-hot)
  bool hard = true;        // straight-through: forward uses argmax sample
};

/// Per-layer Gumbel-softmax state; drop-in replacement for GboLayerState.
class GumbelLayerState : public quant::MvmNoiseHook {
 public:
  GumbelLayerState(const GumbelConfig& cfg, Rng rng);

  /// Adds the sampled-scheme noise (hard) or the y-weighted mixture (soft).
  void on_forward(Tensor& out) override;

  /// Accumulates ∂L_ce/∂λ through the Gumbel-softmax relaxation.
  void on_backward(const Tensor& grad_out) override;

  /// Latency-regularizer gradient, using the last forward's sampled y.
  void accumulate_latency_grad();

  void set_temperature(double tau);
  double temperature() const { return tau_; }

  /// Softmax probabilities of λ alone (no Gumbel noise) — the selection
  /// distribution at inference time.
  std::vector<double> alpha() const;
  double expected_pulses() const;
  std::size_t selected_scheme() const;
  std::size_t selected_pulses() const;

  nn::Param& lambda() { return lambda_; }
  const std::vector<std::size_t>& pulses() const { return pulses_; }

  /// The relaxed sample y of the most recent forward (tests).
  const std::vector<double>& last_sample() const { return cached_y_; }

 private:
  GumbelConfig cfg_;
  std::vector<std::size_t> pulses_;
  nn::Param lambda_;
  Rng rng_;
  double tau_;
  std::vector<Tensor> cached_noise_;
  std::vector<double> cached_y_;
};

/// λ-only training with Gumbel-softmax sampling and temperature annealing.
/// Interface mirrors GboTrainer so benches can swap optimizers.
class GumbelGboTrainer {
 public:
  GumbelGboTrainer(nn::Sequential& net,
                   std::vector<quant::Hookable*> encoded_layers,
                   GumbelConfig cfg);
  ~GumbelGboTrainer();

  GumbelGboTrainer(const GumbelGboTrainer&) = delete;
  GumbelGboTrainer& operator=(const GumbelGboTrainer&) = delete;

  std::vector<GboEpochStats> train(const data::Dataset& train);

  std::vector<std::size_t> selected_pulses() const;
  double avg_selected_pulses() const;

  /// Exponential annealing schedule τ(e) = τ0 · (τ1/τ0)^(e/(E-1)).
  double temperature_at(std::size_t epoch) const;

  GumbelLayerState& layer_state(std::size_t i) { return *states_.at(i); }
  std::size_t num_layers() const { return states_.size(); }

 private:
  nn::Sequential& net_;
  std::vector<quant::Hookable*> layers_;
  GumbelConfig cfg_;
  std::vector<std::unique_ptr<GumbelLayerState>> states_;
  std::vector<bool> saved_requires_grad_;
};

}  // namespace gbo::opt
