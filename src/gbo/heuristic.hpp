// Sensitivity-guided heuristic schedule — the manual baseline GBO is
// claimed to generalize over (paper contribution (2): "compared to a
// heuristic approach (e.g., manually selecting bit encoding for each
// layer), our work provides a more general solution").
//
// The heuristic does what a careful engineer would: run the Fig. 2
// layer-isolation experiment on a validation set, then hand each layer a
// pulse budget proportional to its measured sensitivity, subject to the
// same average-latency budget and the same realizable pulse set as GBO.
// The γ-ablation bench pits it against GBO directly.
#pragma once

#include "crossbar/crossbar_layers.hpp"
#include "data/dataset.hpp"
#include "nn/sequential.hpp"

#include <vector>

namespace gbo::opt {

/// Per-layer accuracy drop when noise is isolated at that layer
/// (clean_accuracy - isolated_accuracy, clamped at >= 0). Each layer's
/// noise trials run concurrently on the shared thread pool via
/// core::evaluate_noisy — bitwise identical at any GBO_NUM_THREADS.
std::vector<double> layer_sensitivity(nn::Sequential& net,
                                      xbar::LayerNoiseController& ctrl,
                                      const data::Dataset& val, double sigma,
                                      std::size_t trials = 2);

/// Allocates pulse counts from `pulse_set` (sorted ascending) so that more
/// sensitive layers get longer codes while the schedule's average stays at
/// or below `avg_budget`. Greedy: start everyone at the shortest code, then
/// repeatedly upgrade the most sensitive layer (by remaining sensitivity
/// mass) that still fits the budget.
std::vector<std::size_t> sensitivity_guided_schedule(
    const std::vector<double>& sensitivity,
    const std::vector<std::size_t>& pulse_set, double avg_budget);

}  // namespace gbo::opt
