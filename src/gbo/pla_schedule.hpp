// Latency accounting for pulse schedules (supports the Table I/II
// "Avg.#pulses" column and the γ ablation).
//
// A pulse schedule is the per-layer thermometer pulse count a configuration
// runs with. Crossbar layers execute sequentially at one pulse per cycle,
// so a layer's latency contribution is its pulse count; the paper reports
// the unweighted average across encoded layers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gbo::opt {

struct PulseSchedule {
  std::vector<std::size_t> per_layer;

  double average() const;
  std::size_t total() const;
  std::size_t max_pulses() const;

  /// "[10, 10, 8, 10, 10, 4, 6]" — the Table I formatting.
  std::string to_string() const;
};

/// Uniform schedule (baseline / PLA-n rows of Table I).
PulseSchedule uniform_schedule(std::size_t layers, std::size_t pulses);

}  // namespace gbo::opt
