// Black-box schedule-search baselines (optimizer ablation).
//
// The paper's contribution (2) claims gradient-based optimization beats
// heuristic per-layer selection. These baselines quantify that claim from
// the other side: they search the same per-layer pulse-length space
// *without* gradients, treating noisy evaluation accuracy as an oracle.
// All searchers consume the same budget unit — one full noisy evaluation
// of one candidate schedule — so bench_ablation_optimizer can compare
// GBO / Gumbel / random / evolutionary / greedy at equal cost.
//
// The scalar objective mirrors Eq. 6's two terms:
//     J(schedule) = accuracy(%) − latency_weight · avg_pulses,
// so latency_weight plays the role of γ (in %-accuracy per pulse units).
#pragma once

#include "core/pipeline.hpp"
#include "crossbar/crossbar_layers.hpp"
#include "data/dataset.hpp"

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace gbo::opt {

/// Budgeted, memoized oracle: schedule -> Eq. 6-style objective.
class ScheduleEvaluator {
 public:
  /// `ctrl` must already be attached to `net`'s encoded layers and have its
  /// σ configured. Each distinct schedule costs one budget unit (repeat
  /// queries hit the memo and are free — real hardware would also cache).
  /// The `trials` noise draws of one evaluation run concurrently on the
  /// shared thread pool (core::evaluate_noisy), so oracle answers are
  /// bitwise identical at any GBO_NUM_THREADS.
  ScheduleEvaluator(nn::Sequential& net, xbar::LayerNoiseController& ctrl,
                    const data::Dataset& eval_set, double latency_weight,
                    std::size_t trials = 1, std::size_t batch_size = 64);

  /// Objective J = accuracy% − latency_weight · avg_pulses.
  double objective(const std::vector<std::size_t>& pulses);

  /// Accuracy (%) of the most recent distinct evaluation of `pulses`;
  /// evaluates if not memoized.
  double accuracy(const std::vector<std::size_t>& pulses);

  std::size_t num_layers() const { return ctrl_.num_layers(); }
  std::size_t evaluations() const { return evals_; }

 private:
  struct Entry {
    double accuracy_pct;
    double objective;
  };
  const Entry& lookup(const std::vector<std::size_t>& pulses);

  nn::Sequential& net_;
  xbar::LayerNoiseController& ctrl_;
  const data::Dataset& eval_set_;
  double latency_weight_;
  std::size_t trials_;
  std::size_t batch_size_;
  std::size_t evals_ = 0;
  std::map<std::vector<std::size_t>, Entry> memo_;
};

struct SearchConfig {
  std::vector<std::size_t> candidates;  // allowed pulse counts per layer
  std::size_t budget = 60;              // distinct schedule evaluations
  std::uint64_t seed = 33;

  // Evolutionary-search knobs.
  std::size_t population = 8;   // parents kept per generation (μ)
  std::size_t offspring = 8;    // children per generation (λ)
  double mutation_rate = 0.3;   // per-layer probability of mutating
};

struct SearchResult {
  std::string method;
  std::vector<std::size_t> best;   // best schedule found
  double best_objective = -1e300;
  double best_accuracy = 0.0;      // accuracy(%) of `best`
  std::size_t evaluations = 0;     // budget actually consumed
  /// best_objective after each evaluation (anytime curve for plots).
  std::vector<double> trace;
};

/// Uniform random schedules until the budget is exhausted.
SearchResult random_search(ScheduleEvaluator& eval, const SearchConfig& cfg);

/// (μ + λ) evolutionary search: truncation selection, per-layer mutation
/// to a neighboring candidate (or a uniform resample with small
/// probability). Population seeded with uniform schedules, one per
/// candidate pulse count.
SearchResult evolutionary_search(ScheduleEvaluator& eval,
                                 const SearchConfig& cfg);

/// Cyclic greedy coordinate descent from the uniform base-pulse schedule:
/// sweeps layers in order, trying every candidate at that layer and keeping
/// the best, until the budget runs out or a full sweep makes no change.
SearchResult greedy_coordinate_descent(ScheduleEvaluator& eval,
                                       const SearchConfig& cfg);

}  // namespace gbo::opt
