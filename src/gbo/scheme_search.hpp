// Joint (encoding scheme × pulse length) search — 2-D extension of GBO.
//
// The paper fixes Thermometer coding and searches only the pulse *length*
// per layer. But its own Eq. 2/3 analysis prices every (scheme, pulses)
// pair: a candidate's accumulated noise variance is σ² · Σw_i²/(Σw_i)²,
// and its latency is its pulse count. Nothing in the λ/softmax machinery
// requires candidates to share a scheme, so this module generalizes the
// search space to arbitrary mixed candidate lists, e.g.
//     {TC-4, TC-8, TC-16, BS-4, BS-8}
// and lets gradient descent decide per layer whether a cheaper bit-sliced
// code (fewer pulses for the same levels, but a worse variance factor)
// beats a longer thermometer code. The per-candidate variance factor comes
// from EncodingSpec::noise_variance_factor(), so the same code path prices
// any future encoding that defines pulse weights.
//
// This implements the paper's future-work direction implicitly raised by
// Fig. 1b (why not pick the encoding per layer too?) and powers
// bench_ext_scheme.
#pragma once

#include "common/rng.hpp"
#include "crossbar/crossbar_layers.hpp"
#include "data/dataloader.hpp"
#include "encoding/pulse_train.hpp"
#include "gbo/gbo.hpp"
#include "nn/optim.hpp"
#include "nn/sequential.hpp"
#include "quant/quant_layers.hpp"

#include <memory>
#include <string>
#include <vector>

namespace gbo::opt {

/// One point of the mixed search space.
struct SchemeCandidate {
  enc::EncodingSpec spec;

  /// Accumulated noise variance as a multiple of σ² (Eq. 2/3).
  double variance_factor() const { return spec.noise_variance_factor(); }
  std::size_t pulses() const { return spec.num_pulses; }
  std::string name() const;

  bool operator==(const SchemeCandidate&) const = default;
};

/// The default mixed candidate set: thermometer at the paper's PLA lengths
/// plus bit-sliced codes carrying comparable level counts.
std::vector<SchemeCandidate> default_mixed_candidates(
    std::size_t base_pulses = 8);

/// Applies a per-layer (scheme × pulse-length) selection to `ctrl`'s hooks
/// and returns the mean noisy accuracy over `trials` independent draws, the
/// trials dispatched concurrently onto the shared thread pool under the
/// (seed, trial_id) contract of core::evaluate_noisy (bitwise identical at
/// any GBO_NUM_THREADS). `ctrl` must already be attached with σ configured;
/// its per-layer specs are left at `selection` on return.
float evaluate_selection(const nn::Sequential& net,
                         xbar::LayerNoiseController& ctrl,
                         const std::vector<SchemeCandidate>& selection,
                         const data::Dataset& test, std::size_t trials = 3,
                         std::size_t batch_size = 64);

struct MixedGboConfig {
  std::vector<SchemeCandidate> candidates;
  double sigma = 1.0;
  double gamma = 1e-3;
  std::size_t epochs = 10;
  float lr = 1e-4f;
  std::size_t batch_size = 32;
  std::uint64_t seed = 21;
};

/// Per-layer λ logits over mixed candidates; Eq. 5 noise mixture with
/// per-candidate variance factors.
class MixedLayerState : public quant::MvmNoiseHook {
 public:
  MixedLayerState(const MixedGboConfig& cfg, Rng rng);

  void on_forward(Tensor& out) override;
  void on_backward(const Tensor& grad_out) override;
  void accumulate_latency_grad();

  std::vector<double> alpha() const;
  double expected_pulses() const;
  std::size_t selected_index() const;
  const SchemeCandidate& selected() const;

  nn::Param& lambda() { return lambda_; }
  const std::vector<SchemeCandidate>& candidates() const {
    return cfg_.candidates;
  }

 private:
  MixedGboConfig cfg_;
  nn::Param lambda_;
  Rng rng_;
  std::vector<Tensor> cached_noise_;
  std::vector<double> cached_alpha_;
};

/// λ-only trainer over the mixed space; mirrors GboTrainer.
class MixedGboTrainer {
 public:
  MixedGboTrainer(nn::Sequential& net,
                  std::vector<quant::Hookable*> encoded_layers,
                  MixedGboConfig cfg);
  ~MixedGboTrainer();

  MixedGboTrainer(const MixedGboTrainer&) = delete;
  MixedGboTrainer& operator=(const MixedGboTrainer&) = delete;

  std::vector<GboEpochStats> train(const data::Dataset& train);

  /// Per-layer selections after training.
  std::vector<SchemeCandidate> selected() const;
  std::vector<std::size_t> selected_pulses() const;
  double avg_selected_pulses() const;
  /// Human-readable per-layer selection like "[TC-8, BS-4, TC-16]".
  std::string selection_string() const;

  MixedLayerState& layer_state(std::size_t i) { return *states_.at(i); }
  std::size_t num_layers() const { return states_.size(); }

 private:
  nn::Sequential& net_;
  std::vector<quant::Hookable*> layers_;
  MixedGboConfig cfg_;
  std::vector<std::unique_ptr<MixedLayerState>> states_;
  std::vector<bool> saved_requires_grad_;
};

}  // namespace gbo::opt
