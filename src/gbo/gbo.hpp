// Gradient-based Bit encoding Optimization (GBO) — the paper's core
// contribution (§III-A).
//
// Each crossbar-mapped layer l owns a pulse-scaling set Ω (paper default
// {0.5, 0.75, 1, 1.25, 1.5, 1.75, 2}, realizable at non-integer multiples
// thanks to PLA) and learnable logits λ^l_k. During the GBO phase the
// network weights are frozen; forward passes add the α-weighted mixture of
// per-scheme crossbar noise (Eq. 5):
//     o_l = W o_{l-1} + Σ_k α^l_k ε_k ,  ε_k ~ N(0, σ²/n_k p),
// with α = softmax(λ). The objective (Eq. 6) is
//     L = L_ce + γ Σ_l Σ_k α^l_k · (n_k p),
// whose second term is the differentiable expected-latency regularizer.
// Gradients reach λ through the sampled noise (Eq. 7): schemes whose noise
// hurts the CE loss are pushed down, cheap-but-noisy schemes are traded
// against expensive-but-clean ones, and the optimizer finds the saddle
// point. At inference each layer uses argmax_k λ^l_k.
#pragma once

#include "common/rng.hpp"
#include "data/dataloader.hpp"
#include "encoding/pla.hpp"
#include "nn/optim.hpp"
#include "nn/sequential.hpp"
#include "quant/quant_layers.hpp"

#include <memory>
#include <vector>

namespace gbo::opt {

struct GboConfig {
  /// Pulse scaling set Ω (multiples of the base pulse count).
  std::vector<double> scale_set = {0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0};
  std::size_t base_pulses = 8;   // p
  double sigma = 1.0;            // per-pulse crossbar noise std during training
  double gamma = 1e-3;           // latency-regularizer weight (Eq. 6)
  std::size_t epochs = 10;       // paper: 10 epochs of λ-only training
  float lr = 1e-4f;              // paper: ADAM, lr 1e-4
  std::size_t batch_size = 32;
  std::uint64_t seed = 21;

  /// The realizable pulse lengths round(scale * p) for each scheme.
  std::vector<std::size_t> pulse_lengths() const;
};

/// Per-layer GBO state: the λ logits and the Eq. 5 noise-mixture hook.
class GboLayerState : public quant::MvmNoiseHook {
 public:
  GboLayerState(const GboConfig& cfg, Rng rng);

  /// Adds Σ_k α_k ε_k to the MVM output; caches the ε_k samples.
  void on_forward(Tensor& out) override;

  /// Accumulates ∂L_ce/∂λ from the incoming output gradient (Eq. 7).
  void on_backward(const Tensor& grad_out) override;

  /// Adds the latency-regularizer gradient γ·∂(Σ α_k n_k p)/∂λ. Call once
  /// per optimization step (it is data independent).
  void accumulate_latency_grad();

  /// Current softmax probabilities α (recomputed from λ).
  std::vector<double> alpha() const;

  /// Expected latency Σ_k α_k n_k p in pulses.
  double expected_pulses() const;

  /// argmax_k λ_k — the scheme selected for inference.
  std::size_t selected_scheme() const;
  std::size_t selected_pulses() const;

  nn::Param& lambda() { return lambda_; }
  const std::vector<std::size_t>& pulses() const { return pulses_; }

 private:
  GboConfig cfg_;
  std::vector<std::size_t> pulses_;  // n_k · p per scheme
  nn::Param lambda_;                 // [m]
  Rng rng_;
  std::vector<Tensor> cached_noise_;  // ε_k of the last forward
  std::vector<double> cached_alpha_;
};

struct GboEpochStats {
  float loss_ce = 0.0f;
  float loss_latency = 0.0f;
  float train_accuracy = 0.0f;
  double avg_expected_pulses = 0.0;
};

/// Runs the GBO phase on a pre-trained network: freezes all network
/// parameters, attaches one GboLayerState per encoded layer, and optimizes
/// the λ logits with ADAM against Eq. 6.
class GboTrainer {
 public:
  GboTrainer(nn::Sequential& net, std::vector<quant::Hookable*> encoded_layers,
             GboConfig cfg);
  ~GboTrainer();

  GboTrainer(const GboTrainer&) = delete;
  GboTrainer& operator=(const GboTrainer&) = delete;

  /// One full optimization run over `train`; returns per-epoch stats.
  std::vector<GboEpochStats> train(const data::Dataset& train);

  /// Per-layer pulse counts selected by argmax λ.
  std::vector<std::size_t> selected_pulses() const;
  double avg_selected_pulses() const;

  GboLayerState& layer_state(std::size_t i) { return *states_.at(i); }
  std::size_t num_layers() const { return states_.size(); }

 private:
  nn::Sequential& net_;
  std::vector<quant::Hookable*> layers_;
  GboConfig cfg_;
  std::vector<std::unique_ptr<GboLayerState>> states_;
  std::vector<bool> saved_requires_grad_;
};

}  // namespace gbo::opt
