#include "gbo/gbo.hpp"

#include "common/logging.hpp"
#include "nn/loss.hpp"
#include "tensor/ops.hpp"

#include <cmath>
#include <stdexcept>

namespace gbo::opt {

std::vector<std::size_t> GboConfig::pulse_lengths() const {
  std::vector<std::size_t> out;
  out.reserve(scale_set.size());
  for (double s : scale_set)
    out.push_back(enc::scaled_pulse_count(s, base_pulses));
  return out;
}

GboLayerState::GboLayerState(const GboConfig& cfg, Rng rng)
    : cfg_(cfg), pulses_(cfg.pulse_lengths()), rng_(rng) {
  if (pulses_.empty()) throw std::invalid_argument("GBO: empty scale set");
  // λ starts uniform (all schemes equally likely).
  lambda_ = nn::Param("lambda", Tensor({pulses_.size()}));
}

std::vector<double> GboLayerState::alpha() const {
  const std::size_t m = pulses_.size();
  std::vector<double> a(m);
  double mx = lambda_.value[0];
  for (std::size_t k = 1; k < m; ++k)
    mx = std::max(mx, static_cast<double>(lambda_.value[k]));
  double denom = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    a[k] = std::exp(static_cast<double>(lambda_.value[k]) - mx);
    denom += a[k];
  }
  for (double& v : a) v /= denom;
  return a;
}

void GboLayerState::on_forward(Tensor& out) {
  const std::size_t m = pulses_.size();
  cached_alpha_ = alpha();
  cached_noise_.assign(m, Tensor());
  for (std::size_t k = 0; k < m; ++k) {
    // Thermometer variance factor at n_k pulses: σ²/n_k (Eq. 4 with n·p
    // realized pulses).
    const double std = cfg_.sigma / std::sqrt(static_cast<double>(pulses_[k]));
    Tensor eps(out.shape());
    ops::fill_normal(eps, rng_, 0.0f, static_cast<float>(std));
    ops::axpy_inplace(out, static_cast<float>(cached_alpha_[k]), eps);
    cached_noise_[k] = std::move(eps);
  }
}

void GboLayerState::on_backward(const Tensor& grad_out) {
  const std::size_t m = pulses_.size();
  if (cached_noise_.size() != m)
    throw std::logic_error("GboLayerState: backward without forward");

  // c_k = <grad_out, ε_k>; then (Eq. 7, softmax jacobian)
  // ∂L/∂λ_j = α_j (c_j - Σ_k α_k c_k).
  std::vector<double> c(m, 0.0);
  for (std::size_t k = 0; k < m; ++k) {
    const float* g = grad_out.data();
    const float* e = cached_noise_[k].data();
    double acc = 0.0;
    for (std::size_t i = 0; i < grad_out.numel(); ++i)
      acc += static_cast<double>(g[i]) * e[i];
    c[k] = acc;
  }
  double mean_c = 0.0;
  for (std::size_t k = 0; k < m; ++k) mean_c += cached_alpha_[k] * c[k];
  for (std::size_t j = 0; j < m; ++j)
    lambda_.grad[j] +=
        static_cast<float>(cached_alpha_[j] * (c[j] - mean_c));
}

void GboLayerState::accumulate_latency_grad() {
  const std::size_t m = pulses_.size();
  const auto a = alpha();
  double expected = 0.0;
  for (std::size_t k = 0; k < m; ++k)
    expected += a[k] * static_cast<double>(pulses_[k]);
  for (std::size_t j = 0; j < m; ++j)
    lambda_.grad[j] += static_cast<float>(
        cfg_.gamma * a[j] * (static_cast<double>(pulses_[j]) - expected));
}

double GboLayerState::expected_pulses() const {
  const auto a = alpha();
  double expected = 0.0;
  for (std::size_t k = 0; k < pulses_.size(); ++k)
    expected += a[k] * static_cast<double>(pulses_[k]);
  return expected;
}

std::size_t GboLayerState::selected_scheme() const {
  std::size_t best = 0;
  for (std::size_t k = 1; k < pulses_.size(); ++k)
    if (lambda_.value[k] > lambda_.value[best]) best = k;
  return best;
}

std::size_t GboLayerState::selected_pulses() const {
  return pulses_[selected_scheme()];
}

GboTrainer::GboTrainer(nn::Sequential& net,
                       std::vector<quant::Hookable*> encoded_layers,
                       GboConfig cfg)
    : net_(net), layers_(std::move(encoded_layers)), cfg_(cfg) {
  Rng rng(cfg_.seed);
  states_.reserve(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    states_.push_back(std::make_unique<GboLayerState>(cfg_, rng.fork(i + 1)));
    layers_[i]->set_noise_hook(states_[i].get());
  }
  // Freeze the pre-trained network: GBO only trains λ (paper §III-A).
  for (nn::Param* p : net_.params()) {
    saved_requires_grad_.push_back(p->requires_grad);
    p->requires_grad = false;
  }
  // BN running statistics are frozen too (eval mode) for stable convergence.
  net_.set_training(false);
}

GboTrainer::~GboTrainer() {
  for (auto* layer : layers_) layer->set_noise_hook(nullptr);
  auto params = net_.params();
  for (std::size_t i = 0; i < params.size() && i < saved_requires_grad_.size(); ++i)
    params[i]->requires_grad = saved_requires_grad_[i];
}

std::vector<GboEpochStats> GboTrainer::train(const data::Dataset& train) {
  std::vector<nn::Param*> lambdas;
  lambdas.reserve(states_.size());
  for (auto& st : states_) lambdas.push_back(&st->lambda());
  nn::Adam opt(lambdas, cfg_.lr);

  Rng loader_rng(cfg_.seed ^ 0xABCDEF);
  data::DataLoader loader(train, cfg_.batch_size, /*shuffle=*/true, loader_rng);

  std::vector<GboEpochStats> history;
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    GboEpochStats stats;
    std::size_t batches = 0, correct = 0, seen = 0;
    loader.reset();
    data::Batch batch;
    while (loader.next(batch)) {
      opt.zero_grad();
      Tensor logits = net_.forward(batch.images);
      Tensor grad;
      const float ce =
          nn::CrossEntropy::forward_backward(logits, batch.labels, grad);
      net_.backward(grad);  // λ gradients accumulate via on_backward
      for (auto& st : states_) st->accumulate_latency_grad();
      opt.step();

      stats.loss_ce += ce;
      const auto preds = ops::argmax_rows(logits);
      for (std::size_t i = 0; i < preds.size(); ++i)
        if (preds[i] == batch.labels[i]) ++correct;
      seen += preds.size();
      ++batches;
    }
    stats.loss_ce /= static_cast<float>(batches);
    stats.train_accuracy = static_cast<float>(correct) / static_cast<float>(seen);
    double total_expected = 0.0, latency_loss = 0.0;
    for (auto& st : states_) {
      const double e = st->expected_pulses();
      total_expected += e;
      latency_loss += cfg_.gamma * e;
    }
    stats.loss_latency = static_cast<float>(latency_loss);
    stats.avg_expected_pulses = total_expected / static_cast<double>(states_.size());
    history.push_back(stats);
    log_info("GBO epoch ", epoch + 1, "/", cfg_.epochs, " ce=", stats.loss_ce,
             " acc=", stats.train_accuracy,
             " avg_pulses=", stats.avg_expected_pulses);
  }
  return history;
}

std::vector<std::size_t> GboTrainer::selected_pulses() const {
  std::vector<std::size_t> out;
  out.reserve(states_.size());
  for (const auto& st : states_) out.push_back(st->selected_pulses());
  return out;
}

double GboTrainer::avg_selected_pulses() const {
  double acc = 0.0;
  for (const auto& st : states_)
    acc += static_cast<double>(st->selected_pulses());
  return states_.empty() ? 0.0 : acc / static_cast<double>(states_.size());
}

}  // namespace gbo::opt
