#include "gbo/heuristic.hpp"

#include "core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace gbo::opt {

std::vector<double> layer_sensitivity(nn::Sequential& net,
                                      xbar::LayerNoiseController& ctrl,
                                      const data::Dataset& val, double sigma,
                                      std::size_t trials) {
  const float clean = core::evaluate(net, val);
  ctrl.attach();
  ctrl.set_sigma(sigma);
  ctrl.set_uniform_pulses(ctrl.base_pulses());
  std::vector<double> drops;
  drops.reserve(ctrl.num_layers());
  for (std::size_t l = 0; l < ctrl.num_layers(); ++l) {
    ctrl.isolate_layer(l);
    const float acc = core::evaluate_noisy(net, ctrl, val, trials);
    drops.push_back(std::max(0.0, static_cast<double>(clean) - acc));
  }
  ctrl.detach();
  return drops;
}

std::vector<std::size_t> sensitivity_guided_schedule(
    const std::vector<double>& sensitivity,
    const std::vector<std::size_t>& pulse_set, double avg_budget) {
  if (sensitivity.empty()) throw std::invalid_argument("heuristic: no layers");
  if (pulse_set.empty()) throw std::invalid_argument("heuristic: empty pulse set");
  std::vector<std::size_t> set = pulse_set;
  std::sort(set.begin(), set.end());

  const std::size_t layers = sensitivity.size();
  std::vector<std::size_t> level(layers, 0);  // index into `set`
  const double budget_total = avg_budget * static_cast<double>(layers);
  double total = static_cast<double>(set.front()) * static_cast<double>(layers);

  // Greedy upgrades: each step, upgrade the layer with the largest
  // per-pulse sensitivity gain that still fits the budget. Sensitivity mass
  // is "consumed" proportionally to the relative latency already granted,
  // so a very sensitive layer gets several upgrades before others get one.
  std::vector<double> remaining = sensitivity;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Pick the most sensitive upgradable layer.
    std::size_t best = layers;
    double best_mass = 0.0;
    for (std::size_t l = 0; l < layers; ++l) {
      if (level[l] + 1 >= set.size()) continue;
      const double step =
          static_cast<double>(set[level[l] + 1] - set[level[l]]);
      if (total + step > budget_total + 1e-9) continue;
      if (remaining[l] > best_mass) {
        best_mass = remaining[l];
        best = l;
      }
    }
    if (best == layers || best_mass <= 0.0) break;
    const double step = static_cast<double>(set[level[best] + 1] - set[level[best]]);
    total += step;
    ++level[best];
    // Diminish the layer's claim so other sensitive layers get their turn.
    remaining[best] *= 0.5;
    progressed = true;
  }

  std::vector<std::size_t> schedule(layers);
  for (std::size_t l = 0; l < layers; ++l) schedule[l] = set[level[l]];
  return schedule;
}

}  // namespace gbo::opt
