#include "gbo/search_baselines.hpp"

#include <algorithm>
#include <stdexcept>

namespace gbo::opt {

namespace {

double avg_pulses(const std::vector<std::size_t>& pulses) {
  if (pulses.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t p : pulses) s += static_cast<double>(p);
  return s / static_cast<double>(pulses.size());
}

void validate(const SearchConfig& cfg, std::size_t layers) {
  if (cfg.candidates.empty())
    throw std::invalid_argument("schedule search: empty candidate set");
  if (cfg.budget == 0)
    throw std::invalid_argument("schedule search: zero budget");
  if (layers == 0)
    throw std::invalid_argument("schedule search: network has no layers");
}

/// The budget counts *distinct* schedule evaluations, but the search space
/// is finite (candidates^layers): once it is exhausted no proposal can
/// consume budget, so every sampler must also stop on this bound (and, as a
/// belt-and-braces guard, on a generous cap of non-spending proposals).
std::size_t effective_budget(const SearchConfig& cfg, std::size_t layers) {
  double space = 1.0;
  for (std::size_t l = 0; l < layers; ++l) {
    space *= static_cast<double>(cfg.candidates.size());
    if (space >= static_cast<double>(cfg.budget)) return cfg.budget;
  }
  return std::min<std::size_t>(cfg.budget,
                               static_cast<std::size_t>(space));
}

/// Tracks the incumbent and the anytime trace as evaluations are spent.
struct Incumbent {
  SearchResult result;
  ScheduleEvaluator& eval;
  std::size_t evals_at_start;

  Incumbent(std::string method, ScheduleEvaluator& e)
      : eval(e), evals_at_start(e.evaluations()) {
    result.method = std::move(method);
  }

  /// Evaluates `pulses` (may hit the memo) and updates the incumbent.
  double consider(const std::vector<std::size_t>& pulses) {
    const double j = eval.objective(pulses);
    if (j > result.best_objective) {
      result.best_objective = j;
      result.best = pulses;
      result.best_accuracy = eval.accuracy(pulses);
    }
    // One trace point per *distinct* evaluation consumed so far.
    const std::size_t spent = eval.evaluations() - evals_at_start;
    while (result.trace.size() < spent)
      result.trace.push_back(result.best_objective);
    return j;
  }

  std::size_t spent() const { return eval.evaluations() - evals_at_start; }

  SearchResult finish() {
    result.evaluations = spent();
    return std::move(result);
  }
};

}  // namespace

ScheduleEvaluator::ScheduleEvaluator(nn::Sequential& net,
                                     xbar::LayerNoiseController& ctrl,
                                     const data::Dataset& eval_set,
                                     double latency_weight, std::size_t trials,
                                     std::size_t batch_size)
    : net_(net), ctrl_(ctrl), eval_set_(eval_set),
      latency_weight_(latency_weight), trials_(trials),
      batch_size_(batch_size) {}

const ScheduleEvaluator::Entry& ScheduleEvaluator::lookup(
    const std::vector<std::size_t>& pulses) {
  if (pulses.size() != ctrl_.num_layers())
    throw std::invalid_argument(
        "ScheduleEvaluator: schedule length does not match the network");
  auto it = memo_.find(pulses);
  if (it != memo_.end()) return it->second;

  ctrl_.set_pulses(pulses);
  const float acc =
      core::evaluate_noisy(net_, ctrl_, eval_set_, trials_, batch_size_);
  ++evals_;
  Entry e;
  e.accuracy_pct = 100.0 * static_cast<double>(acc);
  e.objective = e.accuracy_pct - latency_weight_ * avg_pulses(pulses);
  return memo_.emplace(pulses, e).first->second;
}

double ScheduleEvaluator::objective(const std::vector<std::size_t>& pulses) {
  return lookup(pulses).objective;
}

double ScheduleEvaluator::accuracy(const std::vector<std::size_t>& pulses) {
  return lookup(pulses).accuracy_pct;
}

SearchResult random_search(ScheduleEvaluator& eval, const SearchConfig& cfg) {
  const std::size_t layers = eval.num_layers();
  validate(cfg, layers);
  const std::size_t budget = effective_budget(cfg, layers);
  Rng rng(cfg.seed);
  Incumbent inc("random", eval);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 100 * budget;
  while (inc.spent() < budget && attempts++ < max_attempts) {
    std::vector<std::size_t> s(layers);
    for (auto& p : s)
      p = cfg.candidates[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cfg.candidates.size()) - 1))];
    inc.consider(s);
  }
  return inc.finish();
}

SearchResult evolutionary_search(ScheduleEvaluator& eval,
                                 const SearchConfig& cfg) {
  const std::size_t layers = eval.num_layers();
  validate(cfg, layers);
  if (cfg.population == 0 || cfg.offspring == 0)
    throw std::invalid_argument("evolutionary search: empty population");
  const std::size_t budget = effective_budget(cfg, layers);
  Rng rng(cfg.seed);
  Incumbent inc("evolutionary", eval);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 100 * budget;

  auto candidate_index = [&](std::size_t pulse) {
    for (std::size_t i = 0; i < cfg.candidates.size(); ++i)
      if (cfg.candidates[i] == pulse) return i;
    return std::size_t{0};
  };

  // Seed: one uniform schedule per candidate pulse count (the PLA-n
  // baselines), then random fill to the population size.
  std::vector<std::pair<double, std::vector<std::size_t>>> pop;
  for (std::size_t c = 0; c < cfg.candidates.size() && inc.spent() < budget;
       ++c) {
    std::vector<std::size_t> s(layers, cfg.candidates[c]);
    pop.emplace_back(inc.consider(s), std::move(s));
  }
  while (pop.size() < cfg.population && inc.spent() < budget &&
         attempts++ < max_attempts) {
    std::vector<std::size_t> s(layers);
    for (auto& p : s)
      p = cfg.candidates[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cfg.candidates.size()) - 1))];
    pop.emplace_back(inc.consider(s), std::move(s));
  }

  while (inc.spent() < budget && attempts < max_attempts) {
    // Truncation selection: keep the best μ.
    std::sort(pop.begin(), pop.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (pop.size() > cfg.population) pop.resize(cfg.population);

    for (std::size_t o = 0; o < cfg.offspring && inc.spent() < budget &&
                            attempts++ < max_attempts;
         ++o) {
      const auto& parent =
          pop[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(pop.size()) - 1))]
              .second;
      std::vector<std::size_t> child = parent;
      bool mutated = false;
      for (auto& p : child) {
        if (!rng.bernoulli(cfg.mutation_rate)) continue;
        mutated = true;
        const std::size_t i = candidate_index(p);
        if (rng.bernoulli(0.2)) {  // occasional jump anywhere
          p = cfg.candidates[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(cfg.candidates.size()) - 1))];
        } else if (i == 0) {
          p = cfg.candidates[1 % cfg.candidates.size()];
        } else if (i + 1 == cfg.candidates.size()) {
          p = cfg.candidates[i - 1];
        } else {
          p = cfg.candidates[rng.bernoulli(0.5) ? i - 1 : i + 1];
        }
      }
      if (!mutated) {  // force at least one mutation
        auto& p = child[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(layers) - 1))];
        p = cfg.candidates[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(cfg.candidates.size()) - 1))];
      }
      pop.emplace_back(inc.consider(child), std::move(child));
    }
  }
  return inc.finish();
}

SearchResult greedy_coordinate_descent(ScheduleEvaluator& eval,
                                       const SearchConfig& cfg) {
  const std::size_t layers = eval.num_layers();
  validate(cfg, layers);
  Incumbent inc("greedy", eval);

  // Start from the base-pulse uniform schedule (the paper's baseline);
  // use the median candidate if the base is not in the set.
  std::vector<std::size_t> current(
      layers, cfg.candidates[cfg.candidates.size() / 2]);
  double current_j = inc.consider(current);

  bool improved = true;
  while (improved && inc.spent() < cfg.budget) {
    improved = false;
    for (std::size_t l = 0; l < layers && inc.spent() < cfg.budget; ++l) {
      std::size_t best_p = current[l];
      for (std::size_t c = 0;
           c < cfg.candidates.size() && inc.spent() < cfg.budget; ++c) {
        if (cfg.candidates[c] == current[l]) continue;
        std::vector<std::size_t> trial = current;
        trial[l] = cfg.candidates[c];
        const double j = inc.consider(trial);
        if (j > current_j) {
          current_j = j;
          best_p = cfg.candidates[c];
        }
      }
      if (best_p != current[l]) {
        current[l] = best_p;
        improved = true;
      }
    }
  }
  return inc.finish();
}

}  // namespace gbo::opt
