#include "serve/policy.hpp"

#include "obs/trace.hpp"

#include <algorithm>

namespace gbo::serve {
namespace {

/// Ladder update at a flush instant, with hysteresis: level 2 persists
/// until depth drops below degrade_depth (then level 1), level 1 persists
/// until depth recovers to recover_depth (then level 0).
int ladder_step(const LadderPolicy& ladder, int level, std::size_t depth) {
  if (ladder.shed_depth != 0 && depth >= ladder.shed_depth) return 2;
  if (ladder.degrade_depth != 0 && depth >= ladder.degrade_depth)
    return std::max(level, 1);
  if (depth <= ladder.recover_depth) return 0;
  return level == 2 ? 1 : level;  // mid-band: step 2 -> 1, else hold
}

}  // namespace

ShedReason shed_reason(Decision::Outcome outcome) {
  switch (outcome) {
    case Decision::Outcome::kRejected: return ShedReason::kCapacity;
    case Decision::Outcome::kEvicted: return ShedReason::kEvicted;
    case Decision::Outcome::kShedExpired: return ShedReason::kExpired;
    case Decision::Outcome::kShedOverload: return ShedReason::kOverload;
    case Decision::Outcome::kServed: break;
  }
  return ShedReason::kNone;
}

std::uint64_t shed_set_fingerprint(
    const std::vector<std::pair<std::uint64_t, std::uint8_t>>& shed) {
  // FNV-1a 64 over (id bytes little-endian, outcome code) in input order;
  // callers pass ascending ids so the fingerprint is order-canonical.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (const auto& [id, code] : shed) {
    for (int b = 0; b < 8; ++b)
      mix(static_cast<std::uint8_t>((id >> (8 * b)) & 0xFF));
    mix(code);
  }
  return h;
}

Plan plan(const std::vector<Arrival>& trace, const SloPolicy& slo,
          const BatchPolicy& batch) {
  return plan(trace, slo, batch, {});
}

Plan plan(const std::vector<Arrival>& trace, const SloPolicy& slo,
          const BatchPolicy& batch,
          std::vector<std::uint64_t> request_ids) {
  Plan p;
  p.decisions.resize(trace.size());
  p.request_ids = std::move(request_ids);
  if (trace.empty()) {
    p.shed_set_hash = shed_set_fingerprint({});
    return p;
  }
  // Requests travel the queue under their global id; decisions are indexed
  // by sub-trace position. Global ids are strictly ascending, so the
  // inverse map is a binary search.
  const auto local = [&p](std::uint64_t gid) -> std::size_t {
    if (p.request_ids.empty()) return static_cast<std::size_t>(gid);
    return static_cast<std::size_t>(
        std::lower_bound(p.request_ids.begin(), p.request_ids.end(), gid) -
        p.request_ids.begin());
  };

  RequestQueue vq(slo.queue);
  const FaultInjector injector(slo.fault);
  CircuitBreaker breaker(slo.breaker);
  const std::size_t n_lanes = std::max<std::size_t>(1, slo.virtual_lanes);
  std::vector<std::uint64_t> lanes(n_lanes, 0);  // lane free-at times
  const std::size_t max_batch = std::max<std::size_t>(1, batch.max_batch);
  int level = 0;
  std::size_t logged_opens = 0;  // breaker opens already in the transition log

  PlanCounters& c = p.counters;

  const auto ingest = [&](std::size_t i) {
    const Arrival& a = trace[i];
    Request r;
    r.id = p.id_of(i);
    r.sample = a.sample;
    r.enqueue_us = a.t_us;  // virtual clock: enqueue == arrival
    r.priority = a.priority;
    r.deadline_us = slo.deadline_us != 0 ? a.t_us + slo.deadline_us : 0;
    Decision& d = p.decisions[i];
    d.priority = a.priority;
    d.deadline_us = r.deadline_us;
    Request victim;
    switch (vq.push(r, &victim)) {
      case RequestQueue::PushResult::kAccepted:
        break;
      case RequestQueue::PushResult::kRejectedFull:
        d.outcome = Decision::Outcome::kRejected;
        d.v_pop_us = a.t_us;
        ++c.rejected;
        break;
      case RequestQueue::PushResult::kAcceptedEvicted: {
        Decision& ev = p.decisions[local(victim.id)];
        ev.outcome = Decision::Outcome::kEvicted;
        ev.v_pop_us = a.t_us;
        ++c.evicted;
        break;
      }
    }
    c.max_virtual_depth = std::max(c.max_virtual_depth, vq.size());
  };

  std::vector<Request> out, shed;
  std::size_t i = 0;
  while (i < trace.size() || vq.size() > 0) {
    if (vq.size() == 0) {
      ingest(i++);
      continue;
    }
    // Next virtual flush on the soonest-free lane: immediately once a full
    // batch is queued, otherwise when the oldest member's coalescing wait
    // expires — exactly the real micro-batcher's flush rule.
    const std::size_t lane = static_cast<std::size_t>(
        std::min_element(lanes.begin(), lanes.end()) - lanes.begin());
    const std::uint64_t oldest = vq.oldest_enqueue_us();
    const std::uint64_t flush_t =
        vq.size() >= max_batch
            ? std::max(lanes[lane], oldest)
            : std::max(lanes[lane], oldest + batch.max_wait_us);
    // Arrivals at or before the flush instant are ingested first so the
    // planner's batch composition matches what a worker popping at flush_t
    // would have seen (ties break toward ingestion).
    if (i < trace.size() && trace[i].t_us <= flush_t) {
      ingest(i++);
      continue;
    }

    const std::uint64_t vnow = flush_t;
    const int prev_level = level;
    level = ladder_step(slo.ladder, level, vq.size());
    if (level != prev_level) {
      ++c.ladder_transitions;
      p.transitions.push_back(
          {ControlTransition::Kind::kLadder, level, vnow});
    }
    c.max_ladder_level = std::max(c.max_ladder_level, level);

    const Priority floor = level >= 2 ? slo.ladder.shed_floor : Priority::kLow;
    // Shed-at-pop horizon: anything whose deadline falls before
    // vnow + headroom cannot finish in time and is dropped unexecuted.
    const std::uint64_t horizon = vnow + slo.completion_headroom_us;
    out.clear();
    shed.clear();
    vq.try_pop_batch(batch, horizon, floor, out, shed);

    for (const Request& r : shed) {
      Decision& d = p.decisions[local(r.id)];
      d.outcome = r.reason == ShedReason::kOverload
                      ? Decision::Outcome::kShedOverload
                      : Decision::Outcome::kShedExpired;
      d.v_pop_us = vnow;
      if (d.outcome == Decision::Outcome::kShedOverload)
        ++c.shed_overload;
      else
        ++c.shed_expired;
    }
    if (out.empty()) continue;  // pure-shed flush: no batch, lane unchanged

    std::uint64_t cost = slo.cost.batch_fixed_us;
    for (const Request& r : out) {
      Decision& d = p.decisions[local(r.id)];
      d.outcome = Decision::Outcome::kServed;
      d.v_pop_us = vnow;
      if (level >= 1) {
        d.mode = ServeMode::kDegradedLadder;
        cost += slo.cost.degraded_us;
        ++c.degraded_ladder;
      } else if (!breaker.allow(vnow)) {
        d.mode = ServeMode::kDegradedBreaker;
        cost += slo.cost.degraded_us;
        ++c.degraded_breaker;
      } else {
        const std::size_t a =
            injector.attempts_to_success(r.id, slo.retry.max_attempts);
        d.attempts = static_cast<std::uint8_t>(a);
        cost += a * slo.cost.retry_penalty_us;
        if (a < slo.retry.max_attempts) {
          d.mode = ServeMode::kPrimary;
          cost += slo.cost.primary_us;
          breaker.record_success(vnow);
          ++c.served_primary;
          if (a > 0) {
            ++c.retried_requests;
            c.faults_injected += a;
          }
        } else {
          d.mode = ServeMode::kDegradedFallback;
          cost += slo.cost.degraded_us;
          breaker.record_failure(vnow);
          if (breaker.opens() > logged_opens) {
            ++logged_opens;
            p.transitions.push_back(
                {ControlTransition::Kind::kBreakerOpen, 0, vnow});
          }
          ++c.degraded_fallback;
          c.faults_injected += a;
        }
      }
    }
    const std::uint64_t v_done = vnow + cost;
    for (const Request& r : out) {
      Decision& d = p.decisions[local(r.id)];
      d.v_done_us = v_done;
      if (d.deadline_us != 0 && v_done > d.deadline_us) {
        d.late = true;
        ++c.late;
      }
    }
    c.served += out.size();
    ++c.virtual_batches;
    lanes[lane] = v_done;
  }
  // One final control tick at drain: the ladder is evaluated on queue
  // depth, and a fully drained queue (depth 0) is the definition of
  // recovery — without this tick the level would freeze at whatever the
  // last mid-drain flush saw.
  const int drained = ladder_step(slo.ladder, level, 0);
  if (drained != level) {
    ++c.ladder_transitions;
    p.transitions.push_back({ControlTransition::Kind::kLadder, drained,
                             *std::max_element(lanes.begin(), lanes.end())});
  }
  level = drained;
  c.breaker_opens = breaker.opens();
  c.final_ladder_level = level;

  // Virtual latency (arrival -> virtual completion) over served requests.
  std::vector<std::uint64_t> all;
  std::array<std::vector<std::uint64_t>, kNumPriorities> by_pri;
  all.reserve(c.served);
  std::vector<std::pair<std::uint64_t, std::uint8_t>> shed_set;
  for (std::size_t id = 0; id < p.decisions.size(); ++id) {
    const Decision& d = p.decisions[id];
    if (d.served()) {
      const std::uint64_t lat = d.v_done_us - trace[id].t_us;
      all.push_back(lat);
      by_pri[static_cast<std::size_t>(d.priority)].push_back(lat);
    } else {
      shed_set.emplace_back(p.id_of(id), static_cast<std::uint8_t>(d.outcome));
    }
  }
  p.virtual_latency = LatencyStats::compute(std::move(all));
  for (std::size_t k = 0; k < kNumPriorities; ++k)
    p.virtual_by_priority[k] = LatencyStats::compute(std::move(by_pri[k]));
  p.shed_set_hash = shed_set_fingerprint(shed_set);
  return p;
}

// The causal events the runtime emits while executing a plan, rebuilt from
// the decision ledger. Must mirror InferenceServer::run_slo exactly: admit
// verdict per request (with deadline), pop-time shed per non-served
// decision, one retry record per served request with failed primary
// attempts, delivery (mode, virtual completion) per served request, and
// the control-transition log. Decision tuples are keyed by the global id
// (Plan::id_of) so per-replica sub-plans compose into a fleet oracle.
void append_causal_decision_tuples(const Plan& p,
                                   std::vector<obs::CausalTuple>& tuples) {
  using obs::EventType;
  tuples.reserve(tuples.size() + 2 * p.decisions.size());
  for (std::size_t i = 0; i < p.decisions.size(); ++i) {
    const Decision& d = p.decisions[i];
    const std::uint64_t id = p.id_of(i);
    const bool bounced = d.outcome == Decision::Outcome::kRejected ||
                         d.outcome == Decision::Outcome::kEvicted;
    tuples.push_back({id, static_cast<std::uint8_t>(EventType::kAdmit),
                      bounced ? static_cast<std::uint16_t>(d.outcome)
                              : std::uint16_t{0},
                      d.deadline_us});
    if (d.served()) {
      if (d.attempts > 0)
        tuples.push_back({id, static_cast<std::uint8_t>(EventType::kRetry),
                          d.attempts, 0});
      // The delivery tuple folds the pinned model version into the high
      // byte of `a` (DESIGN.md §11): version 0 — every non-swap run —
      // reproduces the historical tuple bit for bit, and a swap run's
      // fingerprint attributes every payload to exactly one version.
      tuples.push_back(
          {id, static_cast<std::uint8_t>(EventType::kDeliver),
           static_cast<std::uint16_t>(
               static_cast<std::uint16_t>(d.mode) |
               static_cast<std::uint16_t>((d.version & 0xff) << 8)),
           d.v_done_us});
    } else if (!bounced) {
      tuples.push_back({id, static_cast<std::uint8_t>(EventType::kShed),
                        static_cast<std::uint16_t>(d.outcome), 0});
    }
  }
}

void append_causal_transition_tuples(const Plan& p, std::size_t seq_offset,
                                     std::vector<obs::CausalTuple>& tuples) {
  using obs::EventType;
  for (std::size_t seq = 0; seq < p.transitions.size(); ++seq) {
    const ControlTransition& t = p.transitions[seq];
    const std::uint64_t gseq = seq_offset + seq;
    if (t.kind == ControlTransition::Kind::kLadder)
      tuples.push_back({gseq, static_cast<std::uint8_t>(EventType::kLadder),
                        static_cast<std::uint16_t>(t.level), t.v_us});
    else
      tuples.push_back({gseq, static_cast<std::uint8_t>(EventType::kBreaker),
                        1, t.v_us});
  }
}

namespace {

std::vector<obs::CausalTuple> plan_causal_tuples(const Plan& p) {
  std::vector<obs::CausalTuple> tuples;
  append_causal_decision_tuples(p, tuples);
  append_causal_transition_tuples(p, 0, tuples);
  return tuples;
}

std::vector<obs::CausalTuple> legacy_causal_tuples(std::size_t n) {
  using obs::EventType;
  std::vector<obs::CausalTuple> tuples;
  tuples.reserve(2 * n);
  for (std::size_t id = 0; id < n; ++id) {
    tuples.push_back(
        {id, static_cast<std::uint8_t>(EventType::kAdmit), 0, 0});
    tuples.push_back(
        {id, static_cast<std::uint8_t>(EventType::kDeliver), 0, 0});
  }
  return tuples;
}

}  // namespace

std::uint64_t expected_causal_fingerprint(const Plan& p) {
  return obs::fingerprint_tuples(plan_causal_tuples(p));
}

std::size_t expected_causal_event_count(const Plan& p) {
  return plan_causal_tuples(p).size();
}

std::uint64_t expected_causal_fingerprint(std::size_t n_requests) {
  return obs::fingerprint_tuples(legacy_causal_tuples(n_requests));
}

std::size_t expected_causal_event_count(std::size_t n_requests) {
  return legacy_causal_tuples(n_requests).size();
}

}  // namespace gbo::serve
