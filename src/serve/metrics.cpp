#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace gbo::serve {
namespace {

double nearest_rank(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t n = sorted.size();
  // Nearest-rank definition: the ceil(q*n)-th smallest sample (1-based).
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return static_cast<double>(sorted[rank - 1]);
}

}  // namespace

LatencyStats LatencyStats::compute(std::vector<std::uint64_t> samples) {
  LatencyStats s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.p50_us = nearest_rank(samples, 0.50);
  s.p95_us = nearest_rank(samples, 0.95);
  s.p99_us = nearest_rank(samples, 0.99);
  s.max_us = static_cast<double>(samples.back());
  double acc = 0.0;
  for (std::uint64_t v : samples) acc += static_cast<double>(v);
  s.mean_us = acc / static_cast<double>(samples.size());
  return s;
}

Json LatencyStats::to_json() const {
  Json j = Json::object();
  j.set("p50_us", p50_us);
  j.set("p95_us", p95_us);
  j.set("p99_us", p99_us);
  j.set("mean_us", mean_us);
  j.set("max_us", max_us);
  return j;
}

Json ArenaSummary::to_json() const {
  Json j = Json::object();
  j.set("system_allocs", system_allocs);
  j.set("steady_allocs", steady_allocs);
  j.set("high_water_bytes", high_water_bytes);
  j.set("reserved_bytes", reserved_bytes);
  return j;
}

Json ServeReport::to_json() const {
  Json j = Json::object();
  j.set("requests", requests);
  j.set("completed", completed);
  j.set("workers", workers);
  j.set("wall_s", wall_s);
  j.set("throughput_rps", throughput_rps);
  j.set("latency", latency.to_json());
  Json q = Json::object();
  q.set("pushes", queue.pushes);
  q.set("max_depth", queue.max_depth);
  q.set("mean_depth", queue.mean_depth);
  j.set("queue", q);
  Json hist = Json::array();
  for (std::size_t b = 0; b < batch_hist.size(); ++b) {
    if (batch_hist[b] == 0) continue;
    Json e = Json::object();
    e.set("batch", b);
    e.set("count", batch_hist[b]);
    hist.push_back(e);
  }
  j.set("batch_hist", hist);
  j.set("mean_batch", mean_batch);
  j.set("exec_calls", exec_calls);
  j.set("mean_exec_batch", mean_exec_batch);
  j.set("fusion", fusion);
  j.set("arena", arena.to_json());
  return j;
}

}  // namespace gbo::serve
