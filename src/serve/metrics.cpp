#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/table.hpp"

namespace gbo::serve {

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

namespace {

double nearest_rank(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t n = sorted.size();
  // Nearest-rank definition: the ceil(q*n)-th smallest sample (1-based).
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return static_cast<double>(sorted[rank - 1]);
}

}  // namespace

LatencyStats LatencyStats::compute(std::vector<std::uint64_t> samples) {
  LatencyStats s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.p50_us = nearest_rank(samples, 0.50);
  s.p95_us = nearest_rank(samples, 0.95);
  s.p99_us = nearest_rank(samples, 0.99);
  s.max_us = static_cast<double>(samples.back());
  double acc = 0.0;
  for (std::uint64_t v : samples) acc += static_cast<double>(v);
  s.mean_us = acc / static_cast<double>(samples.size());
  return s;
}

Json LatencyStats::to_json() const {
  Json j = Json::object();
  j.set("p50_us", p50_us);
  j.set("p95_us", p95_us);
  j.set("p99_us", p99_us);
  j.set("mean_us", mean_us);
  j.set("max_us", max_us);
  j.set("count", count);
  return j;
}

Json ArenaSummary::to_json() const {
  Json j = Json::object();
  j.set("system_allocs", system_allocs);
  j.set("steady_allocs", steady_allocs);
  j.set("high_water_bytes", high_water_bytes);
  j.set("reserved_bytes", reserved_bytes);
  return j;
}

Json SloSummary::to_json() const {
  Json j = Json::object();
  j.set("enabled", enabled);
  Json plan = Json::object();
  plan.set("admitted", admitted);
  plan.set("served", served);
  plan.set("served_primary", served_primary);
  plan.set("served_canary", served_canary);
  plan.set("degraded_ladder", degraded_ladder);
  plan.set("degraded_breaker", degraded_breaker);
  plan.set("degraded_fallback", degraded_fallback);
  plan.set("shed_expired", shed_expired);
  plan.set("shed_overload", shed_overload);
  plan.set("rejected_capacity", rejected_capacity);
  plan.set("evicted", evicted);
  plan.set("retried_requests", retried_requests);
  plan.set("faults_injected", faults_injected);
  plan.set("late_virtual", late_virtual);
  plan.set("breaker_opens", breaker_opens);
  plan.set("ladder_transitions", ladder_transitions);
  plan.set("final_ladder_level", final_ladder_level);
  plan.set("max_ladder_level", max_ladder_level);
  plan.set("max_virtual_depth", max_virtual_depth);
  plan.set("deadline_us", deadline_us);
  plan.set("shed_set_hash", hex64(shed_set_hash));
  plan.set("virtual_latency", virtual_latency.to_json());
  Json vp = Json::array();
  for (const auto& st : virtual_by_priority) vp.push_back(st.to_json());
  plan.set("virtual_by_priority", vp);
  j.set("plan", plan);
  Json exec = Json::object();
  exec.set("delivered", exec_delivered);
  exec.set("shed", exec_shed);
  exec.set("retried", exec_retried);
  exec.set("faults", exec_faults);
  exec.set("fallbacks", exec_fallbacks);
  exec.set("degraded", exec_degraded);
  exec.set("stalls", exec_stalls);
  exec.set("shed_set_hash", hex64(exec_shed_set_hash));
  Json rp = Json::array();
  for (const auto& st : real_by_priority) rp.push_back(st.to_json());
  exec.set("real_by_priority", rp);
  j.set("exec", exec);
  return j;
}

Json SwapSummary::to_json() const {
  Json j = Json::object();
  j.set("enabled", enabled);
  j.set("rolled_back", rolled_back);
  j.set("from_version", from_version);
  j.set("to_version", to_version);
  j.set("canary_replica", static_cast<std::size_t>(canary_replica));
  j.set("start_us", start_us);
  j.set("verdict_us", verdict_us);
  j.set("canary_served", canary_served);
  j.set("canary_faults", canary_faults);
  j.set("breaker_opens", breaker_opens);
  j.set("latency_breach", latency_breach);
  j.set("cutovers", cutovers);
  j.set("version_hash", hex64(version_hash));
  Json by = Json::array();
  for (const auto& e : served_by_version) {
    Json v = Json::object();
    v.set("version", e.first);
    v.set("served", e.second);
    by.push_back(v);
  }
  j.set("served_by_version", by);
  return j;
}

Json ServeReport::to_json() const {
  Json j = Json::object();
  j.set("requests", requests);
  j.set("completed", completed);
  j.set("workers", workers);
  j.set("wall_s", wall_s);
  j.set("throughput_rps", throughput_rps);
  j.set("latency", latency.to_json());
  Json q = Json::object();
  q.set("pushes", queue.pushes);
  q.set("max_depth", queue.max_depth);
  q.set("mean_depth", queue.mean_depth);
  q.set("rejected", queue.rejected);
  q.set("evicted", queue.evicted);
  q.set("sheds", queue.sheds);
  j.set("queue", q);
  Json hist = Json::array();
  for (std::size_t b = 0; b < batch_hist.size(); ++b) {
    if (batch_hist[b] == 0) continue;
    Json e = Json::object();
    e.set("batch", b);
    e.set("count", batch_hist[b]);
    hist.push_back(e);
  }
  j.set("batch_hist", hist);
  j.set("mean_batch", mean_batch);
  j.set("exec_calls", exec_calls);
  j.set("mean_exec_batch", mean_exec_batch);
  j.set("fusion", fusion);
  j.set("arena", arena.to_json());
  if (slo.enabled) j.set("slo", slo.to_json());
  if (swap.enabled) j.set("swap", swap.to_json());
  return j;
}

std::vector<std::string> report_header() {
  return {"backend",    "p50 us",    "p95 us",    "p99 us",
          "tput rps",   "mean batch", "max queue", "steady allocs"};
}

std::vector<std::string> report_row(const std::string& label,
                                    const ServeReport& r) {
  return {label,
          Table::fmt(r.latency.p50_us, 0),
          Table::fmt(r.latency.p95_us, 0),
          Table::fmt(r.latency.p99_us, 0),
          Table::fmt(r.throughput_rps, 0),
          Table::fmt(r.mean_batch, 2),
          std::to_string(r.queue.max_depth),
          std::to_string(r.arena.steady_allocs)};
}

std::string slo_exec_summary(const std::string& label, const ServeReport& r) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "  %-9s: delivered %zu, shed %zu, fingerprint %s\n",
                label.c_str(), r.completed, r.slo.exec_shed,
                hex64(r.slo.exec_shed_set_hash).c_str());
  return std::string(buf);
}

std::vector<std::string> version_report_header() {
  return {"version", "served", "role", "canary served", "canary faults"};
}

std::vector<std::vector<std::string>> version_report_rows(
    const ServeReport& r) {
  std::vector<std::vector<std::string>> rows;
  if (!r.swap.enabled) return rows;
  for (const auto& e : r.swap.served_by_version) {
    const bool is_to = e.first == r.swap.to_version;
    rows.push_back({std::to_string(e.first), std::to_string(e.second),
                    is_to ? (r.swap.rolled_back ? "candidate (rolled back)"
                                                : "candidate (promoted)")
                          : "incumbent",
                    is_to ? std::to_string(r.swap.canary_served) : "-",
                    is_to ? std::to_string(r.swap.canary_faults) : "-"});
  }
  return rows;
}

}  // namespace gbo::serve
