// Live model versioning and zero-downtime hot swap (DESIGN.md §11).
//
// The paper's premise is that crossbar weights are re-written over a
// device's life: NIA retraining and sigma recalibration produce new weight
// states that must reach deployed hardware. This module makes that operable
// under live traffic:
//
//   * ModelRegistry — immutable, refcounted model snapshots with
//     monotonically increasing version ids. A serving replica pins every
//     snapshot it may execute (shared_ptr) at warmup, so a version stays
//     alive for as long as any in-flight request is pinned to it and the
//     registry never mutates a snapshot after registration.
//   * SwapPolicy — the rollout schedule: cut one canary replica over to the
//     candidate version at a virtual instant, judge its health through the
//     §7 circuit breaker (deterministic candidate fault stream + optional
//     virtual-latency SLO), then either roll every remaining replica
//     forward or roll the canary back.
//   * plan_swap / apply_swap — a pure overlay on the §10 RouterPlan. The
//     virtual cost model is version-blind (a candidate serves at primary
//     cost), so the swap cannot perturb admission, shedding, batching, or
//     routing: the overlay only stamps each request's pinned version,
//     rewrites canary-window primary decisions to ServeMode::kCanary, and
//     fixes the cutover schedule. Everything — swap schedule, canary
//     verdict, per-request version assignment — is a pure function of
//     (trace, policies) and bitwise identical at any worker count.
//
// Pinning rule: a request executes on the version that was current for its
// replica at its ADMISSION instant (arrival on the virtual clock), no
// matter when it is popped. A cutover that lands while a request is queued
// must not move it — that is what "zero mixed-version payloads" means: the
// payload of request id is attributable to exactly one registered version,
// and bitwise equal to a run that served the whole trace pinned to that
// version at the same fidelity.
#pragma once

#include "obs/trace.hpp"
#include "serve/backend.hpp"
#include "serve/fault.hpp"
#include "serve/request.hpp"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gbo::serve {

struct RouterPlan;  // serve/router.hpp

/// One immutable registered model. The backend reference is borrowed (the
/// caller keeps the model alive, exactly like ServerSpec's backends); the
/// snapshot object itself is what the refcount protects — lookups hand out
/// shared_ptr so a version cannot be dropped while a replica still pins it.
struct ModelSnapshot {
  std::uint32_t version = 0;  // dense, monotonically increasing from 1
  const Backend* backend = nullptr;
  std::string label;
};

/// Append-only registry of model snapshots. Version ids are dense
/// (1, 2, 3, ...) so a replica can pin the whole registry into a flat
/// vector and resolve a request's version without locks on the hot path.
/// Thread-safe: register_model and lookups may race.
class ModelRegistry {
 public:
  /// Registers a new snapshot and returns its version id (>= 1). The
  /// backend must outlive the registry; versions above 255 are rejected
  /// (the causal trace folds the version into one byte, DESIGN.md §11).
  std::uint32_t register_model(const Backend& backend, std::string label);

  /// The snapshot for `version`, or nullptr when unregistered. The returned
  /// shared_ptr is the pin: hold it for as long as the version may execute.
  std::shared_ptr<const ModelSnapshot> snapshot(std::uint32_t version) const;

  bool has(std::uint32_t version) const { return snapshot(version) != nullptr; }
  /// Highest registered version id; 0 when empty.
  std::uint32_t latest() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const ModelSnapshot>> snaps_;
};

/// The rollout schedule and health-check policy for one canary swap.
struct SwapPolicy {
  bool enabled = false;
  std::uint32_t from_version = 0;  // version serving when the trace starts
  std::uint32_t to_version = 0;    // candidate being rolled out
  /// Virtual instant the canary replica cuts over to to_version.
  std::uint64_t start_us = 0;
  /// Replica that canaries the candidate. Must be active; an inactive
  /// choice deterministically falls back to the first active replica.
  std::uint8_t canary_replica = 0;
  /// Canary-served primary requests evaluated before the verdict (the
  /// breaker may cut the evaluation short by opening).
  std::size_t canary_requests = 16;
  /// Virtual-latency health threshold on canary-served requests; a served
  /// request whose virtual latency exceeds it counts as a health failure.
  /// 0 disables the latency check.
  std::uint64_t canary_latency_slo_us = 0;
  /// Health-check breaker (PR 6 semantics on the virtual clock): the
  /// rollout rolls back the moment the breaker opens over the canary's
  /// health stream, and promotes if it never does.
  BreakerPolicy breaker;
  /// Deterministic fault stream attributed to the candidate version (pure
  /// in (seed, request id)): fails(id, 0) on a canary-served request is a
  /// health failure. This is how a seeded faulty candidate exercises the
  /// rollback path in tests and benches.
  FaultConfig candidate_fault;
};

/// One planned replica cutover.
struct SwapCutover {
  std::uint64_t at_us = 0;      // virtual instant
  std::uint8_t replica = 0;
  std::uint32_t version = 0;    // version the replica serves from at_us on
};

/// The planned swap trajectory: pure in (trace, router plan, policy).
struct SwapPlan {
  bool enabled = false;
  std::uint32_t from_version = 0;
  std::uint32_t to_version = 0;
  std::uint8_t canary_replica = 0;  // after the active-set fallback
  std::uint64_t start_us = 0;
  /// Virtual instant the verdict lands: v_done of the canary request that
  /// decided it (breaker open => rollback; evaluation exhausted without an
  /// open => promote). start_us when nothing was canary-served.
  std::uint64_t verdict_us = 0;
  bool rolled_back = false;
  std::size_t canary_served = 0;   // health-evaluated canary requests
  std::size_t canary_faults = 0;   // health failures among them
  std::size_t breaker_opens = 0;
  bool latency_breach = false;     // any failure came from the latency SLO
  std::vector<SwapCutover> cutovers;
  /// Pinned version per global request id (admission rule above).
  std::vector<std::uint32_t> version_of;
  /// FNV-1a over (id, version) pairs in id order — the version-provenance
  /// fingerprint the gates compare across worker counts and artifacts.
  std::uint64_t version_hash = 0;
};

/// Computes the swap trajectory for a routed plan and applies it in place:
/// stamps Decision::version in the fleet ledger and every per-replica
/// sub-plan, rewrites canary-window primary decisions to ServeMode::kCanary,
/// and moves the served_primary/served_canary counters accordingly. The
/// overlay never touches outcomes, virtual times, or the shed set — the
/// cost model is version-blind by design, so rp's shed/routing hashes are
/// unchanged. Returns the plan (also stored into rp.swap).
SwapPlan apply_swap(RouterPlan& rp, const std::vector<Arrival>& trace,
                    const SwapPolicy& policy);

/// The kSwap/kCanary causal tuples of a swap plan (DESIGN.md §11): one
/// kSwap per cutover (id=replica, a=version, arg=virtual us) and one
/// kCanary verdict (id=canary replica, a=1 promote / 0 rollback,
/// arg=verdict us). Appended into the fleet oracle by
/// expected_causal_fingerprint(RouterPlan).
void append_causal_swap_tuples(const SwapPlan& sp,
                               std::vector<obs::CausalTuple>& tuples);

}  // namespace gbo::serve
