#include "serve/server.hpp"

#include "common/logging.hpp"
#include "common/thread_pool.hpp"

#include <algorithm>
#include <thread>

namespace gbo::serve {
namespace {

std::uint64_t us_since(const std::chrono::steady_clock::time_point& t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

InferenceServer::InferenceServer(const Backend& backend,
                                 const data::Dataset& dataset, ServeConfig cfg)
    : backend_(backend), dataset_(dataset), cfg_(cfg), root_(cfg.seed) {
  if (cfg_.num_workers == 0) {
    log_warn("serve: num_workers == 0, clamping to 1");
    cfg_.num_workers = 1;
  }
  if (cfg_.batch.max_batch == 0) {
    log_warn("serve: max_batch == 0, clamping to 1");
    cfg_.batch.max_batch = 1;
  }
  workers_.reserve(cfg_.num_workers);
  for (std::size_t i = 0; i < cfg_.num_workers; ++i) {
    auto w = std::make_unique<Worker>();
    if (dataset_.size() > 0) w->in_shape = dataset_.images.shape();
    workers_.push_back(std::move(w));
  }
}

void InferenceServer::warmup() {
  if (warmed_) return;
  warmed_ = true;
  // The execution mode is frozen here: the backend's hook configuration
  // must not change once the server has warmed up.
  mode_ = backend_.fusion_mode();
  if (dataset_.size() == 0) {
    log_warn("serve: warmup over an empty dataset skipped");
    return;
  }
  const std::size_t len = dataset_.sample_numel();
  const float* images = dataset_.images.data();
  // Opaque stochastic backends only ever see unit batches; both fused
  // modes get their arenas, gather buffers, and row-stream vectors sized
  // for the largest fused batch too. Warmup also fills the layers'
  // frozen-weight panel caches (prepack-at-deploy, DESIGN.md §6), so the
  // first real request already packs nothing.
  std::vector<std::size_t> sizes{1};
  if (mode_ != FusionMode::kPerRequest && cfg_.batch.max_batch > 1)
    sizes.push_back(cfg_.batch.max_batch);
  for (auto& wp : workers_) {
    Worker& w = *wp;
    for (std::size_t b : sizes) {
      w.in_shape[0] = b;
      w.gather.resize(w.in_shape);
      float* g = w.gather.data();
      for (std::size_t i = 0; i < b; ++i) {
        const std::size_t s = i % dataset_.size();
        std::copy(images + s * len, images + (s + 1) * len, g + i * len);
      }
      // A dedicated stream id far above any request id; draws are discarded.
      w.ctx.rng = root_.fork(~std::uint64_t{0});
      if (mode_ == FusionMode::kFusedPerSample)
        w.ctx.row_rngs.assign(b, root_.fork(~std::uint64_t{0}));
      else
        w.ctx.row_rngs.clear();
      Tensor logits = backend_.run(w.gather, w.ctx);
      out_dim_ = logits.numel() / b;
      w.ctx.recycle(std::move(logits));
    }
  }
}

void InferenceServer::process_batch(
    Worker& w, const std::vector<Request>& batch, float* out_rows,
    std::uint64_t* completion_us,
    const std::chrono::steady_clock::time_point& t0) {
  const std::size_t len = dataset_.sample_numel();
  const float* images = dataset_.images.data();
  if (mode_ != FusionMode::kPerRequest) {
    // Fused whole-tensor execution; row-equal to unit batches by the
    // kernel row-independence contract (serve/backend.hpp). Stochastic
    // configurations ride the same call with one request stream per row
    // (DESIGN.md §6), so their payloads are likewise independent of how
    // the micro-batcher grouped the requests.
    w.in_shape[0] = batch.size();
    w.gather.resize(w.in_shape);
    float* g = w.gather.data();
    for (std::size_t i = 0; i < batch.size(); ++i)
      std::copy(images + batch[i].sample * len,
                images + (batch[i].sample + 1) * len, g + i * len);
    if (mode_ == FusionMode::kFusedPerSample) {
      w.ctx.row_rngs.resize(batch.size());  // capacity warmed at max_batch
      for (std::size_t i = 0; i < batch.size(); ++i)
        w.ctx.row_rngs[i] = root_.fork(batch[i].id);
    }
    Tensor logits = backend_.run(w.gather, w.ctx);
    const float* rows = logits.data();
    for (std::size_t i = 0; i < batch.size(); ++i)
      std::copy(rows + i * out_dim_, rows + (i + 1) * out_dim_,
                out_rows + batch[i].id * out_dim_);
    w.ctx.recycle(std::move(logits));
    ++w.exec_calls;
  } else {
    // Per-request execution on the (seed, request id) fork: the noise
    // stream — and therefore the payload — is independent of how the
    // micro-batcher grouped the requests.
    w.in_shape[0] = 1;
    w.gather.resize(w.in_shape);
    float* g = w.gather.data();
    for (const Request& r : batch) {
      std::copy(images + r.sample * len, images + (r.sample + 1) * len, g);
      w.ctx.rng = root_.fork(r.id);
      Tensor logits = backend_.run(w.gather, w.ctx);
      std::copy(logits.data(), logits.data() + out_dim_,
                out_rows + r.id * out_dim_);
      w.ctx.recycle(std::move(logits));
      ++w.exec_calls;
    }
  }
  const std::uint64_t done = us_since(t0);
  for (const Request& r : batch) completion_us[r.id] = done;
  if (w.batch_hist.size() <= batch.size()) w.batch_hist.resize(batch.size() + 1);
  ++w.batch_hist[batch.size()];
  w.served += batch.size();
}

ServeReport InferenceServer::run(const std::vector<Arrival>& trace) {
  ServeReport rep;
  rep.workers = workers_.size();
  if (trace.empty()) {
    log_warn("serve: empty request trace, nothing to serve");
    return rep;
  }
  if (dataset_.size() == 0) {
    log_warn("serve: empty dataset, nothing to serve");
    return rep;
  }
  warmup();

  std::vector<std::size_t> allocs_before;
  for (auto& w : workers_) {
    allocs_before.push_back(w->arena.stats().system_allocs);
    w->batch_hist.clear();
    w->served = 0;
    w->exec_calls = 0;
  }
  rep.fusion = mode_ == FusionMode::kFused
                   ? "fused"
                   : mode_ == FusionMode::kFusedPerSample ? "fused_per_sample"
                                                          : "per_request";

  const std::size_t num_requests = trace.size();
  rep.requests = num_requests;
  rep.outputs = Tensor({num_requests, out_dim_});
  std::vector<std::uint64_t> enqueue(num_requests, 0);
  std::vector<std::uint64_t> completion(num_requests, 0);
  // Taken once, before the workers start: the non-const data() accessor
  // bumps the tensor's version counter (a plain increment), so it must not
  // be re-evaluated concurrently from the worker loops.
  float* const out_rows = rep.outputs.data();
  std::uint64_t* const completion_us = completion.data();

  RequestQueue queue;
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t num_workers = workers_.size();

  // Block 0 replays the trace; blocks 1..W are the worker loops. The pool
  // claims blocks in order, so the producer always starts first; worker
  // loops exit when the queue is closed and drained. With a single-thread
  // pool the blocks simply run back to back (produce all, then drain).
  ThreadPool::instance().parallel_for(
      0, num_workers + 1, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t block = lo; block < hi; ++block) {
          if (block == 0) {
            for (std::size_t i = 0; i < num_requests; ++i) {
              std::this_thread::sleep_until(
                  t0 + std::chrono::microseconds(trace[i].t_us));
              Request r;
              r.id = i;
              r.sample = trace[i].sample;
              r.enqueue_us = us_since(t0);
              enqueue[i] = r.enqueue_us;
              queue.push(r);
            }
            queue.close();
          } else {
            Worker& w = *workers_[block - 1];
            std::vector<Request> batch;
            while (queue.pop_batch(cfg_.batch, batch))
              process_batch(w, batch, out_rows, completion_us, t0);
          }
        }
      });

  rep.wall_s = static_cast<double>(us_since(t0)) * 1e-6;
  rep.latencies_us.resize(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i)
    rep.latencies_us[i] = completion[i] - enqueue[i];
  rep.latency = LatencyStats::compute(rep.latencies_us);
  rep.queue = queue.depth_stats();

  std::size_t batches = 0;
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    Worker& w = *workers_[wi];
    rep.completed += w.served;
    rep.exec_calls += w.exec_calls;
    if (rep.batch_hist.size() < w.batch_hist.size())
      rep.batch_hist.resize(w.batch_hist.size(), 0);
    for (std::size_t b = 0; b < w.batch_hist.size(); ++b) {
      rep.batch_hist[b] += w.batch_hist[b];
      batches += w.batch_hist[b];
    }
    const ScratchArena::Stats st = w.arena.stats();
    rep.arena.system_allocs += st.system_allocs;
    rep.arena.steady_allocs += st.system_allocs - allocs_before[wi];
    rep.arena.high_water_bytes =
        std::max(rep.arena.high_water_bytes, st.bump_high_water_bytes);
    rep.arena.reserved_bytes += st.reserved_bytes;
  }
  rep.mean_batch = batches == 0 ? 0.0
                                : static_cast<double>(rep.completed) /
                                      static_cast<double>(batches);
  rep.mean_exec_batch = rep.exec_calls == 0
                            ? 0.0
                            : static_cast<double>(rep.completed) /
                                  static_cast<double>(rep.exec_calls);
  rep.throughput_rps =
      rep.wall_s > 0.0 ? static_cast<double>(rep.completed) / rep.wall_s : 0.0;
  return rep;
}

}  // namespace gbo::serve
