#include "serve/server.hpp"

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>
#include <thread>

namespace gbo::serve {
namespace {

std::uint64_t us_since(const std::chrono::steady_clock::time_point& t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

std::uint8_t outcome_code(Decision::Outcome o) {
  return static_cast<std::uint8_t>(o);
}

// ShedReason -> Decision::Outcome code, the inverse of shed_reason(); the
// runtime logs its shed set in the same encoding the planner fingerprints.
std::uint8_t reason_code(ShedReason r) {
  switch (r) {
    case ShedReason::kCapacity:
      return outcome_code(Decision::Outcome::kRejected);
    case ShedReason::kEvicted:
      return outcome_code(Decision::Outcome::kEvicted);
    case ShedReason::kExpired:
      return outcome_code(Decision::Outcome::kShedExpired);
    case ShedReason::kOverload:
      return outcome_code(Decision::Outcome::kShedOverload);
    case ShedReason::kNone: break;
  }
  return outcome_code(Decision::Outcome::kServed);
}

// Runs the one-pass validation, throws on errors (all of them, not just the
// first), logs every clamp warning, and hands back the primary backend so
// the constructor's reference members can initialize. `single_replica`
// additionally rejects multi-replica specs — ReplicaGroup (serve/router.cpp)
// is the only consumer allowed to build those.
const Backend& checked_primary(const ServerSpec& spec, bool single_replica) {
  ServerSpec::Validation v = spec.validate();
  if (single_replica && spec.normalized_replicas() > 1)
    v.errors.push_back(
        "replicas > 1 requires ReplicaGroup, not InferenceServer");
  if (single_replica && spec.swap_policy().enabled)
    v.errors.push_back(
        "a hot swap requires ReplicaGroup, not InferenceServer: the canary "
        "boundary is a replica");
  if (!v.ok()) {
    std::string msg = "serve: invalid ServerSpec:";
    for (const std::string& e : v.errors) msg += " [" + e + "]";
    throw std::invalid_argument(msg);
  }
  for (const std::string& w : v.warnings) log_warn("serve: ", w);
  return *spec.primary_backend();
}

}  // namespace

ServerSpec::Validation ServerSpec::validate() const {
  Validation v;
  if (primary_ == nullptr) v.errors.push_back("no primary backend set");
  if (dataset_ == nullptr) v.errors.push_back("no dataset set");
  if (cfg_.num_workers == 0)
    v.warnings.push_back("num_workers == 0, clamping to 1");
  if (cfg_.batch.max_batch == 0)
    v.warnings.push_back("max_batch == 0, clamping to 1");
  if (replicas_ == 0) v.warnings.push_back("replicas == 0, clamping to 1");
  if (replicas_ > 1 && !cfg_.slo.enabled)
    v.errors.push_back(
        "replicas > 1 requires the SLO control plane (cfg.slo.enabled): "
        "routing decisions live on the virtual clock");
  if (router_.min_replicas > replicas_ && replicas_ > 0)
    v.warnings.push_back("router.min_replicas exceeds replicas, clamping");
  if (swap_.enabled) {
    if (!cfg_.slo.enabled)
      v.errors.push_back(
          "swap requires the SLO control plane (cfg.slo.enabled): the "
          "rollout schedule lives on the virtual clock");
    if (registry_ == nullptr) {
      v.errors.push_back("swap requires a model registry (registry())");
    } else {
      if (!registry_->has(swap_.from_version))
        v.errors.push_back("swap.from_version is not registered");
      if (!registry_->has(swap_.to_version))
        v.errors.push_back("swap.to_version is not registered");
    }
    if (swap_.from_version == swap_.to_version)
      v.errors.push_back("swap.from_version == swap.to_version: nothing to "
                         "roll out");
    if (swap_.canary_replica >= normalized_replicas())
      v.warnings.push_back(
          "swap.canary_replica exceeds replicas; the first active replica "
          "canaries instead");
  }
  return v;
}

ServeConfig ServerSpec::normalized_config() const {
  ServeConfig cfg = cfg_;
  if (cfg.num_workers == 0) cfg.num_workers = 1;
  if (cfg.batch.max_batch == 0) cfg.batch.max_batch = 1;
  return cfg;
}

std::size_t ServerSpec::normalized_replicas() const {
  return replicas_ == 0 ? 1 : replicas_;
}

InferenceServer::InferenceServer(const ServerSpec& spec)
    : backend_(checked_primary(spec, /*single_replica=*/true)),
      degraded_(spec.degraded_backend()),
      dataset_(*spec.dataset_ref()),
      registry_(spec.model_registry()),
      cfg_(spec.normalized_config()),
      root_(cfg_.seed) {
  workers_.reserve(cfg_.num_workers);
  for (std::size_t i = 0; i < cfg_.num_workers; ++i) {
    auto w = std::make_unique<Worker>();
    if (dataset_.size() > 0) w->in_shape = dataset_.images.shape();
    workers_.push_back(std::move(w));
  }
}

void InferenceServer::warmup_backend(const Backend& backend, FusionMode mode) {
  const std::size_t len = dataset_.sample_numel();
  const float* images = dataset_.images.data();
  // Opaque stochastic backends only ever see unit batches; both fused
  // modes get their arenas, gather buffers, and row-stream vectors sized
  // for the largest fused batch too. Warmup also fills the layers'
  // frozen-weight panel caches (prepack-at-deploy, DESIGN.md §6), so the
  // first real request already packs nothing.
  std::vector<std::size_t> sizes{1};
  if (mode != FusionMode::kPerRequest && cfg_.batch.max_batch > 1)
    sizes.push_back(cfg_.batch.max_batch);
  for (auto& wp : workers_) {
    Worker& w = *wp;
    for (std::size_t b : sizes) {
      w.in_shape[0] = b;
      w.gather.resize(w.in_shape);
      float* g = w.gather.data();
      for (std::size_t i = 0; i < b; ++i) {
        const std::size_t s = i % dataset_.size();
        std::copy(images + s * len, images + (s + 1) * len, g + i * len);
      }
      // A dedicated stream id far above any request id; draws are discarded.
      w.ctx.rng = root_.fork(~std::uint64_t{0});
      if (mode == FusionMode::kFusedPerSample)
        w.ctx.row_rngs.assign(b, root_.fork(~std::uint64_t{0}));
      else
        w.ctx.row_rngs.clear();
      Tensor logits = backend.run(w.gather, w.ctx);
      out_dim_ = logits.numel() / b;
      w.ctx.recycle(std::move(logits));
    }
  }
}

void InferenceServer::warmup() {
  if (warmed_) return;
  warmed_ = true;
  // The execution modes are frozen here: backend hook configuration must
  // not change once the server has warmed up.
  mode_ = backend_.fusion_mode();
  dmode_ = degraded_ != nullptr ? degraded_->fusion_mode() : mode_;
  if (dataset_.size() == 0) {
    log_warn("serve: warmup over an empty dataset skipped");
    return;
  }
  warmup_backend(backend_, mode_);
  const std::size_t primary_dim = out_dim_;
  if (degraded_ != nullptr) {
    warmup_backend(*degraded_, dmode_);
    if (out_dim_ != primary_dim) {
      log_warn(
          "serve: degraded backend output dim mismatch, serving degraded "
          "requests on the primary backend instead");
      degraded_ = nullptr;
      dmode_ = mode_;
      out_dim_ = primary_dim;
    }
  }
  if (registry_ != nullptr) {
    // Pin and warm every registered version now, before any cutover can
    // route a request at it (prepack-before-cutover, DESIGN.md §11): the
    // incoming version's weight-panel caches, arenas, and gather buffers
    // are steady-state before the first swapped request arrives, so a live
    // cutover packs, binarizes, and allocates nothing.
    const std::uint32_t latest = registry_->latest();
    pinned_.clear();
    pinned_modes_.clear();
    pinned_.reserve(latest);
    pinned_modes_.reserve(latest);
    for (std::uint32_t ver = 1; ver <= latest; ++ver) {
      std::shared_ptr<const ModelSnapshot> snap = registry_->snapshot(ver);
      const FusionMode m = snap->backend->fusion_mode();
      warmup_backend(*snap->backend, m);
      if (out_dim_ != primary_dim)
        throw std::invalid_argument(
            "serve: registry version " + std::to_string(ver) + " (" +
            snap->label + ") output dim mismatch: a hot swap must not " +
            "change the response shape under live traffic");
      pinned_.push_back(std::move(snap));
      pinned_modes_.push_back(m);
    }
    out_dim_ = primary_dim;
  }
}

const Backend& InferenceServer::backend_for_version(
    std::uint32_t version) const {
  if (version == 0 || pinned_.empty()) return backend_;
  return *pinned_[version - 1]->backend;
}

FusionMode InferenceServer::mode_for_version(std::uint32_t version) const {
  if (version == 0 || pinned_modes_.empty()) return mode_;
  return pinned_modes_[version - 1];
}

void InferenceServer::exec_rows(Worker& w, const Backend& backend,
                                FusionMode mode, const Request* group,
                                std::size_t n, float* out_rows) {
  if (n == 0) return;
  const std::size_t len = dataset_.sample_numel();
  const float* images = dataset_.images.data();
  if (mode != FusionMode::kPerRequest) {
    // Fused whole-tensor execution; row-equal to unit batches by the
    // kernel row-independence contract (serve/backend.hpp). Stochastic
    // configurations ride the same call with one request stream per row
    // (DESIGN.md §6), so their payloads are likewise independent of how
    // the micro-batcher grouped the requests.
    w.in_shape[0] = n;
    w.gather.resize(w.in_shape);
    float* g = w.gather.data();
    for (std::size_t i = 0; i < n; ++i)
      std::copy(images + group[i].sample * len,
                images + (group[i].sample + 1) * len, g + i * len);
    if (mode == FusionMode::kFusedPerSample) {
      w.ctx.row_rngs.resize(n);  // capacity warmed at max_batch
      for (std::size_t i = 0; i < n; ++i)
        w.ctx.row_rngs[i] = root_.fork(group[i].id);
    }
    Tensor logits = backend.run(w.gather, w.ctx);
    const float* rows = logits.data();
    for (std::size_t i = 0; i < n; ++i)
      std::copy(rows + i * out_dim_, rows + (i + 1) * out_dim_,
                out_rows + group[i].id * out_dim_);
    w.ctx.recycle(std::move(logits));
    ++w.exec_calls;
  } else {
    // Per-request execution on the (seed, request id) fork: the noise
    // stream — and therefore the payload — is independent of how the
    // micro-batcher grouped the requests.
    w.in_shape[0] = 1;
    w.gather.resize(w.in_shape);
    float* g = w.gather.data();
    for (std::size_t i = 0; i < n; ++i) {
      const Request& r = group[i];
      std::copy(images + r.sample * len, images + (r.sample + 1) * len, g);
      w.ctx.rng = root_.fork(r.id);
      Tensor logits = backend.run(w.gather, w.ctx);
      std::copy(logits.data(), logits.data() + out_dim_,
                out_rows + r.id * out_dim_);
      w.ctx.recycle(std::move(logits));
      ++w.exec_calls;
    }
  }
}

void InferenceServer::process_batch(
    Worker& w, const std::vector<Request>& batch, float* out_rows,
    std::uint64_t* completion_us,
    const std::chrono::steady_clock::time_point& t0) {
  [[maybe_unused]] const std::uint64_t seq =
      batch_seq_.fetch_add(1, std::memory_order_relaxed);
  GBO_TRACE_SPAN(obs::EventType::kBatch, seq, 0, batch.size());
  for ([[maybe_unused]] const Request& r : batch)
    GBO_TRACE_EVENT(obs::EventType::kBatchMember, r.id, 0, seq);
  exec_rows(w, backend_, mode_, batch.data(), batch.size(), out_rows);
  const std::uint64_t done = us_since(t0);
  for (const Request& r : batch) {
    completion_us[r.id] = done;
    GBO_TRACE_EVENT(obs::EventType::kDeliver, r.id,
                    static_cast<std::uint16_t>(r.mode), 0);
  }
  if (w.batch_hist.size() <= batch.size()) w.batch_hist.resize(batch.size() + 1);
  ++w.batch_hist[batch.size()];
  w.served += batch.size();
}

void InferenceServer::process_batch_slo(
    Worker& w, const std::vector<Request>& batch, float* out_rows,
    std::uint64_t* completion_us,
    const std::chrono::steady_clock::time_point& t0,
    const FaultInjector& injector,
    [[maybe_unused]] const std::vector<Decision>& decisions) {
  const RetryPolicy& retry = cfg_.slo.retry;
  [[maybe_unused]] const std::uint64_t seq =
      batch_seq_.fetch_add(1, std::memory_order_relaxed);
  GBO_TRACE_SPAN(obs::EventType::kBatch, seq, 1, batch.size());
  w.primary_group.clear();
  w.degraded_group.clear();
  // Injected stalls and retry backoff are real wall-time sleeps taken
  // before execution; they stretch latency but cannot change routing or
  // payloads — those were fixed on the virtual clock.
  std::uint64_t sleep_us = 0;
  for (const Request& r : batch) {
    GBO_TRACE_EVENT(obs::EventType::kBatchMember, r.id, 0, seq);
    const std::uint64_t stall = injector.stall_us(r.id);
    if (stall > 0) {
      sleep_us += stall;
      ++w.stalls;
    }
    switch (r.mode) {
      case ServeMode::kPrimary:
      case ServeMode::kCanary: {
        // Re-derive the retry ladder live from the same pure injector the
        // planner consulted: the worker observes exactly the failed
        // attempts the plan charged for, then the surviving attempt runs.
        // A canary request is primary-class — full fidelity, same retry
        // ladder — it only resolves to the candidate version's backend.
        const std::size_t a =
            injector.attempts_to_success(r.id, retry.max_attempts);
        if (a > 0) {
          ++w.retried;
          w.faults += a;
          sleep_us += a * retry.backoff_us;
          GBO_TRACE_EVENT(obs::EventType::kRetry, r.id,
                          static_cast<std::uint16_t>(a), 0);
        }
        w.primary_group.push_back(r);
        break;
      }
      case ServeMode::kDegradedFallback:
        // Every allowed attempt fails before the fallback executes.
        ++w.fallbacks;
        w.faults += retry.max_attempts;
        sleep_us += retry.max_attempts * retry.backoff_us;
        if (retry.max_attempts > 0)
          GBO_TRACE_EVENT(obs::EventType::kRetry, r.id,
                          static_cast<std::uint16_t>(retry.max_attempts), 0);
        w.degraded_group.push_back(r);
        break;
      case ServeMode::kDegradedLadder:
      case ServeMode::kDegradedBreaker:
        w.degraded_group.push_back(r);
        break;
    }
  }
  if (sleep_us > 0) {
    GBO_TRACE_SPAN(obs::EventType::kStall, seq, 0, sleep_us);
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
  // Primary-class requests execute on the backend of their pinned version
  // (DESIGN.md §11). Group the batch into contiguous same-version runs with
  // an in-place insertion sort — batches are at most max_batch long and hold
  // at most two distinct versions mid-swap, and std::stable_sort may heap-
  // allocate its scratch, which the steady-state zero-alloc gate forbids.
  std::vector<Request>& pg = w.primary_group;
  for (std::size_t i = 1; i < pg.size(); ++i) {
    const Request key = pg[i];
    std::size_t j = i;
    for (; j > 0 && pg[j - 1].version > key.version; --j) pg[j] = pg[j - 1];
    pg[j] = key;
  }
  for (std::size_t lo = 0; lo < pg.size();) {
    std::size_t hi = lo + 1;
    while (hi < pg.size() && pg[hi].version == pg[lo].version) ++hi;
    const std::uint32_t ver = pg[lo].version;
    exec_rows(w, backend_for_version(ver), mode_for_version(ver),
              pg.data() + lo, hi - lo, out_rows);
    lo = hi;
  }
  exec_rows(w, degraded_ != nullptr ? *degraded_ : backend_,
            degraded_ != nullptr ? dmode_ : mode_, w.degraded_group.data(),
            w.degraded_group.size(), out_rows);
  w.degraded += w.degraded_group.size();
  const std::uint64_t done = us_since(t0);
  for (const Request& r : batch) {
    completion_us[r.id] = done;
    // The delivery event folds the pinned version into the high byte of
    // `a`, matching the planner oracle (serve/policy.cpp): version 0 —
    // every non-swap run — reproduces the historical event bit for bit.
    GBO_TRACE_EVENT(obs::EventType::kDeliver, r.id,
                    static_cast<std::uint16_t>(
                        static_cast<std::uint16_t>(r.mode) |
                        static_cast<std::uint16_t>((r.version & 0xff) << 8)),
                    decisions[r.id].v_done_us);
  }
  if (w.batch_hist.size() <= batch.size()) w.batch_hist.resize(batch.size() + 1);
  ++w.batch_hist[batch.size()];
  w.served += batch.size();
}

void InferenceServer::drain_queue_slo(
    Worker& w, RequestQueue& queue, float* out_rows,
    std::uint64_t* completion_us,
    const std::chrono::steady_clock::time_point& t0,
    const FaultInjector& injector, const std::vector<Decision>& decisions) {
  std::vector<Request> batch, shed;
  while (queue.pop_batch(cfg_.batch, batch, &shed)) {
    for (const Request& s : shed) {
      w.shed_log.emplace_back(s.id, reason_code(s.reason));
      GBO_TRACE_EVENT(obs::EventType::kShed, s.id, reason_code(s.reason), 0);
    }
    if (!batch.empty())
      process_batch_slo(w, batch, out_rows, completion_us, t0, injector,
                        decisions);
  }
}

ServeReport InferenceServer::run(const std::vector<Arrival>& trace) {
  if (cfg_.slo.enabled) return run_slo(trace);
  ServeReport rep;
  rep.workers = workers_.size();
  if (trace.empty()) {
    log_warn("serve: empty request trace, nothing to serve");
    return rep;
  }
  if (dataset_.size() == 0) {
    log_warn("serve: empty dataset, nothing to serve");
    return rep;
  }
  warmup();

  std::vector<std::size_t> allocs_before;
  for (auto& w : workers_) {
    allocs_before.push_back(w->arena.stats().system_allocs);
    w->batch_hist.clear();
    w->served = 0;
    w->exec_calls = 0;
  }
  rep.fusion = mode_ == FusionMode::kFused
                   ? "fused"
                   : mode_ == FusionMode::kFusedPerSample ? "fused_per_sample"
                                                          : "per_request";

  const std::size_t num_requests = trace.size();
  rep.requests = num_requests;
  rep.outputs = Tensor({num_requests, out_dim_});
  std::vector<std::uint64_t> enqueue(num_requests, 0);
  std::vector<std::uint64_t> completion(num_requests, 0);
  // Taken once, before the workers start: the non-const data() accessor
  // bumps the tensor's version counter (a plain increment), so it must not
  // be re-evaluated concurrently from the worker loops.
  float* const out_rows = rep.outputs.data();
  std::uint64_t* const completion_us = completion.data();

  RequestQueue queue;
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t num_workers = workers_.size();

  // Block 0 replays the trace; blocks 1..W are the worker loops. The pool
  // claims blocks in order, so the producer always starts first; worker
  // loops exit when the queue is closed and drained. With a single-thread
  // pool the blocks simply run back to back (produce all, then drain).
  ThreadPool::instance().parallel_for(
      0, num_workers + 1, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t block = lo; block < hi; ++block) {
          obs::prime();
          if (block == 0) {
            for (std::size_t i = 0; i < num_requests; ++i) {
              std::this_thread::sleep_until(
                  t0 + std::chrono::microseconds(trace[i].t_us));
              Request r;
              r.id = i;
              r.sample = trace[i].sample;
              r.enqueue_us = us_since(t0);
              enqueue[i] = r.enqueue_us;
              queue.push(r);
              GBO_TRACE_EVENT(obs::EventType::kAdmit, i, 0, 0);
            }
            queue.close();
          } else {
            Worker& w = *workers_[block - 1];
            std::vector<Request> batch;
            while (queue.pop_batch(cfg_.batch, batch))
              process_batch(w, batch, out_rows, completion_us, t0);
          }
        }
      });

  rep.wall_s = static_cast<double>(us_since(t0)) * 1e-6;
  rep.latencies_us.resize(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i)
    rep.latencies_us[i] = completion[i] - enqueue[i];
  rep.latency = LatencyStats::compute(rep.latencies_us);
  rep.queue = queue.depth_stats();

  std::size_t batches = 0;
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    Worker& w = *workers_[wi];
    rep.completed += w.served;
    rep.exec_calls += w.exec_calls;
    if (rep.batch_hist.size() < w.batch_hist.size())
      rep.batch_hist.resize(w.batch_hist.size(), 0);
    for (std::size_t b = 0; b < w.batch_hist.size(); ++b) {
      rep.batch_hist[b] += w.batch_hist[b];
      batches += w.batch_hist[b];
    }
    const ScratchArena::Stats st = w.arena.stats();
    rep.arena.system_allocs += st.system_allocs;
    rep.arena.steady_allocs += st.system_allocs - allocs_before[wi];
    rep.arena.high_water_bytes =
        std::max(rep.arena.high_water_bytes, st.bump_high_water_bytes);
    rep.arena.reserved_bytes += st.reserved_bytes;
  }
  rep.mean_batch = batches == 0 ? 0.0
                                : static_cast<double>(rep.completed) /
                                      static_cast<double>(batches);
  rep.mean_exec_batch = rep.exec_calls == 0
                            ? 0.0
                            : static_cast<double>(rep.completed) /
                                  static_cast<double>(rep.exec_calls);
  rep.throughput_rps =
      rep.wall_s > 0.0 ? static_cast<double>(rep.completed) / rep.wall_s : 0.0;
  return rep;
}

ServeReport InferenceServer::run_slo(const std::vector<Arrival>& trace) {
  ServeReport rep;
  rep.workers = workers_.size();
  if (trace.empty()) {
    log_warn("serve: empty request trace, nothing to serve");
    return rep;
  }
  if (dataset_.size() == 0) {
    log_warn("serve: empty dataset, nothing to serve");
    return rep;
  }
  warmup();

  // Every control decision is fixed here, on the virtual clock, before a
  // single wall-clock microsecond elapses (DESIGN.md §7). The replay below
  // only executes the plan.
  const Plan p = plan(trace, cfg_.slo, cfg_.batch);
  const FaultInjector injector(cfg_.slo.fault);

  std::vector<std::size_t> allocs_before;
  for (auto& w : workers_) {
    allocs_before.push_back(w->arena.stats().system_allocs);
    w->batch_hist.clear();
    w->served = 0;
    w->exec_calls = 0;
    w->primary_group.clear();
    w->primary_group.reserve(cfg_.batch.max_batch);
    w->degraded_group.clear();
    w->degraded_group.reserve(cfg_.batch.max_batch);
    w->shed_log.clear();
    w->retried = w->faults = w->fallbacks = w->degraded = w->stalls = 0;
  }
  rep.fusion = mode_ == FusionMode::kFused
                   ? "fused"
                   : mode_ == FusionMode::kFusedPerSample ? "fused_per_sample"
                                                          : "per_request";

  const std::size_t num_requests = trace.size();
  rep.requests = num_requests;
  rep.outputs = Tensor({num_requests, out_dim_});
  std::vector<std::uint64_t> enqueue(num_requests, 0);
  std::vector<std::uint64_t> completion(num_requests, 0);
  float* const out_rows = rep.outputs.data();
  std::uint64_t* const completion_us = completion.data();

  // The execution queue is unbounded: admission was already decided by the
  // plan (re-racing a wall-clock bound against it could diverge), and the
  // bounded-queue mechanics are exercised inside the planner — which drives
  // this same RequestQueue implementation — and in the queue unit tests.
  RequestQueue queue;
  // Planned rejections/evictions never reach the queue; the producer logs
  // them here (single-writer until the pool joins).
  std::vector<std::pair<std::uint64_t, std::uint8_t>> admission_shed;
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t num_workers = workers_.size();

  ThreadPool::instance().parallel_for(
      0, num_workers + 1, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t block = lo; block < hi; ++block) {
          obs::prime();
          if (block == 0) {
            // The control-plane trajectory (ladder levels, breaker opens)
            // is part of the decision ledger the runtime executes; replay
            // it onto the trace as causal events (DESIGN.md §9).
            for (std::size_t seq = 0; seq < p.transitions.size(); ++seq) {
              const ControlTransition& t = p.transitions[seq];
              if (t.kind == ControlTransition::Kind::kLadder)
                GBO_TRACE_EVENT(obs::EventType::kLadder, seq,
                                static_cast<std::uint16_t>(t.level), t.v_us);
              else
                GBO_TRACE_EVENT(obs::EventType::kBreaker, seq, 1, t.v_us);
            }
            for (std::size_t i = 0; i < num_requests; ++i) {
              std::this_thread::sleep_until(
                  t0 + std::chrono::microseconds(trace[i].t_us));
              const Decision& d = p.decisions[i];
              if (d.outcome == Decision::Outcome::kRejected ||
                  d.outcome == Decision::Outcome::kEvicted) {
                admission_shed.emplace_back(i, outcome_code(d.outcome));
                GBO_TRACE_EVENT(obs::EventType::kAdmit, i,
                                outcome_code(d.outcome), d.deadline_us);
                continue;
              }
              GBO_TRACE_EVENT(obs::EventType::kAdmit, i, 0, d.deadline_us);
              Request r;
              r.id = i;
              r.sample = trace[i].sample;
              r.priority = trace[i].priority;
              r.deadline_us = d.deadline_us;
              r.mode = d.mode;
              // Planned sheds are still pushed, marked: they flow through
              // the real queue and are diverted by the pop-side shed path,
              // so the mechanism itself is exercised every run.
              r.shed = d.shed();
              r.reason = shed_reason(d.outcome);
              r.enqueue_us = us_since(t0);
              enqueue[i] = r.enqueue_us;
              queue.push(r);
            }
            queue.close();
          } else {
            drain_queue_slo(*workers_[block - 1], queue, out_rows,
                            completion_us, t0, injector, p.decisions);
          }
        }
      });

  rep.wall_s = static_cast<double>(us_since(t0)) * 1e-6;
  rep.queue = queue.depth_stats();

  // Wall-clock latency over delivered requests only; shed requests have no
  // completion and report latency 0.
  rep.latencies_us.assign(num_requests, 0);
  std::vector<std::uint64_t> delivered;
  std::array<std::vector<std::uint64_t>, kNumPriorities> by_pri;
  delivered.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    if (completion[i] == 0) continue;
    const std::uint64_t lat = completion[i] - enqueue[i];
    rep.latencies_us[i] = lat;
    delivered.push_back(lat);
    by_pri[static_cast<std::size_t>(trace[i].priority)].push_back(lat);
  }
  rep.latency = LatencyStats::compute(std::move(delivered));

  std::size_t batches = 0;
  SloSummary& s = rep.slo;
  // The runtime's own shed record: admission bounces from the producer plus
  // pop-time diversions from every worker, fingerprinted in the planner's
  // encoding. The determinism gates require it to equal the plan's hash.
  std::vector<std::pair<std::uint64_t, std::uint8_t>> exec_shed =
      std::move(admission_shed);
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    Worker& w = *workers_[wi];
    rep.completed += w.served;
    rep.exec_calls += w.exec_calls;
    if (rep.batch_hist.size() < w.batch_hist.size())
      rep.batch_hist.resize(w.batch_hist.size(), 0);
    for (std::size_t b = 0; b < w.batch_hist.size(); ++b) {
      rep.batch_hist[b] += w.batch_hist[b];
      batches += w.batch_hist[b];
    }
    exec_shed.insert(exec_shed.end(), w.shed_log.begin(), w.shed_log.end());
    s.exec_retried += w.retried;
    s.exec_faults += w.faults;
    s.exec_fallbacks += w.fallbacks;
    s.exec_degraded += w.degraded;
    s.exec_stalls += w.stalls;
    const ScratchArena::Stats st = w.arena.stats();
    rep.arena.system_allocs += st.system_allocs;
    rep.arena.steady_allocs += st.system_allocs - allocs_before[wi];
    rep.arena.high_water_bytes =
        std::max(rep.arena.high_water_bytes, st.bump_high_water_bytes);
    rep.arena.reserved_bytes += st.reserved_bytes;
  }
  rep.mean_batch = batches == 0 ? 0.0
                                : static_cast<double>(rep.completed) /
                                      static_cast<double>(batches);
  rep.mean_exec_batch = rep.exec_calls == 0
                            ? 0.0
                            : static_cast<double>(rep.completed) /
                                  static_cast<double>(rep.exec_calls);
  rep.throughput_rps =
      rep.wall_s > 0.0 ? static_cast<double>(rep.completed) / rep.wall_s : 0.0;

  std::sort(exec_shed.begin(), exec_shed.end());
  const PlanCounters& c = p.counters;
  s.enabled = true;
  s.admitted = num_requests - c.rejected;
  s.served = c.served;
  s.served_primary = c.served_primary;
  s.served_canary = c.served_canary;
  s.degraded_ladder = c.degraded_ladder;
  s.degraded_breaker = c.degraded_breaker;
  s.degraded_fallback = c.degraded_fallback;
  s.shed_expired = c.shed_expired;
  s.shed_overload = c.shed_overload;
  s.rejected_capacity = c.rejected;
  s.evicted = c.evicted;
  s.retried_requests = c.retried_requests;
  s.faults_injected = c.faults_injected;
  s.late_virtual = c.late;
  s.breaker_opens = c.breaker_opens;
  s.ladder_transitions = c.ladder_transitions;
  s.final_ladder_level = c.final_ladder_level;
  s.max_ladder_level = c.max_ladder_level;
  s.max_virtual_depth = c.max_virtual_depth;
  s.deadline_us = cfg_.slo.deadline_us;
  s.shed_set_hash = p.shed_set_hash;
  s.virtual_latency = p.virtual_latency;
  s.virtual_by_priority = p.virtual_by_priority;
  s.exec_delivered = rep.completed;
  s.exec_shed = exec_shed.size();
  s.exec_shed_set_hash = shed_set_fingerprint(exec_shed);
  for (std::size_t k = 0; k < kNumPriorities; ++k)
    s.real_by_priority[k] = LatencyStats::compute(std::move(by_pri[k]));
  return rep;
}

}  // namespace gbo::serve
