#include "serve/fault.hpp"

namespace gbo::serve {

bool FaultInjector::fails(std::uint64_t id, std::size_t attempt) const {
  if (!cfg_.enabled) return false;
  if (in_outage(id)) return true;  // sustained outage: every attempt fails
  if (cfg_.transient_rate <= 0.0) return false;
  // Pure in (seed, id, attempt): fork chains never advance the root, so
  // the answer is identical from any thread at any point in the run.
  Rng r = root_.fork(id).fork(attempt);
  return r.bernoulli(cfg_.transient_rate);
}

std::size_t FaultInjector::attempts_to_success(
    std::uint64_t id, std::size_t max_attempts) const {
  for (std::size_t a = 0; a < max_attempts; ++a)
    if (!fails(id, a)) return a;
  return max_attempts;
}

std::uint64_t FaultInjector::stall_us(std::uint64_t id) const {
  if (!cfg_.enabled || cfg_.stall_rate <= 0.0 || cfg_.stall_us == 0) return 0;
  // Distinct sub-stream from the failure draws (stream index past any
  // realistic attempt count).
  Rng r = root_.fork(id).fork(~std::uint64_t{0});
  return r.bernoulli(cfg_.stall_rate) ? cfg_.stall_us : 0;
}

bool FaultInjector::in_outage(std::uint64_t id) const {
  return cfg_.enabled && cfg_.outage_len != 0 && id >= cfg_.outage_start_id &&
         id < cfg_.outage_start_id + cfg_.outage_len;
}

bool CircuitBreaker::allow(std::uint64_t now_us) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_us < open_until_us_) return false;
      state_ = State::kHalfOpen;
      probe_outstanding_ = false;
      [[fallthrough]];
    case State::kHalfOpen:
      if (probe_outstanding_) return false;  // one probe at a time
      probe_outstanding_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success(std::uint64_t) {
  consecutive_failures_ = 0;
  probe_outstanding_ = false;
  state_ = State::kClosed;
}

void CircuitBreaker::record_failure(std::uint64_t now_us) {
  probe_outstanding_ = false;
  if (state_ == State::kHalfOpen) {
    open(now_us);  // failed probe: straight back to open
    return;
  }
  if (state_ == State::kOpen) return;  // shouldn't be reached; stay open
  ++consecutive_failures_;
  if (consecutive_failures_ >= policy_.failure_threshold) open(now_us);
}

void CircuitBreaker::open(std::uint64_t now_us) {
  state_ = State::kOpen;
  open_until_us_ = now_us + policy_.cooldown_us;
  consecutive_failures_ = 0;
  probe_outstanding_ = false;
  ++opens_;
}

}  // namespace gbo::serve
