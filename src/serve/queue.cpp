#include "serve/queue.hpp"

#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace gbo::serve {
namespace {

constexpr std::uint64_t kNoRequest = ~std::uint64_t{0};

std::size_t pri_index(Priority p) { return static_cast<std::size_t>(p); }

}  // namespace

RequestQueue::PushResult RequestQueue::push(const Request& r,
                                            Request* evicted) {
  PushResult result = PushResult::kAccepted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (policy_.capacity != 0 && size_ >= policy_.capacity) {
      if (policy_.on_full == QueuePolicy::OnFull::kRejectNew) {
        ++stats_.rejected;
        return PushResult::kRejectedFull;
      }
      // kDropOldest: evict the oldest request of the least-important
      // non-empty class — but never evict more-important work to admit a
      // less important arrival; bounce the arrival instead.
      std::size_t victim_class = kNumPriorities;
      for (std::size_t p = kNumPriorities; p-- > 0;) {
        if (!q_[p].empty()) {
          victim_class = p;
          break;
        }
      }
      if (victim_class == kNumPriorities ||
          victim_class < pri_index(r.priority)) {
        ++stats_.rejected;
        return PushResult::kRejectedFull;
      }
      if (evicted != nullptr) *evicted = q_[victim_class].front();
      q_[victim_class].pop_front();
      --size_;
      ++stats_.evicted;
      result = PushResult::kAcceptedEvicted;
    }
    q_[pri_index(r.priority)].push_back(r);
    ++size_;
    ++stats_.pushes;
    depth_sum_ += size_;
    stats_.max_depth = std::max(stats_.max_depth, size_);
  }
  cv_.notify_one();
  return result;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void RequestQueue::collect_locked(std::size_t cap, std::uint64_t now_us,
                                  Priority min_priority,
                                  std::vector<Request>& out,
                                  std::vector<Request>* shed) {
  const std::size_t floor = pri_index(min_priority);
  for (std::size_t p = 0; p < kNumPriorities; ++p) {
    while (!q_[p].empty() && out.size() < cap) {
      Request r = q_[p].front();
      const bool below_floor = p > floor;
      const bool expired =
          r.deadline_us != 0 && now_us != 0 && r.deadline_us <= now_us;
      if (r.shed || expired || below_floor) {
        q_[p].pop_front();
        --size_;
        ++stats_.sheds;
        if (!r.shed) {
          // Tag the reason here so the planner and the real runtime report
          // identical accounting; control-plane marks keep their reason.
          r.shed = true;
          r.reason = expired ? ShedReason::kExpired : ShedReason::kOverload;
        }
        if (shed != nullptr) shed->push_back(r);
        continue;  // sheds do not consume batch capacity
      }
      q_[p].pop_front();
      --size_;
      out.push_back(r);
    }
  }
}

bool RequestQueue::pop_batch(const BatchPolicy& policy,
                             std::vector<Request>& out,
                             std::vector<Request>* shed) {
  out.clear();
  if (shed != nullptr) shed->clear();
  const std::size_t cap = policy.max_batch == 0 ? 1 : policy.max_batch;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || size_ > 0; });
  if (size_ == 0) return false;  // closed and drained: shutdown
  collect_locked(cap, /*now_us=*/0, Priority::kLow, out, shed);
  GBO_TRACE_EVENT(obs::EventType::kQueuePop, pop_seq_++, 0, size_);
  // A pure shed flush made progress: report it without forming a batch so
  // the caller can account the sheds and come straight back.
  if (out.empty()) return true;
  if (policy.max_wait_us == 0) {
    // No coalescing wait: collect_locked already took whatever was queued.
    return true;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(policy.max_wait_us);
  while (out.size() < cap) {
    if (size_ > 0) {
      collect_locked(cap, /*now_us=*/0, Priority::kLow, out, shed);
      continue;
    }
    if (closed_) break;
    if (!cv_.wait_until(lock, deadline,
                        [&] { return closed_ || size_ > 0; }))
      break;  // batching window expired
  }
  return true;
}

bool RequestQueue::try_pop_batch(const BatchPolicy& policy,
                                 std::uint64_t now_us, Priority min_priority,
                                 std::vector<Request>& out,
                                 std::vector<Request>& shed) {
  out.clear();
  shed.clear();
  const std::size_t cap = policy.max_batch == 0 ? 1 : policy.max_batch;
  std::lock_guard<std::mutex> lock(mu_);
  if (size_ == 0) return false;
  collect_locked(cap, now_us, min_priority, out, &shed);
  return !out.empty() || !shed.empty();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

std::uint64_t RequestQueue::oldest_enqueue_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t oldest = kNoRequest;
  for (const auto& dq : q_)
    if (!dq.empty()) oldest = std::min(oldest, dq.front().enqueue_us);
  return oldest;
}

RequestQueue::DepthStats RequestQueue::depth_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DepthStats s = stats_;
  s.mean_depth = s.pushes == 0
                     ? 0.0
                     : static_cast<double>(depth_sum_) /
                           static_cast<double>(s.pushes);
  return s;
}

}  // namespace gbo::serve
