#include "serve/queue.hpp"

#include <algorithm>
#include <chrono>

namespace gbo::serve {

void RequestQueue::push(const Request& r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    q_.push_back(r);
    ++stats_.pushes;
    depth_sum_ += q_.size();
    stats_.max_depth = std::max(stats_.max_depth, q_.size());
  }
  cv_.notify_one();
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::pop_batch(const BatchPolicy& policy,
                             std::vector<Request>& out) {
  out.clear();
  const std::size_t cap = policy.max_batch == 0 ? 1 : policy.max_batch;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
  if (q_.empty()) return false;  // closed and drained: shutdown
  auto take = [&] {
    out.push_back(q_.front());
    q_.pop_front();
  };
  take();
  if (policy.max_wait_us == 0) {
    // Greedy flush: whatever is already queued, no waiting for company.
    while (!q_.empty() && out.size() < cap) take();
    return true;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(policy.max_wait_us);
  while (out.size() < cap) {
    if (!q_.empty()) {
      take();
      continue;
    }
    if (closed_) break;
    if (!cv_.wait_until(lock, deadline,
                        [&] { return closed_ || !q_.empty(); }))
      break;  // batching window expired
  }
  return true;
}

RequestQueue::DepthStats RequestQueue::depth_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DepthStats s = stats_;
  s.mean_depth = s.pushes == 0
                     ? 0.0
                     : static_cast<double>(depth_sum_) /
                           static_cast<double>(s.pushes);
  return s;
}

}  // namespace gbo::serve
