// Core value types of the online-serving runtime.
//
// The serving subsystem simulates production inference traffic against the
// repository's networks: a seeded traffic generator produces an arrival
// trace over a dataset, requests flow through a thread-safe queue into a
// dynamic micro-batcher, and a worker pool executes them against either the
// analytic or the pulse-level backend (serve/backend.hpp).
//
// Determinism contract (DESIGN.md §4): a request's payload output depends
// only on (server seed, request id) — never on which worker executes it,
// how the micro-batcher grouped it, or how many workers exist. Timing
// (latency, batch composition) is real and therefore run-to-run variable;
// payloads are bitwise reproducible.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gbo::serve {

/// One scheduled arrival of a synthetic traffic trace.
struct Arrival {
  std::uint64_t t_us = 0;   // arrival offset from trace start
  std::size_t sample = 0;   // dataset row this request asks for
};

/// A queued inference request.
struct Request {
  std::uint64_t id = 0;         // trace index; also the RNG fork stream
  std::size_t sample = 0;       // dataset row
  std::uint64_t enqueue_us = 0; // actual enqueue time (relative clock)
};

/// Micro-batching policy: a batch flushes as soon as it holds max_batch
/// requests or the oldest member has waited max_wait_us since its pop.
struct BatchPolicy {
  std::size_t max_batch = 8;
  std::uint64_t max_wait_us = 200;
};

}  // namespace gbo::serve
