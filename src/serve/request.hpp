// Core value types of the online-serving runtime.
//
// The serving subsystem simulates production inference traffic against the
// repository's networks: a seeded traffic generator produces an arrival
// trace over a dataset, requests flow through a thread-safe queue into a
// dynamic micro-batcher, and a worker pool executes them against either the
// analytic or the pulse-level backend (serve/backend.hpp). An optional SLO
// control plane (serve/policy.hpp) adds admission control, per-request
// deadlines, priority classes, a fidelity ladder, and fault routing.
//
// Determinism contract (DESIGN.md §4, §7): a request's payload output
// depends only on (server seed, request id, execution mode) — never on
// which worker executes it, how the micro-batcher grouped it, or how many
// workers exist — and every control-plane decision (admit / shed / degrade)
// is a pure function of (trace, policy), decided on a virtual clock. Timing
// (latency, batch composition) is real and therefore run-to-run variable;
// payloads and the shed set are bitwise reproducible.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gbo::serve {

/// Priority classes carried on every request. Lower value = more important;
/// the queue drains higher classes first and the overload ladder sheds from
/// the bottom up.
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr std::size_t kNumPriorities = 3;

/// How the control plane routed a served request down the fidelity ladder
/// (DESIGN.md §7). The payload is produced by the primary backend for
/// kPrimary and by the degraded backend otherwise.
enum class ServeMode : std::uint8_t {
  kPrimary = 0,           // full fidelity
  kDegradedLadder = 1,    // fidelity ladder stepped down under queue pressure
  kDegradedBreaker = 2,   // circuit breaker open: primary quarantined
  kDegradedFallback = 3,  // primary retries exhausted, served degraded
  kCanary = 4,            // full fidelity on the candidate model version of a
                          // hot-swap rollout (DESIGN.md §11)
};

/// Why a request produced no payload.
enum class ShedReason : std::uint8_t {
  kNone = 0,      // served
  kExpired = 1,   // deadline passed (or unmeetable) at pop time
  kOverload = 2,  // ladder at shed level and priority below the floor
  kCapacity = 3,  // bounded queue rejected the new arrival
  kEvicted = 4,   // bounded queue dropped it to admit a newer arrival
};

/// One scheduled arrival of a synthetic traffic trace.
struct Arrival {
  std::uint64_t t_us = 0;   // arrival offset from trace start
  std::size_t sample = 0;   // dataset row this request asks for
  Priority priority = Priority::kNormal;  // seeded class mix (traffic.hpp)
};

/// A queued inference request.
struct Request {
  std::uint64_t id = 0;         // trace index; also the RNG fork stream
  std::size_t sample = 0;       // dataset row
  std::uint64_t enqueue_us = 0; // actual enqueue time (relative clock)
  Priority priority = Priority::kNormal;
  /// Absolute virtual-time deadline (trace clock), 0 = none. Compared by
  /// the pop-side shed check against a caller-provided "now".
  std::uint64_t deadline_us = 0;
  /// Planned execution route (SLO runs; ignored otherwise).
  ServeMode mode = ServeMode::kPrimary;
  /// Control-plane shed mark: pop_batch diverts flagged requests into the
  /// shed output instead of batching them.
  bool shed = false;
  ShedReason reason = ShedReason::kNone;
  /// Model version pinned at admission (DESIGN.md §11): the request executes
  /// on this registry version no matter when it is popped — a cutover that
  /// lands while it is queued must not move it. 0 = the server's primary
  /// backend (no registry / no swap in flight).
  std::uint32_t version = 0;
};

/// Micro-batching policy: a batch flushes as soon as it holds max_batch
/// requests or the oldest member has waited max_wait_us since its pop.
/// max_wait_us == 0 means "no coalescing wait": flush whatever is already
/// queued immediately (never a busy spin, never an indefinite wait).
struct BatchPolicy {
  std::size_t max_batch = 8;
  std::uint64_t max_wait_us = 200;
};

}  // namespace gbo::serve
