#include "serve/swap.hpp"

#include "common/logging.hpp"
#include "serve/policy.hpp"
#include "serve/router.hpp"

#include <algorithm>
#include <stdexcept>

namespace gbo::serve {

std::uint32_t ModelRegistry::register_model(const Backend& backend,
                                            std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  if (snaps_.size() >= 255)
    throw std::invalid_argument(
        "serve: ModelRegistry holds at most 255 versions (the causal trace "
        "folds the version into one byte)");
  auto snap = std::make_shared<ModelSnapshot>();
  snap->version = static_cast<std::uint32_t>(snaps_.size() + 1);
  snap->backend = &backend;
  snap->label = std::move(label);
  snaps_.push_back(std::move(snap));
  return snaps_.back()->version;
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::snapshot(
    std::uint32_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (version == 0 || version > snaps_.size()) return nullptr;
  return snaps_[version - 1];
}

std::uint32_t ModelRegistry::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::uint32_t>(snaps_.size());
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snaps_.size();
}

SwapPlan apply_swap(RouterPlan& rp, const std::vector<Arrival>& trace,
                    const SwapPolicy& policy) {
  SwapPlan sp;
  if (!policy.enabled) return sp;
  sp.enabled = true;
  sp.from_version = policy.from_version;
  sp.to_version = policy.to_version;
  sp.start_us = policy.start_us;

  // The canary boundary is a replica; an inactive choice falls back to the
  // first active replica so the rollout stays total (and deterministic).
  sp.canary_replica = policy.canary_replica;
  if (std::find(rp.active.begin(), rp.active.end(), sp.canary_replica) ==
      rp.active.end()) {
    log_warn("serve: swap canary replica ",
             static_cast<std::size_t>(policy.canary_replica),
             " is not active; canarying replica ",
             static_cast<std::size_t>(rp.active.front()), " instead");
    sp.canary_replica = rp.active.front();
  }

  // Health evaluation: feed the first canary_requests primary-served
  // requests of the canary replica (global-id order, arrivals at or after
  // start_us) through the breaker on the virtual clock. The candidate's
  // deterministic fault stream and the optional virtual-latency SLO are the
  // failure signal; the first breaker open is the rollback verdict and ends
  // the evaluation (and the canary window) at that request's completion.
  const FaultInjector candidate(policy.candidate_fault);
  CircuitBreaker breaker(policy.breaker);
  sp.verdict_us = sp.start_us;
  for (std::size_t id = 0; id < trace.size(); ++id) {
    if (sp.canary_served >= policy.canary_requests) break;
    if (rp.assignment[id] != sp.canary_replica) continue;
    if (trace[id].t_us < sp.start_us) continue;
    const Decision& d = rp.decisions[id];
    if (!d.served() || d.mode != ServeMode::kPrimary) continue;
    const std::uint64_t now = d.v_done_us;
    bool fail = candidate.fails(id, 0);
    if (policy.canary_latency_slo_us > 0 &&
        d.v_done_us - trace[id].t_us > policy.canary_latency_slo_us) {
      fail = true;
      sp.latency_breach = true;
    }
    (void)breaker.allow(now);
    if (fail) {
      breaker.record_failure(now);
      ++sp.canary_faults;
    } else {
      breaker.record_success(now);
    }
    ++sp.canary_served;
    sp.verdict_us = now;
    if (breaker.opens() > 0) {
      sp.rolled_back = true;
      break;
    }
  }
  sp.breaker_opens = breaker.opens();

  // The cutover schedule: the canary first, then — at the verdict — either
  // every other active replica forward or the canary back.
  sp.cutovers.push_back({sp.start_us, sp.canary_replica, sp.to_version});
  if (sp.rolled_back) {
    sp.cutovers.push_back({sp.verdict_us, sp.canary_replica, sp.from_version});
  } else {
    for (const std::uint8_t r : rp.active)
      if (r != sp.canary_replica)
        sp.cutovers.push_back({sp.verdict_us, r, sp.to_version});
  }

  // Pin every request to the version current for its replica at admission.
  sp.version_of.resize(trace.size());
  std::vector<std::pair<std::uint64_t, std::uint8_t>> provenance;
  provenance.reserve(trace.size());
  for (std::size_t id = 0; id < trace.size(); ++id) {
    const std::uint64_t t = trace[id].t_us;
    std::uint32_t v;
    if (t < sp.start_us)
      v = sp.from_version;
    else if (t < sp.verdict_us)
      v = rp.assignment[id] == sp.canary_replica ? sp.to_version
                                                 : sp.from_version;
    else
      v = sp.rolled_back ? sp.from_version : sp.to_version;
    sp.version_of[id] = v;
    provenance.emplace_back(id, static_cast<std::uint8_t>(v));
  }
  sp.version_hash = shed_set_fingerprint(provenance);

  // Stamp the ledger — fleet-merged AND per-replica sub-plans, because the
  // runtime executes the former and the causal oracle composes from the
  // latter. Canary-window primary decisions become ServeMode::kCanary (the
  // fourth mode: full fidelity, candidate version); outcomes, virtual
  // times, and the shed set are untouched by construction.
  for (std::size_t r = 0; r < rp.per_replica.size(); ++r) {
    Plan& p = rp.per_replica[r];
    for (std::size_t j = 0; j < p.decisions.size(); ++j) {
      const std::uint64_t id = p.id_of(j);
      Decision& d = p.decisions[j];
      d.version = sp.version_of[id];
      const bool canary_window =
          r == sp.canary_replica && trace[id].t_us >= sp.start_us &&
          trace[id].t_us < sp.verdict_us;
      if (canary_window && d.served() && d.mode == ServeMode::kPrimary) {
        d.mode = ServeMode::kCanary;
        --p.counters.served_primary;
        ++p.counters.served_canary;
        --rp.counters.served_primary;
        ++rp.counters.served_canary;
      }
      rp.decisions[id] = d;
    }
  }
  rp.swap = sp;
  return sp;
}

void append_causal_swap_tuples(const SwapPlan& sp,
                               std::vector<obs::CausalTuple>& tuples) {
  using obs::EventType;
  if (!sp.enabled) return;
  for (const SwapCutover& c : sp.cutovers)
    tuples.push_back({c.replica, static_cast<std::uint8_t>(EventType::kSwap),
                      static_cast<std::uint16_t>(c.version), c.at_us});
  tuples.push_back({sp.canary_replica,
                    static_cast<std::uint8_t>(EventType::kCanary),
                    static_cast<std::uint16_t>(sp.rolled_back ? 0 : 1),
                    sp.verdict_us});
}

}  // namespace gbo::serve
