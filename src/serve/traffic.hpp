// Seeded synthetic traffic generation for the serving runtime.
//
// Arrivals follow an (inhomogeneous) Poisson process — exponential
// inter-arrival times under a time-varying rate — in one of three shapes:
//
//   * kPoissonBurst — square-wave bursts: for burst_duty of every
//     burst_period the rate is multiplied by burst_factor. Steady load
//     near capacity plus short bursts far above it.
//   * kDiurnal — sinusoidal day/night modulation: rate(t) = rate_rps *
//     (1 + diurnal_amp * sin(2*pi*t / diurnal_period_s)), floored at 1% of
//     the base rate so the trace always terminates. Capacity policies see
//     slow swells instead of edges.
//   * kFlashCrowd — a viral spike: base rate until flash_start_s, a linear
//     ramp to flash_factor * rate over flash_ramp_s, a hold of
//     flash_hold_s, and a symmetric ramp back down. The overload scenario
//     the SLO control plane (DESIGN.md §7) is gated on.
//
// Each arrival can carry a seeded priority class: a fraction high_fraction
// of requests draw Priority::kHigh and low_fraction draw kLow (the rest are
// kNormal). When both fractions are zero no class draw is consumed, so
// legacy configs reproduce their PR-3 traces bit-for-bit.
//
// Traces are pure data, deterministic in (config, dataset_size): the same
// seed always yields the same arrival times, sample picks, and priorities,
// which is what makes end-to-end serving runs — and the SLO planner's
// decision ledger — replayable (DESIGN.md §4, §7).
#pragma once

#include "serve/request.hpp"

#include <cstdint>
#include <vector>

namespace gbo::serve {

enum class TraceShape : std::uint8_t { kPoissonBurst, kDiurnal, kFlashCrowd };

struct TrafficConfig {
  std::size_t num_requests = 1000;
  double rate_rps = 5000.0;      // mean / base arrival rate (requests/s)
  TraceShape shape = TraceShape::kPoissonBurst;
  // kPoissonBurst
  double burst_factor = 1.0;     // rate multiplier inside bursts (>= 1)
  double burst_duty = 0.0;       // fraction of each period spent bursting
  double burst_period_s = 0.02;  // burst modulation period
  // kDiurnal
  double diurnal_amp = 0.8;      // modulation amplitude in [0, 1]
  double diurnal_period_s = 0.2; // one simulated "day"
  // kFlashCrowd
  double flash_factor = 10.0;    // peak rate multiplier (>= 1)
  double flash_start_s = 0.05;   // ramp begins
  double flash_ramp_s = 0.01;    // up-ramp (and down-ramp) duration
  double flash_hold_s = 0.05;    // time spent at the peak
  // priority mix (0 in both => no class draw, legacy streams preserved)
  double high_fraction = 0.0;
  double low_fraction = 0.0;
  std::uint64_t seed = 1;
};

/// Instantaneous arrival rate of `cfg` at time t (seconds). Exposed so the
/// tests can pin the trace shapes against the closed form.
double rate_at(const TrafficConfig& cfg, double t_s);

/// Generates the arrival trace; samples are drawn uniformly from
/// [0, dataset_size). Degenerate inputs (no requests, empty dataset, or a
/// non-positive rate) return an empty trace with a logged warning.
std::vector<Arrival> make_trace(const TrafficConfig& cfg,
                                std::size_t dataset_size);

}  // namespace gbo::serve
