// Seeded synthetic traffic generation for the serving runtime.
//
// Arrivals follow a Poisson process (exponential inter-arrival times) whose
// rate can be modulated by a square-wave burst profile: for burst_duty of
// every burst_period the rate is multiplied by burst_factor. This covers
// the two regimes a serving stack must survive — steady load near capacity
// and short bursts far above it (queue growth, batch-size inflation).
//
// Traces are pure data, deterministic in (config, dataset_size): the same
// seed always yields the same arrival times and sample picks, which is what
// makes end-to-end serving runs replayable (DESIGN.md §4).
#pragma once

#include "serve/request.hpp"

#include <cstdint>
#include <vector>

namespace gbo::serve {

struct TrafficConfig {
  std::size_t num_requests = 1000;
  double rate_rps = 5000.0;      // mean arrival rate (requests/second)
  double burst_factor = 1.0;     // rate multiplier inside bursts (>= 1)
  double burst_duty = 0.0;       // fraction of each period spent bursting
  double burst_period_s = 0.02;  // burst modulation period
  std::uint64_t seed = 1;
};

/// Generates the arrival trace; samples are drawn uniformly from
/// [0, dataset_size). Degenerate inputs (no requests, empty dataset, or a
/// non-positive rate) return an empty trace with a logged warning.
std::vector<Arrival> make_trace(const TrafficConfig& cfg,
                                std::size_t dataset_size);

}  // namespace gbo::serve
