// The online-inference server: traffic replay -> queue -> micro-batcher ->
// worker pool -> per-request responses + metrics.
//
// Architecture (DESIGN.md §4):
//
//   make_trace(cfg)            seeded Poisson/burst arrival trace
//        |
//   InferenceServer::run       replays arrivals in real time into a
//        |                     RequestQueue (one producer)
//   RequestQueue::pop_batch    dynamic micro-batching (max_batch /
//        |                     max_wait_us)
//   worker pool                num_workers long-lived workers on the shared
//        |                     ThreadPool; each owns an EvalContext with a
//        |                     ScratchArena, so steady-state request
//        |                     processing allocates nothing
//   Backend::run               analytic (host net) or pulse-level
//                              (HardwareNetwork) execution
//
// The worker pool reuses common/thread_pool: one parallel_for dispatches
// num_workers + 1 blocks (block 0 replays the trace, the rest are worker
// loops). Because the pool claims blocks in order, the producer always
// starts first; with a single-thread pool the trace is replayed to
// completion and then drained sequentially — degenerate latencies, but the
// same payloads, which is the point: outputs depend only on
// (seed, request id), never on worker count, pool size, or batching.
//
// Execution modes (serve/backend.hpp FusionMode, frozen at warmup):
// deterministic backends fuse each micro-batch into one whole-tensor call;
// stochastic backends whose noise sites honour per-sample row streams fuse
// too, with ctx.row_rngs[i] = root.fork(request id) per row (DESIGN.md §6)
// — bitwise row-equal to unit execution either way; only opaque stochastic
// backends fall back to unit batches under ctx.rng = root.fork(request id).
// Responses land in pre-sized per-request slots, so workers never contend
// on result storage.
#pragma once

#include "data/dataset.hpp"
#include "nn/eval_context.hpp"
#include "serve/backend.hpp"
#include "serve/metrics.hpp"
#include "serve/policy.hpp"
#include "serve/swap.hpp"
#include "serve/traffic.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

namespace gbo::serve {

struct ServeConfig {
  BatchPolicy batch;
  std::size_t num_workers = 1;
  /// Root seed of the per-request noise forks (stochastic backends).
  std::uint64_t seed = 1;
  /// SLO control plane (DESIGN.md §7); disabled by default, in which case
  /// the legacy always-serve path runs unchanged.
  SloPolicy slo;
};

/// The one way to describe a server: a fluent builder over the backends,
/// dataset, config, and replica topology. Both the single-replica
/// InferenceServer and the multi-replica ReplicaGroup (serve/router.hpp)
/// construct from the same spec, so there is exactly one validation and
/// normalization path instead of one per constructor overload.
///
///   ServerSpec{}.primary(b).degraded(d).dataset(ds).config(cfg).replicas(4)
///
/// Referenced backends and the dataset must outlive whatever is built from
/// the spec; the spec itself only borrows them.
class ServerSpec {
 public:
  ServerSpec& primary(const Backend& b) { primary_ = &b; return *this; }
  ServerSpec& degraded(const Backend& b) { degraded_ = &b; return *this; }
  ServerSpec& dataset(const data::Dataset& ds) { dataset_ = &ds; return *this; }
  ServerSpec& config(const ServeConfig& cfg) { cfg_ = cfg; return *this; }
  ServerSpec& replicas(std::size_t n) { replicas_ = n; return *this; }
  ServerSpec& router(const RouterPolicy& rp) { router_ = rp; return *this; }
  /// Model-version registry (DESIGN.md §11). The server pins every
  /// registered snapshot at warmup and can then resolve a request's pinned
  /// version lock-free on the hot path. Borrowed, like the backends.
  ServerSpec& registry(const ModelRegistry& r) { registry_ = &r; return *this; }
  /// Canary hot-swap rollout executed by a ReplicaGroup built from this
  /// spec. Requires registry() with both versions registered; the
  /// single-replica InferenceServer rejects a spec with a swap enabled.
  ServerSpec& swap(const SwapPolicy& sp) { swap_ = sp; return *this; }

  /// Everything wrong with the spec, reported in one pass: errors make the
  /// spec unbuildable (constructors throw std::invalid_argument listing all
  /// of them); warnings describe the clamps normalized_config() applies
  /// (num_workers == 0 -> 1, max_batch == 0 -> 1, replicas == 0 -> 1).
  /// Replaces the old constructors' scattered first-wins clamp logging.
  struct Validation {
    std::vector<std::string> errors;
    std::vector<std::string> warnings;
    bool ok() const { return errors.empty(); }
  };
  Validation validate() const;

  /// The config with every validate() clamp applied.
  ServeConfig normalized_config() const;
  /// The replica count with every validate() clamp applied.
  std::size_t normalized_replicas() const;

  const Backend* primary_backend() const { return primary_; }
  const Backend* degraded_backend() const { return degraded_; }
  const data::Dataset* dataset_ref() const { return dataset_; }
  const ServeConfig& config_ref() const { return cfg_; }
  std::size_t num_replicas() const { return replicas_; }
  const RouterPolicy& router_policy() const { return router_; }
  const ModelRegistry* model_registry() const { return registry_; }
  const SwapPolicy& swap_policy() const { return swap_; }

 private:
  const Backend* primary_ = nullptr;
  const Backend* degraded_ = nullptr;
  const data::Dataset* dataset_ = nullptr;
  ServeConfig cfg_;
  std::size_t replicas_ = 1;
  RouterPolicy router_;
  const ModelRegistry* registry_ = nullptr;
  SwapPolicy swap_;
};

class ReplicaGroup;

class InferenceServer {
 public:
  /// The only constructor: the spec must validate() clean and describe a
  /// single replica (ReplicaGroup is the multi-replica entry point);
  /// otherwise std::invalid_argument lists every problem at once.
  explicit InferenceServer(const ServerSpec& spec);

  /// Sizes every worker's arena and gather buffers by running one maximal
  /// micro-batch (and one unit batch) through the backend, and freezes the
  /// backend's deterministic/stochastic execution mode (so the backend's
  /// hook configuration must be settled by now). Called lazily by run();
  /// call it explicitly so the first run's arena stats are already
  /// steady-state.
  void warmup();

  /// Replays the trace in real time and serves it to completion. An empty
  /// trace (or empty dataset) returns an empty report with a warning.
  ///
  /// With cfg.slo.enabled the run is planned first: policy::plan() decides
  /// every admit / shed / degrade / retry outcome on the virtual clock
  /// (DESIGN.md §7), then the real replay executes the plan — planned
  /// rejections are bounced at admission, planned sheds are pushed marked
  /// and diverted at pop time, and fault/retry behaviour is re-derived
  /// live from the same seeded FaultInjector. Payloads and the shed set
  /// are bitwise identical at any worker count.
  ServeReport run(const std::vector<Arrival>& trace);

 private:
  struct Worker {
    ScratchArena arena;
    nn::EvalContext ctx;
    Tensor gather;                        // request-batch input staging
    std::vector<std::size_t> in_shape;    // [B, sample dims...] template
    std::vector<std::size_t> batch_hist;  // index = batch size
    std::size_t served = 0;
    std::size_t exec_calls = 0;           // Backend::run invocations
    // SLO-run route partitions, reused across batches (capacity settles at
    // max_batch, so steady-state batches allocate nothing).
    std::vector<Request> primary_group;
    std::vector<Request> degraded_group;
    // SLO-run accounting (merged into SloSummary after the run).
    std::vector<std::pair<std::uint64_t, std::uint8_t>> shed_log;
    std::size_t retried = 0;    // requests served after >= 1 failed attempt
    std::size_t faults = 0;     // failed primary attempts observed
    std::size_t fallbacks = 0;  // retries exhausted, served degraded
    std::size_t degraded = 0;   // served on the degraded backend (any mode)
    std::size_t stalls = 0;     // injected worker stalls
    Worker() { ctx.arena = &arena; }
  };

  void warmup_backend(const Backend& backend, FusionMode mode);
  /// Executes group[0..n) (all routed to `backend` under `mode`) and writes
  /// each request's logits row into out_rows[id]. Takes a pointer + count
  /// so the SLO route can execute contiguous same-version runs of a batch
  /// without re-partitioning into fresh vectors (hot path stays
  /// zero-alloc). Shared by the legacy path and both SLO routes.
  void exec_rows(Worker& w, const Backend& backend, FusionMode mode,
                 const Request* group, std::size_t n, float* out_rows);
  /// The backend / frozen fusion mode serving primary-class requests pinned
  /// to `version` (0 = the spec's primary backend; otherwise a registry
  /// snapshot pinned at warmup). Lock-free: flat vector lookups.
  const Backend& backend_for_version(std::uint32_t version) const;
  FusionMode mode_for_version(std::uint32_t version) const;
  void process_batch(Worker& w, const std::vector<Request>& batch,
                     float* out_rows, std::uint64_t* completion_us,
                     const std::chrono::steady_clock::time_point& t0);
  /// SLO-route variant: injects stalls/retry backoff, splits the popped
  /// batch by planned ServeMode between the primary and degraded backends.
  /// `decisions` is indexed by global request id and supplies each
  /// delivery's virtual completion time for the causal trace (DESIGN.md
  /// §9) — for a router run it is the fleet-wide merged ledger.
  void process_batch_slo(Worker& w, const std::vector<Request>& batch,
                         float* out_rows, std::uint64_t* completion_us,
                         const std::chrono::steady_clock::time_point& t0,
                         const FaultInjector& injector,
                         const std::vector<Decision>& decisions);
  /// One worker's SLO drain loop: pops until `queue` closes, diverting
  /// pre-marked sheds into the worker's shed log. Shared by run_slo and
  /// the router's per-replica worker blocks (serve/router.cpp).
  void drain_queue_slo(Worker& w, RequestQueue& queue, float* out_rows,
                       std::uint64_t* completion_us,
                       const std::chrono::steady_clock::time_point& t0,
                       const FaultInjector& injector,
                       const std::vector<Decision>& decisions);
  ServeReport run_slo(const std::vector<Arrival>& trace);

  friend class ReplicaGroup;  // drives warmup/drain across its replicas

  const Backend& backend_;
  const Backend* degraded_ = nullptr;  // SLO fallback; null = use primary
  const data::Dataset& dataset_;
  /// Hot-swap version resolution (DESIGN.md §11). warmup() pins every
  /// registry snapshot into pinned_ (index = version - 1) and warms its
  /// caches, so a cutover never packs, binarizes, or allocates on the
  /// serving path — the incoming version is already steady-state.
  const ModelRegistry* registry_ = nullptr;
  std::vector<std::shared_ptr<const ModelSnapshot>> pinned_;
  std::vector<FusionMode> pinned_modes_;
  ServeConfig cfg_;
  Rng root_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Process-order sequence of popped batches; the trace id of kBatch
  /// spans and kBatchMember events (timing-class, worker-count dependent).
  std::atomic<std::uint64_t> batch_seq_{0};
  std::size_t out_dim_ = 0;
  bool warmed_ = false;
  // Fusion modes frozen at warmup (primary and degraded backends).
  FusionMode mode_ = FusionMode::kPerRequest;
  FusionMode dmode_ = FusionMode::kPerRequest;
};

}  // namespace gbo::serve
