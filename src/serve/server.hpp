// The online-inference server: traffic replay -> queue -> micro-batcher ->
// worker pool -> per-request responses + metrics.
//
// Architecture (DESIGN.md §4):
//
//   make_trace(cfg)            seeded Poisson/burst arrival trace
//        |
//   InferenceServer::run       replays arrivals in real time into a
//        |                     RequestQueue (one producer)
//   RequestQueue::pop_batch    dynamic micro-batching (max_batch /
//        |                     max_wait_us)
//   worker pool                num_workers long-lived workers on the shared
//        |                     ThreadPool; each owns an EvalContext with a
//        |                     ScratchArena, so steady-state request
//        |                     processing allocates nothing
//   Backend::run               analytic (host net) or pulse-level
//                              (HardwareNetwork) execution
//
// The worker pool reuses common/thread_pool: one parallel_for dispatches
// num_workers + 1 blocks (block 0 replays the trace, the rest are worker
// loops). Because the pool claims blocks in order, the producer always
// starts first; with a single-thread pool the trace is replayed to
// completion and then drained sequentially — degenerate latencies, but the
// same payloads, which is the point: outputs depend only on
// (seed, request id), never on worker count, pool size, or batching.
//
// Execution modes (serve/backend.hpp FusionMode, frozen at warmup):
// deterministic backends fuse each micro-batch into one whole-tensor call;
// stochastic backends whose noise sites honour per-sample row streams fuse
// too, with ctx.row_rngs[i] = root.fork(request id) per row (DESIGN.md §6)
// — bitwise row-equal to unit execution either way; only opaque stochastic
// backends fall back to unit batches under ctx.rng = root.fork(request id).
// Responses land in pre-sized per-request slots, so workers never contend
// on result storage.
#pragma once

#include "data/dataset.hpp"
#include "nn/eval_context.hpp"
#include "serve/backend.hpp"
#include "serve/metrics.hpp"
#include "serve/traffic.hpp"

#include <chrono>
#include <memory>
#include <vector>

namespace gbo::serve {

struct ServeConfig {
  BatchPolicy batch;
  std::size_t num_workers = 1;
  /// Root seed of the per-request noise forks (stochastic backends).
  std::uint64_t seed = 1;
};

class InferenceServer {
 public:
  /// The backend and dataset must outlive the server. Degenerate config
  /// values (num_workers == 0, max_batch == 0) are clamped to 1 with a
  /// logged warning.
  InferenceServer(const Backend& backend, const data::Dataset& dataset,
                  ServeConfig cfg);

  /// Sizes every worker's arena and gather buffers by running one maximal
  /// micro-batch (and one unit batch) through the backend, and freezes the
  /// backend's deterministic/stochastic execution mode (so the backend's
  /// hook configuration must be settled by now). Called lazily by run();
  /// call it explicitly so the first run's arena stats are already
  /// steady-state.
  void warmup();

  /// Replays the trace in real time and serves it to completion. An empty
  /// trace (or empty dataset) returns an empty report with a warning.
  ServeReport run(const std::vector<Arrival>& trace);

 private:
  struct Worker {
    ScratchArena arena;
    nn::EvalContext ctx;
    Tensor gather;                        // request-batch input staging
    std::vector<std::size_t> in_shape;    // [B, sample dims...] template
    std::vector<std::size_t> batch_hist;  // index = batch size
    std::size_t served = 0;
    std::size_t exec_calls = 0;           // Backend::run invocations
    Worker() { ctx.arena = &arena; }
  };

  void process_batch(Worker& w, const std::vector<Request>& batch,
                     float* out_rows, std::uint64_t* completion_us,
                     const std::chrono::steady_clock::time_point& t0);

  const Backend& backend_;
  const data::Dataset& dataset_;
  ServeConfig cfg_;
  Rng root_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t out_dim_ = 0;
  bool warmed_ = false;
  // backend_.fusion_mode(), frozen at warmup.
  FusionMode mode_ = FusionMode::kPerRequest;
};

}  // namespace gbo::serve
