// The online-inference server: traffic replay -> queue -> micro-batcher ->
// worker pool -> per-request responses + metrics.
//
// Architecture (DESIGN.md §4):
//
//   make_trace(cfg)            seeded Poisson/burst arrival trace
//        |
//   InferenceServer::run       replays arrivals in real time into a
//        |                     RequestQueue (one producer)
//   RequestQueue::pop_batch    dynamic micro-batching (max_batch /
//        |                     max_wait_us)
//   worker pool                num_workers long-lived workers on the shared
//        |                     ThreadPool; each owns an EvalContext with a
//        |                     ScratchArena, so steady-state request
//        |                     processing allocates nothing
//   Backend::run               analytic (host net) or pulse-level
//                              (HardwareNetwork) execution
//
// The worker pool reuses common/thread_pool: one parallel_for dispatches
// num_workers + 1 blocks (block 0 replays the trace, the rest are worker
// loops). Because the pool claims blocks in order, the producer always
// starts first; with a single-thread pool the trace is replayed to
// completion and then drained sequentially — degenerate latencies, but the
// same payloads, which is the point: outputs depend only on
// (seed, request id), never on worker count, pool size, or batching.
//
// Execution modes (serve/backend.hpp FusionMode, frozen at warmup):
// deterministic backends fuse each micro-batch into one whole-tensor call;
// stochastic backends whose noise sites honour per-sample row streams fuse
// too, with ctx.row_rngs[i] = root.fork(request id) per row (DESIGN.md §6)
// — bitwise row-equal to unit execution either way; only opaque stochastic
// backends fall back to unit batches under ctx.rng = root.fork(request id).
// Responses land in pre-sized per-request slots, so workers never contend
// on result storage.
#pragma once

#include "data/dataset.hpp"
#include "nn/eval_context.hpp"
#include "serve/backend.hpp"
#include "serve/metrics.hpp"
#include "serve/policy.hpp"
#include "serve/traffic.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

namespace gbo::serve {

struct ServeConfig {
  BatchPolicy batch;
  std::size_t num_workers = 1;
  /// Root seed of the per-request noise forks (stochastic backends).
  std::uint64_t seed = 1;
  /// SLO control plane (DESIGN.md §7); disabled by default, in which case
  /// the legacy always-serve path runs unchanged.
  SloPolicy slo;
};

class InferenceServer {
 public:
  /// The backend and dataset must outlive the server. Degenerate config
  /// values (num_workers == 0, max_batch == 0) are clamped to 1 with a
  /// logged warning.
  InferenceServer(const Backend& backend, const data::Dataset& dataset,
                  ServeConfig cfg);

  /// SLO-run constructor: `degraded` is the fidelity-ladder fallback
  /// backend (e.g. the analytic model standing in for pulse-level
  /// hardware). It must produce the same output dimension as the primary;
  /// on mismatch the server logs and serves degraded requests on the
  /// primary instead. Both backends and the dataset must outlive the
  /// server.
  InferenceServer(const Backend& backend, const Backend& degraded,
                  const data::Dataset& dataset, ServeConfig cfg);

  /// Sizes every worker's arena and gather buffers by running one maximal
  /// micro-batch (and one unit batch) through the backend, and freezes the
  /// backend's deterministic/stochastic execution mode (so the backend's
  /// hook configuration must be settled by now). Called lazily by run();
  /// call it explicitly so the first run's arena stats are already
  /// steady-state.
  void warmup();

  /// Replays the trace in real time and serves it to completion. An empty
  /// trace (or empty dataset) returns an empty report with a warning.
  ///
  /// With cfg.slo.enabled the run is planned first: policy::plan() decides
  /// every admit / shed / degrade / retry outcome on the virtual clock
  /// (DESIGN.md §7), then the real replay executes the plan — planned
  /// rejections are bounced at admission, planned sheds are pushed marked
  /// and diverted at pop time, and fault/retry behaviour is re-derived
  /// live from the same seeded FaultInjector. Payloads and the shed set
  /// are bitwise identical at any worker count.
  ServeReport run(const std::vector<Arrival>& trace);

 private:
  struct Worker {
    ScratchArena arena;
    nn::EvalContext ctx;
    Tensor gather;                        // request-batch input staging
    std::vector<std::size_t> in_shape;    // [B, sample dims...] template
    std::vector<std::size_t> batch_hist;  // index = batch size
    std::size_t served = 0;
    std::size_t exec_calls = 0;           // Backend::run invocations
    // SLO-run route partitions, reused across batches (capacity settles at
    // max_batch, so steady-state batches allocate nothing).
    std::vector<Request> primary_group;
    std::vector<Request> degraded_group;
    // SLO-run accounting (merged into SloSummary after the run).
    std::vector<std::pair<std::uint64_t, std::uint8_t>> shed_log;
    std::size_t retried = 0;    // requests served after >= 1 failed attempt
    std::size_t faults = 0;     // failed primary attempts observed
    std::size_t fallbacks = 0;  // retries exhausted, served degraded
    std::size_t degraded = 0;   // served on the degraded backend (any mode)
    std::size_t stalls = 0;     // injected worker stalls
    Worker() { ctx.arena = &arena; }
  };

  void warmup_backend(const Backend& backend, FusionMode mode);
  /// Executes `group` (all routed to `backend` under `mode`) and writes
  /// each request's logits row into out_rows[id]. Shared by the legacy
  /// path and both SLO routes.
  void exec_rows(Worker& w, const Backend& backend, FusionMode mode,
                 const std::vector<Request>& group, float* out_rows);
  void process_batch(Worker& w, const std::vector<Request>& batch,
                     float* out_rows, std::uint64_t* completion_us,
                     const std::chrono::steady_clock::time_point& t0);
  /// SLO-route variant: injects stalls/retry backoff, splits the popped
  /// batch by planned ServeMode between the primary and degraded backends.
  /// `plan` supplies each delivery's virtual completion time for the causal
  /// trace (DESIGN.md §9).
  void process_batch_slo(Worker& w, const std::vector<Request>& batch,
                         float* out_rows, std::uint64_t* completion_us,
                         const std::chrono::steady_clock::time_point& t0,
                         const FaultInjector& injector, const Plan& plan);
  ServeReport run_slo(const std::vector<Arrival>& trace);

  const Backend& backend_;
  const Backend* degraded_ = nullptr;  // SLO fallback; null = use primary
  const data::Dataset& dataset_;
  ServeConfig cfg_;
  Rng root_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Process-order sequence of popped batches; the trace id of kBatch
  /// spans and kBatchMember events (timing-class, worker-count dependent).
  std::atomic<std::uint64_t> batch_seq_{0};
  std::size_t out_dim_ = 0;
  bool warmed_ = false;
  // Fusion modes frozen at warmup (primary and degraded backends).
  FusionMode mode_ = FusionMode::kPerRequest;
  FusionMode dmode_ = FusionMode::kPerRequest;
};

}  // namespace gbo::serve
