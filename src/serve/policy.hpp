// The SLO control plane: admission control, deadlines, priority shedding,
// a fidelity ladder, and fault routing — decided on a virtual clock so the
// decision ledger is a pure function of (trace, policy), independent of
// worker count, pool size, and wall-clock jitter (DESIGN.md §7).
//
// Why a virtual clock: the serving determinism contract (DESIGN.md §4)
// promises bitwise-identical payloads at any worker count, and this PR
// extends it to *which requests were shed or degraded*. Wall-clock shedding
// can never satisfy that — a 1-worker drain and a 4-worker race see
// completely different clocks. Instead, `plan()` runs a deterministic
// discrete-event simulation of the serving loop over the arrival trace:
// virtual executors ("lanes") with a configured per-mode cost model stand
// in for the worker pool, and every control decision — bounded-queue
// admission, deadline shedding, ladder transitions, retry accounting, and
// circuit-breaker routing — is taken at virtual flush times. The simulation
// drives the *real* RequestQueue implementation (try_pop_batch under an
// explicit now), so planner decisions and runtime queue mechanics share one
// code path. The real server then executes the plan: planned-shed requests
// are still pushed and diverted at pop time (exercising the shed mechanism),
// planned-rejected requests are bounced at admission, and fault/retry
// outcomes are re-derived live from the same seeded FaultInjector — by
// construction they agree with the plan.
//
// The fidelity ladder: level 0 serves every request on the primary backend
// (e.g. pulse-level hardware); level 1 (queue depth >= degrade_depth) steps
// every batch down to the degraded backend (e.g. the analytic model);
// level 2 (depth >= shed_depth) additionally sheds everything below the
// priority floor at pop time. The ladder steps back down to level 0 when
// depth recovers to recover_depth (hysteresis, so it cannot flap on every
// batch). Mode is recorded per request.
//
// Deadline semantics: a request's deadline is arrival + deadline_us on the
// virtual clock. At pop time the planner sheds requests whose deadline
// falls inside `completion_headroom_us` of the flush instant — requests
// that could not finish in time are dropped *before* wasting backend work,
// which is what makes "zero late successes" a policy guarantee rather than
// an aspiration. Any request that still completes past its deadline
// (headroom configured too small) is counted late and not reported as an
// in-SLO success.
#pragma once

#include "obs/trace.hpp"
#include "serve/fault.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

#include <array>
#include <cstdint>
#include <vector>

namespace gbo::serve {

/// Virtual service-cost model (microseconds on the virtual clock). A batch
/// of n requests in mode m costs batch_fixed_us + n * per-request cost of
/// m, plus retry_penalty_us per failed primary attempt.
struct CostModel {
  std::uint64_t batch_fixed_us = 50;
  std::uint64_t primary_us = 400;
  std::uint64_t degraded_us = 80;
  std::uint64_t retry_penalty_us = 100;
};

/// Fidelity-ladder thresholds on virtual queue depth, with hysteresis.
struct LadderPolicy {
  std::size_t degrade_depth = 16;  // level >= 1 when depth reaches this
  std::size_t shed_depth = 64;     // level 2 when depth reaches this
  std::size_t recover_depth = 4;   // back to level 0 at or below this
  /// Lowest priority still served at ladder level 2 (everything below the
  /// floor is shed as kOverload).
  Priority shed_floor = Priority::kHigh;
};

/// Bounded retry against transient primary faults. backoff_us is real wall
/// time slept by the worker between attempts; the virtual clock charges
/// retry_penalty_us per failed attempt instead.
struct RetryPolicy {
  std::size_t max_attempts = 3;
  std::uint64_t backoff_us = 100;
};

struct SloPolicy {
  bool enabled = false;
  /// Per-request deadline (virtual us after arrival); 0 disables deadlines.
  std::uint64_t deadline_us = 0;
  /// Shed-at-pop horizon: a request is shed when its deadline is within
  /// this margin of the virtual flush instant. Set it to at least the worst
  /// batch cost to guarantee zero late successes.
  std::uint64_t completion_headroom_us = 0;
  QueuePolicy queue;          // admission bound (0 = unbounded)
  std::size_t virtual_lanes = 1;  // virtual executors (NOT the worker count)
  CostModel cost;
  LadderPolicy ladder;
  RetryPolicy retry;
  BreakerPolicy breaker;
  FaultConfig fault;
};

/// Deterministic replica routing (DESIGN.md §10). The routing function is
/// pure in (seed, request id, policy, active-replica set): kRoundRobin
/// striping or seeded hashing over the active replicas. Replica liveness
/// comes from the PR 6 fault injector with the replica index as the fault
/// id, so outages — and the reroute they force — are part of the plan, not
/// a runtime race.
struct RouterPolicy {
  enum class Strategy : std::uint8_t { kRoundRobin = 0, kHash = 1 };
  Strategy strategy = Strategy::kRoundRobin;
  /// Autoscale floor: never activate fewer than this many replicas.
  std::size_t min_replicas = 1;
  /// Queue-depth autoscale target: the router activates the smallest
  /// replica count whose planned per-replica max_virtual_depth stays at or
  /// below this (and whose ladder never sheds). 0 disables autoscaling —
  /// every alive replica stays active.
  std::size_t scale_depth = 0;
  /// Seed of the kHash routing stream (independent of the payload seed).
  std::uint64_t seed = 1;
  /// Replica-outage model: replica r is down when
  /// FaultInjector(fault).in_outage(r). Disabled by default.
  FaultConfig fault;
};

/// One request's planned outcome.
struct Decision {
  enum class Outcome : std::uint8_t {
    kServed = 0,
    kRejected = 1,      // admission bound, kRejectNew (or outranked arrival)
    kEvicted = 2,       // admission bound, kDropOldest victim
    kShedExpired = 3,   // deadline (un)meetable at pop
    kShedOverload = 4,  // ladder level 2, below the priority floor
  };
  Outcome outcome = Outcome::kServed;
  ServeMode mode = ServeMode::kPrimary;  // meaningful when served
  Priority priority = Priority::kNormal;
  std::uint8_t attempts = 0;   // failed primary attempts before the outcome
  bool late = false;           // served but past its deadline (counted, not
                               // an in-SLO success)
  std::uint64_t v_pop_us = 0;  // virtual flush instant
  std::uint64_t v_done_us = 0; // virtual completion
  std::uint64_t deadline_us = 0;
  /// Model version pinned at admission (DESIGN.md §11). plan() always
  /// leaves 0 (the primary backend); the hot-swap overlay
  /// (serve/swap.hpp) stamps registry versions after the fact.
  std::uint32_t version = 0;

  bool served() const { return outcome == Outcome::kServed; }
  bool shed() const { return !served(); }
};

/// Aggregates over a plan; every field is deterministic in (trace, policy).
struct PlanCounters {
  std::size_t served = 0;
  std::size_t served_primary = 0;
  std::size_t served_canary = 0;  // full fidelity on a swap candidate version
  std::size_t degraded_ladder = 0;
  std::size_t degraded_breaker = 0;
  std::size_t degraded_fallback = 0;
  std::size_t shed_expired = 0;
  std::size_t shed_overload = 0;
  std::size_t rejected = 0;
  std::size_t evicted = 0;
  std::size_t retried_requests = 0;  // served after >= 1 failed attempt
  std::size_t faults_injected = 0;   // total failed primary attempts
  std::size_t late = 0;              // served past deadline
  std::size_t breaker_opens = 0;
  std::size_t ladder_transitions = 0;
  int final_ladder_level = 0;
  int max_ladder_level = 0;
  std::size_t max_virtual_depth = 0;
  std::size_t virtual_batches = 0;
};

/// One control-plane state change on the virtual clock, in occurrence
/// order. The runtime replays these as causal trace events (DESIGN.md §9)
/// and the trajectory is part of the plan's decision ledger.
struct ControlTransition {
  enum class Kind : std::uint8_t { kLadder = 0, kBreakerOpen = 1 };
  Kind kind = Kind::kLadder;
  int level = 0;          // new ladder level (kLadder only)
  std::uint64_t v_us = 0; // virtual instant of the transition
};

struct Plan {
  std::vector<Decision> decisions;  // index = trace index
  /// Global request id per trace index. Empty means id == index (the
  /// single-replica case); the router passes each replica's sub-trace with
  /// the original trace indices so fault streams, payload RNG forks, and
  /// shed-set fingerprints stay keyed by the global id (DESIGN.md §10).
  std::vector<std::uint64_t> request_ids;
  PlanCounters counters;
  /// Ladder level changes and breaker opens in virtual-time order;
  /// counters.ladder_transitions / breaker_opens are its per-kind sizes.
  std::vector<ControlTransition> transitions;
  LatencyStats virtual_latency;     // served requests, virtual clock
  std::array<LatencyStats, kNumPriorities> virtual_by_priority;
  /// FNV-1a over the (id, outcome) pairs of every non-served request in id
  /// order — the shed-set fingerprint the determinism gates compare.
  std::uint64_t shed_set_hash = 0;

  /// Global id of trace index i (identity when request_ids is empty).
  std::uint64_t id_of(std::size_t i) const {
    return request_ids.empty() ? i : request_ids[i];
  }
};

/// Runs the virtual-time control-plane simulation. Pure: same
/// (trace, slo, batch) always yields the identical plan.
Plan plan(const std::vector<Arrival>& trace, const SloPolicy& slo,
          const BatchPolicy& batch);

/// Same simulation over a sub-trace carrying global request ids (strictly
/// ascending, one per arrival). Decisions stay indexed by sub-trace
/// position, but every id-keyed effect — fault injection, the shed-set
/// fingerprint, the causal oracle — uses the global id, so a replica's
/// sub-plan composes with its siblings (DESIGN.md §10).
Plan plan(const std::vector<Arrival>& trace, const SloPolicy& slo,
          const BatchPolicy& batch,
          std::vector<std::uint64_t> request_ids);

/// FNV-1a fingerprint of a shed set given as (id, outcome-code) pairs in
/// ascending id order; shared by the planner and the runtime's
/// execution-side accounting.
std::uint64_t shed_set_fingerprint(
    const std::vector<std::pair<std::uint64_t, std::uint8_t>>& shed);

/// ShedReason a non-served planned outcome maps to (kNone for kServed);
/// the server stamps it on the requests it pre-marks for pop-time shedding.
ShedReason shed_reason(Decision::Outcome outcome);

/// The causal-trace oracle (DESIGN.md §9): the exact fingerprint / event
/// count the runtime's causal event stream must reproduce when executing
/// this plan. Derived from the decision ledger alone — admission verdicts,
/// pop-time sheds, retry attempts, delivery modes with virtual completion
/// times, and the control-transition log — never from anything the workers
/// did, which is what gives the trace gate independent teeth.
std::uint64_t expected_causal_fingerprint(const Plan& p);
std::size_t expected_causal_event_count(const Plan& p);

/// Building blocks of the oracle above, exposed so the router can compose
/// a fleet-wide fingerprint out of per-replica sub-plans (DESIGN.md §10):
/// per-decision tuples are keyed by Plan::id_of, and each replica's
/// control transitions are renumbered with a sequence offset so the
/// fleet-wide transition log stays collision-free.
void append_causal_decision_tuples(const Plan& p,
                                   std::vector<obs::CausalTuple>& tuples);
void append_causal_transition_tuples(const Plan& p, std::size_t seq_offset,
                                     std::vector<obs::CausalTuple>& tuples);

/// Oracle for a legacy (non-SLO) run: every request is admitted and
/// delivered at full fidelity, with no deadline, virtual clock, or
/// control-plane transitions.
std::uint64_t expected_causal_fingerprint(std::size_t n_requests);
std::size_t expected_causal_event_count(std::size_t n_requests);

}  // namespace gbo::serve
