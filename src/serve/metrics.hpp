// Serving metrics: request latency quantiles, queue depth, batch-size
// histogram, throughput, per-worker arena accounting, and — for SLO runs —
// the control-plane ledger (shed/degrade/retry counters, per-priority
// virtual latency percentiles, shed-set fingerprints) that bench_serve
// writes into BENCH_serve.json / BENCH_serve_slo.json.
#pragma once

#include "common/json.hpp"
#include "serve/queue.hpp"
#include "tensor/arena.hpp"
#include "tensor/tensor.hpp"

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gbo::serve {

/// Fixed-width hex rendering ("0x%016llx") of a 64-bit fingerprint. Json
/// numbers are doubles, so every hash in the bench artifacts and demo
/// output travels as this string form; the gates compare them verbatim.
std::string hex64(std::uint64_t v);

/// Nearest-rank latency quantiles over a sample set (microseconds).
struct LatencyStats {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
  std::size_t count = 0;

  /// Computes from an unsorted sample vector (copied; empty -> all zero).
  static LatencyStats compute(std::vector<std::uint64_t> samples);

  Json to_json() const;
};

/// Arena accounting aggregated over the worker pool.
struct ArenaSummary {
  std::size_t system_allocs = 0;      // lifetime total across workers
  std::size_t steady_allocs = 0;      // allocations during the last run()
  std::size_t high_water_bytes = 0;   // max single-worker bump high water
  std::size_t reserved_bytes = 0;     // total bytes held across workers

  Json to_json() const;
};

/// The SLO control plane's ledger for one run (DESIGN.md §7). The plan-side
/// fields are deterministic in (trace, policy); the exec-side fields are
/// what the workers actually did and must mirror the plan — the
/// `plan_exec_consistent` gate compares them.
struct SloSummary {
  bool enabled = false;

  // ---- plan side (virtual clock, deterministic) ----
  std::size_t admitted = 0;          // pushed into the queue
  std::size_t served = 0;
  std::size_t served_primary = 0;
  std::size_t served_canary = 0;     // full fidelity, swap candidate version
  std::size_t degraded_ladder = 0;
  std::size_t degraded_breaker = 0;
  std::size_t degraded_fallback = 0;
  std::size_t shed_expired = 0;
  std::size_t shed_overload = 0;
  std::size_t rejected_capacity = 0;
  std::size_t evicted = 0;
  std::size_t retried_requests = 0;
  std::size_t faults_injected = 0;
  std::size_t late_virtual = 0;      // served past deadline (not in-SLO)
  std::size_t breaker_opens = 0;
  std::size_t ladder_transitions = 0;
  int final_ladder_level = 0;
  int max_ladder_level = 0;
  std::size_t max_virtual_depth = 0;
  std::uint64_t deadline_us = 0;
  std::uint64_t shed_set_hash = 0;   // planner fingerprint
  LatencyStats virtual_latency;      // served requests, virtual clock
  std::array<LatencyStats, kNumPriorities> virtual_by_priority;

  // ---- execution side (what the workers actually did) ----
  std::size_t exec_delivered = 0;    // payload rows written
  std::size_t exec_shed = 0;         // diverted at pop + skipped at admission
  std::size_t exec_retried = 0;
  std::size_t exec_faults = 0;
  std::size_t exec_fallbacks = 0;
  std::size_t exec_degraded = 0;     // served on the degraded backend
  std::size_t exec_stalls = 0;
  std::uint64_t exec_shed_set_hash = 0;  // runtime fingerprint
  std::array<LatencyStats, kNumPriorities> real_by_priority;  // delivered

  Json to_json() const;
};

/// The hot-swap rollout ledger of one run (DESIGN.md §11): what the canary
/// controller planned and the provenance of every delivered payload. All
/// fields are deterministic in (trace, policies).
struct SwapSummary {
  bool enabled = false;
  bool rolled_back = false;
  std::uint32_t from_version = 0;
  std::uint32_t to_version = 0;
  std::uint8_t canary_replica = 0;
  std::uint64_t start_us = 0;        // canary cutover (virtual clock)
  std::uint64_t verdict_us = 0;      // promote/rollback instant
  std::size_t canary_served = 0;     // health-evaluated canary requests
  std::size_t canary_faults = 0;     // health failures among them
  std::size_t breaker_opens = 0;
  bool latency_breach = false;
  std::size_t cutovers = 0;          // planned replica cutovers
  std::uint64_t version_hash = 0;    // (id, version) provenance fingerprint
  /// Delivered payloads per pinned version, version ascending.
  std::vector<std::pair<std::uint32_t, std::size_t>> served_by_version;

  Json to_json() const;
};

/// Everything one InferenceServer::run produced.
struct ServeReport {
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t workers = 0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  /// Wall-clock latency over delivered requests (all requests in non-SLO
  /// runs; shed/rejected requests have no latency sample).
  LatencyStats latency;
  RequestQueue::DepthStats queue;
  /// batch_hist[b] = number of micro-batches of size b (index 0 unused).
  std::vector<std::size_t> batch_hist;
  double mean_batch = 0.0;
  /// Backend::run invocations and mean rows per invocation: per-request
  /// execution pins mean_exec_batch to 1, the fused modes track the
  /// micro-batcher (mean_batch above counts queue batches in every mode).
  std::size_t exec_calls = 0;
  double mean_exec_batch = 0.0;
  /// Execution mode frozen at warmup: "fused", "fused_per_sample" (noisy
  /// configs batching on per-sample RNG streams, DESIGN.md §6), or
  /// "per_request". For SLO runs this is the primary backend's mode.
  std::string fusion;
  ArenaSummary arena;
  /// Control-plane ledger; enabled only for SLO runs.
  SloSummary slo;
  /// Hot-swap rollout ledger; enabled only for swap runs (DESIGN.md §11).
  SwapSummary swap;
  /// Payload provenance of a swap run: versions[id] = registry version that
  /// produced request id's payload row. Empty for non-swap runs.
  std::vector<std::uint32_t> versions;

  /// Per-request payloads, [requests, out_dim] — row r is request r's
  /// logits (all-zero for shed/rejected requests). Bitwise identical across
  /// worker counts and batch policies for the same (seed, trace, policy);
  /// the determinism gates compare these.
  Tensor outputs;
  /// Per-request completion latency (actual enqueue -> completion), us;
  /// 0 for requests that were never delivered.
  std::vector<std::uint64_t> latencies_us;

  /// Metrics document (outputs and the raw latency vector are elided).
  Json to_json() const;
};

/// Shared human-readable rendering of ServeReport. The serve demos route
/// their report printing through these (one fixed column schema) instead of
/// hand-rolled printf blocks, so the text output cannot drift between
/// binaries or from the JSON schema above.
std::vector<std::string> report_header();
std::vector<std::string> report_row(const std::string& label,
                                    const ServeReport& r);

/// One-line execution summary for an SLO run: delivered/shed counts plus
/// the runtime shed-set fingerprint (newline-terminated).
std::string slo_exec_summary(const std::string& label, const ServeReport& r);

/// Shared rendering of a swap run's per-version payload provenance — one
/// row per registered version that delivered payloads, same fixed-schema
/// discipline as report_header/report_row so demos and benches cannot
/// drift into ad-hoc printf blocks. Empty rows for non-swap runs.
std::vector<std::string> version_report_header();
std::vector<std::vector<std::string>> version_report_rows(
    const ServeReport& r);

}  // namespace gbo::serve
