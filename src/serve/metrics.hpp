// Serving metrics: request latency quantiles, queue depth, batch-size
// histogram, throughput, and per-worker arena accounting — everything
// bench_serve writes into BENCH_serve.json.
#pragma once

#include "common/json.hpp"
#include "serve/queue.hpp"
#include "tensor/arena.hpp"
#include "tensor/tensor.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace gbo::serve {

/// Nearest-rank latency quantiles over a sample set (microseconds).
struct LatencyStats {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;

  /// Computes from an unsorted sample vector (copied; empty -> all zero).
  static LatencyStats compute(std::vector<std::uint64_t> samples);

  Json to_json() const;
};

/// Arena accounting aggregated over the worker pool.
struct ArenaSummary {
  std::size_t system_allocs = 0;      // lifetime total across workers
  std::size_t steady_allocs = 0;      // allocations during the last run()
  std::size_t high_water_bytes = 0;   // max single-worker bump high water
  std::size_t reserved_bytes = 0;     // total bytes held across workers

  Json to_json() const;
};

/// Everything one InferenceServer::run produced.
struct ServeReport {
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t workers = 0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  LatencyStats latency;
  RequestQueue::DepthStats queue;
  /// batch_hist[b] = number of micro-batches of size b (index 0 unused).
  std::vector<std::size_t> batch_hist;
  double mean_batch = 0.0;
  /// Backend::run invocations and mean rows per invocation: per-request
  /// execution pins mean_exec_batch to 1, the fused modes track the
  /// micro-batcher (mean_batch above counts queue batches in every mode).
  std::size_t exec_calls = 0;
  double mean_exec_batch = 0.0;
  /// Execution mode frozen at warmup: "fused", "fused_per_sample" (noisy
  /// configs batching on per-sample RNG streams, DESIGN.md §6), or
  /// "per_request".
  std::string fusion;
  ArenaSummary arena;

  /// Per-request payloads, [requests, out_dim] — row r is request r's
  /// logits. Bitwise identical across worker counts and batch policies for
  /// the same (seed, trace); the determinism gates compare these.
  Tensor outputs;
  /// Per-request completion latency (actual enqueue -> completion), us.
  std::vector<std::uint64_t> latencies_us;

  /// Metrics document (outputs and the raw latency vector are elided).
  Json to_json() const;
};

}  // namespace gbo::serve
