#include "serve/router.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <thread>

namespace gbo::serve {
namespace {

std::uint64_t us_since(const std::chrono::steady_clock::time_point& t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

// Liveness under the outage model: replica r is down when the router's
// fault injector places r inside its outage window. A fleet with every
// replica down cannot route at all; replica 0 is kept up with a warning so
// the plan stays total (the SLO ladder still sheds what one replica cannot
// absorb).
std::vector<std::uint8_t> alive_mask(const RouterPolicy& router,
                                     std::size_t n) {
  std::vector<std::uint8_t> alive(n, 1);
  const FaultInjector injector(router.fault);
  bool any = false;
  for (std::size_t r = 0; r < n; ++r) {
    alive[r] = injector.in_outage(r) ? 0 : 1;
    any = any || alive[r] != 0;
  }
  if (!any) {
    log_warn("serve: router outage model downs every replica; keeping "
             "replica 0 up");
    alive[0] = 1;
  }
  return alive;
}

// The transition sequence offset of replica r in the fleet-wide causal
// trace: transitions are renumbered replica-major so two replicas' ladder
// logs cannot collide on (seq, level, v_us).
std::vector<std::size_t> transition_offsets(const RouterPlan& rp) {
  std::vector<std::size_t> off(rp.per_replica.size() + 1, 0);
  for (std::size_t r = 0; r < rp.per_replica.size(); ++r)
    off[r + 1] = off[r] + rp.per_replica[r].transitions.size();
  return off;
}

const data::Dataset& checked_group_dataset(const ServerSpec& spec) {
  ServerSpec::Validation v = spec.validate();
  if (!spec.config_ref().slo.enabled)
    v.errors.push_back(
        "ReplicaGroup requires the SLO control plane (cfg.slo.enabled): "
        "routing decisions live on the virtual clock");
  if (spec.num_replicas() > 255)
    v.errors.push_back("replicas > 255 (assignment is a byte per request)");
  if (!v.ok()) {
    std::string msg = "serve: invalid ServerSpec:";
    for (const std::string& e : v.errors) msg += " [" + e + "]";
    throw std::invalid_argument(msg);
  }
  for (const std::string& w : v.warnings) log_warn("serve: ", w);
  return *spec.dataset_ref();
}

}  // namespace

std::uint8_t route_replica(const RouterPolicy& router, std::uint64_t id,
                           const std::vector<std::uint8_t>& active) {
  const std::size_t k = active.size();
  if (router.strategy == RouterPolicy::Strategy::kRoundRobin)
    return active[static_cast<std::size_t>(id % k)];
  // Seeded hash routing on the counter-fork contract (DESIGN.md §3): the
  // stream depends only on (router seed, request id), never on arrival
  // order or the worker observing it.
  Rng h = Rng(router.seed).fork(id);
  return active[static_cast<std::size_t>(h() % k)];
}

RouterPlan route_plan(const std::vector<Arrival>& trace, const SloPolicy& slo,
                      const BatchPolicy& batch, const RouterPolicy& router,
                      std::size_t replicas) {
  RouterPlan rp;
  rp.total_replicas = std::max<std::size_t>(1, replicas);
  rp.alive = alive_mask(router, rp.total_replicas);

  std::vector<std::uint8_t> alive_list;
  for (std::size_t r = 0; r < rp.total_replicas; ++r)
    if (rp.alive[r] != 0) alive_list.push_back(static_cast<std::uint8_t>(r));
  const std::size_t n_alive = alive_list.size();
  const std::size_t min_k =
      std::min(std::max<std::size_t>(1, router.min_replicas), n_alive);

  // Queue-depth autoscaling off the planner's own metrics: activate the
  // smallest replica count whose planned per-replica max_virtual_depth
  // stays within scale_depth and whose ladder never reaches the shed
  // level. scale_depth == 0 disables scaling (all alive replicas active).
  // Candidates grow the active set as a prefix of the alive list, so the
  // chosen assignment is reproducible from (trace, policy) alone.
  for (std::size_t k = router.scale_depth == 0 ? n_alive : min_k;; ++k) {
    rp.active.assign(alive_list.begin(),
                     alive_list.begin() + static_cast<std::ptrdiff_t>(k));
    rp.active_replicas = k;

    rp.assignment.resize(trace.size());
    std::vector<std::vector<Arrival>> sub(rp.total_replicas);
    std::vector<std::vector<std::uint64_t>> ids(rp.total_replicas);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const std::uint8_t r = route_replica(router, i, rp.active);
      rp.assignment[i] = r;
      sub[r].push_back(trace[i]);
      ids[r].push_back(i);
    }
    rp.per_replica.clear();
    rp.per_replica.reserve(rp.total_replicas);
    bool fits = true;
    for (std::size_t r = 0; r < rp.total_replicas; ++r) {
      rp.per_replica.push_back(plan(sub[r], slo, batch, std::move(ids[r])));
      const PlanCounters& c = rp.per_replica.back().counters;
      fits = fits && c.max_virtual_depth <= router.scale_depth &&
             c.max_ladder_level < 2;
    }
    if (router.scale_depth == 0 || fits || k == n_alive) break;
  }

  // Merge the per-replica ledgers back into global-id order.
  rp.decisions.resize(trace.size());
  rp.counters = PlanCounters{};
  std::vector<std::pair<std::uint64_t, std::uint8_t>> routing, shed_set;
  routing.reserve(trace.size());
  for (std::size_t r = 0; r < rp.per_replica.size(); ++r) {
    const Plan& p = rp.per_replica[r];
    for (std::size_t j = 0; j < p.decisions.size(); ++j)
      rp.decisions[p.id_of(j)] = p.decisions[j];
    const PlanCounters& c = p.counters;
    rp.counters.served += c.served;
    rp.counters.served_primary += c.served_primary;
    rp.counters.served_canary += c.served_canary;
    rp.counters.degraded_ladder += c.degraded_ladder;
    rp.counters.degraded_breaker += c.degraded_breaker;
    rp.counters.degraded_fallback += c.degraded_fallback;
    rp.counters.shed_expired += c.shed_expired;
    rp.counters.shed_overload += c.shed_overload;
    rp.counters.rejected += c.rejected;
    rp.counters.evicted += c.evicted;
    rp.counters.retried_requests += c.retried_requests;
    rp.counters.faults_injected += c.faults_injected;
    rp.counters.late += c.late;
    rp.counters.breaker_opens += c.breaker_opens;
    rp.counters.ladder_transitions += c.ladder_transitions;
    rp.counters.virtual_batches += c.virtual_batches;
    rp.counters.final_ladder_level =
        std::max(rp.counters.final_ladder_level, c.final_ladder_level);
    rp.counters.max_ladder_level =
        std::max(rp.counters.max_ladder_level, c.max_ladder_level);
    rp.counters.max_virtual_depth =
        std::max(rp.counters.max_virtual_depth, c.max_virtual_depth);
  }
  std::vector<std::uint64_t> vlat;
  std::array<std::vector<std::uint64_t>, kNumPriorities> by_pri;
  vlat.reserve(rp.counters.served);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    routing.emplace_back(i, rp.assignment[i]);
    const Decision& d = rp.decisions[i];
    if (d.served()) {
      const std::uint64_t lat = d.v_done_us - trace[i].t_us;
      vlat.push_back(lat);
      by_pri[static_cast<std::size_t>(d.priority)].push_back(lat);
    } else {
      shed_set.emplace_back(i, static_cast<std::uint8_t>(d.outcome));
    }
  }
  rp.virtual_latency = LatencyStats::compute(std::move(vlat));
  for (std::size_t k = 0; k < kNumPriorities; ++k)
    rp.virtual_by_priority[k] = LatencyStats::compute(std::move(by_pri[k]));
  rp.routing_hash = shed_set_fingerprint(routing);
  rp.shed_set_hash = shed_set_fingerprint(shed_set);
  return rp;
}

namespace {

std::vector<obs::CausalTuple> router_causal_tuples(const RouterPlan& rp) {
  using obs::EventType;
  std::vector<obs::CausalTuple> tuples;
  tuples.reserve(3 * rp.assignment.size());
  for (std::size_t i = 0; i < rp.assignment.size(); ++i)
    tuples.push_back({i, static_cast<std::uint8_t>(EventType::kRoute),
                      rp.assignment[i], rp.active_replicas});
  const std::vector<std::size_t> off = transition_offsets(rp);
  for (std::size_t r = 0; r < rp.per_replica.size(); ++r) {
    append_causal_decision_tuples(rp.per_replica[r], tuples);
    append_causal_transition_tuples(rp.per_replica[r], off[r], tuples);
  }
  append_causal_swap_tuples(rp.swap, tuples);  // no-op when no swap planned
  return tuples;
}

}  // namespace

std::uint64_t expected_causal_fingerprint(const RouterPlan& rp) {
  return obs::fingerprint_tuples(router_causal_tuples(rp));
}

std::size_t expected_causal_event_count(const RouterPlan& rp) {
  return router_causal_tuples(rp).size();
}

ReplicaGroup::ReplicaGroup(const ServerSpec& spec)
    : dataset_(checked_group_dataset(spec)),
      cfg_(spec.normalized_config()),
      router_(spec.router_policy()),
      registry_(spec.model_registry()),
      swap_(spec.swap_policy()) {
  const std::size_t n = spec.normalized_replicas();
  replicas_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    ServerSpec one;
    one.primary(*spec.primary_backend()).dataset(dataset_).config(cfg_);
    if (spec.degraded_backend() != nullptr)
      one.degraded(*spec.degraded_backend());
    // Each replica pins the whole registry (not the swap policy — the
    // rollout is fleet-level): every version is warmed before traffic, so
    // a cutover is a pointer hop, never a pack or an allocation.
    if (registry_ != nullptr) one.registry(*registry_);
    replicas_.push_back(std::make_unique<InferenceServer>(one));
  }
}

void ReplicaGroup::warmup() {
  for (auto& s : replicas_) s->warmup();
}

RouterPlan ReplicaGroup::plan_trace(const std::vector<Arrival>& trace) const {
  RouterPlan rp =
      route_plan(trace, cfg_.slo, cfg_.batch, router_, replicas_.size());
  // The hot-swap overlay (DESIGN.md §11) stamps pinned versions and the
  // canary rewrite onto the routed ledger. Pure like route_plan itself.
  if (swap_.enabled) apply_swap(rp, trace, swap_);
  return rp;
}

RouterReport ReplicaGroup::run(const std::vector<Arrival>& trace) {
  RouterReport rep;
  rep.total_replicas = replicas_.size();
  rep.serve.workers = replicas_.size() * cfg_.num_workers;
  if (trace.empty()) {
    log_warn("serve: empty request trace, nothing to route");
    return rep;
  }
  if (dataset_.size() == 0) {
    log_warn("serve: empty dataset, nothing to route");
    return rep;
  }
  warmup();

  // The full fleet ledger — routing, autoscale, every per-replica control
  // decision — is fixed here on the virtual clock; the replay executes it.
  const RouterPlan rp = plan_trace(trace);
  rep.active_replicas = rp.active_replicas;
  rep.routing_hash = rp.routing_hash;
  const FaultInjector injector(cfg_.slo.fault);

  const std::size_t R = replicas_.size();
  const std::size_t W = cfg_.num_workers;
  std::vector<std::vector<std::size_t>> allocs_before(R);
  for (std::size_t r = 0; r < R; ++r) {
    for (auto& wp : replicas_[r]->workers_) {
      allocs_before[r].push_back(wp->arena.stats().system_allocs);
      wp->batch_hist.clear();
      wp->served = 0;
      wp->exec_calls = 0;
      wp->primary_group.clear();
      wp->primary_group.reserve(cfg_.batch.max_batch);
      wp->degraded_group.clear();
      wp->degraded_group.reserve(cfg_.batch.max_batch);
      wp->shed_log.clear();
      wp->retried = wp->faults = wp->fallbacks = wp->degraded = wp->stalls = 0;
    }
  }
  ServeReport& srep = rep.serve;
  const FusionMode mode = replicas_[0]->mode_;
  srep.fusion = mode == FusionMode::kFused
                    ? "fused"
                    : mode == FusionMode::kFusedPerSample ? "fused_per_sample"
                                                          : "per_request";

  const std::size_t num_requests = trace.size();
  srep.requests = num_requests;
  srep.outputs = Tensor({num_requests, replicas_[0]->out_dim_});
  std::vector<std::uint64_t> enqueue(num_requests, 0);
  std::vector<std::uint64_t> completion(num_requests, 0);
  float* const out_rows = srep.outputs.data();
  std::uint64_t* const completion_us = completion.data();

  // One queue per replica; replicas admit only what the plan routed to
  // them. Unbounded like run_slo's: admission was decided on the virtual
  // clock, re-racing a wall-clock bound against the plan could diverge.
  std::vector<std::unique_ptr<RequestQueue>> queues;
  queues.reserve(R);
  for (std::size_t r = 0; r < R; ++r)
    queues.push_back(std::make_unique<RequestQueue>());
  // Planned admission bounces, logged by the producer per target replica.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint8_t>>>
      admission_shed(R);
  const std::vector<std::size_t> seq_off = transition_offsets(rp);
  const auto t0 = std::chrono::steady_clock::now();

  // One flat dispatch: block 0 is the producer, block 1 + r*W + w is
  // worker w of replica r. The pool claims blocks in order (producer
  // first) and must not nest — a nested parallel_for would run inline on
  // the caller — so the fleet shares a single worker-pool dispatch.
  ThreadPool::instance().parallel_for(
      0, 1 + R * W, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t block = lo; block < hi; ++block) {
          obs::prime();
          if (block == 0) {
            // Replay each replica's control-plane trajectory with
            // replica-major renumbered sequence ids (the fleet oracle
            // composes the same way).
            for (std::size_t r = 0; r < R; ++r) {
              const Plan& p = rp.per_replica[r];
              for (std::size_t seq = 0; seq < p.transitions.size(); ++seq) {
                const ControlTransition& t = p.transitions[seq];
                if (t.kind == ControlTransition::Kind::kLadder)
                  GBO_TRACE_EVENT(obs::EventType::kLadder, seq_off[r] + seq,
                                  static_cast<std::uint16_t>(t.level),
                                  t.v_us);
                else
                  GBO_TRACE_EVENT(obs::EventType::kBreaker, seq_off[r] + seq,
                                  1, t.v_us);
              }
            }
            // The swap trajectory is part of the executed ledger too: one
            // kSwap per planned cutover and the kCanary verdict, replayed
            // exactly as the oracle composes them (DESIGN.md §11).
            if (rp.swap.enabled) {
              for (const SwapCutover& cut : rp.swap.cutovers)
                GBO_TRACE_EVENT(obs::EventType::kSwap, cut.replica,
                                static_cast<std::uint16_t>(cut.version),
                                cut.at_us);
              GBO_TRACE_EVENT(obs::EventType::kCanary, rp.swap.canary_replica,
                              rp.swap.rolled_back ? 0 : 1, rp.swap.verdict_us);
            }
            for (std::size_t i = 0; i < num_requests; ++i) {
              std::this_thread::sleep_until(
                  t0 + std::chrono::microseconds(trace[i].t_us));
              const std::uint8_t target = rp.assignment[i];
              GBO_TRACE_EVENT(obs::EventType::kRoute, i, target,
                              rp.active_replicas);
              const Decision& d = rp.decisions[i];
              if (d.outcome == Decision::Outcome::kRejected ||
                  d.outcome == Decision::Outcome::kEvicted) {
                admission_shed[target].emplace_back(
                    i, static_cast<std::uint8_t>(d.outcome));
                GBO_TRACE_EVENT(obs::EventType::kAdmit, i,
                                static_cast<std::uint16_t>(d.outcome),
                                d.deadline_us);
                continue;
              }
              GBO_TRACE_EVENT(obs::EventType::kAdmit, i, 0, d.deadline_us);
              Request q;
              q.id = i;
              q.sample = trace[i].sample;
              q.priority = trace[i].priority;
              q.deadline_us = d.deadline_us;
              q.mode = d.mode;
              // The version pin happens here, at admission: whatever
              // cutovers land while the request waits in its queue, the
              // worker resolves exactly this version (DESIGN.md §11).
              q.version = d.version;
              q.shed = d.shed();
              q.reason = shed_reason(d.outcome);
              q.enqueue_us = us_since(t0);
              enqueue[i] = q.enqueue_us;
              queues[target]->push(q);
            }
            for (auto& q : queues) q->close();
          } else {
            const std::size_t r = (block - 1) / W;
            const std::size_t w = (block - 1) % W;
            InferenceServer& srv = *replicas_[r];
            srv.drain_queue_slo(*srv.workers_[w], *queues[r], out_rows,
                                completion_us, t0, injector, rp.decisions);
          }
        }
      });

  srep.wall_s = static_cast<double>(us_since(t0)) * 1e-6;

  srep.latencies_us.assign(num_requests, 0);
  std::vector<std::uint64_t> delivered;
  std::array<std::vector<std::uint64_t>, kNumPriorities> by_pri;
  delivered.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    if (completion[i] == 0) continue;
    const std::uint64_t lat = completion[i] - enqueue[i];
    srep.latencies_us[i] = lat;
    delivered.push_back(lat);
    by_pri[static_cast<std::size_t>(trace[i].priority)].push_back(lat);
  }
  srep.latency = LatencyStats::compute(std::move(delivered));

  // Per-replica exec accounting: admission bounces (attributed to the
  // routed replica) + every worker's pop-time shed log, fingerprinted in
  // the planner's encoding. The gates demand each replica's hash equals
  // its sub-plan's — scale-out must not smear the §7 contract.
  std::size_t batches = 0;
  SloSummary& s = srep.slo;
  std::vector<std::pair<std::uint64_t, std::uint8_t>> exec_shed_all;
  double depth_weighted = 0.0;
  rep.replicas.resize(R);
  for (std::size_t r = 0; r < R; ++r) {
    ReplicaStats& rs = rep.replicas[r];
    rs.alive = rp.alive[r] != 0;
    rs.active = std::find(rp.active.begin(), rp.active.end(),
                          static_cast<std::uint8_t>(r)) != rp.active.end();
    rs.assigned = rp.per_replica[r].decisions.size();
    rs.plan_shed_set_hash = rp.per_replica[r].shed_set_hash;
    rs.max_virtual_depth = rp.per_replica[r].counters.max_virtual_depth;
    rs.max_ladder_level = rp.per_replica[r].counters.max_ladder_level;
    // Fleet queue stats: sums with max_depth maxed; mean_depth is the
    // push-weighted mean of the per-replica means.
    const RequestQueue::DepthStats qs = queues[r]->depth_stats();
    srep.queue.pushes += qs.pushes;
    srep.queue.max_depth = std::max(srep.queue.max_depth, qs.max_depth);
    srep.queue.rejected += qs.rejected;
    srep.queue.evicted += qs.evicted;
    srep.queue.sheds += qs.sheds;
    depth_weighted += qs.mean_depth * static_cast<double>(qs.pushes);

    std::vector<std::pair<std::uint64_t, std::uint8_t>> exec_shed =
        std::move(admission_shed[r]);
    for (std::size_t wi = 0; wi < replicas_[r]->workers_.size(); ++wi) {
      InferenceServer::Worker& w = *replicas_[r]->workers_[wi];
      rs.delivered += w.served;
      srep.completed += w.served;
      srep.exec_calls += w.exec_calls;
      if (srep.batch_hist.size() < w.batch_hist.size())
        srep.batch_hist.resize(w.batch_hist.size(), 0);
      for (std::size_t b = 0; b < w.batch_hist.size(); ++b) {
        srep.batch_hist[b] += w.batch_hist[b];
        batches += w.batch_hist[b];
      }
      exec_shed.insert(exec_shed.end(), w.shed_log.begin(), w.shed_log.end());
      s.exec_retried += w.retried;
      s.exec_faults += w.faults;
      s.exec_fallbacks += w.fallbacks;
      s.exec_degraded += w.degraded;
      s.exec_stalls += w.stalls;
      const ScratchArena::Stats st = w.arena.stats();
      srep.arena.system_allocs += st.system_allocs;
      srep.arena.steady_allocs += st.system_allocs - allocs_before[r][wi];
      rs.steady_allocs += st.system_allocs - allocs_before[r][wi];
      srep.arena.high_water_bytes =
          std::max(srep.arena.high_water_bytes, st.bump_high_water_bytes);
      srep.arena.reserved_bytes += st.reserved_bytes;
    }
    std::sort(exec_shed.begin(), exec_shed.end());
    rs.shed = exec_shed.size();
    rs.exec_shed_set_hash = shed_set_fingerprint(exec_shed);
    exec_shed_all.insert(exec_shed_all.end(), exec_shed.begin(),
                         exec_shed.end());
  }
  srep.queue.mean_depth =
      srep.queue.pushes == 0
          ? 0.0
          : depth_weighted / static_cast<double>(srep.queue.pushes);
  srep.mean_batch = batches == 0 ? 0.0
                                 : static_cast<double>(srep.completed) /
                                       static_cast<double>(batches);
  srep.mean_exec_batch = srep.exec_calls == 0
                             ? 0.0
                             : static_cast<double>(srep.completed) /
                                   static_cast<double>(srep.exec_calls);
  srep.throughput_rps = srep.wall_s > 0.0
                            ? static_cast<double>(srep.completed) / srep.wall_s
                            : 0.0;

  std::sort(exec_shed_all.begin(), exec_shed_all.end());
  const PlanCounters& c = rp.counters;
  s.enabled = true;
  s.admitted = num_requests - c.rejected;
  s.served = c.served;
  s.served_primary = c.served_primary;
  s.served_canary = c.served_canary;
  s.degraded_ladder = c.degraded_ladder;
  s.degraded_breaker = c.degraded_breaker;
  s.degraded_fallback = c.degraded_fallback;
  s.shed_expired = c.shed_expired;
  s.shed_overload = c.shed_overload;
  s.rejected_capacity = c.rejected;
  s.evicted = c.evicted;
  s.retried_requests = c.retried_requests;
  s.faults_injected = c.faults_injected;
  s.late_virtual = c.late;
  s.breaker_opens = c.breaker_opens;
  s.ladder_transitions = c.ladder_transitions;
  s.final_ladder_level = c.final_ladder_level;
  s.max_ladder_level = c.max_ladder_level;
  s.max_virtual_depth = c.max_virtual_depth;
  s.deadline_us = cfg_.slo.deadline_us;
  s.shed_set_hash = rp.shed_set_hash;
  s.virtual_latency = rp.virtual_latency;
  s.virtual_by_priority = rp.virtual_by_priority;
  s.exec_delivered = srep.completed;
  s.exec_shed = exec_shed_all.size();
  s.exec_shed_set_hash = shed_set_fingerprint(exec_shed_all);
  for (std::size_t k = 0; k < kNumPriorities; ++k)
    s.real_by_priority[k] = LatencyStats::compute(std::move(by_pri[k]));

  if (rp.swap.enabled) {
    SwapSummary& sw = srep.swap;
    sw.enabled = true;
    sw.rolled_back = rp.swap.rolled_back;
    sw.from_version = rp.swap.from_version;
    sw.to_version = rp.swap.to_version;
    sw.canary_replica = rp.swap.canary_replica;
    sw.start_us = rp.swap.start_us;
    sw.verdict_us = rp.swap.verdict_us;
    sw.canary_served = rp.swap.canary_served;
    sw.canary_faults = rp.swap.canary_faults;
    sw.breaker_opens = rp.swap.breaker_opens;
    sw.latency_breach = rp.swap.latency_breach;
    sw.cutovers = rp.swap.cutovers.size();
    sw.version_hash = rp.swap.version_hash;
    // Payload provenance: the pinned version per request id, and how many
    // deliveries each version produced.
    srep.versions = rp.swap.version_of;
    for (std::size_t i = 0; i < num_requests; ++i) {
      if (!rp.decisions[i].served()) continue;
      const std::uint32_t v = rp.swap.version_of[i];
      auto it = std::find_if(
          sw.served_by_version.begin(), sw.served_by_version.end(),
          [v](const std::pair<std::uint32_t, std::size_t>& e) {
            return e.first == v;
          });
      if (it == sw.served_by_version.end())
        sw.served_by_version.emplace_back(v, 1);
      else
        ++it->second;
    }
    std::sort(sw.served_by_version.begin(), sw.served_by_version.end());
  }
  return rep;
}

Json RouterReport::to_json() const {
  Json j = Json::object();
  j.set("total_replicas", total_replicas);
  j.set("active_replicas", active_replicas);
  j.set("routing_hash", hex64(routing_hash));
  Json reps = Json::array();
  for (const ReplicaStats& r : replicas) {
    Json jr = Json::object();
    jr.set("alive", r.alive);
    jr.set("active", r.active);
    jr.set("assigned", r.assigned);
    jr.set("delivered", r.delivered);
    jr.set("shed", r.shed);
    jr.set("plan_shed_set_hash", hex64(r.plan_shed_set_hash));
    jr.set("exec_shed_set_hash", hex64(r.exec_shed_set_hash));
    jr.set("max_virtual_depth", r.max_virtual_depth);
    jr.set("max_ladder_level", r.max_ladder_level);
    jr.set("steady_allocs", r.steady_allocs);
    reps.push_back(jr);
  }
  j.set("replicas", reps);
  j.set("serve", serve.to_json());
  return j;
}

}  // namespace gbo::serve
