// Thread-safe request queue with a dynamic micro-batcher pop.
//
// Producers push requests as they arrive; workers call pop_batch, which
// implements the classic dynamic-batching tradeoff: return as soon as
// max_batch requests are in hand, or when the first popped request has
// waited max_wait_us for company — whichever comes first. A closed, drained
// queue releases every waiting worker with `false`, which is the workers'
// shutdown signal.
//
// The queue is unbounded: the producer is a trace replayer that must never
// drop or delay a scheduled arrival (and an unbounded queue is what lets
// the whole runtime collapse onto a single thread — produce everything,
// then drain — without deadlocking). Queue depth is instrumented instead of
// limited; the serving report surfaces it.
#pragma once

#include "serve/request.hpp"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace gbo::serve {

class RequestQueue {
 public:
  struct DepthStats {
    std::size_t pushes = 0;
    std::size_t max_depth = 0;   // largest depth observed right after a push
    double mean_depth = 0.0;     // mean post-push depth
  };

  /// Enqueues one request and wakes one waiting worker.
  void push(const Request& r);

  /// Marks the end of the trace; wakes every waiting worker.
  void close();

  /// Pops one micro-batch per the policy. Blocks until at least one request
  /// is available (or the queue is closed and drained, returning false).
  /// max_batch == 0 is treated as 1.
  bool pop_batch(const BatchPolicy& policy, std::vector<Request>& out);

  DepthStats depth_stats() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> q_;
  bool closed_ = false;
  DepthStats stats_;
  std::uint64_t depth_sum_ = 0;
};

}  // namespace gbo::serve
