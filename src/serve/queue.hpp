// Thread-safe, priority-aware, optionally bounded request queue with a
// dynamic micro-batcher pop and deadline-aware shedding.
//
// Producers push requests as they arrive; workers call pop_batch, which
// implements the classic dynamic-batching tradeoff: return as soon as
// max_batch requests are in hand, or when the first popped request has
// waited max_wait_us for company — whichever comes first (max_wait_us == 0
// flushes whatever is queued immediately, with no coalescing wait). A
// closed, drained queue releases every waiting worker with `false`, which
// is the workers' shutdown signal.
//
// Robustness mechanisms (DESIGN.md §7), all off by default so the legacy
// unbounded-FIFO behaviour is the zero-config case:
//
//   * bounded capacity — QueuePolicy{capacity, on_full}: kRejectNew bounces
//     the incoming request, kDropOldest evicts the oldest request of the
//     least-important class (never evicting more-important work for a less
//     important arrival) and hands the victim back to the caller;
//   * priority classes — one FIFO per Priority; pops drain kHigh first;
//   * shedding at pop — before a batch forms, requests marked shed by the
//     control plane, expired against the caller's clock, or below the
//     caller's priority floor are diverted into a shed output instead of
//     being batched. Shed work never reaches a backend.
//
// try_pop_batch is the non-blocking variant the virtual-time SLO planner
// (serve/policy.cpp) drives: it runs the exact same collect logic under an
// explicit `now_us`, which is what makes planner decisions and real queue
// mechanics share one implementation.
#pragma once

#include "serve/request.hpp"

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace gbo::serve {

/// Admission bound. capacity == 0 keeps the queue unbounded.
struct QueuePolicy {
  enum class OnFull : std::uint8_t { kRejectNew, kDropOldest };
  std::size_t capacity = 0;
  OnFull on_full = OnFull::kRejectNew;
};

class RequestQueue {
 public:
  enum class PushResult : std::uint8_t {
    kAccepted,         // enqueued
    kRejectedFull,     // bounced (queue full; victim would outrank arrival)
    kAcceptedEvicted,  // enqueued after dropping the oldest low-pri request
  };

  struct DepthStats {
    std::size_t pushes = 0;      // accepted pushes
    std::size_t max_depth = 0;   // largest depth observed right after a push
    double mean_depth = 0.0;     // mean post-push depth
    std::size_t rejected = 0;    // arrivals bounced by the bound
    std::size_t evicted = 0;     // queued requests dropped by kDropOldest
    std::size_t sheds = 0;       // requests diverted at pop time
  };

  RequestQueue() = default;
  explicit RequestQueue(QueuePolicy policy) : policy_(policy) {}

  /// Enqueues one request (subject to the capacity bound) and wakes one
  /// waiting worker. On kAcceptedEvicted the victim is copied into
  /// *evicted when non-null.
  PushResult push(const Request& r, Request* evicted = nullptr);

  /// Marks the end of the trace; wakes every waiting worker.
  void close();

  /// Pops one micro-batch per the policy, highest priority class first.
  /// Blocks until at least one request is available (or the queue is closed
  /// and drained, returning false). Requests carrying the control-plane
  /// shed mark are diverted into *shed (dropped if null) before batching;
  /// a call that only shed still returns true with an empty `out` so the
  /// caller can account the sheds and loop. max_batch == 0 is treated as 1.
  bool pop_batch(const BatchPolicy& policy, std::vector<Request>& out,
                 std::vector<Request>* shed = nullptr);

  /// Non-blocking pop under an explicit clock: sheds marked requests,
  /// requests whose deadline is <= now_us, and requests with a class below
  /// min_priority (the overload floor), then batches up to max_batch of
  /// what remains. Returns true when anything was popped or shed. This is
  /// the planner's entry point; it never waits for company.
  bool try_pop_batch(const BatchPolicy& policy, std::uint64_t now_us,
                     Priority min_priority, std::vector<Request>& out,
                     std::vector<Request>& shed);

  /// Current queued depth (all classes).
  std::size_t size() const;

  /// Earliest enqueue_us among queued requests; ~0 when empty. The planner
  /// uses it to schedule virtual flush times.
  std::uint64_t oldest_enqueue_us() const;

  DepthStats depth_stats() const;

 private:
  // Moves up to `cap` requests into out (priority order, FIFO per class),
  // diverting shed-marked / expired / below-floor requests into *shed.
  // Progress guarantee: a non-empty queue always loses >= 1 request.
  void collect_locked(std::size_t cap, std::uint64_t now_us,
                      Priority min_priority, std::vector<Request>& out,
                      std::vector<Request>* shed);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::array<std::deque<Request>, kNumPriorities> q_;
  std::size_t size_ = 0;
  QueuePolicy policy_;
  bool closed_ = false;
  DepthStats stats_;
  std::uint64_t depth_sum_ = 0;
  std::uint64_t pop_seq_ = 0;  // trace id of kQueuePop events
};

}  // namespace gbo::serve
