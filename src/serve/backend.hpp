// Inference backends the serving runtime can drive.
//
// A Backend is a const view over a frozen model: run() must be safe to call
// concurrently from many workers as long as each passes its own EvalContext
// (the same contract as nn::Module::infer). Two implementations cover the
// repository's execution modes:
//
//   * AnalyticBackend — the host network through the stateless infer path;
//     with noise hooks attached this is the paper's analytic Eq. 2–4 noisy
//     evaluation, without them it is clean digital inference.
//   * PulseBackend — a deployed HardwareNetwork at pulse granularity
//     (device model, ADC, read noise included) via its const forward.
//
// Under the SLO control plane (serve/policy.hpp, DESIGN.md §7) the server
// holds two backends: the *primary* (typically PulseBackend) serves full-
// fidelity traffic, and a cheaper *degraded* backend (typically the
// analytic model) is the fidelity-ladder fallback under overload, breaker
// quarantine, or exhausted retries. Both are plain Backends — nothing here
// knows about the ladder; routing is the control plane's job.
//
// fusion_mode() tells the server how run() may execute micro-batches.
// Deterministic backends fuse into one whole-tensor call: every kernel in
// the infer path computes each batch row independently (row-stable GEMM
// dispatch, per-sample im2col/BN/pooling, elementwise activations), so the
// fused result is bitwise equal row-for-row to unit-batch execution — the
// batching-boundary half of the serving determinism contract, enforced by
// tests/test_serve.cpp. Stochastic configurations fuse too when every
// noise site supports per-sample row streams (DESIGN.md §6): each batch
// row draws from its own (seed, request_id) fork, which makes outputs
// independent of batch composition by construction. Only backends with
// opaque stochastic state fall back to unit-batch execution.
#pragma once

#include "crossbar/crossbar_layers.hpp"
#include "crossbar/hw_deploy.hpp"
#include "nn/eval_context.hpp"
#include "nn/sequential.hpp"

#include <string>

namespace gbo::serve {

/// How the server may execute micro-batches (frozen at warmup):
///   kFused          — run() draws nothing: whole-tensor fusion, no streams.
///   kFusedPerSample — run() draws, but every stochastic site supports
///                     per-sample row streams (DESIGN.md §6): batches fuse
///                     with ctx.row_rngs = fork(seed, request_id) per row,
///                     bitwise row-equal to per-request execution.
///   kPerRequest     — opaque stochastic state: unit batches only.
enum class FusionMode { kFused, kFusedPerSample, kPerRequest };

class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;

  /// True when run() draws nothing from ctx.rng; enables fused batching.
  virtual bool deterministic() const = 0;

  /// Conservative default: fuse only when fully deterministic. Backends
  /// whose stochastic sites all honour EvalContext::row_rngs override this
  /// to kFusedPerSample so noisy configurations batch their GEMMs too.
  virtual FusionMode fusion_mode() const {
    return deterministic() ? FusionMode::kFused : FusionMode::kPerRequest;
  }

  /// Logits for a [B, ...] input batch. Must not mutate shared state.
  virtual Tensor run(const Tensor& x, nn::EvalContext& ctx) const = 0;
};

/// Host network through nn::Module::infer. `stochastic` must be true
/// whenever attached noise hooks will draw from the context (e.g. a
/// LayerNoiseController with sigma > 0 and noise enabled). The flag is a
/// promise about *intent*; deterministic() additionally walks the whole
/// module tree (Hookable hooks, CrossbarLinear engines, nested containers
/// via Module::children), so a forgotten flag cannot silently fuse batches
/// over live noise hooks.
class AnalyticBackend : public Backend {
 public:
  AnalyticBackend(const nn::Sequential& net, bool stochastic = true)
      : net_(net), stochastic_(stochastic) {}

  std::string name() const override {
    return stochastic_ ? "analytic_noisy" : "analytic_clean";
  }
  bool deterministic() const override {
    return !stochastic_ && !module_stochastic(net_);
  }
  /// Stochastic configurations still fuse when every live noise hook
  /// supports per-sample row streams (CrossbarLinear engines always do);
  /// an opted-out hook falls back to unit batches, never to wrong fusion.
  FusionMode fusion_mode() const override {
    if (deterministic()) return FusionMode::kFused;
    return quant::hooks_support_row_streams(net_)
               ? FusionMode::kFusedPerSample
               : FusionMode::kPerRequest;
  }
  Tensor run(const Tensor& x, nn::EvalContext& ctx) const override {
    return net_.infer(x, ctx);
  }

 private:
  static bool module_stochastic(const nn::Module& m) {
    if (const auto* h = dynamic_cast<const quant::Hookable*>(&m))
      if (h->noise_hook() != nullptr && h->noise_hook()->stochastic())
        return true;
    if (const auto* cl = dynamic_cast<const xbar::CrossbarLinear*>(&m)) {
      const xbar::MvmConfig& cfg = cl->engine().config();
      if (cfg.sigma > 0.0 || cfg.device.read_noise_sigma > 0.0) return true;
    }
    for (const nn::Module* child : m.children())
      if (module_stochastic(*child)) return true;
    return false;
  }

  const nn::Sequential& net_;
  bool stochastic_;
};

/// Deployed crossbar hardware at pulse granularity (shared-safe const
/// forward over the frozen programmed engines).
class PulseBackend : public Backend {
 public:
  explicit PulseBackend(const xbar::HardwareNetwork& hw) : hw_(hw) {}

  std::string name() const override { return "pulse"; }
  bool deterministic() const override { return hw_.deterministic(); }
  FusionMode fusion_mode() const override {
    if (deterministic()) return FusionMode::kFused;
    return hw_.per_sample_capable() ? FusionMode::kFusedPerSample
                                    : FusionMode::kPerRequest;
  }
  Tensor run(const Tensor& x, nn::EvalContext& ctx) const override {
    return hw_.forward(x, ctx);
  }

 private:
  const xbar::HardwareNetwork& hw_;
};

}  // namespace gbo::serve
