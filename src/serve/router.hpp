// Sharded multi-replica serving behind a deterministic router (DESIGN.md
// §10).
//
// A ReplicaGroup places N replicas of a deployed backend pair — each
// replica is its own InferenceServer with its own RequestQueue and worker
// set — behind a router. Scale-out never buys back the determinism the
// single-replica runtime guarantees, because every routing decision is
// planned on the virtual clock before a wall-clock microsecond elapses:
//
//   * the routing function is pure in (seed, request id, policy, active
//     set) — round-robin striping or seeded hashing over the active
//     replicas (serve/policy.hpp RouterPolicy);
//   * replica liveness comes from the PR 6 fault injector with the replica
//     index as the fault id, so an outage window deterministically removes
//     a replica from the active set and the reroute it forces is part of
//     the plan, not a runtime race;
//   * each replica is a virtual lane of the SLO planner: route_plan()
//     splits the trace into per-replica sub-traces (carrying global
//     request ids) and runs the §7 virtual-clock simulation per replica,
//     so per-replica shed sets, ladder trajectories, and fault routing are
//     bitwise identical at any worker count;
//   * queue-depth autoscaling is driven by the planner's own metrics: the
//     router activates the smallest replica count whose planned
//     per-replica max_virtual_depth stays within RouterPolicy::scale_depth
//     (and whose ladder never reaches the shed level) — replicas admit
//     work only when the planner says so;
//   * all replicas share the payload seed, and payloads depend only on
//     (seed, request id) — so a reroute (outage, autoscale step) can move
//     a request between replicas without changing a single output bit;
//   * the causal trace (DESIGN.md §9) gains one kRoute event per request
//     (id, replica, active count); the fleet-wide fingerprint composes the
//     per-replica decision ledgers with replica-major renumbered control
//     transitions and is gated against the runtime's emitted events.
#pragma once

#include "serve/server.hpp"
#include "serve/swap.hpp"

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

namespace gbo::serve {

/// The routing + per-replica decision ledger for one trace. Pure in
/// (trace, slo, batch, router, replicas): same inputs, identical plan.
struct RouterPlan {
  std::size_t total_replicas = 0;   // deployed replicas
  std::size_t active_replicas = 0;  // activated by the autoscaler
  /// Per-replica liveness under the outage model (index = replica).
  std::vector<std::uint8_t> alive;
  /// Replica indices receiving traffic, ascending (the active set).
  std::vector<std::uint8_t> active;
  /// assignment[id] = replica serving request id (every request routes,
  /// including ones its replica then bounces at admission).
  std::vector<std::uint8_t> assignment;
  /// FNV-1a over (id, replica) pairs in id order — the routing
  /// fingerprint the determinism gates compare (same shape as the §7
  /// shed-set fingerprint).
  std::uint64_t routing_hash = 0;
  /// Per-replica §7 sub-plans (index = replica; inactive replicas hold
  /// empty plans). Each carries its sub-trace's global request ids, so
  /// its shed_set_hash is keyed the same way as the fleet union below.
  std::vector<Plan> per_replica;
  /// Merged ledger, indexed by global request id.
  std::vector<Decision> decisions;
  /// Union shed set over all replicas, global ids ascending.
  std::uint64_t shed_set_hash = 0;
  /// Merged counters: sums, with max_virtual_depth / ladder levels maxed.
  PlanCounters counters;
  /// Fleet virtual latency (arrival -> virtual completion) over served
  /// requests, recomputed across the merged ledger.
  LatencyStats virtual_latency;
  std::array<LatencyStats, kNumPriorities> virtual_by_priority;
  /// Hot-swap overlay (DESIGN.md §11): disabled unless the group carries a
  /// SwapPolicy, in which case apply_swap() stamped the ledger above.
  SwapPlan swap;
};

/// The deterministic routing function: which member of `active` (ascending
/// replica indices) serves request `id`.
std::uint8_t route_replica(const RouterPolicy& router, std::uint64_t id,
                           const std::vector<std::uint8_t>& active);

/// Plans routing, autoscale, and every per-replica control decision for
/// the trace. Pure; the group's run() executes exactly this.
RouterPlan route_plan(const std::vector<Arrival>& trace, const SloPolicy& slo,
                      const BatchPolicy& batch, const RouterPolicy& router,
                      std::size_t replicas);

/// The fleet causal-trace oracle (DESIGN.md §9/§10): kRoute per request +
/// per-replica decision tuples + replica-major renumbered transitions.
std::uint64_t expected_causal_fingerprint(const RouterPlan& rp);
std::size_t expected_causal_event_count(const RouterPlan& rp);

/// Per-replica accounting of a router run; plan-side fields come from the
/// sub-plan, exec-side fields from what the replica's workers actually did.
struct ReplicaStats {
  bool alive = true;
  bool active = false;
  std::size_t assigned = 0;        // requests routed here (plan)
  std::size_t delivered = 0;       // payload rows written (exec)
  std::size_t shed = 0;            // exec shed entries (admission + pop)
  std::uint64_t plan_shed_set_hash = 0;
  std::uint64_t exec_shed_set_hash = 0;  // must equal plan_shed_set_hash
  std::size_t max_virtual_depth = 0;
  int max_ladder_level = 0;
  std::size_t steady_allocs = 0;   // arena growth across the replica's run
};

/// Everything one ReplicaGroup::run produced: the aggregate ServeReport
/// (outputs indexed by global request id, fleet SloSummary) plus the
/// routing ledger and per-replica stats.
struct RouterReport {
  ServeReport serve;
  std::size_t total_replicas = 0;
  std::size_t active_replicas = 0;
  std::uint64_t routing_hash = 0;  // == RouterPlan::routing_hash
  std::vector<ReplicaStats> replicas;

  Json to_json() const;
};

/// N single-replica InferenceServers behind per-replica queues and worker
/// sets, executed by one flat worker pool (1 producer block + N *
/// num_workers worker blocks — the pool does not nest). Constructed from
/// the same ServerSpec as the single-replica path:
///
///   ReplicaGroup group(ServerSpec{}.primary(b).degraded(d).dataset(ds)
///                          .config(cfg).replicas(4).router(policy));
///
/// Requires cfg.slo.enabled (routing decisions live on the virtual clock).
class ReplicaGroup {
 public:
  explicit ReplicaGroup(const ServerSpec& spec);

  std::size_t num_replicas() const { return replicas_.size(); }

  /// Warms every replica (arena sizing, cache prepack, mode freeze).
  void warmup();

  /// The plan run() would execute for this trace (pure; exposed so tests
  /// and benches can compare the execution against its oracle).
  RouterPlan plan_trace(const std::vector<Arrival>& trace) const;

  /// Routes and serves the trace to completion. Payloads, per-replica shed
  /// sets, and the routing assignment are bitwise identical at any worker
  /// count and equal to plan_trace()'s ledger.
  RouterReport run(const std::vector<Arrival>& trace);

 private:
  const data::Dataset& dataset_;
  ServeConfig cfg_;
  RouterPolicy router_;
  const ModelRegistry* registry_ = nullptr;  // borrowed from the spec
  SwapPolicy swap_;
  std::vector<std::unique_ptr<InferenceServer>> replicas_;
};

}  // namespace gbo::serve
