// Deterministic fault injection for the serving runtime (DESIGN.md §7).
//
// Production overload handling is only trustworthy if its failure paths are
// exercised, and only testable if the failures are reproducible. Every
// injected fault here is a pure function of (fault seed, request id,
// attempt) via the repository's counter-fork RNG contract (DESIGN.md §3):
// the same request fails the same attempts no matter which worker runs it,
// how batches formed, or whether the decision is evaluated by the
// virtual-time planner (serve/policy.cpp) or the live worker — which is
// what lets retry/fallback accounting stay bitwise deterministic at any
// worker count.
//
// Fault classes:
//   * transient backend failures — attempt k of request id fails with
//     probability transient_rate (independent per attempt): the worker
//     retries with bounded backoff and the planner charges the retry cost;
//   * sustained outage — every primary attempt of request ids in
//     [outage_start_id, outage_start_id + outage_len) fails, modelling a
//     persistently faulty crossbar tile / backend replica: retries exhaust,
//     requests fall back to the degraded backend, and the circuit breaker
//     opens to quarantine the primary until a half-open probe succeeds;
//   * worker stalls — request id stalls its worker for stall_us of real
//     wall time with probability stall_rate: a timing-robustness fault that
//     must not change payloads or the shed set (and, because decisions live
//     on the virtual clock, cannot).
#pragma once

#include "common/rng.hpp"

#include <cstddef>
#include <cstdint>

namespace gbo::serve {

struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 0xF417;     // root of the per-request fault forks
  double transient_rate = 0.0;     // per-attempt failure probability
  double stall_rate = 0.0;         // per-request worker-stall probability
  std::uint64_t stall_us = 0;      // stall duration (real wall time)
  std::uint64_t outage_start_id = 0;  // first request id of the outage
  std::size_t outage_len = 0;         // 0 = no outage window
};

/// Pure-function fault oracle; safe to share across threads (every query
/// forks from the const root, no mutable state).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg)
      : cfg_(cfg), root_(cfg.seed) {}

  const FaultConfig& config() const { return cfg_; }

  /// True when primary attempt `attempt` (0-based) of request `id` fails.
  bool fails(std::uint64_t id, std::size_t attempt) const;

  /// First attempt index that succeeds, or max_attempts when every allowed
  /// attempt fails (the request must fall back). attempts_to_success(id, m)
  /// failed attempts precede the success.
  std::size_t attempts_to_success(std::uint64_t id,
                                  std::size_t max_attempts) const;

  /// Real-time stall injected before executing request `id`; 0 = none.
  std::uint64_t stall_us(std::uint64_t id) const;

  /// True when `id` falls inside the sustained-outage window.
  bool in_outage(std::uint64_t id) const;

 private:
  FaultConfig cfg_;
  Rng root_;  // only forked from, never advanced
};

/// Classic three-state circuit breaker, parameterized on an external clock
/// so the virtual-time planner can drive it deterministically (DESIGN.md
/// §7): kClosed counts consecutive primary failures and opens at
/// failure_threshold; kOpen rejects primaries until cooldown_us has passed,
/// then admits a single half-open probe; the probe's success closes the
/// breaker, its failure re-opens it for another cooldown.
struct BreakerPolicy {
  std::size_t failure_threshold = 5;
  std::uint64_t cooldown_us = 5000;
};

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const BreakerPolicy& policy) : policy_(policy) {}

  /// May the next primary attempt proceed at `now_us`? Transitions
  /// kOpen -> kHalfOpen once the cooldown has elapsed and admits exactly
  /// one probe until its outcome is recorded.
  bool allow(std::uint64_t now_us);

  void record_success(std::uint64_t now_us);
  void record_failure(std::uint64_t now_us);

  State state() const { return state_; }
  std::size_t opens() const { return opens_; }

 private:
  void open(std::uint64_t now_us);

  BreakerPolicy policy_;
  State state_ = State::kClosed;
  std::size_t consecutive_failures_ = 0;
  std::uint64_t open_until_us_ = 0;
  bool probe_outstanding_ = false;
  std::size_t opens_ = 0;
};

}  // namespace gbo::serve
