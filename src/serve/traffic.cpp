#include "serve/traffic.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"

#include <cmath>

namespace gbo::serve {

std::vector<Arrival> make_trace(const TrafficConfig& cfg,
                                std::size_t dataset_size) {
  if (cfg.num_requests == 0) {
    log_warn("serve::make_trace: num_requests == 0, empty trace");
    return {};
  }
  if (dataset_size == 0) {
    log_warn("serve::make_trace: empty dataset, empty trace");
    return {};
  }
  if (cfg.rate_rps <= 0.0) {
    log_warn("serve::make_trace: rate_rps <= 0, empty trace");
    return {};
  }

  Rng rng(cfg.seed);
  std::vector<Arrival> trace;
  trace.reserve(cfg.num_requests);
  const bool bursty = cfg.burst_factor > 1.0 && cfg.burst_duty > 0.0 &&
                      cfg.burst_period_s > 0.0;
  double t = 0.0;  // seconds
  for (std::size_t i = 0; i < cfg.num_requests; ++i) {
    double rate = cfg.rate_rps;
    if (bursty) {
      const double phase = std::fmod(t, cfg.burst_period_s);
      if (phase < cfg.burst_duty * cfg.burst_period_s) rate *= cfg.burst_factor;
    }
    // Exponential inter-arrival; 1 - u in (0, 1] keeps log finite.
    t += -std::log(1.0 - rng.uniform()) / rate;
    Arrival a;
    a.t_us = static_cast<std::uint64_t>(t * 1e6);
    a.sample = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(dataset_size) - 1));
    trace.push_back(a);
  }
  return trace;
}

}  // namespace gbo::serve
