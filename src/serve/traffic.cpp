#include "serve/traffic.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

namespace gbo::serve {
namespace {
constexpr double kTwoPi = 6.28318530717958647692;
}  // namespace

double rate_at(const TrafficConfig& cfg, double t_s) {
  switch (cfg.shape) {
    case TraceShape::kPoissonBurst: {
      double rate = cfg.rate_rps;
      const bool bursty = cfg.burst_factor > 1.0 && cfg.burst_duty > 0.0 &&
                          cfg.burst_period_s > 0.0;
      if (bursty) {
        const double phase = std::fmod(t_s, cfg.burst_period_s);
        if (phase < cfg.burst_duty * cfg.burst_period_s)
          rate *= cfg.burst_factor;
      }
      return rate;
    }
    case TraceShape::kDiurnal: {
      if (cfg.diurnal_period_s <= 0.0) return cfg.rate_rps;
      const double amp = std::clamp(cfg.diurnal_amp, 0.0, 1.0);
      const double rate =
          cfg.rate_rps *
          (1.0 + amp * std::sin(kTwoPi * t_s / cfg.diurnal_period_s));
      // Floor at 1% of base so a full-amplitude trough cannot stall the
      // exponential sampler (and the trace always terminates).
      return std::max(rate, cfg.rate_rps * 0.01);
    }
    case TraceShape::kFlashCrowd: {
      const double factor = std::max(cfg.flash_factor, 1.0);
      const double ramp = std::max(cfg.flash_ramp_s, 0.0);
      const double up0 = cfg.flash_start_s;
      const double up1 = up0 + ramp;
      const double down0 = up1 + std::max(cfg.flash_hold_s, 0.0);
      const double down1 = down0 + ramp;
      double mult = 1.0;
      if (t_s >= up0 && t_s < up1)
        mult = 1.0 + (factor - 1.0) * (t_s - up0) / ramp;
      else if (t_s >= up1 && t_s < down0)
        mult = factor;
      else if (t_s >= down0 && t_s < down1)
        mult = factor - (factor - 1.0) * (t_s - down0) / ramp;
      return cfg.rate_rps * mult;
    }
  }
  return cfg.rate_rps;
}

std::vector<Arrival> make_trace(const TrafficConfig& cfg,
                                std::size_t dataset_size) {
  if (cfg.num_requests == 0) {
    log_warn("serve::make_trace: num_requests == 0, empty trace");
    return {};
  }
  if (dataset_size == 0) {
    log_warn("serve::make_trace: empty dataset, empty trace");
    return {};
  }
  if (cfg.rate_rps <= 0.0) {
    log_warn("serve::make_trace: rate_rps <= 0, empty trace");
    return {};
  }

  Rng rng(cfg.seed);
  std::vector<Arrival> trace;
  trace.reserve(cfg.num_requests);
  const bool classed = cfg.high_fraction > 0.0 || cfg.low_fraction > 0.0;
  double t = 0.0;  // seconds
  for (std::size_t i = 0; i < cfg.num_requests; ++i) {
    const double rate = rate_at(cfg, t);
    // Exponential inter-arrival; 1 - u in (0, 1] keeps log finite. Using
    // the rate at the interval start is the standard piecewise
    // approximation of the inhomogeneous process — still pure data,
    // deterministic in (config, dataset_size).
    t += -std::log(1.0 - rng.uniform()) / rate;
    Arrival a;
    a.t_us = static_cast<std::uint64_t>(t * 1e6);
    a.sample = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(dataset_size) - 1));
    if (classed) {
      // One extra draw per arrival, consumed only when a class mix is
      // configured so legacy configs reproduce their old streams exactly.
      const double u = rng.uniform();
      if (u < cfg.high_fraction)
        a.priority = Priority::kHigh;
      else if (u < cfg.high_fraction + cfg.low_fraction)
        a.priority = Priority::kLow;
    }
    trace.push_back(a);
  }
  return trace;
}

}  // namespace gbo::serve
