#include "nn/pooling.hpp"

#include <limits>
#include <stdexcept>

namespace gbo::nn {

Tensor MaxPool2d::pool(const Tensor& x, std::vector<std::size_t>* argmax,
                       EvalContext* ctx) const {
  if (x.ndim() != 4) throw std::invalid_argument("MaxPool2d: expected NCHW");
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (h % window_ != 0 || w % window_ != 0)
    throw std::invalid_argument("MaxPool2d: size not divisible by window");
  const std::size_t oh = h / window_, ow = w / window_;
  Tensor out = ctx ? ctx->make({n, c, oh, ow}) : Tensor({n, c, oh, ow});
  if (argmax) argmax->assign(out.numel(), 0);

  const float* in = x.data();
  float* o = out.data();
  std::size_t oidx = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = in + (i * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy)
        for (std::size_t ox = 0; ox < ow; ++ox, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < window_; ++ky)
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t iy = oy * window_ + ky;
              const std::size_t ix = ox * window_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = (i * c + ch) * h * w + iy * w + ix;
              }
            }
          o[oidx] = best;
          if (argmax) (*argmax)[oidx] = best_idx;
        }
    }
  return out;
}

Tensor MaxPool2d::forward(const Tensor& x) {
  cached_shape_ = x.shape();
  return pool(x, &cached_argmax_, nullptr);
}

Tensor MaxPool2d::infer(const Tensor& x, EvalContext& ctx) const {
  return pool(x, nullptr, &ctx);
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  Tensor grad_in(cached_shape_);
  float* gi = grad_in.data();
  const float* go = grad_out.data();
  for (std::size_t i = 0; i < grad_out.numel(); ++i)
    gi[cached_argmax_[i]] += go[i];
  return grad_in;
}

Tensor AvgPool2d::pool(const Tensor& x, EvalContext* ctx) const {
  if (x.ndim() != 4) throw std::invalid_argument("AvgPool2d: expected NCHW");
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (h % window_ != 0 || w % window_ != 0)
    throw std::invalid_argument("AvgPool2d: size not divisible by window");
  const std::size_t oh = h / window_, ow = w / window_;
  Tensor out = ctx ? ctx->make({n, c, oh, ow}) : Tensor({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(window_ * window_);

  const float* in = x.data();
  float* o = out.data();
  std::size_t oidx = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = in + (i * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy)
        for (std::size_t ox = 0; ox < ow; ++ox, ++oidx) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < window_; ++ky)
            for (std::size_t kx = 0; kx < window_; ++kx)
              acc += plane[(oy * window_ + ky) * w + ox * window_ + kx];
          o[oidx] = acc * inv;
        }
    }
  return out;
}

Tensor AvgPool2d::forward(const Tensor& x) {
  cached_shape_ = x.shape();
  return pool(x, nullptr);
}

Tensor AvgPool2d::infer(const Tensor& x, EvalContext& ctx) const {
  return pool(x, &ctx);
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  const std::size_t n = cached_shape_[0], c = cached_shape_[1],
                    h = cached_shape_[2], w = cached_shape_[3];
  const std::size_t oh = h / window_, ow = w / window_;
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  Tensor grad_in(cached_shape_);
  float* gi = grad_in.data();
  const float* go = grad_out.data();
  std::size_t oidx = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t ch = 0; ch < c; ++ch) {
      float* plane = gi + (i * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy)
        for (std::size_t ox = 0; ox < ow; ++ox, ++oidx) {
          const float g = go[oidx] * inv;
          for (std::size_t ky = 0; ky < window_; ++ky)
            for (std::size_t kx = 0; kx < window_; ++kx)
              plane[(oy * window_ + ky) * w + ox * window_ + kx] += g;
        }
    }
  return grad_in;
}

}  // namespace gbo::nn
