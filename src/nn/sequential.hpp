// Ordered container of modules; owns them and chains forward/backward.
#pragma once

#include "nn/module.hpp"

namespace gbo::nn {

class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a module; returns a typed raw pointer for later hooks
  /// (the container keeps ownership).
  template <typename M>
  M* add(std::unique_ptr<M> m) {
    M* raw = m.get();
    modules_.push_back(std::move(m));
    return raw;
  }

  template <typename M, typename... Args>
  M* emplace(Args&&... args) {
    return add(std::make_unique<M>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, EvalContext& ctx) const override;
  std::vector<const Module*> children() const override;
  std::vector<Param*> params() override;
  std::vector<Param*> buffers() override;
  void set_training(bool training) override;
  std::string kind() const override { return "Sequential"; }

  std::size_t size() const { return modules_.size(); }
  Module& at(std::size_t i) { return *modules_.at(i); }
  const Module& at(std::size_t i) const { return *modules_.at(i); }

  /// Serializes the whole stack with "<prefix><index>." key prefixes.
  StateDict state_dict(const std::string& prefix = "") ;
  void load_state_dict(const StateDict& state, const std::string& prefix = "");

  /// Runs forward through layers [0, upto) only — used by the layer-wise
  /// noise-sensitivity analysis (Fig. 2) to splice noise mid-network.
  Tensor forward_prefix(const Tensor& x, std::size_t upto);
  /// Continues forward through layers [from, size()).
  Tensor forward_suffix(const Tensor& x, std::size_t from);

 private:
  std::vector<ModulePtr> modules_;
};

}  // namespace gbo::nn
