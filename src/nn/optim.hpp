// Optimizers and learning-rate schedules.
//
// SGD with momentum + weight decay is used for pre-training (paper §IV-A:
// momentum 0.9, weight decay 5e-4, base lr 1e-3, step decay x0.1 at 50/70/90%
// of epochs). ADAM (lr 1e-4) is used for the GBO λ-parameter phase.
#pragma once

#include "nn/module.hpp"

#include <vector>

namespace gbo::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad();

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 protected:
  std::vector<Param*> params_;
  float lr_ = 1e-3f;
};

class SGD : public Optimizer {
 public:
  SGD(std::vector<Param*> params, float lr, float momentum = 0.9f,
      float weight_decay = 5e-4f);

  void step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void step() override;

 private:
  float beta1_, beta2_, eps_;
  std::vector<Tensor> m_, v_;
  long t_ = 0;
};

/// Multiplies the lr by `factor` when crossing each milestone (fractions of
/// total epochs, e.g. {0.5, 0.7, 0.9} per the paper).
class StepLR {
 public:
  StepLR(Optimizer& opt, std::size_t total_epochs,
         std::vector<double> milestones_frac, float factor = 0.1f);

  /// Call once at the start of every epoch (0-based).
  void on_epoch(std::size_t epoch);

 private:
  Optimizer& opt_;
  float base_lr_;
  float factor_;
  std::vector<std::size_t> milestones_;
};

}  // namespace gbo::nn
