#include "nn/activations.hpp"

#include <algorithm>
#include <cmath>

namespace gbo::nn {
namespace {

// Elementwise kernels shared by the caching forward and the stateless
// infer paths (so the two are bitwise identical by construction). The infer
// path hands in its context so outputs recycle through the worker arena
// when one is attached; forward passes nullptr (fresh tensor).
Tensor out_like(const Tensor& x, EvalContext* ctx) {
  return ctx ? ctx->make(x.shape()) : Tensor(x.shape());
}

Tensor tanh_map(const Tensor& x, EvalContext* ctx) {
  Tensor out = out_like(x, ctx);
  const float* p = x.data();
  float* q = out.data();
  for (std::size_t i = 0; i < x.numel(); ++i) q[i] = std::tanh(p[i]);
  return out;
}

Tensor relu_map(const Tensor& x, EvalContext* ctx) {
  Tensor out = out_like(x, ctx);
  const float* p = x.data();
  float* q = out.data();
  for (std::size_t i = 0; i < x.numel(); ++i) q[i] = p[i] > 0.0f ? p[i] : 0.0f;
  return out;
}

Tensor hardtanh_map(const Tensor& x, EvalContext* ctx) {
  Tensor out = out_like(x, ctx);
  const float* p = x.data();
  float* q = out.data();
  for (std::size_t i = 0; i < x.numel(); ++i)
    q[i] = p[i] > 1.0f ? 1.0f : (p[i] < -1.0f ? -1.0f : p[i]);
  return out;
}

Tensor flatten_map(const Tensor& x, EvalContext* ctx) {
  std::size_t rest = 1;
  for (std::size_t i = 1; i < x.ndim(); ++i) rest *= x.dim(i);
  if (!ctx) return x.reshaped({x.dim(0), rest});
  Tensor out = ctx->make({x.dim(0), rest});
  std::copy(x.data(), x.data() + x.numel(), out.data());
  return out;
}

}  // namespace

Tensor Tanh::forward(const Tensor& x) {
  Tensor out = tanh_map(x, nullptr);
  cached_output_ = out;
  return out;
}

Tensor Tanh::infer(const Tensor& x, EvalContext& ctx) const {
  return tanh_map(x, &ctx);
}

Tensor Tanh::backward(const Tensor& grad_out) {
  Tensor::check_same_shape(grad_out, cached_output_, "Tanh::backward");
  Tensor grad(grad_out.shape());
  const float* g = grad_out.data();
  const float* y = cached_output_.data();
  float* o = grad.data();
  for (std::size_t i = 0; i < grad.numel(); ++i) o[i] = g[i] * (1.0f - y[i] * y[i]);
  return grad;
}

Tensor ReLU::forward(const Tensor& x) {
  cached_input_ = x;
  return relu_map(x, nullptr);
}

Tensor ReLU::infer(const Tensor& x, EvalContext& ctx) const {
  return relu_map(x, &ctx);
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor::check_same_shape(grad_out, cached_input_, "ReLU::backward");
  Tensor grad(grad_out.shape());
  const float* g = grad_out.data();
  const float* x = cached_input_.data();
  float* o = grad.data();
  for (std::size_t i = 0; i < grad.numel(); ++i) o[i] = x[i] > 0.0f ? g[i] : 0.0f;
  return grad;
}

Tensor HardTanh::forward(const Tensor& x) {
  cached_input_ = x;
  return hardtanh_map(x, nullptr);
}

Tensor HardTanh::infer(const Tensor& x, EvalContext& ctx) const {
  return hardtanh_map(x, &ctx);
}

Tensor HardTanh::backward(const Tensor& grad_out) {
  Tensor::check_same_shape(grad_out, cached_input_, "HardTanh::backward");
  Tensor grad(grad_out.shape());
  const float* g = grad_out.data();
  const float* x = cached_input_.data();
  float* o = grad.data();
  for (std::size_t i = 0; i < grad.numel(); ++i)
    o[i] = (x[i] > -1.0f && x[i] < 1.0f) ? g[i] : 0.0f;
  return grad;
}

Tensor Flatten::forward(const Tensor& x) {
  cached_shape_ = x.shape();
  return flatten_map(x, nullptr);
}

Tensor Flatten::infer(const Tensor& x, EvalContext& ctx) const {
  return flatten_map(x, &ctx);
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_shape_);
}

}  // namespace gbo::nn
