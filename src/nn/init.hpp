// Weight initialization schemes.
#pragma once

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace gbo::nn {

/// Kaiming/He normal init: N(0, sqrt(2 / fan_in)). Appropriate for layers
/// followed by ReLU-like activations.
void kaiming_normal(Tensor& w, std::size_t fan_in, Rng& rng);

/// Xavier/Glorot uniform init: U(-a, a) with a = sqrt(6 / (fan_in+fan_out)).
/// Appropriate for Tanh networks (used by the paper's BWNN).
void xavier_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out, Rng& rng);

}  // namespace gbo::nn
