// 2D convolution (square kernel) via im2col + GEMM, with a direct
// packed-panel kernel for the dominant 3×3 stride-1 shape.
//
// Weight layout: [out_c, in_c * k * k], i.e. already flattened to the MVM
// matrix a crossbar tile would store. Forward lowers the input to the patch
// matrix, multiplies, and reshapes to NCHW.
//
// Every conv MVM runs the packed-panel kernel (a conv's row count scales
// with the output image, so panels always pay), over weight panels cached
// across requests and stamped with the weight's version counter
// (gemm::PackedWeightCache, DESIGN.md §6) — steady-state serving packs no
// conv weights. 3×3 stride-1 layers skip the im2col materialization
// entirely: the patch gather is fused into the packed GEMM's A-panel
// packer, so each receptive field is read straight from the NCHW input
// into a cache-resident panel while the packed weight panels are reused
// across every output row slab. Because the direct kernel runs the exact
// packed multiply the im2col route runs (same packed weights, same panel
// contents, same micro-kernel), its outputs are bitwise equal to the
// im2col route at any GBO_NUM_THREADS (tests/test_nn_layers.cpp). Both
// dispatch choices depend only on the layer geometry, never on the batch,
// so fused serving batches stay bitwise row-equal to unit batches.
#pragma once

#include "common/rng.hpp"
#include "nn/module.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"

namespace gbo::nn {

class Conv2d : public Module {
 public:
  /// Geometry: square kernel `k`, stride, zero padding. Spatial input size
  /// (in_h/in_w of `geom`) is fixed at construction; this matches the fixed
  /// crossbar mapping of a deployed network.
  Conv2d(std::size_t out_channels, ConvGeom geom, bool bias, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, EvalContext& ctx) const override;
  std::vector<Param*> params() override;
  std::string kind() const override { return "Conv2d"; }

  const ConvGeom& geom() const { return geom_; }
  std::size_t out_channels() const { return out_c_; }
  Param& weight() { return weight_; }

  /// True when this layer's infer routes through the direct 3×3 stride-1
  /// kernel. A function of the layer geometry alone since this PR — the
  /// historical `m = N·oh·ow` argument is ignored, kept so benches/tests
  /// keep compiling — which is what makes the dispatch identical at every
  /// batch size, with and without an arena, and at any thread count.
  bool direct_conv_eligible(std::size_t m) const;

 protected:
  /// Hooks mirroring Linear's, so the quantized subclass reuses this body.
  virtual const Tensor& effective_weight();
  virtual void on_weight_grad(Tensor& /*grad_w*/) {}

  /// Shared const forward body over a raw [out_c, patch_len] weight:
  /// (direct gather | im2col) → packed GEMM → NCHW (+ bias when
  /// `with_bias`). `panels` is the weight's packed panel set (cache hit or
  /// caller-owned); nullptr packs fresh — bitwise identical either way.
  /// With a context carrying a scratch arena, all scratch is bump-allocated
  /// and the output tensor is recycled; the conv infer path then performs
  /// no heap allocation.
  Tensor infer_with_weight(const Tensor& x, const float* w, bool with_bias,
                           EvalContext* ctx, const float* panels) const;

  /// wpanels_ lookup for weight_.value.
  const float* cached_panels() const;

  /// Cached packed panels of weight_.value, stamped with its version
  /// counter (DESIGN.md §6). Subclasses substituting an effective weight
  /// bring their own cache.
  mutable gemm::PackedWeightCache wpanels_;

  std::size_t out_c_ = 0;
  ConvGeom geom_;
  bool has_bias_ = true;
  Param weight_;  // [out_c, in_c*k*k]
  Param bias_;    // [out_c]
  Tensor cached_cols_;        // [N*oh*ow, in_c*k*k]
  // Borrowed from persistent layer storage (see Linear::cached_eff_weight_).
  const Tensor* cached_eff_weight_ = nullptr;
  std::size_t cached_batch_ = 0;
};

}  // namespace gbo::nn
