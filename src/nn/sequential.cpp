#include "nn/sequential.hpp"

namespace gbo::nn {

Tensor Sequential::forward(const Tensor& x) { return forward_suffix(x, 0); }

Tensor Sequential::infer(const Tensor& x, EvalContext& ctx) const {
  if (modules_.empty()) return x;
  // First layer reads the caller's input directly (no copy); every finished
  // intermediate goes back to the context's arena, so a long-lived serving
  // context replays the whole chain without touching the heap.
  Tensor cur = modules_.front()->infer(x, ctx);
  for (std::size_t i = 1; i < modules_.size(); ++i) {
    Tensor next = modules_[i]->infer(cur, ctx);
    ctx.recycle(std::move(cur));
    cur = std::move(next);
  }
  return cur;
}

Tensor Sequential::forward_prefix(const Tensor& x, std::size_t upto) {
  Tensor cur = x;
  for (std::size_t i = 0; i < upto && i < modules_.size(); ++i)
    cur = modules_[i]->forward(cur);
  return cur;
}

Tensor Sequential::forward_suffix(const Tensor& x, std::size_t from) {
  Tensor cur = x;
  for (std::size_t i = from; i < modules_.size(); ++i)
    cur = modules_[i]->forward(cur);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor grad = grad_out;
  for (std::size_t i = modules_.size(); i-- > 0;)
    grad = modules_[i]->backward(grad);
  return grad;
}

std::vector<const Module*> Sequential::children() const {
  std::vector<const Module*> out;
  out.reserve(modules_.size());
  for (const auto& m : modules_) out.push_back(m.get());
  return out;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& m : modules_)
    for (Param* p : m->params()) out.push_back(p);
  return out;
}

std::vector<Param*> Sequential::buffers() {
  std::vector<Param*> out;
  for (auto& m : modules_)
    for (Param* b : m->buffers()) out.push_back(b);
  return out;
}

void Sequential::set_training(bool training) {
  training_ = training;
  for (auto& m : modules_) m->set_training(training);
}

StateDict Sequential::state_dict(const std::string& prefix) {
  StateDict state;
  for (std::size_t i = 0; i < modules_.size(); ++i)
    modules_[i]->collect_state(prefix + std::to_string(i) + ".", state);
  return state;
}

void Sequential::load_state_dict(const StateDict& state, const std::string& prefix) {
  for (std::size_t i = 0; i < modules_.size(); ++i)
    modules_[i]->load_state(prefix + std::to_string(i) + ".", state);
}

}  // namespace gbo::nn
