#include "nn/sequential.hpp"

namespace gbo::nn {

Tensor Sequential::forward(const Tensor& x) { return forward_suffix(x, 0); }

Tensor Sequential::infer(const Tensor& x, EvalContext& ctx) const {
  Tensor cur = x;
  for (const auto& m : modules_) cur = m->infer(cur, ctx);
  return cur;
}

Tensor Sequential::forward_prefix(const Tensor& x, std::size_t upto) {
  Tensor cur = x;
  for (std::size_t i = 0; i < upto && i < modules_.size(); ++i)
    cur = modules_[i]->forward(cur);
  return cur;
}

Tensor Sequential::forward_suffix(const Tensor& x, std::size_t from) {
  Tensor cur = x;
  for (std::size_t i = from; i < modules_.size(); ++i)
    cur = modules_[i]->forward(cur);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor grad = grad_out;
  for (std::size_t i = modules_.size(); i-- > 0;)
    grad = modules_[i]->backward(grad);
  return grad;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& m : modules_)
    for (Param* p : m->params()) out.push_back(p);
  return out;
}

std::vector<Param*> Sequential::buffers() {
  std::vector<Param*> out;
  for (auto& m : modules_)
    for (Param* b : m->buffers()) out.push_back(b);
  return out;
}

void Sequential::set_training(bool training) {
  training_ = training;
  for (auto& m : modules_) m->set_training(training);
}

StateDict Sequential::state_dict(const std::string& prefix) {
  StateDict state;
  for (std::size_t i = 0; i < modules_.size(); ++i)
    modules_[i]->collect_state(prefix + std::to_string(i) + ".", state);
  return state;
}

void Sequential::load_state_dict(const StateDict& state, const std::string& prefix) {
  for (std::size_t i = 0; i < modules_.size(); ++i)
    modules_[i]->load_state(prefix + std::to_string(i) + ".", state);
}

}  // namespace gbo::nn
