#include "nn/init.hpp"

#include "tensor/ops.hpp"

#include <cmath>

namespace gbo::nn {

void kaiming_normal(Tensor& w, std::size_t fan_in, Rng& rng) {
  const float std = std::sqrt(2.0f / static_cast<float>(fan_in));
  ops::fill_normal(w, rng, 0.0f, std);
}

void xavier_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  ops::fill_uniform(w, rng, -a, a);
}

}  // namespace gbo::nn
