#include "nn/loss.hpp"

#include "tensor/ops.hpp"

#include <cmath>
#include <stdexcept>

namespace gbo::nn {
namespace {

void check_inputs(const Tensor& logits, const std::vector<std::size_t>& labels) {
  if (logits.ndim() != 2)
    throw std::invalid_argument("CrossEntropy: logits must be 2D");
  if (labels.size() != logits.dim(0))
    throw std::invalid_argument("CrossEntropy: batch/label count mismatch");
  for (std::size_t lbl : labels)
    if (lbl >= logits.dim(1))
      throw std::invalid_argument("CrossEntropy: label out of range");
}

/// Computes per-row softmax into `probs` and returns the mean NLL.
float softmax_nll(const Tensor& logits, const std::vector<std::size_t>& labels,
                  Tensor* probs) {
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float mx = row[0];
    for (std::size_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j) denom += std::exp(static_cast<double>(row[j] - mx));
    const double log_denom = std::log(denom);
    total += -(static_cast<double>(row[labels[i]] - mx) - log_denom);
    if (probs) {
      float* prow = probs->data() + i * c;
      for (std::size_t j = 0; j < c; ++j)
        prow[j] = static_cast<float>(std::exp(static_cast<double>(row[j] - mx)) / denom);
    }
  }
  return static_cast<float>(total / static_cast<double>(n));
}

}  // namespace

float CrossEntropy::forward_backward(const Tensor& logits,
                                     const std::vector<std::size_t>& labels,
                                     Tensor& grad) {
  check_inputs(logits, labels);
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  grad = Tensor({n, c});
  const float loss = softmax_nll(logits, labels, &grad);
  // d(mean NLL)/dlogit = (softmax - onehot) / N
  const float inv_n = 1.0f / static_cast<float>(n);
  float* g = grad.data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < c; ++j) g[i * c + j] *= inv_n;
    g[i * c + labels[i]] -= inv_n;
  }
  return loss;
}

float CrossEntropy::forward(const Tensor& logits,
                            const std::vector<std::size_t>& labels) {
  check_inputs(logits, labels);
  return softmax_nll(logits, labels, nullptr);
}

float accuracy(const Tensor& logits, const std::vector<std::size_t>& labels) {
  check_inputs(logits, labels);
  const auto preds = ops::argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == labels[i]) ++correct;
  return static_cast<float>(correct) / static_cast<float>(preds.size());
}

}  // namespace gbo::nn
