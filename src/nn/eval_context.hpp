// Per-trial scratch state for the stateless inference path.
//
// Module::infer(x, ctx) is const on the module: all shared state (weights,
// BN running stats, hook configuration) is read-only, and everything a
// forward pass mutates — above all the randomness consumed by crossbar
// noise hooks and pulse-level engines — lives in the EvalContext instead.
// Any number of contexts can therefore run forward passes over the same
// network concurrently (one context per noise-draw trial on the shared
// thread pool, see core/pipeline.hpp, or one per serving worker, see
// serve/server.hpp).
//
// RNG-fork contract (DESIGN.md §3): a trial's context is seeded as
// fork(seed, trial_id) from a controller-owned root stream, so trial t
// draws an identical noise stream whether trials run sequentially or in
// parallel, at any thread count. Within one forward pass the layers consume
// ctx.rng in network order, which is fixed, so a (seed, trial_id) pair
// fully determines every sample of the trial.
//
// Scratch arena (DESIGN.md §4): a long-lived context may attach a
// worker-owned ScratchArena; the layers then route their temporaries
// (im2col patch matrices, binarized weights, activation outputs) through
// it via make()/recycle() and ArenaFrame, making steady-state inference
// allocation-free. The arena never changes arithmetic — infer results are
// bitwise identical with and without one.
#pragma once

#include "common/rng.hpp"
#include "tensor/arena.hpp"

#include <vector>

namespace gbo::nn {

struct EvalContext {
  /// Deterministic per-context stream; consumed in network order by every
  /// stochastic component of the inference path (noise hooks, pulse-level
  /// crossbar reads).
  Rng rng;

  /// Per-sample RNG streams (DESIGN.md §6): when non-empty, the batch rows
  /// of this inference belong to row_rngs.size() independent requests and
  /// every stochastic site draws row r's noise from row_rngs[r] (each
  /// stream consumed in network order across sites), never from `rng`. The
  /// serving runtime populates them as fork(seed, request_id) per row,
  /// which makes a fused micro-batch bitwise row-equal to per-request
  /// execution: for a unit batch the single row stream is consumed exactly
  /// as `rng` would be, so the classic per-request contract is a special
  /// case. Empty (the default) preserves single-stream behaviour exactly.
  std::vector<Rng> row_rngs;

  /// True when stochastic sites must use the per-sample streams.
  bool per_sample() const { return !row_rngs.empty(); }

  /// Optional worker-owned scratch arena (never shared between threads);
  /// nullptr preserves the plain allocating behaviour exactly.
  ScratchArena* arena = nullptr;

  EvalContext() = default;
  explicit EvalContext(Rng r) : rng(r) {}
  EvalContext(Rng r, ScratchArena* a) : rng(r), arena(a) {}

  /// An output/temporary tensor of `shape`, recycled from the arena when
  /// one is attached. Contents are unspecified — callers fully overwrite.
  Tensor make(const std::vector<std::size_t>& shape) {
    return arena ? arena->take(shape) : Tensor(shape);
  }
  Tensor make(std::initializer_list<std::size_t> shape) {
    return arena ? arena->take(shape) : Tensor(shape);
  }

  /// Returns a finished intermediate to the arena (no-op without one).
  void recycle(Tensor&& t) {
    if (arena) arena->put(std::move(t));
  }
};

}  // namespace gbo::nn
