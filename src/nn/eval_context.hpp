// Per-trial scratch state for the stateless inference path.
//
// Module::infer(x, ctx) is const on the module: all shared state (weights,
// BN running stats, hook configuration) is read-only, and everything a
// forward pass mutates — above all the randomness consumed by crossbar
// noise hooks and pulse-level engines — lives in the EvalContext instead.
// Any number of contexts can therefore run forward passes over the same
// network concurrently (one context per noise-draw trial on the shared
// thread pool, see core/pipeline.hpp).
//
// RNG-fork contract (DESIGN.md §3): a trial's context is seeded as
// fork(seed, trial_id) from a controller-owned root stream, so trial t
// draws an identical noise stream whether trials run sequentially or in
// parallel, at any thread count. Within one forward pass the layers consume
// ctx.rng in network order, which is fixed, so a (seed, trial_id) pair
// fully determines every sample of the trial.
#pragma once

#include "common/rng.hpp"

namespace gbo::nn {

struct EvalContext {
  /// Deterministic per-context stream; consumed in network order by every
  /// stochastic component of the inference path (noise hooks, pulse-level
  /// crossbar reads).
  Rng rng;

  EvalContext() = default;
  explicit EvalContext(Rng r) : rng(r) {}
};

}  // namespace gbo::nn
