// Fully connected layer: y = x W^T + b, x: [N, in], W: [out, in].
//
// Kernel dispatch (DESIGN.md §6) is a function of the weight shape alone:
// weights above the panel floor run the packed-panel kernel over panels
// cached across calls (gemm::PackedWeightCache, stamped with the weight's
// version counter — steady-state serving packs nothing); smaller weights
// run the row-stable dot kernel. Neither choice depends on the batch, so
// every batch row's bit pattern is independent of how requests were fused.
#pragma once

#include "common/rng.hpp"
#include "nn/module.hpp"
#include "tensor/gemm.hpp"

namespace gbo::nn {

class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, bool bias,
         Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, EvalContext& ctx) const override;
  std::vector<Param*> params() override;
  std::string kind() const override { return "Linear"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  Param& weight() { return weight_; }
  Param* bias() { return has_bias_ ? &bias_ : nullptr; }

 protected:
  /// Hook for subclasses (quantized layer) to substitute the effective
  /// weight used in forward/backward. Default: the raw weight.
  virtual const Tensor& effective_weight();
  /// Hook to transform the raw weight gradient (e.g. STE clipping).
  virtual void on_weight_grad(Tensor& /*grad_w*/) {}

  /// Shared const forward body over a raw [out, in] weight: y = x wᵀ
  /// (+ bias when `with_bias`). Routes the output through ctx->make when a
  /// context is given. `panels`, when non-null, is the weight's packed
  /// panel set (a cache hit or a caller-owned fresh pack); when null and
  /// the shape takes the panel route, the body packs fresh — bitwise
  /// identical either way, since packing is deterministic data movement.
  Tensor infer_with_weight(const Tensor& x, const float* w, bool with_bias,
                           EvalContext* ctx, const float* panels) const;

  /// wpanels_ lookup for weight_.value (nullptr on the non-panel route).
  const float* cached_panels() const;

  /// Cached panels of weight_.value for the panel-route shapes, reused
  /// across requests and stamped with weight_.value.version() (DESIGN.md
  /// §6). Only ever fed from weight_.value — subclasses that substitute an
  /// effective weight (the quant layers) bring their own cache.
  mutable gemm::PackedWeightCache wpanels_;

  std::size_t in_ = 0, out_ = 0;
  bool has_bias_ = true;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor cached_input_;  // [N, in]
  // Weight used in the last forward, borrowed from persistent layer storage
  // (weight_.value, or the subclass's binarized copy) — valid until the next
  // forward, which is exactly backward's lifetime requirement. A pointer so
  // pure evaluation never copies the matrix.
  const Tensor* cached_eff_weight_ = nullptr;
};

}  // namespace gbo::nn
