// Fully connected layer: y = x W^T + b, x: [N, in], W: [out, in].
#pragma once

#include "common/rng.hpp"
#include "nn/module.hpp"

namespace gbo::nn {

class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, bool bias,
         Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, EvalContext& ctx) const override;
  std::vector<Param*> params() override;
  std::string kind() const override { return "Linear"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  Param& weight() { return weight_; }
  Param* bias() { return has_bias_ ? &bias_ : nullptr; }

 protected:
  /// Hook for subclasses (quantized layer) to substitute the effective
  /// weight used in forward/backward. Default: the raw weight.
  virtual const Tensor& effective_weight();
  /// Hook to transform the raw weight gradient (e.g. STE clipping).
  virtual void on_weight_grad(Tensor& /*grad_w*/) {}

  /// Shared const forward body: y = x wᵀ (+ bias when `with_bias`).
  Tensor infer_with_weight(const Tensor& x, const Tensor& w,
                           bool with_bias) const;

  /// Core of the above over a raw [out, in] weight (which may live in the
  /// context's scratch arena, e.g. an arena-binarized copy); routes the
  /// output through ctx->make when a context is given. Bitwise identical to
  /// the Tensor overload.
  Tensor infer_with_weight(const Tensor& x, const float* w, bool with_bias,
                           EvalContext* ctx) const;

  std::size_t in_ = 0, out_ = 0;
  bool has_bias_ = true;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor cached_input_;  // [N, in]
  // Weight used in the last forward, borrowed from persistent layer storage
  // (weight_.value, or the subclass's binarized copy) — valid until the next
  // forward, which is exactly backward's lifetime requirement. A pointer so
  // pure evaluation never copies the matrix.
  const Tensor* cached_eff_weight_ = nullptr;
};

}  // namespace gbo::nn
