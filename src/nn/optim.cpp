#include "nn/optim.hpp"

#include <cmath>

namespace gbo::nn {

void Optimizer::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

SGD::SGD(std::vector<Param*> params, float lr, float momentum, float weight_decay)
    : Optimizer(std::move(params)), momentum_(momentum), weight_decay_(weight_decay) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    if (!p->requires_grad) continue;
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* vel = velocity_[i].data();
    for (std::size_t j = 0; j < p->value.numel(); ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      vel[j] = momentum_ * vel[j] + grad;
      w[j] -= lr_ * vel[j];
    }
  }
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2, float eps)
    : Optimizer(std::move(params)), beta1_(beta1), beta2_(beta2), eps_(eps) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    if (!p->requires_grad) continue;
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::size_t j = 0; j < p->value.numel(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

StepLR::StepLR(Optimizer& opt, std::size_t total_epochs,
               std::vector<double> milestones_frac, float factor)
    : opt_(opt), base_lr_(opt.lr()), factor_(factor) {
  for (double f : milestones_frac)
    milestones_.push_back(static_cast<std::size_t>(f * static_cast<double>(total_epochs)));
}

void StepLR::on_epoch(std::size_t epoch) {
  float lr = base_lr_;
  for (std::size_t ms : milestones_)
    if (epoch >= ms) lr *= factor_;
  opt_.set_lr(lr);
}

}  // namespace gbo::nn
