// Softmax cross-entropy loss (fused for numerical stability).
#pragma once

#include "tensor/tensor.hpp"

#include <vector>

namespace gbo::nn {

/// Computes mean softmax cross-entropy over the batch and the gradient
/// w.r.t. the logits in one pass.
///
/// logits: [N, classes]; labels: N class indices.
struct CrossEntropy {
  /// Returns the mean loss; fills `grad` (same shape as logits) with
  /// d(mean loss)/d(logits).
  static float forward_backward(const Tensor& logits,
                                const std::vector<std::size_t>& labels,
                                Tensor& grad);

  /// Loss only (no gradient); used for evaluation.
  static float forward(const Tensor& logits,
                       const std::vector<std::size_t>& labels);
};

/// Fraction of rows whose argmax equals the label.
float accuracy(const Tensor& logits, const std::vector<std::size_t>& labels);

}  // namespace gbo::nn
