#include "nn/module.hpp"

#include <stdexcept>

namespace gbo::nn {

Tensor Module::infer(const Tensor& /*x*/, EvalContext& /*ctx*/) const {
  throw std::logic_error(kind() + ": stateless infer() not implemented");
}

void Module::collect_state(const std::string& prefix, StateDict& out) {
  for (Param* p : params())
    out[prefix + p->name] = NamedBlob{p->value.shape(), p->value.vec()};
  for (Param* b : buffers())
    out[prefix + b->name] = NamedBlob{b->value.shape(), b->value.vec()};
}

void Module::load_state(const std::string& prefix, const StateDict& in) {
  auto restore = [&](Param* p) {
    const std::string key = prefix + p->name;
    auto it = in.find(key);
    if (it == in.end())
      throw std::runtime_error("load_state: missing key '" + key + "'");
    if (it->second.shape != p->value.shape())
      throw std::runtime_error("load_state: shape mismatch for '" + key + "'");
    p->value.vec() = it->second.data;
    p->grad = Tensor(p->value.shape());
  };
  for (Param* p : params()) restore(p);
  for (Param* b : buffers()) restore(b);
}

}  // namespace gbo::nn
