#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace gbo::nn {

BatchNormBase::BatchNormBase(std::size_t num_features, float eps, float momentum)
    : features_(num_features), eps_(eps), momentum_(momentum) {
  gamma_ = Param("gamma", Tensor::ones({features_}));
  beta_ = Param("beta", Tensor({features_}));
  running_mean_ = Param("running_mean", Tensor({features_}));
  running_var_ = Param("running_var", Tensor::ones({features_}));
  running_mean_.requires_grad = false;
  running_var_.requires_grad = false;
}

std::vector<Param*> BatchNormBase::params() { return {&gamma_, &beta_}; }
std::vector<Param*> BatchNormBase::buffers() {
  return {&running_mean_, &running_var_};
}

Tensor BatchNormBase::forward_ncs(const Tensor& x, std::size_t n, std::size_t s) {
  const std::size_t c = features_;
  const std::size_t count = n * s;  // elements per channel
  if (count == 0) throw std::invalid_argument("BatchNorm: empty batch");

  Tensor out(x.shape());
  cached_xhat_ = Tensor(x.shape());
  cached_invstd_.assign(c, 0.0f);

  const float* in = x.data();
  float* xo = out.data();
  float* xh = cached_xhat_.data();
  const float* g = gamma_.value.data();
  const float* b = beta_.value.data();
  float* rm = running_mean_.value.data();
  float* rv = running_var_.value.data();

  for (std::size_t ch = 0; ch < c; ++ch) {
    float mean, var;
    if (training_) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const float* row = in + (i * c + ch) * s;
        for (std::size_t j = 0; j < s; ++j) acc += row[j];
      }
      mean = static_cast<float>(acc / count);
      double vacc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const float* row = in + (i * c + ch) * s;
        for (std::size_t j = 0; j < s; ++j) {
          const double d = row[j] - mean;
          vacc += d * d;
        }
      }
      var = static_cast<float>(vacc / count);  // biased, as in torch training
      // Running stats use the unbiased variance, matching torch semantics.
      const float unbiased =
          count > 1 ? static_cast<float>(vacc / (count - 1)) : var;
      rm[ch] = (1.0f - momentum_) * rm[ch] + momentum_ * mean;
      rv[ch] = (1.0f - momentum_) * rv[ch] + momentum_ * unbiased;
    } else {
      mean = rm[ch];
      var = rv[ch];
    }
    const float invstd = 1.0f / std::sqrt(var + eps_);
    cached_invstd_[ch] = invstd;
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = in + (i * c + ch) * s;
      float* orow = xo + (i * c + ch) * s;
      float* hrow = xh + (i * c + ch) * s;
      for (std::size_t j = 0; j < s; ++j) {
        const float xhat = (row[j] - mean) * invstd;
        hrow[j] = xhat;
        orow[j] = g[ch] * xhat + b[ch];
      }
    }
  }
  return out;
}

Tensor BatchNormBase::infer_ncs(const Tensor& x, std::size_t n,
                                std::size_t s, EvalContext& ctx) const {
  const std::size_t c = features_;
  if (n * s == 0) throw std::invalid_argument("BatchNorm: empty batch");

  Tensor out = ctx.make(x.shape());
  const float* in = x.data();
  float* xo = out.data();
  const float* g = gamma_.value.data();
  const float* b = beta_.value.data();
  const float* rm = running_mean_.value.data();
  const float* rv = running_var_.value.data();

  for (std::size_t ch = 0; ch < c; ++ch) {
    const float mean = rm[ch];
    const float invstd = 1.0f / std::sqrt(rv[ch] + eps_);
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = in + (i * c + ch) * s;
      float* orow = xo + (i * c + ch) * s;
      for (std::size_t j = 0; j < s; ++j) {
        const float xhat = (row[j] - mean) * invstd;
        orow[j] = g[ch] * xhat + b[ch];
      }
    }
  }
  return out;
}

Tensor BatchNormBase::backward_ncs(const Tensor& grad_out, std::size_t n,
                                   std::size_t s) {
  const std::size_t c = features_;
  const std::size_t count = n * s;
  Tensor grad_in(grad_out.shape());

  const float* go = grad_out.data();
  const float* xh = cached_xhat_.data();
  float* gi = grad_in.data();
  const float* g = gamma_.value.data();
  float* gg = gamma_.grad.data();
  float* gb = beta_.grad.data();

  for (std::size_t ch = 0; ch < c; ++ch) {
    // Accumulate sum(dy) and sum(dy * xhat) for the channel.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float* grow = go + (i * c + ch) * s;
      const float* hrow = xh + (i * c + ch) * s;
      for (std::size_t j = 0; j < s; ++j) {
        sum_dy += grow[j];
        sum_dy_xhat += static_cast<double>(grow[j]) * hrow[j];
      }
    }
    gb[ch] += static_cast<float>(sum_dy);
    gg[ch] += static_cast<float>(sum_dy_xhat);

    if (training_) {
      // dx = gamma*invstd/count * (count*dy - sum(dy) - xhat*sum(dy*xhat))
      const float k = g[ch] * cached_invstd_[ch] / static_cast<float>(count);
      const float sdy = static_cast<float>(sum_dy);
      const float sdyx = static_cast<float>(sum_dy_xhat);
      for (std::size_t i = 0; i < n; ++i) {
        const float* grow = go + (i * c + ch) * s;
        const float* hrow = xh + (i * c + ch) * s;
        float* irow = gi + (i * c + ch) * s;
        for (std::size_t j = 0; j < s; ++j)
          irow[j] = k * (static_cast<float>(count) * grow[j] - sdy -
                         hrow[j] * sdyx);
      }
    } else {
      // Eval-mode BN is an affine map with fixed statistics.
      const float k = g[ch] * cached_invstd_[ch];
      for (std::size_t i = 0; i < n; ++i) {
        const float* grow = go + (i * c + ch) * s;
        float* irow = gi + (i * c + ch) * s;
        for (std::size_t j = 0; j < s; ++j) irow[j] = k * grow[j];
      }
    }
  }
  return grad_in;
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  if (x.ndim() != 4 || x.dim(1) != features_)
    throw std::invalid_argument("BatchNorm2d: bad input " + x.shape_str());
  cached_shape_ = x.shape();
  return forward_ncs(x, x.dim(0), x.dim(2) * x.dim(3));
}

Tensor BatchNorm2d::infer(const Tensor& x, EvalContext& ctx) const {
  if (x.ndim() != 4 || x.dim(1) != features_)
    throw std::invalid_argument("BatchNorm2d: bad input " + x.shape_str());
  return infer_ncs(x, x.dim(0), x.dim(2) * x.dim(3), ctx);
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  if (grad_out.shape() != cached_shape_)
    throw std::invalid_argument("BatchNorm2d::backward: shape mismatch");
  return backward_ncs(grad_out, grad_out.dim(0), grad_out.dim(2) * grad_out.dim(3));
}

Tensor BatchNorm1d::forward(const Tensor& x) {
  if (x.ndim() != 2 || x.dim(1) != features_)
    throw std::invalid_argument("BatchNorm1d: bad input " + x.shape_str());
  return forward_ncs(x, x.dim(0), 1);
}

Tensor BatchNorm1d::infer(const Tensor& x, EvalContext& ctx) const {
  if (x.ndim() != 2 || x.dim(1) != features_)
    throw std::invalid_argument("BatchNorm1d: bad input " + x.shape_str());
  return infer_ncs(x, x.dim(0), 1, ctx);
}

Tensor BatchNorm1d::backward(const Tensor& grad_out) {
  return backward_ncs(grad_out, grad_out.dim(0), 1);
}

}  // namespace gbo::nn
