// Batch normalization (Ioffe & Szegedy, 2015).
//
// BatchNorm2d normalizes over (N, H, W) per channel; BatchNorm1d over N per
// feature. Running statistics are kept as buffers for eval mode. The paper's
// PLA rests on BN + Tanh pushing deep-layer activations toward ±1, so BN
// fidelity matters for reproducing Table I.
//
// Both variants share one implementation that views the input as [N, C, S]
// with S the per-channel spatial size (S = H*W for 2d, S = 1 for 1d).
#pragma once

#include "nn/module.hpp"

namespace gbo::nn {

class BatchNormBase : public Module {
 public:
  BatchNormBase(std::size_t num_features, float eps, float momentum);

  std::vector<Param*> params() override;
  std::vector<Param*> buffers() override;

  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_.value; }
  const Tensor& running_var() const { return running_var_.value; }

 protected:
  /// x viewed as [N, C, S]; returns normalized output of the same layout.
  Tensor forward_ncs(const Tensor& x, std::size_t n, std::size_t s);
  /// grad viewed as [N, C, S]; returns input gradient of the same layout.
  Tensor backward_ncs(const Tensor& grad_out, std::size_t n, std::size_t s);
  /// Stateless eval-mode body: the running-stats affine map, with exactly
  /// the per-element arithmetic of forward_ncs in eval mode (bitwise equal)
  /// but no cache writes.
  Tensor infer_ncs(const Tensor& x, std::size_t n, std::size_t s,
                   EvalContext& ctx) const;

  std::size_t features_;
  float eps_;
  float momentum_;
  Param gamma_, beta_;
  Param running_mean_, running_var_;

  // backward caches
  Tensor cached_xhat_;
  std::vector<float> cached_invstd_;
};

class BatchNorm2d : public BatchNormBase {
 public:
  explicit BatchNorm2d(std::size_t channels, float eps = 1e-5f,
                       float momentum = 0.1f)
      : BatchNormBase(channels, eps, momentum) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, EvalContext& ctx) const override;
  std::string kind() const override { return "BatchNorm2d"; }

 private:
  std::vector<std::size_t> cached_shape_;
};

class BatchNorm1d : public BatchNormBase {
 public:
  explicit BatchNorm1d(std::size_t features, float eps = 1e-5f,
                       float momentum = 0.1f)
      : BatchNormBase(features, eps, momentum) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, EvalContext& ctx) const override;
  std::string kind() const override { return "BatchNorm1d"; }
};

}  // namespace gbo::nn
