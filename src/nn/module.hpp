// Layer/module abstraction for the training framework.
//
// The framework uses explicit per-layer forward/backward (a "tape of
// layers") rather than a general autograd graph: every network in the paper
// is a feed-forward chain, and explicit backward passes are easy to verify
// with finite differences (see tests/test_grad_check.cpp).
//
// Conventions:
//  * forward(x) caches whatever the layer needs for backward;
//  * backward(grad_out) consumes the cache of the *most recent* forward and
//    accumulates parameter gradients into Param::grad;
//  * parameter gradients are accumulated (+=) so gradient accumulation over
//    micro-batches works; Optimizer::zero_grad() clears them.
//
// Alongside the training tape there is a stateless inference path:
// infer(x, ctx) is const, caches nothing, always uses eval-mode semantics
// (BatchNorm running stats, no backward tape), and draws any randomness
// from the caller's EvalContext. Concurrent infer calls over the same
// module are safe as long as each uses its own context; this is what the
// trial-parallel noisy evaluation in core/pipeline builds on.
#pragma once

#include "common/serialize.hpp"
#include "nn/eval_context.hpp"
#include "tensor/tensor.hpp"

#include <memory>
#include <string>
#include <vector>

namespace gbo::nn {

/// A learnable tensor plus its gradient accumulator.
struct Param {
  std::string name;   // local name, e.g. "weight"; qualified by the owner
  Tensor value;
  Tensor grad;
  bool requires_grad = true;

  Param() = default;
  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0f); }
};

class Module {
 public:
  virtual ~Module() = default;

  /// Computes the layer output and caches state for backward.
  virtual Tensor forward(const Tensor& x) = 0;

  /// Propagates the loss gradient; accumulates parameter gradients.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Stateless eval-mode forward: mutates neither the module nor any shared
  /// state, so concurrent calls with distinct contexts are safe. Randomness
  /// (crossbar noise, pulse-level reads) comes from ctx.rng. Default throws;
  /// every concrete layer of this library overrides it.
  virtual Tensor infer(const Tensor& x, EvalContext& ctx) const;

  /// Direct child modules, for read-only tree walks (the serving backend's
  /// stochastic-hook scan). Containers override; leaf layers return {}.
  virtual std::vector<const Module*> children() const { return {}; }

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Persistent non-learnable state (e.g. BatchNorm running stats).
  virtual std::vector<Param*> buffers() { return {}; }

  /// Train/eval mode switch (BatchNorm, noise injection behave differently).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Short type tag, e.g. "Conv2d".
  virtual std::string kind() const = 0;

  // -- checkpointing ---------------------------------------------------------

  /// Serializes params + buffers under `prefix` ("seq.3." etc.).
  void collect_state(const std::string& prefix, StateDict& out);

  /// Restores params + buffers; throws std::runtime_error on missing keys or
  /// shape mismatches (a wrong checkpoint must fail loudly).
  void load_state(const std::string& prefix, const StateDict& in);

 protected:
  bool training_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace gbo::nn
