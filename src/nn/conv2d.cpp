#include "nn/conv2d.hpp"

#include "nn/init.hpp"
#include "tensor/ops.hpp"

namespace gbo::nn {
namespace {

/// [N*oh*ow, out_c] (GEMM result) -> [N, out_c, oh, ow]
Tensor rows_to_nchw(const Tensor& rows, std::size_t batch, std::size_t out_c,
                    std::size_t oh, std::size_t ow) {
  Tensor out({batch, out_c, oh, ow});
  const float* src = rows.data();
  float* dst = out.data();
  for (std::size_t n = 0; n < batch; ++n)
    for (std::size_t y = 0; y < oh; ++y)
      for (std::size_t x = 0; x < ow; ++x) {
        const float* row = src + ((n * oh + y) * ow + x) * out_c;
        for (std::size_t c = 0; c < out_c; ++c)
          dst[((n * out_c + c) * oh + y) * ow + x] = row[c];
      }
  return out;
}

/// [N, out_c, oh, ow] -> [N*oh*ow, out_c]
Tensor nchw_to_rows(const Tensor& x) {
  const std::size_t batch = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor rows({batch * h * w, c});
  const float* src = x.data();
  float* dst = rows.data();
  for (std::size_t n = 0; n < batch; ++n)
    for (std::size_t ch = 0; ch < c; ++ch)
      for (std::size_t y = 0; y < h; ++y)
        for (std::size_t xx = 0; xx < w; ++xx)
          dst[((n * h + y) * w + xx) * c + ch] =
              src[((n * c + ch) * h + y) * w + xx];
  return rows;
}

}  // namespace

Conv2d::Conv2d(std::size_t out_channels, ConvGeom geom, bool bias, Rng& rng)
    : out_c_(out_channels), geom_(geom), has_bias_(bias) {
  Tensor w({out_c_, geom_.patch_len()});
  xavier_uniform(w, geom_.patch_len(), out_c_, rng);
  weight_ = Param("weight", std::move(w));
  if (has_bias_) bias_ = Param("bias", Tensor({out_c_}));
}

const Tensor& Conv2d::effective_weight() { return weight_.value; }

Tensor Conv2d::infer_with_weight(const Tensor& x, const Tensor& w,
                                 bool with_bias) const {
  Tensor cols = im2col(x, geom_);
  Tensor rows = ops::matmul_bt(cols, w);  // [N*oh*ow, out_c]
  if (with_bias) {
    float* p = rows.data();
    const float* b = bias_.value.data();
    for (std::size_t r = 0; r < rows.dim(0); ++r)
      for (std::size_t c = 0; c < out_c_; ++c) p[r * out_c_ + c] += b[c];
  }
  return rows_to_nchw(rows, x.dim(0), out_c_, geom_.out_h(), geom_.out_w());
}

Tensor Conv2d::forward(const Tensor& x) {
  cached_batch_ = x.dim(0);
  cached_cols_ = im2col(x, geom_);
  cached_eff_weight_ = &effective_weight();
  Tensor rows = ops::matmul_bt(cached_cols_, *cached_eff_weight_);
  if (has_bias_) {
    float* p = rows.data();
    const float* b = bias_.value.data();
    for (std::size_t r = 0; r < rows.dim(0); ++r)
      for (std::size_t c = 0; c < out_c_; ++c) p[r * out_c_ + c] += b[c];
  }
  return rows_to_nchw(rows, cached_batch_, out_c_, geom_.out_h(), geom_.out_w());
}

Tensor Conv2d::infer(const Tensor& x, EvalContext& /*ctx*/) const {
  return infer_with_weight(x, weight_.value, has_bias_);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (grad_out.ndim() != 4 || grad_out.dim(1) != out_c_)
    throw std::invalid_argument("Conv2d::backward: bad grad shape " +
                                grad_out.shape_str());
  Tensor grad_rows = nchw_to_rows(grad_out);  // [N*oh*ow, out_c]

  // dW = grad_rows^T @ cols -> [out_c, patch_len]
  Tensor grad_w = ops::matmul_at(grad_rows, cached_cols_);
  on_weight_grad(grad_w);
  if (weight_.requires_grad) ops::add_inplace(weight_.grad, grad_w);

  if (has_bias_ && bias_.requires_grad) {
    float* gb = bias_.grad.data();
    const float* g = grad_rows.data();
    for (std::size_t r = 0; r < grad_rows.dim(0); ++r)
      for (std::size_t c = 0; c < out_c_; ++c) gb[c] += g[r * out_c_ + c];
  }

  // dCols = grad_rows @ W -> [N*oh*ow, patch_len]; then scatter to input.
  Tensor grad_cols = ops::matmul(grad_rows, *cached_eff_weight_);
  return col2im(grad_cols, cached_batch_, geom_);
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

}  // namespace gbo::nn
