#include "nn/conv2d.hpp"

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace gbo::nn {
namespace {

/// [N*oh*ow, out_c] (GEMM result) -> [N, out_c, oh, ow]
Tensor rows_to_nchw(const Tensor& rows, std::size_t batch, std::size_t out_c,
                    std::size_t oh, std::size_t ow) {
  Tensor out({batch, out_c, oh, ow});
  rows_to_nchw_into(rows.data(), batch, out_c, oh, ow, out.data());
  return out;
}

/// [N, out_c, oh, ow] -> [N*oh*ow, out_c]
Tensor nchw_to_rows(const Tensor& x) {
  const std::size_t batch = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor rows({batch * h * w, c});
  const float* src = x.data();
  float* dst = rows.data();
  for (std::size_t n = 0; n < batch; ++n)
    for (std::size_t ch = 0; ch < c; ++ch)
      for (std::size_t y = 0; y < h; ++y)
        for (std::size_t xx = 0; xx < w; ++xx)
          dst[((n * h + y) * w + xx) * c + ch] =
              src[((n * c + ch) * h + y) * w + xx];
  return rows;
}

}  // namespace

Conv2d::Conv2d(std::size_t out_channels, ConvGeom geom, bool bias, Rng& rng)
    : out_c_(out_channels), geom_(geom), has_bias_(bias) {
  Tensor w({out_c_, geom_.patch_len()});
  xavier_uniform(w, geom_.patch_len(), out_c_, rng);
  weight_ = Param("weight", std::move(w));
  if (has_bias_) bias_ = Param("bias", Tensor({out_c_}));
}

const Tensor& Conv2d::effective_weight() { return weight_.value; }

Tensor Conv2d::infer_with_weight(const Tensor& x, const Tensor& w,
                                 bool with_bias) const {
  return infer_with_weight(x, w.data(), with_bias, nullptr);
}

Tensor Conv2d::infer_with_weight(const Tensor& x, const float* w,
                                 bool with_bias, EvalContext* ctx) const {
  if (x.ndim() != 4)
    throw std::invalid_argument("Conv2d: expected NCHW input, got " +
                                x.shape_str());
  const std::size_t batch = x.dim(0);
  const std::size_t oh = geom_.out_h(), ow = geom_.out_w();
  const std::size_t m = batch * oh * ow;
  const std::size_t k = geom_.patch_len();
  ScratchArena* arena = ctx ? ctx->arena : nullptr;
  ArenaFrame frame(arena);
  Tensor cols_own, rows_own;  // fallback owners without an arena
  float* cols;
  float* rows;
  float* bt = nullptr;  // gemm_nt's transposed-weight panel (large-m path)
  if (arena) {
    cols = arena->alloc_floats(m * k);
    rows = arena->alloc_floats(m * out_c_);
    if (gemm::gemm_nt_uses_bt(m, out_c_, k))
      bt = arena->alloc_floats(k * out_c_);
  } else {
    cols_own = Tensor({m, k});
    rows_own = Tensor({m, out_c_});
    cols = cols_own.data();
    rows = rows_own.data();
  }
  im2col_into(x, geom_, cols);
  gemm::gemm_nt(m, out_c_, k, cols, k, w, k, rows, out_c_, bt);
  if (with_bias) {
    const float* b = bias_.value.data();
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < out_c_; ++c) rows[r * out_c_ + c] += b[c];
  }
  Tensor out = ctx ? ctx->make({batch, out_c_, oh, ow})
                   : Tensor({batch, out_c_, oh, ow});
  rows_to_nchw_into(rows, batch, out_c_, oh, ow, out.data());
  return out;
}

Tensor Conv2d::forward(const Tensor& x) {
  cached_batch_ = x.dim(0);
  cached_cols_ = im2col(x, geom_);
  cached_eff_weight_ = &effective_weight();
  Tensor rows = ops::matmul_bt(cached_cols_, *cached_eff_weight_);
  if (has_bias_) {
    float* p = rows.data();
    const float* b = bias_.value.data();
    for (std::size_t r = 0; r < rows.dim(0); ++r)
      for (std::size_t c = 0; c < out_c_; ++c) p[r * out_c_ + c] += b[c];
  }
  return rows_to_nchw(rows, cached_batch_, out_c_, geom_.out_h(), geom_.out_w());
}

Tensor Conv2d::infer(const Tensor& x, EvalContext& ctx) const {
  return infer_with_weight(x, weight_.value.data(), has_bias_, &ctx);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (grad_out.ndim() != 4 || grad_out.dim(1) != out_c_)
    throw std::invalid_argument("Conv2d::backward: bad grad shape " +
                                grad_out.shape_str());
  Tensor grad_rows = nchw_to_rows(grad_out);  // [N*oh*ow, out_c]

  // dW = grad_rows^T @ cols -> [out_c, patch_len]
  Tensor grad_w = ops::matmul_at(grad_rows, cached_cols_);
  on_weight_grad(grad_w);
  if (weight_.requires_grad) ops::add_inplace(weight_.grad, grad_w);

  if (has_bias_ && bias_.requires_grad) {
    float* gb = bias_.grad.data();
    const float* g = grad_rows.data();
    for (std::size_t r = 0; r < grad_rows.dim(0); ++r)
      for (std::size_t c = 0; c < out_c_; ++c) gb[c] += g[r * out_c_ + c];
  }

  // dCols = grad_rows @ W -> [N*oh*ow, patch_len]; then scatter to input.
  Tensor grad_cols = ops::matmul(grad_rows, *cached_eff_weight_);
  return col2im(grad_cols, cached_batch_, geom_);
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

}  // namespace gbo::nn
