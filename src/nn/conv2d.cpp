#include "nn/conv2d.hpp"

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

#include <utility>
#include <vector>

namespace gbo::nn {
namespace {

/// [N*oh*ow, out_c] (GEMM result) -> [N, out_c, oh, ow]
Tensor rows_to_nchw(const Tensor& rows, std::size_t batch, std::size_t out_c,
                    std::size_t oh, std::size_t ow) {
  Tensor out({batch, out_c, oh, ow});
  rows_to_nchw_into(rows.data(), batch, out_c, oh, ow, out.data());
  return out;
}

/// A-panel packer for the direct 3×3 stride-1 kernel: gathers the
/// receptive-field patches for output rows [i0, i1) and patch columns
/// [pc, pc + kc) straight from the NCHW input into gemm's packed MR-strip
/// layout — exactly the values im2col would have written to those cells,
/// so the packed multiply is bitwise identical to the im2col route.
struct DirectConvPacker {
  const float* src;  // NCHW input
  ConvGeom g;
  std::size_t oh, ow;

  void operator()(std::size_t i0, std::size_t i1, std::size_t pc,
                  std::size_t kc, float* dst) const {
    const std::size_t H = g.in_h, W = g.in_w;
    const std::size_t kk = g.k;  // 3 on the dispatched path; kept general
    const std::size_t ohw = oh * ow;
    const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(g.pad);
    for (std::size_t i = i0; i < i1; i += gemm::kMR) {
      const std::size_t mr = i + gemm::kMR < i1 ? gemm::kMR : i1 - i;
      float* strip = dst + ((i - i0) / gemm::kMR) * gemm::kMR * kc;
      for (std::size_t r = 0; r < mr; ++r) {
        const std::size_t row = i + r;
        const std::size_t img = row / ohw, rem = row % ohw;
        const std::ptrdiff_t iy0 =
            static_cast<std::ptrdiff_t>((rem / ow) * g.stride) - pad;
        const std::ptrdiff_t ix0 =
            static_cast<std::ptrdiff_t>((rem % ow) * g.stride) - pad;
        const float* base = src + img * g.in_c * H * W;
        // Walk patch columns [pc, pc+kc) with incremental (c, ky, kx)
        // counters instead of a div/mod per element.
        std::size_t c = pc / (kk * kk);
        std::size_t ky = (pc / kk) % kk;
        std::size_t kx = pc % kk;
        const float* plane = base + c * H * W;
        for (std::size_t p = 0; p < kc; ++p) {
          const std::ptrdiff_t iy = iy0 + static_cast<std::ptrdiff_t>(ky);
          const std::ptrdiff_t ix = ix0 + static_cast<std::ptrdiff_t>(kx);
          const bool in =
              iy >= 0 && ix >= 0 && iy < static_cast<std::ptrdiff_t>(H) &&
              ix < static_cast<std::ptrdiff_t>(W);
          strip[p * gemm::kMR + r] = in ? plane[iy * W + ix] : 0.0f;
          if (++kx == kk) {
            kx = 0;
            if (++ky == kk) {
              ky = 0;
              plane += H * W;
            }
          }
        }
      }
      for (std::size_t r = mr; r < gemm::kMR; ++r)
        for (std::size_t p = 0; p < kc; ++p)
          strip[p * gemm::kMR + r] = 0.0f;
    }
  }
};

/// [N, out_c, oh, ow] -> [N*oh*ow, out_c]
Tensor nchw_to_rows(const Tensor& x) {
  const std::size_t batch = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor rows({batch * h * w, c});
  const float* src = x.data();
  float* dst = rows.data();
  for (std::size_t n = 0; n < batch; ++n)
    for (std::size_t ch = 0; ch < c; ++ch)
      for (std::size_t y = 0; y < h; ++y)
        for (std::size_t xx = 0; xx < w; ++xx)
          dst[((n * h + y) * w + xx) * c + ch] =
              src[((n * c + ch) * h + y) * w + xx];
  return rows;
}

}  // namespace

Conv2d::Conv2d(std::size_t out_channels, ConvGeom geom, bool bias, Rng& rng)
    : out_c_(out_channels), geom_(geom), has_bias_(bias) {
  Tensor w({out_c_, geom_.patch_len()});
  xavier_uniform(w, geom_.patch_len(), out_c_, rng);
  weight_ = Param("weight", std::move(w));
  if (has_bias_) bias_ = Param("bias", Tensor({out_c_}));
}

const Tensor& Conv2d::effective_weight() { return weight_.value; }

bool Conv2d::direct_conv_eligible(std::size_t /*m*/) const {
  // Geometry-only dispatch: the direct kernel is the im2col route's packed
  // multiply with the patch gather fused into the A-panel packer, so it is
  // bitwise equal by construction for every row count — eligibility must
  // not (and no longer does) depend on the batch.
  return geom_.k == 3 && geom_.stride == 1;
}

const float* Conv2d::cached_panels() const {
  const std::size_t k = geom_.patch_len();
  return wpanels_.get(std::as_const(weight_.value).data(), k, out_c_, k,
                      /*transposed=*/true, weight_.value.version());
}

Tensor Conv2d::infer_with_weight(const Tensor& x, const float* w,
                                 bool with_bias, EvalContext* ctx,
                                 const float* panels) const {
  if (x.ndim() != 4)
    throw std::invalid_argument("Conv2d: expected NCHW input, got " +
                                x.shape_str());
  const std::size_t batch = x.dim(0);
  const std::size_t oh = geom_.out_h(), ow = geom_.out_w();
  const std::size_t m = batch * oh * ow;
  const std::size_t k = geom_.patch_len();
  const bool direct = direct_conv_eligible(m);
  ScratchArena* arena = ctx ? ctx->arena : nullptr;
  ArenaFrame frame(arena);
  Tensor cols_own, rows_own;       // fallback owners without an arena
  std::vector<float> pack_own;
  float* cols = nullptr;           // im2col route only
  float* rows;
  if (arena) {
    if (!direct) cols = arena->alloc_floats(m * k);
    rows = arena->alloc_floats(m * out_c_);
  } else {
    if (!direct) {
      cols_own = Tensor({m, k});
      cols = cols_own.data();
    }
    rows_own = Tensor({m, out_c_});
    rows = rows_own.data();
  }
  if (panels == nullptr)
    // Uncached caller (a subclass forward over a transient effective
    // weight): pack fresh, off the heap when an arena is attached.
    panels = gemm::pack_fresh_b_t(out_c_, k, w, k, arena, &pack_own);
  if (direct) {
    gemm::gemm_prepacked_b(
        m, out_c_, k, DirectConvPacker{x.data(), geom_, oh, ow}, panels, rows,
        out_c_, /*accumulate=*/false);
  } else {
    im2col_into(x, geom_, cols);
    gemm::gemm_prepacked(m, out_c_, k, cols, k, panels, rows, out_c_);
  }
  if (with_bias) {
    const float* b = bias_.value.data();
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < out_c_; ++c) rows[r * out_c_ + c] += b[c];
  }
  Tensor out = ctx ? ctx->make({batch, out_c_, oh, ow})
                   : Tensor({batch, out_c_, oh, ow});
  rows_to_nchw_into(rows, batch, out_c_, oh, ow, out.data());
  return out;
}

Tensor Conv2d::forward(const Tensor& x) {
  cached_batch_ = x.dim(0);
  cached_cols_ = im2col(x, geom_);
  cached_eff_weight_ = &effective_weight();
  const std::size_t m = cached_cols_.dim(0);
  const std::size_t k = geom_.patch_len();
  // The training path runs the same packed kernel as infer (so
  // infer == forward stays bitwise), reusing the cached panels whenever the
  // effective weight is weight_.value itself; a substituted effective
  // weight (fresh binarization per forward) packs fresh.
  std::vector<float> pack_own;
  const float* panels =
      cached_eff_weight_ == &weight_.value
          ? cached_panels()
          : gemm::pack_fresh_b_t(out_c_, k, cached_eff_weight_->data(), k,
                                 nullptr, &pack_own);
  Tensor rows({cached_cols_.dim(0), out_c_});
  gemm::gemm_prepacked(m, out_c_, k, cached_cols_.data(), k, panels,
                       rows.data(), out_c_);
  if (has_bias_) {
    float* p = rows.data();
    const float* b = bias_.value.data();
    for (std::size_t r = 0; r < rows.dim(0); ++r)
      for (std::size_t c = 0; c < out_c_; ++c) p[r * out_c_ + c] += b[c];
  }
  return rows_to_nchw(rows, cached_batch_, out_c_, geom_.out_h(), geom_.out_w());
}

Tensor Conv2d::infer(const Tensor& x, EvalContext& ctx) const {
  return infer_with_weight(x, std::as_const(weight_.value).data(), has_bias_,
                           &ctx, cached_panels());
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (grad_out.ndim() != 4 || grad_out.dim(1) != out_c_)
    throw std::invalid_argument("Conv2d::backward: bad grad shape " +
                                grad_out.shape_str());
  Tensor grad_rows = nchw_to_rows(grad_out);  // [N*oh*ow, out_c]

  // dW = grad_rows^T @ cols -> [out_c, patch_len]
  Tensor grad_w = ops::matmul_at(grad_rows, cached_cols_);
  on_weight_grad(grad_w);
  if (weight_.requires_grad) ops::add_inplace(weight_.grad, grad_w);

  if (has_bias_ && bias_.requires_grad) {
    float* gb = bias_.grad.data();
    const float* g = grad_rows.data();
    for (std::size_t r = 0; r < grad_rows.dim(0); ++r)
      for (std::size_t c = 0; c < out_c_; ++c) gb[c] += g[r * out_c_ + c];
  }

  // dCols = grad_rows @ W -> [N*oh*ow, patch_len]; then scatter to input.
  Tensor grad_cols = ops::matmul(grad_rows, *cached_eff_weight_);
  return col2im(grad_cols, cached_batch_, geom_);
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

}  // namespace gbo::nn
