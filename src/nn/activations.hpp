// Pointwise activation layers.
//
// The paper's BWNN uses Tanh to bound activations in [-1, 1] ahead of the
// multi-level quantizer (Section II-A). ReLU and HardTanh are provided for
// ablations and for the MLP example.
#pragma once

#include "nn/module.hpp"

namespace gbo::nn {

class Tanh : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, EvalContext& ctx) const override;
  std::string kind() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, EvalContext& ctx) const override;
  std::string kind() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

/// Clamp to [-1, 1]; gradient 1 inside the interval, 0 outside.
class HardTanh : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, EvalContext& ctx) const override;
  std::string kind() const override { return "HardTanh"; }

 private:
  Tensor cached_input_;
};

/// Flattens [N, ...] to [N, prod(...)]; restores the shape in backward.
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, EvalContext& ctx) const override;
  std::string kind() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> cached_shape_;
};

}  // namespace gbo::nn
