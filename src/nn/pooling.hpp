// Spatial pooling layers (square window, stride == window).
#pragma once

#include "nn/module.hpp"

namespace gbo::nn {

class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(std::size_t window) : window_(window) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, EvalContext& ctx) const override;
  std::string kind() const override { return "MaxPool2d"; }

 private:
  /// Shared forward body; records per-cell argmax when `argmax` is non-null
  /// (the training path needs it for backward, the stateless path does not).
  /// A context routes the output through the worker arena when present.
  Tensor pool(const Tensor& x, std::vector<std::size_t>* argmax,
              EvalContext* ctx) const;

  std::size_t window_;
  std::vector<std::size_t> cached_shape_;
  std::vector<std::size_t> cached_argmax_;  // flat input index per output cell
};

class AvgPool2d : public Module {
 public:
  explicit AvgPool2d(std::size_t window) : window_(window) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, EvalContext& ctx) const override;
  std::string kind() const override { return "AvgPool2d"; }

 private:
  Tensor pool(const Tensor& x, EvalContext* ctx) const;

  std::size_t window_;
  std::vector<std::size_t> cached_shape_;
};

}  // namespace gbo::nn
