#include "nn/linear.hpp"

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

#include <utility>
#include <vector>

namespace gbo::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, bool bias,
               Rng& rng)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  Tensor w({out_, in_});
  xavier_uniform(w, in_, out_, rng);
  weight_ = Param("weight", std::move(w));
  if (has_bias_) bias_ = Param("bias", Tensor({out_}));
}

const Tensor& Linear::effective_weight() { return weight_.value; }

Tensor Linear::infer_with_weight(const Tensor& x, const float* w,
                                 bool with_bias, EvalContext* ctx,
                                 const float* panels) const {
  if (x.ndim() != 2 || x.dim(1) != in_)
    throw std::invalid_argument("Linear: bad input shape " + x.shape_str());
  const std::size_t batch = x.dim(0);
  ScratchArena* arena = ctx ? ctx->arena : nullptr;
  ArenaFrame frame(arena);
  Tensor y = ctx ? ctx->make({batch, out_}) : Tensor({batch, out_});
  if (gemm::panels_for_weight(out_, in_)) {
    std::vector<float> own;
    if (panels == nullptr)
      // Uncached caller (a subclass forward over a transient effective
      // weight): pack fresh, off the heap when an arena is attached.
      panels = gemm::pack_fresh_b_t(out_, in_, w, in_, arena, &own);
    gemm::gemm_prepacked(batch, out_, in_, x.data(), in_, panels, y.data(),
                         out_);
  } else {
    gemm::gemm_nt_rowwise(batch, out_, in_, x.data(), in_, w, in_, y.data(),
                          out_);
  }
  if (with_bias) {
    float* p = y.data();
    const float* b = bias_.value.data();
    for (std::size_t n = 0; n < batch; ++n)
      for (std::size_t o = 0; o < out_; ++o) p[n * out_ + o] += b[o];
  }
  return y;
}

const float* Linear::cached_panels() const {
  if (!gemm::panels_for_weight(out_, in_)) return nullptr;
  return wpanels_.get(std::as_const(weight_.value).data(), in_, out_, in_,
                      /*transposed=*/true, weight_.value.version());
}

Tensor Linear::forward(const Tensor& x) {
  cached_input_ = x;
  cached_eff_weight_ = &effective_weight();
  // The cache only ever holds panels of weight_.value; a subclass's
  // substituted effective weight (fresh binarization per forward) packs
  // fresh inside the body instead of poisoning the stamp timeline.
  const bool own_weight = cached_eff_weight_ == &weight_.value;
  return infer_with_weight(x, cached_eff_weight_->data(), has_bias_, nullptr,
                           own_weight ? cached_panels() : nullptr);
}

Tensor Linear::infer(const Tensor& x, EvalContext& ctx) const {
  return infer_with_weight(x, std::as_const(weight_.value).data(), has_bias_,
                           &ctx, cached_panels());
}

Tensor Linear::backward(const Tensor& grad_out) {
  const std::size_t batch = cached_input_.dim(0);
  if (grad_out.ndim() != 2 || grad_out.dim(0) != batch || grad_out.dim(1) != out_)
    throw std::invalid_argument("Linear::backward: bad grad shape");

  // dW = grad_out^T @ x  -> [out, in]
  Tensor grad_w = ops::matmul_at(grad_out, cached_input_);
  on_weight_grad(grad_w);
  if (weight_.requires_grad) ops::add_inplace(weight_.grad, grad_w);

  if (has_bias_ && bias_.requires_grad) {
    float* gb = bias_.grad.data();
    const float* g = grad_out.data();
    for (std::size_t n = 0; n < batch; ++n)
      for (std::size_t o = 0; o < out_; ++o) gb[o] += g[n * out_ + o];
  }

  // dX = grad_out @ W  -> [N, in]
  return ops::matmul(grad_out, *cached_eff_weight_);
}

std::vector<Param*> Linear::params() {
  std::vector<Param*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

}  // namespace gbo::nn
