#include "nn/linear.hpp"

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace gbo::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, bool bias,
               Rng& rng)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  Tensor w({out_, in_});
  xavier_uniform(w, in_, out_, rng);
  weight_ = Param("weight", std::move(w));
  if (has_bias_) bias_ = Param("bias", Tensor({out_}));
}

const Tensor& Linear::effective_weight() { return weight_.value; }

Tensor Linear::infer_with_weight(const Tensor& x, const Tensor& w,
                                 bool with_bias) const {
  return infer_with_weight(x, w.data(), with_bias, nullptr);
}

Tensor Linear::infer_with_weight(const Tensor& x, const float* w,
                                 bool with_bias, EvalContext* ctx) const {
  if (x.ndim() != 2 || x.dim(1) != in_)
    throw std::invalid_argument("Linear: bad input shape " + x.shape_str());
  const std::size_t batch = x.dim(0);
  ScratchArena* arena = ctx ? ctx->arena : nullptr;
  ArenaFrame frame(arena);
  // Large batches take gemm_nt's packed-panel path; feed it arena scratch
  // so the whole MVM stays off the heap. Small (serving-sized) batches use
  // the direct kernel — don't inflate the arena for those.
  const std::size_t pack_floats = gemm::gemm_nt_scratch_floats(batch, out_, in_);
  float* pack = arena && pack_floats ? arena->alloc_floats(pack_floats) : nullptr;
  Tensor y = ctx ? ctx->make({batch, out_}) : Tensor({batch, out_});
  gemm::gemm_nt(batch, out_, in_, x.data(), in_, w, in_, y.data(), out_, pack);
  if (with_bias) {
    float* p = y.data();
    const float* b = bias_.value.data();
    for (std::size_t n = 0; n < batch; ++n)
      for (std::size_t o = 0; o < out_; ++o) p[n * out_ + o] += b[o];
  }
  return y;
}

Tensor Linear::forward(const Tensor& x) {
  cached_input_ = x;
  cached_eff_weight_ = &effective_weight();
  return infer_with_weight(x, *cached_eff_weight_, has_bias_);
}

Tensor Linear::infer(const Tensor& x, EvalContext& ctx) const {
  return infer_with_weight(x, weight_.value.data(), has_bias_, &ctx);
}

Tensor Linear::backward(const Tensor& grad_out) {
  const std::size_t batch = cached_input_.dim(0);
  if (grad_out.ndim() != 2 || grad_out.dim(0) != batch || grad_out.dim(1) != out_)
    throw std::invalid_argument("Linear::backward: bad grad shape");

  // dW = grad_out^T @ x  -> [out, in]
  Tensor grad_w = ops::matmul_at(grad_out, cached_input_);
  on_weight_grad(grad_w);
  if (weight_.requires_grad) ops::add_inplace(weight_.grad, grad_w);

  if (has_bias_ && bias_.requires_grad) {
    float* gb = bias_.grad.data();
    const float* g = grad_out.data();
    for (std::size_t n = 0; n < batch; ++n)
      for (std::size_t o = 0; o < out_; ++o) gb[o] += g[n * out_ + o];
  }

  // dX = grad_out @ W  -> [N, in]
  return ops::matmul(grad_out, *cached_eff_weight_);
}

std::vector<Param*> Linear::params() {
  std::vector<Param*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

}  // namespace gbo::nn
