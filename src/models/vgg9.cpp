#include "models/vgg9.hpp"

#include "quant/act_quant.hpp"

#include <sstream>
#include <stdexcept>

namespace gbo::models {

std::string Vgg9Config::fingerprint() const {
  std::ostringstream oss;
  oss << "vgg9:c" << in_channels << ":s" << image_size << ":k" << num_classes
      << ":w" << width << ":l" << act_levels << ":seed" << seed;
  return oss.str();
}

Vgg9 build_vgg9(const Vgg9Config& cfg) {
  if (cfg.image_size % 8 != 0)
    throw std::invalid_argument("build_vgg9: image_size must be divisible by 8");
  if (cfg.act_levels < 2)
    throw std::invalid_argument("build_vgg9: act_levels must be >= 2");

  Rng rng(cfg.seed);
  Vgg9 model;
  model.config = cfg;
  model.net = std::make_unique<nn::Sequential>();
  auto& net = *model.net;

  const std::size_t w = cfg.width;
  std::size_t size = cfg.image_size;

  auto conv_block = [&](std::size_t in_c, std::size_t out_c,
                        bool pool) -> quant::QuantConv2d* {
    ConvGeom g;
    g.in_c = in_c;
    g.in_h = size;
    g.in_w = size;
    g.k = 3;
    g.stride = 1;
    g.pad = 1;
    auto* conv = net.emplace<quant::QuantConv2d>(out_c, g, rng);
    net.emplace<nn::BatchNorm2d>(out_c);
    net.emplace<quant::QuantTanh>(cfg.act_levels);
    if (pool) {
      net.emplace<nn::MaxPool2d>(2);
      size /= 2;
    }
    return conv;
  };

  // conv1 reads the image; its input is not bit-encoded.
  auto* conv1 = conv_block(cfg.in_channels, w, /*pool=*/false);

  auto* conv2 = conv_block(w, w, /*pool=*/true);
  auto* conv3 = conv_block(w, 2 * w, /*pool=*/false);
  auto* conv4 = conv_block(2 * w, 2 * w, /*pool=*/true);
  auto* conv5 = conv_block(2 * w, 4 * w, /*pool=*/false);
  auto* conv6 = conv_block(4 * w, 4 * w, /*pool=*/false);
  auto* conv7 = conv_block(4 * w, 4 * w, /*pool=*/true);

  net.emplace<nn::Flatten>();
  const std::size_t flat = 4 * w * size * size;
  auto* fc1 = net.emplace<quant::QuantLinear>(flat, 8 * w, rng);
  net.emplace<nn::BatchNorm1d>(8 * w);
  net.emplace<quant::QuantTanh>(cfg.act_levels);
  // Full-precision classifier head.
  net.emplace<nn::Linear>(8 * w, cfg.num_classes, /*bias=*/true, rng);

  model.encoded = {conv2, conv3, conv4, conv5, conv6, conv7, fc1};
  model.encoded_names = {"conv2", "conv3", "conv4", "conv5",
                         "conv6", "conv7", "fc1"};
  model.binary = {conv1, conv2, conv3, conv4, conv5, conv6, conv7, fc1};
  return model;
}

}  // namespace gbo::models
