#include "models/resnet.hpp"

#include "tensor/ops.hpp"

#include <sstream>
#include <stdexcept>

namespace gbo::models {

namespace {

/// Prefixes every param/buffer name of `m` with "<tag>." so a block's
/// flattened state dict has unique keys (conv1.weight vs conv2.weight).
void tag_names(nn::Module& m, const std::string& tag) {
  for (nn::Param* p : m.params()) p->name = tag + "." + p->name;
  for (nn::Param* b : m.buffers()) b->name = tag + "." + b->name;
}

}  // namespace

ResidualBlock::ResidualBlock(std::size_t in_channels, std::size_t out_channels,
                             std::size_t in_size, std::size_t stride,
                             std::size_t act_levels, Rng& rng) {
  if (stride != 1 && stride != 2)
    throw std::invalid_argument("ResidualBlock: stride must be 1 or 2");
  if (in_size == 0 || in_channels == 0 || out_channels == 0)
    throw std::invalid_argument("ResidualBlock: zero-sized configuration");

  ConvGeom g1;
  g1.in_c = in_channels;
  g1.in_h = in_size;
  g1.in_w = in_size;
  g1.k = 3;
  g1.stride = stride;
  g1.pad = 1;
  conv1_ = std::make_unique<quant::QuantConv2d>(out_channels, g1, rng);
  out_size_ = g1.out_h();
  bn1_ = std::make_unique<nn::BatchNorm2d>(out_channels);
  act1_ = std::make_unique<quant::QuantTanh>(act_levels);

  ConvGeom g2;
  g2.in_c = out_channels;
  g2.in_h = out_size_;
  g2.in_w = out_size_;
  g2.k = 3;
  g2.stride = 1;
  g2.pad = 1;
  conv2_ = std::make_unique<quant::QuantConv2d>(out_channels, g2, rng);
  bn2_ = std::make_unique<nn::BatchNorm2d>(out_channels);

  if (stride != 1 || in_channels != out_channels) {
    ConvGeom gp;
    gp.in_c = in_channels;
    gp.in_h = in_size;
    gp.in_w = in_size;
    gp.k = 1;
    gp.stride = stride;
    gp.pad = 0;
    proj_conv_ = std::make_unique<quant::QuantConv2d>(out_channels, gp, rng);
    proj_bn_ = std::make_unique<nn::BatchNorm2d>(out_channels);
    if (proj_conv_->geom().out_h() != out_size_)
      throw std::logic_error("ResidualBlock: shortcut/main size mismatch");
  }
  act_out_ = std::make_unique<quant::QuantTanh>(act_levels);

  tag_names(*conv1_, "conv1");
  tag_names(*bn1_, "bn1");
  tag_names(*conv2_, "conv2");
  tag_names(*bn2_, "bn2");
  if (proj_conv_) {
    tag_names(*proj_conv_, "proj");
    tag_names(*proj_bn_, "proj_bn");
  }
}

std::vector<nn::Module*> ResidualBlock::submodules() {
  std::vector<nn::Module*> mods = {conv1_.get(), bn1_.get(), act1_.get(),
                                   conv2_.get(), bn2_.get(), act_out_.get()};
  if (proj_conv_) {
    mods.push_back(proj_conv_.get());
    mods.push_back(proj_bn_.get());
  }
  return mods;
}

std::vector<const nn::Module*> ResidualBlock::children() const {
  std::vector<const nn::Module*> mods = {conv1_.get(), bn1_.get(), act1_.get(),
                                         conv2_.get(), bn2_.get(),
                                         act_out_.get()};
  if (proj_conv_) {
    mods.push_back(proj_conv_.get());
    mods.push_back(proj_bn_.get());
  }
  return mods;
}

Tensor ResidualBlock::forward(const Tensor& x) {
  Tensor main = conv1_->forward(x);
  main = bn1_->forward(main);
  main = act1_->forward(main);
  main = conv2_->forward(main);
  main = bn2_->forward(main);

  Tensor shortcut;
  if (proj_conv_) {
    shortcut = proj_bn_->forward(proj_conv_->forward(x));
  } else {
    shortcut = x;
  }

  Tensor::check_same_shape(main, shortcut, "ResidualBlock::forward");
  ops::axpy_inplace(main, 1.0f, shortcut);
  return act_out_->forward(main);
}

Tensor ResidualBlock::infer(const Tensor& x, nn::EvalContext& ctx) const {
  // Branch order matches forward (main, then shortcut) so hooks consume the
  // context stream identically on both paths. Intermediates recycle through
  // the context's arena; the identity shortcut reads x in place (no copy).
  auto step = [&](const nn::Module& m, Tensor&& in) {
    Tensor out = m.infer(in, ctx);
    ctx.recycle(std::move(in));
    return out;
  };
  Tensor main = conv1_->infer(x, ctx);
  main = step(*bn1_, std::move(main));
  main = step(*act1_, std::move(main));
  main = step(*conv2_, std::move(main));
  main = step(*bn2_, std::move(main));

  Tensor proj;
  const Tensor* shortcut = &x;
  if (proj_conv_) {
    proj = step(*proj_bn_, proj_conv_->infer(x, ctx));
    shortcut = &proj;
  }

  Tensor::check_same_shape(main, *shortcut, "ResidualBlock::infer");
  ops::axpy_inplace(main, 1.0f, *shortcut);
  if (proj_conv_) ctx.recycle(std::move(proj));
  return step(*act_out_, std::move(main));
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  // out = act(main + shortcut): the addition fans the gradient out to both
  // branches unchanged.
  Tensor g_sum = act_out_->backward(grad_out);

  Tensor g_main = bn2_->backward(g_sum);
  g_main = conv2_->backward(g_main);
  g_main = act1_->backward(g_main);
  g_main = bn1_->backward(g_main);
  g_main = conv1_->backward(g_main);

  if (proj_conv_) {
    Tensor g_short = proj_bn_->backward(g_sum);
    g_short = proj_conv_->backward(g_short);
    ops::axpy_inplace(g_main, 1.0f, g_short);
  } else {
    ops::axpy_inplace(g_main, 1.0f, g_sum);
  }
  return g_main;
}

std::vector<nn::Param*> ResidualBlock::params() {
  std::vector<nn::Param*> out;
  for (nn::Module* m : submodules())
    for (nn::Param* p : m->params()) out.push_back(p);
  return out;
}

std::vector<nn::Param*> ResidualBlock::buffers() {
  std::vector<nn::Param*> out;
  for (nn::Module* m : submodules())
    for (nn::Param* b : m->buffers()) out.push_back(b);
  return out;
}

void ResidualBlock::set_training(bool training) {
  Module::set_training(training);
  for (nn::Module* m : submodules()) m->set_training(training);
}

std::vector<quant::Hookable*> ResidualBlock::encoded_layers() {
  std::vector<quant::Hookable*> out = {conv1_.get(), conv2_.get()};
  if (proj_conv_) out.push_back(proj_conv_.get());
  return out;
}

std::vector<std::string> ResidualBlock::encoded_suffixes() const {
  std::vector<std::string> out = {"conv1", "conv2"};
  if (proj_conv_) out.push_back("proj");
  return out;
}

std::string ResNetConfig::fingerprint() const {
  std::ostringstream oss;
  oss << "resnet8:c" << in_channels << ":s" << image_size << ":k"
      << num_classes << ":w" << width << ":l" << act_levels << ":seed" << seed;
  return oss.str();
}

ResNet build_resnet(const ResNetConfig& cfg) {
  if (cfg.image_size % 4 != 0)
    throw std::invalid_argument(
        "build_resnet: image_size must be divisible by 4");
  if (cfg.act_levels < 2)
    throw std::invalid_argument("build_resnet: act_levels must be >= 2");

  Rng rng(cfg.seed);
  ResNet model;
  model.config = cfg;
  model.net = std::make_unique<nn::Sequential>();
  auto& net = *model.net;

  const std::size_t w = cfg.width;
  std::size_t size = cfg.image_size;

  // Stem reads the image through DACs; not bit-encoded.
  ConvGeom gs;
  gs.in_c = cfg.in_channels;
  gs.in_h = size;
  gs.in_w = size;
  gs.k = 3;
  gs.stride = 1;
  gs.pad = 1;
  auto* stem = net.emplace<quant::QuantConv2d>(w, gs, rng);
  net.emplace<nn::BatchNorm2d>(w);
  net.emplace<quant::QuantTanh>(cfg.act_levels);

  auto add_stage = [&](const std::string& name, std::size_t in_c,
                       std::size_t out_c, std::size_t stride) {
    auto* block = net.emplace<ResidualBlock>(in_c, out_c, size, stride,
                                             cfg.act_levels, rng);
    size = block->out_size();
    const auto layers = block->encoded_layers();
    const auto suffixes = block->encoded_suffixes();
    for (std::size_t i = 0; i < layers.size(); ++i) {
      model.encoded.push_back(layers[i]);
      model.encoded_names.push_back(name + "." + suffixes[i]);
    }
  };

  add_stage("s1", w, w, 1);
  add_stage("s2", w, 2 * w, 2);
  add_stage("s3", 2 * w, 4 * w, 2);

  net.emplace<nn::AvgPool2d>(size);
  net.emplace<nn::Flatten>();
  // Full-precision classifier head.
  net.emplace<nn::Linear>(4 * w, cfg.num_classes, /*bias=*/true, rng);

  model.binary.push_back(stem);
  for (auto* layer : model.encoded) model.binary.push_back(layer);
  return model;
}

}  // namespace gbo::models
