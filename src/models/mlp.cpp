#include "models/mlp.hpp"

#include "quant/act_quant.hpp"

#include <stdexcept>

namespace gbo::models {

Mlp build_mlp(const MlpConfig& cfg) {
  if (cfg.hidden.empty())
    throw std::invalid_argument("build_mlp: need at least one hidden layer");

  Rng rng(cfg.seed);
  Mlp model;
  model.config = cfg;
  model.net = std::make_unique<nn::Sequential>();
  auto& net = *model.net;

  std::size_t in = cfg.in_features;
  for (std::size_t i = 0; i < cfg.hidden.size(); ++i) {
    auto* fc = net.emplace<quant::QuantLinear>(in, cfg.hidden[i], rng);
    net.emplace<nn::BatchNorm1d>(cfg.hidden[i]);
    net.emplace<quant::QuantTanh>(cfg.act_levels);
    model.binary.push_back(fc);
    if (i > 0) {
      model.encoded.push_back(fc);
      model.encoded_names.push_back("fc" + std::to_string(i + 1));
    }
    in = cfg.hidden[i];
  }
  net.emplace<nn::Linear>(in, cfg.num_classes, /*bias=*/true, rng);
  return model;
}

}  // namespace gbo::models
