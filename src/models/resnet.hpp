// Binary-weight residual network (second architecture).
//
// The paper argues GBO generalizes across network configurations
// (contribution (2)); VGG9 alone cannot demonstrate that. This model adds
// skip connections — the structurally different case, because a residual
// block's crossbar layers see *partially denoised* inputs (the identity
// path bypasses the noisy MVM), which shifts per-layer noise sensitivity
// relative to a plain chain. bench_ext_resnet runs the full
// baseline/PLA/GBO comparison on this topology.
//
// Topology ("ResNet-8" scaled to the reduced CPU configuration):
//   stem:   QuantConv 3×3 (image input, not bit-encoded) + BN + QuantTanh
//   stage1: ResidualBlock(w   -> w,  stride 1)
//   stage2: ResidualBlock(w   -> 2w, stride 2)   [projection shortcut]
//   stage3: ResidualBlock(2w  -> 4w, stride 2)   [projection shortcut]
//   head:   AvgPool to 1×1 spatial/4, Flatten, full-precision Linear
//
// Every conv inside a block is a QuantConv2d whose input is a quantized
// activation, so each is a crossbar-encoded layer (8 in total with the
// default one block per stage: 2 per plain block + 1 projection in each of
// the two downsampling blocks).
#pragma once

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "quant/act_quant.hpp"
#include "quant/quant_layers.hpp"

#include <memory>
#include <string>
#include <vector>

namespace gbo::models {

/// Post-activation residual block with binary-weight convolutions:
///   out = QuantTanh( BN2(Conv2(QuantTanh(BN1(Conv1(x))))) + shortcut(x) )
/// where shortcut is identity when shape-preserving, or a 1×1 binary
/// projection conv + BN when the block changes channels or stride.
class ResidualBlock : public nn::Module {
 public:
  ResidualBlock(std::size_t in_channels, std::size_t out_channels,
                std::size_t in_size, std::size_t stride,
                std::size_t act_levels, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x, nn::EvalContext& ctx) const override;
  std::vector<const nn::Module*> children() const override;
  std::vector<nn::Param*> params() override;
  std::vector<nn::Param*> buffers() override;
  void set_training(bool training) override;
  std::string kind() const override { return "ResidualBlock"; }

  bool has_projection() const { return proj_conv_ != nullptr; }
  std::size_t out_size() const { return out_size_; }

  /// The block's crossbar-mapped layers: conv1, conv2[, projection].
  std::vector<quant::Hookable*> encoded_layers();
  std::vector<std::string> encoded_suffixes() const;

 private:
  std::vector<nn::Module*> submodules();

  std::size_t out_size_ = 0;
  std::unique_ptr<quant::QuantConv2d> conv1_;
  std::unique_ptr<nn::BatchNorm2d> bn1_;
  std::unique_ptr<quant::QuantTanh> act1_;
  std::unique_ptr<quant::QuantConv2d> conv2_;
  std::unique_ptr<nn::BatchNorm2d> bn2_;
  std::unique_ptr<quant::QuantConv2d> proj_conv_;  // null for identity
  std::unique_ptr<nn::BatchNorm2d> proj_bn_;       // null for identity
  std::unique_ptr<quant::QuantTanh> act_out_;
};

struct ResNetConfig {
  std::size_t in_channels = 3;
  std::size_t image_size = 16;
  std::size_t num_classes = 10;
  std::size_t width = 16;      // stem width; stages use w, 2w, 4w
  std::size_t act_levels = 9;  // 9 levels -> 8-pulse thermometer codes
  std::uint64_t seed = 13;

  /// Stable id for the artifact cache (mirrors Vgg9Config::fingerprint).
  std::string fingerprint() const;
};

/// A built residual network plus handles to its crossbar-encoded layers
/// (same shape as models::Vgg9, so pipelines/benches are interchangeable).
struct ResNet {
  std::unique_ptr<nn::Sequential> net;
  std::vector<quant::Hookable*> encoded;   // 8 layers, forward order
  std::vector<std::string> encoded_names;  // "s1.conv1", ..., "s3.proj"
  std::vector<quant::Hookable*> binary;    // encoded + the stem conv
  ResNetConfig config;

  std::size_t base_pulses() const { return config.act_levels - 1; }
};

ResNet build_resnet(const ResNetConfig& cfg);

}  // namespace gbo::models
