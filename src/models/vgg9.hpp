// VGG9 binary-weight network builder (paper §IV-A).
//
// Topology follows the paper's VGG9: seven 3×3 conv layers in widths
// [w, w, 2w, 2w, 4w, 4w, 4w] with maxpools after conv2/conv4/conv7, then two
// FC layers. Every conv/FC-1 weight is binary (QuantConv2d/QuantLinear) and
// every hidden activation is Tanh quantized to `act_levels` levels so it
// maps onto (act_levels - 1)-pulse thermometer codes. The classifier (fc2)
// stays full precision, standard practice for BWNNs.
//
// The paper's Table I reports 7-entry per-layer pulse vectors; those are the
// layers whose *input* is bit-encoded: conv2..conv7 and fc1 (conv1 reads
// the image through DACs, fc2 reads fc1's activations but is the narrow
// classifier the paper leaves at the base encoding... it is conv1 and fc2
// that are excluded). build_vgg9 returns exactly these 7 layers as
// `encoded`, in forward order.
#pragma once

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "quant/quant_layers.hpp"

#include <memory>
#include <string>
#include <vector>

namespace gbo::models {

struct Vgg9Config {
  std::size_t in_channels = 3;
  std::size_t image_size = 16;   // paper: 32 (CIFAR-10); reduced default for CPU
  std::size_t num_classes = 10;
  std::size_t width = 16;        // base conv width; paper: 64
  std::size_t act_levels = 9;    // 9 levels -> 8-pulse thermometer codes
  std::uint64_t seed = 7;

  /// Stable string identifying the architecture + init, used as the
  /// artifact-cache key component.
  std::string fingerprint() const;
};

/// A built network plus handles to its crossbar-encoded layers.
struct Vgg9 {
  std::unique_ptr<nn::Sequential> net;
  std::vector<quant::Hookable*> encoded;      // 7 layers, forward order
  std::vector<std::string> encoded_names;     // "conv2".."conv7", "fc1"
  /// All binary-weight layers (conv1..conv7, fc1), for latent-weight
  /// clamping during weight training. fc2 is full precision and excluded.
  std::vector<quant::Hookable*> binary;
  Vgg9Config config;

  std::size_t base_pulses() const { return config.act_levels - 1; }
};

Vgg9 build_vgg9(const Vgg9Config& cfg);

}  // namespace gbo::models
