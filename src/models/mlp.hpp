// Small binary-weight MLP builder, used by unit tests and the quickstart
// example where a full VGG9 would be overkill.
#pragma once

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "quant/quant_layers.hpp"

#include <memory>
#include <vector>

namespace gbo::models {

struct MlpConfig {
  std::size_t in_features = 64;
  std::vector<std::size_t> hidden = {128, 128};
  std::size_t num_classes = 10;
  std::size_t act_levels = 9;
  std::uint64_t seed = 11;
};

struct Mlp {
  std::unique_ptr<nn::Sequential> net;
  /// All hidden QuantLinear layers except the first (whose input is the raw
  /// feature vector) — the bit-encoded layers.
  std::vector<quant::Hookable*> encoded;
  std::vector<std::string> encoded_names;
  /// Every binary-weight layer (including the first hidden layer).
  std::vector<quant::Hookable*> binary;
  MlpConfig config;

  std::size_t base_pulses() const { return config.act_levels - 1; }
};

Mlp build_mlp(const MlpConfig& cfg);

}  // namespace gbo::models
