#include "tensor/gemm_binary.hpp"

#include "common/thread_pool.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <vector>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define GBO_BINARY_X86 1
#include <cpuid.h>
#include <immintrin.h>
#endif

#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace gbo::gemm {
namespace {

std::atomic<std::uint64_t> g_binary_packs{0};
std::atomic<std::uint64_t> g_binary_mvms{0};

// ---- registry kernels ----------------------------------------------------
//
// Every kernel computes the same value — the total popcount of a XOR w over
// kBinaryPlanes planes — as a sum of per-word integer popcounts, which is
// associative and overflow-free (P <= 8·k <= 2^40 for any realistic k), so
// the variants are bitwise interchangeable by construction.

std::uint64_t xp1_scalar(const std::uint64_t* a, const std::uint64_t* w,
                         std::size_t kw) {
  std::uint64_t p = 0;
  for (std::size_t t = 0; t < kBinaryPlanes; ++t) {
    const std::uint64_t* at = a + t * kw;
    for (std::size_t i = 0; i < kw; ++i)
      p += static_cast<std::uint64_t>(std::popcount(at[i] ^ w[i]));
  }
  return p;
}

void xpr_scalar(const std::uint64_t* a, const std::uint64_t* W, std::size_t n,
                std::size_t kw, std::uint64_t* pops) {
  for (std::size_t j = 0; j < n; ++j) pops[j] = xp1_scalar(a, W + j * kw, kw);
}

#if defined(GBO_BINARY_X86)

// AVX2 has no vector popcount; the classic vpshufb nibble LUT counts bits in
// each byte, then _mm256_sad_epu8 horizontally folds bytes into four 64-bit
// lanes per 256-bit chunk.
__attribute__((target("avx2"))) inline __m256i popcnt256(__m256i x) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1,
                       2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(x, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(x, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline std::uint64_t hsum256(__m256i acc) {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                  _mm256_extracti128_si256(acc, 1));
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<std::uint64_t>(
             _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
}

__attribute__((target("avx2"))) void xpr_avx2(const std::uint64_t* a,
                                              const std::uint64_t* W,
                                              std::size_t n, std::size_t kw,
                                              std::uint64_t* pops) {
  if (kw <= 4) {
    // Hot path (k <= 256): all 8 activation planes live in YMM registers
    // across the whole weight panel; each weight row is one masked load.
    // Masked-out lanes are zero on both operands, so they XOR to zero.
    __m256i mask;
    {
      const long long kOn = -1;
      alignas(32) long long lanes[4] = {0, 0, 0, 0};
      for (std::size_t i = 0; i < kw; ++i) lanes[i] = kOn;
      mask = _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
    }
    __m256i av[kBinaryPlanes];
    for (std::size_t t = 0; t < kBinaryPlanes; ++t)
      av[t] = _mm256_maskload_epi64(
          reinterpret_cast<const long long*>(a + t * kw), mask);
    for (std::size_t j = 0; j < n; ++j) {
      const __m256i wv = _mm256_maskload_epi64(
          reinterpret_cast<const long long*>(W + j * kw), mask);
      __m256i acc = popcnt256(_mm256_xor_si256(av[0], wv));
      for (std::size_t t = 1; t < kBinaryPlanes; ++t)
        acc = _mm256_add_epi64(acc, popcnt256(_mm256_xor_si256(av[t], wv)));
      pops[j] = hsum256(acc);
    }
    return;
  }
  // General shape: chunk the k dimension; each weight chunk is loaded once
  // and XORed against all 8 planes (8x fewer weight loads than per-plane).
  const std::size_t kw4 = kw - kw % 4;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t* w = W + j * kw;
    __m256i acc = _mm256_setzero_si256();
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kw4; i += 4) {
      const __m256i wv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
      for (std::size_t t = 0; t < kBinaryPlanes; ++t) {
        const __m256i atv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + t * kw + i));
        acc = _mm256_add_epi64(acc, popcnt256(_mm256_xor_si256(atv, wv)));
      }
    }
    for (std::size_t i = kw4; i < kw; ++i)
      for (std::size_t t = 0; t < kBinaryPlanes; ++t)
        total += static_cast<std::uint64_t>(std::popcount(a[t * kw + i] ^ w[i]));
    pops[j] = total + hsum256(acc);
  }
}

// AVX-512 VPOPCNTDQ: native 64-bit-lane popcount; ragged tails are masked
// edge tiles — zero-masked loads on both operands XOR to zero, so the dead
// lanes contribute nothing.
__attribute__((target("avx512f,avx512vpopcntdq"))) void xpr_avx512(
    const std::uint64_t* a, const std::uint64_t* W, std::size_t n,
    std::size_t kw, std::uint64_t* pops) {
  if (kw <= 8) {
    // Hot path (k <= 512, every layer of the paper's models): all 8
    // activation planes live in ZMM registers across the whole weight
    // panel; each weight row is one masked load + 8 XOR/VPOPCNTQ pairs.
    const __mmask8 mask =
        kw == 8 ? static_cast<__mmask8>(0xff)
                : static_cast<__mmask8>((1u << kw) - 1u);
    __m512i av[kBinaryPlanes];
    for (std::size_t t = 0; t < kBinaryPlanes; ++t)
      av[t] = _mm512_maskz_loadu_epi64(mask, a + t * kw);
    for (std::size_t j = 0; j < n; ++j) {
      const __m512i wv = _mm512_maskz_loadu_epi64(mask, W + j * kw);
      __m512i acc = _mm512_popcnt_epi64(_mm512_xor_si512(av[0], wv));
      for (std::size_t t = 1; t < kBinaryPlanes; ++t)
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_xor_si512(av[t], wv)));
      pops[j] = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
    }
    return;
  }
  if (kw <= 16) {
    // Two-vector tier (k <= 1024, covers the VGG 3x3 conv patches, k = 576):
    // 16 ZMM hold the planes, each weight row is two masked loads.
    const __mmask8 m1 = kw >= 16 ? static_cast<__mmask8>(0xff)
                                 : static_cast<__mmask8>((1u << (kw - 8)) - 1u);
    __m512i av0[kBinaryPlanes], av1[kBinaryPlanes];
    for (std::size_t t = 0; t < kBinaryPlanes; ++t) {
      av0[t] = _mm512_loadu_si512(a + t * kw);
      av1[t] = _mm512_maskz_loadu_epi64(m1, a + t * kw + 8);
    }
    for (std::size_t j = 0; j < n; ++j) {
      const __m512i wv0 = _mm512_loadu_si512(W + j * kw);
      const __m512i wv1 = _mm512_maskz_loadu_epi64(m1, W + j * kw + 8);
      __m512i acc = _mm512_add_epi64(
          _mm512_popcnt_epi64(_mm512_xor_si512(av0[0], wv0)),
          _mm512_popcnt_epi64(_mm512_xor_si512(av1[0], wv1)));
      for (std::size_t t = 1; t < kBinaryPlanes; ++t) {
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_xor_si512(av0[t], wv0)));
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_xor_si512(av1[t], wv1)));
      }
      pops[j] = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
    }
    return;
  }
  // General shape: each weight chunk loaded once, XORed against all planes.
  const std::size_t kw8 = kw - kw % 8;
  const __mmask8 edge = static_cast<__mmask8>((1u << (kw - kw8)) - 1u);
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t* w = W + j * kw;
    __m512i acc = _mm512_setzero_si512();
    for (std::size_t i = 0; i < kw8; i += 8) {
      const __m512i wv = _mm512_loadu_si512(w + i);
      for (std::size_t t = 0; t < kBinaryPlanes; ++t)
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_xor_si512(
                     _mm512_loadu_si512(a + t * kw + i), wv)));
    }
    if (kw8 < kw) {
      const __m512i wv = _mm512_maskz_loadu_epi64(edge, w + kw8);
      for (std::size_t t = 0; t < kBinaryPlanes; ++t)
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_xor_si512(
                     _mm512_maskz_loadu_epi64(edge, a + t * kw + kw8), wv)));
    }
    pops[j] = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
  }
}

#endif  // GBO_BINARY_X86

#if defined(__ARM_NEON)

void xpr_neon(const std::uint64_t* a, const std::uint64_t* W, std::size_t n,
              std::size_t kw, std::uint64_t* pops) {
  const std::size_t kw2 = kw - kw % 2;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t* w = W + j * kw;
    std::uint64_t total = 0;
    uint64x2_t acc = vdupq_n_u64(0);
    for (std::size_t i = 0; i < kw2; i += 2) {
      const uint64x2_t wv = vld1q_u64(w + i);
      for (std::size_t t = 0; t < kBinaryPlanes; ++t) {
        const uint8x16_t x =
            veorq_u8(vreinterpretq_u8_u64(vld1q_u64(a + t * kw + i)),
                     vreinterpretq_u8_u64(wv));
        acc = vaddq_u64(acc,
                        vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(x)))));
      }
    }
    total += vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
    for (std::size_t i = kw2; i < kw; ++i)
      for (std::size_t t = 0; t < kBinaryPlanes; ++t)
        total += static_cast<std::uint64_t>(std::popcount(a[t * kw + i] ^ w[i]));
    pops[j] = total;
  }
}

#endif  // __ARM_NEON

constexpr BinaryKernel kScalarKernel{"scalar", &xpr_scalar};
#if defined(GBO_BINARY_X86)
constexpr BinaryKernel kAvx2Kernel{"avx2", &xpr_avx2};
constexpr BinaryKernel kAvx512Kernel{"avx512_vpopcntdq", &xpr_avx512};
#endif
#if defined(__ARM_NEON)
constexpr BinaryKernel kNeonKernel{"neon", &xpr_neon};
#endif

// ---- CPUID feature probe -------------------------------------------------
//
// Raw CPUID + XGETBV rather than __builtin_cpu_supports: the vpopcntdq
// string is not recognized by every toolchain this repo supports, and the
// OS-enablement half (XCR0) must be checked explicitly anyway.

#if defined(GBO_BINARY_X86)

struct CpuFeatures {
  bool avx2 = false;
  bool avx512f = false;
  bool avx512vpopcntdq = false;
};

std::uint64_t read_xcr0() {
  std::uint32_t lo, hi;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

CpuFeatures probe_cpu() {
  CpuFeatures f;
  unsigned eax, ebx, ecx, edx;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  const bool osxsave = (ecx >> 27) & 1;  // OS uses XSAVE: XCR0 is readable
  if (!osxsave) return f;
  const std::uint64_t xcr0 = read_xcr0();
  const bool os_avx = (xcr0 & 0x6) == 0x6;       // XMM + YMM state saved
  const bool os_avx512 = (xcr0 & 0xe6) == 0xe6;  // + opmask, ZMM hi state
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = os_avx && ((ebx >> 5) & 1);
    f.avx512f = os_avx512 && ((ebx >> 16) & 1);
    f.avx512vpopcntdq = f.avx512f && ((ecx >> 14) & 1);
  }
  return f;
}

const CpuFeatures& cpu() {
  static const CpuFeatures f = probe_cpu();
  return f;
}

#endif  // GBO_BINARY_X86

bool force_scalar() {
  const char* e = std::getenv("GBO_FORCE_SCALAR_KERNELS");
  return e != nullptr && e[0] != '\0' && e[0] != '0';
}

const BinaryKernel* select_kernel() {
  if (force_scalar()) return &kScalarKernel;
#if defined(GBO_BINARY_X86)
  if (cpu().avx512vpopcntdq) return &kAvx512Kernel;
  if (cpu().avx2) return &kAvx2Kernel;
#endif
#if defined(__ARM_NEON)
  return &kNeonKernel;
#endif
  return &kScalarKernel;
}

}  // namespace

const BinaryKernel& binary_kernel() {
  static const BinaryKernel* k = select_kernel();
  return *k;
}

const BinaryKernel& binary_kernel_scalar() { return kScalarKernel; }

const char* binary_kernel_name() { return binary_kernel().name; }

std::string cpu_features() {
  std::string s;
#if defined(GBO_BINARY_X86)
  if (cpu().avx2) s += "avx2 ";
  if (cpu().avx512f) s += "avx512f ";
  if (cpu().avx512vpopcntdq) s += "avx512vpopcntdq ";
#endif
#if defined(__ARM_NEON)
  s += "neon ";
#endif
  if (!s.empty()) s.pop_back();
  return s;
}

std::uint64_t binary_pack_count() {
  return g_binary_packs.load(std::memory_order_relaxed);
}

std::uint64_t binary_mvm_count() {
  return g_binary_mvms.load(std::memory_order_relaxed);
}

PackedBinaryB prepack_binary_b_t(std::size_t n, std::size_t k, const float* B,
                                 std::size_t ldb) {
  PackedBinaryB pb;
  pb.n = n;
  pb.k = k;
  pb.kw = binary_words(k);
  if (n == 0 || k == 0) return pb;  // empty handle, no pack counted
  g_binary_packs.fetch_add(1, std::memory_order_relaxed);
  pb.words.assign(n * pb.kw, 0);
  std::uint64_t* words = pb.words.data();
  const std::size_t kw = pb.kw;
  parallel_for(0, n, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      const float* src = B + j * ldb;
      std::uint64_t* row = words + j * kw;
      for (std::size_t p = 0; p < k; ++p)
        if (src[p] >= 0.0f) row[p / 64] |= 1ull << (p % 64);
    }
  });
  return pb;
}

namespace {

/// Level 0..8 of an on-grid value, -1 otherwise. (x + 1)·4 alone is not a
/// sufficient test: the addition ROUNDS, so a tiny off-grid value (e.g.
/// 1e-8) lands on an integer — the reconstruction comparison is what makes
/// the test exact (grid values round-trip exactly; NaN fails the range
/// comparison).
int grid_level(float x) {
  const float lf = (x + 1.0f) * 4.0f;
  if (!(lf >= 0.0f && lf <= 8.0f)) return -1;
  const int lvl = static_cast<int>(lf);
  if (static_cast<float>(lvl) != lf) return -1;
  if (static_cast<float>(lvl) * 0.25f - 1.0f != x) return -1;
  return lvl;
}

}  // namespace

bool binary_grid_check(const float* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (grid_level(p[i]) < 0) return false;
  return true;
}

bool pack_binary_a(std::size_t m, std::size_t k, const float* A,
                   std::size_t lda, std::uint64_t* dst) {
  const std::size_t kw = binary_words(k);
  std::atomic<bool> ok{true};
  parallel_for(0, m, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (!ok.load(std::memory_order_relaxed)) return;
      const float* src = A + i * lda;
      std::uint64_t* row = dst + i * kBinaryPlanes * kw;
      // Accumulate each 64-lane chunk's plane words in registers — one
      // store per plane per word instead of a read-modify-write per
      // element — then spill to the strided plane layout.
      for (std::size_t word = 0; word < kw; ++word) {
        std::uint64_t pl[kBinaryPlanes] = {0};
        const std::size_t p_end = std::min(k, (word + 1) * 64);
        for (std::size_t p = word * 64; p < p_end; ++p) {
          const int lvl = grid_level(src[p]);
          if (lvl < 0) {
            ok.store(false, std::memory_order_relaxed);
            return;
          }
          // Thermometer code: level l sets planes 0..l-1 (+1 pulses), the
          // remaining planes read as -1 through the XOR identity.
          const std::uint64_t bit = 1ull << (p % 64);
          for (int t = 0; t < lvl; ++t) pl[t] |= bit;
        }
        for (std::size_t t = 0; t < kBinaryPlanes; ++t)
          row[t * kw + word] = pl[t];
      }
    }
  });
  return ok.load(std::memory_order_relaxed);
}

void gemm_binary_with(const BinaryKernel& kern, std::size_t m, std::size_t n,
                      std::size_t k, const std::uint64_t* packedA,
                      const PackedBinaryB& B, float* C, std::size_t ldc) {
  assert(B.n == n && B.k == k);
  if (m == 0 || n == 0) return;
  g_binary_mvms.fetch_add(1, std::memory_order_relaxed);
  if (k == 0) {
    for (std::size_t i = 0; i < m; ++i)
      std::memset(C + i * ldc, 0, n * sizeof(float));
    return;
  }
  GBO_TRACE_SPAN(obs::EventType::kBinaryMvm, m,
                 static_cast<std::uint16_t>(n < 65535 ? n : 65535),
                 2ull * m * n * k);
  const std::size_t kw = B.kw;
  const std::uint64_t* wwords = B.words.data();
  auto* fn = kern.xor_popcount_row;
  const std::int64_t mk =
      static_cast<std::int64_t>(kBinaryPlanes) * static_cast<std::int64_t>(k);
  // (8k - 2P)/8 is an integer multiple of 1/4 below 2^24: the int->float
  // conversion and the 0.125f (power of two) multiply are both exact, which
  // is what makes this equal to the float kernels bit for bit.
  parallel_for(0, m, 4, [&](std::size_t lo, std::size_t hi) {
    std::vector<std::uint64_t> pops(n);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint64_t* ai = packedA + i * kBinaryPlanes * kw;
      float* Ci = C + i * ldc;
      fn(ai, wwords, n, kw, pops.data());
      for (std::size_t j = 0; j < n; ++j) {
        const std::int64_t pop = static_cast<std::int64_t>(pops[j]);
        Ci[j] = static_cast<float>(mk - 2 * pop) * 0.125f;
      }
    }
  });
}

void gemm_binary(std::size_t m, std::size_t n, std::size_t k,
                 const std::uint64_t* packedA, const PackedBinaryB& B, float* C,
                 std::size_t ldc) {
  gemm_binary_with(binary_kernel(), m, n, k, packedA, B, C, ldc);
}

}  // namespace gbo::gemm
