// Elementwise, reduction, and GEMM kernels over Tensor.
//
// Free functions rather than members so kernels stay composable and the
// Tensor class stays small. All functions validate shapes and throw
// std::invalid_argument on mismatch.
#pragma once

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace gbo::ops {

// ---- elementwise ----------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);  // Hadamard product
Tensor scale(const Tensor& a, float s);
void add_inplace(Tensor& a, const Tensor& b);
void sub_inplace(Tensor& a, const Tensor& b);
void scale_inplace(Tensor& a, float s);
/// a += s * b  (axpy)
void axpy_inplace(Tensor& a, float s, const Tensor& b);

// ---- reductions -----------------------------------------------------------

float sum(const Tensor& a);
float mean(const Tensor& a);
float max_abs(const Tensor& a);
float min(const Tensor& a);
float max(const Tensor& a);
/// Unbiased=false variance over all elements.
float variance(const Tensor& a);
/// Index of the maximum element in a flat view.
std::size_t argmax(const Tensor& a);
/// Row-wise argmax of a 2D tensor [rows, cols] -> vector of column indices.
std::vector<std::size_t> argmax_rows(const Tensor& a);

// ---- random fills ---------------------------------------------------------

void fill_uniform(Tensor& a, Rng& rng, float lo, float hi);
void fill_normal(Tensor& a, Rng& rng, float mean, float stddev);

// ---- GEMM -----------------------------------------------------------------
//
// All variants dispatch to the cache-blocked multithreaded kernels in
// tensor/gemm.hpp (thread count: GBO_NUM_THREADS). Results are bitwise
// reproducible at any thread count.

/// C = A * B with A:[m,k], B:[k,n] -> C:[m,n].
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A * B^T with A:[m,k], B:[n,k] -> C:[m,n].
Tensor matmul_bt(const Tensor& a, const Tensor& b);

/// C = A^T * B with A:[k,m], B:[k,n] -> C:[m,n].
Tensor matmul_at(const Tensor& a, const Tensor& b);

/// In-place accumulate: c[m,n] += a[m,k] * b[k,n].
void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c);

// ---- misc -----------------------------------------------------------------

/// Transposes a 2D tensor.
Tensor transpose(const Tensor& a);

/// True if all |a[i] - b[i]| <= atol + rtol * |b[i]|.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f, float atol = 1e-6f);

}  // namespace gbo::ops
