#include "tensor/tensor.hpp"

#include <algorithm>
#include <sstream>

namespace gbo {

std::size_t shape_numel(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  return n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor::Tensor(std::vector<std::size_t> shape, float value)
    : shape_(std::move(shape)), data_(shape_numel(shape_), value) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_numel(shape_))
    throw std::invalid_argument("Tensor: data size does not match shape");
}

void Tensor::fill(float v) {
  std::fill(data_.begin(), data_.end(), v);
  ++version_;
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  if (shape_numel(new_shape) != numel())
    throw std::invalid_argument("Tensor::reshaped: numel mismatch");
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::reshape(std::vector<std::size_t> new_shape) {
  if (shape_numel(new_shape) != numel())
    throw std::invalid_argument("Tensor::reshape: numel mismatch");
  shape_ = std::move(new_shape);
  ++version_;
}

void Tensor::resize(const std::vector<std::size_t>& new_shape) {
  shape_ = new_shape;  // copy-assign reuses shape_'s capacity
  data_.resize(shape_numel(shape_));
  ++version_;
}

void Tensor::resize(std::initializer_list<std::size_t> new_shape) {
  shape_.assign(new_shape);
  data_.resize(shape_numel(shape_));
  ++version_;
}

std::string Tensor::shape_str() const {
  std::ostringstream oss;
  oss << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) oss << ", ";
    oss << shape_[i];
  }
  oss << "]";
  return oss.str();
}

void Tensor::check_same_shape(const Tensor& a, const Tensor& b, const char* msg) {
  if (!a.same_shape(b))
    throw std::invalid_argument(std::string(msg) + ": shape mismatch " +
                                a.shape_str() + " vs " + b.shape_str());
}

}  // namespace gbo
