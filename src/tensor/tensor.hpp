// Dense N-dimensional float tensor with value semantics.
//
// This is the numeric substrate for the NN framework and the crossbar
// simulator. Design choices:
//  * float32 storage in a contiguous std::vector (row-major / C order);
//  * value semantics (copy = deep copy) — the framework never shares
//    mutable buffers, which keeps the backward passes easy to audit;
//  * shape checked at every access in debug builds, cheap unchecked
//    data() access for inner loops in release builds;
//  * a per-object mutation counter (version(), DESIGN.md §6) so frozen-
//    weight caches can detect staleness without hashing contents.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace gbo {

class Tensor {
 public:
  /// Empty 0-element tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);

  /// Tensor filled with `value`.
  Tensor(std::vector<std::size_t> shape, float value);

  /// Tensor wrapping a copy of the provided data (size must match shape).
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  // Copies and moves preserve value semantics; the assignment operators
  // additionally bump the *target's* mutation counter (its contents
  // changed), and deliberately never adopt the source's counter — versions
  // are per-object timelines, so adopting one could collide with a stamp a
  // cache already took from this object.
  Tensor(const Tensor&) = default;
  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(const Tensor& other) {
    shape_ = other.shape_;
    data_ = other.data_;
    ++version_;
    return *this;
  }
  Tensor& operator=(Tensor&& other) noexcept {
    shape_ = std::move(other.shape_);
    data_ = std::move(other.data_);
    ++version_;
    return *this;
  }

  static Tensor zeros(std::vector<std::size_t> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<std::size_t> shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor ones(std::vector<std::size_t> shape) { return full(std::move(shape), 1.0f); }

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t ndim() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() {
    ++version_;
    return data_.data();
  }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() {
    ++version_;
    return data_;
  }
  const std::vector<float>& vec() const { return data_; }

  /// Flat element access.
  float& operator[](std::size_t i) {
    assert(i < data_.size());
    ++version_;
    return data_[i];
  }
  float operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  /// Multi-dimensional access (2D..4D convenience overloads).
  float& at(std::size_t i, std::size_t j) {
    assert(ndim() == 2);
    ++version_;
    return data_[i * shape_[1] + j];
  }
  float at(std::size_t i, std::size_t j) const {
    assert(ndim() == 2);
    return data_[i * shape_[1] + j];
  }
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    assert(ndim() == 4);
    ++version_;
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
    assert(ndim() == 4);
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  /// In-place fill.
  void fill(float v);

  /// Returns a tensor with the same data and a new shape (numel must match).
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  /// In-place reshape (numel must match).
  void reshape(std::vector<std::size_t> new_shape);

  /// In-place re-dimension: unlike reshape(), numel may change and storage
  /// is resized to fit. Existing data/shape capacity is reused, so cycling a
  /// buffer through recurring shapes stops allocating once its capacity has
  /// converged (the tensor-recycler contract, see tensor/arena.hpp). Grown
  /// storage is zero-filled by vector::resize; contents are otherwise
  /// unspecified and callers are expected to overwrite them.
  void resize(const std::vector<std::size_t>& new_shape);
  void resize(std::initializer_list<std::size_t> new_shape);

  /// True if shapes are identical.
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Human-readable shape like "[2, 3, 32, 32]".
  std::string shape_str() const;

  /// Throws std::invalid_argument unless shapes match; msg names the caller.
  static void check_same_shape(const Tensor& a, const Tensor& b, const char* msg);

  /// Mutation counter (DESIGN.md §6): strictly increases on every mutating
  /// operation on *this object* — non-const data()/vec()/element access,
  /// fill/resize/reshape, and both assignment operators (which is how
  /// optimizer steps and state loading invalidate caches: they mutate
  /// through these APIs). Frozen-weight caches (gemm::PackedWeightCache)
  /// stamp their packed panels with it; an equal version therefore implies
  /// identical contents. Versions are only meaningful per object — never
  /// compare them across tensors. The counter is bumped when a mutable
  /// pointer is *handed out*, so a caller that stashes a raw pointer and
  /// writes through it later must not interleave cache reads in between
  /// (no code in this repository does).
  std::uint64_t version() const { return version_; }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
  std::uint64_t version_ = 1;
};

/// Product of dims, with overflow-free semantics for the sizes used here.
std::size_t shape_numel(const std::vector<std::size_t>& shape);

}  // namespace gbo
