#include "tensor/im2col.hpp"

#include "common/thread_pool.hpp"

namespace gbo {

Tensor im2col(const Tensor& input, const ConvGeom& g) {
  Tensor cols({input.ndim() == 4 ? input.dim(0) * g.out_h() * g.out_w() : 0,
               g.patch_len()});
  im2col_into(input, g, cols.data());
  return cols;
}

void im2col_into(const Tensor& input, const ConvGeom& g, float* out) {
  if (input.ndim() != 4)
    throw std::invalid_argument("im2col: expected NCHW input, got " + input.shape_str());
  const std::size_t batch = input.dim(0);
  if (input.dim(1) != g.in_c || input.dim(2) != g.in_h || input.dim(3) != g.in_w)
    throw std::invalid_argument("im2col: input does not match geometry");

  const std::size_t oh = g.out_h(), ow = g.out_w(), plen = g.patch_len();
  const float* in = input.data();
  const std::size_t chw = g.in_c * g.in_h * g.in_w;

  // Each (image, output row) writes a disjoint slice of `cols`, so the
  // flattened loop threads freely (deterministic: pure writes).
  parallel_for(0, batch * oh, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t noy = lo; noy < hi; ++noy) {
      const std::size_t n = noy / oh, oy = noy % oh;
      const float* img = in + n * chw;
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float* row = out + ((n * oh + oy) * ow + ox) * plen;
        const std::ptrdiff_t iy0 =
            static_cast<std::ptrdiff_t>(oy * g.stride) - static_cast<std::ptrdiff_t>(g.pad);
        const std::ptrdiff_t ix0 =
            static_cast<std::ptrdiff_t>(ox * g.stride) - static_cast<std::ptrdiff_t>(g.pad);
        std::size_t idx = 0;
        for (std::size_t c = 0; c < g.in_c; ++c) {
          const float* chan = img + c * g.in_h * g.in_w;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy = iy0 + static_cast<std::ptrdiff_t>(ky);
            const bool y_ok = iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            for (std::size_t kx = 0; kx < g.k; ++kx, ++idx) {
              const std::ptrdiff_t ix = ix0 + static_cast<std::ptrdiff_t>(kx);
              row[idx] = (y_ok && ix >= 0 && ix < static_cast<std::ptrdiff_t>(g.in_w))
                             ? chan[iy * static_cast<std::ptrdiff_t>(g.in_w) + ix]
                             : 0.0f;
            }
          }
        }
      }
    }
  });
}

void rows_to_nchw_into(const float* rows, std::size_t batch, std::size_t out_c,
                       std::size_t oh, std::size_t ow, float* dst) {
  for (std::size_t n = 0; n < batch; ++n)
    for (std::size_t y = 0; y < oh; ++y)
      for (std::size_t x = 0; x < ow; ++x) {
        const float* row = rows + ((n * oh + y) * ow + x) * out_c;
        for (std::size_t c = 0; c < out_c; ++c)
          dst[((n * out_c + c) * oh + y) * ow + x] = row[c];
      }
}

Tensor col2im(const Tensor& columns, std::size_t batch, const ConvGeom& g) {
  const std::size_t oh = g.out_h(), ow = g.out_w(), plen = g.patch_len();
  if (columns.ndim() != 2 || columns.dim(0) != batch * oh * ow || columns.dim(1) != plen)
    throw std::invalid_argument("col2im: column shape does not match geometry");

  Tensor grad({batch, g.in_c, g.in_h, g.in_w});
  float* out = grad.data();
  const float* in = columns.data();
  const std::size_t chw = g.in_c * g.in_h * g.in_w;

  // Overlapping patches accumulate within one image, but images are
  // independent: thread over the batch only.
  parallel_for(0, batch, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t n = lo; n < hi; ++n) {
      float* img = out + n * chw;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float* row = in + ((n * oh + oy) * ow + ox) * plen;
          const std::ptrdiff_t iy0 =
              static_cast<std::ptrdiff_t>(oy * g.stride) - static_cast<std::ptrdiff_t>(g.pad);
          const std::ptrdiff_t ix0 =
              static_cast<std::ptrdiff_t>(ox * g.stride) - static_cast<std::ptrdiff_t>(g.pad);
          std::size_t idx = 0;
          for (std::size_t c = 0; c < g.in_c; ++c) {
            float* chan = img + c * g.in_h * g.in_w;
            for (std::size_t ky = 0; ky < g.k; ++ky) {
              const std::ptrdiff_t iy = iy0 + static_cast<std::ptrdiff_t>(ky);
              const bool y_ok = iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
              for (std::size_t kx = 0; kx < g.k; ++kx, ++idx) {
                const std::ptrdiff_t ix = ix0 + static_cast<std::ptrdiff_t>(kx);
                if (y_ok && ix >= 0 && ix < static_cast<std::ptrdiff_t>(g.in_w))
                  chan[iy * static_cast<std::ptrdiff_t>(g.in_w) + ix] += row[idx];
              }
            }
          }
        }
      }
    }
  });
  return grad;
}

}  // namespace gbo
