#include "tensor/arena.hpp"

#include "obs/trace.hpp"

#include <algorithm>
#include <cstdint>

namespace gbo {

std::byte* ScratchArena::alloc_bytes(std::size_t n) {
  n = (n + kAlign - 1) & ~(kAlign - 1);
  for (;;) {
    if (cur_ < chunks_.size()) {
      Chunk& c = chunks_[cur_];
      if (c.cap - off_ >= n) {
        std::byte* p = c.base + off_;
        off_ += n;
        stats_.bump_high_water_bytes =
            std::max(stats_.bump_high_water_bytes, prefix_[cur_] + off_);
        return p;
      }
      ++cur_;
      off_ = 0;
      continue;
    }
    // Need a fresh chunk: at least the request, and geometric growth so the
    // chunk count (and the per-request frame bookkeeping) stays tiny.
    const std::size_t cap =
        std::max(n, chunks_.empty() ? kMinChunk : chunks_.back().cap * 2);
    Chunk c;
    c.mem = std::make_unique<std::byte[]>(cap + kAlign - 1);
    const auto addr = reinterpret_cast<std::uintptr_t>(c.mem.get());
    c.base = c.mem.get() + ((kAlign - addr % kAlign) % kAlign);
    c.cap = cap;
    prefix_.push_back(chunks_.empty() ? 0 : prefix_.back() + chunks_.back().cap);
    chunks_.push_back(std::move(c));
    ++stats_.system_allocs;
    stats_.reserved_bytes += cap;
    GBO_TRACE_EVENT(obs::EventType::kArenaAlloc, stats_.system_allocs, 0, cap);
  }
}

float* ScratchArena::alloc_floats(std::size_t n) {
  if (n == 0) return nullptr;
  return reinterpret_cast<float*>(alloc_bytes(n * sizeof(float)));
}

double* ScratchArena::alloc_doubles(std::size_t n) {
  if (n == 0) return nullptr;
  return reinterpret_cast<double*>(alloc_bytes(n * sizeof(double)));
}

std::uint64_t* ScratchArena::alloc_words(std::size_t n) {
  if (n == 0) return nullptr;
  return reinterpret_cast<std::uint64_t*>(
      alloc_bytes(n * sizeof(std::uint64_t)));
}

Tensor ScratchArena::take_pooled(std::size_t numel) {
  if (pool_.empty()) {
    ++stats_.system_allocs;
    stats_.reserved_bytes += numel * sizeof(float);
    GBO_TRACE_EVENT(obs::EventType::kArenaAlloc, stats_.system_allocs, 0,
                    numel * sizeof(float));
    return Tensor();
  }
  Tensor t = std::move(pool_.back());
  pool_.pop_back();
  const std::size_t cap = t.vec().capacity();
  if (cap < numel) {
    ++stats_.system_allocs;
    stats_.reserved_bytes += (numel - cap) * sizeof(float);
    GBO_TRACE_EVENT(obs::EventType::kArenaAlloc, stats_.system_allocs, 0,
                    (numel - cap) * sizeof(float));
  }
  return t;
}

Tensor ScratchArena::take(const std::vector<std::size_t>& shape) {
  Tensor t = take_pooled(shape_numel(shape));
  t.resize(shape);
  return t;
}

Tensor ScratchArena::take(std::initializer_list<std::size_t> shape) {
  std::size_t numel = 1;
  for (std::size_t d : shape) numel *= d;
  Tensor t = take_pooled(numel);
  t.resize(shape);
  return t;
}

void ScratchArena::put(Tensor&& t) {
  if (t.vec().capacity() == 0) return;  // nothing worth recycling
  pool_.push_back(std::move(t));
}

}  // namespace gbo
