// Per-worker scratch arena for the stateless inference path.
//
// A long-lived serving worker runs the same network shapes request after
// request; the general-purpose allocator is pure overhead on that loop. The
// arena gives the infer path two recycled memory sources:
//
//  * a bump-pointer region for raw in-layer scratch (im2col patch matrices,
//    GEMM row buffers, binarized weights, pre-drawn pulse noise). ArenaFrame
//    saves/restores the bump offset around each layer, so the region's
//    footprint is the *maximum* single-layer need, not the sum, and memory
//    is reused across layers and requests without ever being freed;
//  * a tensor recycler for the Tensor values that flow between layers
//    (activation outputs, hook input copies). take() re-uses a pooled
//    buffer's capacity in place; put() returns a finished intermediate.
//
// Neither source changes any arithmetic: arena-backed buffers are always
// fully overwritten before use, so infer(x, ctx) is bitwise identical with
// and without an arena (tests/test_arena.cpp).
//
// Lifetime rules (DESIGN.md §4): an arena belongs to exactly one worker
// thread — arenas are never shared, so none of this is locked. Bump
// pointers are valid only inside the ArenaFrame that allocated them.
// Chunks are only released at destruction; after a warm-up request has
// sized the chunks and the pool, steady-state serving performs zero heap
// allocations from the arena (stats() makes that auditable).
#pragma once

#include "tensor/tensor.hpp"

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <vector>

namespace gbo {

class ScratchArena {
 public:
  struct Stats {
    /// Heap allocations taken on behalf of arena users: bump chunk
    /// allocations plus tensor-pool misses and capacity growths. Flat in
    /// steady state — the serving bench gates on the delta staying zero.
    std::size_t system_allocs = 0;
    /// Total bytes held by the arena (chunks + pooled tensor capacity).
    std::size_t reserved_bytes = 0;
    /// Maximum concurrently live bump bytes seen so far.
    std::size_t bump_high_water_bytes = 0;
  };

  ScratchArena() { pool_.reserve(kPoolReserve); }
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  // -- bump region ----------------------------------------------------------

  /// 64-byte-aligned scratch; contents are uninitialized. Valid until the
  /// enclosing ArenaFrame pops (or reset()). n == 0 returns nullptr.
  float* alloc_floats(std::size_t n);
  double* alloc_doubles(std::size_t n);
  std::uint64_t* alloc_words(std::size_t n);  // bit-packed kernel operands

  /// Rewinds the bump region to empty (no frames may be live). Keeps all
  /// memory for reuse.
  void reset() { cur_ = 0; off_ = 0; }

  // -- tensor recycler ------------------------------------------------------

  /// A tensor of `shape` whose storage is recycled from the pool when
  /// possible. Contents are unspecified — callers must fully overwrite.
  Tensor take(const std::vector<std::size_t>& shape);
  Tensor take(std::initializer_list<std::size_t> shape);

  /// Returns a finished tensor's storage to the pool.
  void put(Tensor&& t);

  Stats stats() const { return stats_; }

 private:
  friend class ArenaFrame;

  static constexpr std::size_t kAlign = 64;
  static constexpr std::size_t kMinChunk = 1u << 16;  // 64 KiB
  static constexpr std::size_t kPoolReserve = 64;

  struct Chunk {
    std::unique_ptr<std::byte[]> mem;  // over-allocated by kAlign - 1
    std::byte* base = nullptr;         // aligned start
    std::size_t cap = 0;
  };

  std::byte* alloc_bytes(std::size_t n);
  Tensor take_pooled(std::size_t numel);

  std::vector<Chunk> chunks_;
  std::vector<std::size_t> prefix_;  // bytes in chunks before index i
  std::size_t cur_ = 0;              // active chunk index
  std::size_t off_ = 0;              // bump offset within the active chunk
  std::vector<Tensor> pool_;
  Stats stats_;
};

/// RAII bump-region scope: restores the arena's bump pointer on exit, so a
/// layer's raw scratch is reclaimed the moment the layer returns. Accepts
/// nullptr (no arena attached) as a no-op, which lets the shared layer
/// bodies run identically with and without an arena.
class ArenaFrame {
 public:
  explicit ArenaFrame(ScratchArena* arena) : arena_(arena) {
    if (arena_) {
      chunk_ = arena_->cur_;
      off_ = arena_->off_;
    }
  }
  ~ArenaFrame() {
    if (arena_) {
      arena_->cur_ = chunk_;
      arena_->off_ = off_;
    }
  }
  ArenaFrame(const ArenaFrame&) = delete;
  ArenaFrame& operator=(const ArenaFrame&) = delete;

 private:
  ScratchArena* arena_;
  std::size_t chunk_ = 0, off_ = 0;
};

}  // namespace gbo
