// Cache-blocked, register-tiled, multithreaded GEMM micro-kernels with
// packed-panel operands.
//
// The Goto/van de Geijn decomposition specialized to this project's needs:
// row-major float32, three transpose variants (the only ones the NN and
// crossbar layers use), and bitwise-reproducible threading.
//
//   * Loop structure: rows of C are split into MC-row slabs (the threading
//     unit); within a slab, K is blocked by KC and columns by NC so the
//     active B panel stays L2-resident; the innermost tile is an MR×NR
//     register block accumulated over the K block.
//   * Panel packing (DESIGN.md §5): above a small-problem cutoff, B is
//     repacked once into contiguous NR-column strips and each slab packs
//     its A rows into MR-row strips, so the micro-kernel streams both
//     operands from dense, 64-byte-aligned panels instead of strided reads.
//     Ragged edges are zero-padded inside the panels and masked at the C
//     store, so every shape runs the same register-tiled kernel — nothing
//     falls back to the naive loops.
//   * Per-element arithmetic order depends only on the fixed block sizes,
//     never on the thread count or on packing — each C element is produced
//     by exactly one thread accumulating k-ascending in KC chunks, so
//     results are identical at 1..N threads and bitwise identical between
//     the packed and unpacked paths (tests/test_gemm.cpp).
//   * Thread count: GBO_NUM_THREADS / ThreadPool (common/thread_pool.hpp).
//
// The seed's naive loops are retained below as `naive_*` — they are the
// correctness oracle for tests/test_gemm.cpp and the baseline the
// bench_micro_mvm speedup numbers are measured against.
//
// All pointers are row-major with explicit leading dimensions; matrices may
// not alias. Callers (ops::matmul*) own shape validation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <type_traits>
#include <vector>

namespace gbo {
class ScratchArena;
}

namespace gbo::gemm {

/// Register-tile dimensions, exposed because they define the packed panel
/// layouts below (block sizes MC/KC/NC stay internal).
inline constexpr std::size_t kMR = 6;   // rows per packed A strip
inline constexpr std::size_t kNR = 16;  // columns per packed B strip

/// C = A·B (+ C when accumulate): A[m,k] lda, B[k,n] ldb, C[m,n] ldc.
/// Dispatches to the packed-panel path for non-tiny problems.
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate);

/// C = A·Bᵀ: A[m,k] lda, B[n,k] ldb, C[m,n] ldc. Large-m shapes pack B
/// directly from its transposed storage into column panels and run the
/// packed kernel; `pack_scratch` (gemm_nt_scratch_floats(m, n, k) floats,
/// 64-byte aligned), when given, provides the panel buffer so zero-alloc
/// callers (the arena-backed serving path) keep the kernel off the heap.
/// nullptr allocates internally.
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, float* pack_scratch = nullptr);

/// True when gemm_nt(m, n, k, ...) takes the packed-panel path and would
/// therefore use (or allocate) a packed-B buffer. Shape-only predicate:
/// the conv layer uses it to dispatch its direct kernel onto exactly the
/// shapes whose im2col route would run the packed kernel.
bool gemm_nt_packs_b(std::size_t m, std::size_t n, std::size_t k);

/// Floats of pack scratch gemm_nt needs for this shape (0 when the shape
/// takes a direct path). Lets zero-alloc callers reserve exactly enough.
std::size_t gemm_nt_scratch_floats(std::size_t m, std::size_t n,
                                   std::size_t k);

/// C += Aᵀ·B: A[k,m] lda, B[k,n] ldb, C[m,n] ldc.
void gemm_tn_acc(std::size_t m, std::size_t n, std::size_t k, const float* A,
                 std::size_t lda, const float* B, std::size_t ldb, float* C,
                 std::size_t ldc);

/// Row-stable C = A·Bᵀ: the per-row multi-accumulator dot kernel for every
/// m, with no size dispatch at all — row i's float operations (and
/// therefore its bit pattern) are identical whether it is computed alone or
/// inside any batch. This is the NN layers' non-panel route (DESIGN.md §6):
/// unlike gemm_nt, whose small/direct/packed cutoffs depend on m, this
/// kernel lets the serving runtime fuse micro-batches without moving any
/// row across a dispatch boundary. No packing, no scratch.
void gemm_nt_rowwise(std::size_t m, std::size_t n, std::size_t k,
                     const float* A, std::size_t lda, const float* B,
                     std::size_t ldb, float* C, std::size_t ldc);

/// m-independent panel dispatch for the NN layers' frozen-weight A·Bᵀ
/// products (DESIGN.md §6): true when the weight [n, k] is big enough that
/// streaming cached packed panels beats the per-row dot kernel. A function
/// of the weight shape alone — never of the batch — so a layer's kernel
/// cannot change across batching boundaries.
bool panels_for_weight(std::size_t n, std::size_t k);

/// Process-wide count of B-panel pack operations (pack_b / pack_b_t, which
/// every packing entry point funnels through). Relaxed atomic; the serving
/// bench diffs it across a steady-state run to prove that cached panels
/// have amortized weight packing to zero (A-panel packs are per-request by
/// design and deliberately not counted).
std::uint64_t b_pack_count();

// ---- packed-panel building blocks ----------------------------------------
//
// Shared by gemm_nn/gemm_nt and the direct convolution kernel
// (nn/conv2d.cpp), which fuses its im2col patch gather into the A-panel
// packer and therefore needs the layouts public.

/// Size in floats of a packed-B buffer for B[k, n]: k rows × n rounded up
/// to a whole number of kNR-column strips (the padding columns are zero).
std::size_t packed_b_floats(std::size_t n, std::size_t k);

/// Packs row-major B[k, n] (ldb) into KC-row blocks of kNR-column strips:
/// element (p, j) of block pc lives at
///   dst[pc·n_round + (j/kNR)·kNR·kc + (p − pc)·kNR + j%kNR].
/// Columns past n are zeroed. Threaded; pure data movement.
void pack_b(std::size_t k, std::size_t n, const float* B, std::size_t ldb,
            float* dst);

/// Same packed layout, reading B stored transposed as B[n, k] (ldb) — the
/// weight matrices of the NT product — without materializing Bᵀ first.
void pack_b_t(std::size_t n, std::size_t k, const float* B, std::size_t ldb,
              float* dst);

/// Fills `dst` with the A panel for C rows [i0, i1) and the K block
/// [pc, pc + kc): kMR-row strips, element (r, p) of strip s at
/// dst[s·kMR·kc + p·kMR + (r − i0 − s·kMR)], rows past i1 zeroed.
/// `i1 − i0` never exceeds the internal MC slab height.
void pack_a_panel(const float* A, std::size_t lda, std::size_t i0,
                  std::size_t i1, std::size_t pc, std::size_t kc, float* dst);

/// Caller-supplied A-panel producer: must fill `dst` exactly as
/// pack_a_panel would, but may synthesize the values from any source (the
/// direct conv kernel gathers 3×3 input patches here, skipping im2col).
///
/// Non-owning function reference (not std::function): a callable with
/// capture state would heap-allocate on type erasure, putting one malloc
/// on every serving-path conv call. The referenced callable only needs to
/// outlive the gemm_prepacked_b call it is passed to.
class PanelPacker {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, PanelPacker>>>
  PanelPacker(const F& f)  // NOLINT: implicit by design, function_ref-style
      : ctx_(const_cast<void*>(static_cast<const void*>(&f))),
        fn_([](void* ctx, std::size_t i0, std::size_t i1, std::size_t pc,
               std::size_t kc, float* dst) {
          (*static_cast<const F*>(ctx))(i0, i1, pc, kc, dst);
        }) {}

  void operator()(std::size_t i0, std::size_t i1, std::size_t pc,
                  std::size_t kc, float* dst) const {
    fn_(ctx_, i0, i1, pc, kc, dst);
  }

 private:
  void* ctx_;
  void (*fn_)(void*, std::size_t, std::size_t, std::size_t, std::size_t,
              float*);
};

/// The packed-panel multiply core: C = (packed A)·(packed B) (+ C when
/// accumulate), with `packedB` laid out by pack_b/pack_b_t and A panels
/// produced on demand by `pack_a` into per-thread scratch. Bitwise
/// reproducible at any thread count; bitwise equal to the unpacked path.
void gemm_prepacked_b(std::size_t m, std::size_t n, std::size_t k,
                      const PanelPacker& pack_a, const float* packedB,
                      float* C, std::size_t ldc, bool accumulate);

/// Owning handle for a reusable packed-B panel set (DESIGN.md §6). The
/// panel bytes are exactly what pack_b / pack_b_t produce, so running the
/// packed kernel over a PackedB is bitwise equal to a fresh-pack call on
/// the same matrix. Degenerate shapes (n == 0 or k == 0) yield an empty
/// handle that the kernel entry points treat as "no contribution".
struct PackedB {
  std::vector<float> panels;
  std::size_t n = 0, k = 0;
  bool empty() const { return panels.empty(); }
};

/// Packs row-major B[k, n] (ldb) into a reusable panel handle.
PackedB prepack_b(std::size_t k, std::size_t n, const float* B,
                  std::size_t ldb);

/// Same from transposed storage B[n, k] (ldb) — the weight matrices of the
/// A·Bᵀ products — without materializing Bᵀ.
PackedB prepack_b_t(std::size_t n, std::size_t k, const float* B,
                    std::size_t ldb);

/// The NN layers' shared fresh-pack fallback for uncached effective
/// weights: packs B[n, k] (transposed storage, ldb) into arena bump
/// scratch when `arena` is non-null (the caller's ArenaFrame owns the
/// lifetime), else into `own`, and returns the panel pointer.
const float* pack_fresh_b_t(std::size_t n, std::size_t k, const float* B,
                            std::size_t ldb, ScratchArena* arena,
                            std::vector<float>* own);

/// C = A·(packed B) (+ C when accumulate): the packed kernel over an
/// external panel buffer laid out by pack_b/pack_b_t (or held in a
/// PackedB). A[m, k] lda, C[m, n] ldc. Bitwise equal to gemm_nn_packed /
/// gemm_nt on the packing path for the same operands, at any thread count.
void gemm_prepacked(std::size_t m, std::size_t n, std::size_t k,
                    const float* A, std::size_t lda, const float* packedB,
                    float* C, std::size_t ldc, bool accumulate = false);

/// The version-stamped double-checked fill shared by every frozen-weight
/// cache (DESIGN.md §6): ensure() runs `fill` under the mutex iff
/// `version` differs from the stamp of the last fill, publishing the
/// filled buffers with a release store that pairs with the lock-free
/// acquire fast path. Returns true when it filled. The cached source must
/// not be mutated concurrently with readers — the const-infer contract.
/// Copies reset the gate (stamps are per-object timelines and must never
/// be adopted across objects).
class VersionGate {
 public:
  VersionGate() = default;
  VersionGate(const VersionGate&) {}
  VersionGate& operator=(const VersionGate&) { return *this; }

  template <typename Fn>
  bool ensure(std::uint64_t version, Fn&& fill) const {
    if (stamp_.load(std::memory_order_acquire) == version) return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (stamp_.load(std::memory_order_relaxed) == version) return false;
    fill();
    stamp_.store(version, std::memory_order_release);
    return true;
  }

 private:
  mutable std::mutex mu_;
  mutable std::atomic<std::uint64_t> stamp_{0};  // 0 = empty (versions >= 1)
};

/// Cross-request cache of one frozen weight matrix's packed panels,
/// stamped with the weight tensor's mutation counter (Tensor::version(),
/// DESIGN.md §6). get() repacks only when the stamp differs — steady-state
/// serving therefore performs zero weight packs. Concurrency and copy
/// semantics come from VersionGate.
class PackedWeightCache {
 public:
  PackedWeightCache() = default;
  PackedWeightCache(const PackedWeightCache&) {}
  PackedWeightCache& operator=(const PackedWeightCache&) { return *this; }

  /// Packed panels for the weight `B` — transposed storage [n, k] when
  /// `transposed` (pack_b_t), row-major [k, n] otherwise (pack_b) —
  /// repacked only when `version` differs from the stamp of the last pack.
  /// `version` must come from one tensor object's version() timeline.
  const float* get(const float* B, std::size_t ldb, std::size_t n,
                   std::size_t k, bool transposed,
                   std::uint64_t version) const;

  /// Lifetime repack count (1 after warmup for a frozen weight).
  std::uint64_t packs() const {
    return packs_.load(std::memory_order_relaxed);
  }

 private:
  VersionGate gate_;
  mutable std::vector<float> panels_;
  mutable std::atomic<std::uint64_t> packs_{0};
};

/// Forced-path entry points for tests and benches; `gemm_nn` dispatches
/// between them by shape. Bitwise equal to each other for every shape.
void gemm_nn_packed(std::size_t m, std::size_t n, std::size_t k,
                    const float* A, std::size_t lda, const float* B,
                    std::size_t ldb, float* C, std::size_t ldc,
                    bool accumulate, float* pack_scratch = nullptr);
void gemm_nn_unpacked(std::size_t m, std::size_t n, std::size_t k,
                      const float* A, std::size_t lda, const float* B,
                      std::size_t ldb, float* C, std::size_t ldc,
                      bool accumulate);

// ---- retained naive reference kernels (seed implementations) -------------

/// Seed ikj loop: C += A·B (callers zero C for the plain product).
void naive_gemm_nn_acc(std::size_t m, std::size_t n, std::size_t k,
                       const float* A, const float* B, float* C);

/// Seed dot-product loop: C = A·Bᵀ.
void naive_gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* A,
                   const float* B, float* C);

/// Seed outer-product loop: C += Aᵀ·B.
void naive_gemm_tn_acc(std::size_t m, std::size_t n, std::size_t k,
                       const float* A, const float* B, float* C);

}  // namespace gbo::gemm
