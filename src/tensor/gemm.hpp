// Cache-blocked, register-tiled, multithreaded GEMM micro-kernels.
//
// The Goto/van de Geijn decomposition specialized to this project's needs:
// row-major float32, three transpose variants (the only ones the NN and
// crossbar layers use), and bitwise-reproducible threading.
//
//   * Loop structure: rows of C are split into MC-row slabs (the threading
//     unit); within a slab, K is blocked by KC and columns by NC so the
//     active B panel stays L2-resident; the innermost tile is an MR×NR
//     register block accumulated over the K block.
//   * Per-element arithmetic order depends only on the fixed block sizes,
//     never on the thread count — each C element is produced by exactly one
//     thread, so results are identical at 1..N threads.
//   * Thread count: GBO_NUM_THREADS / ThreadPool (common/thread_pool.hpp).
//
// The seed's naive loops are retained below as `naive_*` — they are the
// correctness oracle for tests/test_gemm.cpp and the baseline the
// bench_micro_mvm speedup numbers are measured against.
//
// All pointers are row-major with explicit leading dimensions; matrices may
// not alias. Callers (ops::matmul*) own shape validation.
#pragma once

#include <cstddef>

namespace gbo::gemm {

/// C = A·B (+ C when accumulate): A[m,k] lda, B[k,n] ldb, C[m,n] ldc.
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate);

/// C = A·Bᵀ: A[m,k] lda, B[n,k] ldb, C[m,n] ldc. Large-m shapes stream
/// through a materialized Bᵀ panel of k·n floats; `bt_scratch` (size k·n),
/// when given, provides that panel so zero-alloc callers (the arena-backed
/// serving path) keep the kernel off the heap. nullptr allocates internally.
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, float* bt_scratch = nullptr);

/// True when gemm_nt(m, n, k, ...) takes the transposed-panel path and
/// would therefore use (or allocate) the k·n Bᵀ buffer. Lets zero-alloc
/// callers reserve scratch only for the shapes that need it.
bool gemm_nt_uses_bt(std::size_t m, std::size_t n, std::size_t k);

/// C += Aᵀ·B: A[k,m] lda, B[k,n] ldb, C[m,n] ldc.
void gemm_tn_acc(std::size_t m, std::size_t n, std::size_t k, const float* A,
                 std::size_t lda, const float* B, std::size_t ldb, float* C,
                 std::size_t ldc);

// ---- retained naive reference kernels (seed implementations) -------------

/// Seed ikj loop: C += A·B (callers zero C for the plain product).
void naive_gemm_nn_acc(std::size_t m, std::size_t n, std::size_t k,
                       const float* A, const float* B, float* C);

/// Seed dot-product loop: C = A·Bᵀ.
void naive_gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* A,
                   const float* B, float* C);

/// Seed outer-product loop: C += Aᵀ·B.
void naive_gemm_tn_acc(std::size_t m, std::size_t n, std::size_t k,
                       const float* A, const float* B, float* C);

}  // namespace gbo::gemm
