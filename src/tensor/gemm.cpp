#include "tensor/gemm.hpp"

#include "common/thread_pool.hpp"
#include "obs/trace.hpp"
#include "tensor/arena.hpp"

#include <cassert>
#include <cstring>
#include <vector>

namespace gbo::gemm {

namespace {

// Blocking parameters (floats): the KC×NC panel of B (~256 KB) targets L2,
// the MR×NR register tile targets the FMA register file (12 vector
// accumulators at AVX2 widths). MC is also the threading slab, so per-slab
// work stays large enough to amortize dispatch. NC is a whole number of NR
// strips, so packed strips never straddle an NC block.
constexpr std::size_t MC = 64;
constexpr std::size_t KC = 256;
constexpr std::size_t NC = 256;
constexpr std::size_t MR = kMR;
constexpr std::size_t NR = kNR;
static_assert(NC % NR == 0, "packed B strips must tile NC blocks exactly");

// Problems below this flop count run the short direct kernels: blocking and
// packing buffers only pay off once the operands outgrow L1.
constexpr std::size_t kSmallFlops = 32 * 1024;

// Per-thread A-panel scratch for the packed path: one MC-row slab packed
// into MR strips over a KC-deep block. A fixed thread_local array (≈66 KB)
// — never heap-allocated, so the packed kernel adds zero steady-state
// allocations on any thread, serving workers included.
constexpr std::size_t kAPanelFloats = ((MC + MR - 1) / MR) * MR * KC;
alignas(64) thread_local float tl_apanel[kAPanelFloats];

// Retune guards, checked once at build time (NC % NR is asserted above):
// the buffer's own formula is definitionally self-consistent, so what
// needs validating is the pair of preconditions the prepacked driver
// relies on — slabs never exceed MC rows and K blocks never exceed KC —
// which gemm_prepacked_b asserts per slab in debug builds below.
static_assert(MR >= 1 && NR % 8 == 0,
              "register tile must be non-degenerate and vector-lane whole");

// Process-wide B-panel pack counter (see gemm.hpp: b_pack_count).
std::atomic<std::uint64_t> g_b_packs{0};

void zero_rows(float* C, std::size_t m, std::size_t n, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i)
    std::memset(C + i * ldc, 0, n * sizeof(float));
}

#if defined(__GNUC__) || defined(__clang__)

// Explicit 8-wide vector lanes (GCC/Clang vector extensions): auto-
// vectorization does not reliably promote a float[MR][NR] accumulator tile
// to registers across the runtime-bound k loop, so the 6×16 kernel names
// its 12 accumulators outright. Targets one AVX2 FMA tile (15 of 16 ymm);
// on narrower ISAs the compiler legalizes each op into multiple registers,
// which still beats the scalar fallback.
typedef float vf8 __attribute__((vector_size(32)));

inline vf8 loadu8(const float* p) {
  vf8 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}
inline void storeu8(float* p, vf8 v) { __builtin_memcpy(p, &v, sizeof(v)); }
inline vf8 splat8(float x) { return vf8{x, x, x, x, x, x, x, x}; }

// Full MR×NR register tile: C[i:i+6, j:j+16] += A[i:i+6, pc:pc+kc] *
// B[pc:pc+kc, j:j+16]. Lane c of each accumulator only ever combines with
// column j+c, so per-element accumulation order matches the scalar edge
// kernel's k-ascending order.
void micro_full(const float* __restrict A, std::size_t lda,
                const float* __restrict B, std::size_t ldb,
                float* __restrict C, std::size_t ldc, std::size_t kc) {
  static_assert(MR == 6 && NR == 16, "micro_full is specialized for 6x16");
  vf8 c00 = loadu8(C + 0 * ldc), c01 = loadu8(C + 0 * ldc + 8);
  vf8 c10 = loadu8(C + 1 * ldc), c11 = loadu8(C + 1 * ldc + 8);
  vf8 c20 = loadu8(C + 2 * ldc), c21 = loadu8(C + 2 * ldc + 8);
  vf8 c30 = loadu8(C + 3 * ldc), c31 = loadu8(C + 3 * ldc + 8);
  vf8 c40 = loadu8(C + 4 * ldc), c41 = loadu8(C + 4 * ldc + 8);
  vf8 c50 = loadu8(C + 5 * ldc), c51 = loadu8(C + 5 * ldc + 8);
  for (std::size_t p = 0; p < kc; ++p) {
    const float* __restrict b = B + p * ldb;
    const vf8 b0 = loadu8(b), b1 = loadu8(b + 8);
    vf8 a;
    a = splat8(A[0 * lda + p]); c00 += a * b0; c01 += a * b1;
    a = splat8(A[1 * lda + p]); c10 += a * b0; c11 += a * b1;
    a = splat8(A[2 * lda + p]); c20 += a * b0; c21 += a * b1;
    a = splat8(A[3 * lda + p]); c30 += a * b0; c31 += a * b1;
    a = splat8(A[4 * lda + p]); c40 += a * b0; c41 += a * b1;
    a = splat8(A[5 * lda + p]); c50 += a * b0; c51 += a * b1;
  }
  storeu8(C + 0 * ldc, c00); storeu8(C + 0 * ldc + 8, c01);
  storeu8(C + 1 * ldc, c10); storeu8(C + 1 * ldc + 8, c11);
  storeu8(C + 2 * ldc, c20); storeu8(C + 2 * ldc + 8, c21);
  storeu8(C + 3 * ldc, c30); storeu8(C + 3 * ldc + 8, c31);
  storeu8(C + 4 * ldc, c40); storeu8(C + 4 * ldc + 8, c41);
  storeu8(C + 5 * ldc, c50); storeu8(C + 5 * ldc + 8, c51);
}

// The same 6×16 register tile streaming from packed panels: A strip element
// (r, p) at Ap[p*MR + r], B strip row p at Bp[p*NR]. The float operations
// and their order are identical to micro_full — only the address arithmetic
// differs — so the packed and unpacked paths agree bitwise.
void micro_full_packed(const float* __restrict Ap, const float* __restrict Bp,
                       float* __restrict C, std::size_t ldc, std::size_t kc) {
  vf8 c00 = loadu8(C + 0 * ldc), c01 = loadu8(C + 0 * ldc + 8);
  vf8 c10 = loadu8(C + 1 * ldc), c11 = loadu8(C + 1 * ldc + 8);
  vf8 c20 = loadu8(C + 2 * ldc), c21 = loadu8(C + 2 * ldc + 8);
  vf8 c30 = loadu8(C + 3 * ldc), c31 = loadu8(C + 3 * ldc + 8);
  vf8 c40 = loadu8(C + 4 * ldc), c41 = loadu8(C + 4 * ldc + 8);
  vf8 c50 = loadu8(C + 5 * ldc), c51 = loadu8(C + 5 * ldc + 8);
  for (std::size_t p = 0; p < kc; ++p) {
    const float* __restrict b = Bp + p * NR;
    const float* __restrict a6 = Ap + p * MR;
    const vf8 b0 = loadu8(b), b1 = loadu8(b + 8);
    vf8 a;
    a = splat8(a6[0]); c00 += a * b0; c01 += a * b1;
    a = splat8(a6[1]); c10 += a * b0; c11 += a * b1;
    a = splat8(a6[2]); c20 += a * b0; c21 += a * b1;
    a = splat8(a6[3]); c30 += a * b0; c31 += a * b1;
    a = splat8(a6[4]); c40 += a * b0; c41 += a * b1;
    a = splat8(a6[5]); c50 += a * b0; c51 += a * b1;
  }
  storeu8(C + 0 * ldc, c00); storeu8(C + 0 * ldc + 8, c01);
  storeu8(C + 1 * ldc, c10); storeu8(C + 1 * ldc + 8, c11);
  storeu8(C + 2 * ldc, c20); storeu8(C + 2 * ldc + 8, c21);
  storeu8(C + 3 * ldc, c30); storeu8(C + 3 * ldc + 8, c31);
  storeu8(C + 4 * ldc, c40); storeu8(C + 4 * ldc + 8, c41);
  storeu8(C + 5 * ldc, c50); storeu8(C + 5 * ldc + 8, c51);
}

#else  // portable scalar fallbacks

void micro_full(const float* __restrict A, std::size_t lda,
                const float* __restrict B, std::size_t ldb,
                float* __restrict C, std::size_t ldc, std::size_t kc) {
  float acc[MR][NR];
  for (std::size_t r = 0; r < MR; ++r)
    for (std::size_t c = 0; c < NR; ++c) acc[r][c] = C[r * ldc + c];
  for (std::size_t p = 0; p < kc; ++p) {
    const float* __restrict b = B + p * ldb;
    for (std::size_t r = 0; r < MR; ++r) {
      const float a = A[r * lda + p];
      for (std::size_t c = 0; c < NR; ++c) acc[r][c] += a * b[c];
    }
  }
  for (std::size_t r = 0; r < MR; ++r)
    for (std::size_t c = 0; c < NR; ++c) C[r * ldc + c] = acc[r][c];
}

void micro_full_packed(const float* __restrict Ap, const float* __restrict Bp,
                       float* __restrict C, std::size_t ldc, std::size_t kc) {
  float acc[MR][NR];
  for (std::size_t r = 0; r < MR; ++r)
    for (std::size_t c = 0; c < NR; ++c) acc[r][c] = C[r * ldc + c];
  for (std::size_t p = 0; p < kc; ++p) {
    const float* __restrict b = Bp + p * NR;
    const float* __restrict a6 = Ap + p * MR;
    for (std::size_t r = 0; r < MR; ++r) {
      const float a = a6[r];
      for (std::size_t c = 0; c < NR; ++c) acc[r][c] += a * b[c];
    }
  }
  for (std::size_t r = 0; r < MR; ++r)
    for (std::size_t c = 0; c < NR; ++c) C[r * ldc + c] = acc[r][c];
}

#endif

// Variable-size edge tile (mr <= MR, nr <= NR), same accumulation order.
void micro_edge(std::size_t mr, std::size_t nr, const float* __restrict A,
                std::size_t lda, const float* __restrict B, std::size_t ldb,
                float* __restrict C, std::size_t ldc, std::size_t kc) {
  float acc[MR][NR];
  for (std::size_t r = 0; r < mr; ++r)
    for (std::size_t c = 0; c < nr; ++c) acc[r][c] = C[r * ldc + c];
  for (std::size_t p = 0; p < kc; ++p) {
    const float* __restrict b = B + p * ldb;
    for (std::size_t r = 0; r < mr; ++r) {
      const float a = A[r * lda + p];
      for (std::size_t c = 0; c < nr; ++c) acc[r][c] += a * b[c];
    }
  }
  for (std::size_t r = 0; r < mr; ++r)
    for (std::size_t c = 0; c < nr; ++c) C[r * ldc + c] = acc[r][c];
}

// Packed-path edge tile: the panels are already zero-padded to MR×NR, so
// the full register kernel runs into a local tile and only the valid mr×nr
// region is exchanged with C (masked store). The padded rows/columns feed
// zeros into lanes that are never written back; valid lanes execute the
// exact op sequence of the full tile.
void micro_edge_packed(std::size_t mr, std::size_t nr,
                       const float* __restrict Ap, const float* __restrict Bp,
                       float* __restrict C, std::size_t ldc, std::size_t kc) {
  alignas(64) float ct[MR * NR] = {};
  for (std::size_t r = 0; r < mr; ++r)
    for (std::size_t c = 0; c < nr; ++c) ct[r * NR + c] = C[r * ldc + c];
  micro_full_packed(Ap, Bp, ct, NR, kc);
  for (std::size_t r = 0; r < mr; ++r)
    for (std::size_t c = 0; c < nr; ++c) C[r * ldc + c] = ct[r * NR + c];
}

#if defined(__GNUC__) || defined(__clang__)

// Skinny mr<MR tile at full NR width — the unit-batch serving linears,
// where the bottom row strip is 1-5 live rows and micro_edge_packed would
// burn MR/mr of its flops on the panel's zero-padded rows. Accumulates only
// the live rows, straight into C (no local-tile copy: nr == NR means no
// column mask is needed). Each live (r, lane) element runs the identical
// k-ascending op chain as the full tile, so outputs are bitwise unchanged.
template <std::size_t R>
void micro_skinny_packed_r(const float* __restrict Ap,
                           const float* __restrict Bp, float* __restrict C,
                           std::size_t ldc, std::size_t kc) {
  vf8 c0[R], c1[R];
  for (std::size_t r = 0; r < R; ++r) {
    c0[r] = loadu8(C + r * ldc);
    c1[r] = loadu8(C + r * ldc + 8);
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const float* __restrict b = Bp + p * NR;
    const float* __restrict a6 = Ap + p * MR;
    const vf8 b0 = loadu8(b), b1 = loadu8(b + 8);
    for (std::size_t r = 0; r < R; ++r) {
      const vf8 a = splat8(a6[r]);
      c0[r] += a * b0;
      c1[r] += a * b1;
    }
  }
  for (std::size_t r = 0; r < R; ++r) {
    storeu8(C + r * ldc, c0[r]);
    storeu8(C + r * ldc + 8, c1[r]);
  }
}

void micro_skinny_packed(std::size_t mr, const float* __restrict Ap,
                         const float* __restrict Bp, float* __restrict C,
                         std::size_t ldc, std::size_t kc) {
  switch (mr) {
    case 1: micro_skinny_packed_r<1>(Ap, Bp, C, ldc, kc); break;
    case 2: micro_skinny_packed_r<2>(Ap, Bp, C, ldc, kc); break;
    case 3: micro_skinny_packed_r<3>(Ap, Bp, C, ldc, kc); break;
    case 4: micro_skinny_packed_r<4>(Ap, Bp, C, ldc, kc); break;
    default: micro_skinny_packed_r<5>(Ap, Bp, C, ldc, kc); break;
  }
}

#else

// Portable build: the edge tile already handles mr<MR correctly; the skinny
// specialization is a pure perf shortcut.
void micro_skinny_packed(std::size_t mr, const float* __restrict Ap,
                         const float* __restrict Bp, float* __restrict C,
                         std::size_t ldc, std::size_t kc) {
  micro_edge_packed(mr, NR, Ap, Bp, C, ldc, kc);
}

#endif

#if defined(__GNUC__) || defined(__clang__)

inline float hsum8(vf8 v) {
  float s = 0.0f;
  for (int l = 0; l < 8; ++l) s += v[l];
  return s;
}

// Direct A·Bᵀ for small m, where packing B would dominate: each A row is
// dotted against 4 B rows at a time, vectorized 8-wide along k with two
// accumulators per pair (the manual reassociation the compiler may not do).
void nt_direct(std::size_t m, std::size_t n, std::size_t k,
               const float* __restrict A, std::size_t lda,
               const float* __restrict B, std::size_t ldb,
               float* __restrict C, std::size_t ldc) {
  const std::size_t k16 = k - k % 16;
  parallel_for(0, m, 1, [&](std::size_t ilo, std::size_t ihi) {
    for (std::size_t i = ilo; i < ihi; ++i) {
      const float* Ai = A + i * lda;
      float* Ci = C + i * ldc;
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const float* b0 = B + (j + 0) * ldb;
        const float* b1 = B + (j + 1) * ldb;
        const float* b2 = B + (j + 2) * ldb;
        const float* b3 = B + (j + 3) * ldb;
        vf8 s0a{}, s0b{}, s1a{}, s1b{}, s2a{}, s2b{}, s3a{}, s3b{};
        for (std::size_t p = 0; p < k16; p += 16) {
          const vf8 a0 = loadu8(Ai + p), a1 = loadu8(Ai + p + 8);
          s0a += a0 * loadu8(b0 + p); s0b += a1 * loadu8(b0 + p + 8);
          s1a += a0 * loadu8(b1 + p); s1b += a1 * loadu8(b1 + p + 8);
          s2a += a0 * loadu8(b2 + p); s2b += a1 * loadu8(b2 + p + 8);
          s3a += a0 * loadu8(b3 + p); s3b += a1 * loadu8(b3 + p + 8);
        }
        float r0 = hsum8(s0a) + hsum8(s0b), r1 = hsum8(s1a) + hsum8(s1b);
        float r2 = hsum8(s2a) + hsum8(s2b), r3 = hsum8(s3a) + hsum8(s3b);
        for (std::size_t p = k16; p < k; ++p) {
          const float a = Ai[p];
          r0 += a * b0[p]; r1 += a * b1[p]; r2 += a * b2[p]; r3 += a * b3[p];
        }
        Ci[j] = r0; Ci[j + 1] = r1; Ci[j + 2] = r2; Ci[j + 3] = r3;
      }
      for (; j < n; ++j) {
        const float* bj = B + j * ldb;
        vf8 sa{}, sb{};
        for (std::size_t p = 0; p < k16; p += 16) {
          sa += loadu8(Ai + p) * loadu8(bj + p);
          sb += loadu8(Ai + p + 8) * loadu8(bj + p + 8);
        }
        float r = hsum8(sa) + hsum8(sb);
        for (std::size_t p = k16; p < k; ++p) r += Ai[p] * bj[p];
        Ci[j] = r;
      }
    }
  });
}

constexpr bool kHaveNtDirect = true;

#else

void nt_direct(std::size_t, std::size_t, std::size_t, const float*,
               std::size_t, const float*, std::size_t, float*, std::size_t) {}
constexpr bool kHaveNtDirect = false;

#endif

// One thread's row slab [i0, i1), unpacked operands: full KC/NC blocking
// over K and N with strided panel reads.
void slab_nn(std::size_t i0, std::size_t i1, std::size_t n, std::size_t k,
             const float* A, std::size_t lda, const float* B, std::size_t ldb,
             float* C, std::size_t ldc) {
  for (std::size_t pc = 0; pc < k; pc += KC) {
    const std::size_t kc = pc + KC < k ? KC : k - pc;
    for (std::size_t jc = 0; jc < n; jc += NC) {
      const std::size_t nc = jc + NC < n ? NC : n - jc;
      for (std::size_t i = i0; i < i1; i += MR) {
        const std::size_t mr = i + MR < i1 ? MR : i1 - i;
        for (std::size_t j = jc; j < jc + nc; j += NR) {
          const std::size_t nr = j + NR < jc + nc ? NR : jc + nc - j;
          const float* Ab = A + i * lda + pc;
          const float* Bb = B + pc * ldb + j;
          float* Cb = C + i * ldc + j;
          if (mr == MR && nr == NR)
            micro_full(Ab, lda, Bb, ldb, Cb, ldc, kc);
          else
            micro_edge(mr, nr, Ab, lda, Bb, ldb, Cb, ldc, kc);
        }
      }
    }
  }
}

inline std::size_t round_up(std::size_t x, std::size_t to) {
  return (x + to - 1) / to * to;
}

// True when this shape runs the packed-panel gemm_nn path: packing costs
// O(k·(m + n)) data movement against O(m·n·k) flops, so it needs a real
// blocked problem (and at least one full A strip) to pay off.
bool nn_packs(std::size_t m, std::size_t n, std::size_t k) {
  return m != 0 && n != 0 && k != 0 && m * n * k > kSmallFlops && m >= MR;
}

bool nt_packs(std::size_t m, std::size_t n, std::size_t k) {
  return m != 0 && n != 0 && k != 0 && m * n * k > kSmallFlops &&
         !(kHaveNtDirect && m < 64);
}

}  // namespace

std::size_t packed_b_floats(std::size_t n, std::size_t k) {
  return round_up(n, NR) * k;
}

void pack_b(std::size_t k, std::size_t n, const float* B, std::size_t ldb,
            float* dst) {
  g_b_packs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n_round = round_up(n, NR);
  // One task per column strip: contiguous reads of up to NR floats per B
  // row, contiguous writes within the strip. Pure data movement, so the
  // work partition is free to be anything deterministic-or-not.
  parallel_for(0, n_round / NR, 1, [&](std::size_t slo, std::size_t shi) {
    for (std::size_t s = slo; s < shi; ++s) {
      const std::size_t j0 = s * NR;
      const std::size_t nr = j0 + NR <= n ? NR : n - j0;
      for (std::size_t pc = 0; pc < k; pc += KC) {
        const std::size_t kc = pc + KC < k ? KC : k - pc;
        float* strip = dst + pc * n_round + s * NR * kc;
        for (std::size_t p = 0; p < kc; ++p) {
          const float* src = B + (pc + p) * ldb + j0;
          float* row = strip + p * NR;
          for (std::size_t jj = 0; jj < nr; ++jj) row[jj] = src[jj];
          for (std::size_t jj = nr; jj < NR; ++jj) row[jj] = 0.0f;
        }
      }
    }
  });
}

void pack_b_t(std::size_t n, std::size_t k, const float* B, std::size_t ldb,
              float* dst) {
  g_b_packs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n_round = round_up(n, NR);
  // Element (p, j) of the packed panel is B[j, p]: each source row of B is
  // read contiguously and scattered down one strip column (stride NR, L1-
  // resident) — the transpose is fused into the pack, no Bᵀ materialized.
  parallel_for(0, n_round / NR, 1, [&](std::size_t slo, std::size_t shi) {
    for (std::size_t s = slo; s < shi; ++s) {
      const std::size_t j0 = s * NR;
      const std::size_t nr = j0 + NR <= n ? NR : n - j0;
      for (std::size_t pc = 0; pc < k; pc += KC) {
        const std::size_t kc = pc + KC < k ? KC : k - pc;
        float* strip = dst + pc * n_round + s * NR * kc;
        for (std::size_t jj = 0; jj < nr; ++jj) {
          const float* src = B + (j0 + jj) * ldb + pc;
          for (std::size_t p = 0; p < kc; ++p) strip[p * NR + jj] = src[p];
        }
        for (std::size_t jj = nr; jj < NR; ++jj)
          for (std::size_t p = 0; p < kc; ++p) strip[p * NR + jj] = 0.0f;
      }
    }
  });
}

void pack_a_panel(const float* A, std::size_t lda, std::size_t i0,
                  std::size_t i1, std::size_t pc, std::size_t kc, float* dst) {
  for (std::size_t i = i0; i < i1; i += MR) {
    const std::size_t mr = i + MR < i1 ? MR : i1 - i;
    float* strip = dst + ((i - i0) / MR) * MR * kc;
    for (std::size_t r = 0; r < mr; ++r) {
      const float* src = A + (i + r) * lda + pc;
      for (std::size_t p = 0; p < kc; ++p) strip[p * MR + r] = src[p];
    }
    for (std::size_t r = mr; r < MR; ++r)
      for (std::size_t p = 0; p < kc; ++p) strip[p * MR + r] = 0.0f;
  }
}

void gemm_prepacked_b(std::size_t m, std::size_t n, std::size_t k,
                      const PanelPacker& pack_a, const float* packedB,
                      float* C, std::size_t ldc, bool accumulate) {
  if (!accumulate) zero_rows(C, m, n, ldc);
  if (m == 0 || n == 0 || k == 0) return;
  GBO_TRACE_SPAN(obs::EventType::kGemm, m,
                 static_cast<std::uint16_t>(n < 65535 ? n : 65535),
                 2ull * m * n * k);
  const std::size_t n_round = round_up(n, NR);
  parallel_for(0, m, MC, [&](std::size_t i0, std::size_t i1) {
    float* ap = tl_apanel;
    // The fixed thread_local buffer holds exactly one MC-row slab of MR
    // strips over a KC block; this is the bound every PanelPacker packs
    // against.
    assert(i1 - i0 <= MC);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = pc + KC < k ? KC : k - pc;
      assert(kc <= KC);
      pack_a(i0, i1, pc, kc, ap);
      const float* bblock = packedB + pc * n_round;
      for (std::size_t jc = 0; jc < n; jc += NC) {
        const std::size_t nc = jc + NC < n ? NC : n - jc;
        for (std::size_t i = i0; i < i1; i += MR) {
          const std::size_t mr = i + MR < i1 ? MR : i1 - i;
          const float* astrip = ap + ((i - i0) / MR) * MR * kc;
          for (std::size_t j = jc; j < jc + nc; j += NR) {
            const std::size_t nr = j + NR < jc + nc ? NR : jc + nc - j;
            const float* bstrip = bblock + (j / NR) * NR * kc;
            float* Cb = C + i * ldc + j;
            if (mr == MR && nr == NR)
              micro_full_packed(astrip, bstrip, Cb, ldc, kc);
            else if (nr == NR)
              micro_skinny_packed(mr, astrip, bstrip, Cb, ldc, kc);
            else
              micro_edge_packed(mr, nr, astrip, bstrip, Cb, ldc, kc);
          }
        }
      }
    }
  });
}

void gemm_nn_packed(std::size_t m, std::size_t n, std::size_t k,
                    const float* A, std::size_t lda, const float* B,
                    std::size_t ldb, float* C, std::size_t ldc,
                    bool accumulate, float* pack_scratch) {
  if (m == 0 || n == 0 || k == 0) {
    if (!accumulate) zero_rows(C, m, n, ldc);
    return;
  }
  std::vector<float> pb_own;
  float* pb = pack_scratch;
  if (pb == nullptr) {
    pb_own.resize(packed_b_floats(n, k));
    pb = pb_own.data();
  }
  pack_b(k, n, B, ldb, pb);
  gemm_prepacked_b(
      m, n, k,
      [&](std::size_t i0, std::size_t i1, std::size_t pc, std::size_t kc,
          float* dst) { pack_a_panel(A, lda, i0, i1, pc, kc, dst); },
      pb, C, ldc, accumulate);
}

void gemm_nn_unpacked(std::size_t m, std::size_t n, std::size_t k,
                      const float* A, std::size_t lda, const float* B,
                      std::size_t ldb, float* C, std::size_t ldc,
                      bool accumulate) {
  if (!accumulate) zero_rows(C, m, n, ldc);
  if (m == 0 || n == 0 || k == 0) return;
  parallel_for(0, m, MC, [&](std::size_t lo, std::size_t hi) {
    slab_nn(lo, hi, n, k, A, lda, B, ldb, C, ldc);
  });
}

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate) {
  if (nn_packs(m, n, k))
    gemm_nn_packed(m, n, k, A, lda, B, ldb, C, ldc, accumulate);
  else
    gemm_nn_unpacked(m, n, k, A, lda, B, ldb, C, ldc, accumulate);
}

bool gemm_nt_packs_b(std::size_t m, std::size_t n, std::size_t k) {
  return nt_packs(m, n, k);
}

std::size_t gemm_nt_scratch_floats(std::size_t m, std::size_t n,
                                   std::size_t k) {
  return nt_packs(m, n, k) ? packed_b_floats(n, k) : 0;
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, float* pack_scratch) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    zero_rows(C, m, n, ldc);
    return;
  }
  if (m * n * k <= kSmallFlops) {
    for (std::size_t i = 0; i < m; ++i) {
      const float* Ai = A + i * lda;
      float* Ci = C + i * ldc;
      for (std::size_t j = 0; j < n; ++j) {
        const float* Bj = B + j * ldb;
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += Ai[p] * Bj[p];
        Ci[j] = acc;
      }
    }
    return;
  }
  // Small m (the analytic-MVM batch case): packing B costs more than it
  // saves, so dot directly with the vectorized multi-accumulator kernel.
  if (kHaveNtDirect && m < 64) {
    nt_direct(m, n, k, A, lda, B, ldb, C, ldc);
    return;
  }
  // B packed once, straight from its transposed storage, turns the
  // dot-product loop (a serial reduction the compiler cannot vectorize
  // without reassociating) into the streaming packed kernel; the k·n pack
  // is negligible against the m·n·k multiply.
  std::vector<float> pb_own;
  float* pb = pack_scratch;
  if (pb == nullptr) {
    pb_own.resize(packed_b_floats(n, k));
    pb = pb_own.data();
  }
  pack_b_t(n, k, B, ldb, pb);
  gemm_prepacked_b(
      m, n, k,
      [&](std::size_t i0, std::size_t i1, std::size_t pc, std::size_t kc,
          float* dst) { pack_a_panel(A, lda, i0, i1, pc, kc, dst); },
      pb, C, ldc, /*accumulate=*/false);
}

void gemm_nt_rowwise(std::size_t m, std::size_t n, std::size_t k,
                     const float* A, std::size_t lda, const float* B,
                     std::size_t ldb, float* C, std::size_t ldc) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    zero_rows(C, m, n, ldc);
    return;
  }
  GBO_TRACE_SPAN(obs::EventType::kGemm, m,
                 static_cast<std::uint16_t>(n < 65535 ? n : 65535),
                 2ull * m * n * k);
  if (kHaveNtDirect) {
    nt_direct(m, n, k, A, lda, B, ldb, C, ldc);
    return;
  }
  // Portable fallback: plain k-ascending dots, one row at a time — also
  // row-stable, just without the manual vector reassociation.
  parallel_for(0, m, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const float* Ai = A + i * lda;
      float* Ci = C + i * ldc;
      for (std::size_t j = 0; j < n; ++j) {
        const float* Bj = B + j * ldb;
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += Ai[p] * Bj[p];
        Ci[j] = acc;
      }
    }
  });
}

bool panels_for_weight(std::size_t n, std::size_t k) {
  return n * k > kSmallFlops;
}

std::uint64_t b_pack_count() {
  return g_b_packs.load(std::memory_order_relaxed);
}

PackedB prepack_b(std::size_t k, std::size_t n, const float* B,
                  std::size_t ldb) {
  PackedB pb;
  pb.n = n;
  pb.k = k;
  if (n == 0 || k == 0) return pb;  // empty handle, no pack counted
  pb.panels.resize(packed_b_floats(n, k));
  pack_b(k, n, B, ldb, pb.panels.data());
  return pb;
}

PackedB prepack_b_t(std::size_t n, std::size_t k, const float* B,
                    std::size_t ldb) {
  PackedB pb;
  pb.n = n;
  pb.k = k;
  if (n == 0 || k == 0) return pb;
  pb.panels.resize(packed_b_floats(n, k));
  pack_b_t(n, k, B, ldb, pb.panels.data());
  return pb;
}

const float* pack_fresh_b_t(std::size_t n, std::size_t k, const float* B,
                            std::size_t ldb, ScratchArena* arena,
                            std::vector<float>* own) {
  const std::size_t pf = packed_b_floats(n, k);
  float* pb;
  if (arena) {
    pb = arena->alloc_floats(pf);
  } else {
    own->resize(pf);
    pb = own->data();
  }
  pack_b_t(n, k, B, ldb, pb);
  return pb;
}

void gemm_prepacked(std::size_t m, std::size_t n, std::size_t k,
                    const float* A, std::size_t lda, const float* packedB,
                    float* C, std::size_t ldc, bool accumulate) {
  gemm_prepacked_b(
      m, n, k,
      [&](std::size_t i0, std::size_t i1, std::size_t pc, std::size_t kc,
          float* dst) { pack_a_panel(A, lda, i0, i1, pc, kc, dst); },
      packedB, C, ldc, accumulate);
}

const float* PackedWeightCache::get(const float* B, std::size_t ldb,
                                    std::size_t n, std::size_t k,
                                    bool transposed,
                                    std::uint64_t version) const {
  gate_.ensure(version, [&] {
    panels_.resize(packed_b_floats(n, k));
    if (transposed)
      pack_b_t(n, k, B, ldb, panels_.data());
    else
      pack_b(k, n, B, ldb, panels_.data());
    packs_.fetch_add(1, std::memory_order_relaxed);
  });
  return panels_.data();
}

void gemm_tn_acc(std::size_t m, std::size_t n, std::size_t k, const float* A,
                 std::size_t lda, const float* B, std::size_t ldb, float* C,
                 std::size_t ldc) {
  if (m == 0 || n == 0 || k == 0) return;
  if (m * n * k <= kSmallFlops) {
    for (std::size_t p = 0; p < k; ++p) {
      const float* Ap = A + p * lda;
      const float* Bp = B + p * ldb;
      for (std::size_t i = 0; i < m; ++i) {
        const float a = Ap[i];
        float* Ci = C + i * ldc;
        for (std::size_t j = 0; j < n; ++j) Ci[j] += a * Bp[j];
      }
    }
    return;
  }
  // Aᵀ materialized row-major, then the (packed) nn kernel accumulates.
  std::vector<float> at(m * k);
  constexpr std::size_t TB = 32;
  parallel_for(0, k, TB, [&](std::size_t lo, std::size_t hi) {
    float* dst = at.data();
    for (std::size_t p0 = 0; p0 < m; p0 += TB) {
      const std::size_t p1 = p0 + TB < m ? p0 + TB : m;
      for (std::size_t j = lo; j < hi; ++j)
        for (std::size_t p = p0; p < p1; ++p)
          dst[p * k + j] = A[j * lda + p];
    }
  });
  gemm_nn(m, n, k, at.data(), k, B, ldb, C, ldc, /*accumulate=*/true);
}

// ---- retained naive reference kernels (seed implementations) -------------

void naive_gemm_nn_acc(std::size_t m, std::size_t n, std::size_t k,
                       const float* A, const float* B, float* C) {
  for (std::size_t i = 0; i < m; ++i) {
    float* Ci = C + i * n;
    const float* Ai = A + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = Ai[kk];
      if (aik == 0.0f) continue;
      const float* Bk = B + kk * n;
      for (std::size_t j = 0; j < n; ++j) Ci[j] += aik * Bk[j];
    }
  }
}

void naive_gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* A,
                   const float* B, float* C) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* Ai = A + i * k;
    float* Ci = C + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* Bj = B + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += Ai[kk] * Bj[kk];
      Ci[j] = acc;
    }
  }
}

void naive_gemm_tn_acc(std::size_t m, std::size_t n, std::size_t k,
                       const float* A, const float* B, float* C) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* Ak = A + kk * m;
    const float* Bk = B + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = Ak[i];
      if (aki == 0.0f) continue;
      float* Ci = C + i * n;
      for (std::size_t j = 0; j < n; ++j) Ci[j] += aki * Bk[j];
    }
  }
}

}  // namespace gbo::gemm
