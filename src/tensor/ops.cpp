#include "tensor/ops.hpp"

#include "tensor/gemm.hpp"

#include <algorithm>
#include <cmath>

namespace gbo::ops {

namespace {
void check2d(const Tensor& t, const char* who) {
  if (t.ndim() != 2)
    throw std::invalid_argument(std::string(who) + ": expected 2D tensor, got " + t.shape_str());
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor::check_same_shape(a, b, "ops::add");
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor::check_same_shape(a, b, "ops::sub");
  Tensor out = a;
  sub_inplace(out, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor::check_same_shape(a, b, "ops::mul");
  Tensor out = a;
  float* o = out.data();
  const float* q = b.data();
  for (std::size_t i = 0; i < out.numel(); ++i) o[i] *= q[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  scale_inplace(out, s);
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  Tensor::check_same_shape(a, b, "ops::add_inplace");
  float* p = a.data();
  const float* q = b.data();
  for (std::size_t i = 0; i < a.numel(); ++i) p[i] += q[i];
}

void sub_inplace(Tensor& a, const Tensor& b) {
  Tensor::check_same_shape(a, b, "ops::sub_inplace");
  float* p = a.data();
  const float* q = b.data();
  for (std::size_t i = 0; i < a.numel(); ++i) p[i] -= q[i];
}

void scale_inplace(Tensor& a, float s) {
  float* p = a.data();
  for (std::size_t i = 0; i < a.numel(); ++i) p[i] *= s;
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  Tensor::check_same_shape(a, b, "ops::axpy_inplace");
  float* p = a.data();
  const float* q = b.data();
  for (std::size_t i = 0; i < a.numel(); ++i) p[i] += s * q[i];
}

float sum(const Tensor& a) {
  // Pairwise-free Kahan summation keeps reductions deterministic and stable
  // for the million-element activations used in training.
  double acc = 0.0, comp = 0.0;
  const float* p = a.data();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    const double y = static_cast<double>(p[i]) - comp;
    const double t = acc + y;
    comp = (t - acc) - y;
    acc = t;
  }
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  if (a.numel() == 0) return 0.0f;
  return sum(a) / static_cast<float>(a.numel());
}

float max_abs(const Tensor& a) {
  float m = 0.0f;
  const float* p = a.data();
  for (std::size_t i = 0; i < a.numel(); ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

float min(const Tensor& a) {
  if (a.empty()) throw std::invalid_argument("ops::min: empty tensor");
  return *std::min_element(a.vec().begin(), a.vec().end());
}

float max(const Tensor& a) {
  if (a.empty()) throw std::invalid_argument("ops::max: empty tensor");
  return *std::max_element(a.vec().begin(), a.vec().end());
}

float variance(const Tensor& a) {
  if (a.numel() == 0) return 0.0f;
  const double m = mean(a);
  double acc = 0.0;
  const float* p = a.data();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(p[i]) - m;
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(a.numel()));
}

std::size_t argmax(const Tensor& a) {
  if (a.empty()) throw std::invalid_argument("ops::argmax: empty tensor");
  return static_cast<std::size_t>(
      std::max_element(a.vec().begin(), a.vec().end()) - a.vec().begin());
}

std::vector<std::size_t> argmax_rows(const Tensor& a) {
  check2d(a, "ops::argmax_rows");
  const std::size_t rows = a.dim(0), cols = a.dim(1);
  std::vector<std::size_t> out(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = a.data() + r * cols;
    out[r] = static_cast<std::size_t>(std::max_element(row, row + cols) - row);
  }
  return out;
}

void fill_uniform(Tensor& a, Rng& rng, float lo, float hi) {
  float* p = a.data();
  for (std::size_t i = 0; i < a.numel(); ++i)
    p[i] = static_cast<float>(rng.uniform(lo, hi));
}

void fill_normal(Tensor& a, Rng& rng, float mean, float stddev) {
  float* p = a.data();
  for (std::size_t i = 0; i < a.numel(); ++i)
    p[i] = static_cast<float>(rng.normal(mean, stddev));
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check2d(a, "ops::matmul(a)");
  check2d(b, "ops::matmul(b)");
  if (a.dim(1) != b.dim(0))
    throw std::invalid_argument("ops::matmul: inner dim mismatch " +
                                a.shape_str() + " x " + b.shape_str());
  Tensor c({a.dim(0), b.dim(1)});
  matmul_acc(a, b, c);
  return c;
}

void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (c.dim(0) != m || c.dim(1) != n)
    throw std::invalid_argument("ops::matmul_acc: output shape mismatch");
  // Blocked multithreaded kernel (tensor/gemm.hpp); deterministic at any
  // thread count.
  gemm::gemm_nn(m, n, k, a.data(), k, b.data(), n, c.data(), n,
                /*accumulate=*/true);
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  check2d(a, "ops::matmul_bt(a)");
  check2d(b, "ops::matmul_bt(b)");
  if (a.dim(1) != b.dim(1))
    throw std::invalid_argument("ops::matmul_bt: inner dim mismatch");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  gemm::gemm_nt(m, n, k, a.data(), k, b.data(), k, c.data(), n);
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  check2d(a, "ops::matmul_at(a)");
  check2d(b, "ops::matmul_at(b)");
  if (a.dim(0) != b.dim(0))
    throw std::invalid_argument("ops::matmul_at: inner dim mismatch");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  gemm::gemm_tn_acc(m, n, k, a.data(), m, b.data(), n, c.data(), n);
  return c;
}

Tensor transpose(const Tensor& a) {
  check2d(a, "ops::transpose");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.same_shape(b)) return false;
  const float* p = a.data();
  const float* q = b.data();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(p[i] - q[i]) > atol + rtol * std::fabs(q[i])) return false;
  }
  return true;
}

}  // namespace gbo::ops
