// im2col / col2im lowering for convolution.
//
// Conv2d forward is computed as GEMM over the im2col patch matrix; the
// backward data pass uses col2im. The same patch matrix is also what gets
// streamed through the crossbar simulator pulse-by-pulse, so this lowering
// is the single point where "convolution" becomes "MVM" for both the
// digital and the analog execution paths.
#pragma once

#include "tensor/tensor.hpp"

namespace gbo {

struct ConvGeom {
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t k = 3;       // square kernel
  std::size_t stride = 1;
  std::size_t pad = 1;

  std::size_t out_h() const { return (in_h + 2 * pad - k) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - k) / stride + 1; }
  std::size_t patch_len() const { return in_c * k * k; }
};

/// input: [N, C, H, W]  ->  columns: [N * out_h * out_w, C * k * k]
/// Each row is one receptive-field patch (zero padded at borders).
Tensor im2col(const Tensor& input, const ConvGeom& g);

/// Same lowering into a caller-provided buffer of N*out_h*out_w*patch_len
/// floats (arena scratch in the stateless infer path). Every element is
/// written, padding included; bitwise identical to im2col.
void im2col_into(const Tensor& input, const ConvGeom& g, float* out);

/// Inverse scatter-add of im2col: columns [N * out_h * out_w, C*k*k]
/// -> gradient w.r.t. input [N, C, H, W].
Tensor col2im(const Tensor& columns, std::size_t batch, const ConvGeom& g);

/// GEMM-result rows [N * oh * ow, out_c] -> NCHW [N, out_c, oh, ow] into a
/// caller buffer — the output-side counterpart of the lowering, shared by
/// the host Conv2d and the pulse-level deployment path.
void rows_to_nchw_into(const float* rows, std::size_t batch, std::size_t out_c,
                       std::size_t oh, std::size_t ow, float* dst);

}  // namespace gbo
