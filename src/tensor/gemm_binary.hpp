// Bit-packed XNOR/popcount kernels for the binary-quantized MVM
// (DESIGN.md §8).
//
// The paper's networks are binary-weight: after binarization a weight row is
// a sign vector, and the 9-level QuantTanh activations decompose into 8
// thermometer bit-planes (encoding/thermometer.hpp: level l of the 9-level
// quantizer means planes 0..l-1 carry a +1 pulse, the rest -1). Packing both
// sides into 64-bit words turns the MVM into XOR + popcount:
//
//   plane dot:  d_t = k - 2·popcount(a_t XOR w)      (±1 dot over k bits)
//   recombine:  y   = (Σ_t d_t) / 8 = (8k - 2P) / 8,  P = Σ_t popcount
//
// Because every activation is a multiple of 1/4 in [-1, 1] and the weights
// are ±1, the float kernels' products are exact sign flips and all partial
// sums are multiples of 1/4 far below 2^24 — so the float path computes the
// same integer-valued accumulator exactly, at any blocking or thread count.
// (8k - 2P) / 8 is likewise exact (an integer times 0.125f). The binary path
// is therefore BITWISE equal to the float path whenever the inputs lie on
// the 9-level grid; the float route stays in-tree as the oracle, and the
// quant layers fall back to it for off-grid inputs (raw images, PLA
// re-quantized activations).
//
// Micro-kernels are selected once per process from a runtime CPUID-probed
// registry (scalar / AVX2 nibble-LUT / AVX-512 VPOPCNTDQ with masked edge
// tiles / NEON); every variant sums the same integer popcounts, so the
// kernel choice can never change an output bit. GBO_FORCE_SCALAR_KERNELS=1
// pins the scalar kernel (the CI fallback leg).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gbo::gemm {

/// Thermometer bit-planes per activation: 8 pulses encode the 9-level
/// QuantTanh grid (quant/act_quant.hpp), values (2l - 8) / 8, l in [0, 8].
inline constexpr std::size_t kBinaryPlanes = 8;

/// 64-bit words covering k lanes; padding bits are zero on BOTH operands,
/// so they XOR to zero and never reach the popcount.
inline std::size_t binary_words(std::size_t k) { return (k + 63) / 64; }

/// Packed sign words of a binarized weight [n, k] (transposed storage, the
/// A·Bᵀ weight layout): row j's bit p is `B[j, p] >= 0` — the exact
/// convention of quant::binarize — at words[j·kw + p/64], bit p%64.
struct PackedBinaryB {
  std::vector<std::uint64_t> words;  // [n][kw]
  std::size_t n = 0, k = 0, kw = 0;
  bool empty() const { return words.empty(); }
};

/// Packs a row-major weight [n, k] (ldb) into sign words. Counts one binary
/// weight pack (binary_pack_count); degenerate shapes yield an empty handle.
PackedBinaryB prepack_binary_b_t(std::size_t n, std::size_t k, const float* B,
                                 std::size_t ldb);

/// Process-wide count of binary weight packs (prepack_binary_b_t). Relaxed
/// atomic; the serving bench diffs it across a steady-state run to prove the
/// version-stamped caches amortized binary packing to warmup (A-side
/// activation encodes are per-request by design and not counted).
std::uint64_t binary_pack_count();

/// Words of A-side scratch for an [m, k] activation block: m rows of
/// kBinaryPlanes bit-sliced planes, kw words each.
inline std::size_t packed_binary_a_words(std::size_t m, std::size_t k) {
  return m * kBinaryPlanes * binary_words(k);
}

/// True when every value is exactly on the 9-level grid. The conv route
/// runs this over the NCHW input before materializing the patch matrix
/// (padding contributes zeros, which are on-grid).
bool binary_grid_check(const float* p, std::size_t n);

/// Encodes A[m, k] (lda) into thermometer bit-planes: row i's plane t at
/// dst[(i·kBinaryPlanes + t)·kw], bit p set iff t < level(A[i, p]). Returns
/// false — dst contents then unspecified — if any value is off the 9-level
/// grid; this fused validate+encode is the quant layers' route dispatch.
bool pack_binary_a(std::size_t m, std::size_t k, const float* A,
                   std::size_t lda, std::uint64_t* dst);

/// One registry entry: xor_popcount_row fills pops[j] with the total
/// popcount of (a XOR W_j) over kBinaryPlanes planes of kw words, for every
/// weight row j in [0, n) (a: planes contiguous, kw words each; W: n rows
/// of kw words, the PackedBinaryB layout). Row granularity is the perf
/// contract: for kw <= 8 — k <= 512, every layer in the paper's models —
/// the SIMD kernels keep all 8 activation planes in registers across the
/// whole weight panel and load each weight row exactly once.
struct BinaryKernel {
  const char* name;
  void (*xor_popcount_row)(const std::uint64_t* a, const std::uint64_t* W,
                           std::size_t n, std::size_t kw, std::uint64_t* pops);
};

/// The micro-kernel selected once per process: best CPUID-supported ISA, or
/// the scalar kernel under GBO_FORCE_SCALAR_KERNELS=1.
const BinaryKernel& binary_kernel();

/// The always-available scalar kernel (the in-tree reference the dispatched
/// kernel is gated against).
const BinaryKernel& binary_kernel_scalar();

/// Name of the dispatched kernel ("scalar" / "avx2" / "avx512_vpopcntdq" /
/// "neon") — recorded in the bench JSON so CI artifacts document the ISA
/// actually exercised.
const char* binary_kernel_name();

/// Runtime-detected CPU features relevant to the registry (CPUID on x86,
/// compile-time flags elsewhere), e.g. "avx2 avx512f avx512vpopcntdq".
std::string cpu_features();

/// C[m, n] = unscaled binary MVM of packed activations against packed sign
/// words: C[i, j] = (8k - 2P) · 0.125f. Runs the dispatched kernel; bitwise
/// equal to the float A·Bᵀ kernels over the same on-grid operands (the §8
/// contract) and to every other registry kernel. Threaded over rows,
/// deterministic at any thread count (pure integer reduction per element).
void gemm_binary(std::size_t m, std::size_t n, std::size_t k,
                 const std::uint64_t* packedA, const PackedBinaryB& B, float* C,
                 std::size_t ldc);

/// Same, with an explicit registry kernel (tests gate forced-scalar vs
/// best-ISA bitwise equality through this).
void gemm_binary_with(const BinaryKernel& kern, std::size_t m, std::size_t n,
                      std::size_t k, const std::uint64_t* packedA,
                      const PackedBinaryB& B, float* C, std::size_t ldc);

/// Process-wide count of gemm_binary dispatches; the benches diff it to
/// prove the quant layers actually took the XNOR/popcount route.
std::uint64_t binary_mvm_count();

}  // namespace gbo::gemm
