// Energy report: map a binary-weight network onto crossbar tiles and price
// pulse schedules in energy and latency.
//
// Demonstrates the hardware-costing side of the library without any
// training: build a model, map it (crossbar/mapper), and compare what
// uniform vs heterogeneous schedules cost (crossbar/energy_model). The
// punchline is that two schedules with the SAME average pulse count can
// differ >30% in energy depending on WHERE the pulses go — the information
// Eq. 6's pulse-count regularizer cannot see.
//
//   ./energy_report [--width N] [--image N] [--tile N]
#include "common/cli.hpp"
#include "common/table.hpp"
#include "crossbar/energy_model.hpp"
#include "models/vgg9.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace gbo;

  CliParser cli("energy_report",
                "Tile mapping and schedule energy costing for VGG9.");
  cli.add_option("width", "Base conv width", "16");
  cli.add_option("image", "Input image size", "16");
  cli.add_option("tile", "Crossbar tile edge (word/bit lines)", "128");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  models::Vgg9Config mcfg;
  mcfg.width = static_cast<std::size_t>(cli.get_int("width", 16));
  mcfg.image_size = static_cast<std::size_t>(cli.get_int("image", 16));
  models::Vgg9 model = models::build_vgg9(mcfg);

  const std::size_t tile_edge =
      static_cast<std::size_t>(cli.get_int("tile", 128));
  const xbar::TileShape tile{tile_edge, tile_edge};

  // Per-inference MVM counts: one per conv output position, one per linear.
  std::vector<std::size_t> mvms;
  for (auto* layer : model.encoded) {
    const auto* conv = dynamic_cast<const quant::QuantConv2d*>(layer);
    mvms.push_back(conv ? conv->geom().out_h() * conv->geom().out_w() : 1);
  }
  const xbar::NetworkMapping mapping =
      xbar::map_network(model.encoded, model.encoded_names, mvms, tile);

  std::printf("== VGG9 (width %zu) on %zux%zu tiles ==\n", mcfg.width,
              tile.rows, tile.cols);
  Table map_table({"Layer", "fan-in", "fan-out", "MVMs/inf", "tiles",
                   "utilization"});
  for (const auto& l : mapping.layers)
    map_table.add_row({l.name,
                       Table::fmt_int(static_cast<long long>(l.fan_in)),
                       Table::fmt_int(static_cast<long long>(l.fan_out)),
                       Table::fmt_int(static_cast<long long>(l.mvms)),
                       Table::fmt_int(static_cast<long long>(l.tiles)),
                       Table::fmt(l.utilization, 3)});
  std::printf("%s\ntotal tiles: %zu | overall utilization: %.3f | "
              "area proxy: %.2e\n\n",
              map_table.to_text().c_str(), mapping.total_tiles(),
              mapping.overall_utilization(), mapping.area_proxy());

  const xbar::EnergyConfig ecfg;
  const std::size_t n = mapping.layers.size();
  Table cost_table({"Schedule", "Avg.# pulses", "Cycles", "Energy",
                    "ADC share"});
  auto add = [&](const std::string& name,
                 const std::vector<std::size_t>& pulses) {
    const auto c = xbar::cost_schedule(mapping, pulses, ecfg);
    cost_table.add_row({name, Table::fmt(c.avg_pulses, 2),
                        Table::fmt(c.cycles, 0),
                        Table::fmt(c.energy.total(), 0),
                        Table::fmt(c.adc_share(), 3)});
  };
  add("uniform 8 (baseline)", std::vector<std::size_t>(n, 8));
  add("uniform 12", std::vector<std::size_t>(n, 12));
  add("uniform 16", std::vector<std::size_t>(n, 16));

  // Two heterogeneous schedules with the same 12-pulse average: pulses
  // concentrated on the narrow late layers vs on the wide early layers.
  std::vector<std::size_t> late_heavy(n, 8), early_heavy(n, 16);
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= n / 2) {
      late_heavy[i] = 16;
      early_heavy[i] = 8;
    }
  }
  add("hetero 12 avg, late-heavy", late_heavy);
  add("hetero 12 avg, early-heavy", early_heavy);

  std::printf("%s\n", cost_table.to_text().c_str());
  std::printf(
      "Same average latency, different energy: the early conv layers issue\n"
      "hundreds of MVMs per inference, so pulses placed there dominate the\n"
      "energy bill. GBO schedules should be priced in energy, not pulses.\n");
  return 0;
}
