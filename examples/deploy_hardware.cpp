// Deploy a trained network onto the simulated crossbar hardware and
// compare the fast analytic evaluation path against the full pulse-level
// simulation with device non-idealities.
//
//   ./deploy_hardware [subset]
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "crossbar/hw_deploy.hpp"

#include <cstdio>
#include <cstdlib>

int main(int argc, char** argv) {
  using namespace gbo;
  core::Experiment exp = core::make_experiment();
  const std::size_t subset =
      std::min<std::size_t>(argc > 1 ? std::atol(argv[1]) : 200, exp.test.size());

  // Slice a subset — the pulse-level path issues one crossbar read per
  // pulse per layer, so it is ~8x the analytic cost.
  data::Dataset small;
  std::vector<std::size_t> shape = exp.test.images.shape();
  shape[0] = subset;
  small.images = Tensor(shape);
  const std::size_t len = exp.test.sample_numel();
  std::copy(exp.test.images.data(), exp.test.images.data() + subset * len,
            small.images.data());
  small.labels.assign(exp.test.labels.begin(),
                      exp.test.labels.begin() + static_cast<long>(subset));

  std::printf("clean accuracy (host): %.2f%% | deploying on %zu-image subset\n\n",
              100.0 * exp.clean_acc, subset);

  Table table({"Deployment", "Acc. (%)"});

  xbar::HwDeployConfig ideal;
  xbar::HardwareNetwork hw_ideal(*exp.model.net, exp.model.encoded, ideal);
  std::printf("crossbar cells programmed: %zu across %zu arrays\n\n",
              hw_ideal.total_cells(), hw_ideal.num_crossbar_layers());
  table.add_row({"pulse-level, ideal devices", Table::fmt(100.0 * hw_ideal.evaluate(small), 2)});

  xbar::HwDeployConfig noisy;
  noisy.sigma = 1.25;
  table.add_row({"pulse-level, sigma=1.25",
                 Table::fmt(100.0 * xbar::HardwareNetwork(*exp.model.net, exp.model.encoded, noisy)
                                        .evaluate(small), 2)});

  xbar::HwDeployConfig rough;
  rough.sigma = 1.25;
  rough.device.program_variation = 0.2;
  rough.device.stuck_off_rate = 0.02;
  rough.device.adc_bits = 6;
  table.add_row({"pulse-level, sigma=1.25 + variation/faults/ADC",
                 Table::fmt(100.0 * xbar::HardwareNetwork(*exp.model.net, exp.model.encoded, rough)
                                        .evaluate(small), 2)});

  xbar::HwDeployConfig longer = rough;
  longer.pulses.assign(exp.model.encoded.size(), 16);
  table.add_row({"same non-idealities, 16 pulses/layer",
                 Table::fmt(100.0 * xbar::HardwareNetwork(*exp.model.net, exp.model.encoded, longer)
                                        .evaluate(small), 2)});

  std::printf("%s\n", table.to_text().c_str());
  std::printf("Longer codes recover accuracy even under non-Gaussian device\n"
              "non-idealities — the paper's remedy generalizes.\n");
  return 0;
}
