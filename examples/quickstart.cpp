// Quickstart: train a small binary-weight VGG9 on SynthCIFAR, then watch
// crossbar noise destroy its accuracy and pulse-length scaling (PLA, paper
// §III-B) bring it back — the paper's core mechanism in ~1 minute on a
// laptop core.
//
//   ./quickstart
#include "core/pipeline.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "data/synth_cifar.hpp"

#include <cstdio>

int main() {
  using namespace gbo;
  set_log_level(LogLevel::kWarn);  // keep the demo output tidy

  // 1. A reduced VGG9 (same topology as the paper: 7 conv + 2 FC, binary
  //    weights, 9-level Tanh activations -> 8-pulse thermometer codes).
  models::Vgg9Config mcfg;
  mcfg.width = 8;
  mcfg.image_size = 16;
  models::Vgg9 model = models::build_vgg9(mcfg);

  // 2. SynthCIFAR: a procedural 10-class stand-in for CIFAR-10.
  data::SynthCifarConfig dcfg;
  dcfg.image_size = 16;
  data::Dataset train = data::make_synth_cifar(dcfg, 1200, 0);
  data::Dataset test = data::make_synth_cifar(dcfg, 400, 1);

  // 3. Quantization-aware pre-training (binary W, 9-level activations).
  std::printf("Pre-training binary-weight VGG9 on SynthCIFAR...\n");
  core::PretrainConfig pcfg;
  pcfg.epochs = 8;
  const auto stats = core::pretrain(*model.net, model.binary, train, test, pcfg);
  std::printf("clean test accuracy: %.2f%%\n\n", 100.0 * stats.test_acc);

  // 4. Attach the crossbar noise model (Eq. 1) to the 7 encoded layers and
  //    sweep the pulse count at a fixed noise level.
  Rng rng(1);
  xbar::LayerNoiseController ctrl(model.encoded, /*sigma=*/0.0,
                                  model.base_pulses(), rng);
  ctrl.attach();

  Table table({"Configuration", "#pulses/layer", "Accuracy (%)"});
  table.add_row({"clean (no crossbar noise)", "8",
                 Table::fmt(100.0 * stats.test_acc)});

  const double sigma = 1.0;  // severe for this model's MVM magnitude
  ctrl.set_sigma(sigma);
  for (std::size_t pulses : {8u, 10u, 12u, 16u, 24u}) {
    ctrl.set_uniform_pulses(pulses);
    const float acc = core::evaluate_noisy(*model.net, ctrl, test, 3);
    table.add_row({pulses == 8 ? "baseline (sigma=" + Table::fmt(sigma, 1) + ")"
                               : "PLA-" + std::to_string(pulses),
                   std::to_string(pulses), Table::fmt(100.0 * acc)});
  }
  ctrl.detach();

  std::printf("%s\n", table.to_text().c_str());
  std::printf("More pulses -> lower accumulated noise variance (Eq. 3/4):\n"
              "accuracy recovers as the pulse count grows.\n");
  return 0;
}
