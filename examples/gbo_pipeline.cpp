// Full GBO pipeline on the standard experiment: pretrain (cached), run
// Gradient-based Bit encoding Optimization at a chosen noise level, and
// compare baseline / uniform-PLA / GBO-selected heterogeneous schedules.
//
//   ./gbo_pipeline [sigma] [gamma]
#include "core/experiment.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "gbo/gbo.hpp"
#include "gbo/pla_schedule.hpp"

#include <cstdio>
#include <cstdlib>

int main(int argc, char** argv) {
  using namespace gbo;
  const double sigma = argc > 1 ? std::atof(argv[1]) : 1.0;
  const double gamma = argc > 2 ? std::atof(argv[2]) : 2e-3;

  core::Experiment exp = core::make_experiment();
  std::printf("clean accuracy: %.2f%% | sigma=%.2f gamma=%g\n\n",
              100.0 * exp.clean_acc, sigma, gamma);

  // --- GBO phase: freeze weights, train the per-layer λ logits -------------
  opt::GboConfig gcfg;
  gcfg.sigma = sigma;
  gcfg.gamma = gamma;
  gcfg.epochs = 6;
  gcfg.lr = 5e-3f;  // scaled for the reduced dataset
  opt::GboTrainer trainer(*exp.model.net, exp.model.encoded, gcfg);
  trainer.train(exp.train);
  const auto selected = trainer.selected_pulses();
  const opt::PulseSchedule schedule{selected};
  std::printf("\nGBO-selected schedule: %s (avg %.2f pulses)\n",
              schedule.to_string().c_str(), schedule.average());
  for (std::size_t l = 0; l < exp.model.encoded_names.size(); ++l) {
    const auto alpha = trainer.layer_state(l).alpha();
    std::string dist;
    for (double a : alpha) dist += Table::fmt(a, 2) + " ";
    std::printf("  %-6s alpha = [ %s]\n", exp.model.encoded_names[l].c_str(),
                dist.c_str());
  }

  // --- evaluation under the Eq. 1 noise model ------------------------------
  Rng rng(505);
  xbar::LayerNoiseController ctrl(exp.model.encoded, sigma,
                                  exp.model.base_pulses(), rng);
  ctrl.attach();

  Table table({"Method", "#pulses per layer", "Avg", "Acc (%)"});
  auto eval_row = [&](const std::string& name,
                      const std::vector<std::size_t>& pulses) {
    ctrl.set_pulses(pulses);
    const float acc = core::evaluate_noisy(*exp.model.net, ctrl, exp.test, 3);
    const opt::PulseSchedule s{pulses};
    table.add_row({name, s.to_string(), Table::fmt(s.average(), 2),
                   Table::fmt(100.0 * acc, 2)});
  };

  const std::size_t n_layers = exp.model.encoded.size();
  eval_row("Baseline", std::vector<std::size_t>(n_layers, 8));
  const std::size_t uniform =
      static_cast<std::size_t>(schedule.average() + 0.5);
  eval_row("PLA-" + std::to_string(uniform),
           std::vector<std::size_t>(n_layers, uniform));
  eval_row("GBO", selected);
  ctrl.detach();

  std::printf("\n%s", table.to_text().c_str());
  return 0;
}
