// Drift study: watch a crossbar-deployed classifier age.
//
// Trains a small binary MLP, programs it into the pulse-level crossbar
// simulator, and evaluates it at increasing read-out ages under power-law
// conductance drift (crossbar/drift). Shows the standalone DriftModel
// statistics next to the end-to-end accuracy so the weight-level error and
// the task-level damage can be compared directly.
//
//   ./drift_study [--nu 0.03] [--nu-sigma 0.015] [--samples 400]
#include "common/cli.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "crossbar/drift.hpp"
#include "crossbar/hw_deploy.hpp"
#include "models/mlp.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace gbo;
  set_log_level(LogLevel::kWarn);

  CliParser cli("drift_study",
                "Accuracy vs array age under conductance drift.");
  cli.add_option("nu", "Mean drift exponent", "0.03");
  cli.add_option("nu-sigma", "Device-to-device std of the exponent", "0.015");
  cli.add_option("samples", "Dataset size", "400");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const double nu = cli.get_double("nu", 0.03);
  const double nu_sigma = cli.get_double("nu-sigma", 0.015);
  const std::size_t n =
      static_cast<std::size_t>(cli.get_int("samples", 400));

  // Separable 4-class toy data for a binary MLP.
  models::MlpConfig mcfg;
  mcfg.in_features = 32;
  mcfg.hidden = {48, 48};
  mcfg.num_classes = 4;
  models::Mlp model = build_mlp(mcfg);

  Rng rng(3);
  data::Dataset ds;
  ds.images = Tensor({n, 32});
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = i % 4;
    ds.labels[i] = k;
    for (std::size_t j = 0; j < 32; ++j)
      ds.images[i * 32 + j] = static_cast<float>(
          0.25 * rng.normal() + (j / 8 == k ? 0.8 : -0.8));
  }

  std::printf("Training binary MLP...\n");
  nn::SGD opt(model.net->params(), 0.05f, 0.9f, 0.0f);
  data::DataLoader loader(ds, 32, true, Rng(4));
  model.net->set_training(true);
  for (std::size_t e = 0; e < 25; ++e) {
    loader.reset();
    data::Batch batch;
    while (loader.next(batch)) {
      opt.zero_grad();
      Tensor logits = model.net->forward(batch.images);
      Tensor grad;
      nn::CrossEntropy::forward_backward(logits, batch.labels, grad);
      model.net->backward(grad);
      opt.step();
    }
  }
  model.net->set_training(false);
  std::printf("clean accuracy: %.2f%%\n\n",
              100.0 * core::evaluate(*model.net, ds));

  Table table({"age (s)", "mean decay", "RMS weight err", "Acc. (%)"});
  xbar::DriftConfig dcfg;
  dcfg.nu_mean = nu;
  dcfg.nu_sigma = nu_sigma;
  xbar::DriftModel probe(1024, dcfg, Rng(7));
  Tensor w({1024}, 1.0f);

  for (double age : {0.0, 1e2, 1e4, 1e6, 1e8, 1e10}) {
    xbar::HwDeployConfig cfg;
    cfg.pulses.assign(model.encoded.size(), model.base_pulses());
    cfg.device.drift_nu = nu;
    cfg.device.drift_nu_sigma = nu_sigma;
    cfg.device.drift_time = age;
    cfg.seed = 11;  // same devices at every age
    xbar::HardwareNetwork hw(*model.net, model.encoded, cfg);
    const float acc = hw.evaluate(ds);
    const auto stats = xbar::drift_stats(probe, w, age < 1.0 ? 1.0 : age);
    table.add_row({Table::fmt(age, 0), Table::fmt(stats.mean_factor, 4),
                   Table::fmt(stats.rms_rel_error, 4),
                   Table::fmt(100.0 * acc, 2)});
  }

  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "The mean decay is a uniform gain (harmless to argmax decisions);\n"
      "accuracy only falls once the device-to-device nu spread makes the\n"
      "per-cell decay factors diverge — the RMS weight-error column.\n");
  return 0;
}
