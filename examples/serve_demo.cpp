// Serving-runtime demo: put a trained binary-weight MLP behind the online
// inference server and watch dynamic micro-batching under bursty Poisson
// traffic — first the clean analytic backend (fused batches), then the
// same requests against the pulse-level deployed crossbar.
//
//   ./serve_demo [--trace-out PREFIX]
//
// With --trace-out, each backend's measured run is exported as a Chrome
// trace-event JSON (<prefix><backend>.json) loadable in chrome://tracing
// or Perfetto.
#include "common/cli.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "crossbar/crossbar_layers.hpp"
#include "crossbar/hw_deploy.hpp"
#include "models/mlp.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "tensor/ops.hpp"

#include <cstdio>
#include <string>

int main(int argc, char** argv) {
  using namespace gbo;
  CliParser cli("serve_demo", "Dynamic micro-batching serving demo.");
  add_serve_trace_flags(cli);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const std::string trace_out = cli.get_string("trace-out", "");
  set_log_level(LogLevel::kWarn);

  models::MlpConfig mcfg;
  mcfg.in_features = 32;
  mcfg.hidden = {64, 64};
  models::Mlp model = models::build_mlp(mcfg);
  model.net->set_training(false);

  data::Dataset ds;
  Rng drng(3);
  ds.images = Tensor({256, mcfg.in_features});
  ops::fill_uniform(ds.images, drng, -1.0f, 1.0f);
  ds.labels.assign(256, 0);

  // 2k requests at ~8k rps with 3x bursts 30% of the time.
  serve::TrafficConfig tcfg;
  tcfg.num_requests = 2000;
  tcfg.rate_rps = 8000.0;
  tcfg.burst_factor = 3.0;
  tcfg.burst_duty = 0.3;
  tcfg.burst_period_s = 0.01;
  const auto trace = serve::make_trace(tcfg, ds.size());

  serve::ServeConfig scfg;
  scfg.batch.max_batch = 8;
  scfg.batch.max_wait_us = 200;
  scfg.num_workers = 4;

  std::printf("Serving %zu requests on %zu workers (%zu pool threads)...\n\n",
              trace.size(), scfg.num_workers,
              ThreadPool::instance().num_threads());

  // Shared report printer (serve/metrics.hpp): the same column schema the
  // SLO demo and any future tool render, so demos cannot drift.
  Table table(serve::report_header());
  auto row = [&](const char* name, const char* slug,
                 serve::InferenceServer& server,
                 const std::vector<serve::Arrival>& tr) {
    obs::begin_session();
    const serve::ServeReport r = server.run(tr);
    const obs::TraceSnapshot snap = obs::end_session();
    table.add_row(serve::report_row(name, r));
    if (!trace_out.empty() && obs::runtime_enabled()) {
      const std::string path = trace_out + slug + ".json";
      if (obs::write_chrome_trace(snap, path, std::string("serve_demo ") + name))
        std::printf("wrote %s\n", path.c_str());
    }
  };

  {
    serve::AnalyticBackend clean(*model.net, /*stochastic=*/false);
    serve::InferenceServer server(
        serve::ServerSpec{}.primary(clean).dataset(ds).config(scfg));
    server.warmup();
    (void)server.run(trace);  // warm run sizes the arenas
    row("analytic clean", "analytic_clean", server, trace);
  }
  {
    Rng crng(11);
    xbar::LayerNoiseController ctrl(model.encoded, /*sigma=*/1.0,
                                    model.base_pulses(), crng);
    ctrl.attach();
    ctrl.set_enabled_all(true);
    serve::AnalyticBackend noisy(*model.net, /*stochastic=*/true);
    serve::InferenceServer server(
        serve::ServerSpec{}.primary(noisy).dataset(ds).config(scfg));
    server.warmup();
    (void)server.run(trace);
    row("analytic noisy", "analytic_noisy", server, trace);
    ctrl.detach();
  }
  {
    xbar::HwDeployConfig hw_cfg;
    hw_cfg.sigma = 0.5;
    hw_cfg.device.read_noise_sigma = 0.05;
    hw_cfg.device.adc_bits = 8;
    xbar::HardwareNetwork hw(*model.net, model.encoded, hw_cfg);
    serve::PulseBackend pulse(hw);
    serve::TrafficConfig slow = tcfg;  // pulse sim is ~10x heavier per req
    slow.num_requests = 400;
    slow.rate_rps = 2000.0;
    serve::InferenceServer server(
        serve::ServerSpec{}.primary(pulse).dataset(ds).config(scfg));
    server.warmup();
    const auto strace = serve::make_trace(slow, ds.size());
    (void)server.run(strace);
    row("pulse hardware", "pulse", server, strace);
  }

  std::printf("%s", table.to_text().c_str());
  std::printf(
      "\nPayloads are bitwise reproducible from (seed, trace) at any worker\n"
      "count or batch boundary; see bench_serve --smoke for the gates.\n");
  return 0;
}
