// Encoding explorer: no training — inspect how activations become pulse
// trains, how the two encodings accumulate noise (Eq. 2 vs Eq. 3), and how
// the full pulse-level crossbar simulation (device non-idealities included)
// compares with the analytic model.
//
//   ./encoding_explorer
#include "common/table.hpp"
#include "crossbar/mvm_engine.hpp"
#include "encoding/noise_analysis.hpp"
#include "tensor/ops.hpp"

#include <cstdio>

using namespace gbo;

namespace {

void show_pulse_trains() {
  std::printf("== Pulse trains for a 9-level activation (p = 8) ==\n");
  Tensor values({5}, std::vector<float>{-1.0f, -0.5f, 0.0f, 0.5f, 1.0f});
  enc::PulseTrain tc = enc::thermometer_encode(values, 8);
  enc::PulseTrain bs = enc::bit_slicing_encode(values, 3);

  Table table({"value", "thermometer (8 pulses)", "bit-sliced (3 pulses, LSB first)"});
  for (std::size_t j = 0; j < values.numel(); ++j) {
    std::string tstr, bstr;
    for (std::size_t i = 0; i < 8; ++i)
      tstr += tc.pulses[i][j] > 0 ? '+' : '-';
    for (std::size_t i = 0; i < 3; ++i)
      bstr += bs.pulses[i][j] > 0 ? '+' : '-';
    table.add_row({Table::fmt(values[j], 2), tstr, bstr});
  }
  std::printf("%s\n", table.to_text().c_str());
}

void show_variance_factors() {
  std::printf("== Accumulated noise variance factor (x sigma^2) ==\n");
  Table table({"#pulses", "thermometer (Eq. 3)", "bit slicing (Eq. 2)"});
  for (std::size_t p : {1u, 2u, 4u, 8u, 16u}) {
    table.add_row({std::to_string(p),
                   Table::fmt(enc::thermometer_variance_factor(p), 4),
                   Table::fmt(enc::bit_slicing_variance_factor(p), 4)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("Thermometer decays as 1/p; bit slicing saturates at 1/3 —\n"
              "the reason the paper builds on thermometer codes.\n\n");
}

void show_crossbar_execution() {
  std::printf("== Pulse-level crossbar execution vs analytic model ==\n");
  Rng wr(1);
  Tensor w({4, 16});
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = wr.bernoulli(0.5) ? 1.0f : -1.0f;
  Tensor x({1, 16});
  ops::fill_uniform(x, wr, -1.0f, 1.0f);

  xbar::MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, 8};
  cfg.sigma = 1.0;
  cfg.device.program_variation = 0.05;  // mild device-to-device variation
  cfg.device.adc_bits = 8;
  xbar::MvmEngine engine(w, cfg, Rng(2));

  Tensor ideal = engine.run_ideal(x);
  Table table({"output line", "ideal", "pulse-level (1 draw)", "analytic (1 draw)"});
  Tensor pulse = engine.run_pulse_level(x);
  Tensor ana = engine.run_analytic(x);
  for (std::size_t o = 0; o < 4; ++o)
    table.add_row({std::to_string(o), Table::fmt(ideal.at(0, o), 3),
                   Table::fmt(pulse.at(0, o), 3), Table::fmt(ana.at(0, o), 3)});
  std::printf("%s\n", table.to_text().c_str());

  // Empirical variance over many draws vs the Eq. 3 prediction.
  const int trials = 4000;
  double var = 0.0;
  for (int t = 0; t < trials; ++t) {
    Tensor y = engine.run_pulse_level(x);
    const double d = y.at(0, 0) - ideal.at(0, 0);
    var += d * d;
  }
  var /= trials;
  std::printf("empirical pulse-level noise variance: %.4f (device var inflates it)\n",
              var);
  std::printf("Eq. 3 prediction sigma^2/p:           %.4f\n\n", 1.0 / 8.0);
}

void show_fig1b() {
  std::printf("== Fig. 1b: noise variance vs information bits ==\n");
  Table table({"bits", "bit-slicing var (norm.)", "thermometer var (norm.)"});
  for (const auto& pt : enc::fig1b_series(8))
    table.add_row({std::to_string(pt.bits), Table::fmt(pt.bs_variance, 4),
                   Table::fmt(pt.tc_variance, 4)});
  std::printf("%s\n", table.to_text().c_str());
}

}  // namespace

int main() {
  show_pulse_trains();
  show_variance_factors();
  show_crossbar_execution();
  show_fig1b();
  return 0;
}
