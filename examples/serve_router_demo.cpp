// Multi-replica serving demo (DESIGN.md §10): put N replicas of a deployed
// backend pair behind the deterministic router and drive a flash crowd
// through an outage — one replica is down for the whole run, the autoscaler
// activates replicas off the planner's queue-depth metric, and every
// routing decision, per-replica shed set, and payload bit is reproducible
// from (seed, trace, policy).
//
//   ./serve_router_demo [--trace-out PREFIX]
//
// With --trace-out, the run is exported as a Chrome trace-event JSON
// (<prefix>router.json) loadable in chrome://tracing or Perfetto.
#include "common/cli.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "models/mlp.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "serve/router.hpp"
#include "tensor/ops.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

int main(int argc, char** argv) {
  using namespace gbo;
  CliParser cli("serve_router_demo", "Sharded multi-replica serving demo.");
  add_serve_trace_flags(cli);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const std::string trace_out = cli.get_string("trace-out", "");
  set_log_level(LogLevel::kWarn);

  models::MlpConfig mcfg;
  mcfg.in_features = 24;
  mcfg.hidden = {32, 32};
  mcfg.num_classes = 10;
  mcfg.seed = 21;
  models::Mlp model = models::build_mlp(mcfg);
  model.net->set_training(false);
  models::MlpConfig dcfg = mcfg;
  dcfg.hidden = {16};
  dcfg.seed = 22;
  models::Mlp small = models::build_mlp(dcfg);
  small.net->set_training(false);

  data::Dataset ds;
  Rng drng(43);
  ds.images = Tensor({128, mcfg.in_features});
  ops::fill_uniform(ds.images, drng, -1.0f, 1.0f);
  ds.labels.assign(128, 0);

  serve::AnalyticBackend primary(*model.net, /*stochastic=*/false);
  serve::AnalyticBackend fallback(*small.net, /*stochastic=*/false);

  serve::TrafficConfig tcfg;
  tcfg.num_requests = 360;
  tcfg.rate_rps = 1800.0;
  tcfg.shape = serve::TraceShape::kFlashCrowd;
  tcfg.flash_factor = 10.0;
  tcfg.flash_start_s = 0.04;
  tcfg.flash_ramp_s = 0.005;
  tcfg.flash_hold_s = 0.02;
  tcfg.high_fraction = 0.2;
  tcfg.low_fraction = 0.3;
  tcfg.seed = 101;
  const auto trace = serve::make_trace(tcfg, ds.size());

  serve::ServeConfig cfg;
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait_us = 200;
  cfg.num_workers = 2;
  cfg.seed = 29;
  cfg.slo.enabled = true;
  cfg.slo.deadline_us = 15000;
  cfg.slo.completion_headroom_us = 9000;
  cfg.slo.queue.capacity = 64;
  cfg.slo.queue.on_full = serve::QueuePolicy::OnFull::kDropOldest;
  cfg.slo.cost.primary_us = 500;
  cfg.slo.cost.degraded_us = 100;
  cfg.slo.ladder.degrade_depth = 8;
  cfg.slo.ladder.shed_depth = 30;
  cfg.slo.ladder.recover_depth = 2;
  cfg.slo.ladder.shed_floor = serve::Priority::kNormal;

  serve::RouterPolicy router;
  router.strategy = serve::RouterPolicy::Strategy::kRoundRobin;
  router.min_replicas = 1;
  router.scale_depth = 24;  // autoscale off planned queue depth
  // Replica 1 is down for the run (fault id == replica index).
  router.fault.enabled = true;
  router.fault.outage_start_id = 1;
  router.fault.outage_len = 1;

  serve::ReplicaGroup group(serve::ServerSpec{}
                                .primary(primary)
                                .degraded(fallback)
                                .dataset(ds)
                                .config(cfg)
                                .replicas(4)
                                .router(router));

  // The fleet plan, before anything runs.
  const serve::RouterPlan rp = group.plan_trace(trace);
  std::printf(
      "Planned %zu requests across %zu deployed replicas "
      "(%zu alive -> %zu activated by the autoscaler):\n",
      trace.size(), rp.total_replicas,
      static_cast<std::size_t>(
          std::count(rp.alive.begin(), rp.alive.end(), std::uint8_t{1})),
      rp.active_replicas);
  std::printf("  routing hash %s, fleet shed-set hash %s\n\n",
              serve::hex64(rp.routing_hash).c_str(),
              serve::hex64(rp.shed_set_hash).c_str());

  std::printf("Executing on %zu pool threads...\n",
              ThreadPool::instance().num_threads());
  obs::begin_session();
  const serve::RouterReport rep = group.run(trace);
  const obs::TraceSnapshot snap = obs::end_session();

  Table t({"replica", "alive", "active", "assigned", "delivered", "shed",
           "shed hash == plan", "steady allocs"});
  bool per_replica_ok = true;
  for (std::size_t r = 0; r < rep.replicas.size(); ++r) {
    const serve::ReplicaStats& rs = rep.replicas[r];
    const bool ok = rs.exec_shed_set_hash == rs.plan_shed_set_hash;
    per_replica_ok = per_replica_ok && ok;
    t.add_row({std::to_string(r), rs.alive ? "yes" : "no",
               rs.active ? "yes" : "no", std::to_string(rs.assigned),
               std::to_string(rs.delivered), std::to_string(rs.shed),
               ok ? "yes" : "NO", std::to_string(rs.steady_allocs)});
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf("%s", serve::slo_exec_summary("fleet", rep.serve).c_str());
  std::printf("  routing hash:  %s (matches plan: %s)\n",
              serve::hex64(rep.routing_hash).c_str(),
              rep.routing_hash == rp.routing_hash ? "yes" : "NO");
  std::printf("  per-replica shed sets match their sub-plans: %s\n",
              per_replica_ok ? "yes" : "NO");
  if (obs::runtime_enabled()) {
    const std::uint64_t fp = obs::causal_fingerprint(snap.events);
    const std::uint64_t want = serve::expected_causal_fingerprint(rp);
    std::printf("  causal trace fingerprint: %s (matches fleet oracle: %s)\n",
                serve::hex64(fp).c_str(), fp == want ? "yes" : "NO");
    if (!trace_out.empty()) {
      const std::string path = trace_out + "router.json";
      if (obs::write_chrome_trace(snap, path, "serve_router_demo"))
        std::printf("  wrote %s\n", path.c_str());
    }
  }
  std::printf(
      "\nRouting, per-replica shed sets, and payloads are pure functions of\n"
      "(seed, trace, policy): a rerouted request (outage, autoscale step)\n"
      "served at the same fidelity keeps its payload bits, because every\n"
      "replica shares the payload seed and payloads depend only on\n"
      "(seed, request id, mode). See bench_serve --router-json for the\n"
      "CI gates.\n");
  return per_replica_ok && rep.routing_hash == rp.routing_hash ? 0 : 1;
}
