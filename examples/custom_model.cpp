// Custom model walkthrough: bring your own architecture to GBO.
//
// Everything GBO needs from a network is (a) an nn::Sequential it can run
// and (b) the list of crossbar-encoded layers as quant::Hookable*. This
// example builds a residual network (models/resnet — a topology the paper
// never evaluated), pretrains it briefly, runs gradient-based bit-encoding
// optimization on it, and compares the discovered heterogeneous schedule
// against the uniform baseline under noise.
//
//   ./custom_model [--epochs 8] [--sigma-scale 1.0]
#include "common/cli.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "data/synth_cifar.hpp"
#include "gbo/gbo.hpp"
#include "gbo/pla_schedule.hpp"
#include "models/resnet.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace gbo;
  set_log_level(LogLevel::kWarn);

  CliParser cli("custom_model", "GBO on a user-defined residual network.");
  cli.add_option("epochs", "Pretraining epochs", "8");
  cli.add_option("sigma-scale", "Noise level as a multiple of the auto pick",
                 "1.0");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  // 1. Your architecture. Any module graph works as long as the encoded
  //    layers are QuantConv2d/QuantLinear (or your own Hookable).
  models::ResNetConfig mcfg;
  mcfg.width = 8;
  mcfg.image_size = 16;
  models::ResNet model = models::build_resnet(mcfg);
  std::printf("ResNet-8: %zu crossbar-encoded layers:", model.encoded.size());
  for (const auto& name : model.encoded_names) std::printf(" %s", name.c_str());
  std::printf("\n");

  // 2. Data + quantization-aware pretraining (weights binary, activations
  //    9-level, exactly like the paper's setup).
  data::SynthCifarConfig dcfg;
  dcfg.image_size = 16;
  data::Dataset train = data::make_synth_cifar(dcfg, 1200, 0);
  data::Dataset test = data::make_synth_cifar(dcfg, 400, 1);
  core::PretrainConfig pcfg;
  pcfg.epochs = static_cast<std::size_t>(cli.get_int("epochs", 8));
  std::printf("Pre-training...\n");
  const auto stats =
      core::pretrain(*model.net, model.binary, train, test, pcfg);
  std::printf("clean test accuracy: %.2f%%\n\n", 100.0 * stats.test_acc);

  // 3. Pick a noise level that visibly hurts (calibrated to ~62% baseline).
  Rng rng(5);
  xbar::LayerNoiseController ctrl(model.encoded, 0.0, model.base_pulses(),
                                  rng);
  const auto sigmas =
      core::calibrate_sigmas(*model.net, ctrl, test, {0.62});
  ctrl.detach();
  const double sigma = sigmas.front() * cli.get_double("sigma-scale", 1.0);

  // 4. GBO: freeze the weights, learn per-layer pulse lengths.
  std::printf("Running GBO (lambda-only training) at sigma=%.2f...\n", sigma);
  opt::GboConfig gcfg;
  gcfg.sigma = sigma;
  gcfg.gamma = 2e-3;
  gcfg.epochs = 6;
  gcfg.lr = 5e-3f;
  opt::GboTrainer trainer(*model.net, model.encoded, gcfg);
  trainer.train(train);
  const auto schedule = trainer.selected_pulses();
  std::printf("selected schedule: %s (avg %.2f pulses)\n\n",
              opt::PulseSchedule{schedule}.to_string().c_str(),
              trainer.avg_selected_pulses());

  // 5. Compare under noise.
  Table table({"Configuration", "Avg.# pulses", "Acc. (%)"});
  auto eval = [&](const std::string& name,
                  const std::vector<std::size_t>& pulses) {
    ctrl.attach();
    ctrl.set_enabled_all(true);
    ctrl.set_sigma(sigma);
    ctrl.set_pulses(pulses);
    const float acc = core::evaluate_noisy(*model.net, ctrl, test, 3);
    ctrl.detach();
    table.add_row({name,
                   Table::fmt(opt::PulseSchedule{pulses}.average(), 2),
                   Table::fmt(100.0 * acc, 2)});
  };
  eval("baseline (uniform 8)",
       std::vector<std::size_t>(model.encoded.size(), 8));
  eval("GBO schedule", schedule);
  std::printf("%s\n", table.to_text().c_str());
  std::printf("GBO transfers to architectures the paper never tried —\n"
              "only the Hookable layer list changes.\n");
  return 0;
}
