// SLO control-plane demo (DESIGN.md §7): drive the serving runtime through
// a flash-crowd overload with deterministic fault injection and watch the
// control plane respond — admission control on the bounded queue, deadline
// sheds, the fidelity ladder stepping down onto the analytic fallback,
// transient retries, and the circuit breaker opening during a sustained
// outage window.
//
// Every decision comes from the virtual-clock planner, a pure function of
// (seed, trace, policy) — so the demo can print the plan before a single
// request runs, then execute it at two worker counts and show that the
// shed-set fingerprints and delivered payloads are bitwise identical.
//
//   ./serve_slo_demo [--trace-out PREFIX]
//
// With --trace-out, the 4-worker run is exported as a Chrome trace-event
// JSON (<prefix>slo.json) loadable in chrome://tracing or Perfetto.
#include "common/cli.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "crossbar/hw_deploy.hpp"
#include "models/mlp.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "serve/policy.hpp"
#include "serve/server.hpp"
#include "tensor/ops.hpp"

#include <cstdio>
#include <cstring>
#include <string>

int main(int argc, char** argv) {
  using namespace gbo;
  CliParser cli("serve_slo_demo", "SLO control-plane serving demo.");
  add_serve_trace_flags(cli);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const std::string trace_out = cli.get_string("trace-out", "");
  set_log_level(LogLevel::kWarn);

  // Small binary-weight MLP; the pulse-level deployed crossbar is the
  // primary backend, the clean analytic host network is the degraded
  // fallback the fidelity ladder and the breaker route to.
  models::MlpConfig mcfg;
  mcfg.in_features = 24;
  mcfg.hidden = {32, 32};
  mcfg.num_classes = 10;
  mcfg.seed = 21;
  models::Mlp model = models::build_mlp(mcfg);
  model.net->set_training(false);

  data::Dataset ds;
  Rng drng(43);
  ds.images = Tensor({128, mcfg.in_features});
  ops::fill_uniform(ds.images, drng, -1.0f, 1.0f);
  ds.labels.assign(128, 0);

  xbar::HwDeployConfig hw_cfg;
  hw_cfg.sigma = 0.5;
  hw_cfg.device.read_noise_sigma = 0.05;
  hw_cfg.device.adc_bits = 8;
  hw_cfg.device.program_variation = 0.05;
  xbar::HardwareNetwork hw(*model.net, model.encoded, hw_cfg);
  serve::PulseBackend primary(hw);
  serve::AnalyticBackend fallback(*model.net, /*stochastic=*/false);

  // Flash crowd: steady 900 rps, then a 14x spike — far beyond sustained
  // capacity, which is what exercises the ladder and the shedder.
  serve::TrafficConfig tcfg;
  tcfg.num_requests = 320;
  tcfg.rate_rps = 900.0;
  tcfg.shape = serve::TraceShape::kFlashCrowd;
  tcfg.flash_factor = 14.0;
  tcfg.flash_start_s = 0.05;
  tcfg.flash_ramp_s = 0.005;
  tcfg.flash_hold_s = 0.02;
  tcfg.high_fraction = 0.2;  // 20% high / 50% normal / 30% low priority
  tcfg.low_fraction = 0.3;
  tcfg.seed = 101;
  const auto trace = serve::make_trace(tcfg, ds.size());

  serve::ServeConfig cfg;
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait_us = 200;
  cfg.seed = 29;
  cfg.slo.enabled = true;
  cfg.slo.deadline_us = 15000;
  cfg.slo.completion_headroom_us = 9000;
  cfg.slo.queue.capacity = 64;
  cfg.slo.queue.on_full = serve::QueuePolicy::OnFull::kDropOldest;
  cfg.slo.cost.batch_fixed_us = 50;
  cfg.slo.cost.primary_us = 800;
  cfg.slo.cost.degraded_us = 100;
  cfg.slo.cost.retry_penalty_us = 100;
  cfg.slo.ladder.degrade_depth = 8;
  cfg.slo.ladder.shed_depth = 30;
  cfg.slo.ladder.recover_depth = 2;
  cfg.slo.ladder.shed_floor = serve::Priority::kNormal;
  cfg.slo.retry.max_attempts = 2;
  cfg.slo.retry.backoff_us = 50;
  cfg.slo.breaker.failure_threshold = 3;
  cfg.slo.breaker.cooldown_us = 30000;
  cfg.slo.fault.enabled = true;
  cfg.slo.fault.seed = 555;
  cfg.slo.fault.transient_rate = 0.08;
  cfg.slo.fault.outage_start_id = 30;  // sustained outage before the flash
  cfg.slo.fault.outage_len = 12;

  // --- The plan: what WILL happen, before anything runs. ---------------
  const serve::Plan plan = serve::plan(trace, cfg.slo, cfg.batch);
  const serve::PlanCounters& c = plan.counters;
  std::printf("Planned on the virtual clock (%zu requests):\n", trace.size());
  std::printf(
      "  served %zu (primary %zu, ladder-degraded %zu, breaker-degraded %zu,"
      " fallback %zu)\n",
      c.served, c.served_primary, c.degraded_ladder, c.degraded_breaker,
      c.degraded_fallback);
  std::printf(
      "  shed %zu (expired %zu, overload %zu) rejected %zu evicted %zu\n",
      c.shed_expired + c.shed_overload, c.shed_expired, c.shed_overload,
      c.rejected, c.evicted);
  std::printf(
      "  faults %zu over %zu retried requests, breaker opened %zux,"
      " ladder peaked at level %d (final %d), peak depth %zu\n",
      c.faults_injected, c.retried_requests, c.breaker_opens,
      c.max_ladder_level, c.final_ladder_level, c.max_virtual_depth);
  std::printf("  shed-set fingerprint 0x%016llx\n\n",
              static_cast<unsigned long long>(plan.shed_set_hash));

  Table lat({"priority", "served", "virtual p50 us", "p95 us", "p99 us"});
  const char* pri_names[] = {"high", "normal", "low"};
  for (std::size_t k = 0; k < serve::kNumPriorities; ++k) {
    const serve::LatencyStats& s = plan.virtual_by_priority[k];
    lat.add_row({pri_names[k], std::to_string(s.count),
                 Table::fmt(s.p50_us, 0), Table::fmt(s.p95_us, 0),
                 Table::fmt(s.p99_us, 0)});
  }
  std::printf("%s\n", lat.to_text().c_str());

  // --- Execution: the runtime honors the plan at any worker count. -----
  std::printf("Executing on %zu pool threads...\n",
              ThreadPool::instance().num_threads());
  cfg.num_workers = 1;
  serve::InferenceServer one(serve::ServerSpec{}
                                 .primary(primary)
                                 .degraded(fallback)
                                 .dataset(ds)
                                 .config(cfg));
  obs::begin_session();
  const serve::ServeReport r1 = one.run(trace);
  const obs::TraceSnapshot s1 = obs::end_session();
  cfg.num_workers = 4;
  serve::InferenceServer four(serve::ServerSpec{}
                                  .primary(primary)
                                  .degraded(fallback)
                                  .dataset(ds)
                                  .config(cfg));
  obs::begin_session();
  const serve::ServeReport r4 = four.run(trace);
  const obs::TraceSnapshot s4 = obs::end_session();

  const Tensor& o1 = r1.outputs;
  const Tensor& o4 = r4.outputs;
  const bool payloads_equal =
      o1.numel() == o4.numel() &&
      std::memcmp(o1.data(), o4.data(), o1.numel() * sizeof(float)) == 0;
  std::printf("%s", serve::slo_exec_summary("1 worker", r1).c_str());
  std::printf("%s", serve::slo_exec_summary("4 workers", r4).c_str());
  std::printf("  payloads bitwise identical: %s\n",
              payloads_equal ? "yes" : "NO");
  if (obs::runtime_enabled()) {
    // The causal half of the trace stream (admissions, sheds, retries,
    // deliveries, ladder/breaker transitions on the virtual clock) hashes
    // identically at any worker count and matches the plan-derived oracle.
    const std::uint64_t fp1 = obs::causal_fingerprint(s1.events);
    const std::uint64_t fp4 = obs::causal_fingerprint(s4.events);
    const std::uint64_t want = serve::expected_causal_fingerprint(plan);
    std::printf("  causal trace fingerprint:   %s (same at 1w/4w: %s, "
                "matches plan oracle: %s)\n",
                serve::hex64(fp4).c_str(), fp1 == fp4 ? "yes" : "NO",
                fp4 == want ? "yes" : "NO");
    if (!trace_out.empty()) {
      const std::string path = trace_out + "slo.json";
      if (obs::write_chrome_trace(s4, path, "serve_slo_demo"))
        std::printf("  wrote %s\n", path.c_str());
    }
  }
  std::printf("  fingerprints match plan:    %s\n",
              r1.slo.exec_shed_set_hash == plan.shed_set_hash &&
                      r4.slo.exec_shed_set_hash == plan.shed_set_hash
                  ? "yes"
                  : "NO");
  std::printf(
      "\nThe shed set is a pure function of (seed, trace, policy): rerun\n"
      "this demo on any machine, at any GBO_NUM_THREADS, and every\n"
      "fingerprint and payload above is bitwise unchanged. See\n"
      "bench_serve --smoke --slo-json for the CI gates.\n");
  return payloads_equal ? 0 : 1;
}
