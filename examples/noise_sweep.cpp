// Noise sweep: accuracy of the standard pretrained VGG9 as a function of
// the crossbar noise level, for several uniform pulse counts. Demonstrates
// the artifact cache (the first run pretrains; later runs are instant) and
// the Eq. 3/4 noise-suppression effect end to end.
//
//   ./noise_sweep
#include "core/experiment.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"

#include <cstdio>

int main() {
  using namespace gbo;
  core::Experiment exp = core::make_experiment();
  std::printf("clean accuracy: %.2f%%\n\n", 100.0 * exp.clean_acc);

  Rng rng(404);
  xbar::LayerNoiseController ctrl(exp.model.encoded, 0.0,
                                  exp.model.base_pulses(), rng);
  ctrl.attach();

  const std::vector<double> sigmas{0.25, 0.5, 1.0, 2.0, 4.0};
  const std::vector<std::size_t> pulse_counts{8, 12, 16, 24};

  std::vector<std::string> header{"sigma"};
  for (std::size_t p : pulse_counts) header.push_back("p=" + std::to_string(p));
  Table table(header);

  for (double sigma : sigmas) {
    ctrl.set_sigma(sigma);
    std::vector<std::string> row{Table::fmt(sigma, 2)};
    for (std::size_t p : pulse_counts) {
      ctrl.set_uniform_pulses(p);
      const float acc = core::evaluate_noisy(*exp.model.net, ctrl, exp.test, 3);
      row.push_back(Table::fmt(100.0 * acc, 2));
    }
    table.add_row(std::move(row));
    log_info("sigma=", sigma, " done");
  }
  ctrl.detach();

  std::printf("%s\n", table.to_text().c_str());
  table.write_csv("noise_sweep.csv");
  std::printf("series written to noise_sweep.csv\n");
  return 0;
}
