#include "models/mlp.hpp"
#include "models/vgg9.hpp"

#include "tensor/ops.hpp"

#include <gtest/gtest.h>

namespace gbo::models {
namespace {

TEST(Vgg9, BuildsWithSevenEncodedLayers) {
  Vgg9Config cfg;
  cfg.width = 8;
  Vgg9 model = build_vgg9(cfg);
  EXPECT_EQ(model.encoded.size(), 7u);
  EXPECT_EQ(model.encoded_names.size(), 7u);
  EXPECT_EQ(model.encoded_names.front(), "conv2");
  EXPECT_EQ(model.encoded_names.back(), "fc1");
  EXPECT_EQ(model.binary.size(), 8u);  // conv1..conv7 + fc1
  EXPECT_EQ(model.base_pulses(), 8u);
}

TEST(Vgg9, ForwardShape) {
  Vgg9Config cfg;
  cfg.width = 8;
  cfg.image_size = 16;
  Vgg9 model = build_vgg9(cfg);
  Tensor x({2, 3, 16, 16});
  Rng rng(1);
  ops::fill_uniform(x, rng, -1.0f, 1.0f);
  Tensor y = model.net->forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 10}));
}

TEST(Vgg9, ForwardShape32) {
  Vgg9Config cfg;
  cfg.width = 4;
  cfg.image_size = 32;
  Vgg9 model = build_vgg9(cfg);
  Tensor x({1, 3, 32, 32});
  Tensor y = model.net->forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 10}));
}

TEST(Vgg9, RejectsBadConfig) {
  Vgg9Config cfg;
  cfg.image_size = 12;  // not divisible by 8
  EXPECT_THROW(build_vgg9(cfg), std::invalid_argument);
  Vgg9Config cfg2;
  cfg2.act_levels = 1;
  EXPECT_THROW(build_vgg9(cfg2), std::invalid_argument);
}

TEST(Vgg9, DeterministicInit) {
  Vgg9Config cfg;
  cfg.width = 4;
  Vgg9 a = build_vgg9(cfg);
  Vgg9 b = build_vgg9(cfg);
  const auto pa = a.net->params();
  const auto pb = b.net->params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_TRUE(ops::allclose(pa[i]->value, pb[i]->value, 0.0f, 0.0f));
}

TEST(Vgg9, FingerprintDistinguishesConfigs) {
  Vgg9Config a, b;
  b.width = a.width * 2;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Vgg9, EncodedLayersAreDistinct) {
  Vgg9Config cfg;
  cfg.width = 4;
  Vgg9 model = build_vgg9(cfg);
  for (std::size_t i = 0; i < model.encoded.size(); ++i)
    for (std::size_t j = i + 1; j < model.encoded.size(); ++j)
      EXPECT_NE(model.encoded[i], model.encoded[j]);
}

TEST(Mlp, BuildsAndRuns) {
  MlpConfig cfg;
  cfg.in_features = 12;
  cfg.hidden = {16, 16, 8};
  Mlp model = build_mlp(cfg);
  EXPECT_EQ(model.encoded.size(), 2u);  // hidden layers 2 and 3
  EXPECT_EQ(model.binary.size(), 3u);
  Tensor x({5, 12});
  Tensor y = model.net->forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{5, 10}));
}

TEST(Mlp, RejectsEmptyHidden) {
  MlpConfig cfg;
  cfg.hidden = {};
  EXPECT_THROW(build_mlp(cfg), std::invalid_argument);
}

TEST(Vgg9, StateDictRoundTrip) {
  Vgg9Config cfg;
  cfg.width = 4;
  Vgg9 a = build_vgg9(cfg);
  // Perturb then restore through a state dict.
  Vgg9 b = build_vgg9(cfg);
  b.net->params()[0]->value.fill(0.123f);
  const StateDict state = a.net->state_dict();
  b.net->load_state_dict(state);
  const auto pa = a.net->params();
  const auto pb = b.net->params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_TRUE(ops::allclose(pa[i]->value, pb[i]->value, 0.0f, 0.0f));
}

}  // namespace
}  // namespace gbo::models
