#include "nn/loss.hpp"

#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gbo::nn {
namespace {

TEST(CrossEntropy, MatchesManualComputation) {
  // logits [0, log(3)] with label 1: p1 = 3/4, loss = -log(3/4).
  Tensor logits({1, 2}, std::vector<float>{0.0f, std::log(3.0f)});
  const float loss = CrossEntropy::forward(logits, {1});
  EXPECT_NEAR(loss, -std::log(0.75f), 1e-5f);
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits({2, 4}, 0.0f);
  const float loss = CrossEntropy::forward(logits, {0, 3});
  EXPECT_NEAR(loss, std::log(4.0f), 1e-5f);
}

TEST(CrossEntropy, NumericallyStableForLargeLogits) {
  Tensor logits({1, 2}, std::vector<float>{1000.0f, 0.0f});
  const float loss = CrossEntropy::forward(logits, {0});
  EXPECT_NEAR(loss, 0.0f, 1e-4f);
  const float bad = CrossEntropy::forward(logits, {1});
  EXPECT_NEAR(bad, 1000.0f, 1.0f);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOnehotOverN) {
  Tensor logits({2, 3}, std::vector<float>{1, 2, 3, 0, 0, 0});
  Tensor grad;
  CrossEntropy::forward_backward(logits, {2, 0}, grad);
  // Row 1: uniform softmax (1/3); label 0.
  EXPECT_NEAR(grad.at(1, 0), (1.0f / 3 - 1) / 2, 1e-5f);
  EXPECT_NEAR(grad.at(1, 1), (1.0f / 3) / 2, 1e-5f);
  // Gradient rows sum to zero.
  for (std::size_t r = 0; r < 2; ++r) {
    float row_sum = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) row_sum += grad.at(r, c);
    EXPECT_NEAR(row_sum, 0.0f, 1e-6f);
  }
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(9);
  Tensor logits({3, 4});
  ops::fill_normal(logits, rng, 0.0f, 1.0f);
  const std::vector<std::size_t> labels{1, 3, 0};
  Tensor grad;
  CrossEntropy::forward_backward(logits, labels, grad);

  const float h = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + h;
    const float lp = CrossEntropy::forward(logits, labels);
    logits[i] = orig - h;
    const float lm = CrossEntropy::forward(logits, labels);
    logits[i] = orig;
    EXPECT_NEAR((lp - lm) / (2 * h), grad[i], 2e-3f);
  }
}

TEST(CrossEntropy, ValidatesInputs) {
  Tensor logits({2, 3});
  EXPECT_THROW(CrossEntropy::forward(logits, {0}), std::invalid_argument);
  EXPECT_THROW(CrossEntropy::forward(logits, {0, 5}), std::invalid_argument);
  Tensor bad({6});
  EXPECT_THROW(CrossEntropy::forward(bad, {0}), std::invalid_argument);
}

TEST(Accuracy, CountsCorrectArgmax) {
  Tensor logits({3, 2}, std::vector<float>{2, 1, 0, 5, 1, 0});
  EXPECT_FLOAT_EQ(accuracy(logits, {0, 1, 0}), 1.0f);
  EXPECT_NEAR(accuracy(logits, {1, 1, 0}), 2.0f / 3, 1e-6f);
}

}  // namespace
}  // namespace gbo::nn
