// Zero-downtime weight hot-swap (DESIGN.md §11): the ModelRegistry's
// immutable refcounted snapshots, apply_swap()'s pure canary/rollback
// overlay on the routed ledger (pin-at-admission windows, version-blind
// costs, kCanary mode rewrite), the breaker-gated rollback on a seeded
// faulty candidate, and the end-to-end contract — payload provenance
// bitwise equal to pinned single-version runs at any worker count, with
// the kSwap/kCanary causal trajectory matching the planner oracle.
#include "common/thread_pool.hpp"
#include "models/mlp.hpp"
#include "obs/trace.hpp"
#include "serve/policy.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/swap.hpp"
#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

namespace gbo {
namespace {

struct ThreadGuard {
  std::size_t saved = ThreadPool::instance().num_threads();
  ~ThreadGuard() { ThreadPool::instance().set_num_threads(saved); }
};

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  ops::fill_uniform(t, rng, -1.0f, 1.0f);
  return t;
}

data::Dataset random_dataset(std::size_t n, std::size_t features,
                             std::uint64_t seed) {
  data::Dataset ds;
  ds.images = random_tensor({n, features}, seed);
  ds.labels.assign(n, 0);
  return ds;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.numel(); ++i)
    ASSERT_EQ(a[i], b[i]) << "i=" << i;
}

constexpr std::uint64_t kServeSeed = 29;

serve::TrafficConfig flash_traffic() {
  serve::TrafficConfig cfg;
  cfg.num_requests = 220;
  cfg.rate_rps = 1600.0;
  cfg.shape = serve::TraceShape::kFlashCrowd;
  cfg.flash_factor = 14.0;
  cfg.flash_start_s = 0.05;
  cfg.flash_ramp_s = 0.005;
  cfg.flash_hold_s = 0.02;
  cfg.high_fraction = 0.2;
  cfg.low_fraction = 0.3;
  cfg.seed = 101;
  return cfg;
}

serve::ServeConfig fleet_config() {
  serve::ServeConfig cfg;
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait_us = 200;
  cfg.seed = kServeSeed;
  cfg.slo.enabled = true;
  cfg.slo.deadline_us = 15000;
  cfg.slo.completion_headroom_us = 9000;
  cfg.slo.queue.capacity = 64;
  cfg.slo.queue.on_full = serve::QueuePolicy::OnFull::kDropOldest;
  cfg.slo.cost.batch_fixed_us = 50;
  cfg.slo.cost.primary_us = 800;
  cfg.slo.cost.degraded_us = 100;
  cfg.slo.ladder.degrade_depth = 8;
  cfg.slo.ladder.shed_depth = 30;
  cfg.slo.ladder.recover_depth = 2;
  cfg.slo.ladder.shed_floor = serve::Priority::kNormal;
  return cfg;
}

serve::SwapPolicy mid_trace_swap(std::uint32_t from, std::uint32_t to) {
  serve::SwapPolicy sp;
  sp.enabled = true;
  sp.from_version = from;
  sp.to_version = to;
  sp.start_us = 30000;  // mid-trace, before the flash crowd hits
  sp.canary_replica = 0;
  sp.canary_requests = 8;
  sp.breaker.failure_threshold = 3;
  sp.breaker.cooldown_us = 5000;
  return sp;
}

// Two incumbent/candidate models with identical topology but different
// seeds: same response shape, different weights, so a payload row proves
// which version produced it.
struct SwapFixture {
  models::Mlp incumbent_model;
  models::Mlp candidate_model;
  models::Mlp degraded_model;
  data::Dataset ds;
  serve::AnalyticBackend incumbent;
  serve::AnalyticBackend candidate;
  serve::AnalyticBackend degraded;
  serve::ModelRegistry registry;
  std::uint32_t v1 = 0;
  std::uint32_t v2 = 0;

  SwapFixture()
      : incumbent_model(make_model({24, 24}, 31)),
        candidate_model(make_model({24, 24}, 77)),
        degraded_model(make_model({12}, 32)),
        ds(random_dataset(32, 16, 61)),
        incumbent(*incumbent_model.net, /*stochastic=*/false),
        candidate(*candidate_model.net, /*stochastic=*/false),
        degraded(*degraded_model.net, /*stochastic=*/false) {
    v1 = registry.register_model(incumbent, "incumbent");
    v2 = registry.register_model(candidate, "candidate");
  }

  static models::Mlp make_model(std::vector<std::size_t> hidden,
                                std::uint64_t seed) {
    models::MlpConfig cfg;
    cfg.in_features = 16;
    cfg.hidden = std::move(hidden);
    cfg.num_classes = 4;
    cfg.seed = seed;
    models::Mlp m = models::build_mlp(cfg);
    m.net->set_training(false);
    return m;
  }

  serve::ServerSpec spec(const serve::ServeConfig& cfg, std::size_t replicas,
                         const serve::SwapPolicy* sp) const {
    serve::RouterPolicy router;
    router.strategy = serve::RouterPolicy::Strategy::kRoundRobin;
    serve::ServerSpec s = serve::ServerSpec{}
                              .primary(incumbent)
                              .degraded(degraded)
                              .dataset(ds)
                              .config(cfg)
                              .replicas(replicas)
                              .router(router)
                              .registry(registry);
    if (sp != nullptr) s.swap(*sp);
    return s;
  }
};

// ---- the registry ---------------------------------------------------------

TEST(ModelRegistry, VersionsAreDenseAndSnapshotsPin) {
  SwapFixture f;
  EXPECT_EQ(f.v1, 1u);
  EXPECT_EQ(f.v2, 2u);
  EXPECT_EQ(f.registry.latest(), 2u);
  EXPECT_EQ(f.registry.size(), 2u);
  EXPECT_TRUE(f.registry.has(1));
  EXPECT_TRUE(f.registry.has(2));
  EXPECT_FALSE(f.registry.has(0));
  EXPECT_FALSE(f.registry.has(3));

  const auto snap = f.registry.snapshot(f.v2);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 2u);
  EXPECT_EQ(snap->backend, &f.candidate);
  EXPECT_EQ(snap->label, "candidate");
  // The shared_ptr is the pin: at least the registry and this handle.
  EXPECT_GE(snap.use_count(), 2);
  EXPECT_EQ(f.registry.snapshot(99), nullptr);
}

TEST(ModelRegistry, RejectsMoreThan255Versions) {
  SwapFixture f;
  serve::ModelRegistry reg;
  for (std::uint32_t v = 1; v <= 255; ++v)
    EXPECT_EQ(reg.register_model(f.incumbent, "v"), v);
  // The causal trace folds the version into one byte; version 256 would
  // alias version 0 (the "no registry" sentinel).
  EXPECT_THROW(reg.register_model(f.incumbent, "overflow"),
               std::invalid_argument);
}

// ---- spec validation ------------------------------------------------------

TEST(SwapSpec, ValidationCatchesEveryMisconfiguration) {
  SwapFixture f;
  const serve::ServeConfig cfg = fleet_config();
  serve::SwapPolicy sp = mid_trace_swap(1, 1);  // from == to
  sp.canary_replica = 9;                        // out of range -> warning
  serve::ServerSpec bad = f.spec(cfg, 3, &sp);
  const auto v = bad.validate();
  EXPECT_FALSE(v.ok());
  EXPECT_GE(v.warnings.size(), 1u);

  serve::SwapPolicy unreg = mid_trace_swap(1, 7);  // 7 never registered
  EXPECT_FALSE(f.spec(cfg, 3, &unreg).validate().ok());

  serve::SwapPolicy no_reg = mid_trace_swap(1, 2);
  serve::ServerSpec no_registry = serve::ServerSpec{}
                                      .primary(f.incumbent)
                                      .dataset(f.ds)
                                      .config(cfg)
                                      .replicas(3)
                                      .swap(no_reg);
  EXPECT_FALSE(no_registry.validate().ok());

  // A hot swap needs a replica boundary to canary on: the single-replica
  // InferenceServer rejects it outright.
  serve::SwapPolicy ok = mid_trace_swap(1, 2);
  serve::ServerSpec single = f.spec(cfg, 1, &ok);
  EXPECT_THROW(serve::InferenceServer{single}, std::invalid_argument);

  // The same policy on a fleet builds cleanly.
  serve::ServerSpec fleet = f.spec(cfg, 3, &ok);
  EXPECT_TRUE(fleet.validate().ok());
}

// ---- the pure overlay -----------------------------------------------------

TEST(ApplySwap, OverlayIsPureVersionBlindAndPinsByAdmission) {
  SwapFixture f;
  const auto trace = serve::make_trace(flash_traffic(), f.ds.size());
  const serve::ServeConfig cfg = fleet_config();
  serve::RouterPolicy router;
  const serve::SwapPolicy sp = mid_trace_swap(1, 2);

  const serve::RouterPlan base =
      serve::route_plan(trace, cfg.slo, cfg.batch, router, 3);
  serve::RouterPlan a = base;
  serve::RouterPlan b = base;
  const serve::SwapPlan swa = serve::apply_swap(a, trace, sp);
  const serve::SwapPlan swb = serve::apply_swap(b, trace, sp);

  // Purity: identical trajectory both times.
  EXPECT_EQ(swa.verdict_us, swb.verdict_us);
  EXPECT_EQ(swa.rolled_back, swb.rolled_back);
  EXPECT_EQ(swa.version_hash, swb.version_hash);
  EXPECT_EQ(swa.version_of, swb.version_of);

  // A clean candidate promotes, and the promotion cuts every non-canary
  // active replica over at the verdict.
  EXPECT_FALSE(swa.rolled_back);
  EXPECT_EQ(swa.canary_served, sp.canary_requests);
  EXPECT_EQ(swa.canary_faults, 0u);
  ASSERT_EQ(swa.cutovers.size(), base.active.size());
  EXPECT_EQ(swa.cutovers[0].at_us, sp.start_us);
  EXPECT_EQ(swa.cutovers[0].replica, sp.canary_replica);
  EXPECT_EQ(swa.cutovers[0].version, 2u);
  EXPECT_GT(swa.verdict_us, swa.start_us);

  // Version-blind overlay: outcomes, virtual times, shed/routing hashes
  // are untouched — a swap cannot change who was admitted, shed, or where
  // anything routed.
  EXPECT_EQ(a.shed_set_hash, base.shed_set_hash);
  EXPECT_EQ(a.routing_hash, base.routing_hash);
  ASSERT_EQ(a.decisions.size(), base.decisions.size());
  std::size_t canaried = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(a.decisions[i].outcome, base.decisions[i].outcome);
    EXPECT_EQ(a.decisions[i].v_done_us, base.decisions[i].v_done_us);

    // The pin-at-admission rule, request by request.
    const std::uint64_t t = trace[i].t_us;
    const bool canary = base.assignment[i] == swa.canary_replica;
    std::uint32_t want;
    if (t < swa.start_us)
      want = 1;
    else if (t < swa.verdict_us)
      want = canary ? 2 : 1;
    else
      want = 2;
    EXPECT_EQ(swa.version_of[i], want) << "request " << i;
    EXPECT_EQ(a.decisions[i].version, want);

    // The canary rewrite: primary-served canary-window requests on the
    // canary replica — and only those — become ServeMode::kCanary.
    const bool in_window = canary && t >= swa.start_us && t < swa.verdict_us;
    if (in_window && base.decisions[i].served() &&
        base.decisions[i].mode == serve::ServeMode::kPrimary) {
      EXPECT_EQ(a.decisions[i].mode, serve::ServeMode::kCanary);
      ++canaried;
    } else {
      EXPECT_EQ(a.decisions[i].mode, base.decisions[i].mode);
    }
  }
  EXPECT_GE(canaried, swa.canary_served);
  EXPECT_EQ(a.counters.served_canary, canaried);
  EXPECT_EQ(a.counters.served_primary + canaried,
            base.counters.served_primary);
  EXPECT_EQ(a.counters.served, base.counters.served);

  // The swap trajectory is part of the causal oracle: a swapped plan must
  // not fingerprint like an unswapped one.
  EXPECT_NE(serve::expected_causal_fingerprint(a),
            serve::expected_causal_fingerprint(base));
  EXPECT_EQ(serve::expected_causal_event_count(a),
            serve::expected_causal_event_count(base) + swa.cutovers.size() +
                1);
}

TEST(ApplySwap, SeededFaultyCandidateRollsBackThroughBreaker) {
  SwapFixture f;
  const auto trace = serve::make_trace(flash_traffic(), f.ds.size());
  const serve::ServeConfig cfg = fleet_config();
  serve::RouterPolicy router;
  serve::SwapPolicy sp = mid_trace_swap(1, 2);
  sp.candidate_fault.enabled = true;
  sp.candidate_fault.transient_rate = 1.0;  // candidate fails every request

  serve::RouterPlan rp = serve::route_plan(trace, cfg.slo, cfg.batch, router, 3);
  const serve::SwapPlan sw = serve::apply_swap(rp, trace, sp);

  EXPECT_TRUE(sw.rolled_back);
  EXPECT_GE(sw.breaker_opens, 1u);
  // The breaker opens at failure_threshold and cuts the evaluation short.
  EXPECT_EQ(sw.canary_served, sp.breaker.failure_threshold);
  EXPECT_EQ(sw.canary_faults, sp.breaker.failure_threshold);
  // Rollback: exactly two cutovers — canary forward, canary back.
  ASSERT_EQ(sw.cutovers.size(), 2u);
  EXPECT_EQ(sw.cutovers[1].replica, sw.canary_replica);
  EXPECT_EQ(sw.cutovers[1].version, 1u);
  EXPECT_EQ(sw.cutovers[1].at_us, sw.verdict_us);

  // Post-verdict admissions pin to the incumbent; only the canary window
  // on the canary replica ever saw the candidate.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].t_us >= sw.verdict_us) EXPECT_EQ(sw.version_of[i], 1u);
    if (sw.version_of[i] == 2u) {
      EXPECT_EQ(rp.assignment[i], sw.canary_replica);
      EXPECT_GE(trace[i].t_us, sw.start_us);
      EXPECT_LT(trace[i].t_us, sw.verdict_us);
    }
  }
}

// ---- end to end -----------------------------------------------------------

// The "zero mixed-version payloads" gate: a swap run's output tensor must
// be row-for-row bitwise equal to a composite of two pinned single-version
// runs — every request's payload attributable to exactly the version the
// plan pinned it to, at any worker count.
TEST(SwapRun, PayloadProvenanceBitwiseEqualsPinnedRunsAtAnyWorkerCount) {
  ThreadGuard guard;
  SwapFixture f;
  const auto trace = serve::make_trace(flash_traffic(), f.ds.size());
  serve::ServeConfig cfg = fleet_config();
  const serve::SwapPolicy sp = mid_trace_swap(f.v1, f.v2);

  ThreadPool::instance().set_num_threads(1);
  cfg.num_workers = 1;
  serve::ReplicaGroup g1(f.spec(cfg, 3, &sp));
  const serve::RouterPlan rp = g1.plan_trace(trace);
  ASSERT_TRUE(rp.swap.enabled);
  ASSERT_FALSE(rp.swap.rolled_back);
  const serve::RouterReport r1 = g1.run(trace);

  ThreadPool::instance().set_num_threads(4);
  cfg.num_workers = 2;
  serve::ReplicaGroup g4(f.spec(cfg, 3, &sp));
  const serve::RouterReport r4 = g4.run(trace);

  // Worker-count invariance of payloads, provenance, and the swap ledger.
  expect_bitwise_equal(r1.serve.outputs, r4.serve.outputs);
  EXPECT_EQ(r1.serve.versions, r4.serve.versions);
  EXPECT_EQ(r1.serve.swap.version_hash, r4.serve.swap.version_hash);
  EXPECT_EQ(r1.serve.slo.exec_shed_set_hash, r4.serve.slo.exec_shed_set_hash);
  EXPECT_EQ(r1.serve.versions, rp.swap.version_of);
  EXPECT_EQ(r1.serve.swap.verdict_us, rp.swap.verdict_us);
  EXPECT_GT(r1.serve.slo.served_canary, 0u);

  // Pinned reference runs: the same fleet serving the whole trace on one
  // version. The swap is version-blind, so all three plans share outcomes
  // and the composite row comparison is exact.
  ThreadPool::instance().set_num_threads(4);
  serve::ReplicaGroup pin1(f.spec(cfg, 3, nullptr));  // primary = incumbent
  const serve::RouterReport rv1 = pin1.run(trace);
  serve::RouterPolicy router;
  serve::ReplicaGroup pin2(serve::ServerSpec{}
                               .primary(f.candidate)
                               .degraded(f.degraded)
                               .dataset(f.ds)
                               .config(cfg)
                               .replicas(3)
                               .router(router));
  const serve::RouterReport rv2 = pin2.run(trace);
  EXPECT_EQ(rv1.serve.slo.exec_shed_set_hash,
            r1.serve.slo.exec_shed_set_hash);  // "zero dropped by the swap"

  const std::size_t out_dim = r1.serve.outputs.shape()[1];
  std::size_t v2_rows = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Tensor& want_src =
        rp.swap.version_of[i] == f.v2 ? rv2.serve.outputs : rv1.serve.outputs;
    if (rp.swap.version_of[i] == f.v2 && rp.decisions[i].served() &&
        (rp.decisions[i].mode == serve::ServeMode::kPrimary ||
         rp.decisions[i].mode == serve::ServeMode::kCanary))
      ++v2_rows;
    for (std::size_t j = 0; j < out_dim; ++j)
      ASSERT_EQ(r1.serve.outputs.at(i, j), want_src.at(i, j))
          << "request " << i << " version " << rp.swap.version_of[i];
  }
  EXPECT_GT(v2_rows, 0u);  // the swap actually moved payloads to v2

  // Provenance accounting closes: per-version served counts sum to the
  // delivered total.
  std::size_t by_version = 0;
  for (const auto& e : r1.serve.swap.served_by_version) by_version += e.second;
  EXPECT_EQ(by_version, r1.serve.completed);
  EXPECT_EQ(r1.serve.swap.served_by_version.size(), 2u);
}

#if GBO_TRACE
TEST(SwapRun, CausalFingerprintMatchesOracleAcrossWorkerCounts) {
  ThreadGuard guard;
  SwapFixture f;
  const auto trace = serve::make_trace(flash_traffic(), f.ds.size());
  serve::ServeConfig cfg = fleet_config();
  serve::SwapPolicy sp = mid_trace_swap(f.v1, f.v2);
  sp.candidate_fault.enabled = true;
  sp.candidate_fault.transient_rate = 1.0;  // exercise the rollback leg too

  ThreadPool::instance().set_num_threads(1);
  cfg.num_workers = 1;
  serve::ReplicaGroup g1(f.spec(cfg, 3, &sp));
  const serve::RouterPlan rp = g1.plan_trace(trace);
  ASSERT_TRUE(rp.swap.rolled_back);
  obs::begin_session();
  (void)g1.run(trace);
  const obs::TraceSnapshot snap1 = obs::end_session();

  ThreadPool::instance().set_num_threads(4);
  cfg.num_workers = 2;
  serve::ReplicaGroup g4(f.spec(cfg, 3, &sp));
  obs::begin_session();
  (void)g4.run(trace);
  const obs::TraceSnapshot snap4 = obs::end_session();

  EXPECT_EQ(snap1.dropped, 0u);
  EXPECT_EQ(snap4.dropped, 0u);
  const std::uint64_t fp1 = obs::causal_fingerprint(snap1.events);
  const std::uint64_t fp4 = obs::causal_fingerprint(snap4.events);
  EXPECT_EQ(fp1, fp4);
  EXPECT_EQ(fp1, serve::expected_causal_fingerprint(rp));
  EXPECT_EQ(obs::causal_event_count(snap1.events),
            serve::expected_causal_event_count(rp));

  // The swap/canary events the runtime emitted are exactly the planned
  // cutovers plus one verdict.
  std::size_t swaps = 0, canaries = 0;
  for (const obs::Event& e : snap1.events) {
    if (e.type == static_cast<std::uint8_t>(obs::EventType::kSwap)) ++swaps;
    if (e.type == static_cast<std::uint8_t>(obs::EventType::kCanary))
      ++canaries;
  }
  EXPECT_EQ(swaps, rp.swap.cutovers.size());
  EXPECT_EQ(canaries, 1u);
}
#endif  // GBO_TRACE

}  // namespace
}  // namespace gbo
