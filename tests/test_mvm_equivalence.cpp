// The paper's Eq. 2–4 as an executable property: the analytic noise model
// (single Gaussian with closed-form accumulated variance) must match the
// pulse-level simulation (one noisy crossbar read per pulse) in both mean
// and variance, for both encodings, across pulse counts and noise levels.
#include "crossbar/mvm_engine.hpp"

#include "common/thread_pool.hpp"
#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>

namespace gbo::xbar {
namespace {

Tensor random_binary_weight(std::size_t out, std::size_t in, std::uint64_t seed) {
  Rng rng(seed);
  Tensor w({out, in});
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  return w;
}

Tensor random_activations(std::size_t n, std::size_t in, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x({n, in});
  ops::fill_uniform(x, rng, -1.0f, 1.0f);
  return x;
}

TEST(MvmEngine, NoiselessPulseLevelEqualsIdeal) {
  const Tensor w = random_binary_weight(8, 24, 1);
  for (auto scheme : {enc::Scheme::kThermometer, enc::Scheme::kBitSlicing}) {
    MvmConfig cfg;
    cfg.spec = enc::EncodingSpec{scheme, scheme == enc::Scheme::kThermometer
                                             ? std::size_t{8}
                                             : std::size_t{4}};
    cfg.sigma = 0.0;
    MvmEngine engine(w, cfg, Rng(2));
    const Tensor x = random_activations(4, 24, 3);
    Tensor pulse = engine.run_pulse_level(x);
    Tensor ideal = engine.run_ideal(x);
    EXPECT_TRUE(ops::allclose(pulse, ideal, 1e-4f, 1e-4f))
        << enc::scheme_name(scheme);
  }
}

TEST(MvmEngine, AnalyticNoiselessEqualsIdeal) {
  const Tensor w = random_binary_weight(8, 24, 4);
  MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, 8};
  cfg.sigma = 0.0;
  MvmEngine engine(w, cfg, Rng(5));
  const Tensor x = random_activations(4, 24, 6);
  EXPECT_TRUE(ops::allclose(engine.run_analytic(x), engine.run_ideal(x), 1e-5f,
                            1e-5f));
}

struct EquivCase {
  enc::Scheme scheme;
  std::size_t pulses;
  double sigma;
};

class MvmEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(MvmEquivalence, PulseAndAnalyticAgreeInMeanAndVariance) {
  const auto param = GetParam();
  const Tensor w = random_binary_weight(4, 16, 7);
  MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{param.scheme, param.pulses};
  cfg.sigma = param.sigma;
  const Tensor x = random_activations(1, 16, 8);

  MvmEngine engine(w, cfg, Rng(9));
  const Tensor ideal = engine.run_ideal(x);

  const int trials = 2000;
  auto collect = [&](bool pulse_mode) {
    // mean/variance of the first output element's noise across trials
    std::vector<double> mean(4, 0.0), m2(4, 0.0);
    for (int t = 0; t < trials; ++t) {
      Tensor y = pulse_mode ? engine.run_pulse_level(x) : engine.run_analytic(x);
      for (std::size_t o = 0; o < 4; ++o) {
        const double d = y.at(0, o) - ideal.at(0, o);
        const double delta = d - mean[o];
        mean[o] += delta / (t + 1);
        m2[o] += delta * (d - mean[o]);
      }
    }
    for (auto& v : m2) v /= trials - 1;
    return std::make_pair(mean, m2);
  };

  const auto [pulse_mean, pulse_var] = collect(true);
  const auto [ana_mean, ana_var] = collect(false);
  const double expected_var =
      param.sigma * param.sigma * cfg.spec.noise_variance_factor();

  for (std::size_t o = 0; o < 4; ++o) {
    const double se = std::sqrt(expected_var / trials);
    EXPECT_NEAR(pulse_mean[o], 0.0, 6.0 * se) << "pulse mean, o=" << o;
    EXPECT_NEAR(ana_mean[o], 0.0, 6.0 * se) << "analytic mean, o=" << o;
    // Sample variance of a Gaussian: rel. std-error ≈ sqrt(2/(n-1)) ≈ 3.2%.
    EXPECT_NEAR(pulse_var[o] / expected_var, 1.0, 0.2) << "pulse var, o=" << o;
    EXPECT_NEAR(ana_var[o] / expected_var, 1.0, 0.2) << "analytic var, o=" << o;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MvmEquivalence,
    ::testing::Values(
        EquivCase{enc::Scheme::kThermometer, 4, 1.0},
        EquivCase{enc::Scheme::kThermometer, 8, 1.0},
        EquivCase{enc::Scheme::kThermometer, 8, 4.0},
        EquivCase{enc::Scheme::kThermometer, 16, 2.0},
        EquivCase{enc::Scheme::kBitSlicing, 2, 1.0},
        EquivCase{enc::Scheme::kBitSlicing, 3, 2.0},
        EquivCase{enc::Scheme::kBitSlicing, 4, 1.0}));

TEST(MvmEngine, ThermometerBeatsBitSlicingAtEqualBits) {
  // End-to-end validation of Fig. 1b on the simulator: 3-bit information,
  // same σ — thermometer (7 pulses) must show lower output noise variance
  // than bit slicing (3 pulses).
  const Tensor w = random_binary_weight(4, 16, 10);
  const Tensor x = random_activations(1, 16, 11);
  auto noise_var = [&](enc::Scheme scheme, std::size_t pulses) {
    MvmConfig cfg;
    cfg.spec = enc::EncodingSpec{scheme, pulses};
    cfg.sigma = 2.0;
    MvmEngine engine(w, cfg, Rng(12));
    const Tensor ideal = engine.run_ideal(x);
    double acc = 0.0;
    const int trials = 1500;
    for (int t = 0; t < trials; ++t) {
      Tensor y = engine.run_pulse_level(x);
      const double d = y.at(0, 0) - ideal.at(0, 0);
      acc += d * d;
    }
    return acc / trials;
  };
  const double tc = noise_var(enc::Scheme::kThermometer, 7);
  const double bs = noise_var(enc::Scheme::kBitSlicing, 3);
  EXPECT_LT(tc, bs * 0.6);  // theory predicts ratio (1/7)/(21/49) ≈ 0.33
}

// ---- fused vs. reference pulse-level path --------------------------------
//
// run_pulse_level is the fused batch-major sweep; run_pulse_level_reference
// is the retained pre-refactor scalar path (one crossbar read per pulse).
// For the same seed they consume rng in the same order and must agree
// BITWISE — across encodings, device models, ragged tiling, and any thread
// count.

Tensor run_with_threads(const Tensor& w, const MvmConfig& cfg, const Tensor& x,
                        std::size_t threads, bool fused) {
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t restore = pool.num_threads();
  pool.set_num_threads(threads);
  MvmEngine engine(w, cfg, Rng(42));
  Tensor y = fused ? engine.run_pulse_level(x)
                   : engine.run_pulse_level_reference(x);
  pool.set_num_threads(restore);
  return y;
}

struct FusedCase {
  const char* name;
  enc::Scheme scheme;
  std::size_t pulses;
  double sigma;
  DeviceConfig device;
};

std::vector<FusedCase> fused_cases() {
  std::vector<FusedCase> cases;
  cases.push_back({"ideal_thermo", enc::Scheme::kThermometer, 8, 1.5, {}});
  cases.push_back({"ideal_bits", enc::Scheme::kBitSlicing, 4, 2.0, {}});
  {
    // Read noise + ADC + programming variation on ragged tiles.
    DeviceConfig d;
    d.program_variation = 0.1;
    d.read_noise_sigma = 0.05;
    d.adc_bits = 8;
    cases.push_back({"noisy_adc", enc::Scheme::kThermometer, 8, 1.0, d});
  }
  {
    DeviceConfig d;
    d.mapping = WeightMapping::kOffset;
    d.g_on = 1.0;
    d.g_off = 0.1;
    d.read_noise_sigma = 0.02;
    d.adc_bits = 10;
    cases.push_back({"offset_noisy", enc::Scheme::kBitSlicing, 3, 0.5, d});
  }
  return cases;
}

TEST(MvmEngine, FusedPulsePathMatchesReferenceBitwiseAtAnyThreadCount) {
  const Tensor w = random_binary_weight(9, 37, 21);  // ragged against tile_cols
  const Tensor x = random_activations(5, 37, 22);
  for (const FusedCase& c : fused_cases()) {
    MvmConfig cfg;
    cfg.spec = enc::EncodingSpec{c.scheme, c.pulses};
    cfg.sigma = c.sigma;
    cfg.device = c.device;
    cfg.tile_cols = 16;  // 37 inputs -> tiles of 16, 16, 5

    const Tensor ref = run_with_threads(w, cfg, x, 1, /*fused=*/false);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const Tensor fused = run_with_threads(w, cfg, x, threads, /*fused=*/true);
      ASSERT_TRUE(fused.same_shape(ref)) << c.name;
      EXPECT_EQ(0, std::memcmp(fused.data(), ref.data(),
                               ref.numel() * sizeof(float)))
          << c.name << " diverges at " << threads << " thread(s)";
    }
  }
}

TEST(MvmEngine, PerSampleStreamsMatchPerRequestGroupsBitwise) {
  // The row-stream contract with group > 1 (DESIGN.md §6) — the fused conv
  // serving case, where each sample's oh·ow patch rows share one stream:
  // sample s of a fused batch must be bitwise equal to running its row
  // group alone under the same stream, for every stochastic term (read
  // noise, ADC, Eq. 1 output noise) and at any thread count.
  const Tensor w = random_binary_weight(9, 37, 31);
  MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, 6};
  cfg.sigma = 0.8;
  cfg.device.read_noise_sigma = 0.05;
  cfg.device.adc_bits = 8;
  cfg.tile_cols = 16;
  const std::size_t group = 3, streams = 4, in = 37;
  const Tensor x = random_activations(group * streams, in, 32);
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t restore = pool.num_threads();
  MvmEngine engine(w, cfg, Rng(33));

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    pool.set_num_threads(threads);
    Rng root(39);
    std::vector<Rng> rngs;
    for (std::size_t s = 0; s < streams; ++s) rngs.push_back(root.fork(s));
    const Tensor fused =
        engine.run_pulse_level(x, rngs.data(), rngs.size());
    ASSERT_EQ(fused.dim(0), group * streams);
    const std::size_t out = fused.dim(1);
    for (std::size_t s = 0; s < streams; ++s) {
      Tensor xs({group, in});
      std::copy(x.data() + s * group * in, x.data() + (s + 1) * group * in,
                xs.data());
      Rng r = root.fork(s);
      const Tensor alone = engine.run_pulse_level(xs, r);
      EXPECT_EQ(0, std::memcmp(alone.data(), fused.data() + s * group * out,
                               group * out * sizeof(float)))
          << "stream " << s << " at " << threads << " thread(s)";
    }
  }
  pool.set_num_threads(restore);

  // Degenerate-stream guards.
  Rng r(1);
  EXPECT_THROW(engine.run_pulse_level(x, &r, 0), std::invalid_argument);
  EXPECT_THROW(engine.run_pulse_level(x, &r, 5), std::invalid_argument);
}

TEST(MvmEngine, ZeroRowBatchWorksEvenWithReadNoise) {
  // Regression: the fused path must not reject an empty batch just because
  // read noise is enabled (zero draws are needed for zero rows).
  const Tensor w = random_binary_weight(5, 8, 31);
  MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, 4};
  cfg.sigma = 1.0;
  cfg.device.read_noise_sigma = 0.1;
  MvmEngine engine(w, cfg, Rng(32));
  const Tensor x({0, 8});
  const Tensor y = engine.run_pulse_level(x);
  ASSERT_EQ(y.ndim(), 2u);
  EXPECT_EQ(y.dim(0), 0u);
  EXPECT_EQ(y.dim(1), 5u);
}

TEST(MvmEngine, EmptyPulseTrainYieldsZeroFilledResult) {
  const Tensor w = random_binary_weight(6, 12, 23);
  MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, 0};
  cfg.sigma = 1.0;
  MvmEngine engine(w, cfg, Rng(24));
  const Tensor x = random_activations(3, 12, 25);
  const Tensor y = engine.run_pulse_level(x);
  ASSERT_EQ(y.ndim(), 2u);
  EXPECT_EQ(y.dim(0), 3u);
  EXPECT_EQ(y.dim(1), 6u);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], 0.0f);
}

TEST(MvmEngine, DeviceVariationIsSharedBetweenModes) {
  // With frozen programming variation and σ = 0, analytic mode must
  // reproduce the *same* corrupted weights as pulse-level mode.
  const Tensor w = random_binary_weight(6, 12, 13);
  MvmConfig cfg;
  cfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, 8};
  cfg.sigma = 0.0;
  cfg.device.program_variation = 0.3;
  MvmEngine engine(w, cfg, Rng(14));
  const Tensor x = random_activations(2, 12, 15);
  EXPECT_TRUE(ops::allclose(engine.run_pulse_level(x), engine.run_analytic(x),
                            1e-4f, 1e-4f));
}

}  // namespace
}  // namespace gbo::xbar
