// Scratch-arena contract: bump frames rewind and stop allocating once warm,
// the tensor recycler stabilizes, and — the load-bearing property — the
// arena-backed stateless inference path is bitwise identical to the plain
// allocating path on every model family and on the pulse-level crossbar.
#include "crossbar/crossbar_layers.hpp"
#include "crossbar/hw_deploy.hpp"
#include "models/mlp.hpp"
#include "models/resnet.hpp"
#include "models/vgg9.hpp"
#include "tensor/arena.hpp"
#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace gbo {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  ops::fill_uniform(t, rng, -1.0f, 1.0f);
  return t;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]) << "i=" << i;
}

// ---- bump region ----------------------------------------------------------

TEST(ScratchArena, BumpFramesRewindAndStopAllocating) {
  ScratchArena arena;
  EXPECT_EQ(arena.stats().system_allocs, 0u);

  for (int pass = 0; pass < 3; ++pass) {
    ArenaFrame outer(&arena);
    float* a = arena.alloc_floats(1000);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
    {
      ArenaFrame inner(&arena);
      double* b = arena.alloc_doubles(500);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
      EXPECT_NE(static_cast<void*>(a), static_cast<void*>(b));
    }
    // The inner frame popped: the next allocation reuses its bytes.
    float* c = arena.alloc_floats(500);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  }
  const auto warm = arena.stats();
  EXPECT_GE(warm.system_allocs, 1u);
  EXPECT_GT(warm.bump_high_water_bytes, 0u);

  // Steady state: the same allocation pattern must not touch the heap.
  for (int pass = 0; pass < 5; ++pass) {
    ArenaFrame frame(&arena);
    (void)arena.alloc_floats(1000);
    (void)arena.alloc_doubles(500);
  }
  EXPECT_EQ(arena.stats().system_allocs, warm.system_allocs);

  // Zero-length requests are a no-op.
  EXPECT_EQ(arena.alloc_floats(0), nullptr);
}

TEST(ScratchArena, BumpGrowsAcrossChunksAndKeepsPointersValid) {
  ScratchArena arena;
  ArenaFrame frame(&arena);
  float* small = arena.alloc_floats(16);
  small[0] = 7.0f;
  // Larger than the first chunk: forces a second chunk while `small` is live.
  float* big = arena.alloc_floats(1u << 20);
  big[0] = 9.0f;
  EXPECT_EQ(small[0], 7.0f);
  EXPECT_GE(arena.stats().system_allocs, 2u);
}

// ---- tensor recycler ------------------------------------------------------

TEST(ScratchArena, TensorRecyclerStabilizes) {
  ScratchArena arena;
  auto cycle = [&] {
    Tensor a = arena.take({4, 32});
    Tensor b = arena.take({2, 8, 4, 4});
    a.fill(1.0f);
    b.fill(2.0f);
    arena.put(std::move(a));
    arena.put(std::move(b));
  };
  cycle();
  cycle();  // capacities converge during the first cycles
  const std::size_t warm = arena.stats().system_allocs;
  for (int i = 0; i < 10; ++i) cycle();
  EXPECT_EQ(arena.stats().system_allocs, warm);
}

// ---- arena-backed infer == allocating infer, bitwise ----------------------

template <typename Model>
void expect_arena_infer_bitwise(Model& m, const Tensor& x,
                                std::uint64_t ctx_seed) {
  m.net->set_training(false);
  nn::EvalContext plain{Rng(ctx_seed)};
  const Tensor want = m.net->infer(x, plain);

  ScratchArena arena;
  nn::EvalContext ctx{Rng(ctx_seed), &arena};
  // Several passes: the first warms the arena, the rest must replay from
  // recycled memory only — and every pass must match the allocating path.
  std::size_t warm_allocs = 0;
  for (int pass = 0; pass < 3; ++pass) {
    nn::EvalContext fresh{Rng(ctx_seed), &arena};
    Tensor got = m.net->infer(x, fresh);
    expect_bitwise_equal(want, got);
    fresh.recycle(std::move(got));
    if (pass == 1) warm_allocs = arena.stats().system_allocs;
  }
  EXPECT_EQ(arena.stats().system_allocs, warm_allocs)
      << "steady-state infer touched the heap";
  // Small all-linear nets may legitimately never bump-allocate since the
  // frozen-weight caches took binarized copies and packed panels off the
  // per-request path (DESIGN.md §6) — the recycler must still have pooled
  // the inter-layer tensors.
  EXPECT_GT(arena.stats().reserved_bytes, 0u);
}

TEST(ScratchArena, InferBitwiseMlp) {
  models::MlpConfig cfg;
  cfg.in_features = 16;
  cfg.hidden = {24, 24};
  cfg.num_classes = 4;
  models::Mlp m = models::build_mlp(cfg);
  const Tensor x = random_tensor({5, 16}, 1);
  expect_arena_infer_bitwise(m, x, 2);
}

TEST(ScratchArena, InferBitwiseMlpWithNoiseHooks) {
  models::MlpConfig cfg;
  cfg.in_features = 16;
  cfg.hidden = {24, 24};
  cfg.num_classes = 4;
  models::Mlp m = models::build_mlp(cfg);
  Rng crng(9);
  xbar::LayerNoiseController ctrl(m.encoded, /*sigma=*/1.5, m.base_pulses(),
                                  crng);
  ctrl.attach();
  ctrl.set_enabled_all(true);
  const Tensor x = random_tensor({5, 16}, 3);
  expect_arena_infer_bitwise(m, x, 4);
  ctrl.detach();
}

TEST(ScratchArena, InferBitwiseVgg9) {
  models::Vgg9Config cfg;
  cfg.width = 4;
  cfg.image_size = 8;
  models::Vgg9 m = models::build_vgg9(cfg);
  const Tensor x = random_tensor({3, 3, 8, 8}, 5);
  expect_arena_infer_bitwise(m, x, 6);
}

TEST(ScratchArena, InferBitwiseResNet) {
  models::ResNetConfig cfg;
  cfg.width = 4;
  cfg.image_size = 8;
  models::ResNet m = models::build_resnet(cfg);
  const Tensor x = random_tensor({3, 3, 8, 8}, 7);
  expect_arena_infer_bitwise(m, x, 8);
}

TEST(ScratchArena, PulseLevelEngineBitwiseWithArena) {
  Rng wrng(21);
  Tensor bw({12, 16});
  for (std::size_t i = 0; i < bw.numel(); ++i)
    bw[i] = wrng.bernoulli(0.5) ? 0.5f : -0.5f;

  xbar::MvmConfig mcfg;
  mcfg.spec = enc::EncodingSpec{enc::Scheme::kThermometer, 8};
  mcfg.sigma = 0.3;
  mcfg.device.read_noise_sigma = 0.05;
  mcfg.device.adc_bits = 6;
  xbar::MvmEngine engine(bw, mcfg, Rng(22));
  const Tensor x = random_tensor({4, 16}, 23);

  Rng ra(31), rb(31);
  ScratchArena arena;
  const Tensor plain = engine.run_pulse_level(x, ra);
  for (int pass = 0; pass < 2; ++pass) {
    Rng r = rb;  // replay the same stream each pass
    Tensor got = engine.run_pulse_level(x, r, &arena);
    expect_bitwise_equal(plain, got);
    arena.put(std::move(got));
  }
}

TEST(ScratchArena, HardwareNetworkConstForwardBitwiseWithArena) {
  models::MlpConfig cfg;
  cfg.in_features = 12;
  cfg.hidden = {16, 16};
  models::Mlp m = models::build_mlp(cfg);
  m.net->set_training(false);
  xbar::HwDeployConfig hw_cfg;
  hw_cfg.sigma = 0.5;
  hw_cfg.device.read_noise_sigma = 0.05;
  hw_cfg.device.adc_bits = 8;
  xbar::HardwareNetwork hw(*m.net, m.encoded, hw_cfg);

  const Tensor x = random_tensor({3, 12}, 33);
  nn::EvalContext plain{Rng(44)};
  const Tensor want = hw.forward(x, plain);

  ScratchArena arena;
  for (int pass = 0; pass < 2; ++pass) {
    nn::EvalContext ctx{Rng(44), &arena};
    Tensor got = hw.forward(x, ctx);
    expect_bitwise_equal(want, got);
    ctx.recycle(std::move(got));
  }
}

}  // namespace
}  // namespace gbo
